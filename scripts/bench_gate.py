#!/usr/bin/env python3
"""Performance-regression gate over google-benchmark-style JSON files.

Usage:
    bench_gate.py [--threshold 1.25] BASELINE CURRENT [BASELINE CURRENT ...]

Each (baseline, current) pair is a benchmark trajectory file: either real
google-benchmark output (BENCH_policy_overhead.json, including
aggregates-only runs) or the compatible shape bench_streaming --json emits.
Benchmarks are matched by name; the comparison statistic is each
benchmark's median real_time (the median aggregate when the file carries
aggregates, the median over repeated raw entries otherwise), normalised to
milliseconds.

Pass/fail rules:
  * a pair FAILS when the *median ratio* (current / baseline) across its
    matched benchmarks exceeds the threshold (default 1.25, i.e. a >25%
    median regression). Gating on the median — not the worst benchmark —
    keeps one noisy cell on a shared CI runner from failing the build while
    still catching uniform slowdowns of the simulator hot path.
  * a pair FAILS when a current benchmark row has no baseline entry: every
    row must be guarded, so adding or renaming rows requires regenerating
    the checked-in baseline in the same commit (run the bench with --json
    and copy the file over bench/baselines/). Rows present only in the
    baseline (removed rows) are reported but never fail.

Per-row speedup ratios are printed, and when $GITHUB_STEP_SUMMARY is set a
markdown table of the same rows is appended to the job summary.

Refreshing baselines: download the BENCH_* artifacts from a green run of
the main branch and commit them over bench/baselines/. When an intentional
regression must merge first (or runner hardware shifted), apply the PR
label `perf-regression-ok` — the workflow skips this gate for labelled PRs.
"""

import argparse
import json
import os
import statistics
import sys

_UNIT_TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def load_median_times(path):
    """Maps benchmark name -> median real_time in ms."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    samples = {}
    has_aggregates = any(
        entry.get("run_type") == "aggregate" for entry in doc.get("benchmarks", [])
    )
    for entry in doc.get("benchmarks", []):
        name = entry.get("name", "")
        run_type = entry.get("run_type", "iteration")
        aggregate = entry.get("aggregate_name", "")
        if has_aggregates:
            # Aggregates-only google-benchmark output: keep exactly the
            # median rows, stripping the "_median" suffix from the name.
            if run_type != "aggregate" or aggregate != "median":
                continue
            if name.endswith("_median"):
                name = name[: -len("_median")]
        real_time = entry.get("real_time")
        unit = entry.get("time_unit", "ns")
        if real_time is None or unit not in _UNIT_TO_MS:
            continue
        samples.setdefault(name, []).append(float(real_time) * _UNIT_TO_MS[unit])
    return {name: statistics.median(times) for name, times in samples.items()}


def append_step_summary(lines):
    """Appends markdown lines to the GitHub job summary when available."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")


def compare_pair(baseline_path, current_path, threshold):
    """Returns True when the pair passes the gate."""
    baseline = load_median_times(baseline_path)
    current = load_median_times(current_path)
    matched = sorted(set(baseline) & set(current))
    only_baseline = sorted(set(baseline) - set(current))
    only_current = sorted(set(current) - set(baseline))

    print(f"== {current_path} vs {baseline_path}")
    summary = [
        "",
        f"### bench gate: `{os.path.basename(current_path)}` vs "
        f"`{os.path.basename(baseline_path)}`",
        "",
        "| benchmark | baseline ms | current ms | ratio | speedup |",
        "|---|---:|---:|---:|---:|",
    ]

    ok = True
    if only_current:
        ok = False
        for name in only_current:
            print(f"   UNBASELINED (FAIL): {name} — no entry in {baseline_path}")
            summary.append(f"| {name} | — | {current[name]:.3f} | — | **unbaselined** |")
        print(
            "   every current row must have a baseline entry: regenerate "
            f"{baseline_path} (run the bench with --json and commit the file)."
        )

    median_ratio = None
    if matched:
        rows = []
        for name in matched:
            base_ms, cur_ms = baseline[name], current[name]
            ratio = cur_ms / base_ms if base_ms > 0 else float("inf")
            rows.append((ratio, name, base_ms, cur_ms))
        median_ratio = statistics.median(ratio for ratio, *_ in rows)

        for ratio, name, base_ms, cur_ms in sorted(rows, reverse=True):
            flag = " <-- regressed" if ratio > threshold else ""
            speedup = 1.0 / ratio if ratio > 0 else float("inf")
            print(
                f"   {ratio:6.3f}x  {base_ms:12.3f} -> {cur_ms:12.3f} ms  "
                f"(speedup {speedup:.2f}x)  {name}{flag}"
            )
            summary.append(
                f"| {name} | {base_ms:.3f} | {cur_ms:.3f} | {ratio:.3f}x "
                f"| {speedup:.2f}x{' ⚠️' if ratio > threshold else ''} |"
            )
        if median_ratio > threshold:
            ok = False
    elif not only_current:
        print("   no matched benchmarks — nothing to gate (PASS)")

    for name in only_baseline:
        print(f"   missing from current (not gated): {name}")
        summary.append(f"| {name} | {baseline[name]:.3f} | — | — | removed |")

    if median_ratio is not None:
        verdict = "PASS" if ok else "FAIL"
        print(
            f"   median ratio {median_ratio:.3f}x over {len(matched)} benchmarks, "
            f"threshold {threshold:.2f}x -> {verdict}"
        )
        summary.append(
            f"\n**median ratio {median_ratio:.3f}x** over {len(matched)} rows, "
            f"threshold {threshold:.2f}x → **{verdict}**"
        )
    elif only_current:
        summary.append("\n**FAIL — unbaselined rows** (regenerate the baseline)")
    append_step_summary(summary)
    return ok


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threshold", type=float, default=1.25)
    parser.add_argument("files", nargs="+", help="baseline/current path pairs")
    args = parser.parse_args(argv)
    if len(args.files) % 2 != 0:
        parser.error("expected BASELINE CURRENT path pairs")
    if args.threshold <= 1.0:
        parser.error("--threshold must be > 1.0")

    ok = True
    for i in range(0, len(args.files), 2):
        ok &= compare_pair(args.files[i], args.files[i + 1], args.threshold)
    if not ok:
        print(
            "bench gate FAILED: median regression beyond threshold or "
            "unbaselined rows. If the regression is intentional, label the "
            "PR `perf-regression-ok` and refresh bench/baselines/ from a "
            "green main-branch artifact; for new rows, regenerate the "
            "baseline file in this commit."
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
