#!/usr/bin/env bash
# clang-tidy over the library and CLI with the checked-in .clang-tidy
# profile (warnings-as-errors: any finding fails).
#
# Usage:
#   scripts/run_tidy.sh                  # configure (if needed) and lint src/
#   BUILD_DIR=build-tidy scripts/run_tidy.sh
#   CLANG_TIDY=clang-tidy-18 scripts/run_tidy.sh src/sim/engine.cpp
#
# Environment:
#   BUILD_DIR    compilation-database dir (default: build; configured with
#                CMAKE_EXPORT_COMPILE_COMMANDS, which the project always sets)
#   CLANG_TIDY   clang-tidy binary (default: clang-tidy)
#   TIDY_JOBS    parallel tidy processes (default: nproc)
#   TIDY_REPORT  also append all findings to this file (used by CI to
#                upload the report as an artifact on failure)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
CLANG_TIDY=${CLANG_TIDY:-clang-tidy}
TIDY_JOBS=${TIDY_JOBS:-$(nproc)}
TIDY_REPORT=${TIDY_REPORT:-}

if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  echo "run_tidy.sh: $CLANG_TIDY not found (set CLANG_TIDY=...)" >&2
  exit 2
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_tidy.sh: no $BUILD_DIR/compile_commands.json — configuring..." >&2
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
fi

# All translation units under src/ (headers are covered transitively via
# HeaderFilterRegex in .clang-tidy).
if [ "$#" -gt 0 ]; then
  FILES=("$@")
else
  mapfile -t FILES < <(git ls-files 'src/*.cpp' 'src/**/*.cpp')
fi

echo "clang-tidy ($($CLANG_TIDY --version | head -n 1 | tr -s ' ')) over" \
  "${#FILES[@]} files, $TIDY_JOBS jobs"

status=0
out=$(printf '%s\n' "${FILES[@]}" |
  xargs -P "$TIDY_JOBS" -n 1 "$CLANG_TIDY" -p "$BUILD_DIR" --quiet \
    2>/dev/null) || status=$?

if [ -n "$out" ]; then
  printf '%s\n' "$out"
  if [ -n "$TIDY_REPORT" ]; then
    printf '%s\n' "$out" >>"$TIDY_REPORT"
  fi
fi

if [ "$status" -ne 0 ]; then
  echo "clang-tidy FAILED (warnings-as-errors)" >&2
  exit 1
fi
echo "clang-tidy OK"
