#!/usr/bin/env python3
"""Determinism lint: machine-checks the invariants behind bit-identical runs.

The simulator's headline guarantee — every engine is bit-identical across
--jobs, noise seeds, and incremental TM re-solves — rests on a handful of
source-level invariants that golden tests can only observe indirectly. This
linter enforces them directly over ``src/`` and ``tests/``:

``nondeterministic-random``
    All randomness flows through ``util::Rng`` / ``util::stream_seed``
    (implementation-pinned xoshiro256**). ``std::rand``, ``srand``,
    ``std::random_device``, and the standard ``<random>`` engines and
    distributions (whose algorithms the standard does not pin down) are
    banned outside ``src/util/rng.hpp``.

``wall-clock``
    Simulated time never reads the host clock. ``time(nullptr)``,
    ``std::chrono::system_clock``, ``gettimeofday``, ``CLOCK_REALTIME``,
    and ``localtime``/``gmtime`` are banned outside ``src/obs/`` (trace
    timestamps are presentation, not simulation). The monotonic
    ``steady_clock`` stays legal everywhere: it only feeds profiling.

``adhoc-percentile``
    Every reported percentile routes through ``util::percentile_sorted``
    (the type-7 estimator) so subsystems agree to the bit. Hand-rolled
    order-statistic math — ``std::nth_element``, or subscripts built from
    ``0.95 * size()`` / ``... / 100`` index arithmetic — is banned outside
    ``src/util/stats.*``.

``unordered-iteration`` / ``unordered-member``
    Iterating a ``std::unordered_map``/``set`` makes event or output order
    depend on hash-table layout. Range-for or iterator loops over unordered
    containers are banned, and every unordered member declared in ``src/``
    must carry a ``// lint:unordered-ok(reason)`` annotation (same line or
    the line above) stating why hash order cannot reach results.

``raw-stdio``
    Library code logs through ``util::logging``; direct ``std::cout`` /
    ``std::cerr`` / ``printf`` / ``fprintf`` / ``puts`` are banned in
    ``src/`` outside the CLI (``src/cli/``), the logging backend itself,
    and the assertion reporter (``src/util/contracts.cpp``). ``snprintf``
    into a buffer is formatting, not output, and stays legal.

``float-timeline``
    Timeline arithmetic is ``double`` (``sim::TimeMs``) end to end; a
    single ``float`` truncation desynchronises replicas. The ``float``
    type is banned in ``src/`` (``// lint:float-ok(reason)`` escapes).

Escape hatches are deliberate and auditable: ``lint:unordered-ok(...)`` and
``lint:float-ok(...)`` must carry a non-empty reason.

Usage:
    lint_determinism.py [--root DIR]            # lint src/ and tests/
    lint_determinism.py [--root DIR] FILE...    # lint specific files
    lint_determinism.py --self-test             # run the fixture suite

Self-test: ``tests/lint_fixtures/`` holds deliberate violations, one file
per rule class, each tagged with ``// expect-lint: <rule>`` on the
offending line; ``clean_annotated.cpp`` exercises every escape hatch and
must produce zero findings. The self-test fails on any missed or spurious
finding, so the linter is itself regression-tested in CI.

Exit status: 0 clean, 1 findings (or self-test mismatch), 2 usage error.
"""

import argparse
import re
import sys
from pathlib import Path

FIXTURE_DIR = Path("tests") / "lint_fixtures"
SOURCE_GLOBS = ("src/**/*.hpp", "src/**/*.cpp", "tests/**/*.hpp", "tests/**/*.cpp")

ANNOTATION_RE = re.compile(r"lint:(unordered-ok|float-ok)\(\s*(\S[^)]*)")
EXPECT_RE = re.compile(r"//\s*expect-lint:\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)")


class Finding:
    """One rule violation at file:line."""

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving line structure.

    Replaces every character of a comment or literal with a space (newlines
    survive) so rule regexes can use line numbers from the stripped text
    without matching documentation or message strings.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _matches(path, *parts):
    """True when `path` (relative, POSIX) starts with or equals the parts."""
    rel = path.as_posix()
    probe = "/".join(parts)
    return rel == probe or rel.startswith(probe + "/") or rel.endswith("/" + probe)


# --- rule implementations ---------------------------------------------------
# Each rule is (name, token regex over stripped source, exemption predicate,
# message). Tokens are matched per line of the *stripped* text, so comments
# and strings never trigger them.

RANDOM_TOKENS = re.compile(
    r"std\s*::\s*rand\b|\bsrand\s*\(|std\s*::\s*random_device\b"
    r"|\brandom_device\b|\bmt19937(_64)?\b|\bminstd_rand0?\b"
    r"|\bdefault_random_engine\b|\branlux(24|48)(_base)?\b|\bknuth_b\b"
    r"|\buniform_(int|real)_distribution\b|\bnormal_distribution\b"
    r"|\blognormal_distribution\b|\bbernoulli_distribution\b"
    r"|\bexponential_distribution\b|\bpoisson_distribution\b"
    r"|\bdiscrete_distribution\b"
)

CLOCK_TOKENS = re.compile(
    r"\bsystem_clock\b|\btime\s*\(\s*(nullptr|NULL|0)\s*\)"
    r"|\bgettimeofday\s*\(|\bCLOCK_REALTIME\b"
    r"|\blocaltime(_r)?\s*\(|\bgmtime(_r)?\s*\(|\bstd\s*::\s*time\s*\("
)

NTH_ELEMENT = re.compile(r"\bnth_element\s*[<(]")
# Subscript whose index multiplies a container size by a fractional literal
# (sorted[0.95 * n], xs[n * 0.5]) or divides a percent product (v[p*95/100]).
PCTL_SUBSCRIPT = re.compile(
    r"\[[^\][]*(?:0?\.\d+\s*\*|\*\s*0?\.\d+|/\s*100(?:\.0*)?\b)[^\][]*\]"
)

STDIO_TOKENS = re.compile(
    r"std\s*::\s*(cout|cerr|clog)\b|(?<![\w:])(printf|fprintf|puts|putchar)\s*\("
)

FLOAT_TYPE = re.compile(r"(?<![\w.])float\b(?!\s*\.)")

UNORDERED_DECL = re.compile(
    r"\bstd\s*::\s*unordered_(?:flat_)?(?:multi)?(?:map|set)\s*<"
)
UNORDERED_RANGE_FOR = re.compile(r"\bfor\s*\([^;()]*:\s*([^)]+)\)")
UNORDERED_ITER_LOOP = re.compile(r"=\s*([A-Za-z_][\w.\->]*)\s*\.\s*c?begin\s*\(")
DECL_NAME = re.compile(r">\s*&?\s*([A-Za-z_]\w*)\s*[;={(),]")


def is_random_exempt(path):
    return _matches(path, "src", "util", "rng.hpp")


def is_clock_exempt(path):
    return _matches(path, "src", "obs")


def is_percentile_exempt(path):
    return _matches(path, "src", "util", "stats.cpp") or _matches(
        path, "src", "util", "stats.hpp"
    )


def is_stdio_exempt(path):
    return (
        _matches(path, "src", "cli")
        or _matches(path, "src", "util", "logging.cpp")
        or _matches(path, "src", "util", "contracts.cpp")
        or not _matches(path, "src")  # library rule: src/ only
    )


def is_src_library(path):
    return _matches(path, "src")


def lint_file(path, rel, text):
    """Returns the Findings for one file. `rel` is repo-relative."""
    raw_lines = text.splitlines()
    stripped = strip_comments_and_strings(text).splitlines()

    # Escape-hatch annotations live in comments: collect from the raw text.
    # An annotation covers its own line, the rest of its comment block, and
    # the first two code lines after it (declarations may wrap once).
    covered = {}  # line number -> (kind, reason)
    for ln, raw in enumerate(raw_lines, 1):
        m = ANNOTATION_RE.search(raw)
        if not m:
            continue
        entry = (m.group(1), m.group(2).strip())
        end = ln
        while end < len(raw_lines) and raw_lines[end].lstrip().startswith("//"):
            end += 1
        for covered_ln in range(ln, min(end + 2, len(raw_lines)) + 1):
            covered.setdefault(covered_ln, entry)

    def escape(ln, kind):
        ent = covered.get(ln)
        return ent is not None and ent[0] == kind and ent[1] != ""

    findings = []

    def add(ln, rule, message):
        findings.append(Finding(rel, ln, rule, message))

    # Track names declared as unordered containers in this file so loops
    # over them are caught even when the type is not on the loop line.
    unordered_names = set()
    for ln, line in enumerate(stripped, 1):
        if UNORDERED_DECL.search(line):
            for probe in (line, stripped[ln] if ln < len(stripped) else ""):
                m = DECL_NAME.search(probe)
                if m:
                    unordered_names.add(m.group(1))
                    break

    for ln, line in enumerate(stripped, 1):
        if not is_random_exempt(rel) and RANDOM_TOKENS.search(line):
            add(
                ln,
                "nondeterministic-random",
                "randomness outside util::Rng/util::stream_seed "
                "(std <random> engines are not implementation-pinned)",
            )
        if not is_clock_exempt(rel) and CLOCK_TOKENS.search(line):
            add(
                ln,
                "wall-clock",
                "wall-clock read in simulation code (use simulated TimeMs; "
                "steady_clock is allowed for profiling only)",
            )
        if not is_percentile_exempt(rel):
            if NTH_ELEMENT.search(line):
                add(
                    ln,
                    "adhoc-percentile",
                    "nth_element order statistic — route through "
                    "util::percentile_sorted",
                )
            if PCTL_SUBSCRIPT.search(line):
                add(
                    ln,
                    "adhoc-percentile",
                    "hand-rolled percentile index arithmetic — route "
                    "through util::percentile_sorted",
                )
        if not is_stdio_exempt(rel) and STDIO_TOKENS.search(line):
            add(
                ln,
                "raw-stdio",
                "direct console I/O in library code — use util::logging "
                "(APT_LOG_*) or take a std::ostream&",
            )
        if (
            is_src_library(rel)
            and FLOAT_TYPE.search(line)
            and not escape(ln, "float-ok")
        ):
            add(
                ln,
                "float-timeline",
                "float type in library code — timeline arithmetic is "
                "double (sim::TimeMs) end to end",
            )

        # Unordered-container iteration: range-for over an unordered name
        # or an inline unordered type, and iterator loops over them.
        m = UNORDERED_RANGE_FOR.search(line)
        if m and not escape(ln, "unordered-ok"):
            range_expr = m.group(1)
            ids = set(re.findall(r"[A-Za-z_]\w*", range_expr))
            if "unordered_map" in range_expr or "unordered_set" in range_expr or (
                ids & unordered_names
            ):
                add(
                    ln,
                    "unordered-iteration",
                    "iteration over an unordered container — order depends "
                    "on hash layout; use a sorted/indexed container or "
                    "annotate lint:unordered-ok(reason)",
                )
        m = UNORDERED_ITER_LOOP.search(line)
        if m and not escape(ln, "unordered-ok"):
            base = m.group(1).split("->")[-1].split(".")[-1]
            if base in unordered_names:
                add(
                    ln,
                    "unordered-iteration",
                    "iterator walk over an unordered container — order "
                    "depends on hash layout",
                )

        # Every unordered member in library code states its invariant.
        if (
            is_src_library(rel)
            and UNORDERED_DECL.search(line)
            and not escape(ln, "unordered-ok")
            and "#include" not in line
        ):
            add(
                ln,
                "unordered-member",
                "unordered container declared in src/ without a "
                "lint:unordered-ok(reason) annotation stating why hash "
                "order cannot affect results",
            )

    return findings


def collect_files(root, explicit):
    if explicit:
        return [Path(p) for p in explicit]
    files = []
    for pattern in SOURCE_GLOBS:
        files.extend(sorted(root.glob(pattern)))
    return [f for f in files if FIXTURE_DIR not in f.relative_to(root).parents]


def run_lint(root, explicit_files):
    findings = []
    for path in collect_files(root, explicit_files):
        rel = path.relative_to(root) if path.is_absolute() else path
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as err:
            print(f"lint_determinism: cannot read {path}: {err}", file=sys.stderr)
            return None
        findings.extend(lint_file(path, rel, text))
    return findings


def run_self_test(root):
    """Checks the fixture expectations exactly; returns the exit status."""
    fixture_root = root / FIXTURE_DIR
    fixtures = sorted(fixture_root.glob("*.cpp")) + sorted(fixture_root.glob("*.hpp"))
    if not fixtures:
        print(f"self-test: no fixtures under {fixture_root}", file=sys.stderr)
        return 2

    failures = 0
    total_expected = 0
    for path in fixtures:
        text = path.read_text(encoding="utf-8")
        # Fixture names encode a pretend repo location with "__" as the
        # path separator (src__fixture__bad_float.cpp lints as
        # src/fixture/bad_float.cpp), so src/-only rules and per-directory
        # exemptions are exercisable from the fixture directory.
        rel = Path(path.name.replace("__", "/"))
        expected = {}  # (line, rule) from // expect-lint: tags
        for ln, raw in enumerate(text.splitlines(), 1):
            m = EXPECT_RE.search(raw)
            if m:
                for rule in re.split(r"\s*,\s*", m.group(1)):
                    expected[(ln, rule)] = expected.get((ln, rule), 0) + 1
        total_expected += sum(expected.values())

        actual = {}
        for f in lint_file(path, rel, text):
            actual[(f.line, f.rule)] = actual.get((f.line, f.rule), 0) + 1

        for key in sorted(set(expected) | set(actual)):
            want, got = expected.get(key, 0), actual.get(key, 0)
            if want != got:
                failures += 1
                ln, rule = key
                print(
                    f"self-test MISMATCH {rel}:{ln} [{rule}]: "
                    f"expected {want} finding(s), got {got}"
                )

    if failures:
        print(f"self-test FAILED: {failures} mismatch(es)")
        return 1
    print(
        f"self-test OK: {len(fixtures)} fixtures, "
        f"{total_expected} expected findings all matched"
    )
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the checkout containing this script)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="lint tests/lint_fixtures/ and check the expect-lint tags",
    )
    parser.add_argument("files", nargs="*", help="specific files (default: src+tests)")
    args = parser.parse_args(argv)

    if args.self_test:
        return run_self_test(args.root)

    findings = run_lint(args.root, args.files)
    if findings is None:
        return 2
    for f in findings:
        print(f)
    if findings:
        rules = sorted({f.rule for f in findings})
        print(
            f"determinism lint FAILED: {len(findings)} finding(s) "
            f"across rules: {', '.join(rules)}"
        )
        return 1
    print("determinism lint OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
