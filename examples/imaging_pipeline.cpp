// Medical-imaging pipeline: a realistic heterogeneous workload modelled on
// the thesis's motivating application (Skalicky et al., distributed
// transmural electrophysiological imaging on CPU+GPU+FPGA).
//
// Each frame: SRAD despeckling of the ultrasound input, then a linear-
// algebra reconstruction chain (matrix product -> Cholesky factorisation ->
// inverse), with frames streaming in parallel. Compares MET's
// wait-for-the-best strategy against APT's threshold flexibility on the
// same stream.
#include <iostream>

#include "core/policy_factory.hpp"
#include "core/runner.hpp"
#include "dag/graph.hpp"
#include "lut/paper_data.hpp"
#include "util/string_utils.hpp"
#include "util/table_printer.hpp"

namespace {

/// Builds a `frames`-frame imaging stream. Frames are independent of each
/// other; a final aggregation kernel (matrix product of the stacked
/// results) joins them.
apt::dag::Dag imaging_stream(std::size_t frames) {
  using namespace apt;
  dag::Dag graph;
  std::vector<dag::NodeId> frame_outputs;
  for (std::size_t f = 0; f < frames; ++f) {
    const auto despeckle = graph.add_node("srad", 134217728);
    const auto reconstruct = graph.add_node("mm", 4000000);
    const auto factorise = graph.add_node("cd", 4000000);
    const auto solve = graph.add_node("mi", 4000000);
    graph.add_edge(despeckle, reconstruct);
    graph.add_edge(reconstruct, factorise);
    graph.add_edge(factorise, solve);
    frame_outputs.push_back(solve);
  }
  const auto aggregate = graph.add_node("mm", 16000000);
  for (const auto out : frame_outputs) graph.add_edge(out, aggregate);
  return graph;
}

}  // namespace

int main() {
  using namespace apt;

  constexpr std::size_t kFrames = 6;
  const dag::Dag graph = imaging_stream(kFrames);
  std::cout << "Imaging stream: " << kFrames << " frames, "
            << graph.node_count() << " kernels, " << graph.edge_count()
            << " dependencies, depth " << graph.depth() << "\n\n";

  util::TablePrinter table(
      {"Policy", "Makespan (ms)", "Lambda total (ms)", "GPU busy (ms)",
       "FPGA busy (ms)", "Alternatives"});
  for (const char* spec : {"met", "apt:2", "apt:4", "apt:8", "heft"}) {
    const core::RunOutcome outcome = core::run_paper_system(spec, graph, 8.0);
    table.add_row(
        {outcome.policy_name,
         util::format_double(outcome.metrics.makespan, 0),
         util::format_double(outcome.metrics.lambda.total_ms, 0),
         util::format_double(outcome.metrics.per_proc[1].compute_ms, 0),
         util::format_double(outcome.metrics.per_proc[2].compute_ms, 0),
         std::to_string(outcome.metrics.alternative_count)});
  }
  std::cout << table.to_string();

  std::cout <<
      "\nReading the table: every frame's SRAD and reconstruction kernels\n"
      "prefer the GPU, so MET serialises frames behind a single processor\n"
      "while the CPU and FPGA idle. APT's threshold lets the Cholesky and\n"
      "inverse stages spill to the FPGA/CPU when the GPU is saturated,\n"
      "compressing the stream's makespan — the paper's core argument, on a\n"
      "workload shaped like its motivating application.\n";
  return 0;
}
