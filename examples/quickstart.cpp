// Quickstart: build a tiny kernel dataflow graph, schedule it with APT on
// the paper's CPU+GPU+FPGA system, and inspect the resulting schedule.
//
//   $ ./quickstart
//
// Walks through the five core concepts: LookupTable, Dag, System, Policy,
// and the simulation runner.
#include <iostream>

#include "core/apt.hpp"
#include "core/runner.hpp"
#include "dag/graph.hpp"
#include "lut/paper_data.hpp"
#include "sim/trace.hpp"
#include "util/string_utils.hpp"

int main() {
  using namespace apt;

  // 1. Execution-time knowledge: the paper's measured lookup table
  //    (25 rows: mm/mi/cd at 7 sizes each + nw/bfs/srad/gem).
  const lut::LookupTable table = lut::paper_lookup_table();
  std::cout << "Lookup table: " << table.size() << " measured rows, kernels:";
  for (const auto& k : table.kernels()) std::cout << " " << k;
  std::cout << "\n\n";

  // 2. A workload: four kernels in a diamond — a matrix product fans out
  //    to a Cholesky factorisation and a BFS, joined by a matrix inverse.
  dag::Dag graph;
  const auto mm = graph.add_node("mm", 1000000);
  const auto cd = graph.add_node("cd", 1000000);
  const auto bfs = graph.add_node("bfs", 2034736);
  const auto mi = graph.add_node("mi", 1000000);
  graph.add_edge(mm, cd);
  graph.add_edge(mm, bfs);
  graph.add_edge(cd, mi);
  graph.add_edge(bfs, mi);

  // 3. The platform: 1x CPU + 1x GPU + 1x FPGA over 4 GB/s PCIe links.
  const sim::System system(sim::SystemConfig::paper_default(4.0));

  // 4. The scheduling policy: APT with the paper's best threshold (α = 4).
  core::Apt apt(4.0);

  // 5. Simulate and inspect.
  const core::RunOutcome outcome =
      core::run_policy(apt, graph, system, table);

  std::cout << "Policy:   " << outcome.policy_name << "\n";
  std::cout << "Makespan: "
            << util::format_double(outcome.metrics.makespan, 3) << " ms\n\n";
  std::cout << "Per-kernel schedule:\n";
  for (const auto& k : outcome.result.schedule) {
    std::cout << "  node " << k.node << " (" << graph.node(k.node).kernel
              << ") on " << system.processor(k.proc).name << ": exec ["
              << util::format_double(k.exec_start, 3) << ", "
              << util::format_double(k.finish_time, 3) << ") ms"
              << (k.alternative ? "  [alternative processor]" : "") << "\n";
  }

  std::cout << "\nFigure-5-style state log:\n"
            << sim::format_trace(
                   system, sim::build_trace(graph, system, outcome.result), 3);
  return 0;
}
