// Alpha tuning: how a practitioner picks the APT threshold for *their*
// system. Sweeps alpha over a user-shaped workload, prints the valley, and
// recommends the empirical threshold_brk — plus a sensitivity view showing
// how the valley moves when the system's degree of heterogeneity changes
// (the thesis's key observation: "the degree of heterogeneity and alpha
// values go hand-in-hand").
#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/apt.hpp"
#include "core/runner.hpp"
#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "util/string_utils.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace apt;

/// Average APT makespan over a small workload suite at one alpha, using an
/// arbitrary lookup table (so we can re-scale heterogeneity).
double avg_makespan(double alpha, const lut::LookupTable& table) {
  const sim::System system(sim::SystemConfig::paper_default(4.0));
  const dag::KernelPool pool = dag::KernelPool::from_lookup_table(table);
  double sum = 0.0;
  constexpr int kGraphs = 6;
  for (int g = 0; g < kGraphs; ++g) {
    const dag::Dag graph =
        dag::generate(dag::DfgType::Type2, 60, 1000 + g, pool);
    core::Apt apt(alpha);
    sum += core::run_policy(apt, graph, system, table).metrics.makespan;
  }
  return sum / kGraphs;
}

/// Compresses the table's heterogeneity: every non-optimal time is pulled
/// toward the optimal one by `factor` in log-space (factor 1 = unchanged,
/// 0 = fully homogeneous).
lut::LookupTable compress_heterogeneity(const lut::LookupTable& table,
                                        double factor) {
  lut::LookupTable out;
  for (const auto& e : table.entries()) {
    lut::Entry scaled = e;
    const double best = *std::min_element(e.time_ms.begin(), e.time_ms.end());
    for (double& t : scaled.time_ms)
      t = best * std::pow(t / best, factor);
    out.add(scaled);
  }
  return out;
}

}  // namespace

int main() {
  const lut::LookupTable paper = lut::paper_lookup_table();
  const std::vector<double> alphas = {1.0, 1.5, 2, 3, 4, 6, 8, 12, 16, 32};

  std::cout << "Sweeping APT's alpha on a 60-kernel Type-2 suite...\n\n";
  util::TablePrinter table({"alpha", "paper system (ms)",
                            "compressed x0.75 (ms)", "compressed x0.5 (ms)"});
  const lut::LookupTable mild = compress_heterogeneity(paper, 0.75);
  const lut::LookupTable flat = compress_heterogeneity(paper, 0.5);
  double best_alpha = alphas.front();
  double best_value = 1e300;
  for (double alpha : alphas) {
    const double on_paper = avg_makespan(alpha, paper);
    if (on_paper < best_value) {
      best_value = on_paper;
      best_alpha = alpha;
    }
    table.add_row({util::format_double(alpha, 1),
                   util::format_double(on_paper, 0),
                   util::format_double(avg_makespan(alpha, mild), 0),
                   util::format_double(avg_makespan(alpha, flat), 0)});
  }
  std::cout << table.to_string();

  std::cout << "\nRecommended threshold for the paper system: alpha = "
            << util::format_double(best_alpha, 1) << "\n";
  std::cout <<
      "\nNote how compressing the system's heterogeneity (columns 3-4)\n"
      "flattens the valley and shifts its bottom: on a nearly homogeneous\n"
      "system any idle processor is almost as good as the best one, so\n"
      "large alphas stop hurting — exactly the thesis's conclusion that\n"
      "the threshold must be tuned to the degree of heterogeneity.\n";
  return 0;
}
