// Streaming scheduler: applications arriving over time (Poisson process)
// rather than as one batch — the thesis's "incoming stream of
// applications" made literal. Shows release times, the Gantt view, and
// per-policy behaviour as the stream density changes.
#include <iostream>

#include "core/policy_factory.hpp"
#include "core/runner.hpp"
#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "sim/analysis.hpp"
#include "sim/gantt.hpp"
#include "util/string_utils.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace apt;

  // A 24-kernel Type-1 batch whose level-1 kernels arrive as a stream.
  constexpr std::uint64_t kSeed = 2026;
  const sim::System system(sim::SystemConfig::paper_default(4.0));
  const lut::LookupTable table = lut::paper_lookup_table();

  std::cout << "One stream, three densities, two policies\n"
            << "=========================================\n\n";
  util::TablePrinter summary({"Mean gap (ms)", "Policy", "Makespan (s)",
                              "Lambda (s)", "Utilisation %"});
  for (double gap : {50.0, 500.0, 5000.0}) {
    for (const char* spec : {"apt:4", "met"}) {
      dag::Dag graph =
          dag::generate(dag::DfgType::Type1, 24, kSeed,
                        dag::KernelPool::paper_pool());
      dag::apply_poisson_arrivals(graph, gap, kSeed);
      const auto policy = core::make_policy(spec);
      const core::RunOutcome outcome =
          core::run_policy(*policy, graph, system, table);
      const sim::LutCostModel cost(table, system);
      const auto analysis =
          sim::analyze_schedule(graph, system, cost, outcome.result);
      summary.add_row(
          {util::format_double(gap, 0), outcome.policy_name,
           util::format_double(outcome.metrics.makespan / 1000.0, 2),
           util::format_double(outcome.metrics.lambda.total_ms / 1000.0, 2),
           util::format_double(analysis.avg_utilization * 100.0, 1)});
    }
  }
  std::cout << summary.to_string();

  // Visualise the densest stream under APT.
  dag::Dag graph = dag::generate(dag::DfgType::Type1, 24, kSeed,
                                 dag::KernelPool::paper_pool());
  dag::apply_poisson_arrivals(graph, 50.0, kSeed);
  const auto apt = core::make_policy("apt:4");
  const core::RunOutcome outcome =
      core::run_policy(*apt, graph, system, table);
  std::cout << "\nAPT(4) Gantt view of the dense stream (50 ms mean gap):\n"
            << sim::ascii_gantt(graph, system, outcome.result, 72);

  std::cout <<
      "\nReading: with 50 ms gaps the stream saturates the platform and\n"
      "APT's threshold assignments compress the makespan; at 5000 ms gaps\n"
      "kernels arrive into an empty system, everyone gets their best\n"
      "processor, and the two policies converge.\n";
  return 0;
}
