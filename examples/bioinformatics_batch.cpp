// Bioinformatics batch: a dependency-light throughput workload built from
// the thesis's dwarf kernels — Needleman-Wunsch sequence alignments, BFS
// over interaction graphs, and GEM electrostatic-potential evaluations —
// submitted as one large batch (DFG Type-1 shape: everything parallel,
// one summary kernel at the end).
//
// Demonstrates: building workloads with the generator utilities, per-
// processor utilisation reporting, and how the alpha threshold changes
// which kernels accept an alternative processor.
#include <iostream>

#include "core/runner.hpp"
#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "util/string_utils.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace apt;

  // 30 alignments, 20 graph traversals, 6 potential evaluations, one
  // summary reduction (a big matrix product).
  std::vector<dag::Node> series;
  for (int i = 0; i < 30; ++i) series.push_back({"nw", 16777216});
  for (int i = 0; i < 20; ++i) series.push_back({"bfs", 2034736});
  for (int i = 0; i < 6; ++i) series.push_back({"gem", 2070376});
  series.push_back({"mm", 16000000});  // the Type-1 sink
  const dag::Dag graph = dag::make_type1(series);

  std::cout << "Batch: " << graph.node_count() << " kernels (";
  for (const auto& [kernel, count] : graph.kernel_histogram())
    std::cout << count << "x" << kernel << " ";
  std::cout << ")\n\n";

  util::TablePrinter table({"Policy", "Makespan (s)", "CPU util %",
                            "GPU util %", "FPGA util %", "Alternatives"});
  for (const char* spec : {"met", "apt:1.5", "apt:4", "apt:8", "spn"}) {
    const core::RunOutcome outcome = core::run_paper_system(spec, graph, 4.0);
    auto util_pct = [&](std::size_t p) {
      return util::format_double(outcome.metrics.per_proc[p].compute_ms /
                                     outcome.metrics.makespan * 100.0,
                                 1);
    };
    table.add_row({outcome.policy_name,
                   util::format_double(outcome.metrics.makespan / 1000.0, 2),
                   util_pct(0), util_pct(1), util_pct(2),
                   std::to_string(outcome.metrics.alternative_count)});
  }
  std::cout << table.to_string();

  // Show which kernels accepted an alternative at the threshold break.
  const core::RunOutcome apt4 = core::run_paper_system("apt:4", graph, 4.0);
  std::cout << "\nAPT(4) alternative assignments by kernel:\n";
  for (const auto& [kernel, count] : apt4.metrics.alternative_by_kernel)
    std::cout << "  " << count << "-" << kernel << "\n";
  std::cout <<
      "\nnw (CPU best, GPU within 1.31x) and bfs (FPGA best, GPU within\n"
      "1.63x) spill freely at alpha=4; gem (GPU best, CPU 5.4x) must wait\n"
      "for alpha >= 8 — compare Appendix B of the thesis.\n";
  return 0;
}
