// Policy comparison: run the thesis's full seven-policy line-up over any
// generated workload and print the Table-8-style comparison, including
// per-policy win counts ("number of occurrences of better solutions").
//
//   $ ./policy_comparison [type] [alpha]       (defaults: 2 4.0)
#include <cstdlib>
#include <iostream>

#include "core/experiments.hpp"
#include "util/string_utils.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace apt;

  const int type_arg = argc > 1 ? std::atoi(argv[1]) : 2;
  const double alpha = argc > 2 ? std::atof(argv[2]) : 4.0;
  const dag::DfgType type =
      type_arg == 1 ? dag::DfgType::Type1 : dag::DfgType::Type2;

  std::cout << "Running the seven-policy comparison on the ten paper "
            << dag::to_string(type) << " graphs (alpha = " << alpha
            << ", 4 GB/s)...\n\n";
  const core::Grid grid =
      core::run_paper_grid(type, core::paper_policy_specs(alpha), 4.0);

  std::vector<std::string> header = {"Graph"};
  for (const auto& name : grid.policy_names) header.push_back(name);
  util::TablePrinter table(header);
  for (std::size_t g = 0; g < grid.experiment_count(); ++g) {
    std::vector<std::string> row = {std::to_string(g + 1)};
    for (std::size_t p = 0; p < grid.policy_count(); ++p)
      row.push_back(util::format_double(grid.cells[g][p].makespan_ms, 0));
    table.add_row(std::move(row));
  }
  table.add_separator();
  std::vector<std::string> avg = {"avg"};
  std::vector<std::string> wins = {"wins"};
  for (std::size_t p = 0; p < grid.policy_count(); ++p) {
    avg.push_back(util::format_double(grid.avg_makespan_ms(p), 0));
    wins.push_back(std::to_string(grid.wins(p)));
  }
  table.add_row(std::move(avg));
  table.add_row(std::move(wins));
  std::cout << table.to_string();

  std::cout << "\nAPT improvement over the second-best dynamic policy "
               "(Eq. 13/14): "
            << util::format_double(core::improvement_exec_pct(grid, 0), 2)
            << "% execution time, "
            << util::format_double(core::improvement_lambda_pct(grid, 0), 2)
            << "% lambda delay\n";
  return 0;
}
