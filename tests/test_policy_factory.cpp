#include "core/policy_factory.hpp"

#include <gtest/gtest.h>

namespace apt::core {
namespace {

TEST(PolicyFactory, BuildsEveryBaseline) {
  EXPECT_EQ(make_policy("met")->name(), "MET");
  EXPECT_EQ(make_policy("spn")->name(), "SPN");
  EXPECT_EQ(make_policy("ss")->name(), "SS");
  EXPECT_EQ(make_policy("ag")->name(), "AG");
  EXPECT_EQ(make_policy("olb")->name(), "OLB");
  EXPECT_EQ(make_policy("heft")->name(), "HEFT");
  EXPECT_EQ(make_policy("peft")->name(), "PEFT");
  EXPECT_EQ(make_policy("random")->name(), "Random");
  EXPECT_EQ(make_policy("minmin")->name(), "Min-Min");
  EXPECT_EQ(make_policy("max-min")->name(), "Max-Min");
  EXPECT_EQ(make_policy("sufferage")->name(), "Sufferage");
}

TEST(PolicyFactory, AptDefaultsAndParameters) {
  EXPECT_EQ(make_policy("apt")->name(), "APT(alpha=4.00)");
  EXPECT_EQ(make_policy("apt:2.5")->name(), "APT(alpha=2.50)");
  EXPECT_EQ(make_policy("apt:16")->name(), "APT(alpha=16.00)");
  EXPECT_EQ(make_policy("apt-r")->name(), "APT-R(alpha=4.00)");
  EXPECT_EQ(make_policy("apt-r:8")->name(), "APT-R(alpha=8.00)");
}

TEST(PolicyFactory, IsCaseAndWhitespaceInsensitive) {
  EXPECT_EQ(make_policy(" HEFT ")->name(), "HEFT");
  EXPECT_EQ(make_policy("Apt:4")->name(), "APT(alpha=4.00)");
}

TEST(PolicyFactory, AgVariants) {
  EXPECT_EQ(make_policy("ag:recent")->name(), "AG");
  EXPECT_THROW(make_policy("ag:bogus"), std::invalid_argument);
}

TEST(PolicyFactory, RejectsUnknownOrMalformedSpecs) {
  EXPECT_THROW(make_policy("does-not-exist"), std::invalid_argument);
  EXPECT_THROW(make_policy(""), std::invalid_argument);
  EXPECT_THROW(make_policy("apt:not-a-number"), std::invalid_argument);
  EXPECT_THROW(make_policy("apt:0.5"), std::invalid_argument);  // alpha < 1
}

TEST(PolicyFactory, DynamicAndStaticClassification) {
  EXPECT_TRUE(make_policy("apt")->is_dynamic());
  EXPECT_TRUE(make_policy("met")->is_dynamic());
  EXPECT_TRUE(make_policy("ag")->is_dynamic());
  EXPECT_FALSE(make_policy("heft")->is_dynamic());
  EXPECT_FALSE(make_policy("peft")->is_dynamic());
}

TEST(PolicyFactory, PaperPolicySetHasSevenColumns) {
  const auto set = paper_policy_set(4.0);
  ASSERT_EQ(set.size(), 7u);
  EXPECT_EQ(set[0]->name(), "APT(alpha=4.00)");
  EXPECT_EQ(set[1]->name(), "MET");
  EXPECT_EQ(set[6]->name(), "PEFT");
}

TEST(PolicyFactory, KnownSpecsAreNonEmptyAndBuildable) {
  const auto specs = known_policy_specs();
  EXPECT_GE(specs.size(), 10u);
  for (const auto& spec : specs) {
    if (spec.find('<') != std::string::npos) continue;  // parameterised form
    EXPECT_NO_THROW(make_policy(spec)) << spec;
  }
}

}  // namespace
}  // namespace apt::core
