#include "policies/batch_mode.hpp"

#include <gtest/gtest.h>

#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "test_helpers.hpp"

namespace apt::policies {
namespace {

TEST(BatchMode, Names) {
  EXPECT_EQ(BatchMode(BatchRule::MinMin).name(), "Min-Min");
  EXPECT_EQ(BatchMode(BatchRule::MaxMin).name(), "Max-Min");
  EXPECT_EQ(BatchMode(BatchRule::Sufferage).name(), "Sufferage");
  EXPECT_TRUE(BatchMode(BatchRule::MinMin).is_dynamic());
}

TEST(MinMin, SchedulesTheQuickestKernelFirst) {
  // One processor: Min-Min empties the ready set shortest-first.
  dag::Dag d;
  for (int i = 0; i < 3; ++i) d.add_node("k", 1);
  const sim::System sys = test::generic_system(1);
  sim::MatrixCostModel cost({{5.0}, {1.0}, {3.0}});
  BatchMode policy(BatchRule::MinMin);
  const auto result = test::run_and_validate(policy, d, sys, cost);
  EXPECT_DOUBLE_EQ(result.schedule[1].exec_start, 0.0);
  EXPECT_DOUBLE_EQ(result.schedule[2].exec_start, 1.0);
  EXPECT_DOUBLE_EQ(result.schedule[0].exec_start, 4.0);
}

TEST(MaxMin, SchedulesTheHeaviestKernelFirst) {
  dag::Dag d;
  for (int i = 0; i < 3; ++i) d.add_node("k", 1);
  const sim::System sys = test::generic_system(1);
  sim::MatrixCostModel cost({{5.0}, {1.0}, {3.0}});
  BatchMode policy(BatchRule::MaxMin);
  const auto result = test::run_and_validate(policy, d, sys, cost);
  EXPECT_DOUBLE_EQ(result.schedule[0].exec_start, 0.0);
  EXPECT_DOUBLE_EQ(result.schedule[2].exec_start, 5.0);
  EXPECT_DOUBLE_EQ(result.schedule[1].exec_start, 8.0);
}

TEST(MaxMin, AvoidsTheClassicMinMinImbalance) {
  // Two light kernels + one heavy, two processors. Max-Min starts the
  // heavy one immediately and packs the light ones alongside, beating
  // Min-Min's makespan.
  dag::Dag d;
  d.add_node("light1", 1);
  d.add_node("light2", 1);
  d.add_node("heavy", 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{2.0, 2.0}, {2.0, 2.0}, {9.0, 9.0}});
  BatchMode maxmin(BatchRule::MaxMin);
  const auto heavy_first = test::run_and_validate(maxmin, d, sys, cost);
  EXPECT_DOUBLE_EQ(heavy_first.schedule[2].exec_start, 0.0);
  EXPECT_DOUBLE_EQ(heavy_first.makespan, 9.0);

  BatchMode minmin(BatchRule::MinMin);
  const auto light_first = test::run_and_validate(minmin, d, sys, cost);
  EXPECT_DOUBLE_EQ(light_first.makespan, 11.0);  // heavy starts at 2
}

TEST(Sufferage, PrioritisesTheKernelWithMostToLose) {
  // Both kernels prefer p0. Kernel 0 barely cares (5 vs 6); kernel 1
  // suffers badly (5 vs 50). Sufferage gives p0 to kernel 1.
  dag::Dag d;
  d.add_node("indifferent", 1);
  d.add_node("sensitive", 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{5.0, 6.0}, {5.0, 50.0}});
  BatchMode policy(BatchRule::Sufferage);
  const auto result = test::run_and_validate(policy, d, sys, cost);
  EXPECT_EQ(result.schedule[1].proc, 0u);
  EXPECT_EQ(result.schedule[0].proc, 1u);
  EXPECT_DOUBLE_EQ(result.makespan, 6.0);
}

TEST(Sufferage, MinMinGetsThatExampleWrong) {
  dag::Dag d;
  d.add_node("indifferent", 1);
  d.add_node("sensitive", 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{5.0, 6.0}, {5.0, 50.0}});
  BatchMode policy(BatchRule::MinMin);
  const auto result = test::run_and_validate(policy, d, sys, cost);
  // Min-Min ties on best cost (5 vs 5) and FIFO gives p0 to kernel 0,
  // forcing kernel 1 onto its terrible alternative.
  EXPECT_EQ(result.schedule[0].proc, 0u);
  EXPECT_DOUBLE_EQ(result.makespan, 50.0);
}

TEST(BatchMode, SufferageIsZeroWithASingleIdleProcessor) {
  // One processor: no second-best exists; FIFO order applies.
  dag::Dag d;
  for (int i = 0; i < 3; ++i) d.add_node("k", 1);
  const sim::System sys = test::generic_system(1);
  sim::MatrixCostModel cost({{3.0}, {1.0}, {2.0}});
  BatchMode policy(BatchRule::Sufferage);
  const auto result = test::run_and_validate(policy, d, sys, cost);
  EXPECT_DOUBLE_EQ(result.schedule[0].exec_start, 0.0);
  EXPECT_DOUBLE_EQ(result.schedule[1].exec_start, 3.0);
  EXPECT_DOUBLE_EQ(result.schedule[2].exec_start, 4.0);
}

TEST(BatchMode, TransferCostsEnterTheCompletionTimeEstimate) {
  // Kernel 1's data sits on p0; moving it to p1 costs 10. Min-Min must
  // fold that into its completion-time comparison and keep it local.
  dag::Dag d;
  d.add_node("src", 1);
  d.add_node("consumer", 1);
  d.add_edge(0, 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{1.0, 9.0}, {5.0, 4.0}});
  cost.set_comm_cost(0, 1, 10.0);
  BatchMode policy(BatchRule::MinMin);
  const auto result = test::run_and_validate(policy, d, sys, cost);
  EXPECT_EQ(result.schedule[1].proc, 0u);  // 5 local < 4 + 10 remote
}

TEST(BatchMode, AllRulesHandlePaperWorkloads) {
  for (const BatchRule rule :
       {BatchRule::MinMin, BatchRule::MaxMin, BatchRule::Sufferage}) {
    for (dag::DfgType type : {dag::DfgType::Type1, dag::DfgType::Type2}) {
      const dag::Dag graph = dag::paper_graph(type, 0);
      const sim::System sys = test::paper_system();
      const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
      BatchMode policy(rule);
      test::run_and_validate(policy, graph, sys, cost);
    }
  }
}

}  // namespace
}  // namespace apt::policies
