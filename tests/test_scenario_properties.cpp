// Property-based scenario harness: every registered policy must produce a
// violation-free schedule on every generated scenario — 250 seeded
// scenarios per family (mixing graph sizes, link rates, and paper/synthetic
// platforms), so each policy is validated on 1750 schedules — and the
// scenario batch path must stay bit-identical for any worker count.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/batch.hpp"
#include "core/policy_factory.hpp"
#include "dag/serialize.hpp"
#include "lut/paper_data.hpp"
#include "lut/synthetic.hpp"
#include "scenario/scenario.hpp"
#include "sim/engine.hpp"
#include "sim/precomputed_cost_model.hpp"
#include "sim/validate.hpp"
#include "util/rng.hpp"

namespace apt {
namespace {

constexpr std::size_t kScenariosPerFamily = 250;

/// Concrete spec of every registered policy (the factory's full menu).
const std::vector<std::string>& policy_specs() {
  static const std::vector<std::string> specs = {
      "apt:1.5", "apt:4",    "apt:16",    "apt-r:4", "apt-ranked:4",
      "met",     "spn",      "ss",        "ag",      "ag:recent",
      "olb",     "random",   "minmin",    "maxmin",  "sufferage",
      "heft",    "peft"};
  return specs;
}

/// One platform the harness cycles through: a lookup table, the pool the
/// generators sample from it, and a prebuilt system+cost per link rate.
struct Platform {
  lut::LookupTable table;
  dag::KernelPool pool;
  std::vector<sim::System> systems;          // [rate]
  std::vector<sim::LutCostModel> costs;      // [rate]

  explicit Platform(lut::LookupTable t)
      : table(std::move(t)), pool(dag::KernelPool::from_lookup_table(table)) {
    for (const double rate : {4.0, 8.0}) {
      systems.emplace_back(sim::SystemConfig::paper_default(rate));
      costs.emplace_back(table, systems.back());
    }
  }
};

/// The paper's measured platform plus three synthetic corners of the
/// (CCR, heterogeneity) cube, built once for the whole suite.
const std::vector<Platform>& platforms() {
  static const std::vector<Platform>* cases = [] {
    auto* v = new std::vector<Platform>();
    v->emplace_back(lut::paper_lookup_table());
    const double corners[][2] = {{0.05, 1.0}, {1.0, 4.0}, {8.0, 64.0}};
    for (const auto& [ccr, hetero] : corners) {
      lut::SyntheticLutSpec spec;
      spec.ccr = ccr;
      spec.heterogeneity = hetero;
      spec.seed = 0xC0FFEE;
      v->emplace_back(lut::synthetic_lookup_table(spec));
    }
    return v;
  }();
  return *cases;
}

class FamilyProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(FamilyProperty, EveryPolicyValidOnEveryScenario) {
  const scenario::ScenarioFamily& family = scenario::family(GetParam());
  std::size_t family_index = 0;
  for (const auto& name : scenario::family_names()) {
    if (name == GetParam()) break;
    ++family_index;
  }
  const std::size_t sizes[] = {12, 16, 20, 24, 32, 46};

  std::size_t validated = 0;
  std::size_t violation_count = 0;
  std::string first_violation;
  for (std::size_t s = 0; s < kScenariosPerFamily; ++s) {
    const Platform& platform = platforms()[s % platforms().size()];
    const std::size_t rate_index = (s / platforms().size()) % 2;
    const sim::System& system = platform.systems[rate_index];
    const std::size_t kernels = std::max(
        family.min_kernels(), sizes[s % (sizeof(sizes) / sizeof(sizes[0]))]);
    const std::uint64_t seed =
        util::stream_seed(0xACE0 + family_index, s);
    const dag::Dag graph = family.generate(kernels, seed, platform.pool);
    // One densified cost table per scenario, shared by all policies.
    const sim::PrecomputedCostModel cost(graph, system,
                                         platform.costs[rate_index]);
    const double bound =
        sim::critical_path_lower_bound_ms(graph, system, cost);

    for (const std::string& spec : policy_specs()) {
      const auto policy = core::make_policy(spec);
      sim::Engine engine(graph, system, cost);
      const sim::SimResult result = engine.run(*policy);
      const auto violations =
          sim::validate_schedule(graph, system, cost, result);
      if (!violations.empty()) {
        violation_count += violations.size();
        if (first_violation.empty()) {
          first_violation = spec + " on " + GetParam() + " scenario " +
                            std::to_string(s) + ": " + violations[0].message;
        }
      }
      EXPECT_GE(result.makespan + 1e-9, bound)
          << spec << " beat the critical-path bound on scenario " << s;
      ++validated;
    }
  }
  EXPECT_EQ(violation_count, 0u) << "first violation: " << first_violation;
  EXPECT_EQ(validated, kScenariosPerFamily * policy_specs().size());
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyProperty,
                         ::testing::ValuesIn(scenario::family_names()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

// --- Determinism of the scenario batch path ----------------------------------

core::ExperimentPlan small_scenario_plan() {
  core::ScenarioSweepSpec spec;
  spec.families = scenario::family_names();
  spec.graphs_per_family = 2;
  spec.kernel_counts = {16, 24};
  spec.graph_seed = 5;
  lut::SyntheticLutSpec platform;
  platform.ccr = 1.0;
  platform.heterogeneity = 8.0;
  platform.seed = 5;
  spec.synthetic = platform;
  core::ExperimentPlan plan = core::make_scenario_plan(
      spec, {"apt:4", "random:{seed}"}, {4.0, 8.0});
  plan.replications = 2;
  plan.base_seed = 3;
  return plan;
}

TEST(ScenarioDeterminism, SweepBitIdenticalAcrossJobCounts) {
  const core::ExperimentPlan plan = small_scenario_plan();
  const core::BatchResult serial = core::BatchRunner(1).run(plan);
  const core::BatchResult parallel = core::BatchRunner(8).run(plan);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].makespan_ms, parallel.cells[i].makespan_ms);
    EXPECT_EQ(serial.cells[i].lambda_total_ms,
              parallel.cells[i].lambda_total_ms);
    EXPECT_EQ(serial.cells[i].lambda_avg_ms, parallel.cells[i].lambda_avg_ms);
    EXPECT_EQ(serial.cells[i].lambda_stddev_ms,
              parallel.cells[i].lambda_stddev_ms);
    EXPECT_EQ(serial.cells[i].alternative_count,
              parallel.cells[i].alternative_count);
    EXPECT_EQ(serial.cells[i].alternative_by_kernel,
              parallel.cells[i].alternative_by_kernel);
  }
}

TEST(ScenarioDeterminism, PlansBuiltTwiceAreByteIdentical) {
  const core::ExperimentPlan a = small_scenario_plan();
  const core::ExperimentPlan b = small_scenario_plan();
  ASSERT_EQ(a.graphs.size(), b.graphs.size());
  for (std::size_t g = 0; g < a.graphs.size(); ++g)
    EXPECT_EQ(dag::to_text(a.graphs[g]), dag::to_text(b.graphs[g]));
  EXPECT_EQ(a.table.to_csv(), b.table.to_csv());
}

// --- Plan expansion ----------------------------------------------------------

TEST(ScenarioPlan, RejectsBadAxes) {
  core::ScenarioSweepSpec spec;
  spec.families.clear();
  EXPECT_THROW(core::make_scenario_plan(spec, {"met"}), std::invalid_argument);
  spec.families = {"unknown-family"};
  EXPECT_THROW(core::make_scenario_plan(spec, {"met"}), std::invalid_argument);
  spec.families = {"type1"};
  spec.graphs_per_family = 0;
  EXPECT_THROW(core::make_scenario_plan(spec, {"met"}), std::invalid_argument);
  spec.graphs_per_family = 1;
  spec.kernel_counts.clear();
  EXPECT_THROW(core::make_scenario_plan(spec, {"met"}), std::invalid_argument);
}

TEST(ScenarioPlan, RaisesKernelCountsToTheFamilyMinimum) {
  core::ScenarioSweepSpec spec;
  spec.families = {"type2"};
  spec.graphs_per_family = 1;
  spec.kernel_counts = {2};  // below type2's minimum of 15
  const core::ExperimentPlan plan = core::make_scenario_plan(spec, {"met"});
  ASSERT_EQ(plan.graphs.size(), 1u);
  EXPECT_EQ(plan.graphs[0].node_count(), 15u);
}

TEST(ScenarioPlan, CyclesKernelCountsAndVariesSeeds) {
  core::ScenarioSweepSpec spec;
  spec.families = {"layered", "intree"};
  spec.graphs_per_family = 3;
  spec.kernel_counts = {16, 24};
  const core::ExperimentPlan plan = core::make_scenario_plan(spec, {"met"});
  ASSERT_EQ(plan.graphs.size(), 6u);
  EXPECT_EQ(plan.graphs[0].node_count(), 16u);
  EXPECT_EQ(plan.graphs[1].node_count(), 24u);
  EXPECT_EQ(plan.graphs[2].node_count(), 16u);
  // Same family and size, different stream: distinct structures.
  EXPECT_NE(dag::structure_hash(plan.graphs[0]),
            dag::structure_hash(plan.graphs[2]));
  // The plan's table defaults to the paper's when no synthetic spec is set.
  EXPECT_TRUE(plan.table.contains("mm", 1000000));
}

}  // namespace
}  // namespace apt
