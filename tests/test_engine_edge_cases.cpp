// Engine edge cases: overheads combined with queues and releases, empty
// inputs, and transfer queries on boundary nodes.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "test_helpers.hpp"

namespace apt::sim {
namespace {

class EnqueueEverything : public Policy {
 public:
  std::string name() const override { return "enqueue-all"; }
  bool is_dynamic() const override { return true; }
  void on_event(SchedulerContext& ctx) override {
    const std::vector<dag::NodeId> ready = ctx.ready();
    for (dag::NodeId n : ready) ctx.enqueue(n, 0);
  }
};

class AssignEverywhere : public Policy {
 public:
  std::string name() const override { return "assign-any"; }
  bool is_dynamic() const override { return true; }
  void on_event(SchedulerContext& ctx) override {
    for (;;) {
      const auto& ready = ctx.ready();
      const auto idle = ctx.idle_processors();
      if (ready.empty() || idle.empty()) return;
      ctx.assign(ready.front(), idle.front());
    }
  }
};

TEST(EngineEdge, OverheadsApplyToQueuedKernelsToo) {
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  SystemConfig cfg;
  cfg.processors = {lut::ProcType::CPU};
  cfg.decision_overhead_ms = 0.5;
  cfg.dispatch_overhead_ms = 0.5;
  const System sys(cfg);
  MatrixCostModel cost({{2.0}, {2.0}});
  EnqueueEverything policy;
  Engine engine(d, sys, cost);
  const auto result = engine.run(policy);
  // First kernel: enqueued at 0, overheads delay its data-ready to 1.0.
  EXPECT_DOUBLE_EQ(result.schedule[0].exec_start, 1.0);
  EXPECT_DOUBLE_EQ(result.schedule[0].finish_time, 3.0);
  // Second kernel: popped at 3.0; its own overhead window (enqueue at 0
  // + 1.0) already elapsed, so it starts immediately at pop time.
  EXPECT_DOUBLE_EQ(result.schedule[1].exec_start, 3.0);
  EXPECT_DOUBLE_EQ(result.makespan, 5.0);
}

TEST(EngineEdge, ReleaseCombinesWithQueueing) {
  dag::Dag d;
  d.add_node("a", 1, 0.0);
  d.add_node("b", 1, 1.0);  // released mid-flight of a
  const System sys = test::generic_system(1);
  MatrixCostModel cost({{4.0}, {4.0}});
  EnqueueEverything policy;
  Engine engine(d, sys, cost);
  const auto result = engine.run(policy);
  EXPECT_DOUBLE_EQ(result.schedule[1].ready_time, 1.0);
  EXPECT_DOUBLE_EQ(result.schedule[1].exec_start, 4.0);
  EXPECT_DOUBLE_EQ(result.makespan, 8.0);
}

TEST(EngineEdge, AllNodesReleasedInTheFuture) {
  // No kernel is ready at time 0; the engine must advance to the first
  // release instead of declaring a stall.
  dag::Dag d;
  d.add_node("a", 1, 5.0);
  d.add_node("b", 1, 7.0);
  const System sys = test::generic_system(2);
  MatrixCostModel cost({{1.0, 1.0}, {1.0, 1.0}});
  AssignEverywhere policy;
  Engine engine(d, sys, cost);
  const auto result = engine.run(policy);
  EXPECT_DOUBLE_EQ(result.schedule[0].exec_start, 5.0);
  EXPECT_DOUBLE_EQ(result.schedule[1].exec_start, 7.0);
  EXPECT_DOUBLE_EQ(result.makespan, 8.0);
}

TEST(EngineEdge, SimultaneousReleasesKeepIdOrder) {
  dag::Dag d;
  d.add_node("a", 1, 3.0);
  d.add_node("b", 1, 3.0);
  const System sys = test::generic_system(1);
  MatrixCostModel cost({{1.0}, {1.0}});
  AssignEverywhere policy;
  Engine engine(d, sys, cost);
  const auto result = engine.run(policy);
  EXPECT_DOUBLE_EQ(result.schedule[0].exec_start, 3.0);
  EXPECT_DOUBLE_EQ(result.schedule[1].exec_start, 4.0);
}

TEST(EngineEdge, InputTransferOfEntryNodesIsZero) {
  class Probe : public Policy {
   public:
    std::string name() const override { return "probe"; }
    bool is_dynamic() const override { return true; }
    void on_event(SchedulerContext& ctx) override {
      if (ctx.ready().empty()) return;
      EXPECT_DOUBLE_EQ(ctx.input_transfer_ms(0, 0), 0.0);
      EXPECT_DOUBLE_EQ(ctx.input_transfer_ms(0, 1), 0.0);
      ctx.assign(0, 0);
    }
  };
  dag::Dag d;
  d.add_node("a", 1);
  const System sys = test::generic_system(2);
  MatrixCostModel cost({{1.0, 1.0}});
  Probe probe;
  Engine engine(d, sys, cost);
  engine.run(probe);
}

TEST(EngineEdge, EnqueueToSeveralProcessorsInterleaves) {
  class SplitQueues : public Policy {
   public:
    std::string name() const override { return "split-queues"; }
    bool is_dynamic() const override { return true; }
    void on_event(SchedulerContext& ctx) override {
      const std::vector<dag::NodeId> ready = ctx.ready();
      for (dag::NodeId n : ready) ctx.enqueue(n, n % 2);
    }
  };
  dag::Dag d;
  for (int i = 0; i < 4; ++i) d.add_node("k", 1);
  const System sys = test::generic_system(2);
  MatrixCostModel cost({{3.0, 3.0}, {3.0, 3.0}, {3.0, 3.0}, {3.0, 3.0}});
  SplitQueues policy;
  Engine engine(d, sys, cost);
  const auto result = engine.run(policy);
  EXPECT_DOUBLE_EQ(result.makespan, 6.0);  // two per queue, perfectly packed
  EXPECT_EQ(result.schedule[0].proc, 0u);
  EXPECT_EQ(result.schedule[1].proc, 1u);
  EXPECT_DOUBLE_EQ(result.schedule[2].exec_start, 3.0);
  EXPECT_DOUBLE_EQ(result.schedule[3].exec_start, 3.0);
}

TEST(EngineEdge, ZeroDurationTransfersDoNotCreateStalls) {
  // Same-processor chains never pay transfers.
  const dag::Dag d = test::chain({{"a", 1}, {"b", 1}, {"c", 1}});
  const System sys = test::generic_system(1);
  MatrixCostModel cost({{1.0}, {1.0}, {1.0}});
  cost.set_comm_cost(0, 1, 100.0);
  cost.set_comm_cost(1, 2, 100.0);
  AssignEverywhere policy;
  Engine engine(d, sys, cost);
  const auto result = engine.run(policy);
  EXPECT_DOUBLE_EQ(result.makespan, 3.0);
  for (const auto& k : result.schedule)
    EXPECT_DOUBLE_EQ(k.transfer_ms, 0.0);
}

}  // namespace
}  // namespace apt::sim
