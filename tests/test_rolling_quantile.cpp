// Bounded-memory rolling quantile: agreement with the project percentile
// definition while the window holds every sample, eviction once it does
// not, and convergence on stationary input.
#include "util/rolling_quantile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace apt::util {
namespace {

TEST(RollingQuantile, EmptyWindowRejectsQueries) {
  RollingQuantile rq(8);
  EXPECT_TRUE(rq.empty());
  EXPECT_THROW(rq.quantile(0.5), std::invalid_argument);
}

TEST(RollingQuantile, RejectsOutOfRangeQuantiles) {
  RollingQuantile rq(8);
  rq.add(1.0);
  EXPECT_THROW(rq.quantile(-0.01), std::invalid_argument);
  EXPECT_THROW(rq.quantile(1.01), std::invalid_argument);
}

TEST(RollingQuantile, CapacityRaisedToAtLeastOne) {
  RollingQuantile rq(0);
  EXPECT_EQ(rq.capacity(), 1u);
  rq.add(3.0);
  rq.add(7.0);  // evicts 3.0
  EXPECT_EQ(rq.size(), 1u);
  EXPECT_DOUBLE_EQ(rq.quantile(0.5), 7.0);
}

TEST(RollingQuantile, MatchesPercentileOfWhileWindowIsUnfull) {
  // The documented contract: while nothing has aged out, every query is
  // exactly util::percentile_of over the same data.
  RollingQuantile rq(64);
  std::vector<double> xs;
  Rng rng(42);
  for (int i = 0; i < 64; ++i) {
    const double x = rng.uniform01() * 100.0;
    rq.add(x);
    xs.push_back(x);
    for (double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0})
      EXPECT_DOUBLE_EQ(rq.quantile(q), percentile_of(xs, q * 100.0))
          << "i=" << i << " q=" << q;
  }
}

TEST(RollingQuantile, OldSamplesAgeOut) {
  RollingQuantile rq(4);
  for (double x : {100.0, 100.0, 100.0, 100.0}) rq.add(x);
  // Four newer samples push every 100.0 out of the window.
  for (double x : {1.0, 2.0, 3.0, 4.0}) rq.add(x);
  EXPECT_EQ(rq.size(), 4u);
  EXPECT_EQ(rq.count(), 8u);
  EXPECT_DOUBLE_EQ(rq.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(rq.quantile(0.0), 1.0);
}

TEST(RollingQuantile, WindowMatchesTrailingSliceExactly) {
  // After N >> capacity adds the window is precisely the trailing
  // `capacity` samples, in any order — compare against a direct
  // percentile over that slice.
  constexpr std::size_t kCap = 32;
  RollingQuantile rq(kCap);
  std::vector<double> xs;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    rq.add(x);
    xs.push_back(x);
  }
  EXPECT_EQ(rq.size(), kCap);
  EXPECT_EQ(rq.count(), 1000u);
  const std::vector<double> tail(xs.end() - kCap, xs.end());
  for (double q : {0.1, 0.5, 0.9, 0.95})
    EXPECT_DOUBLE_EQ(rq.quantile(q), percentile_of(tail, q * 100.0)) << q;
}

TEST(RollingQuantile, ConvergesOnStationaryUniformInput) {
  // With a 512-sample window over U(0,1), the 0.9-quantile estimate should
  // sit near 0.9 (binomial fluctuation of the order statistic is ~1.3% at
  // this window size; the tolerance is generous).
  RollingQuantile rq(512);
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) rq.add(rng.uniform01());
  EXPECT_NEAR(rq.quantile(0.9), 0.9, 0.05);
  EXPECT_NEAR(rq.quantile(0.5), 0.5, 0.05);
}

}  // namespace
}  // namespace apt::util
