#include "dag/graph.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace apt::dag {
namespace {

TEST(Dag, StartsEmpty) {
  Dag d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.node_count(), 0u);
  EXPECT_EQ(d.edge_count(), 0u);
  EXPECT_EQ(d.depth(), 0u);
  EXPECT_TRUE(d.is_weakly_connected());
}

TEST(Dag, AddNodeReturnsDenseIds) {
  Dag d;
  EXPECT_EQ(d.add_node("a", 1), 0u);
  EXPECT_EQ(d.add_node("b", 2), 1u);
  EXPECT_EQ(d.add_node("c", 3), 2u);
  EXPECT_EQ(d.node_count(), 3u);
  EXPECT_EQ(d.node(1).kernel, "b");
  EXPECT_EQ(d.node(1).data_size, 2u);
}

TEST(Dag, NodeNamesAreCanonicalised) {
  Dag d;
  d.add_node("Matrix Multiplication", 100);
  EXPECT_EQ(d.node(0).kernel, "mm");
}

TEST(Dag, EmptyKernelNameThrows) {
  Dag d;
  EXPECT_THROW(d.add_node("", 1), std::invalid_argument);
}

TEST(Dag, AddEdgeWiresBothDirections) {
  Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  d.add_edge(0, 1);
  EXPECT_TRUE(d.has_edge(0, 1));
  EXPECT_FALSE(d.has_edge(1, 0));
  EXPECT_EQ(d.successors(0), (std::vector<NodeId>{1}));
  EXPECT_EQ(d.predecessors(1), (std::vector<NodeId>{0}));
  EXPECT_EQ(d.in_degree(1), 1u);
  EXPECT_EQ(d.out_degree(0), 1u);
  EXPECT_EQ(d.edge_count(), 1u);
}

TEST(Dag, RejectsBadEdges) {
  Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  EXPECT_THROW(d.add_edge(0, 0), std::invalid_argument);   // self
  EXPECT_THROW(d.add_edge(0, 5), std::invalid_argument);   // unknown
  d.add_edge(0, 1);
  EXPECT_THROW(d.add_edge(0, 1), std::invalid_argument);   // duplicate
}

TEST(Dag, RejectsCycles) {
  Dag d;
  for (int i = 0; i < 3; ++i) d.add_node("k", 1);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  EXPECT_THROW(d.add_edge(2, 0), std::logic_error);
  EXPECT_THROW(d.add_edge(1, 0), std::logic_error);
  EXPECT_EQ(d.edge_count(), 2u);  // failed edges not half-added
  EXPECT_EQ(d.predecessors(0).size(), 0u);
}

TEST(Dag, EntryAndExitNodes) {
  const Dag d = test::diamond({{"a", 1}, {"b", 1}, {"c", 1}, {"d", 1}});
  EXPECT_EQ(d.entry_nodes(), (std::vector<NodeId>{0}));
  EXPECT_EQ(d.exit_nodes(), (std::vector<NodeId>{3}));
}

TEST(Dag, IsolatedNodesAreBothEntryAndExit) {
  Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  EXPECT_EQ(d.entry_nodes().size(), 2u);
  EXPECT_EQ(d.exit_nodes().size(), 2u);
  EXPECT_FALSE(d.is_weakly_connected());
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  const Dag d = test::diamond({{"a", 1}, {"b", 1}, {"c", 1}, {"d", 1}});
  const auto order = d.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NodeId n = 0; n < d.node_count(); ++n) {
    for (NodeId s : d.successors(n)) EXPECT_LT(pos[n], pos[s]);
  }
}

TEST(Dag, TopologicalOrderIsDeterministicMinIdFirst) {
  Dag d;
  for (int i = 0; i < 4; ++i) d.add_node("k", 1);
  d.add_edge(2, 3);
  // 0,1,2 all sources: min-id-first ordering is exactly 0,1,2,3.
  EXPECT_EQ(d.topological_order(), (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(Dag, DepthCountsLevels) {
  const Dag chain = test::chain({{"a", 1}, {"b", 1}, {"c", 1}});
  EXPECT_EQ(chain.depth(), 3u);
  const Dag diamond = test::diamond({{"a", 1}, {"b", 1}, {"c", 1}, {"d", 1}});
  EXPECT_EQ(diamond.depth(), 3u);
  Dag flat;
  flat.add_node("x", 1);
  flat.add_node("y", 1);
  EXPECT_EQ(flat.depth(), 1u);
}

TEST(Dag, WeakConnectivity) {
  Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  EXPECT_FALSE(d.is_weakly_connected());
  d.add_edge(0, 1);
  EXPECT_TRUE(d.is_weakly_connected());
}

TEST(Dag, KernelHistogram) {
  Dag d;
  d.add_node("mm", 1);
  d.add_node("mm", 2);
  d.add_node("bfs", 3);
  const auto hist = d.kernel_histogram();
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist[0], (std::pair<std::string, std::size_t>{"bfs", 1}));
  EXPECT_EQ(hist[1], (std::pair<std::string, std::size_t>{"mm", 2}));
}

TEST(Dag, LargeFanInAndOut) {
  Dag d;
  const NodeId hub = d.add_node("hub", 1);
  for (int i = 0; i < 100; ++i) {
    const NodeId n = d.add_node("leaf", 1);
    d.add_edge(hub, n);
  }
  EXPECT_EQ(d.out_degree(hub), 100u);
  EXPECT_EQ(d.depth(), 2u);
  const auto order = d.topological_order();
  EXPECT_EQ(order.front(), hub);
}

// identical() is the serialise-identically relation structure_hash
// fingerprints; the stream engine's shape pool relies on it to confirm
// hash hits before sharing one cost model across instances.
TEST(Dag, IdenticalMatchesStructureHash) {
  auto make = [] {
    Dag d;
    d.add_node("mm", 100);
    d.add_node("fft", 200);
    d.add_node("mm", 300);
    d.add_edge(0, 1);
    d.add_edge(0, 2);
    return d;
  };
  const Dag a = make();
  EXPECT_TRUE(identical(a, a));
  EXPECT_TRUE(identical(a, make()));
  EXPECT_EQ(structure_hash(a), structure_hash(make()));

  Dag edges = make();  // same nodes, one extra edge
  edges.add_edge(1, 2);
  EXPECT_FALSE(identical(a, edges));

  Dag data = make();
  data = Dag();
  data.add_node("mm", 100);
  data.add_node("fft", 201);  // data size differs
  data.add_node("mm", 300);
  data.add_edge(0, 1);
  data.add_edge(0, 2);
  EXPECT_FALSE(identical(a, data));

  Dag release = make();
  release.set_release_ms(1, 5.0);  // release times compare bitwise
  EXPECT_FALSE(identical(a, release));
  EXPECT_NE(structure_hash(a), structure_hash(release));

  Dag smaller;
  smaller.add_node("mm", 100);
  EXPECT_FALSE(identical(a, smaller));
}

}  // namespace
}  // namespace apt::dag
