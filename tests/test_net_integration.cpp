// End-to-end tests of the contention-aware interconnect subsystem:
//
//  * the ideal topology reproduces the default engine bit for bit (the
//    golden suite pins the default; this file pins ideal == default);
//  * property: over 120 seeded scenarios on a finite-bandwidth bus, every
//    policy's schedule passes the validator — including the per-link
//    capacity check, so no link ever exceeds its bandwidth;
//  * HEFT makespans are monotonically non-decreasing as bus bandwidth
//    shrinks;
//  * the stream engine under contention passes the cross-instance
//    validator and reproduces the closed-system engine on single-arrival
//    streams.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/policy_factory.hpp"
#include "lut/synthetic.hpp"
#include "net/topology.hpp"
#include "policies/heft.hpp"
#include "policies/static_plan.hpp"
#include "scenario/scenario.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/validate.hpp"
#include "stream/stream_engine.hpp"

namespace apt {
namespace {

sim::System make_system(const std::string& topology, double bandwidth_gbps,
                        double latency_ms = 0.0, double rate_gbps = 4.0) {
  sim::SystemConfig cfg = sim::SystemConfig::paper_default(rate_gbps);
  cfg.topology = net::parse_topology_spec(topology);
  cfg.topology.bandwidth_gbps = bandwidth_gbps;
  cfg.topology.latency_ms = latency_ms;
  return sim::System(cfg);
}

/// A communication-heavy synthetic platform so contention actually bites.
lut::LookupTable test_table() {
  lut::SyntheticLutSpec spec;
  spec.ccr = 1.0;
  spec.heterogeneity = 4.0;
  spec.seed = 0xBEEF;
  return lut::synthetic_lookup_table(spec);
}

TEST(NetIntegration, IdealTopologyMatchesDefaultBitForBit) {
  const lut::LookupTable table = test_table();
  const dag::KernelPool pool = dag::KernelPool::from_lookup_table(table);
  const sim::System standard(sim::SystemConfig::paper_default());
  const sim::System ideal = make_system("ideal", 0.0);
  for (const std::string spec : {"apt:4", "ag", "heft", "peft"}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const dag::Dag graph = scenario::generate("layered", 40, seed, pool);
      const sim::LutCostModel cost_a(table, standard);
      const sim::LutCostModel cost_b(table, ideal);
      auto policy_a = core::make_policy(spec);
      auto policy_b = core::make_policy(spec);
      const sim::SimResult a =
          sim::Engine(graph, standard, cost_a).run(*policy_a);
      const sim::SimResult b = sim::Engine(graph, ideal, cost_b).run(*policy_b);
      ASSERT_EQ(a.makespan, b.makespan) << spec << " seed " << seed;
      ASSERT_TRUE(b.transfers.empty());
      for (dag::NodeId n = 0; n < graph.node_count(); ++n) {
        ASSERT_EQ(a.schedule[n].proc, b.schedule[n].proc);
        ASSERT_EQ(a.schedule[n].exec_start, b.schedule[n].exec_start);
        ASSERT_EQ(a.schedule[n].finish_time, b.schedule[n].finish_time);
        ASSERT_EQ(a.schedule[n].transfer_ms, b.schedule[n].transfer_ms);
      }
    }
  }
}

// The headline property: >= 120 seeded scenarios on a finite-bandwidth
// bus, five policies each, every schedule validator-clean — which includes
// the link-capacity invariant (bytes <= bandwidth x busy time per link).
TEST(NetIntegration, BusSchedulesAreValidatorCleanAcrossScenarioCube) {
  const lut::LookupTable table = test_table();
  const dag::KernelPool pool = dag::KernelPool::from_lookup_table(table);
  const std::vector<std::string> families = {"layered", "forkjoin", "intree",
                                             "type2"};
  const std::vector<std::string> specs = {"apt:4", "met", "ag", "heft",
                                          "peft"};
  const sim::System system = make_system("bus", 1.0, 0.05);
  const sim::LutCostModel cost(table, system);
  std::size_t scenarios = 0;
  std::size_t transfers_seen = 0;
  for (const std::string& family : families) {
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
      const dag::Dag graph = scenario::generate(family, 30, seed, pool);
      ++scenarios;
      for (const std::string& spec : specs) {
        auto policy = core::make_policy(spec);
        const sim::SimResult result =
            sim::Engine(graph, system, cost).run(*policy);
        transfers_seen += result.transfers.size();
        const auto violations =
            sim::validate_schedule(graph, system, cost, result);
        for (const auto& v : violations)
          ADD_FAILURE() << family << "/" << seed << "/" << spec << ": "
                        << v.message;
      }
    }
  }
  EXPECT_GE(scenarios, 120u);
  // The cube genuinely exercises the links (a policy may occasionally pin
  // one graph to a single processor, but not the whole cube).
  EXPECT_GT(transfers_seen, 1000u);
}

/// Replays a fixed static plan — the harness for the monotonicity
/// property: with the placement held constant, shrinking bandwidth can
/// only delay transfers, so makespans must be non-decreasing. (A
/// re-planning HEFT is *not* monotone: at very low bandwidth its
/// topology-aware ranks produce comm-free plans that legitimately beat
/// its high-bandwidth schedules.)
class ReplayPolicy final : public policies::StaticPolicyBase {
 public:
  explicit ReplayPolicy(policies::StaticPlan plan)
      : replay_(std::move(plan)) {}
  std::string name() const override { return "replay"; }

 protected:
  policies::StaticPlan compute_plan(const dag::Dag&, const sim::System&,
                                    const sim::CostModel&) override {
    return replay_;
  }

 private:
  policies::StaticPlan replay_;
};

TEST(NetIntegration, HeftMakespanMonotoneAsBandwidthShrinks) {
  const lut::LookupTable table = test_table();
  const dag::KernelPool pool = dag::KernelPool::from_lookup_table(table);
  const std::vector<double> bandwidths = {16.0, 4.0, 1.0, 0.25};  // shrinking
  for (const std::string family : {"layered", "type2", "forkjoin"}) {
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      const dag::Dag graph = scenario::generate(family, 30, seed, pool);
      // HEFT plans once against the best fabric; the plan then replays
      // under every bandwidth.
      policies::Heft heft;
      const sim::System planning_system = make_system("bus", bandwidths[0]);
      const sim::LutCostModel planning_cost(table, planning_system);
      sim::Engine(graph, planning_system, planning_cost).run(heft);
      const policies::StaticPlan plan = heft.plan();

      double previous = 0.0;
      for (const double bw : bandwidths) {
        const sim::System system = make_system("bus", bw);
        const sim::LutCostModel cost(table, system);
        ReplayPolicy replay(plan);
        const sim::SimResult result =
            sim::Engine(graph, system, cost).run(replay);
        const auto violations =
            sim::validate_schedule(graph, system, cost, result);
        for (const auto& v : violations)
          ADD_FAILURE() << family << "/" << seed << "/bw" << bw << ": "
                        << v.message;
        EXPECT_GE(result.makespan + 1e-6, previous)
            << family << " seed " << seed << " at bw " << bw;
        previous = std::max(previous, result.makespan);
      }
    }
  }
}

TEST(NetIntegration, ContendedMetricsReportLinksAndOverlap) {
  const lut::LookupTable table = test_table();
  const dag::KernelPool pool = dag::KernelPool::from_lookup_table(table);
  const dag::Dag graph = scenario::generate("layered", 40, 3, pool);
  const sim::System system = make_system("bus", 0.5);
  const sim::LutCostModel cost(table, system);
  auto policy = core::make_policy("apt:4");
  const sim::SimResult result = sim::Engine(graph, system, cost).run(*policy);
  const sim::SimMetrics metrics = sim::compute_metrics(graph, system, result);
  ASSERT_EQ(metrics.per_link.size(), 1u);
  const sim::LinkBreakdown& bus = metrics.per_link[0];
  EXPECT_EQ(bus.name, "bus");
  EXPECT_GT(bus.busy_ms, 0.0);
  EXPECT_GT(bus.bytes, 0.0);
  EXPECT_EQ(bus.transfer_count, result.transfers.size());
  EXPECT_LE(bus.utilization, 1.0 + 1e-9);
  EXPECT_LE(metrics.comm_compute_overlap_ms, metrics.comm_busy_ms + 1e-9);
  EXPECT_LE(metrics.comm_busy_ms, metrics.makespan + 1e-9);
  // The link can never deliver more than bandwidth x busy time.
  EXPECT_LE(bus.bytes, 0.5 * 1e6 * bus.busy_ms * (1.0 + 1e-9));
}

TEST(NetIntegration, HierarchicalSocketTransfersAreLocal) {
  // CPU+GPU share socket 0, FPGA sits alone in socket 1: only edges that
  // cross the socket boundary may appear in the transfer log.
  const lut::LookupTable table = test_table();
  const dag::KernelPool pool = dag::KernelPool::from_lookup_table(table);
  const dag::Dag graph = scenario::generate("type2", 30, 5, pool);
  const sim::System system = make_system("hier:2", 1.0);
  const sim::LutCostModel cost(table, system);
  auto policy = core::make_policy("ag");
  const sim::SimResult result = sim::Engine(graph, system, cost).run(*policy);
  for (const sim::TransferRecord& t : result.transfers) {
    const bool crosses = (t.from / 2) != (t.to / 2);
    EXPECT_TRUE(crosses) << "intra-socket transfer " << t.from << "->"
                         << t.to;
  }
  const auto violations = sim::validate_schedule(graph, system, cost, result);
  for (const auto& v : violations) ADD_FAILURE() << v.message;
}

TEST(NetIntegration, StreamEngineUnderBusIsValidatorClean) {
  const lut::LookupTable table = test_table();
  const dag::KernelPool pool = dag::KernelPool::from_lookup_table(table);
  const sim::System system = make_system("bus", 1.0, 0.05);
  const sim::LutCostModel cost(table, system);

  stream::StreamOptions options;
  options.arrivals = stream::ArrivalSpec::deterministic(0.0005);  // 2 s gaps
  options.max_apps = 8;
  options.record_schedules = true;
  stream::StreamEngine engine(
      system, cost,
      [&](std::size_t index) {
        return scenario::generate("layered", 24, 100 + index, pool);
      },
      options);
  auto policy = core::make_policy("apt:4");
  const stream::StreamOutcome outcome = engine.run(*policy);
  ASSERT_EQ(outcome.schedules.size(), 8u);

  std::vector<sim::StreamAppView> views;
  bool any_transfers = false;
  for (const auto& app : outcome.schedules) {
    views.push_back(sim::StreamAppView{&app.dag, app.arrival_ms, &app.result});
    any_transfers = any_transfers || !app.result.transfers.empty();
  }
  EXPECT_TRUE(any_transfers);
  const auto violations = sim::validate_stream_schedule(system, views);
  for (const auto& v : violations) ADD_FAILURE() << v.message;
  ASSERT_FALSE(outcome.metrics.per_link.empty());
  EXPECT_GT(outcome.metrics.per_link[0].transfer_count, 0u);
  EXPECT_GT(outcome.metrics.per_link[0].bytes, 0.0);
}

TEST(NetIntegration, SingleArrivalStreamMatchesEngineUnderBus) {
  const lut::LookupTable table = test_table();
  const dag::KernelPool pool = dag::KernelPool::from_lookup_table(table);
  const dag::Dag graph = scenario::generate("forkjoin", 30, 11, pool);
  const sim::System system = make_system("bus", 1.0);
  const sim::LutCostModel cost(table, system);

  auto engine_policy = core::make_policy("apt:4");
  const sim::SimResult closed =
      sim::Engine(graph, system, cost).run(*engine_policy);

  stream::StreamOptions options;
  options.arrivals = stream::ArrivalSpec::trace({0.0});
  options.record_schedules = true;
  stream::StreamEngine stream_engine(
      system, cost, [&](std::size_t) { return graph; }, options);
  auto stream_policy = core::make_policy("apt:4");
  const stream::StreamOutcome outcome = stream_engine.run(*stream_policy);
  ASSERT_EQ(outcome.schedules.size(), 1u);
  const sim::SimResult& open = outcome.schedules[0].result;
  ASSERT_EQ(open.schedule.size(), closed.schedule.size());
  for (dag::NodeId n = 0; n < graph.node_count(); ++n) {
    EXPECT_EQ(open.schedule[n].proc, closed.schedule[n].proc) << n;
    EXPECT_EQ(open.schedule[n].exec_start, closed.schedule[n].exec_start) << n;
    EXPECT_EQ(open.schedule[n].finish_time, closed.schedule[n].finish_time)
        << n;
  }
  ASSERT_EQ(open.transfers.size(), closed.transfers.size());
  for (std::size_t i = 0; i < open.transfers.size(); ++i) {
    EXPECT_EQ(open.transfers[i].finish, closed.transfers[i].finish) << i;
    EXPECT_EQ(open.transfers[i].path, closed.transfers[i].path) << i;
  }
}

// Routed-topology property: ring / mesh / fattree scenarios across the
// family cube, every schedule validator-clean — the per-link capacity
// check now unions busy time over every hop of each multi-link route, so
// a transfer manager that oversubscribed any relay link would fail here.
TEST(NetIntegration, RoutedSchedulesAreValidatorCleanAcrossScenarioCube) {
  const lut::LookupTable table = test_table();
  const dag::KernelPool pool = dag::KernelPool::from_lookup_table(table);
  const std::vector<std::string> families = {"layered", "forkjoin", "intree",
                                             "type2"};
  const std::vector<std::string> topologies = {"ring:5", "mesh:2x2",
                                               "fattree:2"};
  // The comm-aware variants ride the same cube: backlog-priced choices
  // must still produce validator-clean schedules on every routed fabric.
  const std::vector<std::string> specs = {"apt:4", "apt-c:4", "apt-q:4",
                                          "ag", "ag-net", "heft"};
  std::size_t scenarios = 0;
  std::size_t transfers_seen = 0;
  std::size_t multi_hop_seen = 0;
  for (const std::string& topology : topologies) {
    const sim::System system = make_system(topology, 1.0, 0.05);
    const sim::LutCostModel cost(table, system);
    for (const std::string& family : families) {
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const dag::Dag graph = scenario::generate(family, 24, seed, pool);
        ++scenarios;
        for (const std::string& spec : specs) {
          auto policy = core::make_policy(spec);
          const sim::SimResult result =
              sim::Engine(graph, system, cost).run(*policy);
          for (const sim::TransferRecord& t : result.transfers) {
            ++transfers_seen;
            if (t.hops() > 1) ++multi_hop_seen;
          }
          const auto violations =
              sim::validate_schedule(graph, system, cost, result);
          for (const auto& v : violations)
            ADD_FAILURE() << topology << "/" << family << "/" << seed << "/"
                          << spec << ": " << v.message;
        }
      }
    }
  }
  EXPECT_GE(scenarios, 120u);
  EXPECT_GT(transfers_seen, 1000u);
  // The cube genuinely exercises relaying: plenty of routes span > 1 link.
  EXPECT_GT(multi_hop_seen, 100u);
}

TEST(NetIntegration, SingleArrivalStreamMatchesEngineUnderRing) {
  const lut::LookupTable table = test_table();
  const dag::KernelPool pool = dag::KernelPool::from_lookup_table(table);
  const dag::Dag graph = scenario::generate("type2", 30, 4, pool);
  const sim::System system = make_system("ring:5", 1.0, 0.05);
  const sim::LutCostModel cost(table, system);

  auto engine_policy = core::make_policy("apt:4");
  const sim::SimResult closed =
      sim::Engine(graph, system, cost).run(*engine_policy);

  stream::StreamOptions options;
  options.arrivals = stream::ArrivalSpec::trace({0.0});
  options.record_schedules = true;
  stream::StreamEngine stream_engine(
      system, cost, [&](std::size_t) { return graph; }, options);
  auto stream_policy = core::make_policy("apt:4");
  const stream::StreamOutcome outcome = stream_engine.run(*stream_policy);
  ASSERT_EQ(outcome.schedules.size(), 1u);
  const sim::SimResult& open = outcome.schedules[0].result;
  for (dag::NodeId n = 0; n < graph.node_count(); ++n) {
    ASSERT_EQ(open.schedule[n].proc, closed.schedule[n].proc) << n;
    ASSERT_EQ(open.schedule[n].finish_time, closed.schedule[n].finish_time)
        << n;
  }
  ASSERT_EQ(open.transfers.size(), closed.transfers.size());
  for (std::size_t i = 0; i < open.transfers.size(); ++i) {
    EXPECT_EQ(open.transfers[i].finish, closed.transfers[i].finish) << i;
    EXPECT_EQ(open.transfers[i].path, closed.transfers[i].path) << i;
  }
}

// --- done_eps completion contract through both engines -----------------------

namespace {

/// Two CPUs joined by a slow, lossy-latency bus; the matrix forces the
/// chain's producer onto P0 and its consumer onto P1, so the one edge
/// always crosses the link.
sim::System two_proc_bus() {
  sim::SystemConfig cfg;
  cfg.processors.assign(2, lut::ProcType::CPU);
  cfg.topology = net::parse_topology_spec("bus");
  cfg.topology.bandwidth_gbps = 1.0;
  cfg.topology.latency_ms = 0.1;
  return sim::System(cfg);
}

dag::Dag crossing_chain(std::uint64_t producer_elements) {
  dag::Dag d;
  d.add_node(dag::Node{"produce", producer_elements});
  d.add_node(dag::Node{"consume", 1});
  d.add_edge(0, 1);
  return d;
}

sim::MatrixCostModel crossing_cost() {
  return sim::MatrixCostModel({{1.0, 100.0}, {100.0, 1.0}});
}

}  // namespace

// A zero-byte (latency-only) edge and a multi-GB edge must both deliver
// exactly once and never stall the closed-system event loop.
TEST(NetIntegration, DoneEpsContractHoldsThroughEngine) {
  const sim::System system = two_proc_bus();
  for (const std::uint64_t elements : {std::uint64_t{0},
                                       std::uint64_t{1000000000}}) {
    const dag::Dag graph = crossing_chain(elements);
    const sim::MatrixCostModel cost = crossing_cost();
    auto policy = core::make_policy("met");
    const sim::SimResult result =
        sim::Engine(graph, system, cost).run(*policy);
    ASSERT_EQ(result.transfers.size(), 1u) << elements;
    const sim::TransferRecord& t = result.transfers[0];
    const double bytes = static_cast<double>(elements) * 4.0;
    EXPECT_DOUBLE_EQ(t.bytes, bytes);
    // 1 GB/s == 1e6 bytes/ms; the lone message drains uncontended, so its
    // finish is exactly drain_start + bytes / rate (0 for the latency-only
    // edge: delivered at activation).
    EXPECT_NEAR(t.finish, t.drain_start + bytes / 1e6,
                1e-9 * std::max(1.0, bytes / 1e6));
    EXPECT_DOUBLE_EQ(t.drain_start, t.start + 0.1);
    const auto violations =
        sim::validate_schedule(graph, system, cost, result);
    for (const auto& v : violations) ADD_FAILURE() << v.message;
  }
}

TEST(NetIntegration, DoneEpsContractHoldsThroughStreamEngine) {
  const sim::System system = two_proc_bus();
  for (const std::uint64_t elements : {std::uint64_t{0},
                                       std::uint64_t{1000000000}}) {
    const dag::Dag graph = crossing_chain(elements);
    const sim::MatrixCostModel cost = crossing_cost();
    stream::StreamOptions options;
    options.arrivals = stream::ArrivalSpec::trace({0.0});
    options.record_schedules = true;
    stream::StreamEngine engine(
        system, cost, [&](std::size_t) { return graph; }, options);
    auto policy = core::make_policy("met");
    const stream::StreamOutcome outcome = engine.run(*policy);
    ASSERT_EQ(outcome.schedules.size(), 1u) << elements;
    const sim::SimResult& result = outcome.schedules[0].result;
    ASSERT_EQ(result.transfers.size(), 1u) << elements;
    const double bytes = static_cast<double>(elements) * 4.0;
    EXPECT_NEAR(result.transfers[0].finish,
                result.transfers[0].drain_start + bytes / 1e6,
                1e-9 * std::max(1.0, bytes / 1e6));
    EXPECT_EQ(outcome.metrics.apps_completed, 1u);
  }
}

// --- stream link-metrics warmup clipping (regression) ------------------------

// All communication happens during warmup; one compute-only app after the
// boundary keeps the run alive past it. The steady-state link utilization
// must therefore be exactly zero — the old whole-run accounting divided
// warmup busy time by end_ms and reported inflated utilization here.
TEST(NetIntegration, StreamLinkMetricsClipToObservationWindow) {
  const lut::LookupTable table = test_table();
  const dag::KernelPool pool = dag::KernelPool::from_lookup_table(table);
  const sim::System system = make_system("bus", 1.0, 0.05);
  const sim::LutCostModel cost(table, system);
  dag::Dag single;
  single.add_node(
      dag::Node{pool.items[0].kernel, pool.items[0].sizes.front()});

  const auto run = [&](std::vector<double> arrivals, double warmup_ms) {
    stream::StreamOptions options;
    options.arrivals = stream::ArrivalSpec::trace(std::move(arrivals));
    options.warmup_ms = warmup_ms;
    stream::StreamEngine engine(
        system, cost,
        [&](std::size_t index) {
          return index < 3 ? scenario::generate("layered", 24, 40 + index,
                                                pool)
                           : single;
        },
        options);
    auto policy = core::make_policy("apt:4");
    return engine.run(*policy);
  };

  // Probe: the three comm-heavy apps alone, whole run observed. This is
  // the traffic the old whole-run accounting leaked into every window.
  const stream::StreamOutcome biased = run({0.0, 1.0, 2.0}, 0.0);
  ASSERT_FALSE(biased.metrics.per_link.empty());
  EXPECT_GT(biased.metrics.per_link[0].busy_ms, 0.0);
  EXPECT_GT(biased.metrics.per_link[0].bytes, 0.0);
  EXPECT_GT(biased.metrics.per_link[0].utilization, 0.0);
  const double all_done = biased.metrics.end_ms;

  // Same comm apps, but the warmup boundary sits after their last byte and
  // a compute-only app keeps the run alive beyond it.
  const stream::StreamOutcome clipped =
      run({0.0, 1.0, 2.0, all_done + 1000.0}, all_done + 500.0);
  ASSERT_FALSE(clipped.metrics.per_link.empty());
  EXPECT_GE(clipped.metrics.end_ms, all_done + 1000.0);
  // ...but none of it belongs to the observation window: whole-run
  // accounting (the old bias) would have reported the busy fraction above.
  EXPECT_DOUBLE_EQ(clipped.metrics.per_link[0].busy_ms, 0.0);
  EXPECT_DOUBLE_EQ(clipped.metrics.per_link[0].bytes, 0.0);
  EXPECT_DOUBLE_EQ(clipped.metrics.per_link[0].utilization, 0.0);
  EXPECT_EQ(clipped.metrics.per_link[0].transfer_count, 0u);
}

}  // namespace
}  // namespace apt
