#include "policies/ag.hpp"

#include <gtest/gtest.h>

#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "test_helpers.hpp"

namespace apt::policies {
namespace {

TEST(AdaptiveGreedy, PrefersTheEmptiestQueue) {
  // Two identical kernels on two identical processors: they spread out.
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{4.0, 4.0}, {4.0, 4.0}});
  AdaptiveGreedy ag;
  const auto result = test::run_and_validate(ag, d, sys, cost);
  EXPECT_NE(result.schedule[0].proc, result.schedule[1].proc);
  EXPECT_DOUBLE_EQ(result.makespan, 4.0);
}

TEST(AdaptiveGreedy, QueueingDelayAccumulatesAcrossEnqueues) {
  // Three 4ms kernels, one 1ms-per-kernel processor p0 vs a 5ms p1:
  // tau(p0)=0 -> first to p0; tau(p0)=4 vs tau(p1)=0 -> second to p1;
  // tau(p0)=4 vs tau(p1)=5 -> third queues behind p0.
  dag::Dag d;
  for (int i = 0; i < 3; ++i) d.add_node("k", 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{4.0, 5.0}, {4.0, 5.0}, {4.0, 5.0}});
  AdaptiveGreedy ag;
  const auto result = test::run_and_validate(ag, d, sys, cost);
  EXPECT_EQ(result.schedule[0].proc, 0u);
  EXPECT_EQ(result.schedule[1].proc, 1u);
  EXPECT_EQ(result.schedule[2].proc, 0u);
  EXPECT_DOUBLE_EQ(result.schedule[2].exec_start, 4.0);
}

TEST(AdaptiveGreedy, MinimisesTransferNotExecution) {
  // b depends on a (on p0). Moving b to p1 is 1 ms faster to compute but
  // costs a 10 ms transfer: AG keeps b local even though p1 is faster.
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  d.add_edge(0, 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{1.0, 50.0}, {5.0, 4.0}});
  cost.set_comm_cost(0, 1, 10.0);
  AdaptiveGreedy ag;
  const auto result = test::run_and_validate(ag, d, sys, cost);
  EXPECT_EQ(result.schedule[1].proc, 0u);
}

TEST(AdaptiveGreedy, AcceptsTransferWhenQueueDelayDominates) {
  // p0 is clogged by a long kernel; the dependent kernel pays the small
  // transfer to run on the idle p1 instead of queueing.
  dag::Dag d;
  d.add_node("long", 1);   // 0: runs 100 ms on p0
  d.add_node("a", 1);      // 1: source of data on p0...
  d.add_node("b", 1);      // 2: depends on 1
  d.add_edge(1, 2);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{100.0, 200.0}, {1.0, 90.0}, {5.0, 5.0}});
  cost.set_comm_cost(1, 2, 2.0);
  AdaptiveGreedy ag;
  const auto result = test::run_and_validate(ag, d, sys, cost);
  EXPECT_EQ(result.schedule[0].proc, 0u);
  EXPECT_EQ(result.schedule[1].proc, 1u);  // p0 has 100ms queued
  // b: tau(p0) = remaining ~99 vs tau(p1) = 0 + transfer 2 -> p1.
  EXPECT_EQ(result.schedule[2].proc, 1u);
}

TEST(AdaptiveGreedy, EverythingQueuesImmediatelyButStillWaitsInQueues) {
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, 0);
  const sim::System sys = test::paper_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
  AdaptiveGreedy ag;
  const auto result = test::run_and_validate(ag, graph, sys, cost);
  double total_queue_wait = 0.0;
  for (const auto& k : result.schedule) {
    // Commitment happens the instant the kernel becomes ready...
    EXPECT_DOUBLE_EQ(k.assign_time, k.ready_time) << "node " << k.node;
    // ...but λ still accrues while the kernel sits in the queue.
    EXPECT_GE(k.wait_ms(), -1e-9);
    total_queue_wait += k.wait_ms();
  }
  EXPECT_GT(total_queue_wait, 0.0);
}

TEST(AdaptiveGreedy, RecentAverageEstimatorUsesHistory) {
  // Probe the Eq.-2 estimator: after two 4ms completions on p0 and none on
  // p1, a queued p0 (1 running) estimates 1*4=4 versus p1's 0.
  dag::Dag d;
  for (int i = 0; i < 4; ++i) d.add_node("k", 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost(
      {{4.0, 40.0}, {4.0, 40.0}, {4.0, 40.0}, {4.0, 40.0}});
  AgOptions options;
  options.estimate = AgQueueEstimate::RecentAverage;
  AdaptiveGreedy ag(options);
  const auto result = test::run_and_validate(ag, d, sys, cost);
  // With an empty history everything looks free; the first pass spreads
  // kernels by transfer cost only (all zero) -> everything lands on p0's
  // queue first, then the estimator kicks in.
  std::size_t on_p0 = 0;
  for (const auto& k : result.schedule) on_p0 += (k.proc == 0) ? 1 : 0;
  EXPECT_GE(on_p0, 2u);
}

TEST(AdaptiveGreedy, HistoryWindowValidation) {
  AgOptions bad;
  bad.history_window = 0;
  EXPECT_THROW(AdaptiveGreedy{bad}, std::invalid_argument);
}

TEST(AdaptiveGreedy, HandlesPaperWorkloads) {
  for (dag::DfgType type : {dag::DfgType::Type1, dag::DfgType::Type2}) {
    const dag::Dag graph = dag::paper_graph(type, 2);
    const sim::System sys = test::paper_system();
    const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
    AdaptiveGreedy ag;
    test::run_and_validate(ag, graph, sys, cost);
  }
}

}  // namespace
}  // namespace apt::policies
