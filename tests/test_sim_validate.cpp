#include "sim/validate.hpp"

#include <gtest/gtest.h>

#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "policies/met.hpp"
#include "sim/engine.hpp"
#include "test_helpers.hpp"

namespace apt::sim {
namespace {

MatrixCostModel unit_cost(std::size_t nodes, std::size_t procs) {
  return MatrixCostModel(std::vector<std::vector<TimeMs>>(
      nodes, std::vector<TimeMs>(procs, 1.0)));
}

SimResult valid_two_kernel_result() {
  SimResult r;
  ScheduledKernel a;
  a.node = 0;
  a.proc = 0;
  a.exec_ms = 1.0;
  a.finish_time = 1.0;
  ScheduledKernel b;
  b.node = 1;
  b.proc = 0;
  b.ready_time = 1.0;
  b.assign_time = 1.0;
  b.exec_start = 1.0;
  b.exec_ms = 1.0;
  b.finish_time = 2.0;
  r.schedule = {a, b};
  r.makespan = 2.0;
  return r;
}

class ValidateFixture : public ::testing::Test {
 protected:
  ValidateFixture()
      : dag_(test::chain({{"a", 1}, {"b", 1}})),
        sys_(test::generic_system(1)),
        cost_(unit_cost(2, 1)) {}
  dag::Dag dag_;
  System sys_;
  MatrixCostModel cost_;
};

TEST_F(ValidateFixture, AcceptsAValidSchedule) {
  EXPECT_TRUE(
      validate_schedule(dag_, sys_, cost_, valid_two_kernel_result()).empty());
}

TEST_F(ValidateFixture, DetectsSizeMismatch) {
  SimResult r;
  EXPECT_FALSE(validate_schedule(dag_, sys_, cost_, r).empty());
}

TEST_F(ValidateFixture, DetectsInvalidProcessor) {
  auto r = valid_two_kernel_result();
  r.schedule[0].proc = 7;
  EXPECT_FALSE(validate_schedule(dag_, sys_, cost_, r).empty());
}

TEST_F(ValidateFixture, DetectsPrecedenceViolation) {
  auto r = valid_two_kernel_result();
  r.schedule[1].exec_start = 0.5;  // before predecessor finished
  r.schedule[1].finish_time = 1.5;
  EXPECT_FALSE(validate_schedule(dag_, sys_, cost_, r).empty());
}

TEST_F(ValidateFixture, DetectsWrongExecTime) {
  auto r = valid_two_kernel_result();
  r.schedule[0].exec_ms = 0.5;
  r.schedule[0].finish_time = 0.5;
  EXPECT_FALSE(validate_schedule(dag_, sys_, cost_, r).empty());
}

TEST_F(ValidateFixture, DetectsBrokenTimeline) {
  auto r = valid_two_kernel_result();
  r.schedule[1].assign_time = 0.5;  // assigned before ready (ready at 1.0)
  EXPECT_FALSE(validate_schedule(dag_, sys_, cost_, r).empty());
}

TEST_F(ValidateFixture, DetectsWrongMakespan) {
  auto r = valid_two_kernel_result();
  r.makespan = 99.0;
  EXPECT_FALSE(validate_schedule(dag_, sys_, cost_, r).empty());
}

TEST(Validate, DetectsProcessorOverlap) {
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  const System sys = test::generic_system(1);
  const auto cost = unit_cost(2, 1);
  SimResult r;
  for (dag::NodeId i = 0; i < 2; ++i) {
    ScheduledKernel k;
    k.node = i;
    k.proc = 0;
    k.exec_start = 0.0;  // both at once on one processor
    k.exec_ms = 1.0;
    k.finish_time = 1.0;
    r.schedule.push_back(k);
  }
  r.makespan = 1.0;
  EXPECT_FALSE(validate_schedule(d, sys, cost, r).empty());
}

TEST(CriticalPath, SingleChainIsSumOfBestTimes) {
  const dag::Dag d = test::chain({{"a", 1}, {"b", 1}, {"c", 1}});
  const System sys = test::generic_system(2);
  MatrixCostModel cost({{2.0, 5.0}, {7.0, 3.0}, {4.0, 9.0}});
  EXPECT_DOUBLE_EQ(critical_path_lower_bound_ms(d, sys, cost), 9.0);
}

TEST(CriticalPath, ParallelBranchesTakeTheLongest) {
  const dag::Dag d = test::diamond({{"a", 1}, {"b", 1}, {"c", 1}, {"d", 1}});
  const System sys = test::generic_system(1);
  MatrixCostModel cost({{1.0}, {10.0}, {2.0}, {1.0}});
  EXPECT_DOUBLE_EQ(critical_path_lower_bound_ms(d, sys, cost), 12.0);
}

TEST(CriticalPath, EmptyDagIsZero) {
  dag::Dag d;
  const System sys = test::generic_system(1);
  const auto cost = unit_cost(1, 1);  // unused: the DAG is empty
  EXPECT_DOUBLE_EQ(critical_path_lower_bound_ms(d, sys, cost), 0.0);
}

TEST(CriticalPath, LowerBoundsEveryRealSchedule) {
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type2, 2);
  const System sys = test::paper_system();
  const LutCostModel cost(lut::paper_lookup_table(), sys);
  policies::Met met;
  Engine engine(graph, sys, cost);
  const auto result = engine.run(met);
  EXPECT_GE(result.makespan,
            critical_path_lower_bound_ms(graph, sys, cost) - 1e-9);
}

// --- validate_stream_schedule edge cases -------------------------------------

/// One-kernel application executing [start, start + exec) on `proc`.
struct OneKernelApp {
  dag::Dag dag;
  SimResult result;

  OneKernelApp(TimeMs arrival, ProcId proc, TimeMs start, TimeMs exec) {
    dag.add_node("k", 1);
    ScheduledKernel k;
    k.node = 0;
    k.proc = proc;
    k.ready_time = arrival;
    k.assign_time = start;
    k.exec_start = start;
    k.exec_ms = exec;
    k.finish_time = start + exec;
    result.schedule = {k};
    result.makespan = k.finish_time;
  }

  StreamAppView view(TimeMs arrival) const {
    return StreamAppView{&dag, arrival, &result};
  }
};

TEST(ValidateStream, AcceptsZeroDurationKernels) {
  // Three zero-duration kernels from three apps at the SAME instant on the
  // same processor: all occupation intervals are empty, nothing overlaps.
  const System sys = test::generic_system(1);
  const OneKernelApp a(0.0, 0, 5.0, 0.0);
  const OneKernelApp b(0.0, 0, 5.0, 0.0);
  const OneKernelApp c(0.0, 0, 5.0, 0.0);
  const auto violations = validate_stream_schedule(
      sys, {a.view(0.0), b.view(0.0), c.view(0.0)});
  for (const auto& v : violations) ADD_FAILURE() << v.message;
}

TEST(ValidateStream, AcceptsZeroDurationKernelInsideABusyStretch) {
  // A zero-duration kernel exactly at another app's finish boundary.
  const System sys = test::generic_system(1);
  const OneKernelApp busy(0.0, 0, 0.0, 7.0);
  const OneKernelApp instant(0.0, 0, 7.0, 0.0);
  const OneKernelApp next(0.0, 0, 7.0, 3.0);
  const auto violations = validate_stream_schedule(
      sys, {busy.view(0.0), instant.view(0.0), next.view(0.0)});
  for (const auto& v : violations) ADD_FAILURE() << v.message;
}

TEST(ValidateStream, AcceptsBackToBackReuseAtIdenticalTimestamps) {
  // App B picks the processor up at the exact instant app A releases it —
  // the [from, to) convention makes the shared timestamp legal.
  const System sys = test::generic_system(1);
  const OneKernelApp a(0.0, 0, 0.0, 5.0);
  const OneKernelApp b(0.0, 0, 5.0, 5.0);
  const OneKernelApp c(0.0, 0, 10.0, 5.0);
  const auto violations =
      validate_stream_schedule(sys, {a.view(0.0), b.view(0.0), c.view(0.0)});
  for (const auto& v : violations) ADD_FAILURE() << v.message;
}

TEST(ValidateStream, RejectsCrossInstanceOverlap) {
  // App B starts 1 ms before app A finishes on the same processor — the
  // invariant only a pooled, cross-instance check can see.
  const System sys = test::generic_system(1);
  const OneKernelApp a(0.0, 0, 0.0, 5.0);
  const OneKernelApp b(0.0, 0, 4.0, 5.0);
  const auto violations =
      validate_stream_schedule(sys, {a.view(0.0), b.view(0.0)});
  ASSERT_FALSE(violations.empty());
  bool mentions_overlap = false;
  for (const auto& v : violations)
    mentions_overlap =
        mentions_overlap || v.message.find("overlap") != std::string::npos;
  EXPECT_TRUE(mentions_overlap);
}

TEST(ValidateStream, RejectsReadinessBeforeArrival) {
  // The kernel claims readiness at 0 but its application arrived at 10.
  const System sys = test::generic_system(1);
  const OneKernelApp a(0.0, 0, 0.0, 1.0);
  const auto violations = validate_stream_schedule(sys, {a.view(10.0)});
  ASSERT_FALSE(violations.empty());
}

}  // namespace
}  // namespace apt::sim
