// Unit tests of net::TransferManager: fair bandwidth sharing on contended
// links, latency handling, future activations, and the per-link accounting
// the metrics layer consumes.
#include "net/transfer_manager.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace apt::net {
namespace {

Topology bus_topology(double gbps, double latency_ms = 0.0) {
  TopologySpec spec = parse_topology_spec("bus");
  spec.bandwidth_gbps = gbps;
  spec.latency_ms = latency_ms;
  return Topology(spec, 3, gbps);
}

TEST(TransferManager, SingleMessageRunsAtFullBandwidth) {
  const Topology topo = bus_topology(4.0);  // 4e6 bytes/ms
  TransferManager tm(topo);
  tm.start(7, 8e6, 0, 1, 10.0);
  EXPECT_TRUE(tm.busy());
  EXPECT_DOUBLE_EQ(tm.next_event_ms(), 10.0);  // activation
  auto deliveries = tm.advance_to(10.0);
  EXPECT_TRUE(deliveries.empty());
  EXPECT_DOUBLE_EQ(tm.next_event_ms(), 12.0);  // 8e6 / 4e6 = 2 ms
  deliveries = tm.advance_to(12.0);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].tag, 7u);
  EXPECT_DOUBLE_EQ(deliveries[0].delivered_ms, 12.0);
  EXPECT_FALSE(tm.busy());
  EXPECT_TRUE(std::isinf(tm.next_event_ms()));
}

// Two 8e6-byte messages from t=0: each gets 2e6 bytes/ms, both finish at
// 4 ms — exactly twice the uncontended time.
TEST(TransferManager, TwoEqualMessagesFinishAtTwiceTheTime) {
  const Topology topo = bus_topology(4.0);
  TransferManager tm(topo);
  tm.start(0, 8e6, 0, 1, 0.0);
  tm.start(1, 8e6, 2, 1, 0.0);
  tm.advance_to(0.0);  // activate both
  EXPECT_DOUBLE_EQ(tm.next_event_ms(), 4.0);
  const auto deliveries = tm.advance_to(4.0);
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].tag, 0u);  // ascending tag order
  EXPECT_EQ(deliveries[1].tag, 1u);
  EXPECT_DOUBLE_EQ(tm.link_busy_ms()[0], 4.0);
  EXPECT_DOUBLE_EQ(tm.link_delivered_bytes()[0], 16e6);
}

TEST(TransferManager, StaggeredArrivalSlowsTheFirstMessage) {
  const Topology topo = bus_topology(4.0);
  TransferManager tm(topo);
  // A starts at 0 (8e6 bytes). B (4e6 bytes) joins at 1 ms. A runs alone
  // for 1 ms (4e6 left), then both share: B's 4e6 at 2e6/ms -> both have
  // 2e6 left at t=3... A and B drain equally, so B (4e6) and A (4e6)
  // finish together at t = 1 + 8e6/4e6 = 3 ms? No: remaining at t=1 is
  // A=4e6, B=4e6, equal shares finish both at 1 + (4e6+4e6)/4e6 = 3 ms.
  tm.start(0, 8e6, 0, 1, 0.0);
  tm.start(1, 4e6, 2, 1, 1.0);
  tm.advance_to(0.0);
  EXPECT_DOUBLE_EQ(tm.next_event_ms(), 1.0);  // B's activation
  tm.advance_to(1.0);
  EXPECT_DOUBLE_EQ(tm.next_event_ms(), 3.0);
  const auto deliveries = tm.advance_to(3.0);
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_DOUBLE_EQ(deliveries[0].delivered_ms, 3.0);
  EXPECT_DOUBLE_EQ(tm.link_busy_ms()[0], 3.0);
}

TEST(TransferManager, LatencyDelaysTheDrainNotTheLink) {
  const Topology topo = bus_topology(4.0, /*latency_ms=*/0.5);
  TransferManager tm(topo);
  tm.start(0, 4e6, 0, 1, 0.0);
  // Activation at 0.5 (latency), drain 1 ms, delivery at 1.5.
  EXPECT_DOUBLE_EQ(tm.next_event_ms(), 0.5);
  tm.advance_to(0.5);
  const auto deliveries = tm.advance_to(1.5);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_DOUBLE_EQ(deliveries[0].delivered_ms, 1.5);
  EXPECT_DOUBLE_EQ(tm.link_busy_ms()[0], 1.0);  // only the drain occupies
}

TEST(TransferManager, ZeroByteMessageDeliversAtActivation) {
  const Topology topo = bus_topology(4.0);
  TransferManager tm(topo);
  tm.start(3, 0.0, 0, 1, 2.0);
  EXPECT_DOUBLE_EQ(tm.next_event_ms(), 2.0);
  const auto deliveries = tm.advance_to(2.0);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_DOUBLE_EQ(deliveries[0].delivered_ms, 2.0);
}

TEST(TransferManager, CrossbarPairsDoNotContend) {
  TopologySpec spec = parse_topology_spec("crossbar");
  spec.bandwidth_gbps = 4.0;
  const Topology topo(spec, 3, 4.0);
  TransferManager tm(topo);
  tm.start(0, 8e6, 0, 1, 0.0);
  tm.start(1, 8e6, 0, 2, 0.0);  // different ordered pair: private link
  tm.advance_to(0.0);
  const auto deliveries = tm.advance_to(2.0);  // both at full rate
  EXPECT_EQ(deliveries.size(), 2u);
}

TEST(TransferManager, RejectsLocalPairsAndTimeTravel) {
  const Topology topo = bus_topology(4.0);
  TransferManager tm(topo);
  EXPECT_THROW(tm.start(0, 1.0, 1, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(tm.start(0, -1.0, 0, 1, 0.0), std::invalid_argument);
  tm.advance_to(5.0);
  EXPECT_THROW(tm.start(0, 1.0, 0, 1, 4.0), std::invalid_argument);
  EXPECT_THROW(tm.advance_to(4.0), std::invalid_argument);
  const Topology ideal(TopologySpec{}, 3, 4.0);
  EXPECT_THROW(TransferManager bad(ideal), std::invalid_argument);
}

// --- multi-hop max-min fair sharing ------------------------------------------

/// Three processors in a row (mesh:1x3): 0 -> 2 traverses both eastbound
/// links, so its messages couple the two otherwise independent segments.
Topology line_topology(double gbps, double latency_ms = 0.0) {
  TopologySpec spec = parse_topology_spec("mesh:1x3");
  spec.bandwidth_gbps = gbps;
  spec.latency_ms = latency_ms;
  return Topology(spec, 3, gbps);
}

// Hand-computed water-filling, 3 messages over 2 links: A (0 -> 2, 8e6)
// shares link M0,0>M0,1 with B (0 -> 1, 4e6) and link M0,1>M0,2 with C
// (1 -> 2, 4e6). Both links fill at 4e6/2 = 2e6 bytes/ms, so every
// message drains at 2e6: B and C deliver at 2 ms; A then owns both links
// (4e6 bytes/ms) and its remaining 4e6 bytes land at 3 ms.
TEST(TransferManager, WaterFillingAcrossATwoLinkPath) {
  const Topology topo = line_topology(4.0);
  TransferManager tm(topo);
  tm.start(0, 8e6, 0, 2, 0.0);
  tm.start(1, 4e6, 0, 1, 0.0);
  tm.start(2, 4e6, 1, 2, 0.0);
  tm.advance_to(0.0);  // activate all three
  EXPECT_DOUBLE_EQ(tm.next_event_ms(), 2.0);
  auto deliveries = tm.advance_to(2.0);
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].tag, 1u);
  EXPECT_EQ(deliveries[1].tag, 2u);
  EXPECT_DOUBLE_EQ(tm.next_event_ms(), 3.0);
  deliveries = tm.advance_to(3.0);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].tag, 0u);
  EXPECT_EQ(deliveries[0].hops, 2u);
  EXPECT_DOUBLE_EQ(deliveries[0].delivered_ms, 3.0);
  // Both links were busy the whole 3 ms and carried A's bytes in full.
  EXPECT_DOUBLE_EQ(tm.link_busy_ms()[0], 3.0);
  EXPECT_DOUBLE_EQ(tm.link_delivered_bytes()[0], 12e6);  // A + B
}

// Progressive filling hands bottleneck slack to the flows that can use it:
// link 1 carries {A, B, C} (level 4e6/3), link 2 carries {A, D}. A is
// frozen by link 1 at 4/3e6, so D gets the rest of link 2 — 8/3e6, well
// above the naive per-link equal split of 2e6. B, C (4e6 bytes at 4/3e6)
// and D (8e6 bytes at 8/3e6) all deliver at 3 ms; A (8e6 at 4/3e6 = 4e6
// drained, then alone at 4e6/ms) delivers at 4 ms.
TEST(TransferManager, BottleneckSlackReallocatesMaxMin) {
  const Topology topo = line_topology(4.0);
  TransferManager tm(topo);
  tm.start(0, 8e6, 0, 2, 0.0);  // A: both links
  tm.start(1, 4e6, 0, 1, 0.0);  // B: link 1
  tm.start(2, 4e6, 0, 1, 0.0);  // C: link 1
  tm.start(3, 8e6, 1, 2, 0.0);  // D: link 2
  tm.advance_to(0.0);
  EXPECT_DOUBLE_EQ(tm.next_event_ms(), 3.0);
  auto deliveries = tm.advance_to(3.0);
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0].tag, 1u);
  EXPECT_EQ(deliveries[1].tag, 2u);
  EXPECT_EQ(deliveries[2].tag, 3u);  // D beat the equal split (4 ms)
  deliveries = tm.advance_to(4.0);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_DOUBLE_EQ(deliveries[0].delivered_ms, 4.0);
  // Capacity invariant, exactly at the boundary: each link moved
  // 16e6 bytes in 4 busy ms at 4e6 bytes/ms.
  EXPECT_DOUBLE_EQ(tm.link_busy_ms()[0], 4.0);
  EXPECT_DOUBLE_EQ(tm.link_delivered_bytes()[0], 16e6);
  const LinkId second = topo.route(1, 2)[0];
  EXPECT_DOUBLE_EQ(tm.link_busy_ms()[second], 4.0);
  EXPECT_DOUBLE_EQ(tm.link_delivered_bytes()[second], 16e6);
}

TEST(TransferManager, MultiHopLatencyAccruesPerHop) {
  const Topology topo = line_topology(4.0, /*latency_ms=*/0.5);
  TransferManager tm(topo);
  tm.start(0, 4e6, 0, 2, 0.0);
  // Head latency 2 x 0.5 ms, then 1 ms of draining at full rate.
  EXPECT_DOUBLE_EQ(tm.next_event_ms(), 1.0);
  tm.advance_to(1.0);
  const auto deliveries = tm.advance_to(2.0);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_DOUBLE_EQ(deliveries[0].delivered_ms, 2.0);
  EXPECT_DOUBLE_EQ(tm.link_busy_ms()[0], 1.0);  // only the drain occupies
}

// --- done_eps completion-tolerance contract ----------------------------------

TEST(TransferManager, DoneEpsContractIsAbsoluteFloorPlusRelativeTerm) {
  EXPECT_DOUBLE_EQ(done_eps(0.0), 1e-6);
  EXPECT_DOUBLE_EQ(done_eps(1e6), 1e-6);    // boundary: relative == floor
  EXPECT_DOUBLE_EQ(done_eps(4e12), 4.0);    // multi-TB: relative dominates
}

// A multi-GB message re-anchored by a stream of membership changes must
// deliver exactly once, never stall, and land within tolerance of the
// exact fluid finish time.
TEST(TransferManager, MultiGbMessageSurvivesManyRateChanges) {
  const Topology topo = bus_topology(4.0);
  TransferManager tm(topo);
  const double big = 8e9;  // 2000 ms alone at 4e6 bytes/ms
  tm.start(0, big, 0, 1, 0.0);
  // 100 small interlopers, each forcing two rate re-anchors.
  for (std::uint64_t i = 0; i < 100; ++i)
    tm.start(1 + i, 1e5, 2, 1, static_cast<TimeMs>(i));
  std::size_t big_deliveries = 0;
  std::size_t total = 0;
  TimeMs big_time = 0.0;
  TimeMs t = 0.0;
  while (tm.busy()) {
    const TimeMs e = tm.next_event_ms();
    ASSERT_TRUE(std::isfinite(e)) << "event loop stalled";
    ASSERT_GE(e, t);
    t = e;
    for (const Delivery& d : tm.advance_to(t)) {
      ++total;
      if (d.tag == 0) {
        ++big_deliveries;
        big_time = d.delivered_ms;
      }
    }
  }
  EXPECT_EQ(big_deliveries, 1u);
  EXPECT_EQ(total, 101u);
  // Work conservation: 8e9 + 100 x 1e5 bytes at 4e6 bytes/ms.
  EXPECT_NEAR(big_time, (8e9 + 100.0 * 1e5) / 4e6, 1e-3);
}

// Zero-byte (latency-only) messages deliver exactly once at activation —
// even when sharing the link with draining traffic.
TEST(TransferManager, ZeroByteMessagesDeliverOnceAtActivation) {
  const Topology topo = bus_topology(4.0, /*latency_ms=*/0.25);
  TransferManager tm(topo);
  tm.start(0, 8e6, 0, 1, 0.0);
  tm.start(1, 0.0, 2, 1, 1.0);  // activates at 1.25 mid-drain
  tm.advance_to(0.25);
  auto deliveries = tm.advance_to(1.25);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].tag, 1u);
  EXPECT_DOUBLE_EQ(deliveries[0].delivered_ms, 1.25);
  deliveries = tm.advance_to(10.0);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].tag, 0u);
  EXPECT_EQ(tm.delivered_count(), 2u);
}

// --- backlog prediction (link_drain_ms, the TransferEstimate feed) -----------

// The drain prediction is the max over a link's active flows of their
// projected remaining time at the CURRENT max-min rates — hand-computed
// here against the equal-split allocation on one shared link.
TEST(TransferManager, LinkDrainProjectsRemainingTimeAtCurrentRates) {
  const Topology topo = bus_topology(4.0);  // 4e6 bytes/ms
  TransferManager tm(topo);
  tm.start(0, 8e6, 0, 1, 0.0);
  tm.start(1, 4e6, 2, 1, 0.0);
  tm.advance_to(0.0);  // activate both: equal split, 2e6 bytes/ms each
  EXPECT_EQ(tm.link_flow_count(0), 2u);
  // max(8e6 / 2e6, 4e6 / 2e6) = 4 ms — message 0's projection at today's
  // rate, even though it will actually speed up once message 1 leaves.
  EXPECT_DOUBLE_EQ(tm.link_drain_ms(0), 4.0);
  auto deliveries = tm.advance_to(2.0);  // message 1 done, 0 owns the link
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(tm.link_flow_count(0), 1u);
  EXPECT_DOUBLE_EQ(tm.link_drain_ms(0), 1.0);  // 4e6 left at 4e6 bytes/ms
  tm.advance_to(3.0);
  EXPECT_DOUBLE_EQ(tm.link_drain_ms(0), 0.0);  // idle link
}

// Messages still inside their route head latency hold no link share, so
// they must not count toward the drain prediction.
TEST(TransferManager, LinkDrainIgnoresPendingActivations) {
  const Topology topo = bus_topology(4.0, /*latency_ms=*/0.5);
  TransferManager tm(topo);
  tm.start(0, 4e6, 0, 1, 0.0);  // activates at 0.5
  tm.advance_to(0.25);
  EXPECT_EQ(tm.live_count(), 1u);
  EXPECT_EQ(tm.link_flow_count(0), 0u);
  EXPECT_DOUBLE_EQ(tm.link_drain_ms(0), 0.0);
  tm.advance_to(0.5);
  EXPECT_DOUBLE_EQ(tm.link_drain_ms(0), 1.0);  // now draining at 4e6/ms
}

// Two-hop path with a mid-flight arrival: the most-backlogged link of the
// shared route shifts from the first hop to the second as a competing flow
// joins, and back toward idle as flows complete. This is exactly the
// max-over-route scan transfer_estimate's link_queueing_ms performs.
TEST(TransferManager, LinkDrainBottleneckShiftsMidFlight) {
  const Topology topo = line_topology(4.0);  // mesh:1x3, two east links
  const LinkId first = topo.route(0, 1)[0];
  const LinkId second = topo.route(1, 2)[0];
  TransferManager tm(topo);
  tm.start(0, 8e6, 0, 2, 0.0);   // A: spans both links
  tm.start(1, 16e6, 0, 1, 0.0);  // B: first link only
  tm.advance_to(0.0);
  // Level 2e6 on the first link freezes A and B; the second link's slack
  // goes unused (A is its only flow). First hop is the bottleneck:
  // drain(first) = 16e6 / 2e6 = 8, drain(second) = 8e6 / 2e6 = 4.
  EXPECT_DOUBLE_EQ(tm.link_drain_ms(first), 8.0);
  EXPECT_DOUBLE_EQ(tm.link_drain_ms(second), 4.0);

  tm.start(2, 24e6, 1, 2, 2.0);  // C joins the second link mid-flight
  tm.advance_to(2.0);
  // Both links now carry two flows and saturate at the same 2e6 level:
  // remaining A = 4e6, B = 12e6, C = 24e6. The bottleneck link shifted:
  // drain(first) = 12e6 / 2e6 = 6, drain(second) = 24e6 / 2e6 = 12.
  EXPECT_DOUBLE_EQ(tm.link_drain_ms(first), 6.0);
  EXPECT_DOUBLE_EQ(tm.link_drain_ms(second), 12.0);

  auto deliveries = tm.advance_to(4.0);  // A (4e6 at 2e6/ms) delivers
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].tag, 0u);
  // Each survivor now owns its link at the full 4e6 bytes/ms:
  // B has 8e6 left, C has 20e6 left.
  EXPECT_DOUBLE_EQ(tm.link_drain_ms(first), 2.0);
  EXPECT_DOUBLE_EQ(tm.link_drain_ms(second), 5.0);
}

// --- observation-window clipping ---------------------------------------------

// The steady-state accessors must exclude warmup traffic: busy time is
// clipped to [window, ...) and only messages delivered inside the window
// count, exactly like processor busy time in the stream metrics.
TEST(TransferManager, WindowClipsBusyAndBytes) {
  const Topology topo = bus_topology(4.0);
  TransferManager tm(topo);
  tm.set_window_start(3.0);
  tm.start(0, 8e6, 0, 1, 0.0);   // drains [0, 2] — fully warmup
  tm.start(1, 8e6, 0, 1, 2.5);   // drains [2.5, 4.5] — straddles
  tm.advance_to(10.0);
  EXPECT_DOUBLE_EQ(tm.link_busy_ms()[0], 4.0);            // whole run
  EXPECT_DOUBLE_EQ(tm.link_busy_in_window_ms()[0], 1.5);  // [3, 4.5]
  EXPECT_DOUBLE_EQ(tm.link_delivered_bytes()[0], 16e6);
  EXPECT_DOUBLE_EQ(tm.link_bytes_in_window()[0], 8e6);
  EXPECT_EQ(tm.link_delivered_counts()[0], 2u);
  EXPECT_EQ(tm.link_counts_in_window()[0], 1u);
  EXPECT_EQ(tm.link_hops_in_window()[0], 1u);
  // The window is part of the run's setup, not something to move later.
  EXPECT_THROW(tm.set_window_start(1.0), std::logic_error);
}

}  // namespace
}  // namespace apt::net
