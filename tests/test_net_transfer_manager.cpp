// Unit tests of net::TransferManager: fair bandwidth sharing on contended
// links, latency handling, future activations, and the per-link accounting
// the metrics layer consumes.
#include "net/transfer_manager.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace apt::net {
namespace {

Topology bus_topology(double gbps, double latency_ms = 0.0) {
  TopologySpec spec = parse_topology_spec("bus");
  spec.bandwidth_gbps = gbps;
  spec.latency_ms = latency_ms;
  return Topology(spec, 3, gbps);
}

TEST(TransferManager, SingleMessageRunsAtFullBandwidth) {
  const Topology topo = bus_topology(4.0);  // 4e6 bytes/ms
  TransferManager tm(topo);
  tm.start(7, 8e6, 0, 1, 10.0);
  EXPECT_TRUE(tm.busy());
  EXPECT_DOUBLE_EQ(tm.next_event_ms(), 10.0);  // activation
  auto deliveries = tm.advance_to(10.0);
  EXPECT_TRUE(deliveries.empty());
  EXPECT_DOUBLE_EQ(tm.next_event_ms(), 12.0);  // 8e6 / 4e6 = 2 ms
  deliveries = tm.advance_to(12.0);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].tag, 7u);
  EXPECT_DOUBLE_EQ(deliveries[0].delivered_ms, 12.0);
  EXPECT_FALSE(tm.busy());
  EXPECT_TRUE(std::isinf(tm.next_event_ms()));
}

// Two 8e6-byte messages from t=0: each gets 2e6 bytes/ms, both finish at
// 4 ms — exactly twice the uncontended time.
TEST(TransferManager, TwoEqualMessagesFinishAtTwiceTheTime) {
  const Topology topo = bus_topology(4.0);
  TransferManager tm(topo);
  tm.start(0, 8e6, 0, 1, 0.0);
  tm.start(1, 8e6, 2, 1, 0.0);
  tm.advance_to(0.0);  // activate both
  EXPECT_DOUBLE_EQ(tm.next_event_ms(), 4.0);
  const auto deliveries = tm.advance_to(4.0);
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].tag, 0u);  // ascending tag order
  EXPECT_EQ(deliveries[1].tag, 1u);
  EXPECT_DOUBLE_EQ(tm.link_busy_ms()[0], 4.0);
  EXPECT_DOUBLE_EQ(tm.link_delivered_bytes()[0], 16e6);
}

TEST(TransferManager, StaggeredArrivalSlowsTheFirstMessage) {
  const Topology topo = bus_topology(4.0);
  TransferManager tm(topo);
  // A starts at 0 (8e6 bytes). B (4e6 bytes) joins at 1 ms. A runs alone
  // for 1 ms (4e6 left), then both share: B's 4e6 at 2e6/ms -> both have
  // 2e6 left at t=3... A and B drain equally, so B (4e6) and A (4e6)
  // finish together at t = 1 + 8e6/4e6 = 3 ms? No: remaining at t=1 is
  // A=4e6, B=4e6, equal shares finish both at 1 + (4e6+4e6)/4e6 = 3 ms.
  tm.start(0, 8e6, 0, 1, 0.0);
  tm.start(1, 4e6, 2, 1, 1.0);
  tm.advance_to(0.0);
  EXPECT_DOUBLE_EQ(tm.next_event_ms(), 1.0);  // B's activation
  tm.advance_to(1.0);
  EXPECT_DOUBLE_EQ(tm.next_event_ms(), 3.0);
  const auto deliveries = tm.advance_to(3.0);
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_DOUBLE_EQ(deliveries[0].delivered_ms, 3.0);
  EXPECT_DOUBLE_EQ(tm.link_busy_ms()[0], 3.0);
}

TEST(TransferManager, LatencyDelaysTheDrainNotTheLink) {
  const Topology topo = bus_topology(4.0, /*latency_ms=*/0.5);
  TransferManager tm(topo);
  tm.start(0, 4e6, 0, 1, 0.0);
  // Activation at 0.5 (latency), drain 1 ms, delivery at 1.5.
  EXPECT_DOUBLE_EQ(tm.next_event_ms(), 0.5);
  tm.advance_to(0.5);
  const auto deliveries = tm.advance_to(1.5);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_DOUBLE_EQ(deliveries[0].delivered_ms, 1.5);
  EXPECT_DOUBLE_EQ(tm.link_busy_ms()[0], 1.0);  // only the drain occupies
}

TEST(TransferManager, ZeroByteMessageDeliversAtActivation) {
  const Topology topo = bus_topology(4.0);
  TransferManager tm(topo);
  tm.start(3, 0.0, 0, 1, 2.0);
  EXPECT_DOUBLE_EQ(tm.next_event_ms(), 2.0);
  const auto deliveries = tm.advance_to(2.0);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_DOUBLE_EQ(deliveries[0].delivered_ms, 2.0);
}

TEST(TransferManager, CrossbarPairsDoNotContend) {
  TopologySpec spec = parse_topology_spec("crossbar");
  spec.bandwidth_gbps = 4.0;
  const Topology topo(spec, 3, 4.0);
  TransferManager tm(topo);
  tm.start(0, 8e6, 0, 1, 0.0);
  tm.start(1, 8e6, 0, 2, 0.0);  // different ordered pair: private link
  tm.advance_to(0.0);
  const auto deliveries = tm.advance_to(2.0);  // both at full rate
  EXPECT_EQ(deliveries.size(), 2u);
}

TEST(TransferManager, RejectsLocalPairsAndTimeTravel) {
  const Topology topo = bus_topology(4.0);
  TransferManager tm(topo);
  EXPECT_THROW(tm.start(0, 1.0, 1, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(tm.start(0, -1.0, 0, 1, 0.0), std::invalid_argument);
  tm.advance_to(5.0);
  EXPECT_THROW(tm.start(0, 1.0, 0, 1, 4.0), std::invalid_argument);
  EXPECT_THROW(tm.advance_to(4.0), std::invalid_argument);
  const Topology ideal(TopologySpec{}, 3, 4.0);
  EXPECT_THROW(TransferManager bad(ideal), std::invalid_argument);
}

}  // namespace
}  // namespace apt::net
