// Shared fixtures and builders for the test suite.
#pragma once

#include <memory>
#include <vector>

#include "dag/graph.hpp"
#include "lut/paper_data.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/policy.hpp"
#include "sim/system.hpp"
#include "sim/validate.hpp"

#include <gtest/gtest.h>

namespace apt::test {

/// Homogeneous-typed system with `n` processors — cost comes from a
/// MatrixCostModel so the types are irrelevant.
inline sim::System generic_system(std::size_t n) {
  sim::SystemConfig cfg;
  cfg.processors.assign(n, lut::ProcType::CPU);
  return sim::System(cfg);
}

/// The paper's 1×CPU + 1×GPU + 1×FPGA platform.
inline sim::System paper_system(double rate_gbps = 4.0) {
  return sim::System(sim::SystemConfig::paper_default(rate_gbps));
}

/// Runs a policy and asserts the schedule satisfies every invariant.
inline sim::SimResult run_and_validate(sim::Policy& policy,
                                       const dag::Dag& dag,
                                       const sim::System& system,
                                       const sim::CostModel& cost) {
  sim::Engine engine(dag, system, cost);
  const sim::SimResult result = engine.run(policy);
  const auto violations = sim::validate_schedule(dag, system, cost, result);
  for (const auto& v : violations) ADD_FAILURE() << v.message;
  EXPECT_GE(result.makespan + 1e-9,
            sim::critical_path_lower_bound_ms(dag, system, cost));
  return result;
}

/// The classic HEFT example (Topcuoglu et al. 2002, Figure 2): 10 tasks on
/// 3 processors, published makespan 80. Node ids here are 0-based (paper's
/// task k is node k-1).
struct TopcuogluExample {
  dag::Dag dag;
  std::unique_ptr<sim::MatrixCostModel> cost;
};

inline TopcuogluExample topcuoglu_example() {
  TopcuogluExample ex;
  for (int i = 0; i < 10; ++i) ex.dag.add_node("t" + std::to_string(i + 1), 1);
  const std::vector<std::vector<sim::TimeMs>> w = {
      {14, 16, 9},  {13, 19, 18}, {11, 13, 19}, {13, 8, 17},  {12, 13, 10},
      {13, 16, 9},  {7, 15, 11},  {5, 11, 14},  {18, 12, 20}, {21, 7, 16}};
  ex.cost = std::make_unique<sim::MatrixCostModel>(w);
  const std::vector<std::tuple<int, int, double>> edges = {
      {1, 2, 18}, {1, 3, 12}, {1, 4, 9},  {1, 5, 11}, {1, 6, 14},
      {2, 8, 19}, {2, 9, 16}, {3, 7, 23}, {4, 8, 27}, {4, 9, 23},
      {5, 9, 13}, {6, 8, 15}, {7, 10, 17}, {8, 10, 11}, {9, 10, 13}};
  for (const auto& [src, dst, comm] : edges) {
    ex.dag.add_edge(static_cast<dag::NodeId>(src - 1),
                    static_cast<dag::NodeId>(dst - 1));
    ex.cost->set_comm_cost(static_cast<dag::NodeId>(src - 1),
                           static_cast<dag::NodeId>(dst - 1), comm);
  }
  return ex;
}

/// A diamond DAG a->b, a->c, b->d, c->d with the given kernel names/sizes.
inline dag::Dag diamond(const std::vector<dag::Node>& nodes4) {
  dag::Dag d;
  for (const auto& n : nodes4) d.add_node(n);
  d.add_edge(0, 1);
  d.add_edge(0, 2);
  d.add_edge(1, 3);
  d.add_edge(2, 3);
  return d;
}

/// A chain n0 -> n1 -> ... of the given nodes.
inline dag::Dag chain(const std::vector<dag::Node>& nodes) {
  dag::Dag d;
  for (const auto& n : nodes) d.add_node(n);
  for (dag::NodeId i = 1; i < nodes.size(); ++i) d.add_edge(i - 1, i);
  return d;
}

}  // namespace apt::test
