// The worker pool under the batch runner: full coverage of the index
// range, exception propagation, reuse across batches, and the inline
// serial path.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace apt::util {
namespace {

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.for_each_index(hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ResultsLandInTheRightSlots) {
  ThreadPool pool(3);
  std::vector<std::size_t> out(257, 0);
  pool.for_each_index(out.size(), [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, PoolIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 10; ++round)
    pool.for_each_index(10, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, FirstExceptionIsRethrownOnTheCaller) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.for_each_index(100, [&](std::size_t i) {
      if (i == 17) throw std::runtime_error("task 17 failed");
      completed.fetch_add(1);
    });
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 17 failed");
  }
  // The other tasks still ran (no early abort mid-batch is required, only
  // error reporting).
  EXPECT_EQ(completed.load(), 99);
}

TEST(ThreadPool, MoreThreadsThanTasksStillCompletes) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  // Exhausted-batch workers must block (not spin) and the batch must
  // retire cleanly with most workers never claiming an index.
  for (int round = 0; round < 5; ++round)
    pool.for_each_index(hits.size(),
                        [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 5);
}

TEST(ThreadPool, ZeroCountIsANoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.for_each_index(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

TEST(ParallelForIndex, SingleJobRunsInlineInOrder) {
  std::vector<std::size_t> order;
  parallel_for_index(5, 1, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForIndex, MultiJobCoversTheRange) {
  std::vector<std::atomic<int>> hits(333);
  parallel_for_index(hits.size(), 8,
                     [&](std::size_t i) { hits[i].fetch_add(1); });
  int total = 0;
  for (const auto& h : hits) total += h.load();
  EXPECT_EQ(total, 333);
}

TEST(ParallelForIndex, InlinePathPropagatesExceptions) {
  EXPECT_THROW(
      parallel_for_index(3, 1,
                         [](std::size_t) { throw std::logic_error("boom"); }),
      std::logic_error);
}

}  // namespace
}  // namespace apt::util
