#include "util/table_printer.hpp"

#include <gtest/gtest.h>

#include "util/logging.hpp"

namespace apt::util {
namespace {

TEST(TablePrinter, RendersHeaderAndRows) {
  TablePrinter t({"Graph", "APT"});
  t.add_row({"1", "8298"});
  t.add_row({"2", "27684"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| Graph |"), std::string::npos);
  EXPECT_NE(s.find("8298"), std::string::npos);
  EXPECT_NE(s.find("27684"), std::string::npos);
  // rule + header + rule + 2 rows + rule = 6 lines
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 6);
}

TEST(TablePrinter, RightAlignsNumericColumnsByDefault) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "12345"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| x      |     1 |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 12345 |"), std::string::npos);
}

TEST(TablePrinter, ExplicitAlignment) {
  TablePrinter t({"a", "b"}, {Align::Right, Align::Left});
  t.add_row({"1", "x"});
  t.add_row({"22", "yy"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("|  1 | x  |"), std::string::npos);
}

TEST(TablePrinter, SeparatorInsertsRule) {
  TablePrinter t({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"avg"});
  const std::string s = t.to_string();
  // 4 rules total: top, under header, separator, bottom.
  std::size_t rules = 0;
  for (std::size_t pos = 0; (pos = s.find("+-", pos)) != std::string::npos;
       ++pos)
    ++rules;
  EXPECT_EQ(rules, 4u);
}

TEST(TablePrinter, RowWidthMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TablePrinter, EmptyHeaderThrows) {
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(TablePrinter, AlignSizeMismatchThrows) {
  EXPECT_THROW(TablePrinter({"a", "b"}, {Align::Left}),
               std::invalid_argument);
}

TEST(Logging, LevelsFilter) {
  auto& logger = Logger::instance();
  std::vector<std::pair<LogLevel, std::string>> captured;
  logger.set_sink([&](LogLevel level, const std::string& message) {
    captured.emplace_back(level, message);
  });
  logger.set_level(LogLevel::Warn);
  APT_LOG_DEBUG << "nope";
  APT_LOG_INFO << "nope";
  APT_LOG_WARN << "warn " << 42;
  APT_LOG_ERROR << "boom";
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].second, "warn 42");
  EXPECT_EQ(captured[1].first, LogLevel::Error);
  logger.set_sink(nullptr);
  logger.set_level(LogLevel::Warn);
}

TEST(Logging, OffSilencesEverything) {
  auto& logger = Logger::instance();
  int count = 0;
  logger.set_sink([&](LogLevel, const std::string&) { ++count; });
  logger.set_level(LogLevel::Off);
  APT_LOG_ERROR << "silent";
  EXPECT_EQ(count, 0);
  logger.set_sink(nullptr);
  logger.set_level(LogLevel::Warn);
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::Debug), "DEBUG");
  EXPECT_STREQ(to_string(LogLevel::Error), "ERROR");
}

}  // namespace
}  // namespace apt::util
