// Release times and streaming (Poisson-arrival) workloads.
#include <gtest/gtest.h>

#include "core/policy_factory.hpp"
#include "dag/generator.hpp"
#include "dag/serialize.hpp"
#include "lut/paper_data.hpp"
#include "policies/met.hpp"
#include "sim/engine.hpp"
#include "test_helpers.hpp"

namespace apt {
namespace {

sim::MatrixCostModel unit_cost(std::size_t nodes, double t = 1.0) {
  return sim::MatrixCostModel(
      std::vector<std::vector<sim::TimeMs>>(nodes, {t}));
}

class AssignAnywhere : public sim::Policy {
 public:
  std::string name() const override { return "anywhere"; }
  bool is_dynamic() const override { return true; }
  void on_event(sim::SchedulerContext& ctx) override {
    for (;;) {
      const auto& ready = ctx.ready();
      const auto idle = ctx.idle_processors();
      if (ready.empty() || idle.empty()) return;
      ctx.assign(ready.front(), idle.front());
    }
  }
};

TEST(ReleaseTimes, NodeValidation) {
  dag::Dag d;
  EXPECT_THROW(d.add_node("k", 1, -1.0), std::invalid_argument);
  const auto id = d.add_node("k", 1, 5.0);
  EXPECT_DOUBLE_EQ(d.node(id).release_ms, 5.0);
  d.set_release_ms(id, 7.5);
  EXPECT_DOUBLE_EQ(d.node(id).release_ms, 7.5);
  EXPECT_THROW(d.set_release_ms(id, -2.0), std::invalid_argument);
  EXPECT_THROW(d.set_release_ms(99, 1.0), std::invalid_argument);
}

TEST(ReleaseTimes, KernelWaitsForItsReleaseInstant) {
  dag::Dag d;
  d.add_node("k", 1, 10.0);
  const sim::System sys = test::generic_system(1);
  const auto cost = unit_cost(1, 2.0);
  AssignAnywhere policy;
  sim::Engine engine(d, sys, cost);
  const auto result = engine.run(policy);
  EXPECT_DOUBLE_EQ(result.schedule[0].ready_time, 10.0);
  EXPECT_DOUBLE_EQ(result.schedule[0].exec_start, 10.0);
  EXPECT_DOUBLE_EQ(result.makespan, 12.0);
}

TEST(ReleaseTimes, LambdaIsNotChargedBeforeRelease) {
  dag::Dag d;
  d.add_node("k", 1, 10.0);
  const sim::System sys = test::generic_system(1);
  const auto cost = unit_cost(1, 2.0);
  AssignAnywhere policy;
  sim::Engine engine(d, sys, cost);
  const auto result = engine.run(policy);
  EXPECT_DOUBLE_EQ(result.schedule[0].wait_ms(), 0.0);
}

TEST(ReleaseTimes, InterleavesWithCompletions) {
  // k0 released at 0 (3 ms), k1 released at 1: k1 must wait for the
  // processor until 3 even though it was released at 1.
  dag::Dag d;
  d.add_node("a", 1, 0.0);
  d.add_node("b", 1, 1.0);
  const sim::System sys = test::generic_system(1);
  const auto cost = unit_cost(2, 3.0);
  AssignAnywhere policy;
  sim::Engine engine(d, sys, cost);
  const auto result = engine.run(policy);
  EXPECT_DOUBLE_EQ(result.schedule[1].ready_time, 1.0);
  EXPECT_DOUBLE_EQ(result.schedule[1].exec_start, 3.0);
  EXPECT_DOUBLE_EQ(result.schedule[1].wait_ms(), 2.0);
}

TEST(ReleaseTimes, GateAppliesAfterDependenciesToo) {
  // Chain a->b where b's release (10) is after a's finish (2): b becomes
  // ready at its release, not at a's completion.
  dag::Dag d;
  d.add_node("a", 1, 0.0);
  d.add_node("b", 1, 10.0);
  d.add_edge(0, 1);
  const sim::System sys = test::generic_system(1);
  const auto cost = unit_cost(2, 2.0);
  AssignAnywhere policy;
  sim::Engine engine(d, sys, cost);
  const auto result = engine.run(policy);
  EXPECT_DOUBLE_EQ(result.schedule[1].ready_time, 10.0);
  EXPECT_DOUBLE_EQ(result.makespan, 12.0);
}

TEST(ReleaseTimes, DependencyAfterReleaseGatesInstead) {
  // b released at 1 but its predecessor finishes at 4.
  dag::Dag d;
  d.add_node("a", 1, 0.0);
  d.add_node("b", 1, 1.0);
  d.add_edge(0, 1);
  const sim::System sys = test::generic_system(1);
  const auto cost = unit_cost(2, 4.0);
  AssignAnywhere policy;
  sim::Engine engine(d, sys, cost);
  const auto result = engine.run(policy);
  EXPECT_DOUBLE_EQ(result.schedule[1].ready_time, 4.0);
}

TEST(ReleaseTimes, SerializationRoundTripsReleases) {
  dag::Dag d;
  d.add_node("nw", 16777216, 0.0);
  d.add_node("bfs", 2034736, 123.456789);
  d.add_edge(0, 1);
  const dag::Dag back = dag::from_text(dag::to_text(d));
  EXPECT_DOUBLE_EQ(back.node(0).release_ms, 0.0);
  EXPECT_NEAR(back.node(1).release_ms, 123.456789, 1e-6);
}

TEST(PoissonArrivals, OnlyEntriesGetReleases) {
  dag::Dag d = dag::paper_graph(dag::DfgType::Type2, 0);
  dag::apply_poisson_arrivals(d, 50.0, 7);
  for (dag::NodeId n = 0; n < d.node_count(); ++n) {
    if (d.in_degree(n) == 0) {
      EXPECT_GT(d.node(n).release_ms, 0.0) << n;
    } else {
      EXPECT_DOUBLE_EQ(d.node(n).release_ms, 0.0) << n;
    }
  }
}

TEST(PoissonArrivals, ArrivalsAreMonotoneInNodeIdOrder) {
  dag::Dag d = dag::paper_graph(dag::DfgType::Type1, 0);
  dag::apply_poisson_arrivals(d, 20.0, 3);
  double prev = 0.0;
  for (dag::NodeId entry : d.entry_nodes()) {
    EXPECT_GT(d.node(entry).release_ms, prev);
    prev = d.node(entry).release_ms;
  }
}

TEST(PoissonArrivals, MeanGapIsRoughlyTheRequestedMean) {
  dag::Dag d;
  for (int i = 0; i < 2000; ++i) d.add_node("k", 1);
  dag::apply_poisson_arrivals(d, 10.0, 99);
  const double last = d.node(1999).release_ms;
  EXPECT_NEAR(last / 2000.0, 10.0, 1.0);  // law of large numbers
}

TEST(PoissonArrivals, DeterministicPerSeed) {
  dag::Dag a = dag::paper_graph(dag::DfgType::Type1, 1);
  dag::Dag b = dag::paper_graph(dag::DfgType::Type1, 1);
  dag::apply_poisson_arrivals(a, 25.0, 5);
  dag::apply_poisson_arrivals(b, 25.0, 5);
  EXPECT_EQ(dag::to_text(a), dag::to_text(b));
}

TEST(PoissonArrivals, RejectsNonPositiveMean) {
  dag::Dag d = dag::paper_graph(dag::DfgType::Type1, 0);
  EXPECT_THROW(dag::apply_poisson_arrivals(d, 0.0, 1), std::invalid_argument);
}

TEST(Streaming, EveryPolicyStaysValidUnderArrivals) {
  dag::Dag graph = dag::paper_graph(dag::DfgType::Type2, 0);
  dag::apply_poisson_arrivals(graph, 500.0, 11);
  const sim::System sys = test::paper_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
  for (const char* spec :
       {"apt:4", "met", "spn", "ss", "ag", "minmin", "sufferage", "heft",
        "peft"}) {
    const auto policy = core::make_policy(spec);
    const auto result = test::run_and_validate(*policy, graph, sys, cost);
    // No kernel may start before its release.
    for (const auto& k : result.schedule)
      EXPECT_GE(k.exec_start + 1e-9, graph.node(k.node).release_ms) << spec;
  }
}

TEST(Streaming, SparserArrivalsStretchTheMakespan) {
  const sim::System sys = test::paper_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
  dag::Dag dense = dag::paper_graph(dag::DfgType::Type1, 0);
  dag::Dag sparse = dag::paper_graph(dag::DfgType::Type1, 0);
  dag::apply_poisson_arrivals(dense, 1.0, 7);
  dag::apply_poisson_arrivals(sparse, 5000.0, 7);
  policies::Met met;
  sim::Engine e1(dense, sys, cost);
  const double dense_makespan = e1.run(met).makespan;
  policies::Met met2;
  sim::Engine e2(sparse, sys, cost);
  const double sparse_makespan = e2.run(met2).makespan;
  EXPECT_GT(sparse_makespan, dense_makespan);
}

}  // namespace
}  // namespace apt
