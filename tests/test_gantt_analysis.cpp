// Gantt export, schedule analysis, and energy accounting.
#include <gtest/gtest.h>

#include "core/apt.hpp"
#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "policies/met.hpp"
#include "sim/analysis.hpp"
#include "sim/engine.hpp"
#include "sim/gantt.hpp"
#include "sim/metrics.hpp"
#include "test_helpers.hpp"
#include "util/csv.hpp"
#include "util/string_utils.hpp"

namespace apt::sim {
namespace {

SimResult run_met_on_paper_graph(const dag::Dag& graph, const System& sys) {
  const LutCostModel cost(lut::paper_lookup_table(), sys);
  policies::Met met;
  Engine engine(graph, sys, cost);
  return engine.run(met);
}

TEST(Gantt, AsciiContainsEveryProcessorRow) {
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, 0);
  const System sys = test::paper_system();
  const auto result = run_met_on_paper_graph(graph, sys);
  const std::string chart = ascii_gantt(graph, sys, result, 60);
  EXPECT_NE(chart.find("CPU0"), std::string::npos);
  EXPECT_NE(chart.find("GPU0"), std::string::npos);
  EXPECT_NE(chart.find("FPGA0"), std::string::npos);
  EXPECT_NE(chart.find("legend:"), std::string::npos);
  EXPECT_NE(chart.find("0 ms"), std::string::npos);
}

TEST(Gantt, RowsHaveTheRequestedWidth) {
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, 0);
  const System sys = test::paper_system();
  const auto result = run_met_on_paper_graph(graph, sys);
  const std::string chart = ascii_gantt(graph, sys, result, 40);
  // "FPGA0 |" + 40 cells + "|"
  const auto pos = chart.find("FPGA0 |");
  ASSERT_NE(pos, std::string::npos);
  const auto end = chart.find('|', pos + 7);
  EXPECT_EQ(end - (pos + 7), 40u);
}

TEST(Gantt, RejectsTinyWidth) {
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, 0);
  const System sys = test::paper_system();
  const auto result = run_met_on_paper_graph(graph, sys);
  EXPECT_THROW(ascii_gantt(graph, sys, result, 5), std::invalid_argument);
}

TEST(Gantt, EmptyScheduleIsHandled) {
  dag::Dag empty;
  const System sys = test::paper_system();
  SimResult result;
  EXPECT_EQ(ascii_gantt(empty, sys, result), "(empty schedule)\n");
}

TEST(Gantt, CsvHasOneRowPerKernelSortedByStart) {
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, 0);
  const System sys = test::paper_system();
  const auto result = run_met_on_paper_graph(graph, sys);
  const util::CsvTable table = util::parse_csv(gantt_csv(graph, sys, result));
  EXPECT_EQ(table.row_count(), graph.node_count());
  double prev = -1.0;
  const std::size_t col = table.column_index("exec_start_ms");
  for (std::size_t r = 0; r < table.row_count(); ++r) {
    const double start = util::parse_double(table.row(r)[col]);
    EXPECT_GE(start, prev);
    prev = start;
  }
}

TEST(Analysis, SingleProcessorSerialisation) {
  // Three unit kernels on one processor: parallelism 1, perfect imbalance
  // degenerate case, speed-up 1.
  dag::Dag d;
  for (int i = 0; i < 3; ++i) d.add_node("k", 1);
  const System sys = test::generic_system(1);
  MatrixCostModel cost({{2.0}, {2.0}, {2.0}});
  policies::Met met;
  Engine engine(d, sys, cost);
  const auto result = engine.run(met);
  const ScheduleAnalysis a = analyze_schedule(d, sys, cost, result);
  EXPECT_DOUBLE_EQ(a.makespan, 6.0);
  EXPECT_DOUBLE_EQ(a.parallelism, 1.0);
  EXPECT_DOUBLE_EQ(a.avg_utilization, 1.0);
  EXPECT_DOUBLE_EQ(a.load_imbalance, 1.0);
  EXPECT_DOUBLE_EQ(a.speedup_vs_best_serial, 1.0);
  EXPECT_DOUBLE_EQ(a.speedup_vs_best_fixed_processor, 1.0);
  EXPECT_DOUBLE_EQ(a.transfer_fraction, 0.0);
  EXPECT_DOUBLE_EQ(a.realised_critical_path_ms, 2.0);  // independent kernels
}

TEST(Analysis, PerfectlyParallelTwoProcessorCase) {
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  const System sys = test::generic_system(2);
  MatrixCostModel cost({{3.0, 3.0}, {3.0, 3.0}});
  policies::Met met;  // both prefer p0 -> serialise; use SPN-like instead
  class Spread : public Policy {
   public:
    std::string name() const override { return "spread"; }
    bool is_dynamic() const override { return true; }
    void on_event(SchedulerContext& ctx) override {
      const std::vector<dag::NodeId> ready = ctx.ready();
      for (dag::NodeId n : ready) {
        const auto idle = ctx.idle_processors();
        if (!idle.empty()) ctx.assign(n, idle.front());
      }
    }
  };
  Spread spread;
  Engine engine(d, sys, cost);
  const auto result = engine.run(spread);
  const ScheduleAnalysis a = analyze_schedule(d, sys, cost, result);
  EXPECT_DOUBLE_EQ(a.makespan, 3.0);
  EXPECT_DOUBLE_EQ(a.parallelism, 2.0);
  EXPECT_DOUBLE_EQ(a.avg_utilization, 1.0);
  EXPECT_DOUBLE_EQ(a.speedup_vs_best_serial, 2.0);
  (void)met;
}

TEST(Analysis, RealisedCriticalPathTracksChains) {
  const dag::Dag d = test::chain({{"a", 1}, {"b", 1}, {"c", 1}});
  const System sys = test::generic_system(1);
  MatrixCostModel cost({{1.0}, {2.0}, {3.0}});
  policies::Met met;
  Engine engine(d, sys, cost);
  const auto result = engine.run(met);
  const ScheduleAnalysis a = analyze_schedule(d, sys, cost, result);
  EXPECT_DOUBLE_EQ(a.realised_critical_path_ms, 6.0);
}

TEST(Analysis, MismatchThrows) {
  dag::Dag d;
  d.add_node("k", 1);
  const System sys = test::generic_system(1);
  MatrixCostModel cost(std::vector<std::vector<TimeMs>>{{1.0}});
  SimResult empty;
  EXPECT_THROW(analyze_schedule(d, sys, cost, empty), std::invalid_argument);
}

TEST(Analysis, FormatContainsEveryIndicator) {
  ScheduleAnalysis a;
  a.makespan = 12.5;
  const std::string text = format_analysis(a);
  EXPECT_NE(text.find("makespan"), std::string::npos);
  EXPECT_NE(text.find("parallelism"), std::string::npos);
  EXPECT_NE(text.find("utilisation"), std::string::npos);
  EXPECT_NE(text.find("speed-up"), std::string::npos);
  EXPECT_NE(text.find("critical path"), std::string::npos);
}

TEST(Analysis, AptBeatsMetOnUtilisationForTheFigure5Workload) {
  std::vector<dag::Node> series = {
      {"nw", 16777216}, {"bfs", 2034736}, {"bfs", 2034736},
      {"bfs", 2034736}, {"cd", 250000}};
  const dag::Dag graph = dag::make_type1(series);
  const System sys = test::paper_system(1e9);
  const LutCostModel cost(lut::paper_lookup_table(), sys);
  policies::Met met;
  core::Apt apt(8.0);
  Engine e1(graph, sys, cost);
  Engine e2(graph, sys, cost);
  const auto a_met = analyze_schedule(graph, sys, cost, e1.run(met));
  const auto a_apt = analyze_schedule(graph, sys, cost, e2.run(apt));
  EXPECT_GT(a_apt.avg_utilization, a_met.avg_utilization);
  EXPECT_GT(a_apt.speedup_vs_best_serial, a_met.speedup_vs_best_serial);
}

// --- Energy accounting ---------------------------------------------------------

TEST(Energy, HandComputedTwoProcessorCase) {
  dag::Dag d;
  d.add_node("a", 1);
  SystemConfig cfg;
  cfg.processors = {lut::ProcType::CPU, lut::ProcType::GPU};
  cfg.active_power_w = {100.0, 200.0, 0.0};
  cfg.idle_power_w = {10.0, 20.0, 0.0};
  const System sys(cfg);
  // Kernel runs 1000 ms on CPU; GPU idles throughout.
  SimResult r;
  ScheduledKernel k;
  k.node = 0;
  k.proc = 0;
  k.exec_ms = 1000.0;
  k.finish_time = 1000.0;
  r.schedule = {k};
  r.makespan = 1000.0;
  const SimMetrics m = compute_metrics(d, sys, r);
  EXPECT_DOUBLE_EQ(m.per_proc[0].energy_j, 100.0);  // 100 W for 1 s
  EXPECT_DOUBLE_EQ(m.per_proc[1].energy_j, 20.0);   // 20 W idle for 1 s
  EXPECT_DOUBLE_EQ(m.total_energy_j, 120.0);
}

TEST(Energy, TransferTimeIsChargedAtIdlePower) {
  dag::Dag d;
  d.add_node("a", 1);
  SystemConfig cfg;
  cfg.processors = {lut::ProcType::CPU};
  cfg.active_power_w = {100.0, 0.0, 0.0};
  cfg.idle_power_w = {10.0, 0.0, 0.0};
  const System sys(cfg);
  SimResult r;
  ScheduledKernel k;
  k.node = 0;
  k.proc = 0;
  k.transfer_ms = 500.0;
  k.exec_start = 500.0;
  k.exec_ms = 500.0;
  k.finish_time = 1000.0;
  r.schedule = {k};
  r.makespan = 1000.0;
  const SimMetrics m = compute_metrics(d, sys, r);
  EXPECT_DOUBLE_EQ(m.per_proc[0].energy_j, 50.0 + 5.0);
}

TEST(Energy, NegativePowerRejected) {
  SystemConfig cfg = SystemConfig::paper_default();
  cfg.active_power_w[0] = -1.0;
  EXPECT_THROW(System{cfg}, std::invalid_argument);
}

TEST(Energy, DefaultsProduceSensibleMagnitudes) {
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, 0);
  const System sys = test::paper_system();
  const LutCostModel cost(lut::paper_lookup_table(), sys);
  core::Apt apt(4.0);
  Engine engine(graph, sys, cost);
  const auto result = engine.run(apt);
  const SimMetrics m = compute_metrics(graph, sys, result);
  EXPECT_GT(m.total_energy_j, 0.0);
  double sum = 0.0;
  for (const auto& p : m.per_proc) sum += p.energy_j;
  EXPECT_NEAR(m.total_energy_j, sum, 1e-9);
  // Upper bound: everything at max active power for the whole makespan.
  EXPECT_LT(m.total_energy_j, (95.0 + 225.0 + 25.0) * m.makespan / 1000.0);
}

}  // namespace
}  // namespace apt::sim
