#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace apt::util {
namespace {

TEST(RunningStats, EmptyIsZeroEverywhere) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SampleVarianceUsesNMinusOne) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 1.0);
}

TEST(RunningStats, SampleVarianceOfOneElementIsZero) {
  RunningStats s;
  s.add(4.2);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 0.0);
}

TEST(RunningStats, MergeMatchesBulk) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    a.add(x);
    all.add(x);
  }
  for (int i = 50; i < 120; ++i) {
    const double x = 0.11 * i * i;
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(10.0);
  s.reset();
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RunningStats, NumericallyStableAroundLargeOffset) {
  RunningStats s;
  constexpr double offset = 1e12;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(x);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-3);
}

TEST(VectorStats, MeanOfEmptyIsZero) { EXPECT_DOUBLE_EQ(mean_of({}), 0.0); }

TEST(VectorStats, MeanOfKnown) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(VectorStats, StddevMatchesRunningStats) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(stddev_of(xs), 2.0);
}

TEST(VectorStats, StddevAboutExplicitMean) {
  // Eq. (12): population sigma about the provided mean.
  EXPECT_DOUBLE_EQ(stddev_about({1.0, 3.0}, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(stddev_about({}, 0.0), 0.0);
}

TEST(Percentile, MedianAndEndpoints) {
  std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 100.0), 5.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  EXPECT_DOUBLE_EQ(percentile_of({0.0, 10.0}, 25.0), 2.5);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile_of({7.0}, 99.0), 7.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile_of({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile_of({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile_of({1.0}, 101.0), std::invalid_argument);
}

TEST(Percentile, SortedVariantIsTheSameDefinition) {
  // percentile_sorted is THE project-wide percentile; percentile_of is the
  // sort-then-delegate convenience over it.
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> shuffled = {4.0, 1.0, 5.0, 3.0, 2.0};
  for (double pct : {0.0, 12.5, 50.0, 95.0, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(percentile_sorted(sorted, pct),
                     percentile_of(shuffled, pct))
        << pct;
}

TEST(Percentile, TailInterpolatesLinearly) {
  // 101 evenly spaced points make type-7 ranks land exactly on values:
  // p99 of {0..100} is 99, and fractional ranks interpolate linearly.
  std::vector<double> xs;
  for (int i = 0; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 99.0), 99.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 99.5), 99.5);
  // Two points: p99 sits 99% of the way between them, not at the max —
  // the interpolating definition, not nearest-rank.
  EXPECT_DOUBLE_EQ(percentile_sorted({0.0, 10.0}, 99.0), 9.9);
}

}  // namespace
}  // namespace apt::util
