#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/apt.hpp"
#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "policies/met.hpp"
#include "sim/engine.hpp"
#include "test_helpers.hpp"

namespace apt::sim {
namespace {

/// Hand-built two-kernel schedule for exact accounting checks.
SimResult tiny_result() {
  SimResult r;
  ScheduledKernel a;
  a.node = 0;
  a.proc = 0;
  a.ready_time = 0.0;
  a.assign_time = 0.0;
  a.exec_start = 1.0;
  a.transfer_ms = 1.0;  // the whole pre-exec gap is data movement
  a.exec_ms = 4.0;
  a.finish_time = 5.0;
  ScheduledKernel b;
  b.node = 1;
  b.proc = 1;
  b.ready_time = 0.0;
  b.assign_time = 2.0;  // 2 ms scheduling wait
  b.exec_start = 2.0;
  b.exec_ms = 6.0;
  b.finish_time = 8.0;
  b.alternative = true;
  r.schedule = {a, b};
  r.makespan = 8.0;
  return r;
}

TEST(Metrics, PerProcessorBreakdownSumsToMakespan) {
  dag::Dag d;
  d.add_node("nw", 16777216);
  d.add_node("bfs", 2034736);
  const System sys = test::generic_system(2);
  const SimMetrics m = compute_metrics(d, sys, tiny_result());
  ASSERT_EQ(m.per_proc.size(), 2u);
  EXPECT_DOUBLE_EQ(m.per_proc[0].compute_ms, 4.0);
  EXPECT_DOUBLE_EQ(m.per_proc[0].transfer_ms, 1.0);
  EXPECT_DOUBLE_EQ(m.per_proc[0].idle_ms, 3.0);
  EXPECT_DOUBLE_EQ(m.per_proc[1].compute_ms, 6.0);
  EXPECT_DOUBLE_EQ(m.per_proc[1].transfer_ms, 0.0);
  EXPECT_DOUBLE_EQ(m.per_proc[1].idle_ms, 2.0);
  for (const auto& p : m.per_proc)
    EXPECT_DOUBLE_EQ(p.compute_ms + p.transfer_ms + p.idle_ms, m.makespan);
}

TEST(Metrics, LambdaCountsOnlyPositiveDelays) {
  dag::Dag d;
  d.add_node("nw", 16777216);
  d.add_node("bfs", 2034736);
  const System sys = test::generic_system(2);
  const SimMetrics m = compute_metrics(d, sys, tiny_result());
  EXPECT_DOUBLE_EQ(m.lambda.total_ms, 2.0);   // only kernel b waited
  EXPECT_EQ(m.lambda.occurrences, 1u);
  EXPECT_DOUBLE_EQ(m.lambda.avg_ms, 2.0);     // Eq. 11
  EXPECT_DOUBLE_EQ(m.lambda.stddev_ms, 0.0);  // Eq. 12 with one sample
}

TEST(Metrics, AlternativeAccounting) {
  dag::Dag d;
  d.add_node("nw", 16777216);
  d.add_node("bfs", 2034736);
  const System sys = test::generic_system(2);
  const SimMetrics m = compute_metrics(d, sys, tiny_result());
  EXPECT_EQ(m.alternative_count, 1u);
  EXPECT_EQ(m.alternative_by_kernel.at("bfs"), 1u);
  EXPECT_EQ(m.alternative_by_kernel.count("nw"), 0u);
}

TEST(Metrics, OverheadsAreAddedToLambda) {
  dag::Dag d;
  d.add_node("a", 1);
  SystemConfig cfg;
  cfg.processors = {lut::ProcType::CPU};
  cfg.decision_overhead_ms = 0.5;
  cfg.dispatch_overhead_ms = 0.25;
  const System sys(cfg);
  SimResult r;
  ScheduledKernel k;
  k.node = 0;
  k.proc = 0;
  k.ready_time = 0.0;
  k.assign_time = 0.5;
  k.exec_start = 0.75;
  k.exec_ms = 1.0;
  k.finish_time = 1.75;
  r.schedule = {k};
  r.makespan = 1.75;
  const SimMetrics m = compute_metrics(d, sys, r);
  // λ = exec_start − ready − transfer: the decision (0.5) and dispatch
  // (0.25) overheads are folded into exec_start by the engine.
  EXPECT_DOUBLE_EQ(m.lambda.total_ms, 0.75);
}

TEST(Metrics, SizeMismatchThrows) {
  dag::Dag d;
  d.add_node("a", 1);
  const System sys = test::generic_system(1);
  SimResult r;  // empty schedule for 1-node dag
  EXPECT_THROW(compute_metrics(d, sys, r), std::invalid_argument);
}

TEST(Metrics, LambdaStddevMatchesEq12) {
  // Three kernels with waits {2, 4, 9}: mean 5, sigma = sqrt(26/3).
  dag::Dag d;
  for (int i = 0; i < 3; ++i) d.add_node("k", 1);
  const System sys = test::generic_system(1);
  SimResult r;
  double waits[] = {2.0, 4.0, 9.0};
  double t = 0.0;
  for (dag::NodeId i = 0; i < 3; ++i) {
    ScheduledKernel k;
    k.node = i;
    k.proc = 0;
    k.ready_time = t;
    k.assign_time = t + waits[i];
    k.exec_start = k.assign_time;
    k.exec_ms = 1.0;
    k.finish_time = k.exec_start + 1.0;
    t = k.finish_time;
    r.schedule.push_back(k);
  }
  r.makespan = t;
  const SimMetrics m = compute_metrics(d, sys, r);
  EXPECT_DOUBLE_EQ(m.lambda.total_ms, 15.0);
  EXPECT_DOUBLE_EQ(m.lambda.avg_ms, 5.0);
  EXPECT_NEAR(m.lambda.stddev_ms, std::sqrt(26.0 / 3.0), 1e-12);
}

TEST(Metrics, EndToEndAccountingOnPaperWorkload) {
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, 0);
  const System sys = test::paper_system();
  const LutCostModel cost(lut::paper_lookup_table(), sys);
  core::Apt apt(4.0);
  Engine engine(graph, sys, cost);
  const SimResult result = engine.run(apt);
  const SimMetrics m = compute_metrics(graph, sys, result);
  EXPECT_EQ(m.kernel_count, graph.node_count());
  std::size_t scheduled = 0;
  for (const auto& p : m.per_proc) {
    scheduled += p.kernel_count;
    EXPECT_NEAR(p.compute_ms + p.transfer_ms + p.idle_ms, m.makespan, 1e-6);
    EXPECT_GE(p.idle_ms, -1e-9);
  }
  EXPECT_EQ(scheduled, graph.node_count());
  EXPECT_GT(m.lambda.total_ms, 0.0);
}

TEST(Metrics, MetNeverProducesAlternatives) {
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, 1);
  const System sys = test::paper_system();
  const LutCostModel cost(lut::paper_lookup_table(), sys);
  policies::Met met;
  Engine engine(graph, sys, cost);
  const SimMetrics m = compute_metrics(graph, sys, engine.run(met));
  EXPECT_EQ(m.alternative_count, 0u);
  EXPECT_TRUE(m.alternative_by_kernel.empty());
}

}  // namespace
}  // namespace apt::sim
