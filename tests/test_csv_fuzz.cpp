// Property fuzzing of the CSV layer: any table of arbitrary byte content
// must survive a serialise/parse round trip unchanged. Deterministic
// pseudo-random inputs over a sweep of seeds.
#include <gtest/gtest.h>

#include "util/csv.hpp"
#include "util/rng.hpp"

namespace apt::util {
namespace {

std::string random_field(Rng& rng) {
  // Bias toward the troublesome characters: quotes, commas, newlines, CR.
  static const std::string alphabet =
      "abcXYZ019 ,\",\n\r;\t'`|\\/_-+=()";
  const std::size_t len = static_cast<std::size_t>(rng.uniform_u64(12));
  std::string out;
  for (std::size_t i = 0; i < len; ++i)
    out.push_back(alphabet[static_cast<std::size_t>(
        rng.uniform_u64(alphabet.size()))]);
  return out;
}

class CsvFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsvFuzz, RoundTripsArbitraryContent) {
  Rng rng(GetParam());
  const std::size_t cols = 1 + static_cast<std::size_t>(rng.uniform_u64(5));
  const std::size_t rows = static_cast<std::size_t>(rng.uniform_u64(8));

  CsvRow header;
  for (std::size_t c = 0; c < cols; ++c)
    header.push_back("col" + std::to_string(c));
  CsvTable table(header);
  for (std::size_t r = 0; r < rows; ++r) {
    CsvRow row;
    for (std::size_t c = 0; c < cols; ++c) row.push_back(random_field(rng));
    table.add_row(std::move(row));
  }

  const CsvTable back = parse_csv(to_csv_string(table));
  ASSERT_EQ(back.header(), table.header());
  ASSERT_EQ(back.row_count(), table.row_count());
  for (std::size_t r = 0; r < rows; ++r) EXPECT_EQ(back.row(r), table.row(r));
}

TEST_P(CsvFuzz, DoubleRoundTripIsIdempotent) {
  Rng rng(GetParam() ^ 0xABCDEF);
  CsvTable table({"a", "b"});
  for (int r = 0; r < 4; ++r)
    table.add_row({random_field(rng), random_field(rng)});
  const std::string once = to_csv_string(table);
  const std::string twice = to_csv_string(parse_csv(once));
  EXPECT_EQ(once, twice);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzz,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace apt::util
