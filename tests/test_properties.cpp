// Property-based suite: every policy must produce a valid schedule on a
// broad parameterised sweep of workloads and systems, and a family of
// cross-policy invariants must hold on each instance.
#include <gtest/gtest.h>

#include <memory>

#include "core/policy_factory.hpp"
#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "test_helpers.hpp"

namespace apt {
namespace {

struct PropertyCase {
  std::string policy_spec;
  dag::DfgType type;
  std::size_t kernels;
  std::uint64_t seed;
  double rate_gbps;

  friend std::ostream& operator<<(std::ostream& os, const PropertyCase& c) {
    return os << c.policy_spec << "_" << dag::to_string(c.type) << "_n"
              << c.kernels << "_s" << c.seed << "_r" << c.rate_gbps;
  }
};

class PolicyProperty : public ::testing::TestWithParam<PropertyCase> {};

std::vector<PropertyCase> make_cases() {
  const std::vector<std::string> specs = {"apt:1.5", "apt:4",  "apt:16",
                                          "apt-r:4", "apt-ranked:4", "met",    "spn",
                                          "ss",      "ag",     "ag:recent",
                                          "olb",     "random", "minmin",
                                          "maxmin",  "sufferage", "heft",
                                          "peft"};
  std::vector<PropertyCase> cases;
  for (const auto& spec : specs) {
    for (const dag::DfgType type : {dag::DfgType::Type1, dag::DfgType::Type2}) {
      for (const auto& [n, seed, rate] :
           std::vector<std::tuple<std::size_t, std::uint64_t, double>>{
               {16, 11, 4.0}, {46, 12, 4.0}, {73, 13, 8.0}}) {
        cases.push_back({spec, type, n, seed, rate});
      }
    }
  }
  return cases;
}

TEST_P(PolicyProperty, ProducesAValidSchedule) {
  const PropertyCase& c = GetParam();
  const dag::Dag graph =
      dag::generate(c.type, c.kernels, c.seed, dag::KernelPool::paper_pool());
  const sim::System sys = test::paper_system(c.rate_gbps);
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
  const auto policy = core::make_policy(c.policy_spec);

  const sim::SimResult result =
      test::run_and_validate(*policy, graph, sys, cost);

  // Conservation: every processor's breakdown sums to the makespan and all
  // kernels are accounted for.
  const sim::SimMetrics m = sim::compute_metrics(graph, sys, result);
  std::size_t placed = 0;
  for (const auto& p : m.per_proc) {
    placed += p.kernel_count;
    EXPECT_NEAR(p.compute_ms + p.transfer_ms + p.idle_ms, m.makespan, 1e-6);
    EXPECT_GE(p.idle_ms, -1e-6);
    EXPECT_GE(p.transfer_ms, -1e-12);
  }
  EXPECT_EQ(placed, graph.node_count());

  // λ accounting: total is the sum of non-negative per-kernel delays.
  EXPECT_GE(m.lambda.total_ms, -1e-9);
  EXPECT_LE(m.lambda.occurrences, graph.node_count());

  // Only APT-family policies may mark alternatives.
  if (c.policy_spec.rfind("apt", 0) != 0)
    EXPECT_EQ(m.alternative_count, 0u) << c.policy_spec;
}

TEST_P(PolicyProperty, IsDeterministic) {
  const PropertyCase& c = GetParam();
  const dag::Dag graph =
      dag::generate(c.type, c.kernels, c.seed, dag::KernelPool::paper_pool());
  const sim::System sys = test::paper_system(c.rate_gbps);
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);

  const auto p1 = core::make_policy(c.policy_spec);
  const auto p2 = core::make_policy(c.policy_spec);
  sim::Engine e1(graph, sys, cost);
  sim::Engine e2(graph, sys, cost);
  const auto r1 = e1.run(*p1);
  const auto r2 = e2.run(*p2);
  ASSERT_EQ(r1.schedule.size(), r2.schedule.size());
  EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
  for (std::size_t i = 0; i < r1.schedule.size(); ++i) {
    EXPECT_EQ(r1.schedule[i].proc, r2.schedule[i].proc);
    EXPECT_DOUBLE_EQ(r1.schedule[i].exec_start, r2.schedule[i].exec_start);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPoliciesAllWorkloads, PolicyProperty,
                         ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<PropertyCase>& i) {
                           std::string name;
                           std::ostringstream os;
                           os << i.param;
                           for (char ch : os.str()) {
                             name += std::isalnum(
                                         static_cast<unsigned char>(ch))
                                         ? ch
                                         : '_';
                           }
                           return name;
                         });

// --- Cross-policy invariants on shared instances --------------------------------

class CrossPolicy : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrossPolicy, MetMakespanIsNeverBeatenByWaitingMore) {
  // APT with alpha=1 equals MET on the paper LUT (strict time ordering).
  const std::size_t idx = GetParam();
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, idx);
  const sim::System sys = test::paper_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
  const auto apt1 = core::make_policy("apt:1");
  const auto met = core::make_policy("met");
  sim::Engine e1(graph, sys, cost);
  sim::Engine e2(graph, sys, cost);
  EXPECT_DOUBLE_EQ(e1.run(*apt1).makespan, e2.run(*met).makespan);
}

TEST_P(CrossPolicy, EveryPolicyRespectsTheCriticalPathBound) {
  const std::size_t idx = GetParam();
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type2, idx);
  const sim::System sys = test::paper_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
  const double bound = sim::critical_path_lower_bound_ms(graph, sys, cost);
  for (const char* spec : {"apt:4", "met", "spn", "ss", "ag", "heft", "peft"}) {
    const auto policy = core::make_policy(spec);
    sim::Engine engine(graph, sys, cost);
    EXPECT_GE(engine.run(*policy).makespan + 1e-9, bound) << spec;
  }
}

INSTANTIATE_TEST_SUITE_P(PaperExperiments, CrossPolicy,
                         ::testing::Range<std::size_t>(0, 5));

}  // namespace
}  // namespace apt
