// Systems with several instances of one processor category — beyond the
// thesis's 1+1+1 platform but fully supported by the library (and used by
// bench_scaling_procs).
#include <gtest/gtest.h>

#include "core/apt.hpp"
#include "core/policy_factory.hpp"
#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "policies/met.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "test_helpers.hpp"

namespace apt {
namespace {

sim::System dual_gpu_system() {
  sim::SystemConfig cfg = sim::SystemConfig::paper_default(4.0);
  cfg.processors = {lut::ProcType::CPU, lut::ProcType::GPU,
                    lut::ProcType::GPU, lut::ProcType::FPGA};
  return sim::System(cfg);
}

TEST(MultiInstance, MetSpreadsAcrossInstancesOfTheBestCategory) {
  // Three GPU-best kernels on a dual-GPU system: two run immediately,
  // the third waits for whichever GPU frees first.
  dag::Dag d;
  for (int i = 0; i < 3; ++i) d.add_node("srad", 134217728);
  const sim::System sys = dual_gpu_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
  policies::Met met;
  const auto result = test::run_and_validate(met, d, sys, cost);
  std::size_t at_zero = 0;
  for (const auto& k : result.schedule) {
    EXPECT_EQ(sys.processor(k.proc).type, lut::ProcType::GPU);
    if (k.exec_start == 0.0) ++at_zero;
  }
  EXPECT_EQ(at_zero, 2u);
  EXPECT_DOUBLE_EQ(result.makespan, 3200.0);  // 2 rounds x 1600 ms
}

TEST(MultiInstance, AptOnlyUsesAlternativesOnceAllBestInstancesAreBusy) {
  // Three srad kernels: the first two take the GPUs; the third spills to
  // the CPU only because both GPUs are busy (5092 <= 4*1600).
  dag::Dag d;
  for (int i = 0; i < 3; ++i) d.add_node("srad", 134217728);
  const sim::System sys = dual_gpu_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
  core::Apt apt(4.0);
  const auto result = test::run_and_validate(apt, d, sys, cost);
  EXPECT_EQ(sys.processor(result.schedule[0].proc).type, lut::ProcType::GPU);
  EXPECT_EQ(sys.processor(result.schedule[1].proc).type, lut::ProcType::GPU);
  EXPECT_EQ(sys.processor(result.schedule[2].proc).type, lut::ProcType::CPU);
  EXPECT_TRUE(result.schedule[2].alternative);
  EXPECT_DOUBLE_EQ(result.makespan, 5092.0);
}

TEST(MultiInstance, ExtraGpuRemovesTheAlternative) {
  // Same workload, three GPUs: no kernel needs an alternative any more.
  sim::SystemConfig cfg = sim::SystemConfig::paper_default(4.0);
  cfg.processors = {lut::ProcType::CPU, lut::ProcType::GPU,
                    lut::ProcType::GPU, lut::ProcType::GPU,
                    lut::ProcType::FPGA};
  const sim::System sys(cfg);
  dag::Dag d;
  for (int i = 0; i < 3; ++i) d.add_node("srad", 134217728);
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
  core::Apt apt(4.0);
  const auto result = test::run_and_validate(apt, d, sys, cost);
  const auto metrics = sim::compute_metrics(d, sys, result);
  EXPECT_EQ(metrics.alternative_count, 0u);
  EXPECT_DOUBLE_EQ(result.makespan, 1600.0);
}

TEST(MultiInstance, EveryPolicyValidOnTheDualGpuPlatform) {
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type2, 1);
  const sim::System sys = dual_gpu_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
  for (const char* spec : {"apt:4", "apt-ranked:4", "met", "spn", "ss", "ag",
                           "minmin", "maxmin", "sufferage", "heft", "peft"}) {
    const auto policy = core::make_policy(spec);
    test::run_and_validate(*policy, graph, sys, cost);
  }
}

TEST(MultiInstance, MoreGpusNeverHurtMet) {
  // MET waits for the best category; adding instances of it can only
  // shorten queues (no scheduling anomaly is possible for MET because its
  // placement category is fixed per kernel).
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, 2);
  const sim::LutCostModel* cost_keep = nullptr;
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t gpus = 1; gpus <= 3; ++gpus) {
    sim::SystemConfig cfg = sim::SystemConfig::paper_default(4.0);
    cfg.processors.assign(1, lut::ProcType::CPU);
    for (std::size_t i = 0; i < gpus; ++i)
      cfg.processors.push_back(lut::ProcType::GPU);
    cfg.processors.push_back(lut::ProcType::FPGA);
    const sim::System sys(cfg);
    const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
    policies::Met met;
    sim::Engine engine(graph, sys, cost);
    const double makespan = engine.run(met).makespan;
    EXPECT_LE(makespan, prev + 1e-9) << gpus << " GPUs";
    prev = makespan;
  }
  (void)cost_keep;
}

TEST(MultiInstance, SingleProcessorSystemWorksForAllPolicies) {
  // Degenerate platform: one CPU. Everything serialises; every policy
  // must still terminate with a valid schedule.
  sim::SystemConfig cfg;
  cfg.processors = {lut::ProcType::CPU};
  const sim::System sys(cfg);
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type2, 0);
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
  double expected_total = 0.0;
  for (dag::NodeId n = 0; n < graph.node_count(); ++n)
    expected_total += cost.exec_time_ms(graph, n, sys.processor(0));
  for (const char* spec :
       {"apt:4", "met", "spn", "ss", "ag", "minmin", "heft", "peft"}) {
    const auto policy = core::make_policy(spec);
    const auto result = test::run_and_validate(*policy, graph, sys, cost);
    EXPECT_NEAR(result.makespan, expected_total, 1e-6) << spec;
  }
}

}  // namespace
}  // namespace apt
