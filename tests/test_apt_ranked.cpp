#include "core/apt_ranked.hpp"

#include <gtest/gtest.h>

#include "core/apt.hpp"
#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "policies/heft.hpp"
#include "test_helpers.hpp"

namespace apt::core {
namespace {

TEST(AptRanked, ConfigurationAndClassification) {
  AptRanked policy(4.0);
  EXPECT_EQ(policy.name(), "APT-Ranked(alpha=4.00)");
  // Semi-static: needs the whole DAG for ranks, pays transfers on-line.
  EXPECT_FALSE(policy.is_dynamic());
  EXPECT_EQ(policy.transfer_semantics(),
            sim::TransferSemantics::AtAssignment);
  EXPECT_THROW(AptRanked(0.5), std::invalid_argument);
}

TEST(AptRanked, PrepareComputesHeftRanks) {
  const auto ex = test::topcuoglu_example();
  const sim::System sys = test::generic_system(3);
  AptRanked policy(4.0);
  policy.prepare(ex.dag, sys, *ex.cost);
  const auto expected = policies::heft_upward_ranks(ex.dag, sys, *ex.cost);
  ASSERT_EQ(policy.ranks().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_DOUBLE_EQ(policy.ranks()[i], expected[i]);
}

TEST(AptRanked, ContestedProcessorGoesToTheCriticalKernel) {
  // Two independent kernels both fastest on p0. Kernel 0 is a dead end;
  // kernel 1 heads a chain. FIFO APT gives p0 to kernel 0; APT-Ranked
  // recognises kernel 1's rank and serves it first.
  dag::Dag d;
  d.add_node("deadend", 1);  // 0
  d.add_node("head", 1);     // 1 -> 2 -> 3
  d.add_node("mid", 1);
  d.add_node("tail", 1);
  d.add_edge(1, 2);
  d.add_edge(2, 3);
  const sim::System sys = test::generic_system(2);
  // p0 fast for everything, p1 barely within a 4x threshold.
  sim::MatrixCostModel cost(
      {{4.0, 12.0}, {4.0, 12.0}, {4.0, 12.0}, {4.0, 12.0}});

  Apt fifo(4.0);
  const auto fifo_result = test::run_and_validate(fifo, d, sys, cost);
  EXPECT_EQ(fifo_result.schedule[0].proc, 0u);  // dead end grabbed p0

  AptRanked ranked(4.0);
  const auto ranked_result = test::run_and_validate(ranked, d, sys, cost);
  EXPECT_EQ(ranked_result.schedule[1].proc, 0u);  // chain head got p0
  EXPECT_LE(ranked_result.makespan, fifo_result.makespan);
}

TEST(AptRanked, ThresholdSemanticsUnchanged) {
  // Alternatives beyond alpha*x are still refused.
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{1.0, 5.0}, {1.0, 5.0}});
  AptRanked ranked(4.0);
  const auto result = test::run_and_validate(ranked, d, sys, cost);
  EXPECT_EQ(result.schedule[0].proc, 0u);
  EXPECT_EQ(result.schedule[1].proc, 0u);  // waited: 5 > 4
  EXPECT_FALSE(result.schedule[1].alternative);
}

TEST(AptRanked, MatchesAptOnType1LevelOneByConstruction) {
  // Type-1 level-1 kernels all have rank == own cost + sink tail; the sink
  // dominates nothing — ordering changes little, and results stay valid.
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, 0);
  const sim::System sys = test::paper_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
  AptRanked ranked(4.0);
  test::run_and_validate(ranked, graph, sys, cost);
}

TEST(AptRanked, BeatsFifoAptOnDependencyRichWorkloads) {
  // The headline of the extension (recorded in EXPERIMENTS.md): rank
  // ordering pays on Type-2 graphs where critical chains contend with
  // bulk work. Averaged over the ten paper graphs the ranked variant must
  // not lose, and in practice wins by a wide margin.
  const sim::System sys = test::paper_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
  double fifo_total = 0.0;
  double ranked_total = 0.0;
  for (std::size_t i = 0; i < 10; ++i) {
    const dag::Dag graph = dag::paper_graph(dag::DfgType::Type2, i);
    Apt fifo(4.0);
    AptRanked ranked(4.0);
    fifo_total += test::run_and_validate(fifo, graph, sys, cost).makespan;
    ranked_total += test::run_and_validate(ranked, graph, sys, cost).makespan;
  }
  EXPECT_LT(ranked_total, fifo_total);
}

}  // namespace
}  // namespace apt::core
