// src/obs profiling: registry behaviour, scoped timers, and — the contract
// that matters — inertness: attaching a Profile (or a TraceSink) to either
// engine leaves every simulated bit identical.
#include "obs/profile.hpp"

#include <gtest/gtest.h>

#include "core/batch.hpp"
#include "core/policy_factory.hpp"
#include "core/stream_plan.hpp"
#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "obs/trace_sink.hpp"
#include "sim/engine.hpp"
#include "sim/policy.hpp"
#include "test_helpers.hpp"

namespace apt {
namespace {

TEST(Profile, CountersAccumulateAndSnapshotOmitsZeros) {
  obs::Profile p;
  p.add(obs::Counter::kArrivals);
  p.add(obs::Counter::kArrivals, 4);
  p.add(obs::Counter::kEventsProcessed, 7);
  EXPECT_EQ(p.count(obs::Counter::kArrivals), 5u);
  EXPECT_EQ(p.count(obs::Counter::kEventsProcessed), 7u);
  EXPECT_EQ(p.count(obs::Counter::kRetirements), 0u);

  const obs::ProfileSnapshot snap = p.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);  // zero entries omitted, enum order
  EXPECT_EQ(snap.counters[0].name, "events_processed");
  EXPECT_EQ(snap.counters[0].count, 7u);
  EXPECT_EQ(snap.counters[1].name, "arrivals");
  EXPECT_EQ(snap.counters[1].count, 5u);
  EXPECT_TRUE(snap.timers.empty());
}

TEST(Profile, TimersRecordCountTotalAndMax) {
  obs::Profile p;
  p.record(obs::Timer::kPolicyPass, 1.5);
  p.record(obs::Timer::kPolicyPass, 0.5);
  EXPECT_EQ(p.timer_count(obs::Timer::kPolicyPass), 2u);
  EXPECT_DOUBLE_EQ(p.timer_total_ms(obs::Timer::kPolicyPass), 2.0);
  EXPECT_DOUBLE_EQ(p.timer_max_ms(obs::Timer::kPolicyPass), 1.5);

  const obs::ProfileSnapshot snap = p.snapshot();
  ASSERT_EQ(snap.timers.size(), 1u);
  EXPECT_EQ(snap.timers[0].name, "policy_pass");
  EXPECT_EQ(snap.timers[0].count, 2u);
}

TEST(Profile, ScopedTimerNullProfileIsANoOp) {
  // Must not crash or read the clock; nothing to observe beyond surviving.
  obs::ScopedTimer timer(nullptr, obs::Timer::kPolicyPass);
}

TEST(Profile, ScopedTimerRecordsOneSample) {
  obs::Profile p;
  { obs::ScopedTimer timer(&p, obs::Timer::kDrainQueues); }
  EXPECT_EQ(p.timer_count(obs::Timer::kDrainQueues), 1u);
  EXPECT_GE(p.timer_total_ms(obs::Timer::kDrainQueues), 0.0);
}

TEST(Profile, EveryEnumHasAName) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(obs::Counter::kCount);
       ++i)
    EXPECT_STRNE(obs::to_string(static_cast<obs::Counter>(i)), "?");
  for (std::size_t i = 0; i < static_cast<std::size_t>(obs::Timer::kCount);
       ++i)
    EXPECT_STRNE(obs::to_string(static_cast<obs::Timer>(i)), "?");
}

// --- closed-system engine ----------------------------------------------------

sim::SimResult run_closed(sim::EngineOptions options) {
  const lut::LookupTable table = lut::paper_lookup_table();
  const dag::Dag dag = dag::generate(dag::DfgType::Type1, 24, 3,
                                     dag::KernelPool::from_lookup_table(table));
  sim::SystemConfig cfg = sim::SystemConfig::paper_default();
  cfg.topology = net::parse_topology_spec("mesh:2x2");
  const sim::System system(cfg);
  const sim::LutCostModel cost(table, system);
  const auto policy = core::make_policy("apt:4");
  sim::Engine engine(dag, system, cost, options);
  return engine.run(*policy);
}

void expect_identical(const sim::SimResult& a, const sim::SimResult& b) {
  ASSERT_EQ(a.schedule.size(), b.schedule.size());
  EXPECT_EQ(a.makespan, b.makespan);  // bitwise, not approximate
  for (std::size_t i = 0; i < a.schedule.size(); ++i) {
    EXPECT_EQ(a.schedule[i].proc, b.schedule[i].proc);
    EXPECT_EQ(a.schedule[i].exec_start, b.schedule[i].exec_start);
    EXPECT_EQ(a.schedule[i].finish_time, b.schedule[i].finish_time);
    EXPECT_EQ(a.schedule[i].transfer_ms, b.schedule[i].transfer_ms);
    EXPECT_EQ(a.schedule[i].noise_mult, b.schedule[i].noise_mult);
  }
  ASSERT_EQ(a.transfers.size(), b.transfers.size());
  for (std::size_t i = 0; i < a.transfers.size(); ++i) {
    EXPECT_EQ(a.transfers[i].start, b.transfers[i].start);
    EXPECT_EQ(a.transfers[i].finish, b.transfers[i].finish);
  }
}

TEST(Profile, ClosedRunBitIdenticalWithObservabilityAttached) {
  const sim::SimResult bare = run_closed(sim::EngineOptions{});

  obs::Profile profile;
  sim::SystemConfig cfg = sim::SystemConfig::paper_default();
  cfg.topology = net::parse_topology_spec("mesh:2x2");
  obs::ChromeTraceWriter writer{sim::System(cfg)};
  sim::EngineOptions options;
  options.profile = &profile;
  options.sink = &writer;
  const sim::SimResult observed = run_closed(options);

  expect_identical(bare, observed);
  EXPECT_GT(writer.event_count(), 0u);
  EXPECT_FALSE(profile.snapshot().empty());
}

TEST(Profile, ClosedRunCountersMatchTheSchedule) {
  obs::Profile profile;
  sim::EngineOptions options;
  options.profile = &profile;
  const sim::SimResult result = run_closed(options);

  // One decision and one completion event per kernel, at least one policy
  // pass, and a timed pass per policy invocation.
  EXPECT_EQ(profile.count(obs::Counter::kPolicyDecisions),
            result.schedule.size());
  EXPECT_EQ(profile.count(obs::Counter::kReadyMarked), result.schedule.size());
  EXPECT_GE(profile.count(obs::Counter::kEventsProcessed),
            result.schedule.size());
  EXPECT_GT(profile.count(obs::Counter::kTransfersStarted), 0u);
  EXPECT_EQ(profile.timer_count(obs::Timer::kPolicyPass),
            profile.count(obs::Counter::kPolicyPasses));
  // Contended topology: the TransferManager's solves were timed.
  EXPECT_GT(profile.timer_count(obs::Timer::kTmSolveFull), 0u);
}

// --- open-system sweep -------------------------------------------------------

core::StreamPlan profiled_plan() {
  core::StreamPlan plan;
  plan.families = {"type1"};
  plan.rates_per_ms = {0.004};
  plan.policy_specs = {"apt:4", "met"};
  plan.kernels = 20;
  plan.horizon_ms = 4000.0;
  plan.warmup_ms = 400.0;
  plan.base_seed = 42;
  plan.base_system.topology = net::parse_topology_spec("mesh:2x2");
  return plan;
}

TEST(Profile, StreamPlanBitIdenticalWithProfilingOn) {
  const core::BatchRunner runner(1);
  core::StreamPlan plan = profiled_plan();
  const core::StreamBatchResult bare = core::run_stream_plan(plan, runner);
  plan.profile = true;
  const core::StreamBatchResult profiled = core::run_stream_plan(plan, runner);

  ASSERT_EQ(bare.cells.size(), profiled.cells.size());
  for (std::size_t i = 0; i < bare.cells.size(); ++i) {
    const sim::StreamMetrics& a = bare.cells[i].metrics;
    const sim::StreamMetrics& b = profiled.cells[i].metrics;
    EXPECT_EQ(a.apps_arrived, b.apps_arrived);
    EXPECT_EQ(a.apps_completed, b.apps_completed);
    EXPECT_EQ(a.flow_ms.avg, b.flow_ms.avg);  // bitwise
    EXPECT_EQ(a.flow_ms.p99, b.flow_ms.p99);
    EXPECT_EQ(a.slowdown.avg, b.slowdown.avg);
    EXPECT_EQ(a.end_ms, b.end_ms);
    EXPECT_EQ(a.queue_depth_avg, b.queue_depth_avg);
    // The only permitted difference: the profile snapshot itself.
    EXPECT_TRUE(a.profile.empty());
    EXPECT_FALSE(b.profile.empty());
  }
}

TEST(Profile, StreamSnapshotLandsInEveryCellsMetrics) {
  const core::BatchRunner runner(2);
  core::StreamPlan plan = profiled_plan();
  plan.profile = true;
  const core::StreamBatchResult result = core::run_stream_plan(plan, runner);
  for (const core::StreamCellResult& cell : result.cells) {
    const obs::ProfileSnapshot& snap = cell.metrics.profile;
    ASSERT_FALSE(snap.empty());
    std::uint64_t arrivals = 0;
    std::uint64_t retirements = 0;
    for (const auto& c : snap.counters) {
      if (c.name == "arrivals") arrivals = c.count;
      if (c.name == "retirements") retirements = c.count;
    }
    EXPECT_EQ(arrivals, cell.metrics.apps_arrived);
    EXPECT_EQ(retirements, cell.metrics.apps_completed);
  }
}

}  // namespace
}  // namespace apt
