// The synthetic platform generator: parameter validation, the exact
// heterogeneity / CCR calibration guarantees, determinism, and CSV
// round-tripping through the existing LookupTable machinery.
#include "lut/synthetic.hpp"

#include <gtest/gtest.h>

#include "dag/generator.hpp"

namespace apt::lut {
namespace {

TEST(SyntheticLut, ProducesTheRequestedShape) {
  SyntheticLutSpec spec;
  spec.kernel_count = 5;
  spec.sizes_per_kernel = 4;
  const LookupTable table = synthetic_lookup_table(spec);
  EXPECT_EQ(table.size(), 20u);
  const auto kernels = table.kernels();
  ASSERT_EQ(kernels.size(), 5u);
  for (const auto& kernel : kernels) {
    EXPECT_EQ(table.sizes_for(kernel).size(), 4u);
  }
}

TEST(SyntheticLut, HitsTheHeterogeneityTargetExactly) {
  for (const double h : {1.0, 2.0, 16.0, 1e6}) {
    SyntheticLutSpec spec;
    spec.heterogeneity = h;
    spec.seed = 3;
    const LookupTable table = synthetic_lookup_table(spec);
    for (const Entry& e : table.entries()) {
      EXPECT_NEAR(table.heterogeneity(e.kernel, e.data_size), h, h * 1e-12);
    }
    EXPECT_NEAR(geometric_mean_heterogeneity(table), h, h * 1e-9);
  }
}

TEST(SyntheticLut, HitsTheCcrTargetWithinRoundingError) {
  for (const double ccr : {0.1, 1.0, 8.0}) {
    SyntheticLutSpec spec;
    spec.ccr = ccr;
    spec.seed = 5;
    const LookupTable table = synthetic_lookup_table(spec);
    // Calibration rounds each data size to whole elements; at the default
    // 100 ms scale that rounding is ~1e-8 relative.
    EXPECT_NEAR(mean_ccr(table, spec.link_rate_gbps, spec.bytes_per_element),
                ccr, ccr * 1e-6);
  }
}

TEST(SyntheticLut, ZeroCcrStillYieldsUniqueRows) {
  SyntheticLutSpec spec;
  spec.ccr = 0.0;
  spec.sizes_per_kernel = 5;
  const LookupTable table = synthetic_lookup_table(spec);
  EXPECT_EQ(table.size(), spec.kernel_count * 5u);
  EXPECT_LT(mean_ccr(table, spec.link_rate_gbps), 1e-6);
}

TEST(SyntheticLut, SameSpecSameBytes) {
  SyntheticLutSpec spec;
  spec.seed = 42;
  const LookupTable a = synthetic_lookup_table(spec);
  const LookupTable b = synthetic_lookup_table(spec);
  EXPECT_EQ(a.to_csv(), b.to_csv());
  spec.seed = 43;
  EXPECT_NE(a.to_csv(), synthetic_lookup_table(spec).to_csv());
}

TEST(SyntheticLut, RoundTripsThroughCsv) {
  SyntheticLutSpec spec;
  spec.kernel_count = 3;
  const LookupTable table = synthetic_lookup_table(spec);
  const LookupTable reloaded = LookupTable::from_csv(table.to_csv());
  EXPECT_EQ(table.to_csv(), reloaded.to_csv());
}

TEST(SyntheticLut, FeedsTheKernelPoolGenerators) {
  SyntheticLutSpec spec;
  spec.kernel_count = 4;
  spec.sizes_per_kernel = 2;
  const LookupTable table = synthetic_lookup_table(spec);
  const auto pool = dag::KernelPool::from_lookup_table(table);
  const dag::Dag graph = dag::generate(dag::DfgType::Type1, 16, 7, pool);
  for (dag::NodeId i = 0; i < graph.node_count(); ++i) {
    EXPECT_TRUE(
        table.contains(graph.node(i).kernel, graph.node(i).data_size));
  }
}

TEST(SyntheticLut, RejectsOutOfRangeParameters) {
  const auto bad = [](auto mutate) {
    SyntheticLutSpec spec;
    mutate(spec);
    EXPECT_THROW(synthetic_lookup_table(spec), std::invalid_argument);
  };
  bad([](SyntheticLutSpec& s) { s.kernel_count = 0; });
  bad([](SyntheticLutSpec& s) { s.sizes_per_kernel = 0; });
  bad([](SyntheticLutSpec& s) { s.heterogeneity = 0.5; });
  bad([](SyntheticLutSpec& s) { s.ccr = -0.1; });
  bad([](SyntheticLutSpec& s) { s.mean_exec_ms = 0.0; });
  bad([](SyntheticLutSpec& s) { s.spread = 0.9; });
  bad([](SyntheticLutSpec& s) { s.link_rate_gbps = 0.0; });
  bad([](SyntheticLutSpec& s) { s.bytes_per_element = 0.0; });
  EXPECT_THROW(mean_ccr(LookupTable(), 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace apt::lut
