#include "core/experiments.hpp"

#include <gtest/gtest.h>

namespace apt::core {
namespace {

// A small spec set keeps these structural tests fast; the full-shape
// assertions against the paper live in test_paper_shape.cpp.
const std::vector<std::string> kSmallSet = {"apt:4", "met", "spn"};

TEST(Experiments, GridDimensionsAndNames) {
  const Grid grid = run_paper_grid(dag::DfgType::Type1, kSmallSet);
  EXPECT_EQ(grid.experiment_count(), 10u);
  EXPECT_EQ(grid.policy_count(), 3u);
  EXPECT_EQ(grid.policy_names[0], "APT(alpha=4.00)");
  EXPECT_EQ(grid.policy_names[1], "MET");
  EXPECT_EQ(grid.policy_specs[2], "spn");
  for (const auto& row : grid.cells) {
    ASSERT_EQ(row.size(), 3u);
    for (const Cell& cell : row) EXPECT_GT(cell.makespan_ms, 0.0);
  }
}

TEST(Experiments, AveragesMatchManualComputation) {
  const Grid grid = run_paper_grid(dag::DfgType::Type1, kSmallSet);
  double sum = 0.0;
  for (const auto& row : grid.cells) sum += row[1].makespan_ms;
  EXPECT_NEAR(grid.avg_makespan_ms(1), sum / 10.0, 1e-9);
  double lsum = 0.0;
  for (const auto& row : grid.cells) lsum += row[1].lambda_total_ms;
  EXPECT_NEAR(grid.avg_lambda_ms(1), lsum / 10.0, 1e-9);
}

TEST(Experiments, WinsCountRowMinimaWithSharedTies) {
  Grid grid;
  grid.policy_names = {"A", "B"};
  grid.policy_specs = {"apt:4", "met"};
  Cell fast;
  fast.makespan_ms = 1.0;
  Cell slow;
  slow.makespan_ms = 2.0;
  Cell tie = fast;
  grid.cells = {{fast, slow}, {slow, fast}, {tie, tie}};
  // Row 0 is A's outright win, row 1 is B's; the tied row 2 credits both
  // (shared-win semantics), so winner counts sum to more than the row
  // count.
  EXPECT_EQ(grid.wins(0), 2u);
  EXPECT_EQ(grid.wins(1), 2u);
}

TEST(Experiments, WinsThreeWayTieCreditsEveryColumn) {
  Grid grid;
  grid.policy_names = {"A", "B", "C"};
  grid.policy_specs = {"apt:4", "met", "spn"};
  Cell one;
  one.makespan_ms = 1.0;
  Cell two;
  two.makespan_ms = 2.0;
  grid.cells = {{one, one, one}, {two, one, one}};
  EXPECT_EQ(grid.wins(0), 1u);
  EXPECT_EQ(grid.wins(1), 2u);
  EXPECT_EQ(grid.wins(2), 2u);
}

TEST(Experiments, PaperPolicySpecsAreTheSevenPolicies) {
  const auto specs = paper_policy_specs(4.0);
  ASSERT_EQ(specs.size(), 7u);
  EXPECT_EQ(specs[0], "apt:4.000");
  EXPECT_EQ(specs[1], "met");
  EXPECT_EQ(specs[6], "peft");
}

TEST(Experiments, DynamicSpecClassification) {
  EXPECT_TRUE(is_dynamic_spec("apt:4"));
  EXPECT_TRUE(is_dynamic_spec("met"));
  EXPECT_TRUE(is_dynamic_spec("ag"));
  EXPECT_FALSE(is_dynamic_spec("heft"));
  EXPECT_FALSE(is_dynamic_spec("peft"));
}

TEST(Experiments, ImprovementAgainstSelfCompetitorsOnly) {
  // Build a grid by hand: APT avg 80, MET avg 100, HEFT avg 50 (static,
  // excluded from the Eq. 13 comparison base).
  Grid grid;
  grid.policy_names = {"APT", "MET", "HEFT"};
  grid.policy_specs = {"apt:4", "met", "heft"};
  Cell apt;
  apt.makespan_ms = 80.0;
  apt.lambda_total_ms = 40.0;
  Cell met;
  met.makespan_ms = 100.0;
  met.lambda_total_ms = 80.0;
  Cell heft;
  heft.makespan_ms = 50.0;
  heft.lambda_total_ms = 10.0;
  grid.cells = {{apt, met, heft}};
  EXPECT_NEAR(improvement_exec_pct(grid, 0), 20.0, 1e-9);
  EXPECT_NEAR(improvement_lambda_pct(grid, 0), 50.0, 1e-9);
}

TEST(Experiments, ImprovementIsNegativeWhenCompetitorWins) {
  Grid grid;
  grid.policy_names = {"APT", "MET"};
  grid.policy_specs = {"apt:4", "met"};
  Cell apt;
  apt.makespan_ms = 110.0;
  apt.lambda_total_ms = 1.0;
  Cell met;
  met.makespan_ms = 100.0;
  met.lambda_total_ms = 1.0;
  grid.cells = {{apt, met}};
  EXPECT_NEAR(improvement_exec_pct(grid, 0), -10.0, 1e-9);
}

TEST(Experiments, ImprovementNeedsADynamicCompetitor) {
  Grid grid;
  grid.policy_names = {"APT", "HEFT"};
  grid.policy_specs = {"apt:4", "heft"};
  Cell c;
  c.makespan_ms = 1.0;
  grid.cells = {{c, c}};
  EXPECT_THROW(improvement_exec_pct(grid, 0), std::logic_error);
}

TEST(Experiments, RunPolicyOverExplicitGraphs) {
  const std::vector<dag::Dag> graphs = {dag::paper_graph(dag::DfgType::Type1, 0),
                                        dag::paper_graph(dag::DfgType::Type1, 1)};
  const auto cells = run_policy_over("met", graphs);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_GT(cells[0].makespan_ms, 0.0);
  EXPECT_NE(cells[0].makespan_ms, cells[1].makespan_ms);
}

TEST(Experiments, AlphaSweepCoversTheCartesianProduct) {
  const auto points =
      apt_alpha_sweep(dag::DfgType::Type1, {2.0, 4.0}, {4.0, 8.0});
  ASSERT_EQ(points.size(), 4u);
  EXPECT_DOUBLE_EQ(points[0].alpha, 2.0);
  EXPECT_DOUBLE_EQ(points[0].rate_gbps, 4.0);
  EXPECT_DOUBLE_EQ(points[1].rate_gbps, 8.0);
  EXPECT_DOUBLE_EQ(points[3].alpha, 4.0);
  for (const auto& p : points) {
    EXPECT_GT(p.avg_makespan_ms, 0.0);
    EXPECT_GT(p.avg_lambda_ms, 0.0);
  }
}

TEST(Experiments, PaperAlphasAreTheFiveFromTheThesis) {
  EXPECT_EQ(paper_alphas(), (std::vector<double>{1.5, 2.0, 4.0, 8.0, 16.0}));
}

TEST(Experiments, GridIsDeterministic) {
  const Grid a = run_paper_grid(dag::DfgType::Type2, {"apt:4"});
  const Grid b = run_paper_grid(dag::DfgType::Type2, {"apt:4"});
  for (std::size_t g = 0; g < a.experiment_count(); ++g) {
    EXPECT_DOUBLE_EQ(a.cells[g][0].makespan_ms, b.cells[g][0].makespan_ms);
    EXPECT_DOUBLE_EQ(a.cells[g][0].lambda_total_ms,
                     b.cells[g][0].lambda_total_ms);
  }
}

}  // namespace
}  // namespace apt::core
