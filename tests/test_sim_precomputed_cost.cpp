// The densified cost model must agree bit-for-bit with the model it wraps
// on every query the engine or a policy can make, and fall back to the
// base model for anything outside its precomputed dag.
#include "sim/precomputed_cost_model.hpp"

#include <gtest/gtest.h>

#include "core/policy_factory.hpp"
#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "test_helpers.hpp"

namespace apt::sim {
namespace {

TEST(PrecomputedCostModel, MatchesLutModelOnEveryNodeProcAndEdge) {
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type2, 3);
  const System system = test::paper_system();
  const LutCostModel base(lut::paper_lookup_table(), system);
  const PrecomputedCostModel fast(graph, system, base);

  for (dag::NodeId n = 0; n < graph.node_count(); ++n) {
    for (const Processor& p : system.processors()) {
      EXPECT_EQ(fast.exec_time_ms(graph, n, p), base.exec_time_ms(graph, n, p));
    }
    for (dag::NodeId s : graph.successors(n)) {
      for (const Processor& from : system.processors()) {
        for (const Processor& to : system.processors()) {
          EXPECT_EQ(fast.transfer_time_ms(graph, n, s, from, to),
                    base.transfer_time_ms(graph, n, s, from, to));
        }
      }
    }
  }
}

TEST(PrecomputedCostModel, AveragesMatchBaseHelpers) {
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, 0);
  const System system = test::paper_system();
  const LutCostModel base(lut::paper_lookup_table(), system);
  const PrecomputedCostModel fast(graph, system, base);
  for (dag::NodeId n = 0; n < graph.node_count(); ++n) {
    EXPECT_EQ(fast.average_exec_time_ms(graph, n, system),
              base.average_exec_time_ms(graph, n, system));
  }
}

TEST(PrecomputedCostModel, MatchesMatrixModelIncludingNonEdgePairs) {
  const auto ex = test::topcuoglu_example();
  const System system = test::generic_system(3);
  const PrecomputedCostModel fast(ex.dag, system, *ex.cost);
  for (dag::NodeId a = 0; a < ex.dag.node_count(); ++a) {
    for (dag::NodeId b = 0; b < ex.dag.node_count(); ++b) {
      if (a == b) continue;
      // Includes (a, b) pairs that are NOT edges: the adapter must agree
      // with the base (which answers 0 for unknown pairs) via fallback.
      EXPECT_EQ(fast.transfer_time_ms(ex.dag, a, b, system.processor(0),
                                      system.processor(1)),
                ex.cost->transfer_time_ms(ex.dag, a, b, system.processor(0),
                                          system.processor(1)));
    }
  }
}

TEST(PrecomputedCostModel, ForeignDagFallsBackToBase) {
  const auto sizes = lut::paper_lookup_table().sizes_for("mm");
  ASSERT_GE(sizes.size(), 2u);
  const dag::Dag graph = test::chain({{"mm", sizes[0]}, {"mm", sizes[0]}});
  const dag::Dag other = test::chain({{"mm", sizes[1]}, {"mm", sizes[1]}});
  const System system = test::paper_system();
  const LutCostModel base(lut::paper_lookup_table(), system);
  const PrecomputedCostModel fast(graph, system, base);
  // Queries about a dag the adapter never saw answer from the base model.
  EXPECT_EQ(fast.exec_time_ms(other, 0, system.processor(0)),
            base.exec_time_ms(other, 0, system.processor(0)));
  EXPECT_EQ(fast.transfer_time_ms(other, 0, 1, system.processor(0),
                                  system.processor(1)),
            base.transfer_time_ms(other, 0, 1, system.processor(0),
                                  system.processor(1)));
}

TEST(PrecomputedCostModel, EngineRunsAreBitIdenticalWithAndWithoutWrapping) {
  // Engine::run wraps internally; pre-wrapping by hand must change nothing
  // (and the engine must not double-wrap).
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type2, 1);
  const System system = test::paper_system();
  const LutCostModel base(lut::paper_lookup_table(), system);
  const PrecomputedCostModel fast(graph, system, base);

  const auto run = [&](const CostModel& cost) {
    auto policy = core::make_policy("apt:4");
    Engine engine(graph, system, cost);
    return engine.run(*policy);
  };
  const SimResult a = run(base);
  const SimResult b = run(fast);
  ASSERT_EQ(a.schedule.size(), b.schedule.size());
  EXPECT_EQ(a.makespan, b.makespan);
  for (std::size_t i = 0; i < a.schedule.size(); ++i) {
    EXPECT_EQ(a.schedule[i].proc, b.schedule[i].proc);
    EXPECT_EQ(a.schedule[i].finish_time, b.schedule[i].finish_time);
  }
}

}  // namespace
}  // namespace apt::sim
