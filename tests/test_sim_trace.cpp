#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace apt::sim {
namespace {

/// Builds a hand-crafted two-processor schedule:
///   p0: node 0 [0, 5)
///   p1: node 1 [2, 6)
SimResult two_kernel_result() {
  SimResult r;
  ScheduledKernel a;
  a.node = 0;
  a.proc = 0;
  a.exec_ms = 5.0;
  a.finish_time = 5.0;
  ScheduledKernel b;
  b.node = 1;
  b.proc = 1;
  b.assign_time = 2.0;
  b.exec_start = 2.0;
  b.exec_ms = 4.0;
  b.finish_time = 6.0;
  r.schedule = {a, b};
  r.makespan = 6.0;
  return r;
}

dag::Dag two_kernel_dag() {
  dag::Dag d;
  d.add_node("nw", 16777216);
  d.add_node("bfs", 2034736);
  return d;
}

TEST(Trace, RowsAtEveryStartAndInteriorFinish) {
  const dag::Dag d = two_kernel_dag();
  const System sys = test::generic_system(2);
  const Trace trace = build_trace(d, sys, two_kernel_result());
  // Instants: 0 (a starts), 2 (b starts), 5 (a finishes; interior).
  // 6 is the makespan and is summarised by end_time.
  ASSERT_EQ(trace.rows.size(), 3u);
  EXPECT_DOUBLE_EQ(trace.rows[0].time, 0.0);
  EXPECT_DOUBLE_EQ(trace.rows[1].time, 2.0);
  EXPECT_DOUBLE_EQ(trace.rows[2].time, 5.0);
  EXPECT_DOUBLE_EQ(trace.end_time, 6.0);
}

TEST(Trace, ActivityCellsShowNodeAndKernel) {
  const dag::Dag d = two_kernel_dag();
  const System sys = test::generic_system(2);
  const Trace trace = build_trace(d, sys, two_kernel_result());
  EXPECT_EQ(trace.rows[0].proc_activity[0], "0-nw");
  EXPECT_EQ(trace.rows[0].proc_activity[1], "idle");
  EXPECT_EQ(trace.rows[1].proc_activity[0], "0-nw");
  EXPECT_EQ(trace.rows[1].proc_activity[1], "1-bfs");
  EXPECT_EQ(trace.rows[2].proc_activity[0], "idle");
  EXPECT_EQ(trace.rows[2].proc_activity[1], "1-bfs");
}

TEST(Trace, CoalescesNumericalDust) {
  SimResult r = two_kernel_result();
  // A third kernel starting 1e-8 after node 1 must not add a new row.
  ScheduledKernel c;
  c.node = 1;  // reuse id for simplicity of the dag below
  c.proc = 0;
  c.assign_time = 2.0 + 1e-8;
  c.exec_start = 2.0 + 1e-8;
  c.exec_ms = 1.0;
  c.finish_time = 3.0 + 1e-8;
  // Build a 3-node dag so the record is valid for rendering.
  dag::Dag d;
  d.add_node("nw", 16777216);
  d.add_node("bfs", 2034736);
  d.add_node("cd", 250000);
  c.node = 2;
  r.schedule.push_back(c);
  const System sys = test::generic_system(2);
  const Trace trace = build_trace(d, sys, r);
  std::size_t near_two = 0;
  for (const auto& row : trace.rows) {
    if (std::abs(row.time - 2.0) < 1e-3) ++near_two;
  }
  EXPECT_EQ(near_two, 1u);
}

TEST(Trace, FormatAlignsColumnsAndPrintsEndTime) {
  const dag::Dag d = two_kernel_dag();
  const System sys = test::generic_system(2);
  const Trace trace = build_trace(d, sys, two_kernel_result());
  const std::string text = format_trace(sys, trace);
  EXPECT_NE(text.find("CPU0:0-nw"), std::string::npos);
  EXPECT_NE(text.find("CPU1:1-bfs"), std::string::npos);
  EXPECT_NE(text.find("End time: 6.000"), std::string::npos);
  // Three rows + end line.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(Trace, CommStallWindowsAreAnnotated) {
  // Node 1's processor is occupied from t=2 but stalls on input transfers
  // until t=4: the trace must open a ":comm" window at 2 and flip to plain
  // execution at 4.
  SimResult r = two_kernel_result();
  r.schedule[1].exec_start = 4.0;
  r.schedule[1].transfer_ms = 2.0;  // occupied_from() == 2.0
  r.schedule[1].finish_time = 8.0;
  r.makespan = 8.0;
  const dag::Dag d = two_kernel_dag();
  const System sys = test::generic_system(2);
  const Trace trace = build_trace(d, sys, r);
  // Instants: 0, 2 (stall opens), 4 (exec starts), 5 (node 0 finishes).
  ASSERT_EQ(trace.rows.size(), 4u);
  EXPECT_EQ(trace.rows[1].proc_activity[1], "1-bfs:comm");
  EXPECT_EQ(trace.rows[2].proc_activity[1], "1-bfs");
  const std::string text = format_trace(sys, trace);
  EXPECT_NE(text.find("CPU1:1-bfs:comm"), std::string::npos);
}

TEST(Trace, HedgeLoserOccupiesItsProcessorAsCancelled) {
  // Node 0 wins on p0; its losing replica burned p1 during [1, 5).
  SimResult r = two_kernel_result();
  r.schedule.pop_back();  // only node 0, so p1 is free for the replica
  HedgeRecord h;
  h.node = 0;
  h.primary_proc = 0;
  h.replica_proc = 1;
  h.launched_ms = 1.0;
  h.loser_start_ms = 1.0;
  h.winner_finish_ms = 5.0;
  h.cancelled_ms = 5.0;
  h.replica_won = false;
  r.hedges.push_back(h);
  r.makespan = 5.0;
  const dag::Dag d = two_kernel_dag();
  const System sys = test::generic_system(2);
  const Trace trace = build_trace(d, sys, r);
  // Instants: 0 (primary starts), 1 (replica starts).
  ASSERT_EQ(trace.rows.size(), 2u);
  EXPECT_EQ(trace.rows[0].proc_activity[1], "idle");
  EXPECT_EQ(trace.rows[1].proc_activity[0], "0-nw");
  EXPECT_EQ(trace.rows[1].proc_activity[1], "0-nw:x");
}

TEST(Trace, EmptyScheduleHasNoRows) {
  dag::Dag d;
  const System sys = test::generic_system(1);
  SimResult r;
  const Trace trace = build_trace(d, sys, r);
  EXPECT_TRUE(trace.rows.empty());
  EXPECT_DOUBLE_EQ(trace.end_time, 0.0);
  const std::string text = format_trace(sys, trace);
  EXPECT_EQ(text, "End time: 0.000\n");
}

}  // namespace
}  // namespace apt::sim
