// Integration tests of the aptsim command-line tool: each sub-command must
// succeed and produce its expected artifacts. The binary path is injected
// by CMake as APTSIM_PATH.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "dag/serialize.hpp"
#include "util/csv.hpp"

namespace {

std::string quoted(const std::string& s) { return "\"" + s + "\""; }

int run_cli(const std::string& args, const std::string& stdout_file = "") {
  std::string cmd = std::string(APTSIM_PATH) + " " + args;
  if (!stdout_file.empty()) cmd += " > " + quoted(stdout_file);
  cmd += " 2>/dev/null";
  return std::system(cmd.c_str());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(Cli, NoArgumentsPrintsUsageAndSucceeds) {
  EXPECT_EQ(run_cli(""), 0);
}

TEST(Cli, UnknownCommandFails) {
  EXPECT_NE(run_cli("frobnicate"), 0);
}

TEST(Cli, LutPrintsTheTable) {
  const std::string out = ::testing::TempDir() + "/aptsim_lut.txt";
  ASSERT_EQ(run_cli("lut", out), 0);
  const std::string text = slurp(out);
  EXPECT_NE(text.find("| mm"), std::string::npos);
  EXPECT_NE(text.find("76293.945"), std::string::npos);
  std::filesystem::remove(out);
}

TEST(Cli, GenerateWritesALoadableGraph) {
  const std::string graph_file = ::testing::TempDir() + "/aptsim_graph.txt";
  ASSERT_EQ(run_cli("generate --type 2 --kernels 20 --seed 9 --out " +
                    quoted(graph_file)),
            0);
  const apt::dag::Dag graph = apt::dag::load_text_file(graph_file);
  EXPECT_EQ(graph.node_count(), 20u);
  std::filesystem::remove(graph_file);
}

TEST(Cli, RunOnAGeneratedGraphReportsMetrics) {
  const std::string graph_file = ::testing::TempDir() + "/aptsim_graph2.txt";
  ASSERT_EQ(run_cli("generate --type 1 --kernels 16 --seed 2 --out " +
                    quoted(graph_file)),
            0);
  const std::string out = ::testing::TempDir() + "/aptsim_run.txt";
  ASSERT_EQ(run_cli("run --policy apt:4 --graph " + quoted(graph_file) +
                        " --trace --gantt --analyze",
                    out),
            0);
  const std::string text = slurp(out);
  EXPECT_NE(text.find("makespan:"), std::string::npos);
  EXPECT_NE(text.find("lambda:"), std::string::npos);
  EXPECT_NE(text.find("End time:"), std::string::npos);   // trace
  EXPECT_NE(text.find("legend:"), std::string::npos);     // gantt
  EXPECT_NE(text.find("utilisation"), std::string::npos); // analysis
  std::filesystem::remove(graph_file);
  std::filesystem::remove(out);
}

TEST(Cli, RunExportsScheduleCsv) {
  const std::string csv = ::testing::TempDir() + "/aptsim_sched.csv";
  ASSERT_EQ(run_cli("run --policy met --type 1 --kernels 16 --seed 4 --csv " +
                    quoted(csv)),
            0);
  const auto table = apt::util::read_csv_file(csv);
  EXPECT_EQ(table.row_count(), 16u);
  EXPECT_NO_THROW(table.column_index("proc"));
  std::filesystem::remove(csv);
}

TEST(Cli, BadPolicySpecFailsCleanly) {
  EXPECT_NE(run_cli("run --policy not-a-policy --type 1 --kernels 16 "
                    "--seed 1"),
            0);
}

TEST(Cli, SweepRunsParallelAndExportsCsvAndJson) {
  const std::string csv = ::testing::TempDir() + "/aptsim_sweep.csv";
  const std::string json = ::testing::TempDir() + "/aptsim_sweep.json";
  const std::string out = ::testing::TempDir() + "/aptsim_sweep.txt";
  ASSERT_EQ(run_cli("sweep --type 1 --policies met --alphas 4 --rates 4 "
                    "--jobs 4 --csv " + quoted(csv) + " --json " +
                    quoted(json), out),
            0);
  const std::string text = slurp(out);
  EXPECT_NE(text.find("4 jobs"), std::string::npos);
  EXPECT_NE(text.find("APT(alpha=4.00)"), std::string::npos);
  const auto table = apt::util::read_csv_file(csv);
  EXPECT_EQ(table.row_count(), 20u);  // 10 graphs x (met + apt:4)
  EXPECT_NO_THROW(table.column_index("makespan_ms"));
  const std::string json_text = slurp(json);
  EXPECT_NE(json_text.find("\"cells\""), std::string::npos);
  EXPECT_NE(json_text.find("\"MET\""), std::string::npos);
  std::filesystem::remove(csv);
  std::filesystem::remove(json);
  std::filesystem::remove(out);
}

TEST(Cli, SweepOutputIsIdenticalAcrossJobCounts) {
  const std::string csv1 = ::testing::TempDir() + "/aptsim_sweep_j1.csv";
  const std::string csv8 = ::testing::TempDir() + "/aptsim_sweep_j8.csv";
  ASSERT_EQ(run_cli("sweep --type 2 --alphas 4 --rates 4 --jobs 1 --csv " +
                    quoted(csv1)),
            0);
  ASSERT_EQ(run_cli("sweep --type 2 --alphas 4 --rates 4 --jobs 8 --csv " +
                    quoted(csv8)),
            0);
  EXPECT_EQ(slurp(csv1), slurp(csv8));
  std::filesystem::remove(csv1);
  std::filesystem::remove(csv8);
}

TEST(Cli, PoliciesListsSpecs) {
  const std::string out = ::testing::TempDir() + "/aptsim_policies.txt";
  ASSERT_EQ(run_cli("policies", out), 0);
  const std::string text = slurp(out);
  EXPECT_NE(text.find("apt:<alpha>"), std::string::npos);
  EXPECT_NE(text.find("sufferage"), std::string::npos);
  std::filesystem::remove(out);
}

}  // namespace
