// Integration tests of the aptsim command-line tool: each sub-command must
// succeed and produce its expected artifacts. The binary path is injected
// by CMake as APTSIM_PATH.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "dag/serialize.hpp"
#include "lut/lookup_table.hpp"
#include "util/csv.hpp"

namespace {

std::string quoted(const std::string& s) { return "\"" + s + "\""; }

int run_cli(const std::string& args, const std::string& stdout_file = "") {
  std::string cmd = std::string(APTSIM_PATH) + " " + args;
  if (!stdout_file.empty()) cmd += " > " + quoted(stdout_file);
  cmd += " 2>/dev/null";
  return std::system(cmd.c_str());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(Cli, NoArgumentsPrintsUsageAndSucceeds) {
  EXPECT_EQ(run_cli(""), 0);
}

TEST(Cli, UnknownCommandFails) {
  EXPECT_NE(run_cli("frobnicate"), 0);
}

TEST(Cli, LutPrintsTheTable) {
  const std::string out = ::testing::TempDir() + "/aptsim_lut.txt";
  ASSERT_EQ(run_cli("lut", out), 0);
  const std::string text = slurp(out);
  EXPECT_NE(text.find("| mm"), std::string::npos);
  EXPECT_NE(text.find("76293.945"), std::string::npos);
  std::filesystem::remove(out);
}

TEST(Cli, GenerateWritesALoadableGraph) {
  const std::string graph_file = ::testing::TempDir() + "/aptsim_graph.txt";
  ASSERT_EQ(run_cli("generate --type 2 --kernels 20 --seed 9 --out " +
                    quoted(graph_file)),
            0);
  const apt::dag::Dag graph = apt::dag::load_text_file(graph_file);
  EXPECT_EQ(graph.node_count(), 20u);
  std::filesystem::remove(graph_file);
}

TEST(Cli, RunOnAGeneratedGraphReportsMetrics) {
  const std::string graph_file = ::testing::TempDir() + "/aptsim_graph2.txt";
  ASSERT_EQ(run_cli("generate --type 1 --kernels 16 --seed 2 --out " +
                    quoted(graph_file)),
            0);
  const std::string out = ::testing::TempDir() + "/aptsim_run.txt";
  ASSERT_EQ(run_cli("run --policy apt:4 --graph " + quoted(graph_file) +
                        " --trace --gantt --analyze",
                    out),
            0);
  const std::string text = slurp(out);
  EXPECT_NE(text.find("makespan:"), std::string::npos);
  EXPECT_NE(text.find("lambda:"), std::string::npos);
  EXPECT_NE(text.find("End time:"), std::string::npos);   // trace
  EXPECT_NE(text.find("legend:"), std::string::npos);     // gantt
  EXPECT_NE(text.find("utilisation"), std::string::npos); // analysis
  std::filesystem::remove(graph_file);
  std::filesystem::remove(out);
}

TEST(Cli, RunExportsScheduleCsv) {
  const std::string csv = ::testing::TempDir() + "/aptsim_sched.csv";
  ASSERT_EQ(run_cli("run --policy met --type 1 --kernels 16 --seed 4 --csv " +
                    quoted(csv)),
            0);
  const auto table = apt::util::read_csv_file(csv);
  EXPECT_EQ(table.row_count(), 16u);
  EXPECT_NO_THROW(table.column_index("proc"));
  std::filesystem::remove(csv);
}

TEST(Cli, BadPolicySpecFailsCleanly) {
  EXPECT_NE(run_cli("run --policy not-a-policy --type 1 --kernels 16 "
                    "--seed 1"),
            0);
}

TEST(Cli, SweepRunsParallelAndExportsCsvAndJson) {
  const std::string csv = ::testing::TempDir() + "/aptsim_sweep.csv";
  const std::string json = ::testing::TempDir() + "/aptsim_sweep.json";
  const std::string out = ::testing::TempDir() + "/aptsim_sweep.txt";
  ASSERT_EQ(run_cli("sweep --type 1 --policies met --alphas 4 --rates 4 "
                    "--jobs 4 --csv " + quoted(csv) + " --json " +
                    quoted(json), out),
            0);
  const std::string text = slurp(out);
  EXPECT_NE(text.find("4 jobs"), std::string::npos);
  EXPECT_NE(text.find("APT(alpha=4.00)"), std::string::npos);
  const auto table = apt::util::read_csv_file(csv);
  EXPECT_EQ(table.row_count(), 20u);  // 10 graphs x (met + apt:4)
  EXPECT_NO_THROW(table.column_index("makespan_ms"));
  const std::string json_text = slurp(json);
  EXPECT_NE(json_text.find("\"cells\""), std::string::npos);
  EXPECT_NE(json_text.find("\"MET\""), std::string::npos);
  std::filesystem::remove(csv);
  std::filesystem::remove(json);
  std::filesystem::remove(out);
}

TEST(Cli, SweepOutputIsIdenticalAcrossJobCounts) {
  const std::string csv1 = ::testing::TempDir() + "/aptsim_sweep_j1.csv";
  const std::string csv8 = ::testing::TempDir() + "/aptsim_sweep_j8.csv";
  ASSERT_EQ(run_cli("sweep --type 2 --alphas 4 --rates 4 --jobs 1 --csv " +
                    quoted(csv1)),
            0);
  ASSERT_EQ(run_cli("sweep --type 2 --alphas 4 --rates 4 --jobs 8 --csv " +
                    quoted(csv8)),
            0);
  EXPECT_EQ(slurp(csv1), slurp(csv8));
  std::filesystem::remove(csv1);
  std::filesystem::remove(csv8);
}

TEST(Cli, GenWritesALoadableGraphForEveryFamily) {
  for (const char* family :
       {"type1", "type2", "layered", "forkjoin", "intree", "outtree",
        "cholesky"}) {
    const std::string graph_file =
        ::testing::TempDir() + "/aptsim_gen_" + family + ".txt";
    ASSERT_EQ(run_cli(std::string("gen --family ") + family +
                      " --kernels 24 --seed 3 --out " + quoted(graph_file)),
              0)
        << family;
    const apt::dag::Dag graph = apt::dag::load_text_file(graph_file);
    EXPECT_EQ(graph.node_count(), 24u) << family;
    std::filesystem::remove(graph_file);
  }
}

TEST(Cli, GenWithoutOutEmitsTheSerialisedGraph) {
  // Bare `gen` prints the text format, so it round-trips through a pipe.
  const std::string out = ::testing::TempDir() + "/aptsim_gen_pipe.txt";
  ASSERT_EQ(run_cli("gen --family intree --kernels 12 --seed 5", out), 0);
  const apt::dag::Dag graph = apt::dag::from_text(slurp(out));
  EXPECT_EQ(graph.node_count(), 12u);
  EXPECT_EQ(graph.edge_count(), 11u);
  std::filesystem::remove(out);
}

TEST(Cli, GenUsageErrorsExitNonZero) {
  EXPECT_NE(run_cli("gen --family not-a-family --kernels 16 --seed 1"), 0);
  EXPECT_NE(run_cli("gen --family cholesky --kernels 3 --seed 1"), 0);
  EXPECT_NE(run_cli("gen --family"), 0);  // missing value
  EXPECT_NE(run_cli("gen --kernels nope"), 0);
}

TEST(Cli, GenSyntheticPlatformRoundTrips) {
  const std::string graph_file = ::testing::TempDir() + "/aptsim_gen_syn.txt";
  const std::string lut_file = ::testing::TempDir() + "/aptsim_gen_syn_lut.csv";
  ASSERT_EQ(run_cli("gen --family layered --kernels 20 --seed 2 --ccr 1 "
                    "--hetero 8 --out " + quoted(graph_file) + " --lut-out " +
                    quoted(lut_file)),
            0);
  const apt::dag::Dag graph = apt::dag::load_text_file(graph_file);
  EXPECT_EQ(graph.node_count(), 20u);
  // Every generated kernel must be costable from the emitted table.
  const auto table = apt::lut::LookupTable::from_csv_file(lut_file);
  for (apt::dag::NodeId i = 0; i < graph.node_count(); ++i) {
    EXPECT_TRUE(
        table.contains(graph.node(i).kernel, graph.node(i).data_size));
  }
  // ... and `run --lut` must be able to schedule the emitted pair.
  const std::string out = ::testing::TempDir() + "/aptsim_gen_syn_run.txt";
  ASSERT_EQ(run_cli("run --policy heft --graph " + quoted(graph_file) +
                        " --lut " + quoted(lut_file),
                    out),
            0);
  EXPECT_NE(slurp(out).find("makespan:"), std::string::npos);
  std::filesystem::remove(graph_file);
  std::filesystem::remove(lut_file);
  std::filesystem::remove(out);
}

TEST(Cli, GenAndRunAgreeOnTheSyntheticPlatform) {
  // Identical platform flags (incl. --rate, which calibrates the CCR data
  // sizes) must mean an identical table across commands, so a graph
  // generated by `gen` is costable by `run` without passing --lut.
  const std::string graph_file = ::testing::TempDir() + "/aptsim_gen_r8.txt";
  const std::string out = ::testing::TempDir() + "/aptsim_gen_r8_run.txt";
  ASSERT_EQ(run_cli("gen --family layered --kernels 12 --seed 2 --ccr 1 "
                    "--hetero 8 --rate 8 --out " + quoted(graph_file)),
            0);
  ASSERT_EQ(run_cli("run --policy heft --graph " + quoted(graph_file) +
                        " --ccr 1 --hetero 8 --rate 8",
                    out),
            0);
  EXPECT_NE(slurp(out).find("makespan:"), std::string::npos);
  std::filesystem::remove(graph_file);
  std::filesystem::remove(out);
}

TEST(Cli, RunFamilyHonoursTheSyntheticPlatformFlags) {
  // The same scenario on two very different platforms must schedule
  // differently — i.e. --ccr/--hetero are not silently ignored by `run`.
  const std::string paper = ::testing::TempDir() + "/aptsim_run_paper.txt";
  const std::string synth = ::testing::TempDir() + "/aptsim_run_synth.txt";
  ASSERT_EQ(run_cli("run --policy heft --family layered --kernels 10 "
                    "--seed 2", paper), 0);
  ASSERT_EQ(run_cli("run --policy heft --family layered --kernels 10 "
                    "--seed 2 --ccr 8 --hetero 64", synth), 0);
  const std::string paper_text = slurp(paper);
  EXPECT_NE(paper_text.find("makespan:"), std::string::npos);
  EXPECT_NE(paper_text, slurp(synth));
  std::filesystem::remove(paper);
  std::filesystem::remove(synth);
}

TEST(Cli, FamiliesListsTheRegistry) {
  const std::string out = ::testing::TempDir() + "/aptsim_families.txt";
  ASSERT_EQ(run_cli("families", out), 0);
  const std::string text = slurp(out);
  for (const char* family :
       {"type1", "type2", "layered", "forkjoin", "intree", "outtree",
        "cholesky"}) {
    EXPECT_NE(text.find(family), std::string::npos) << family;
  }
  std::filesystem::remove(out);
}

TEST(Cli, SweepFamilyExportsTheScenarioCube) {
  const std::string csv = ::testing::TempDir() + "/aptsim_sweep_fam.csv";
  const std::string out = ::testing::TempDir() + "/aptsim_sweep_fam.txt";
  ASSERT_EQ(run_cli("sweep --family layered,cholesky --graphs 3 "
                    "--kernels 16,24 --policies met,heft --rates 4 "
                    "--ccr 0.5 --hetero 4 --jobs 4 --csv " + quoted(csv),
                    out),
            0);
  const std::string text = slurp(out);
  EXPECT_NE(text.find("scenario[layered+cholesky]"), std::string::npos);
  const auto table = apt::util::read_csv_file(csv);
  EXPECT_EQ(table.row_count(), 12u);  // 2 families x 3 graphs x 2 policies
  // Cells carry their scenario coordinates, not just a flat graph index.
  const auto workload = table.column_index("workload");
  EXPECT_EQ(table.rows()[0][workload], "layered/n16");
  EXPECT_EQ(table.rows()[11][workload], "cholesky/n16");
  std::filesystem::remove(csv);
  std::filesystem::remove(out);
}

TEST(Cli, SweepFamilyIsIdenticalAcrossJobCounts) {
  const std::string csv1 = ::testing::TempDir() + "/aptsim_sweep_fam_j1.csv";
  const std::string csv8 = ::testing::TempDir() + "/aptsim_sweep_fam_j8.csv";
  const std::string flags =
      "sweep --family forkjoin,intree,outtree --graphs 2 --kernels 16 "
      "--policies apt:4,random:{seed} --rates 4,8 --reps 2 --seed 11 "
      "--ccr 2 --hetero 16 ";
  ASSERT_EQ(run_cli(flags + "--jobs 1 --csv " + quoted(csv1)), 0);
  ASSERT_EQ(run_cli(flags + "--jobs 8 --csv " + quoted(csv8)), 0);
  const std::string text1 = slurp(csv1);
  EXPECT_EQ(text1, slurp(csv8));
  EXPECT_FALSE(text1.empty());
  std::filesystem::remove(csv1);
  std::filesystem::remove(csv8);
}

TEST(Cli, SweepUnknownFamilyFails) {
  EXPECT_NE(run_cli("sweep --family not-a-family --policies met"), 0);
}

TEST(Cli, StreamReportsOpenSystemMetrics) {
  const std::string out = ::testing::TempDir() + "/aptsim_stream.txt";
  ASSERT_EQ(run_cli("stream --family type1 --rate 0.002 --duration 4000 "
                    "--policies apt:4,met --seed 5",
                    out),
            0);
  const std::string text = slurp(out);
  EXPECT_NE(text.find("thrpt/s"), std::string::npos);
  EXPECT_NE(text.find("slowdown"), std::string::npos);
  EXPECT_NE(text.find("APT(alpha=4.00)"), std::string::npos);
  std::filesystem::remove(out);
}

TEST(Cli, StreamIsBitIdenticalAcrossJobCounts) {
  // The acceptance bar: the full exported cell grid — every flow/slowdown/
  // utilization digit — must match byte for byte between worker counts.
  const std::string csv1 = ::testing::TempDir() + "/aptsim_stream_j1.csv";
  const std::string csv8 = ::testing::TempDir() + "/aptsim_stream_j8.csv";
  const std::string json1 = ::testing::TempDir() + "/aptsim_stream_j1.json";
  const std::string json8 = ::testing::TempDir() + "/aptsim_stream_j8.json";
  const std::string flags =
      "stream --family layered,forkjoin --rate 0.002,0.01 "
      "--policies apt:4,met,ag --kernels 18 --duration 3000 --seed 7 ";
  ASSERT_EQ(run_cli(flags + "--jobs 1 --csv " + quoted(csv1) + " --json " +
                    quoted(json1)),
            0);
  ASSERT_EQ(run_cli(flags + "--jobs 8 --csv " + quoted(csv8) + " --json " +
                    quoted(json8)),
            0);
  const std::string text1 = slurp(csv1);
  EXPECT_EQ(text1, slurp(csv8));
  EXPECT_FALSE(text1.empty());
  EXPECT_EQ(slurp(json1), slurp(json8));
  for (const auto& f : {csv1, csv8, json1, json8})
    std::filesystem::remove(f);
}

TEST(Cli, StreamRejectsStaticPolicies) {
  EXPECT_NE(run_cli("stream --family type1 --policies heft --duration 1000"),
            0);
}

TEST(Cli, PoliciesListsSpecs) {
  const std::string out = ::testing::TempDir() + "/aptsim_policies.txt";
  ASSERT_EQ(run_cli("policies", out), 0);
  const std::string text = slurp(out);
  EXPECT_NE(text.find("apt[:alpha]"), std::string::npos);
  EXPECT_NE(text.find("sufferage"), std::string::npos);
  // The comm-aware variants are registered and advertised.
  EXPECT_NE(text.find("ag-net"), std::string::npos);
  EXPECT_NE(text.find("apt-c[:alpha]"), std::string::npos);
  EXPECT_NE(text.find("apt-q[:alpha]"), std::string::npos);
  std::filesystem::remove(out);
}

TEST(Cli, PoliciesTypoGetsDidYouMean) {
  // run_cli silences stderr, where the error lands — capture it directly.
  const std::string out = ::testing::TempDir() + "/aptsim_typo.txt";
  const std::string cmd = std::string(APTSIM_PATH) +
                          " stream --family type1 --policies apt-cc"
                          " --duration 500 >/dev/null 2> " +
                          quoted(out);
  EXPECT_NE(std::system(cmd.c_str()), 0);
  const std::string text = slurp(out);
  EXPECT_NE(text.find("did you mean 'apt-c'"), std::string::npos);
  std::filesystem::remove(out);
}

TEST(Cli, VersionPrintsBuildInfo) {
  // Both spellings, and the line must carry the git describe (never empty
  // or the literal "unknown" in a CMake build) plus the build type.
  for (const std::string& spelling : {"--version", "version"}) {
    const std::string out = ::testing::TempDir() + "/aptsim_version.txt";
    ASSERT_EQ(run_cli(spelling, out), 0) << spelling;
    const std::string text = slurp(out);
    EXPECT_EQ(text.rfind("aptsim ", 0), 0u) << text;
    EXPECT_NE(text.find(" build)"), std::string::npos) << text;
    EXPECT_EQ(text.find("aptsim unknown"), std::string::npos) << text;
    EXPECT_GT(text.size(), std::string("aptsim  ( build)\n").size());
    std::filesystem::remove(out);
  }
}

TEST(Cli, RunWithBusTopologyReportsLinkUtilization) {
  const std::string out = ::testing::TempDir() + "/aptsim_run_bus.txt";
  ASSERT_EQ(run_cli("run --policy heft --type 2 --kernels 24 --seed 3 "
                    "--topology bus --bandwidth 0.5 --latency 0.05",
                    out),
            0);
  const std::string text = slurp(out);
  EXPECT_NE(text.find("topology:  bus"), std::string::npos);
  EXPECT_NE(text.find("link bus"), std::string::npos);
  EXPECT_NE(text.find("overlap with compute"), std::string::npos);
  std::filesystem::remove(out);
}

TEST(Cli, RunRejectsUnknownTopology) {
  EXPECT_NE(run_cli("run --policy met --type 1 --kernels 10 --topology "
                    "torus"),
            0);
}

TEST(Cli, RunRejectsMalformedTopologyShapes) {
  // Malformed shape arguments must surface as a CLI error (exit != 0),
  // never a silent fallback to some default fabric.
  for (const std::string bad :
       {"mesh", "mesh:3x", "mesh:x3", "mesh:0x2", "fattree:0", "fattree:1",
        "ring:0", "ring:2x", "hier:0"}) {
    EXPECT_NE(run_cli("run --policy met --type 1 --kernels 10 --topology " +
                      bad),
              0)
        << bad;
  }
}

TEST(Cli, RunWithRoutedTopologiesReportsMultiHopLinks) {
  // ring / mesh / fattree end to end through `run`: the per-link report
  // must appear, and the routed fabrics must show multi-hop routes.
  const std::string out = ::testing::TempDir() + "/aptsim_run_routed.txt";
  for (const std::string topo : {"ring:5", "mesh:2x2", "fattree:2"}) {
    ASSERT_EQ(run_cli("run --policy heft --type 2 --kernels 24 --seed 3 "
                      "--topology " +
                          topo + " --bandwidth 0.5 --latency 0.05",
                      out),
              0)
        << topo;
    const std::string text = slurp(out);
    EXPECT_NE(text.find("topology:  " + topo.substr(0, topo.find(':'))),
              std::string::npos)
        << topo;
    EXPECT_NE(text.find("link "), std::string::npos) << topo;
    EXPECT_NE(text.find("avg route"), std::string::npos) << topo;
    std::filesystem::remove(out);
  }
}

TEST(Cli, SweepAcceptsRoutedTopology) {
  const std::string csv = ::testing::TempDir() + "/aptsim_sweep_routed.csv";
  ASSERT_EQ(run_cli("sweep --family layered --graphs 2 --kernels 18 "
                    "--policies apt:4,heft --rates 4 --topology mesh:2x2 "
                    "--bandwidth 1 --csv " +
                    quoted(csv)),
            0);
  const std::string text = slurp(csv);
  EXPECT_NE(text.find("mesh2x2"), std::string::npos);
  std::filesystem::remove(csv);
}

TEST(Cli, StreamWithRoutedTopologyIsBitIdenticalAcrossJobCounts) {
  const std::string csv1 = ::testing::TempDir() + "/aptsim_stream_ring1.csv";
  const std::string csv8 = ::testing::TempDir() + "/aptsim_stream_ring8.csv";
  const std::string flags =
      "stream --family layered --rate 0.002 --policies apt:4,ag "
      "--kernels 18 --duration 3000 --seed 7 --topology ring:5 "
      "--bandwidth 4 ";
  ASSERT_EQ(run_cli(flags + "--jobs 1 --csv " + quoted(csv1)), 0);
  ASSERT_EQ(run_cli(flags + "--jobs 8 --csv " + quoted(csv8)), 0);
  const std::string text1 = slurp(csv1);
  EXPECT_EQ(text1, slurp(csv8));
  EXPECT_NE(text1.find("ring5"), std::string::npos);
  std::filesystem::remove(csv1);
  std::filesystem::remove(csv8);
}

TEST(Cli, SweepCarriesTopologyColumn) {
  const std::string csv = ::testing::TempDir() + "/aptsim_sweep_topo.csv";
  ASSERT_EQ(run_cli("sweep --family layered --graphs 2 --kernels 18 "
                    "--policies apt:4,heft --rates 4,1 --topology hier:2 "
                    "--csv " +
                        quoted(csv)),
            0);
  const std::string text = slurp(csv);
  EXPECT_NE(text.find("topology"), std::string::npos);
  EXPECT_NE(text.find("hier2"), std::string::npos);
  std::filesystem::remove(csv);
}

TEST(Cli, StreamWithTopologyIsBitIdenticalAcrossJobCounts) {
  // The determinism contract must survive the contended comm phase.
  const std::string csv1 = ::testing::TempDir() + "/aptsim_stream_topo1.csv";
  const std::string csv8 = ::testing::TempDir() + "/aptsim_stream_topo8.csv";
  const std::string flags =
      "stream --family layered --rate 0.002 --policies apt:4,ag "
      "--kernels 18 --duration 3000 --seed 7 --topology bus --bandwidth 1 ";
  ASSERT_EQ(run_cli(flags + "--jobs 1 --csv " + quoted(csv1)), 0);
  ASSERT_EQ(run_cli(flags + "--jobs 8 --csv " + quoted(csv8)), 0);
  const std::string text1 = slurp(csv1);
  EXPECT_EQ(text1, slurp(csv8));
  EXPECT_NE(text1.find("bus"), std::string::npos);
  std::filesystem::remove(csv1);
  std::filesystem::remove(csv8);
}

}  // namespace
