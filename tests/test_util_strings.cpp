#include "util/string_utils.hpp"

#include <gtest/gtest.h>

namespace apt::util {
namespace {

TEST(Split, BasicAndEmptySegments) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Trim, StripsAsciiWhitespace) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\na b\r "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(ToLower, Ascii) {
  EXPECT_EQ(to_lower("CpU-FpGa_42"), "cpu-fpga_42");
}

TEST(Affixes, StartsEndsWith) {
  EXPECT_TRUE(starts_with("--policy", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
  EXPECT_TRUE(ends_with("graph.dot", ".dot"));
  EXPECT_FALSE(ends_with("dot", ".dot"));
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
  EXPECT_EQ(format_double(318.0930001, 3), "318.093");
}

TEST(FormatDouble, RejectsBadPrecision) {
  EXPECT_THROW(format_double(1.0, -1), std::invalid_argument);
  EXPECT_THROW(format_double(1.0, 99), std::invalid_argument);
}

TEST(ParseDouble, StrictFullString) {
  EXPECT_DOUBLE_EQ(parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("  -1e3 "), -1000.0);
  EXPECT_THROW(parse_double("2.5x"), std::invalid_argument);
  EXPECT_THROW(parse_double(""), std::invalid_argument);
  EXPECT_THROW(parse_double("abc"), std::invalid_argument);
}

TEST(ParseInt, StrictFullString) {
  EXPECT_EQ(parse_int("-42"), -42);
  EXPECT_EQ(parse_int(" 7 "), 7);
  EXPECT_THROW(parse_int("7.5"), std::invalid_argument);
  EXPECT_THROW(parse_int(""), std::invalid_argument);
}

TEST(ParseUint, RejectsNegativeAndGarbage) {
  EXPECT_EQ(parse_uint("64000000"), 64000000u);
  EXPECT_THROW(parse_uint("-1"), std::invalid_argument);
  EXPECT_THROW(parse_uint("12ab"), std::invalid_argument);
}

}  // namespace
}  // namespace apt::util
