// Tests of the structured policy↔fabric estimation contract
// (sim/transfer_estimate.hpp):
//
//  * the deprecated input_transfer_ms wrapper and TransferEstimate::stall_ms
//    are bit-identical at every decision instant the engine offers a policy
//    — the API redesign changed the shape of the contract, not its values;
//  * stall_ms matches a hand replication of the cost-model scan over the
//    scheduled predecessors (the TopologyCostModel convention cross-check);
//  * ideal topologies report no queueing and no bottleneck link; contended
//    ones pin the estimate to a real link and, on an idle fabric, to the
//    route's minimum-bandwidth hop;
//  * quantile_ms widens only the queueing component, and degenerates to
//    total_ms when noise is off;
//  * the comm-aware variants collapse onto their comm-blind counterparts
//    exactly when the extra signal is flat: AG-net == AG and APT-C == APT
//    on ideal fabrics, APT-Q == APT-C when noise is off.
#include "sim/transfer_estimate.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/policy_factory.hpp"
#include "core/stream_plan.hpp"
#include "lut/synthetic.hpp"
#include "net/topology.hpp"
#include "scenario/scenario.hpp"
#include "sim/engine.hpp"

namespace apt {
namespace {

sim::System make_system(const std::string& topology, double bandwidth_gbps,
                        double latency_ms = 0.0) {
  sim::SystemConfig cfg = sim::SystemConfig::paper_default(4.0);
  cfg.topology = net::parse_topology_spec(topology);
  cfg.topology.bandwidth_gbps = bandwidth_gbps;
  cfg.topology.latency_ms = latency_ms;
  return sim::System(cfg);
}

lut::LookupTable test_table() {
  lut::SyntheticLutSpec spec;
  spec.ccr = 1.0;
  spec.heterogeneity = 4.0;
  spec.seed = 0xBEEF;
  return lut::synthetic_lookup_table(spec);
}

/// A policy that interrogates transfer_estimate for every (ready kernel,
/// processor) pair at every event, cross-checks it against the legacy
/// wrapper, its own placement records, and the topology conventions — then
/// schedules greedily so the run makes progress through many fabric states.
class ProbePolicy : public sim::Policy {
 public:
  std::string name() const override { return "probe"; }
  bool is_dynamic() const override { return true; }

  void prepare(const dag::Dag&, const sim::System&,
               const sim::CostModel&) override {
    placement_.clear();
    backlogged_estimates_ = 0;
    estimates_checked_ = 0;
  }

  void on_event(sim::SchedulerContext& ctx) override {
    const net::Topology& topo = ctx.system().topology();
    const std::vector<dag::NodeId> ready = ctx.ready();  // snapshot
    for (const dag::NodeId node : ready) {
      for (sim::ProcId p = 0; p < ctx.system().proc_count(); ++p) {
        const sim::TransferEstimate est = ctx.transfer_estimate(node, p);
        ++estimates_checked_;

        // The deprecated scalar is the stall reading, bit for bit.
        EXPECT_EQ(ctx.input_transfer_ms(node, p), est.stall_ms);

        // Replicate the engine's predecessor scan from our own placement
        // records: worst (max) edge via the policy-visible cost model,
        // first maximum winning ties.
        sim::TimeMs expected_stall = 0.0;
        sim::ProcId worst_from = p;
        for (const dag::NodeId pred : ctx.dag().predecessors(node)) {
          const auto it = placement_.find(pred);
          ASSERT_NE(it, placement_.end()) << "ready node with unplaced pred";
          const sim::TimeMs edge = ctx.cost_model().transfer_time_ms(
              ctx.dag(), pred, node, ctx.system().processor(it->second),
              ctx.system().processor(p));
          if (edge > expected_stall) {
            expected_stall = edge;
            worst_from = it->second;
          }
        }
        EXPECT_EQ(est.stall_ms, expected_stall);

        EXPECT_GE(est.link_queueing_ms, 0.0);
        if (!topo.contended()) {
          EXPECT_EQ(est.link_queueing_ms, 0.0);
          EXPECT_EQ(est.bottleneck_link, net::kNoLink);
        } else if (est.link_queueing_ms > 0.0) {
          ++backlogged_estimates_;
          ASSERT_NE(est.bottleneck_link, net::kNoLink);
          EXPECT_LT(est.bottleneck_link, topo.link_count());
        } else if (worst_from != p && est.stall_ms > 0.0) {
          // Idle fabric, remote worst input: pinned to the route's
          // bottleneck (minimum-bandwidth, earliest on ties) hop.
          EXPECT_EQ(est.bottleneck_link, topo.bottleneck_link(worst_from, p));
        }

        // quantile_ms: noise off -> exactly the backlog-aware total.
        EXPECT_EQ(est.quantile_ms(0.95), est.total_ms());
      }
    }
    // Greedy FIFO so the run terminates: cheapest total estimate among
    // idle processors, else shortest committed queue.
    for (const dag::NodeId node : ready) {
      sim::ProcId best = 0;
      sim::TimeMs best_cost = std::numeric_limits<sim::TimeMs>::infinity();
      for (sim::ProcId p = 0; p < ctx.system().proc_count(); ++p) {
        const sim::TimeMs cost = ctx.queued_work_ms(p) +
                                 ctx.exec_time_ms(node, p) +
                                 ctx.transfer_estimate(node, p).total_ms();
        if (cost < best_cost) {
          best_cost = cost;
          best = p;
        }
      }
      ctx.enqueue(node, best);
      placement_[node] = best;
    }
  }

  std::size_t backlogged_estimates() const { return backlogged_estimates_; }
  std::size_t estimates_checked() const { return estimates_checked_; }

 private:
  std::map<dag::NodeId, sim::ProcId> placement_;
  std::size_t backlogged_estimates_ = 0;
  std::size_t estimates_checked_ = 0;
};

TEST(TransferEstimate, EngineContractHoldsOnRoutedTopology) {
  const lut::LookupTable table = test_table();
  const dag::KernelPool pool = dag::KernelPool::from_lookup_table(table);
  const sim::System system = make_system("ring:5", 1.0, 0.05);
  const sim::LutCostModel cost(table, system);
  ProbePolicy probe;
  std::size_t backlogged = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const dag::Dag graph = scenario::generate("layered", 24, seed, pool);
    sim::Engine(graph, system, cost).run(probe);
    backlogged += probe.backlogged_estimates();
    EXPECT_GT(probe.estimates_checked(), 0u);
  }
  // The scenario genuinely exercised the backlog path: estimates were
  // issued while traffic was in flight.
  EXPECT_GT(backlogged, 0u);
}

TEST(TransferEstimate, EngineContractHoldsOnIdealTopology) {
  const lut::LookupTable table = test_table();
  const dag::KernelPool pool = dag::KernelPool::from_lookup_table(table);
  const sim::System system = make_system("ideal", 0.0);
  const sim::LutCostModel cost(table, system);
  const dag::Dag graph = scenario::generate("forkjoin", 24, 3, pool);
  ProbePolicy probe;
  sim::Engine(graph, system, cost).run(probe);
  EXPECT_GT(probe.estimates_checked(), 0u);
  EXPECT_EQ(probe.backlogged_estimates(), 0u);
}

// --- the struct's own arithmetic ---------------------------------------------

TEST(TransferEstimate, QuantileWidensOnlyTheQueueingComponent) {
  sim::TransferEstimate est;
  est.stall_ms = 10.0;
  est.link_queueing_ms = 4.0;
  est.noise.sigma = 0.25;  // enabled lognormal, no heavy tail
  EXPECT_DOUBLE_EQ(est.total_ms(), 14.0);
  const double mult = sim::noise_quantile_multiplier(est.noise, 0.95);
  ASSERT_GT(mult, 1.0);
  EXPECT_DOUBLE_EQ(est.quantile_ms(0.95), 10.0 + 4.0 * mult);
  // The deterministic stall never widens.
  est.link_queueing_ms = 0.0;
  EXPECT_DOUBLE_EQ(est.quantile_ms(0.99), 10.0);
}

TEST(TransferEstimate, QuantileIsTotalWhenNoiseIsOff) {
  sim::TransferEstimate est;
  est.stall_ms = 3.0;
  est.link_queueing_ms = 2.0;
  EXPECT_EQ(est.quantile_ms(0.5), est.total_ms());
  EXPECT_EQ(est.quantile_ms(0.99), est.total_ms());
}

// --- comm-aware variants collapse when their signal is flat ------------------

core::StreamPlan variant_plan(const std::string& topology,
                              std::vector<std::string> specs) {
  core::StreamPlan plan;
  plan.families = {"layered"};
  plan.rates_per_ms = {0.02};
  plan.policy_specs = std::move(specs);
  plan.kernels = 24;
  plan.max_apps = 30;
  plan.horizon_ms = 0.0;
  plan.warmup_ms = 0.0;
  plan.base_seed = 7;
  plan.base_system = sim::SystemConfig::paper_default(1.0);
  plan.base_system.topology = net::parse_topology_spec(topology);
  return plan;
}

void expect_cells_identical(const core::StreamCellResult& a,
                            const core::StreamCellResult& b) {
  // Bitwise double equality — the runs must be indistinguishable.
  EXPECT_EQ(a.metrics.apps_completed, b.metrics.apps_completed);
  EXPECT_EQ(a.metrics.end_ms, b.metrics.end_ms);
  EXPECT_EQ(a.metrics.flow_ms.avg, b.metrics.flow_ms.avg);
  EXPECT_EQ(a.metrics.flow_ms.max, b.metrics.flow_ms.max);
  EXPECT_EQ(a.metrics.slowdown.avg, b.metrics.slowdown.avg);
  EXPECT_EQ(a.metrics.avg_utilization, b.metrics.avg_utilization);
}

TEST(TransferEstimate, CommAwareVariantsMatchBlindOnesOnIdealFabric) {
  // No links -> no backlog signal -> AG-net == AG and APT-C == APT.
  const core::StreamPlan plan =
      variant_plan("ideal", {"ag", "ag-net", "apt:4", "apt-c:4"});
  const core::BatchRunner runner(1);
  const core::StreamBatchResult r = core::run_stream_plan(plan, runner);
  ASSERT_EQ(r.cells.size(), 4u);
  expect_cells_identical(r.cells[0], r.cells[1]);
  expect_cells_identical(r.cells[2], r.cells[3]);
}

TEST(TransferEstimate, AptQMatchesAptCWhenNoiseIsOff) {
  // Quantile multiplier is exactly 1 with noise disabled, and exec * 1.0
  // is IEEE-identical to exec — APT-Q degenerates to APT-C bit for bit
  // even on a contended routed fabric.
  core::StreamPlan plan = variant_plan("ring", {"apt-c:4", "apt-q:4"});
  plan.base_system.topology.latency_ms = 0.05;
  const core::BatchRunner runner(1);
  const core::StreamBatchResult r = core::run_stream_plan(plan, runner);
  ASSERT_EQ(r.cells.size(), 2u);
  expect_cells_identical(r.cells[0], r.cells[1]);
}

TEST(TransferEstimate, CommAwareVariantsDivergeUnderContention) {
  // On a loaded routed fabric the backlog signal is real: the comm-aware
  // ranks must differ from the comm-blind ones somewhere in the run.
  const core::StreamPlan plan = variant_plan("ring", {"ag", "ag-net"});
  const core::BatchRunner runner(1);
  const core::StreamBatchResult r = core::run_stream_plan(plan, runner);
  ASSERT_EQ(r.cells.size(), 2u);
  EXPECT_NE(r.cells[0].metrics.flow_ms.avg, r.cells[1].metrics.flow_ms.avg);
}

}  // namespace
}  // namespace apt
