#include "core/report.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "util/csv.hpp"
#include "util/string_utils.hpp"

namespace apt::core {
namespace {

Grid tiny_grid() {
  Grid grid;
  grid.policy_names = {"APT(alpha=4.00)", "MET"};
  grid.policy_specs = {"apt:4", "met"};
  Cell a;
  a.makespan_ms = 100.0;
  a.lambda_total_ms = 10.0;
  a.alternative_count = 3;
  Cell b;
  b.makespan_ms = 200.0;
  b.lambda_total_ms = 30.0;
  Cell c;
  c.makespan_ms = 300.0;
  c.lambda_total_ms = 70.0;
  Cell d;
  d.makespan_ms = 400.0;
  d.lambda_total_ms = 90.0;
  grid.cells = {{a, b}, {c, d}};
  return grid;
}

TEST(Report, GridValueNames) {
  EXPECT_STREQ(to_string(GridValue::Makespan), "makespan_ms");
  EXPECT_STREQ(to_string(GridValue::LambdaTotal), "lambda_total_ms");
  EXPECT_STREQ(to_string(GridValue::AlternativeCount), "alternative_count");
}

TEST(Report, CsvLayoutAndAverages) {
  const std::string csv = grid_to_csv(tiny_grid(), GridValue::Makespan);
  const util::CsvTable table = util::parse_csv(csv);
  ASSERT_EQ(table.row_count(), 3u);  // 2 experiments + avg
  EXPECT_EQ(table.header(),
            (util::CsvRow{"experiment", "APT(alpha=4.00)", "MET"}));
  EXPECT_EQ(table.cell(0, "MET"), "200.000");
  EXPECT_EQ(table.row(2)[0], "avg");
  EXPECT_DOUBLE_EQ(util::parse_double(table.row(2)[1]), 200.0);
  EXPECT_DOUBLE_EQ(util::parse_double(table.row(2)[2]), 300.0);
}

TEST(Report, CsvLambdaAndAlternatives) {
  const Grid grid = tiny_grid();
  const util::CsvTable lambda =
      util::parse_csv(grid_to_csv(grid, GridValue::LambdaTotal));
  EXPECT_DOUBLE_EQ(util::parse_double(lambda.row(0)[1]), 10.0);
  const util::CsvTable alts =
      util::parse_csv(grid_to_csv(grid, GridValue::AlternativeCount));
  EXPECT_EQ(alts.row(0)[1], "3");
  EXPECT_EQ(alts.row(0)[2], "0");
}

TEST(Report, MarkdownContainsHeaderRuleAndAverages) {
  const std::string md = grid_to_markdown(tiny_grid(), GridValue::Makespan);
  EXPECT_NE(md.find("| Experiment | APT(alpha=4.00) | MET |"),
            std::string::npos);
  EXPECT_NE(md.find("|---|---:|---:|"), std::string::npos);
  EXPECT_NE(md.find("| **avg** | **200.0** | **300.0** |"),
            std::string::npos);
}

TEST(Report, SweepCsvRoundTrips) {
  std::vector<AlphaSweepPoint> points = {{1.5, 4.0, 100.0, 50.0},
                                         {4.0, 8.0, 80.0, 20.0}};
  const util::CsvTable table = util::parse_csv(sweep_to_csv(points));
  ASSERT_EQ(table.row_count(), 2u);
  EXPECT_DOUBLE_EQ(util::parse_double(table.cell(1, "alpha")), 4.0);
  EXPECT_DOUBLE_EQ(util::parse_double(table.cell(1, "avg_makespan_ms")),
                   80.0);
}

TEST(Report, BundleWritesEveryExpectedFile) {
  const std::string dir =
      ::testing::TempDir() + "/apt_report_bundle_test";
  std::filesystem::create_directories(dir);
  const auto files = write_report_bundle(dir, 4.0);
  EXPECT_EQ(files.size(), 10u);  // 5 per DFG type
  for (const auto& name : files) {
    EXPECT_TRUE(std::filesystem::exists(dir + "/" + name)) << name;
    EXPECT_GT(std::filesystem::file_size(dir + "/" + name), 0u) << name;
  }
  // Spot-check one artifact parses and has the seven policy columns.
  const auto table = util::read_csv_file(dir + "/type1_makespan.csv");
  EXPECT_EQ(table.header().size(), 8u);  // experiment + 7 policies
  EXPECT_EQ(table.row_count(), 11u);     // 10 experiments + avg
  std::filesystem::remove_all(dir);
}

TEST(Report, BundleFailsCleanlyOnBadDirectory) {
  EXPECT_THROW(write_report_bundle("/nonexistent-dir-xyz/sub", 4.0),
               std::runtime_error);
}

}  // namespace
}  // namespace apt::core
