#include "policies/met.hpp"

#include <gtest/gtest.h>

#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "policies/selection.hpp"
#include "test_helpers.hpp"

namespace apt::policies {
namespace {

using sim::TimeMs;

TEST(Met, AssignsEachKernelToItsFastestProcessor) {
  // Three independent kernels, each fastest on a different processor.
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  d.add_node("c", 1);
  const sim::System sys = test::generic_system(3);
  sim::MatrixCostModel cost(
      {{1.0, 5.0, 5.0}, {5.0, 1.0, 5.0}, {5.0, 5.0, 1.0}});
  Met met;
  const auto result = test::run_and_validate(met, d, sys, cost);
  EXPECT_EQ(result.schedule[0].proc, 0u);
  EXPECT_EQ(result.schedule[1].proc, 1u);
  EXPECT_EQ(result.schedule[2].proc, 2u);
  EXPECT_DOUBLE_EQ(result.makespan, 1.0);
}

TEST(Met, WaitsForTheBestProcessorEvenWhenOthersAreIdle) {
  // Both kernels are fastest on p0; the second must wait, leaving p1 idle.
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{2.0, 3.0}, {2.0, 3.0}});
  Met met;
  const auto result = test::run_and_validate(met, d, sys, cost);
  EXPECT_EQ(result.schedule[0].proc, 0u);
  EXPECT_EQ(result.schedule[1].proc, 0u);
  EXPECT_DOUBLE_EQ(result.schedule[1].wait_ms(), 2.0);
  EXPECT_DOUBLE_EQ(result.makespan, 4.0);
}

TEST(Met, UsesAnyIdleInstanceOfTheBestCategory) {
  // Two GPUs: both mm kernels run immediately.
  sim::SystemConfig cfg;
  cfg.processors = {lut::ProcType::CPU, lut::ProcType::GPU,
                    lut::ProcType::GPU};
  const sim::System sys(cfg);
  dag::Dag d;
  d.add_node("mm", 250000);
  d.add_node("mm", 250000);
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
  Met met;
  const auto result = test::run_and_validate(met, d, sys, cost);
  EXPECT_EQ(result.schedule[0].proc, 1u);
  EXPECT_EQ(result.schedule[1].proc, 2u);
  EXPECT_DOUBLE_EQ(result.schedule[1].wait_ms(), 0.0);
}

TEST(Met, FifoOrderBreaksContention) {
  // Three kernels all fastest on p0: executed in arrival order.
  dag::Dag d;
  for (int i = 0; i < 3; ++i) d.add_node("k", 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost(
      {{1.0, 10.0}, {1.0, 10.0}, {1.0, 10.0}});
  Met met;
  const auto result = test::run_and_validate(met, d, sys, cost);
  EXPECT_LT(result.schedule[0].exec_start, result.schedule[1].exec_start);
  EXPECT_LT(result.schedule[1].exec_start, result.schedule[2].exec_start);
}

TEST(Met, NeverUsesAlternativeFlag) {
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, 0);
  const sim::System sys = test::paper_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
  Met met;
  const auto result = test::run_and_validate(met, graph, sys, cost);
  for (const auto& k : result.schedule) EXPECT_FALSE(k.alternative);
}

TEST(Met, EveryKernelLandsOnItsLookupTableOptimum) {
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, 3);
  const sim::System sys = test::paper_system();
  const auto table = lut::paper_lookup_table();
  const sim::LutCostModel cost(table, sys);
  Met met;
  const auto result = test::run_and_validate(met, graph, sys, cost);
  for (const auto& k : result.schedule) {
    const auto& node = graph.node(k.node);
    EXPECT_EQ(sys.processor(k.proc).type,
              table.best_processor(node.kernel, node.data_size))
        << "node " << k.node << " (" << node.kernel << ")";
  }
}

TEST(Met, RespectsDependenciesOnType2Workload) {
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type2, 0);
  const sim::System sys = test::paper_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
  Met met;
  test::run_and_validate(met, graph, sys, cost);  // invariants inside
}

TEST(SelectionHelpers, MinExecAcrossAllProcessors) {
  dag::Dag d;
  d.add_node("a", 1);
  const sim::System sys = test::generic_system(3);
  sim::MatrixCostModel cost({{4.0, 2.0, 9.0}});

  class Probe : public sim::Policy {
   public:
    std::string name() const override { return "probe"; }
    bool is_dynamic() const override { return true; }
    void on_event(sim::SchedulerContext& ctx) override {
      if (ctx.ready().empty()) return;  // final post-completion event
      EXPECT_DOUBLE_EQ(min_exec_time_ms(ctx, 0), 2.0);
      EXPECT_EQ(min_exec_proc(ctx, 0), 1u);
      EXPECT_EQ(idle_optimal_proc(ctx, 0), std::optional<sim::ProcId>(1));
      EXPECT_EQ(idle_min_exec_proc(ctx, 0), std::optional<sim::ProcId>(1));
      ctx.assign(0, 1);
    }
  };
  Probe probe;
  sim::Engine engine(d, sys, cost);
  engine.run(probe);
}

}  // namespace
}  // namespace apt::policies
