// The clean fixture: every escape hatch and allowed pattern in one file.
// Must produce ZERO findings — lint_determinism.py --self-test fails on
// any spurious hit here. NOT compiled.
//
// Comments may freely name std::rand, std::mt19937, system_clock,
// time(nullptr), std::cout, or float: comments and string literals are
// stripped before any rule matches.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <unordered_map>
#include <vector>

namespace fixture {

// Monotonic clock: profiling-only, allowed everywhere.
inline double ok_profiling_ms() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double, std::milli>(dt).count();
}

struct Pool {
  // lint:unordered-ok(keyed lookup only — probed and erased by tag, never
  // iterated, so hash-table layout cannot reach event or output order)
  std::unordered_map<std::uint64_t, int> by_tag;
};

// lint:float-ok(interop with an external single-precision API surface)
inline float ok_annotated_float(float x) { return x; }

// snprintf formats into a buffer; it is not console output.
inline void ok_buffer_format(char* buf, double value) {
  std::snprintf(buf, 32, "%.3f", value);
}

inline const char* ok_string_literal() {
  return "std::cout << system_clock is only text inside this literal";
}

}  // namespace fixture
