// Exemption fixture: lints under the pretend path src/util/rng.hpp, the
// one file allowed to reference the standard <random> machinery (the real
// rng.hpp documents why std::mt19937 is banned elsewhere). Must produce
// ZERO findings. NOT compiled.
#include <random>

namespace fixture {

// Would be nondeterministic-random anywhere else in the tree.
using allowed_engine_mention = std::mt19937;

}  // namespace fixture
