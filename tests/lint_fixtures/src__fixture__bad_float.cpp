// Deliberate determinism-lint violations: single-precision floats in
// library code — timeline arithmetic is double (sim::TimeMs) end to end.
// NOT compiled — linted by lint_determinism.py --self-test.

namespace fixture {

double bad_truncating_accumulator(double start_ms, double exec_ms) {
  float finish = static_cast<float>(start_ms);  // expect-lint: float-timeline
  finish += static_cast<float>(exec_ms);        // expect-lint: float-timeline
  return finish;
}

float bad_return_type(double t_ms);  // expect-lint: float-timeline

}  // namespace fixture
