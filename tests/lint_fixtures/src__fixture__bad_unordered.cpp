// Deliberate determinism-lint violations: unordered-container iteration
// (hash order leaking into results) and unannotated unordered members in
// library code. NOT compiled — linted by lint_determinism.py --self-test.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Registry {
  std::unordered_map<std::uint64_t, int> by_tag;  // expect-lint: unordered-member
};

inline int bad_range_for(const Registry& r) {
  int total = 0;
  for (const auto& [tag, value] : r.by_tag) {  // expect-lint: unordered-iteration
    total += value + static_cast<int>(tag);
  }
  return total;
}

inline int bad_iterator_walk(const Registry& r) {
  int total = 0;
  for (auto it = r.by_tag.begin(); it != r.by_tag.end(); ++it) {  // expect-lint: unordered-iteration
    total += it->second;
  }
  return total;
}

inline int bad_inline_type(const std::unordered_set<int>& seen) {  // expect-lint: unordered-member
  int total = 0;
  for (const int v : seen) {  // expect-lint: unordered-iteration
    total += v;
  }
  return total;
}

}  // namespace fixture
