// Deliberate determinism-lint violations: direct console I/O in library
// code (library output goes through util::logging or a std::ostream&).
// NOT compiled — linted by lint_determinism.py --self-test.
#include <cstdio>
#include <iostream>

namespace fixture {

void bad_console_logging(const char* msg) {
  std::cout << msg << "\n";       // expect-lint: raw-stdio
  std::cerr << "warn: " << msg;   // expect-lint: raw-stdio
  printf("%s\n", msg);            // expect-lint: raw-stdio
  fprintf(stderr, "%s\n", msg);   // expect-lint: raw-stdio
  puts(msg);                      // expect-lint: raw-stdio
}

// snprintf into a caller buffer is formatting, not console output.
void ok_buffer_format(char* buf, double value) {
  std::snprintf(buf, 32, "%.3f", value);
}

}  // namespace fixture
