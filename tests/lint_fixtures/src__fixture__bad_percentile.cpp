// Deliberate determinism-lint violations: ad-hoc percentile math instead
// of util::percentile_sorted (the single type-7 estimator every subsystem
// shares). NOT compiled — linted by lint_determinism.py --self-test.
#include <algorithm>
#include <cstddef>
#include <vector>

namespace fixture {

double bad_nth_element_median(std::vector<double> xs) {
  const auto mid = xs.begin() + static_cast<long>(xs.size() / 2);
  std::nth_element(xs.begin(), mid, xs.end());  // expect-lint: adhoc-percentile
  return *mid;
}

double bad_p95_truncating(const std::vector<double>& sorted) {
  return sorted[static_cast<std::size_t>(0.95 * sorted.size())];  // expect-lint: adhoc-percentile
}

double bad_integer_percent(const std::vector<double>& sorted, std::size_t pct) {
  return sorted[sorted.size() * pct / 100];  // expect-lint: adhoc-percentile
}

}  // namespace fixture
