// Deliberate determinism-lint violations: wall-clock reads in simulation
// code. NOT compiled — linted by `scripts/lint_determinism.py --self-test`.
#include <chrono>
#include <ctime>

namespace fixture {

double bad_wall_now_ms() {
  const auto now = std::chrono::system_clock::now();  // expect-lint: wall-clock
  return std::chrono::duration<double, std::milli>(now.time_since_epoch())
      .count();
}

long bad_epoch_seconds() {
  return time(nullptr);  // expect-lint: wall-clock
}

long bad_std_time() {
  return std::time(nullptr);  // expect-lint: wall-clock
}

// The monotonic clock is profiling-only and stays legal everywhere.
double ok_profiling_anchor_ms() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double, std::milli>(dt).count();
}

}  // namespace fixture
