// Deliberate determinism-lint violations: nondeterministic randomness.
// NOT compiled — consumed by `scripts/lint_determinism.py --self-test`,
// which checks that every `// expect-lint:` tag is matched exactly.
#include <cstdlib>
#include <random>

namespace fixture {

int bad_libc_rand() {
  return std::rand();  // expect-lint: nondeterministic-random
}

void bad_libc_seed() {
  srand(42);  // expect-lint: nondeterministic-random
}

unsigned bad_std_random() {
  std::random_device rd;   // expect-lint: nondeterministic-random
  std::mt19937 gen(rd());  // expect-lint: nondeterministic-random
  std::uniform_int_distribution<int> dist(0, 9);  // expect-lint: nondeterministic-random
  return static_cast<unsigned>(dist(gen));
}

double bad_distribution(std::mt19937_64& gen) {  // expect-lint: nondeterministic-random
  std::normal_distribution<double> dist(0.0, 1.0);  // expect-lint: nondeterministic-random
  return dist(gen);
}

}  // namespace fixture
