#include <gtest/gtest.h>

#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "policies/olb.hpp"
#include "policies/random_policy.hpp"
#include "test_helpers.hpp"

namespace apt::policies {
namespace {

TEST(Olb, AssignsFifoToLowestIdleProcessor) {
  dag::Dag d;
  for (int i = 0; i < 3; ++i) d.add_node("k", 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{1.0, 9.0}, {1.0, 9.0}, {1.0, 9.0}});
  Olb olb;
  const auto result = test::run_and_validate(olb, d, sys, cost);
  EXPECT_EQ(result.schedule[0].proc, 0u);
  EXPECT_EQ(result.schedule[1].proc, 1u);  // blind to the 9x slowdown
  EXPECT_EQ(result.schedule[2].proc, 0u);
}

TEST(Olb, IgnoresExecutionTimesEntirely) {
  // OLB picks p0 for the first kernel even when p0 is catastrophic for it.
  dag::Dag d;
  d.add_node("k", 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{1000.0, 1.0}});
  Olb olb;
  const auto result = test::run_and_validate(olb, d, sys, cost);
  EXPECT_EQ(result.schedule[0].proc, 0u);
  EXPECT_DOUBLE_EQ(result.makespan, 1000.0);
}

TEST(Olb, HandlesPaperWorkloads) {
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type2, 0);
  const sim::System sys = test::paper_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
  Olb olb;
  test::run_and_validate(olb, graph, sys, cost);
}

TEST(RandomPolicy, DeterministicPerSeed) {
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, 0);
  const sim::System sys = test::paper_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
  RandomPolicy a(123);
  RandomPolicy b(123);
  const auto ra = test::run_and_validate(a, graph, sys, cost);
  const auto rb = test::run_and_validate(b, graph, sys, cost);
  EXPECT_DOUBLE_EQ(ra.makespan, rb.makespan);
  for (std::size_t i = 0; i < ra.schedule.size(); ++i)
    EXPECT_EQ(ra.schedule[i].proc, rb.schedule[i].proc);
}

TEST(RandomPolicy, SeedsProduceDifferentSchedules) {
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, 0);
  const sim::System sys = test::paper_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
  RandomPolicy a(1);
  RandomPolicy b(2);
  const auto ra = test::run_and_validate(a, graph, sys, cost);
  const auto rb = test::run_and_validate(b, graph, sys, cost);
  bool differs = false;
  for (std::size_t i = 0; i < ra.schedule.size(); ++i) {
    if (ra.schedule[i].proc != rb.schedule[i].proc) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RandomPolicy, PrepareResetsTheStream) {
  // Re-running the same policy object gives the same schedule, because
  // prepare() reseeds.
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, 1);
  const sim::System sys = test::paper_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
  RandomPolicy policy(7);
  const auto first = test::run_and_validate(policy, graph, sys, cost);
  const auto second = test::run_and_validate(policy, graph, sys, cost);
  EXPECT_DOUBLE_EQ(first.makespan, second.makespan);
}

}  // namespace
}  // namespace apt::policies
