// Stochastic service times (sim::NoiseSpec) and tail-tolerant straggler
// hedging (sim::HedgeSpec): the seed contract, the noise-off bit-identity
// guarantee, validator enforcement of the one-winner invariant, and the
// p99 ablation the feature exists for.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/batch.hpp"
#include "core/policy_factory.hpp"
#include "core/stream_plan.hpp"
#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "sim/noise.hpp"
#include "sim/validate.hpp"
#include "stream/stream_engine.hpp"
#include "test_helpers.hpp"

namespace apt {
namespace {

// --- NoiseSpec ---------------------------------------------------------------

TEST(NoiseSpec, DisabledByDefaultAndValidates) {
  sim::NoiseSpec spec;
  EXPECT_FALSE(spec.enabled());
  EXPECT_NO_THROW(spec.validate());
  spec.sigma = 0.2;
  EXPECT_TRUE(spec.enabled());
  spec.sigma = 0.0;
  spec.heavy_tail_prob = 0.1;
  EXPECT_TRUE(spec.enabled());
  // A unit multiplier makes the tail event a no-op.
  spec.heavy_tail_multiplier = 1.0;
  EXPECT_FALSE(spec.enabled());
}

TEST(NoiseSpec, RejectsMalformedSpecs) {
  sim::NoiseSpec spec;
  spec.sigma = -0.1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.sigma = 0.0;
  spec.heavy_tail_prob = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.heavy_tail_prob = 0.1;
  spec.heavy_tail_multiplier = 0.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(HedgeSpec, RejectsMalformedSpecs) {
  sim::HedgeSpec spec;
  EXPECT_NO_THROW(spec.validate());
  spec.quantile = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.quantile = 0.95;
  spec.threshold_factor = 0.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.threshold_factor = 1.5;
  spec.window = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(NoiseMultiplier, DisabledSpecReturnsExactlyOne) {
  const sim::NoiseSpec spec;  // disabled
  for (std::uint64_t inst = 0; inst < 4; ++inst)
    for (std::uint64_t node = 0; node < 4; ++node)
      EXPECT_EQ(sim::noise_multiplier(spec, inst, node), 1.0);
}

TEST(NoiseMultiplier, PureFunctionOfItsArguments) {
  sim::NoiseSpec spec;
  spec.sigma = 0.3;
  spec.heavy_tail_prob = 0.05;
  spec.seed = 99;
  const double a = sim::noise_multiplier(spec, 3, 17, 0);
  EXPECT_EQ(a, sim::noise_multiplier(spec, 3, 17, 0));  // bitwise
  // Instance, node, replica, and seed all decorrelate the draw.
  EXPECT_NE(a, sim::noise_multiplier(spec, 4, 17, 0));
  EXPECT_NE(a, sim::noise_multiplier(spec, 3, 18, 0));
  EXPECT_NE(a, sim::noise_multiplier(spec, 3, 17, 1));
  spec.seed = 100;
  EXPECT_NE(a, sim::noise_multiplier(spec, 3, 17, 0));
}

TEST(NoiseMultiplier, LognormalFactorIsMeanPreserving) {
  sim::NoiseSpec spec;
  spec.sigma = 0.5;
  double sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const double m = sim::noise_multiplier(spec, 0, i);
    ASSERT_GT(m, 0.0);
    sum += m;
  }
  EXPECT_NEAR(sum / kDraws, 1.0, 0.02);
}

TEST(NoiseMultiplier, CertainHeavyTailScalesByExactlyTheMultiplier) {
  // sigma 0 leaves only the Bernoulli factor; probability 1 fires always.
  sim::NoiseSpec spec;
  spec.heavy_tail_prob = 1.0;
  spec.heavy_tail_multiplier = 50.0;
  EXPECT_DOUBLE_EQ(sim::noise_multiplier(spec, 0, 0), 50.0);
  EXPECT_DOUBLE_EQ(sim::noise_multiplier(spec, 7, 3), 50.0);
}

// --- Closed-system engine under noise ----------------------------------------

TEST(EngineNoise, RealizedTimesAreNominalTimesTheRecordedMultiplier) {
  const sim::System system = test::paper_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), system);
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, 0);

  sim::EngineOptions options;
  options.noise.sigma = 0.4;
  options.noise.heavy_tail_prob = 0.05;
  options.noise.seed = 7;

  const auto policy = core::make_policy("apt:4");
  sim::Engine engine(graph, system, cost, options);
  const sim::SimResult result = engine.run(*policy);

  for (const auto& v :
       sim::validate_schedule(graph, system, cost, result))
    ADD_FAILURE() << v.message;
  for (dag::NodeId n = 0; n < graph.node_count(); ++n) {
    // Hedging is off, so every record describes the primary attempt and
    // carries the instance-0 primary draw of the pure noise function.
    EXPECT_DOUBLE_EQ(result.schedule[n].noise_mult,
                     sim::noise_multiplier(options.noise, 0, n, 0))
        << n;
  }
}

TEST(EngineNoise, DisabledNoiseReproducesTheDefaultTimelineBitwise) {
  const sim::System system = test::paper_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), system);
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type2, 0);

  const auto a = core::make_policy("apt:4");
  sim::Engine plain(graph, system, cost);
  const sim::SimResult base = plain.run(*a);

  const auto b = core::make_policy("apt:4");
  sim::Engine with_options(graph, system, cost, sim::EngineOptions{});
  const sim::SimResult opt = with_options.run(*b);

  ASSERT_EQ(base.schedule.size(), opt.schedule.size());
  EXPECT_EQ(base.makespan, opt.makespan);  // bitwise
  for (dag::NodeId n = 0; n < graph.node_count(); ++n) {
    EXPECT_EQ(base.schedule[n].proc, opt.schedule[n].proc) << n;
    EXPECT_EQ(base.schedule[n].finish_time, opt.schedule[n].finish_time) << n;
    EXPECT_EQ(opt.schedule[n].noise_mult, 1.0) << n;
  }
}

TEST(EngineNoise, HedgingOnWithNoiseOffChangesNothingAndLaunchesNothing) {
  // Threshold >= nominal × factor > nominal and completions pop before
  // hedge checks at equal timestamps, so a noise-free kernel always
  // finishes before its hedge check fires.
  const sim::System system = test::paper_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), system);
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, 0);

  const auto a = core::make_policy("met");
  sim::Engine plain(graph, system, cost);
  const sim::SimResult base = plain.run(*a);

  sim::EngineOptions options;
  options.hedging.enabled = true;
  const auto b = core::make_policy("met");
  sim::Engine hedged(graph, system, cost, options);
  const sim::SimResult opt = hedged.run(*b);

  EXPECT_TRUE(opt.hedges.empty());
  EXPECT_EQ(base.makespan, opt.makespan);  // bitwise
  for (dag::NodeId n = 0; n < graph.node_count(); ++n)
    EXPECT_EQ(base.schedule[n].finish_time, opt.schedule[n].finish_time) << n;
}

TEST(EngineHedging, StragglersAreHedgedAndValidatorsEnforceOneWinner) {
  // A chain keeps two of three processors idle, so every straggler has a
  // replica slot available; a hot heavy tail makes stragglers common.
  const sim::System system = test::generic_system(3);
  std::vector<dag::Node> nodes;
  for (int i = 0; i < 60; ++i) nodes.push_back(dag::Node{"k", 1});
  const dag::Dag graph = test::chain(nodes);
  const sim::MatrixCostModel cost(
      std::vector<std::vector<sim::TimeMs>>(60, {10.0, 10.0, 10.0}));

  sim::EngineOptions options;
  options.noise.sigma = 0.1;
  options.noise.heavy_tail_prob = 0.3;
  options.noise.heavy_tail_multiplier = 30.0;
  options.noise.seed = 3;
  options.hedging.enabled = true;
  options.hedging.min_samples = 4;

  const auto policy = core::make_policy("met");
  sim::Engine engine(graph, system, cost, options);
  const sim::SimResult result = engine.run(*policy);

  ASSERT_FALSE(result.hedges.empty());
  bool replica_won = false;
  for (const sim::HedgeRecord& h : result.hedges) {
    EXPECT_GE(h.wasted_ms(), 0.0);
    replica_won |= h.replica_won;
  }
  EXPECT_TRUE(replica_won) << "30x stragglers should lose some races";
  // validate_schedule audits the hedge records: exactly one winning
  // attempt per hedged kernel, the loser cancelled at the winner's finish,
  // and loser occupation spans pooled into processor exclusivity.
  for (const auto& v :
       sim::validate_schedule(graph, system, cost, result))
    ADD_FAILURE() << v.message;
}

TEST(EngineHedging, RejectedOnContendedTopologies) {
  sim::SystemConfig cfg = sim::SystemConfig::paper_default();
  cfg.topology = net::parse_topology_spec("bus");
  const sim::System system(cfg);
  const sim::LutCostModel cost(lut::paper_lookup_table(), system);
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, 0);

  sim::EngineOptions options;
  options.hedging.enabled = true;
  const auto policy = core::make_policy("met");
  sim::Engine engine(graph, system, cost, options);
  EXPECT_THROW(engine.run(*policy), std::invalid_argument);
}

// --- Stream engine under noise + hedging -------------------------------------

TEST(StreamNoise, SingleArrivalMatchesTheClosedEngineDrawForDraw) {
  // Instance 0 in both engines — the cross-engine seed contract.
  const sim::System system = test::paper_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), system);
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, 0);

  sim::NoiseSpec noise;
  noise.sigma = 0.35;
  noise.heavy_tail_prob = 0.05;
  noise.seed = 21;

  sim::EngineOptions closed_options;
  closed_options.noise = noise;
  const auto closed_policy = core::make_policy("met");
  sim::Engine closed(graph, system, cost, closed_options);
  const sim::SimResult batch = closed.run(*closed_policy);

  stream::StreamOptions opts;
  opts.arrivals = stream::ArrivalSpec::trace({0.0});
  opts.record_schedules = true;
  opts.noise = noise;
  stream::StreamEngine streamed(
      system, cost, [&](std::size_t) { return graph; }, opts);
  const auto stream_policy = core::make_policy("met");
  const stream::StreamOutcome outcome = streamed.run(*stream_policy);

  ASSERT_EQ(outcome.schedules.size(), 1u);
  const sim::SimResult& s = outcome.schedules[0].result;
  EXPECT_EQ(s.makespan, batch.makespan);  // bitwise
  for (dag::NodeId n = 0; n < graph.node_count(); ++n) {
    EXPECT_EQ(s.schedule[n].noise_mult, batch.schedule[n].noise_mult) << n;
    EXPECT_EQ(s.schedule[n].finish_time, batch.schedule[n].finish_time) << n;
  }
}

TEST(StreamHedging, RecordsValidateAcrossInstances) {
  const sim::System system = test::generic_system(4);
  const sim::MatrixCostModel cost(
      std::vector<std::vector<sim::TimeMs>>(3, {10.0, 10.0, 10.0, 10.0}));

  stream::StreamOptions opts;
  opts.arrivals = stream::ArrivalSpec::deterministic(0.05);  // gap 20 ms
  opts.max_apps = 120;
  opts.horizon_ms = 0.0;
  opts.record_schedules = true;
  opts.noise.sigma = 0.1;
  opts.noise.heavy_tail_prob = 0.25;
  opts.noise.heavy_tail_multiplier = 25.0;
  opts.noise.seed = 5;
  opts.hedging.enabled = true;
  opts.hedging.min_samples = 4;

  // Three-kernel chains leave processors idle for replicas.
  stream::DagSource source = [](std::size_t) {
    dag::Dag d;
    d.add_node("a", 1);
    d.add_node("b", 1);
    d.add_node("c", 1);
    d.add_edge(0, 1);
    d.add_edge(1, 2);
    return d;
  };
  stream::StreamEngine engine(system, cost, source, opts);
  const auto policy = core::make_policy("met");
  const stream::StreamOutcome outcome = engine.run(*policy);

  EXPECT_GT(outcome.metrics.hedges_launched, 0u);
  EXPECT_GE(outcome.metrics.hedges_launched,
            outcome.metrics.hedges_replica_won);

  std::vector<sim::StreamAppView> views;
  std::size_t hedge_records = 0;
  for (const auto& app : outcome.schedules) {
    views.push_back(
        sim::StreamAppView{&app.dag, app.arrival_ms, &app.result});
    hedge_records += app.result.hedges.size();
  }
  EXPECT_EQ(hedge_records, outcome.metrics.hedges_launched);
  for (const auto& v : sim::validate_stream_schedule(system, views))
    ADD_FAILURE() << v.message;
}

TEST(StreamHedging, RejectedOnContendedTopologies) {
  sim::SystemConfig cfg = sim::SystemConfig::paper_default();
  cfg.topology = net::parse_topology_spec("mesh:2x2");
  const sim::System system(cfg);
  const sim::LutCostModel cost(lut::paper_lookup_table(), system);

  stream::StreamOptions opts;
  opts.arrivals = stream::ArrivalSpec::trace({0.0});
  opts.hedging.enabled = true;
  stream::StreamEngine engine(
      system, cost,
      [](std::size_t) { return dag::paper_graph(dag::DfgType::Type1, 0); },
      opts);
  const auto policy = core::make_policy("met");
  EXPECT_THROW(engine.run(*policy), std::invalid_argument);
}

// --- Plan-level wiring -------------------------------------------------------

TEST(StreamPlanNoise, BitIdenticalAcrossJobCountsWithNoiseAndHedging) {
  core::StreamPlan plan;
  plan.families = {"layered"};
  plan.rates_per_ms = {0.01};
  plan.policy_specs = {"apt:4", "met"};
  plan.horizon_ms = 4000.0;
  plan.warmup_ms = 400.0;
  plan.noise.sigma = 0.25;
  plan.noise.heavy_tail_prob = 0.05;
  plan.hedging.enabled = true;

  const core::StreamBatchResult one =
      core::run_stream_plan(plan, core::BatchRunner(1));
  const core::StreamBatchResult four =
      core::run_stream_plan(plan, core::BatchRunner(4));
  ASSERT_EQ(one.cells.size(), four.cells.size());
  for (std::size_t i = 0; i < one.cells.size(); ++i) {
    const sim::StreamMetrics& a = one.cells[i].metrics;
    const sim::StreamMetrics& b = four.cells[i].metrics;
    EXPECT_EQ(a.flow_ms.avg, b.flow_ms.avg) << i;      // bitwise
    EXPECT_EQ(a.flow_ms.p99, b.flow_ms.p99) << i;      // bitwise
    EXPECT_EQ(a.hedges_launched, b.hedges_launched) << i;
    EXPECT_EQ(a.hedge_wasted_ms, b.hedge_wasted_ms) << i;
  }
}

TEST(StreamPlanNoise, HedgingReducesTailFlowUnderHeavyTails) {
  // The ablation the feature exists for: same workload, same noise draws
  // (the noise seed is derived from the row's workload seed, not the
  // cell), hedging off vs on — the hedged run must improve p99 flow.
  core::StreamPlan plan;
  plan.families = {"type1"};
  plan.rates_per_ms = {0.005};
  plan.policy_specs = {"apt:4"};
  plan.max_apps = 30;
  plan.horizon_ms = 0.0;
  plan.warmup_ms = 0.0;
  plan.noise.sigma = 0.3;
  plan.noise.heavy_tail_prob = 0.05;
  plan.noise.heavy_tail_multiplier = 20.0;

  const core::BatchRunner runner(1);
  plan.hedging.enabled = false;
  const core::StreamBatchResult off = core::run_stream_plan(plan, runner);
  plan.hedging.enabled = true;
  const core::StreamBatchResult on = core::run_stream_plan(plan, runner);

  const sim::StreamMetrics& m_off = off.cells[0].metrics;
  const sim::StreamMetrics& m_on = on.cells[0].metrics;
  EXPECT_EQ(m_off.hedges_launched, 0u);
  EXPECT_GT(m_on.hedges_launched, 0u);
  EXPECT_LT(m_on.flow_ms.p99, m_off.flow_ms.p99);
}

TEST(StreamPlanNoise, TracePlansValidateAndReplay) {
  core::StreamPlan plan;
  plan.families = {"layered"};
  plan.rates_per_ms = {0.01};  // label only under a trace
  plan.policy_specs = {"met"};
  plan.arrival_kind = stream::ArrivalKind::Trace;
  plan.horizon_ms = 0.0;
  plan.warmup_ms = 0.0;

  EXPECT_THROW(plan.validate(), std::invalid_argument);  // no instants
  plan.trace_arrivals = {5.0, 2.0};
  EXPECT_THROW(plan.validate(), std::invalid_argument);  // unsorted
  plan.trace_arrivals = {0.0, 50.0, 120.0};
  EXPECT_NO_THROW(plan.validate());

  const core::StreamBatchResult result =
      core::run_stream_plan(plan, core::BatchRunner(1));
  EXPECT_EQ(result.cells[0].metrics.apps_arrived, 3u);
  EXPECT_EQ(result.cells[0].metrics.apps_completed, 3u);
}

}  // namespace
}  // namespace apt
