// The batch orchestration layer: plan expansion, per-task RNG streams, and
// the core guarantee — results are bit-for-bit identical for any worker
// count.
#include "core/batch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "net/topology.hpp"
#include "util/rng.hpp"

namespace apt::core {
namespace {

void expect_cells_identical(const Cell& a, const Cell& b) {
  // Byte-for-byte on every double (EXPECT_EQ on doubles is exact), plus the
  // discrete fields.
  EXPECT_EQ(a.makespan_ms, b.makespan_ms);
  EXPECT_EQ(a.lambda_total_ms, b.lambda_total_ms);
  EXPECT_EQ(a.lambda_avg_ms, b.lambda_avg_ms);
  EXPECT_EQ(a.lambda_stddev_ms, b.lambda_stddev_ms);
  EXPECT_EQ(a.alternative_count, b.alternative_count);
  EXPECT_EQ(a.alternative_by_kernel, b.alternative_by_kernel);
}

void expect_grids_identical(const Grid& a, const Grid& b) {
  ASSERT_EQ(a.experiment_count(), b.experiment_count());
  ASSERT_EQ(a.policy_count(), b.policy_count());
  EXPECT_EQ(a.policy_names, b.policy_names);
  for (std::size_t g = 0; g < a.experiment_count(); ++g)
    for (std::size_t p = 0; p < a.policy_count(); ++p)
      expect_cells_identical(a.cells[g][p], b.cells[g][p]);
}

// The acceptance bar of this subsystem: the parallel path reproduces the
// serial grid bit-for-bit for every paper workload / policy combination.
TEST(Batch, ParallelGridBitIdenticalToSerialAllPaperPolicies) {
  for (const auto type : {dag::DfgType::Type1, dag::DfgType::Type2}) {
    const auto specs = paper_policy_specs(4.0);
    const Grid serial = run_paper_grid(type, specs, 4.0, /*jobs=*/1);
    const Grid parallel = run_paper_grid(type, specs, 4.0, /*jobs=*/8);
    expect_grids_identical(serial, parallel);
  }
}

TEST(Batch, AlphaSweepBitIdenticalAcrossJobCounts) {
  const auto serial =
      apt_alpha_sweep(dag::DfgType::Type2, {2.0, 4.0}, {4.0, 8.0}, 1);
  const auto parallel =
      apt_alpha_sweep(dag::DfgType::Type2, {2.0, 4.0}, {4.0, 8.0}, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].alpha, parallel[i].alpha);
    EXPECT_EQ(serial[i].rate_gbps, parallel[i].rate_gbps);
    EXPECT_EQ(serial[i].avg_makespan_ms, parallel[i].avg_makespan_ms);
    EXPECT_EQ(serial[i].avg_lambda_ms, parallel[i].avg_lambda_ms);
  }
}

TEST(Batch, PlanTaskDecodingRoundTrips) {
  ExperimentPlan plan = ExperimentPlan::paper(dag::DfgType::Type1,
                                              {"met", "spn", "apt:4"},
                                              {4.0, 8.0});
  plan.replications = 3;
  ASSERT_EQ(plan.task_count(), 3u * 2u * 10u * 3u);
  for (std::size_t i = 0; i < plan.task_count(); ++i) {
    const BatchTask t = plan.task(i);
    EXPECT_EQ(t.index, i);
    EXPECT_LT(t.policy, 3u);
    EXPECT_LT(t.graph, 10u);
    EXPECT_LT(t.rate, 2u);
    EXPECT_LT(t.replication, 3u);
    EXPECT_EQ(((t.replication * 2 + t.rate) * 10 + t.graph) * 3 + t.policy, i);
    EXPECT_EQ(t.seed, util::stream_seed(plan.base_seed, i));
  }
  // Policy is the fastest axis — the serial loops' nesting order.
  EXPECT_EQ(plan.task(0).policy, 0u);
  EXPECT_EQ(plan.task(1).policy, 1u);
  EXPECT_EQ(plan.task(3).graph, 1u);
}

TEST(Batch, ValidateRejectsEmptyAxesAndBadSpecs) {
  ExperimentPlan plan = ExperimentPlan::paper(dag::DfgType::Type1, {"met"});
  EXPECT_NO_THROW(plan.validate());
  ExperimentPlan no_specs = plan;
  no_specs.policy_specs.clear();
  EXPECT_THROW(no_specs.validate(), std::invalid_argument);
  ExperimentPlan no_rates = plan;
  no_rates.rates_gbps.clear();
  EXPECT_THROW(no_rates.validate(), std::invalid_argument);
  ExperimentPlan bad_rate = plan;
  bad_rate.rates_gbps = {0.0};
  EXPECT_THROW(bad_rate.validate(), std::invalid_argument);
  ExperimentPlan zero_reps = plan;
  zero_reps.replications = 0;
  EXPECT_THROW(zero_reps.validate(), std::invalid_argument);
  ExperimentPlan bad_spec = plan;
  bad_spec.policy_specs = {"not-a-policy"};
  EXPECT_THROW(bad_spec.validate(), std::invalid_argument);
}

TEST(Batch, ResolvePolicySpecSubstitutesEveryPlaceholder) {
  EXPECT_EQ(resolve_policy_spec("met", 7), "met");
  EXPECT_EQ(resolve_policy_spec("random:{seed}", 7), "random:7");
  EXPECT_EQ(resolve_policy_spec("{seed}-{seed}", 12), "12-12");
}

TEST(Batch, ResultCubeIndexingMatchesTaskOrder) {
  ExperimentPlan plan = ExperimentPlan::paper(dag::DfgType::Type1,
                                              {"met", "olb"}, {4.0, 8.0});
  const BatchResult result = BatchRunner(2).run(plan);
  ASSERT_EQ(result.cells.size(), 2u * 10u * 2u);
  for (std::size_t i = 0; i < plan.task_count(); ++i) {
    const BatchTask t = plan.task(i);
    expect_cells_identical(result.at(t.replication, t.rate, t.graph, t.policy),
                           result.cells[i]);
  }
  EXPECT_THROW(result.at(0, 2, 0, 0), std::out_of_range);
  // Different link rates must actually produce different schedules.
  EXPECT_NE(result.at(0, 0, 0, 1).makespan_ms,
            result.at(0, 1, 0, 1).makespan_ms);
}

TEST(Batch, GridSliceMatchesDirectGrid) {
  const auto specs = std::vector<std::string>{"apt:4", "met"};
  const BatchResult result =
      BatchRunner(4).run(ExperimentPlan::paper(dag::DfgType::Type2, specs));
  const Grid slice = result.grid(dag::DfgType::Type2);
  const Grid direct = run_paper_grid(dag::DfgType::Type2, specs, 4.0);
  EXPECT_EQ(slice.rate_gbps, 4.0);
  expect_grids_identical(slice, direct);
}

// --- the topology axis -------------------------------------------------------

TEST(Batch, TopologyAxisDecodesOutermost) {
  ExperimentPlan plan = ExperimentPlan::paper(dag::DfgType::Type1,
                                              {"met", "spn"}, {4.0, 8.0});
  plan.replications = 2;
  plan.topologies = {net::parse_topology_spec("ideal"),
                     net::parse_topology_spec("bus"),
                     net::parse_topology_spec("ring")};
  ASSERT_EQ(plan.task_count(), 3u * 2u * 2u * 10u * 2u);
  for (std::size_t i = 0; i < plan.task_count(); ++i) {
    const BatchTask t = plan.task(i);
    EXPECT_EQ(t.index, i);
    EXPECT_LT(t.topology, 3u);
    EXPECT_EQ(((((t.topology * 2 + t.replication) * 2 + t.rate) * 10 +
                t.graph) *
                   2 +
               t.policy),
              i);
    EXPECT_EQ(t.seed, util::stream_seed(plan.base_seed, i));
  }
  // Topology is the OUTERMOST axis: the first topology's block decodes to
  // exactly the flat indices a single-topology plan would assign, so the
  // "{seed}" streams of pre-axis sweeps are unchanged.
  ExperimentPlan single = plan;
  single.topologies.clear();
  for (std::size_t i = 0; i < single.task_count(); ++i) {
    const BatchTask multi = plan.task(i);
    const BatchTask solo = single.task(i);
    EXPECT_EQ(multi.topology, 0u);
    EXPECT_EQ(solo.replication, multi.replication);
    EXPECT_EQ(solo.rate, multi.rate);
    EXPECT_EQ(solo.graph, multi.graph);
    EXPECT_EQ(solo.policy, multi.policy);
    EXPECT_EQ(solo.seed, multi.seed);
  }
}

TEST(Batch, TopologyAxisCubeMatchesPerTopologyPlans) {
  // One multi-topology run == the concatenation of per-topology runs:
  // every cell of the 5-axis cube is bit-identical to the same cell of a
  // plan pinned to that topology alone (workload seeds are topology-
  // independent by construction).
  ExperimentPlan plan = ExperimentPlan::paper(dag::DfgType::Type1,
                                              {"apt:4", "ag"}, {1.0});
  plan.graphs.resize(3);  // trim the paper workload for speed
  net::TopologySpec bus = net::parse_topology_spec("bus");
  bus.latency_ms = 0.05;
  net::TopologySpec ring = net::parse_topology_spec("ring");
  ring.latency_ms = 0.05;
  plan.topologies = {bus, ring};
  const BatchResult cube = BatchRunner(4).run(plan);
  ASSERT_EQ(cube.topology_count, 2u);
  ASSERT_EQ(cube.topology_labels,
            (std::vector<std::string>{"bus", "ring"}));
  for (std::size_t t = 0; t < 2; ++t) {
    ExperimentPlan pinned = plan;
    pinned.topologies.clear();
    pinned.base_system.topology = plan.topologies[t];
    const BatchResult solo = BatchRunner(1).run(pinned);
    for (std::size_t g = 0; g < cube.graph_count; ++g)
      for (std::size_t p = 0; p < cube.policy_count; ++p)
        expect_cells_identical(cube.at(t, 0, 0, g, p), solo.at(0, 0, g, p));
  }
  // The fabric axis is real: bus and ring cells differ somewhere.
  bool differs = false;
  for (std::size_t g = 0; g < cube.graph_count && !differs; ++g)
    differs = cube.at(0, 0, 0, g, 0).makespan_ms !=
              cube.at(1, 0, 0, g, 0).makespan_ms;
  EXPECT_TRUE(differs);
}

// --- per-task RNG streams ----------------------------------------------------

TEST(Batch, StreamSeedsAreDistinctAndReproducible) {
  // Isolation: the first 4096 streams of one base seed never collide, and
  // neighbouring streams do not produce overlapping first outputs.
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 4096; ++i)
    seeds.push_back(util::stream_seed(42, i));
  auto sorted = seeds;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  // Reproducibility: same (base, stream) -> same seed; different base ->
  // different seed.
  EXPECT_EQ(util::stream_seed(42, 7), util::stream_seed(42, 7));
  EXPECT_NE(util::stream_seed(42, 7), util::stream_seed(43, 7));
}

TEST(Batch, StreamRngSequencesAreIsolated) {
  util::Rng a = util::stream_rng(1, 0);
  util::Rng b = util::stream_rng(1, 1);
  bool all_equal = true;
  for (int i = 0; i < 64; ++i)
    if (a.next() != b.next()) all_equal = false;
  EXPECT_FALSE(all_equal);
  // A stream restarted from the same coordinates replays exactly.
  util::Rng c = util::stream_rng(1, 1);
  util::Rng d = util::stream_rng(1, 1);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(c.next(), d.next());
}

TEST(Batch, SeededSpecGivesReplicationsDistinctButReproducibleResults) {
  ExperimentPlan plan =
      ExperimentPlan::paper(dag::DfgType::Type1, {"random:{seed}"});
  plan.replications = 2;
  plan.base_seed = 99;
  const BatchResult first = BatchRunner(4).run(plan);
  const BatchResult again = BatchRunner(1).run(plan);
  // Same plan, any job count: identical cube.
  ASSERT_EQ(first.cells.size(), again.cells.size());
  for (std::size_t i = 0; i < first.cells.size(); ++i)
    expect_cells_identical(first.cells[i], again.cells[i]);
  // Distinct replications draw from distinct streams: at least one graph
  // must schedule differently.
  bool any_difference = false;
  for (std::size_t g = 0; g < first.graph_count; ++g) {
    if (first.at(0, 0, g, 0).makespan_ms != first.at(1, 0, g, 0).makespan_ms)
      any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace apt::core
