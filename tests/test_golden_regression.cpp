// Golden regression net: exact makespans and λ totals of representative
// (workload, policy) pairs, pinned to 1e-6 ms. These are *not* paper values
// (the thesis's exact graphs are unpublished — see EXPERIMENTS.md); they
// freeze THIS implementation's deterministic behaviour so that any
// unintended change to the generators, the engine, a cost model, or a
// policy shows up as a precise diff instead of a silent drift in the
// reproduced tables.
//
// If a change is *intentional* (e.g. a policy fix), regenerate the values
// with the snippet in the commit history and update them together with the
// explanation.
#include <gtest/gtest.h>

#include "core/experiments.hpp"
#include "dag/graph.hpp"
#include "scenario/scenario.hpp"

namespace apt::core {
namespace {

struct Golden {
  int type;               // 1 or 2
  std::size_t experiment; // 0-based index into the paper workload
  const char* policy;
  double makespan_ms;
  double lambda_total_ms;
};

constexpr Golden kGolden[] = {
    {1, 0, "apt:4", 37710.217728, 481962.616000},
    {1, 0, "met", 48115.369000, 622865.162000},
    {1, 0, "heft", 38602.217728, 1251482.418000},
    {1, 0, "peft", 40314.067376, 455293.173000},
    {1, 4, "apt:4", 43246.217728, 697275.015000},
    {1, 4, "met", 53715.486000, 851419.024000},
    {1, 4, "heft", 44509.960000, 2301276.617000},
    {1, 4, "peft", 45703.230000, 865204.500000},
    {1, 9, "apt:4", 84708.408728, 3471530.076000},
    {1, 9, "met", 110495.476728, 4564675.624000},
    {1, 9, "heft", 89405.523000, 11683469.967000},
    {1, 9, "peft", 92109.341376, 5987531.377000},
    {2, 0, "apt:4", 53997.111920, 158290.795168},
    {2, 0, "met", 58943.045136, 195508.124408},
    {2, 0, "heft", 51702.797808, 157117.941232},
    {2, 0, "peft", 58324.022808, 122045.804944},
    {2, 4, "apt:4", 63539.701928, 285131.859368},
    {2, 4, "met", 76084.155664, 381699.981320},
    {2, 4, "heft", 61322.327848, 470030.125512},
    {2, 4, "peft", 70756.509224, 204880.547872},
    {2, 9, "apt:4", 121466.150496, 1495896.565272},
    {2, 9, "met", 150243.092784, 1944616.192080},
    {2, 9, "heft", 121668.583248, 3043364.127144},
    {2, 9, "peft", 132261.398816, 1355254.453840},
};

class GoldenRegression : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenRegression, ExactMakespanAndLambda) {
  const Golden& g = GetParam();
  const auto type = g.type == 1 ? dag::DfgType::Type1 : dag::DfgType::Type2;
  const std::vector<dag::Dag> graphs = {dag::paper_graph(type, g.experiment)};
  const auto cells = run_policy_over(g.policy, graphs, 4.0);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_NEAR(cells[0].makespan_ms, g.makespan_ms, 1e-5)
      << g.policy << " on " << dag::to_string(type) << " #" << g.experiment;
  EXPECT_NEAR(cells[0].lambda_total_ms, g.lambda_total_ms, 1e-4)
      << g.policy << " on " << dag::to_string(type) << " #" << g.experiment;
}

INSTANTIATE_TEST_SUITE_P(
    PinnedOutcomes, GoldenRegression, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<Golden>& info) {
      std::string name = std::string("T") + std::to_string(info.param.type) +
                         "_e" + std::to_string(info.param.experiment) + "_" +
                         info.param.policy;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// --- Scenario-family generators ----------------------------------------------
//
// Same contract for the new workload families: the exact node/edge counts,
// the full structure hash (labels + edges + releases), and one HEFT
// makespan each, so a generator refactor cannot silently reshape the
// scenario space. Regenerate with the snippet in the commit history when a
// change is intentional.

struct ScenarioGolden {
  const char* family;
  std::size_t kernels;
  std::uint64_t seed;
  std::size_t node_count;
  std::size_t edge_count;
  std::uint64_t structure_hash;
  double heft_makespan_ms;
};

constexpr ScenarioGolden kScenarioGolden[] = {
    {"layered", 46, 7, 46, 166, 0x2527e605096a2636ULL, 28459.666728},
    {"forkjoin", 46, 7, 46, 75, 0xda20902013307209ULL, 29454.013960},
    {"intree", 46, 7, 46, 45, 0xbe31ecf7e6c83e0eULL, 23656.731632},
    {"outtree", 46, 7, 46, 45, 0x856061cab92c87f6ULL, 25211.576736},
    {"cholesky", 46, 7, 46, 71, 0xcb6ce3b8b0217eecULL, 27591.168848},
};

class ScenarioGoldenRegression
    : public ::testing::TestWithParam<ScenarioGolden> {};

TEST_P(ScenarioGoldenRegression, ExactStructureAndHeftMakespan) {
  const ScenarioGolden& g = GetParam();
  const dag::Dag graph = scenario::generate(g.family, g.kernels, g.seed,
                                            dag::KernelPool::paper_pool());
  EXPECT_EQ(graph.node_count(), g.node_count) << g.family;
  EXPECT_EQ(graph.edge_count(), g.edge_count) << g.family;
  EXPECT_EQ(dag::structure_hash(graph), g.structure_hash) << g.family;
  const auto cells = run_policy_over("heft", {graph}, 4.0);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_NEAR(cells[0].makespan_ms, g.heft_makespan_ms, 1e-5) << g.family;
}

INSTANTIATE_TEST_SUITE_P(
    PinnedGenerators, ScenarioGoldenRegression,
    ::testing::ValuesIn(kScenarioGolden),
    [](const ::testing::TestParamInfo<ScenarioGolden>& info) {
      return std::string(info.param.family);
    });

}  // namespace
}  // namespace apt::core
