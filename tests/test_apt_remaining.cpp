#include "core/apt_remaining.hpp"

#include <gtest/gtest.h>

#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "test_helpers.hpp"

namespace apt::core {
namespace {

TEST(AptRemaining, NameAndConfiguration) {
  AptRemaining policy(8.0);
  EXPECT_EQ(policy.name(), "APT-R(alpha=8.00)");
  EXPECT_TRUE(policy.is_dynamic());
  EXPECT_TRUE(policy.options().consider_remaining_time);
  EXPECT_TRUE(policy.options().transfer_aware);
}

TEST(AptRemaining, WaitsWhenTheBestProcessorFreesSoon) {
  // p0 finishes kernel a in 1 ms; waiting costs 1 + 1 = 2 < alternative 3:
  // plain APT would take p1, APT-R waits.
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{1.0, 3.0}, {1.0, 3.0}});

  Apt plain(4.0);
  const auto plain_result = test::run_and_validate(plain, d, sys, cost);
  EXPECT_EQ(plain_result.schedule[1].proc, 1u);

  AptRemaining refined(4.0);
  const auto refined_result = test::run_and_validate(refined, d, sys, cost);
  EXPECT_EQ(refined_result.schedule[1].proc, 0u);
  EXPECT_DOUBLE_EQ(refined_result.makespan, 2.0);  // beats plain APT's 3.0
}

TEST(AptRemaining, TakesTheAlternativeWhenWaitingIsWorse) {
  // p0 is busy for 10 ms; waiting costs 10 + 1 = 11 > alternative 3.
  dag::Dag d;
  d.add_node("long", 1);
  d.add_node("b", 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{10.0, 30.0}, {1.0, 3.0}});
  AptRemaining refined(4.0);
  const auto result = test::run_and_validate(refined, d, sys, cost);
  EXPECT_EQ(result.schedule[1].proc, 1u);
  EXPECT_TRUE(result.schedule[1].alternative);
  EXPECT_DOUBLE_EQ(result.makespan, 10.0);
}

TEST(AptRemaining, StillRespectsTheThreshold) {
  // Waiting is terrible (100 ms) but the alternative (5) exceeds the
  // threshold (4): APT-R must wait regardless.
  dag::Dag d;
  d.add_node("long", 1);
  d.add_node("b", 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{100.0, 300.0}, {1.0, 5.0}});
  AptRemaining refined(4.0);
  const auto result = test::run_and_validate(refined, d, sys, cost);
  EXPECT_EQ(result.schedule[1].proc, 0u);
  EXPECT_FALSE(result.schedule[1].alternative);
}

TEST(AptRemaining, StaysCompetitiveWithAptOnPaperWorkloads) {
  // Empirical finding of this reproduction (recorded in EXPERIMENTS.md and
  // the ablation bench): the thesis's future-work refinement is NOT a free
  // win — its wait-cost estimate ignores contention from *other* kernels
  // also waiting for p_min, so on the Type-1 workloads it lands a few
  // percent behind plain APT. We pin that it stays within 10% (a large
  // regression would indicate a broken implementation, not the known
  // estimator bias).
  double apt_total = 0.0;
  double aptr_total = 0.0;
  const sim::System sys = test::paper_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
  for (std::size_t i = 0; i < 10; ++i) {
    const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, i);
    Apt apt(4.0);
    AptRemaining aptr(4.0);
    apt_total += test::run_and_validate(apt, graph, sys, cost).makespan;
    aptr_total += test::run_and_validate(aptr, graph, sys, cost).makespan;
  }
  EXPECT_LE(aptr_total, apt_total * 1.10);
  EXPECT_GE(aptr_total, apt_total * 0.5);  // sanity: same order of magnitude
}

}  // namespace
}  // namespace apt::core
