#include "sim/system.hpp"

#include <gtest/gtest.h>

namespace apt::sim {
namespace {

TEST(Interconnect, UniformRateEverywhere) {
  Interconnect net(3, 4.0);
  for (ProcId a = 0; a < 3; ++a) {
    for (ProcId b = 0; b < 3; ++b) EXPECT_DOUBLE_EQ(net.rate_gbps(a, b), 4.0);
  }
}

TEST(Interconnect, SameProcessorTransferIsFree) {
  Interconnect net(3, 4.0);
  EXPECT_DOUBLE_EQ(net.transfer_time_ms(1e9, 1, 1), 0.0);
}

TEST(Interconnect, TransferTimeMatchesRate) {
  Interconnect net(2, 4.0);
  // 4 GB/s == 4e6 bytes per ms; 8 MB should take 2 ms.
  EXPECT_DOUBLE_EQ(net.transfer_time_ms(8e6, 0, 1), 2.0);
  Interconnect fast(2, 8.0);
  EXPECT_DOUBLE_EQ(fast.transfer_time_ms(8e6, 0, 1), 1.0);
}

TEST(Interconnect, PerPairOverride) {
  Interconnect net(3, 4.0);
  net.set_rate_gbps(0, 2, 16.0);
  EXPECT_DOUBLE_EQ(net.rate_gbps(0, 2), 16.0);
  EXPECT_DOUBLE_EQ(net.rate_gbps(2, 0), 4.0);  // directed
  EXPECT_DOUBLE_EQ(net.transfer_time_ms(16e6, 0, 2), 1.0);
}

TEST(Interconnect, Validation) {
  EXPECT_THROW(Interconnect(0, 4.0), std::invalid_argument);
  EXPECT_THROW(Interconnect(2, 0.0), std::invalid_argument);
  Interconnect net(2, 4.0);
  EXPECT_THROW(net.set_rate_gbps(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(net.rate_gbps(0, 7), std::out_of_range);
  EXPECT_THROW(net.transfer_time_ms(-5.0, 0, 1), std::invalid_argument);
}

TEST(SystemConfig, PaperDefaultIsCpuGpuFpga) {
  const SystemConfig cfg = SystemConfig::paper_default();
  ASSERT_EQ(cfg.processors.size(), 3u);
  EXPECT_EQ(cfg.processors[0], lut::ProcType::CPU);
  EXPECT_EQ(cfg.processors[1], lut::ProcType::GPU);
  EXPECT_EQ(cfg.processors[2], lut::ProcType::FPGA);
  EXPECT_DOUBLE_EQ(cfg.link_rate_gbps, 4.0);
  EXPECT_DOUBLE_EQ(cfg.bytes_per_element, 4.0);
  EXPECT_DOUBLE_EQ(cfg.decision_overhead_ms, 0.0);
  EXPECT_DOUBLE_EQ(cfg.dispatch_overhead_ms, 0.0);
}

TEST(System, NamesInstancesPerCategory) {
  SystemConfig cfg;
  cfg.processors = {lut::ProcType::CPU, lut::ProcType::GPU,
                    lut::ProcType::GPU, lut::ProcType::FPGA};
  const System sys(cfg);
  EXPECT_EQ(sys.proc_count(), 4u);
  EXPECT_EQ(sys.processor(0).name, "CPU0");
  EXPECT_EQ(sys.processor(1).name, "GPU0");
  EXPECT_EQ(sys.processor(2).name, "GPU1");
  EXPECT_EQ(sys.processor(3).name, "FPGA0");
  EXPECT_EQ(sys.processor(2).id, 2u);
}

TEST(System, CountsAndInstanceLookup) {
  SystemConfig cfg;
  cfg.processors = {lut::ProcType::GPU, lut::ProcType::CPU,
                    lut::ProcType::GPU};
  const System sys(cfg);
  EXPECT_EQ(sys.count_of(lut::ProcType::GPU), 2u);
  EXPECT_EQ(sys.count_of(lut::ProcType::CPU), 1u);
  EXPECT_EQ(sys.count_of(lut::ProcType::FPGA), 0u);
  EXPECT_EQ(sys.instances_of(lut::ProcType::GPU),
            (std::vector<ProcId>{0, 2}));
}

TEST(System, RejectsBadConfig) {
  SystemConfig empty;
  EXPECT_THROW(System{empty}, std::invalid_argument);

  SystemConfig bad_bytes = SystemConfig::paper_default();
  bad_bytes.bytes_per_element = 0.0;
  EXPECT_THROW(System{bad_bytes}, std::invalid_argument);

  SystemConfig bad_overhead = SystemConfig::paper_default();
  bad_overhead.decision_overhead_ms = -1.0;
  EXPECT_THROW(System{bad_overhead}, std::invalid_argument);
}

TEST(System, InterconnectUsesConfiguredRate) {
  const System sys(SystemConfig::paper_default(8.0));
  EXPECT_DOUBLE_EQ(sys.interconnect().rate_gbps(0, 2), 8.0);
}

}  // namespace
}  // namespace apt::sim
