#include "policies/heft.hpp"

#include <gtest/gtest.h>

#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "test_helpers.hpp"

namespace apt::policies {
namespace {

// --- The published Topcuoglu et al. example -----------------------------------

TEST(HeftRanks, UpwardRanksMatchThePaper) {
  const auto ex = test::topcuoglu_example();
  const sim::System sys = test::generic_system(3);
  const auto rank = heft_upward_ranks(ex.dag, sys, *ex.cost);
  // Table 2 of the HEFT paper (0-based node ids).
  const std::vector<double> expected = {108.000, 77.000, 80.000,  80.000,
                                        69.000,  63.333, 42.667,  35.667,
                                        44.333,  14.667};
  ASSERT_EQ(rank.size(), expected.size());
  for (std::size_t i = 0; i < rank.size(); ++i)
    EXPECT_NEAR(rank[i], expected[i], 0.01) << "task " << i + 1;
}

TEST(HeftRanks, DownwardRanksMatchThePaper) {
  const auto ex = test::topcuoglu_example();
  const sim::System sys = test::generic_system(3);
  const auto rank = heft_downward_ranks(ex.dag, sys, *ex.cost);
  EXPECT_NEAR(rank[0], 0.0, 1e-12);    // entry task
  EXPECT_NEAR(rank[1], 31.0, 0.01);    // 13 + 18
  EXPECT_NEAR(rank[2], 25.0, 0.01);    // 13 + 12
  EXPECT_NEAR(rank[3], 22.0, 0.01);
  EXPECT_NEAR(rank[4], 24.0, 0.01);
  EXPECT_NEAR(rank[9], 93.333, 0.01);  // exit task
}

TEST(HeftRanks, UpwardRankDecreasesAlongEveryEdge) {
  const auto ex = test::topcuoglu_example();
  const sim::System sys = test::generic_system(3);
  const auto rank = heft_upward_ranks(ex.dag, sys, *ex.cost);
  for (dag::NodeId n = 0; n < ex.dag.node_count(); ++n) {
    for (dag::NodeId s : ex.dag.successors(n)) EXPECT_GT(rank[n], rank[s]);
  }
}

TEST(Heft, ReproducesThePublishedMakespan80) {
  const auto ex = test::topcuoglu_example();
  const sim::System sys = test::generic_system(3);
  Heft heft;
  const auto result = test::run_and_validate(heft, ex.dag, sys, *ex.cost);
  EXPECT_NEAR(result.makespan, 80.0, 1e-9);
}

TEST(Heft, PublishedProcessorAssignments) {
  // The HEFT paper's Figure 3(a) schedule: t1->P3(=2), t2->P1(=0),
  // t3->P3, t4->P2(=1), ..., t10->P2.
  const auto ex = test::topcuoglu_example();
  const sim::System sys = test::generic_system(3);
  Heft heft;
  const auto result = test::run_and_validate(heft, ex.dag, sys, *ex.cost);
  EXPECT_EQ(result.schedule[0].proc, 2u);  // t1 on P3
  EXPECT_EQ(result.schedule[3].proc, 1u);  // t4 on P2
  EXPECT_EQ(result.schedule[9].proc, 1u);  // t10 on P2
}

TEST(Heft, SimulatedExecutionMatchesThePlanExactly) {
  const auto ex = test::topcuoglu_example();
  const sim::System sys = test::generic_system(3);
  Heft heft;
  const auto result = test::run_and_validate(heft, ex.dag, sys, *ex.cost);
  const StaticPlan& plan = heft.plan();
  ASSERT_EQ(plan.tasks.size(), result.schedule.size());
  for (dag::NodeId n = 0; n < plan.tasks.size(); ++n) {
    EXPECT_EQ(result.schedule[n].proc, plan.tasks[n].proc) << "task " << n;
    EXPECT_NEAR(result.schedule[n].exec_start, plan.tasks[n].start, 1e-9);
    EXPECT_NEAR(result.schedule[n].finish_time, plan.tasks[n].finish, 1e-9);
  }
  EXPECT_NEAR(plan.planned_makespan(), result.makespan, 1e-9);
}

TEST(Heft, PlanMatchesExecutionOnPaperWorkloadToo) {
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type2, 0);
  const sim::System sys = test::paper_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
  Heft heft;
  const auto result = test::run_and_validate(heft, graph, sys, cost);
  for (dag::NodeId n = 0; n < graph.node_count(); ++n) {
    EXPECT_NEAR(result.schedule[n].exec_start, heft.plan().tasks[n].start,
                1e-6)
        << "node " << n;
  }
}

TEST(Heft, InsertionFillsGaps) {
  // p0: a long head task then a dependent tail leaves a gap a later short
  // independent task can slot into.
  dag::Dag d;
  d.add_node("head", 1);   // 0
  d.add_node("tail", 1);   // 1, needs head's data remotely -> gap on p0
  d.add_node("filler", 1); // 2, independent and short
  d.add_edge(0, 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{4.0, 50.0}, {4.0, 50.0}, {2.0, 50.0}});
  cost.set_comm_cost(0, 1, 0.0);
  Heft heft;
  const auto result = test::run_and_validate(heft, d, sys, cost);
  // All three prefer p0 massively; the filler should reuse idle time
  // without delaying anything into p1's 50ms territory.
  for (const auto& k : result.schedule) EXPECT_EQ(k.proc, 0u);
  EXPECT_DOUBLE_EQ(result.makespan, 10.0);
}

TEST(Heft, SingleProcessorIsASerialisation) {
  const auto ex = test::topcuoglu_example();
  const sim::System sys = test::generic_system(1);
  // Project the 3-proc matrix onto p0 only.
  std::vector<std::vector<sim::TimeMs>> w;
  for (int i = 0; i < 10; ++i)
    w.push_back({ex.cost->exec_time_ms(ex.dag, i, sys.processor(0))});
  sim::MatrixCostModel cost(w);
  Heft heft;
  const auto result = test::run_and_validate(heft, ex.dag, sys, cost);
  double total = 0.0;
  for (const auto& row : w) total += row[0];
  EXPECT_NEAR(result.makespan, total, 1e-9);  // no idle gaps on one proc
}

}  // namespace
}  // namespace apt::policies
