#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace apt::util {
namespace {

TEST(CsvParse, SimpleDocumentWithHeader) {
  const auto t = parse_csv("a,b,c\n1,2,3\n4,5,6\n");
  EXPECT_EQ(t.header(), (CsvRow{"a", "b", "c"}));
  ASSERT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.row(0), (CsvRow{"1", "2", "3"}));
  EXPECT_EQ(t.row(1), (CsvRow{"4", "5", "6"}));
}

TEST(CsvParse, NoHeaderMode) {
  const auto t = parse_csv("1,2\n3,4\n", /*has_header=*/false);
  EXPECT_TRUE(t.header().empty());
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(CsvParse, MissingTrailingNewline) {
  const auto t = parse_csv("a,b\n1,2");
  ASSERT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.row(0), (CsvRow{"1", "2"}));
}

TEST(CsvParse, CrLfLineEndings) {
  const auto t = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.row(0), (CsvRow{"1", "2"}));
}

TEST(CsvParse, QuotedFieldsWithCommasAndNewlines) {
  const auto t = parse_csv("a,b\n\"x,y\",\"line1\nline2\"\n");
  ASSERT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.row(0)[0], "x,y");
  EXPECT_EQ(t.row(0)[1], "line1\nline2");
}

TEST(CsvParse, EscapedQuotes) {
  const auto t = parse_csv("a\n\"he said \"\"hi\"\"\"\n");
  ASSERT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.row(0)[0], "he said \"hi\"");
}

TEST(CsvParse, EmptyFieldsPreserved) {
  const auto t = parse_csv("a,b,c\n,,\n");
  ASSERT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.row(0), (CsvRow{"", "", ""}));
}

TEST(CsvParse, QuotedEmptyFieldMakesRow) {
  const auto t = parse_csv("a\n\"\"\n");
  ASSERT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.row(0)[0], "");
}

TEST(CsvParse, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv("a\n\"oops\n"), std::runtime_error);
}

TEST(CsvParse, QuoteInsideUnquotedFieldThrows) {
  EXPECT_THROW(parse_csv("a\nx\"y\n"), std::runtime_error);
}

TEST(CsvEscape, OnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(csv_escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(csv_escape("with\nnewline"), "\"with\nnewline\"");
}

TEST(CsvRoundTrip, PreservesContent) {
  CsvTable t({"k", "v"});
  t.add_row({"x,1", "line\nbreak"});
  t.add_row({"plain", "va\"l"});
  const auto parsed = parse_csv(to_csv_string(t));
  EXPECT_EQ(parsed.header(), t.header());
  ASSERT_EQ(parsed.row_count(), 2u);
  EXPECT_EQ(parsed.row(0), t.row(0));
  EXPECT_EQ(parsed.row(1), t.row(1));
}

TEST(CsvTable, ColumnIndexAndCell) {
  CsvTable t({"kernel", "ms"});
  t.add_row({"mm", "1.5"});
  EXPECT_EQ(t.column_index("ms"), 1u);
  EXPECT_EQ(t.cell(0, "kernel"), "mm");
  EXPECT_THROW(t.column_index("nope"), std::out_of_range);
}

TEST(CsvFile, WriteThenRead) {
  const std::string path = ::testing::TempDir() + "/apt_csv_test.csv";
  CsvTable t({"a", "b"});
  t.add_row({"1", "two,three"});
  write_csv_file(t, path);
  const auto back = read_csv_file(path);
  EXPECT_EQ(back.header(), t.header());
  ASSERT_EQ(back.row_count(), 1u);
  EXPECT_EQ(back.row(0), t.row(0));
  std::remove(path.c_str());
}

TEST(CsvFile, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path/x.csv"), std::runtime_error);
}

}  // namespace
}  // namespace apt::util
