#include "policies/ss.hpp"

#include <gtest/gtest.h>

#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "test_helpers.hpp"

namespace apt::policies {
namespace {

TEST(SerialScheduling, PrioritisesTheHighestStddevKernel) {
  // One processor free slot contention: kernel 1 has wildly heterogeneous
  // times (stddev 49.5) vs kernel 0 (stddev 0) — kernel 1 is placed first.
  dag::Dag d;
  d.add_node("uniform", 1);
  d.add_node("volatile", 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{5.0, 5.0}, {1.0, 100.0}});
  SerialScheduling ss;
  const auto result = test::run_and_validate(ss, d, sys, cost);
  // volatile grabs its best processor (p0) first; uniform lands on p1.
  EXPECT_EQ(result.schedule[1].proc, 0u);
  EXPECT_DOUBLE_EQ(result.schedule[1].exec_start, 0.0);
  EXPECT_EQ(result.schedule[0].proc, 1u);
}

TEST(SerialScheduling, AssignsToTheFastestAvailableProcessor) {
  dag::Dag d;
  d.add_node("k", 1);
  const sim::System sys = test::generic_system(3);
  sim::MatrixCostModel cost({{7.0, 3.0, 9.0}});
  SerialScheduling ss;
  const auto result = test::run_and_validate(ss, d, sys, cost);
  EXPECT_EQ(result.schedule[0].proc, 1u);
}

TEST(SerialScheduling, NeverWaits) {
  // Like SPN, SS keeps the system busy: both processors used at t=0.
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{1.0, 40.0}, {1.0, 40.0}});
  SerialScheduling ss;
  const auto result = test::run_and_validate(ss, d, sys, cost);
  EXPECT_DOUBLE_EQ(result.schedule[0].exec_start, 0.0);
  EXPECT_DOUBLE_EQ(result.schedule[1].exec_start, 0.0);
  EXPECT_NE(result.schedule[0].proc, result.schedule[1].proc);
}

TEST(SerialScheduling, StddevIsComputedOverAvailableProcessorsOnly) {
  // p0 is occupied by kernel 0 (arrives alone). Then kernels 1 and 2
  // contend for the two remaining processors {p1, p2}: over those, kernel 1
  // has stddev 0 and kernel 2 has stddev 24.5 -> kernel 2 picks first.
  dag::Dag d;
  d.add_node("occupier", 1);
  d.add_node("flat", 1);
  d.add_node("spread", 1);
  const sim::System sys = test::generic_system(3);
  sim::MatrixCostModel cost({{1.0, 100.0, 100.0},
                             {90.0, 8.0, 8.0},
                             {90.0, 1.0, 50.0}});
  SerialScheduling ss;
  const auto result = test::run_and_validate(ss, d, sys, cost);
  EXPECT_EQ(result.schedule[0].proc, 0u);
  EXPECT_EQ(result.schedule[2].proc, 1u);  // spread wins its best first
  EXPECT_EQ(result.schedule[1].proc, 2u);  // flat takes what is left
}

TEST(SerialScheduling, SingleProcessorDegeneratesToFifo) {
  // With one idle processor every stddev is 0: FIFO tie-break applies.
  dag::Dag d;
  for (int i = 0; i < 3; ++i) d.add_node("k", 1);
  const sim::System sys = test::generic_system(1);
  sim::MatrixCostModel cost({{2.0}, {3.0}, {1.0}});
  SerialScheduling ss;
  const auto result = test::run_and_validate(ss, d, sys, cost);
  EXPECT_DOUBLE_EQ(result.schedule[0].exec_start, 0.0);
  EXPECT_DOUBLE_EQ(result.schedule[1].exec_start, 2.0);
  EXPECT_DOUBLE_EQ(result.schedule[2].exec_start, 5.0);
}

TEST(SerialScheduling, HandlesPaperWorkloads) {
  for (dag::DfgType type : {dag::DfgType::Type1, dag::DfgType::Type2}) {
    const dag::Dag graph = dag::paper_graph(type, 1);
    const sim::System sys = test::paper_system();
    const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
    SerialScheduling ss;
    test::run_and_validate(ss, graph, sys, cost);
  }
}

}  // namespace
}  // namespace apt::policies
