// Equivalence tests for the incremental max-min re-solve in
// net::TransferManager — the streaming hot-path optimisation must be
// invisible in every simulated quantity:
//
//  * randomized routed scenarios (ring/mesh/fattree x 120 seeds) drive two
//    managers in lockstep — one pinned to SolveMode::FullAlways, one on the
//    default incremental path — and every event time, delivery timeline,
//    and per-link total must match BITWISE;
//  * the stream engine under contention produces identical TransferRecord
//    timelines and StreamMetrics either way, at 10x the densest sustained
//    bench rate;
//  * SolveStats counters surface the split and stay internally consistent;
//  * the reusable advance_to out-buffer overload matches the returning one.
#include "net/transfer_manager.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/policy_factory.hpp"
#include "dag/generator.hpp"
#include "lut/lookup_table.hpp"
#include "lut/paper_data.hpp"
#include "net/topology.hpp"
#include "scenario/scenario.hpp"
#include "sim/cost_model.hpp"
#include "sim/metrics.hpp"
#include "sim/system.hpp"
#include "stream/stream_engine.hpp"
#include "util/rng.hpp"

namespace apt {
namespace {

/// Restores the process-wide default solve mode on scope exit, so a failing
/// assertion cannot leak FullAlways into later tests.
struct SolveModeGuard {
  ~SolveModeGuard() {
    net::TransferManager::set_default_solve_mode(
        net::TransferManager::SolveMode::Auto);
  }
};

net::Topology routed_topology(const std::string& spec_str,
                              net::ProcId procs) {
  net::TopologySpec spec = net::parse_topology_spec(spec_str);
  spec.bandwidth_gbps = 1.0;  // 1e6 bytes/ms
  spec.latency_ms = 0.05;
  return net::Topology(spec, procs, 1.0);
}

/// Drives `full` and `inc` through the identical event sequence up to
/// `until`, asserting bitwise-equal event times and delivery timelines.
void drain_lockstep(net::TransferManager& full, net::TransferManager& inc,
                    net::TimeMs until) {
  for (;;) {
    const net::TimeMs e = inc.next_event_ms();
    ASSERT_EQ(e, full.next_event_ms());  // bitwise
    if (std::isinf(e) || e > until) break;
    const auto di = inc.advance_to(e);
    const auto df = full.advance_to(e);
    ASSERT_EQ(di.size(), df.size());
    for (std::size_t i = 0; i < di.size(); ++i) {
      EXPECT_EQ(di[i].tag, df[i].tag);
      EXPECT_EQ(di[i].delivered_ms, df[i].delivered_ms);  // bitwise
    }
  }
}

TEST(TmIncremental, RandomizedRoutedScenariosMatchFullSolveBitwise) {
  const SolveModeGuard guard;
  struct Shape {
    const char* spec;
    net::ProcId procs;
  };
  const std::vector<Shape> shapes = {
      {"ring:6", 6}, {"mesh:3x3", 9}, {"fattree:2", 8}};
  std::uint64_t incremental_total = 0;
  for (const Shape& shape : shapes) {
    const net::Topology topo = routed_topology(shape.spec, shape.procs);
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
      util::Rng rng(0xD1517 * seed + shape.procs);
      net::TransferManager::set_default_solve_mode(
          net::TransferManager::SolveMode::FullAlways);
      net::TransferManager full(topo);
      net::TransferManager::set_default_solve_mode(
          net::TransferManager::SolveMode::Auto);
      net::TransferManager inc(topo);

      // 20-60 messages with clustered starts: enough simultaneous flows to
      // cross the small-solve floor and exercise the restricted filling.
      const std::size_t count = 20 + rng.uniform_u64(41);
      net::TimeMs at = 0.0;
      for (std::size_t m = 0; m < count; ++m) {
        at += rng.uniform_real(0.01, 1.5);
        const auto from =
            static_cast<net::ProcId>(rng.uniform_u64(shape.procs));
        auto to = static_cast<net::ProcId>(rng.uniform_u64(shape.procs));
        if (to == from) to = (to + 1) % shape.procs;
        const double bytes = rng.uniform_real(1e4, 5e6);
        drain_lockstep(full, inc, at);
        const auto df = full.advance_to(at);
        const auto di = inc.advance_to(at);
        ASSERT_EQ(di.size(), df.size());
        full.start(m, bytes, from, to, at);
        inc.start(m, bytes, from, to, at);
      }
      while (inc.busy()) {
        ASSERT_TRUE(full.busy());
        drain_lockstep(full, inc,
                       std::numeric_limits<net::TimeMs>::infinity());
      }
      EXPECT_FALSE(full.busy());
      // Cumulative per-link accounting must agree bitwise too.
      const auto& busy_f = full.link_busy_ms();
      const auto& busy_i = inc.link_busy_ms();
      ASSERT_EQ(busy_f.size(), busy_i.size());
      for (std::size_t l = 0; l < busy_f.size(); ++l)
        EXPECT_EQ(busy_f[l], busy_i[l]);
      const auto& bytes_f = full.link_delivered_bytes();
      const auto& bytes_i = inc.link_delivered_bytes();
      for (std::size_t l = 0; l < bytes_f.size(); ++l)
        EXPECT_EQ(bytes_f[l], bytes_i[l]);

      // full_solves already includes the fallbacks, so full + incremental
      // partitions the membership events.
      EXPECT_EQ(inc.solve_stats().incremental_solves +
                    inc.solve_stats().full_solves,
                full.solve_stats().full_solves);
      EXPECT_LE(inc.solve_stats().fallback_solves,
                inc.solve_stats().full_solves);
      EXPECT_EQ(full.solve_stats().incremental_solves, 0u);
      incremental_total += inc.solve_stats().incremental_solves;
    }
  }
  // The suite must actually exercise the incremental path, not fall back
  // to full solves throughout.
  EXPECT_GT(incremental_total, 0u);
}

TEST(TmIncremental, SolveStatsCountersStayConsistent) {
  const SolveModeGuard guard;
  const net::Topology topo = routed_topology("mesh:4x4", 16);
  net::TransferManager tm(topo);
  util::Rng rng(0xCAFE);
  net::TimeMs at = 0.0;
  for (std::size_t m = 0; m < 200; ++m) {
    at += rng.uniform_real(0.01, 0.2);
    const auto from = static_cast<net::ProcId>(rng.uniform_u64(16));
    auto to = static_cast<net::ProcId>(rng.uniform_u64(16));
    if (to == from) to = (to + 1) % 16;
    tm.advance_to(at);
    tm.start(m, rng.uniform_real(1e5, 5e6), from, to, at);
  }
  while (tm.busy()) tm.advance_to(tm.next_event_ms());
  const net::SolveStats& st = tm.solve_stats();
  EXPECT_GT(st.incremental_solves, 0u);
  EXPECT_GT(st.full_solves + st.fallback_solves, 0u);
  // Restricted fills resolve a subset of the active flows; full solves
  // resolve all of them — so the resolved count is bounded by the active
  // count and both grow monotonically past zero.
  EXPECT_GT(st.flows_active, 0u);
  EXPECT_GT(st.flows_resolved, 0u);
  EXPECT_LE(st.flows_resolved, st.flows_active);
}

TEST(TmIncremental, AdvanceToOutBufferMatchesReturningOverload) {
  const net::Topology topo = routed_topology("ring:6", 6);
  net::TransferManager a(topo);
  net::TransferManager b(topo);
  for (std::uint64_t m = 0; m < 8; ++m) {
    a.start(m, 1e5 * static_cast<double>(m + 1), m % 6, (m + 2) % 6, 0.0);
    b.start(m, 1e5 * static_cast<double>(m + 1), m % 6, (m + 2) % 6, 0.0);
  }
  std::vector<net::Delivery> out;
  out.push_back(net::Delivery{});  // stale content must be discarded
  while (a.busy()) {
    const net::TimeMs e = a.next_event_ms();
    EXPECT_EQ(e, b.next_event_ms());
    const auto returned = a.advance_to(e);
    b.advance_to(e, out);
    ASSERT_EQ(out.size(), returned.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i].tag, returned[i].tag);
      EXPECT_EQ(out[i].delivered_ms, returned[i].delivered_ms);
    }
  }
  EXPECT_FALSE(b.busy());
}

// --- Stream-engine-level equivalence ----------------------------------------

stream::StreamOutcome run_contended_stream(const std::string& topology,
                                           const char* policy_spec,
                                           net::TransferManager::SolveMode
                                               mode) {
  net::TransferManager::set_default_solve_mode(mode);
  sim::SystemConfig cfg = sim::SystemConfig::paper_default();
  cfg.topology = net::parse_topology_spec(topology);
  cfg.topology.bandwidth_gbps = 1.0;
  cfg.topology.latency_ms = 0.05;
  const sim::System system(cfg);
  const lut::LookupTable table = lut::paper_lookup_table();
  const sim::LutCostModel cost(table, system);
  const dag::KernelPool pool = dag::KernelPool::from_lookup_table(table);

  stream::StreamOptions opts;
  // 10x the densest sustained bench rate, bounded by a burst cap.
  opts.arrivals = stream::ArrivalSpec::poisson(0.005, 99);
  opts.max_apps = 16;
  opts.warmup_ms = 0.0;
  opts.record_schedules = true;
  stream::StreamEngine engine(
      system, cost,
      [&](std::size_t i) {
        return scenario::generate("type1", 46, 1000 + i, pool);
      },
      opts);
  const auto policy = core::make_policy(policy_spec);
  return engine.run(*policy);
}

TEST(TmIncremental, StreamEngineTimelinesMatchFullSolveBitwise) {
  const SolveModeGuard guard;
  for (const std::string topology : {"ring:5", "mesh:2x2", "fattree:2"}) {
    for (const char* spec : {"apt:4", "ag"}) {
      const stream::StreamOutcome full = run_contended_stream(
          topology, spec, net::TransferManager::SolveMode::FullAlways);
      const stream::StreamOutcome inc = run_contended_stream(
          topology, spec, net::TransferManager::SolveMode::Auto);

      ASSERT_EQ(full.schedules.size(), inc.schedules.size())
          << topology << " " << spec;
      for (std::size_t s = 0; s < full.schedules.size(); ++s) {
        const sim::SimResult& rf = full.schedules[s].result;
        const sim::SimResult& ri = inc.schedules[s].result;
        EXPECT_EQ(rf.makespan, ri.makespan);  // bitwise
        ASSERT_EQ(rf.schedule.size(), ri.schedule.size());
        for (std::size_t k = 0; k < rf.schedule.size(); ++k) {
          EXPECT_EQ(rf.schedule[k].proc, ri.schedule[k].proc);
          EXPECT_EQ(rf.schedule[k].exec_start, ri.schedule[k].exec_start);
          EXPECT_EQ(rf.schedule[k].finish_time, ri.schedule[k].finish_time);
        }
        // The simulated message timelines — start, drain, finish, route —
        // are the solver's direct output and must match bitwise.
        ASSERT_EQ(rf.transfers.size(), ri.transfers.size());
        for (std::size_t t = 0; t < rf.transfers.size(); ++t) {
          const sim::TransferRecord& a = rf.transfers[t];
          const sim::TransferRecord& b = ri.transfers[t];
          EXPECT_EQ(a.src, b.src);
          EXPECT_EQ(a.dst, b.dst);
          EXPECT_EQ(a.bytes, b.bytes);
          EXPECT_EQ(a.start, b.start);
          EXPECT_EQ(a.drain_start, b.drain_start);
          EXPECT_EQ(a.finish, b.finish);
          EXPECT_EQ(a.path, b.path);
        }
      }
      const sim::StreamMetrics& mf = full.metrics;
      const sim::StreamMetrics& mi = inc.metrics;
      EXPECT_EQ(mf.end_ms, mi.end_ms) << topology << " " << spec;
      EXPECT_EQ(mf.flow_ms.avg, mi.flow_ms.avg);
      EXPECT_EQ(mf.flow_ms.p95, mi.flow_ms.p95);
      EXPECT_EQ(mf.slowdown.avg, mi.slowdown.avg);
      EXPECT_EQ(mf.avg_utilization, mi.avg_utilization);
      ASSERT_EQ(mf.per_link.size(), mi.per_link.size());
      for (std::size_t l = 0; l < mf.per_link.size(); ++l) {
        EXPECT_EQ(mf.per_link[l].busy_ms, mi.per_link[l].busy_ms);
        EXPECT_EQ(mf.per_link[l].bytes, mi.per_link[l].bytes);
      }
      // The stats rode through the metrics pipeline: the full run counted
      // only full solves, the incremental run the split.
      EXPECT_EQ(mf.tm_solve_stats.incremental_solves, 0u);
      EXPECT_EQ(mf.tm_solve_stats.full_solves,
                mi.tm_solve_stats.full_solves +
                    mi.tm_solve_stats.incremental_solves);
    }
  }
}

}  // namespace
}  // namespace apt
