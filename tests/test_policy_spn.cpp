#include "policies/spn.hpp"

#include <gtest/gtest.h>

#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "test_helpers.hpp"

namespace apt::policies {
namespace {

TEST(Spn, PicksGloballyShortestKernelProcessorPair) {
  // k1 is shortest anywhere (on p1); k0 then takes the best remaining.
  dag::Dag d;
  d.add_node("k0", 1);
  d.add_node("k1", 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{5.0, 6.0}, {9.0, 1.0}});
  Spn spn;
  const auto result = test::run_and_validate(spn, d, sys, cost);
  EXPECT_EQ(result.schedule[1].proc, 1u);
  EXPECT_DOUBLE_EQ(result.schedule[1].exec_start, 0.0);
  EXPECT_EQ(result.schedule[0].proc, 0u);
  EXPECT_DOUBLE_EQ(result.schedule[0].exec_start, 0.0);
}

TEST(Spn, NeverLeavesAProcessorIdleWhileWorkIsReady) {
  // Three kernels, two processors: both processors start something at t=0.
  dag::Dag d;
  for (int i = 0; i < 3; ++i) d.add_node("k", 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{1.0, 50.0}, {1.0, 50.0}, {1.0, 50.0}});
  Spn spn;
  const auto result = test::run_and_validate(spn, d, sys, cost);
  std::size_t at_zero = 0;
  for (const auto& k : result.schedule) {
    if (k.exec_start == 0.0) ++at_zero;
  }
  EXPECT_EQ(at_zero, 2u);  // greedy keep-busy, even on the bad processor
}

TEST(Spn, AssignsToSlowProcessorRatherThanWaiting) {
  // Unlike MET: second kernel goes to the 50x slower processor immediately.
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{1.0, 50.0}, {1.0, 50.0}});
  Spn spn;
  const auto result = test::run_and_validate(spn, d, sys, cost);
  EXPECT_EQ(result.schedule[0].proc, 0u);
  EXPECT_EQ(result.schedule[1].proc, 1u);
  EXPECT_DOUBLE_EQ(result.makespan, 50.0);
}

TEST(Spn, ShortestFirstOrderOnSharedProcessor) {
  // One processor, kernels of length 3, 1, 2 -> executed 1, 2, 3.
  dag::Dag d;
  for (int i = 0; i < 3; ++i) d.add_node("k", 1);
  const sim::System sys = test::generic_system(1);
  sim::MatrixCostModel cost({{3.0}, {1.0}, {2.0}});
  Spn spn;
  const auto result = test::run_and_validate(spn, d, sys, cost);
  EXPECT_DOUBLE_EQ(result.schedule[1].exec_start, 0.0);
  EXPECT_DOUBLE_EQ(result.schedule[2].exec_start, 1.0);
  EXPECT_DOUBLE_EQ(result.schedule[0].exec_start, 3.0);
}

TEST(Spn, TieBreaksByArrivalThenProcessorId) {
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{1.0, 1.0}, {1.0, 1.0}});
  Spn spn;
  const auto result = test::run_and_validate(spn, d, sys, cost);
  EXPECT_EQ(result.schedule[0].proc, 0u);  // earliest kernel, lowest proc
  EXPECT_EQ(result.schedule[1].proc, 1u);
}

TEST(Spn, HandlesPaperWorkloads) {
  for (dag::DfgType type : {dag::DfgType::Type1, dag::DfgType::Type2}) {
    const dag::Dag graph = dag::paper_graph(type, 0);
    const sim::System sys = test::paper_system();
    const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
    Spn spn;
    test::run_and_validate(spn, graph, sys, cost);
  }
}

}  // namespace
}  // namespace apt::policies
