// Reproduction-shape tests: the qualitative results of the thesis's
// evaluation (Chapter 4) must hold on our regenerated workloads. Absolute
// milliseconds cannot match (the authors' exact random graphs are lost), but
// who wins, roughly by how much, and where the α-valley bottoms out are all
// pinned here. EXPERIMENTS.md records the exact measured numbers.
#include <gtest/gtest.h>

#include "core/experiments.hpp"

namespace apt::core {
namespace {

/// Column indices in paper_policy_specs order.
constexpr std::size_t kApt = 0;
constexpr std::size_t kMet = 1;
constexpr std::size_t kSpn = 2;
constexpr std::size_t kSs = 3;
constexpr std::size_t kAg = 4;
constexpr std::size_t kHeft = 5;
constexpr std::size_t kPeft = 6;

class PaperShape : public ::testing::TestWithParam<dag::DfgType> {
 protected:
  static const Grid& grid_alpha(dag::DfgType type, double alpha) {
    static std::map<std::pair<int, double>, Grid> cache;
    const auto key = std::make_pair(static_cast<int>(type), alpha);
    auto it = cache.find(key);
    if (it == cache.end()) {
      it = cache.emplace(key, run_paper_grid(type, paper_policy_specs(alpha)))
               .first;
    }
    return it->second;
  }
};

// §4.2, Tables 8/9: with α = 1.5 APT tracks MET almost exactly (the
// threshold is too tight to change anything material).
TEST_P(PaperShape, Alpha1_5MimicsMet) {
  const Grid& grid = grid_alpha(GetParam(), 1.5);
  EXPECT_NEAR(grid.avg_makespan_ms(kApt), grid.avg_makespan_ms(kMet),
              0.02 * grid.avg_makespan_ms(kMet));
  // and per-experiment the two differ by at most a few percent:
  for (std::size_t g = 0; g < grid.experiment_count(); ++g) {
    EXPECT_NEAR(grid.cells[g][kApt].makespan_ms,
                grid.cells[g][kMet].makespan_ms,
                0.10 * grid.cells[g][kMet].makespan_ms)
        << "experiment " << g + 1;
  }
}

// §4.4, Table 13 row α=1.5: improvement is ~0 (slightly negative allowed).
TEST_P(PaperShape, Alpha1_5ImprovementIsNearZero) {
  const Grid& grid = grid_alpha(GetParam(), 1.5);
  EXPECT_NEAR(improvement_exec_pct(grid, kApt), 0.0, 2.0);
}

// §4.2/§4.4: at the threshold break (α = 4) APT beats the second-best
// dynamic policy by a double-digit percentage (paper: 18.2% on Type-1,
// 15.8% on Type-2; we measure ~20%/15%).
TEST_P(PaperShape, Alpha4DeliversTheHeadlineImprovement) {
  const Grid& grid = grid_alpha(GetParam(), 4.0);
  const double exec_improvement = improvement_exec_pct(grid, kApt);
  EXPECT_GE(exec_improvement, 10.0);
  EXPECT_LE(exec_improvement, 30.0);
  // λ improvement is at least as strong (paper: "the percentage of
  // improvement is higher for λ than for the overall execution time").
  EXPECT_GE(improvement_lambda_pct(grid, kApt), exec_improvement - 2.0);
}

// §4.2: APT(4) wins the bulk of the experiments outright (9/10 in the
// paper; we demand a strict majority against all six competitors).
TEST_P(PaperShape, Alpha4WinsMostExperiments) {
  const Grid& grid = grid_alpha(GetParam(), 4.0);
  std::size_t beats_met = 0;
  for (std::size_t g = 0; g < grid.experiment_count(); ++g) {
    if (grid.cells[g][kApt].makespan_ms < grid.cells[g][kMet].makespan_ms)
      ++beats_met;
  }
  EXPECT_GE(beats_met, 8u);
}

// §4.2: the per-policy ranking of the averages. APT(4) and MET lead the
// dynamic field; SPN, SS and AG trail by multiples (their blow-ups in
// Tables 8-10 are the paper's most dramatic numbers).
TEST_P(PaperShape, DynamicPolicyRanking) {
  const Grid& grid = grid_alpha(GetParam(), 4.0);
  const double apt = grid.avg_makespan_ms(kApt);
  const double met = grid.avg_makespan_ms(kMet);
  EXPECT_LT(apt, met);
  for (std::size_t trailing : {kSpn, kSs, kAg}) {
    EXPECT_GT(grid.avg_makespan_ms(trailing), 2.0 * met)
        << grid.policy_names[trailing];
  }
}

// §4.2, Figures 6/8: HEFT and PEFT are competitive with the best dynamic
// policies — same ballpark, not blow-ups.
TEST_P(PaperShape, StaticPoliciesAreCompetitive) {
  const Grid& grid = grid_alpha(GetParam(), 4.0);
  const double met = grid.avg_makespan_ms(kMet);
  EXPECT_LT(grid.avg_makespan_ms(kHeft), 1.25 * met);
  EXPECT_LT(grid.avg_makespan_ms(kPeft), 1.25 * met);
}

// §4.2, Figures 7/9: the α-valley. Makespan drops from α=1.5 to the
// threshold break at α=4, then rises again toward α=8/16.
TEST_P(PaperShape, AlphaValleyBottomsAtFour) {
  const auto points =
      apt_alpha_sweep(GetParam(), paper_alphas(), {4.0});
  ASSERT_EQ(points.size(), 5u);
  const double at_1_5 = points[0].avg_makespan_ms;
  const double at_2 = points[1].avg_makespan_ms;
  const double at_4 = points[2].avg_makespan_ms;
  const double at_8 = points[3].avg_makespan_ms;
  const double at_16 = points[4].avg_makespan_ms;
  EXPECT_LT(at_4, at_1_5);
  EXPECT_LT(at_4, at_2);
  EXPECT_LT(at_4, at_8);
  EXPECT_LT(at_4, at_16);
}

// §4.2.2, Figure 9: raising the PCIe rate from 4 to 8 GB/s changes little,
// and what changes is an improvement (transfers get cheaper).
TEST_P(PaperShape, TransferRateHasSmallEffect) {
  const auto points = apt_alpha_sweep(GetParam(), {4.0}, {4.0, 8.0});
  ASSERT_EQ(points.size(), 2u);
  EXPECT_LE(points[1].avg_makespan_ms, points[0].avg_makespan_ms * 1.001);
  EXPECT_GE(points[1].avg_makespan_ms, points[0].avg_makespan_ms * 0.90);
}

// §4.3, Tables 11/12: λ-delay shape — APT(4) has less total λ than MET
// (quicker assignments shrink waiting), and the λ valley mirrors the
// makespan valley: α=4 also beats α=1.5 on λ (Figures 11/12).
// Deviation note (EXPERIMENTS.md): the thesis also reports huge λ for SPN;
// under our λ definition (ready-queue wait excluding data movement) SPN's
// λ is *small* because SPN never lets a kernel sit unassigned — its damage
// shows in the makespan instead.
TEST_P(PaperShape, LambdaShape) {
  const Grid& tight = grid_alpha(GetParam(), 1.5);
  const Grid& grid = grid_alpha(GetParam(), 4.0);
  EXPECT_LT(grid.avg_lambda_ms(kApt), grid.avg_lambda_ms(kMet));
  EXPECT_LT(grid.avg_lambda_ms(kApt), tight.avg_lambda_ms(kApt));
}

// Appendix B, Tables 15/16: alternative-assignment counts grow with α —
// none to speak of at 1.5, dozens at 4.
TEST_P(PaperShape, AlternativeAssignmentsGrowWithAlpha) {
  const Grid& tight = grid_alpha(GetParam(), 1.5);
  const Grid& loose = grid_alpha(GetParam(), 4.0);
  std::size_t alts_tight = 0;
  std::size_t alts_loose = 0;
  for (std::size_t g = 0; g < tight.experiment_count(); ++g) {
    alts_tight += tight.cells[g][kApt].alternative_count;
    alts_loose += loose.cells[g][kApt].alternative_count;
  }
  EXPECT_LT(alts_tight, alts_loose);
  EXPECT_GE(alts_loose, 50u);  // paper: 17-47 per experiment at α=4
}

// Appendix B: at α=4 the alternatives include the kernels whose
// second-best processor is within 4x (nw, bfs, srad, mi) but not mm
// (whose GPU dominance is 4-6 orders of magnitude).
TEST_P(PaperShape, AlternativeKernelMixMatchesAppendixB) {
  const Grid& grid = grid_alpha(GetParam(), 4.0);
  std::map<std::string, std::size_t> totals;
  for (std::size_t g = 0; g < grid.experiment_count(); ++g) {
    for (const auto& [kernel, count] :
         grid.cells[g][kApt].alternative_by_kernel)
      totals[kernel] += count;
  }
  EXPECT_EQ(totals.count("mm"), 0u);
  EXPECT_GT(totals["nw"] + totals["bfs"] + totals["srad"] + totals["mi"], 0u);
}

INSTANTIATE_TEST_SUITE_P(BothDfgTypes, PaperShape,
                         ::testing::Values(dag::DfgType::Type1,
                                           dag::DfgType::Type2),
                         [](const ::testing::TestParamInfo<dag::DfgType>& i) {
                           return i.param == dag::DfgType::Type1 ? "Type1"
                                                                 : "Type2";
                         });

}  // namespace
}  // namespace apt::core
