#include "policies/peft.hpp"

#include <gtest/gtest.h>

#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "test_helpers.hpp"

namespace apt::policies {
namespace {

TEST(PeftOct, ExitTaskRowsAreZero) {
  const auto ex = test::topcuoglu_example();
  const sim::System sys = test::generic_system(3);
  const auto oct = peft_oct(ex.dag, sys, *ex.cost);
  for (double v : oct[9]) EXPECT_DOUBLE_EQ(v, 0.0);  // t10 is the exit
}

TEST(PeftOct, PenultimateRowIsChildCostPlusComm) {
  const auto ex = test::topcuoglu_example();
  const sim::System sys = test::generic_system(3);
  const auto oct = peft_oct(ex.dag, sys, *ex.cost);
  // For t7 (node 6) the only child is t10 (w = {21,7,16}, comm 17).
  // OCT(t7, pk) = min_pw( w(t10,pw) + (pw==pk ? 0 : 17) )
  //   pk=0: min(21, 7+17, 16+17) = 21
  //   pk=1: min(21+17, 7, 33) = 7
  //   pk=2: min(38, 24, 16) = 16
  EXPECT_DOUBLE_EQ(oct[6][0], 21.0);
  EXPECT_DOUBLE_EQ(oct[6][1], 7.0);
  EXPECT_DOUBLE_EQ(oct[6][2], 16.0);
}

TEST(PeftOct, ValuesGrowTowardTheEntry) {
  const auto ex = test::topcuoglu_example();
  const sim::System sys = test::generic_system(3);
  const auto oct = peft_oct(ex.dag, sys, *ex.cost);
  const auto rank = peft_rank_oct(oct);
  // The entry task dominates every other rank_oct in this DAG.
  for (std::size_t i = 1; i < rank.size(); ++i) EXPECT_GT(rank[0], rank[i]);
  EXPECT_DOUBLE_EQ(rank[9], 0.0);
}

TEST(PeftOct, ScalesLinearlyWithCosts) {
  // Doubling every exec and comm cost doubles the OCT.
  dag::Dag d = test::chain({{"a", 1}, {"b", 1}});
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost1({{1.0, 2.0}, {3.0, 4.0}});
  cost1.set_comm_cost(0, 1, 5.0);
  sim::MatrixCostModel cost2({{2.0, 4.0}, {6.0, 8.0}});
  cost2.set_comm_cost(0, 1, 10.0);
  const auto oct1 = peft_oct(d, sys, cost1);
  const auto oct2 = peft_oct(d, sys, cost2);
  for (std::size_t i = 0; i < oct1.size(); ++i) {
    for (std::size_t p = 0; p < oct1[i].size(); ++p)
      EXPECT_DOUBLE_EQ(oct2[i][p], 2.0 * oct1[i][p]);
  }
}

TEST(PeftRank, MeanOfRows) {
  const std::vector<std::vector<double>> oct = {{3.0, 6.0, 9.0}, {0, 0, 0}};
  const auto rank = peft_rank_oct(oct);
  EXPECT_DOUBLE_EQ(rank[0], 6.0);
  EXPECT_DOUBLE_EQ(rank[1], 0.0);
}

TEST(Peft, ProducesAValidCompetitiveSchedule) {
  const auto ex = test::topcuoglu_example();
  const sim::System sys = test::generic_system(3);
  Peft peft;
  const auto result = test::run_and_validate(peft, ex.dag, sys, *ex.cost);
  // PEFT's makespan on this DAG should be in HEFT's ballpark (the PEFT
  // paper reports parity-or-better on average, not on every instance).
  EXPECT_LE(result.makespan, 95.0);
  EXPECT_GE(result.makespan, 73.0);  // the known optimum region
}

TEST(Peft, SimulatedExecutionMatchesThePlan) {
  const auto ex = test::topcuoglu_example();
  const sim::System sys = test::generic_system(3);
  Peft peft;
  const auto result = test::run_and_validate(peft, ex.dag, sys, *ex.cost);
  for (dag::NodeId n = 0; n < ex.dag.node_count(); ++n) {
    EXPECT_EQ(result.schedule[n].proc, peft.plan().tasks[n].proc);
    EXPECT_NEAR(result.schedule[n].exec_start, peft.plan().tasks[n].start,
                1e-9);
  }
}

TEST(Peft, HandlesPaperWorkloads) {
  for (dag::DfgType type : {dag::DfgType::Type1, dag::DfgType::Type2}) {
    const dag::Dag graph = dag::paper_graph(type, 0);
    const sim::System sys = test::paper_system();
    const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
    Peft peft;
    test::run_and_validate(peft, graph, sys, cost);
  }
}

TEST(Peft, OnHomogeneousCostsOctIsPathLength) {
  // Unit costs, no comm: OCT(t, p) = longest remaining path in *children*
  // work terms.
  const dag::Dag d = test::chain({{"a", 1}, {"b", 1}, {"c", 1}});
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}});
  const auto oct = peft_oct(d, sys, cost);
  EXPECT_DOUBLE_EQ(oct[2][0], 0.0);
  EXPECT_DOUBLE_EQ(oct[1][0], 1.0);
  EXPECT_DOUBLE_EQ(oct[0][0], 2.0);
}

}  // namespace
}  // namespace apt::policies
