#include "lut/lookup_table.hpp"

#include <gtest/gtest.h>

#include "lut/paper_data.hpp"

namespace apt::lut {
namespace {

Entry make_entry(const char* kernel, std::uint64_t size, double c, double g,
                 double f) {
  Entry e;
  e.kernel = kernel;
  e.data_size = size;
  e.time_ms = {c, g, f};
  return e;
}

TEST(ProcType, RoundTripsThroughStrings) {
  for (ProcType t : kAllProcTypes)
    EXPECT_EQ(proc_type_from_string(to_string(t)), t);
  EXPECT_EQ(proc_type_from_string("fpga"), ProcType::FPGA);
  EXPECT_EQ(proc_type_from_string("  Gpu "), ProcType::GPU);
  EXPECT_THROW(proc_type_from_string("asic"), std::invalid_argument);
}

TEST(KernelNames, CanonicalisesTheThesisSpellings) {
  EXPECT_EQ(canonical_kernel_name("Matrix Multiplication"), kernels::kMatMul);
  EXPECT_EQ(canonical_kernel_name("Matrix-Matrix Multiplication"),
            kernels::kMatMul);
  EXPECT_EQ(canonical_kernel_name("Mat.Mat. Multi."), kernels::kMatMul);
  EXPECT_EQ(canonical_kernel_name("Matrix Inverse"), kernels::kMatInv);
  EXPECT_EQ(canonical_kernel_name("Cholesky Decomposition"),
            kernels::kCholesky);
  EXPECT_EQ(canonical_kernel_name("Needleman Wunsch"),
            kernels::kNeedlemanWunsch);
  EXPECT_EQ(canonical_kernel_name("BFS"), kernels::kBfs);
  EXPECT_EQ(canonical_kernel_name("SRAD"), kernels::kSrad);
  EXPECT_EQ(canonical_kernel_name("GEM"), kernels::kGem);
  EXPECT_EQ(canonical_kernel_name("unknown thing"), "unknown thing");
}

TEST(LookupTable, AddAndExactQuery) {
  LookupTable t;
  t.add(make_entry("mm", 100, 1.0, 2.0, 3.0));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.contains("mm", 100));
  EXPECT_FALSE(t.contains("mm", 101));
  EXPECT_DOUBLE_EQ(t.exec_time_ms("mm", 100, ProcType::CPU), 1.0);
  EXPECT_DOUBLE_EQ(t.exec_time_ms("mm", 100, ProcType::GPU), 2.0);
  EXPECT_DOUBLE_EQ(t.exec_time_ms("mm", 100, ProcType::FPGA), 3.0);
}

TEST(LookupTable, QueriesCanonicaliseNames) {
  LookupTable t;
  t.add(make_entry("Matrix Multiplication", 100, 1.0, 2.0, 3.0));
  EXPECT_TRUE(t.contains("mm", 100));
  EXPECT_DOUBLE_EQ(t.exec_time_ms("MatMul", 100, ProcType::CPU), 1.0);
}

TEST(LookupTable, DuplicateRowThrows) {
  LookupTable t;
  t.add(make_entry("mm", 100, 1.0, 2.0, 3.0));
  EXPECT_THROW(t.add(make_entry("mm", 100, 9.0, 9.0, 9.0)),
               std::invalid_argument);
}

TEST(LookupTable, RejectsNonPositiveTimes) {
  LookupTable t;
  EXPECT_THROW(t.add(make_entry("mm", 1, 0.0, 1.0, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(t.add(make_entry("mm", 2, -1.0, 1.0, 1.0)),
               std::invalid_argument);
}

TEST(LookupTable, MissingRowThrows) {
  LookupTable t;
  EXPECT_THROW(t.at("mm", 100), std::out_of_range);
}

TEST(LookupTable, BestProcessorAndOrdering) {
  LookupTable t;
  t.add(make_entry("k", 1, 5.0, 1.0, 3.0));
  EXPECT_EQ(t.best_processor("k", 1), ProcType::GPU);
  const auto order = t.processors_by_time("k", 1);
  EXPECT_EQ(order,
            (std::vector<ProcType>{ProcType::GPU, ProcType::FPGA,
                                   ProcType::CPU}));
}

TEST(LookupTable, BestProcessorTieBreaksTowardCpu) {
  LookupTable t;
  t.add(make_entry("k", 1, 2.0, 2.0, 5.0));
  EXPECT_EQ(t.best_processor("k", 1), ProcType::CPU);
}

TEST(LookupTable, HeterogeneityRatio) {
  LookupTable t;
  t.add(make_entry("k", 1, 10.0, 2.0, 5.0));
  EXPECT_DOUBLE_EQ(t.heterogeneity("k", 1), 5.0);
}

TEST(LookupTable, NearestPicksLogClosestSize) {
  LookupTable t;
  t.add(make_entry("k", 1000, 1.0, 1.0, 1.0));
  t.add(make_entry("k", 1000000, 2.0, 2.0, 2.0));
  EXPECT_EQ(t.nearest("k", 2000).data_size, 1000u);
  EXPECT_EQ(t.nearest("k", 900000).data_size, 1000000u);
  EXPECT_THROW(t.nearest("other", 10), std::out_of_range);
}

TEST(LookupTable, KernelsAndSizesEnumeration) {
  LookupTable t;
  t.add(make_entry("b", 2, 1, 1, 1));
  t.add(make_entry("a", 5, 1, 1, 1));
  t.add(make_entry("a", 3, 1, 1, 1));
  EXPECT_EQ(t.kernels(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(t.sizes_for("a"), (std::vector<std::uint64_t>{3, 5}));
  EXPECT_TRUE(t.sizes_for("zzz").empty());
}

TEST(LookupTable, CsvRoundTrip) {
  LookupTable t;
  t.add(make_entry("mm", 100, 1.5, 2.25, 3.125));
  t.add(make_entry("nw", 200, 10.0, 20.0, 30.0));
  const LookupTable back = LookupTable::from_csv(t.to_csv());
  EXPECT_EQ(back.size(), 2u);
  EXPECT_DOUBLE_EQ(back.exec_time_ms("mm", 100, ProcType::GPU), 2.25);
  EXPECT_DOUBLE_EQ(back.exec_time_ms("nw", 200, ProcType::FPGA), 30.0);
}

TEST(LookupTable, CsvFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/apt_lut_test.csv";
  const LookupTable t = paper_lookup_table();
  t.save_csv_file(path);
  const LookupTable back = LookupTable::from_csv_file(path);
  EXPECT_EQ(back.size(), t.size());
  EXPECT_DOUBLE_EQ(back.exec_time_ms("mm", 64000000, ProcType::CPU),
                   t.exec_time_ms("mm", 64000000, ProcType::CPU));
  std::remove(path.c_str());
}

// --- Paper data (Table 14) ----------------------------------------------------

TEST(PaperData, Has25Rows) {
  EXPECT_EQ(paper_lookup_table().size(), 25u);
}

TEST(PaperData, SevenKernels) {
  const auto kernels = paper_lookup_table().kernels();
  EXPECT_EQ(kernels.size(), 7u);
  for (const char* k : {"bfs", "cd", "gem", "mi", "mm", "nw", "srad"})
    EXPECT_NE(std::find(kernels.begin(), kernels.end(), k), kernels.end())
        << k;
}

TEST(PaperData, LinearAlgebraKernelsHaveSevenSizes) {
  const auto t = paper_lookup_table();
  for (const char* k : {"mm", "mi", "cd"})
    EXPECT_EQ(t.sizes_for(k), paper_linear_algebra_sizes()) << k;
}

TEST(PaperData, SpotChecksAgainstTable14) {
  const auto t = paper_lookup_table();
  EXPECT_DOUBLE_EQ(t.exec_time_ms("mm", 16000000, ProcType::CPU), 1967.286);
  EXPECT_DOUBLE_EQ(t.exec_time_ms("mm", 16000000, ProcType::GPU), 0.061);
  EXPECT_DOUBLE_EQ(t.exec_time_ms("mm", 16000000, ProcType::FPGA), 76293.945);
  EXPECT_DOUBLE_EQ(t.exec_time_ms("cd", 250000, ProcType::FPGA), 0.093);
  EXPECT_DOUBLE_EQ(t.exec_time_ms("mi", 698896, ProcType::GPU), 22.352);
  EXPECT_DOUBLE_EQ(t.exec_time_ms("nw", 16777216, ProcType::CPU), 112.0);
  EXPECT_DOUBLE_EQ(t.exec_time_ms("bfs", 2034736, ProcType::FPGA), 106.0);
  EXPECT_DOUBLE_EQ(t.exec_time_ms("srad", 134217728, ProcType::GPU), 1600.0);
  EXPECT_DOUBLE_EQ(t.exec_time_ms("gem", 2070376, ProcType::FPGA), 585760.0);
}

TEST(PaperData, BestProcessorsMatchTheThesisNarrative) {
  const auto t = paper_lookup_table();
  // Table 7's "far apart execution times": nw->CPU, bfs->FPGA, cd->FPGA.
  EXPECT_EQ(t.best_processor("nw", 16777216), ProcType::CPU);
  EXPECT_EQ(t.best_processor("bfs", 2034736), ProcType::FPGA);
  EXPECT_EQ(t.best_processor("cd", 250000), ProcType::FPGA);
  // GPU dominates matrix multiplication at every size.
  for (std::uint64_t size : paper_linear_algebra_sizes())
    EXPECT_EQ(t.best_processor("mm", size), ProcType::GPU);
  EXPECT_EQ(t.best_processor("srad", 134217728), ProcType::GPU);
  EXPECT_EQ(t.best_processor("gem", 2070376), ProcType::GPU);
}

TEST(PaperData, DwarfSizes) {
  EXPECT_EQ(paper_dwarf_size("nw"), 16777216u);
  EXPECT_EQ(paper_dwarf_size("bfs"), 2034736u);
  EXPECT_EQ(paper_dwarf_size("srad"), 134217728u);
  EXPECT_EQ(paper_dwarf_size("gem"), 2070376u);
  EXPECT_THROW(paper_dwarf_size("mm"), std::invalid_argument);
}

TEST(PaperData, SystemIsHighlyHeterogeneous) {
  // The premise of the thesis: large heterogeneity ratios across kernels.
  const auto t = paper_lookup_table();
  EXPECT_GT(t.heterogeneity("mm", 64000000), 1e6);   // GPU vs FPGA
  EXPECT_GT(t.heterogeneity("gem", 2070376), 100.0);  // GPU vs FPGA
  EXPECT_LT(t.heterogeneity("nw", 16777216), 4.0);    // mild for nw
}


TEST(Heterogeneity, GeometricMeanAndMedian) {
  LookupTable t;
  t.add(make_entry("a", 1, 1.0, 2.0, 4.0));   // ratio 4
  t.add(make_entry("b", 1, 1.0, 1.0, 16.0));  // ratio 16
  EXPECT_DOUBLE_EQ(geometric_mean_heterogeneity(t), 8.0);  // sqrt(4*16)
  EXPECT_DOUBLE_EQ(median_heterogeneity(t), 10.0);         // (4+16)/2
  t.add(make_entry("c", 1, 3.0, 3.0, 3.0));   // ratio 1
  EXPECT_DOUBLE_EQ(median_heterogeneity(t), 4.0);
}

TEST(Heterogeneity, EmptyTableThrows) {
  LookupTable empty;
  EXPECT_THROW(geometric_mean_heterogeneity(empty), std::invalid_argument);
  EXPECT_THROW(median_heterogeneity(empty), std::invalid_argument);
}

TEST(Heterogeneity, PaperTableIsHighlyHeterogeneous) {
  const LookupTable t = paper_lookup_table();
  EXPECT_GT(geometric_mean_heterogeneity(t), 10.0);
  EXPECT_GT(median_heterogeneity(t), 3.0);
  EXPECT_LT(median_heterogeneity(t), geometric_mean_heterogeneity(t) * 100.0);
}

}  // namespace
}  // namespace apt::lut
