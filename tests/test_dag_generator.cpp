#include "dag/generator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "dag/serialize.hpp"
#include "lut/paper_data.hpp"

namespace apt::dag {
namespace {

TEST(KernelPool, PaperPoolHasSevenKernels) {
  const KernelPool pool = KernelPool::paper_pool();
  EXPECT_EQ(pool.items.size(), 7u);
  for (const auto& item : pool.items) EXPECT_FALSE(item.sizes.empty());
}

TEST(KernelPool, FromLookupTableCoversEverySize) {
  const auto table = lut::paper_lookup_table();
  const KernelPool pool = KernelPool::from_lookup_table(table);
  std::size_t total = 0;
  for (const auto& item : pool.items) total += item.sizes.size();
  EXPECT_EQ(total, table.size());
}

TEST(RandomSeries, DeterministicPerSeed) {
  const KernelPool pool = KernelPool::paper_pool();
  const auto a = random_kernel_series(50, 7, pool);
  const auto b = random_kernel_series(50, 7, pool);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kernel, b[i].kernel);
    EXPECT_EQ(a[i].data_size, b[i].data_size);
  }
}

TEST(RandomSeries, DifferentSeedsDiffer) {
  const KernelPool pool = KernelPool::paper_pool();
  const auto a = random_kernel_series(50, 7, pool);
  const auto b = random_kernel_series(50, 8, pool);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].kernel != b[i].kernel || a[i].data_size != b[i].data_size)
      any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomSeries, OnlyDrawsFromThePool) {
  const KernelPool pool = KernelPool::paper_pool();
  const auto table = lut::paper_lookup_table();
  for (const Node& n : random_kernel_series(200, 3, pool))
    EXPECT_TRUE(table.contains(n.kernel, n.data_size))
        << n.kernel << " " << n.data_size;
}

TEST(RandomSeries, EmptyPoolThrows) {
  EXPECT_THROW(random_kernel_series(5, 1, KernelPool{}),
               std::invalid_argument);
}

// --- DFG Type-1 ---------------------------------------------------------------

TEST(Type1, ShapeIsLevel1PlusSink) {
  const auto series = random_kernel_series(9, 1, KernelPool::paper_pool());
  const Dag d = make_type1(series);
  ASSERT_EQ(d.node_count(), 9u);
  EXPECT_EQ(d.edge_count(), 8u);
  // Nodes 0..7 independent, all feeding node 8.
  for (NodeId i = 0; i < 8; ++i) {
    EXPECT_EQ(d.in_degree(i), 0u);
    EXPECT_EQ(d.successors(i), (std::vector<NodeId>{8}));
  }
  EXPECT_EQ(d.in_degree(8), 8u);
  EXPECT_EQ(d.out_degree(8), 0u);
  EXPECT_EQ(d.depth(), 2u);
  EXPECT_TRUE(d.is_weakly_connected());
}

TEST(Type1, MinimumSizeEnforced) {
  const auto series = random_kernel_series(1, 1, KernelPool::paper_pool());
  EXPECT_THROW(make_type1(series), std::invalid_argument);
}

TEST(Type1, PreservesSeriesOrderAsNodeIds) {
  std::vector<Node> series = {{"nw", 16777216}, {"bfs", 2034736},
                              {"cd", 250000}};
  const Dag d = make_type1(series);
  EXPECT_EQ(d.node(0).kernel, "nw");
  EXPECT_EQ(d.node(1).kernel, "bfs");
  EXPECT_EQ(d.node(2).kernel, "cd");
}

// --- DFG Type-2 ---------------------------------------------------------------

TEST(Type2, BlockWidthsAbsorbTheKernelCount) {
  const auto w46 = type2_block_widths(46);
  EXPECT_EQ(w46[0] + w46[1] + w46[2], 46u - 12u);
  const auto w157 = type2_block_widths(157);
  EXPECT_EQ(w157[0] + w157[1] + w157[2], 157u - 12u);
  // Remainder spreads to the earlier blocks.
  const auto w16 = type2_block_widths(16);
  EXPECT_EQ(w16, (std::array<std::size_t, 3>{2, 1, 1}));
}

TEST(Type2, TooSmallThrows) {
  EXPECT_THROW(type2_block_widths(14), std::invalid_argument);
}

TEST(Type2, StructuralShape) {
  const auto series = random_kernel_series(46, 5, KernelPool::paper_pool());
  const Dag d = make_type2(series);
  ASSERT_EQ(d.node_count(), 46u);
  EXPECT_TRUE(d.is_weakly_connected());

  // Exactly one exit: the final join kernel (last node id).
  const auto exits = d.exit_nodes();
  ASSERT_EQ(exits.size(), 1u);
  EXPECT_EQ(exits.front(), static_cast<NodeId>(45));
  // Join depends on block-3's bottom + 3 singletons.
  EXPECT_EQ(d.in_degree(45), 4u);

  // Entries: block-1 top + the 3 singletons.
  EXPECT_EQ(d.entry_nodes().size(), 4u);

  // Three diamond blocks: count nodes with out-degree == width (tops) by
  // checking the known widths.
  const auto widths = type2_block_widths(46);
  const auto tops = d.entry_nodes();  // block-1 top is the minimum entry id
  const NodeId top1 = *std::min_element(tops.begin(), tops.end());
  EXPECT_EQ(d.out_degree(top1), widths[0]);
}

TEST(Type2, DepthGrowsWithBlockPipeline) {
  const auto series = random_kernel_series(46, 5, KernelPool::paper_pool());
  const Dag d = make_type2(series);
  // top+mid+bottom (3) per block, chain (1) between blocks, join (1):
  // 3*3 + 2*1 + 1 = 12 levels.
  EXPECT_EQ(d.depth(), 12u);
}

TEST(Type2, MiddleKernelsAreIndependentWithinABlock) {
  const auto series = random_kernel_series(20, 9, KernelPool::paper_pool());
  const Dag d = make_type2(series);
  const auto widths = type2_block_widths(20);
  // Block 1 occupies ids [0, widths[0]+2): top=0, mids, bottom.
  const NodeId top = 0;
  const NodeId bottom = static_cast<NodeId>(widths[0] + 1);
  for (NodeId mid = 1; mid < bottom; ++mid) {
    EXPECT_EQ(d.predecessors(mid), (std::vector<NodeId>{top}));
    EXPECT_EQ(d.successors(mid), (std::vector<NodeId>{bottom}));
  }
}

// --- Paper workloads -----------------------------------------------------------

TEST(PaperWorkload, TenExperimentsWithPublishedKernelCounts) {
  const std::vector<std::size_t> expected = {46, 58,  50, 73,  69,
                                             81, 125, 93, 132, 157};
  EXPECT_EQ(paper_experiment_sizes(), expected);
  for (DfgType type : {DfgType::Type1, DfgType::Type2}) {
    const auto graphs = paper_workload(type);
    ASSERT_EQ(graphs.size(), 10u);
    for (std::size_t i = 0; i < graphs.size(); ++i)
      EXPECT_EQ(graphs[i].node_count(), expected[i]) << to_string(type) << i;
  }
}

TEST(PaperWorkload, DeterministicAcrossCalls) {
  const Dag a = paper_graph(DfgType::Type2, 3);
  const Dag b = paper_graph(DfgType::Type2, 3);
  EXPECT_EQ(to_text(a), to_text(b));
}

TEST(PaperWorkload, ExperimentsDifferFromEachOther) {
  const Dag a = paper_graph(DfgType::Type1, 0);
  const Dag b = paper_graph(DfgType::Type1, 1);
  EXPECT_NE(to_text(a), to_text(b));
}

TEST(PaperWorkload, TypesDifferForSameIndex) {
  const Dag t1 = paper_graph(DfgType::Type1, 0);
  const Dag t2 = paper_graph(DfgType::Type2, 0);
  EXPECT_NE(to_text(t1), to_text(t2));
  EXPECT_EQ(t1.node_count(), t2.node_count());
}

TEST(PaperWorkload, IndexOutOfRangeThrows) {
  EXPECT_THROW(paper_graph(DfgType::Type1, 10), std::out_of_range);
}

TEST(PaperWorkload, UsesSeveralDistinctKernels) {
  const Dag d = paper_graph(DfgType::Type1, 0);
  std::set<std::string> kernels;
  for (NodeId i = 0; i < d.node_count(); ++i) kernels.insert(d.node(i).kernel);
  EXPECT_GE(kernels.size(), 4u);
}

// --- Random layered DAG ---------------------------------------------------------

TEST(LayeredDag, RespectsLayerCountAndConnectivity) {
  const Dag d = random_layered_dag(40, 5, 0.1, 11, KernelPool::paper_pool());
  EXPECT_EQ(d.node_count(), 40u);
  EXPECT_EQ(d.depth(), 5u);
  // Every non-first-layer node has at least one parent.
  std::size_t entries = 0;
  for (NodeId i = 0; i < d.node_count(); ++i)
    if (d.in_degree(i) == 0) ++entries;
  EXPECT_EQ(entries, 8u);  // 40/5 nodes in layer 0
}

TEST(LayeredDag, ZeroProbabilityGivesTreeLikeMinimum) {
  const Dag d = random_layered_dag(20, 4, 0.0, 11, KernelPool::paper_pool());
  // Exactly one mandatory parent per non-entry node.
  EXPECT_EQ(d.edge_count(), 20u - 5u);
}

TEST(LayeredDag, DeterministicPerSeed) {
  const Dag a = random_layered_dag(30, 4, 0.3, 17, KernelPool::paper_pool());
  const Dag b = random_layered_dag(30, 4, 0.3, 17, KernelPool::paper_pool());
  EXPECT_EQ(to_text(a), to_text(b));
}

TEST(LayeredDag, RejectsBadArguments) {
  const auto pool = KernelPool::paper_pool();
  EXPECT_THROW(random_layered_dag(3, 0, 0.1, 1, pool), std::invalid_argument);
  EXPECT_THROW(random_layered_dag(3, 5, 0.1, 1, pool), std::invalid_argument);
  EXPECT_THROW(random_layered_dag(9, 3, 1.5, 1, pool), std::invalid_argument);
}

TEST(DfgType, Names) {
  EXPECT_STREQ(to_string(DfgType::Type1), "DFG Type-1");
  EXPECT_STREQ(to_string(DfgType::Type2), "DFG Type-2");
}

}  // namespace
}  // namespace apt::dag
