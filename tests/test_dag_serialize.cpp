#include "dag/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "dag/generator.hpp"
#include "test_helpers.hpp"

namespace apt::dag {
namespace {

TEST(TextFormat, RoundTripsDiamond) {
  const Dag d = test::diamond(
      {{"nw", 16777216}, {"bfs", 2034736}, {"mm", 250000}, {"cd", 250000}});
  const Dag back = from_text(to_text(d));
  EXPECT_EQ(back.node_count(), d.node_count());
  EXPECT_EQ(back.edge_count(), d.edge_count());
  for (NodeId i = 0; i < d.node_count(); ++i) {
    EXPECT_EQ(back.node(i).kernel, d.node(i).kernel);
    EXPECT_EQ(back.node(i).data_size, d.node(i).data_size);
    EXPECT_EQ(back.successors(i), d.successors(i));
  }
}

TEST(TextFormat, RoundTripsPaperGraphs) {
  for (DfgType type : {DfgType::Type1, DfgType::Type2}) {
    const Dag d = paper_graph(type, 4);
    const Dag back = from_text(to_text(d));
    EXPECT_EQ(to_text(back), to_text(d));
  }
}

TEST(TextFormat, IgnoresCommentsAndBlankLines) {
  const Dag d = from_text(
      "# header comment\n"
      "\n"
      "node 0 nw 100\n"
      "  # indented comment\n"
      "node 1 bfs 200\n"
      "edge 0 1\n");
  EXPECT_EQ(d.node_count(), 2u);
  EXPECT_TRUE(d.has_edge(0, 1));
}

TEST(TextFormat, RejectsMalformedLines) {
  EXPECT_THROW(from_text("node 0 nw\n"), std::runtime_error);
  EXPECT_THROW(from_text("node 1 nw 100\n"), std::runtime_error);  // sparse id
  EXPECT_THROW(from_text("node 0 nw 100\nedge 0\n"), std::runtime_error);
  EXPECT_THROW(from_text("frobnicate 1 2\n"), std::runtime_error);
}

TEST(TextFormat, RejectsEdgesThatBreakTheDag) {
  EXPECT_THROW(
      from_text("node 0 a 1\nnode 1 b 1\nedge 0 1\nedge 1 0\n"),
      std::logic_error);
}

TEST(TextFile, SaveAndLoad) {
  const std::string path = ::testing::TempDir() + "/apt_dag_test.txt";
  const Dag d = paper_graph(DfgType::Type1, 0);
  save_text_file(d, path);
  const Dag back = load_text_file(path);
  EXPECT_EQ(to_text(back), to_text(d));
  std::remove(path.c_str());
}

TEST(TextFile, MissingFileThrows) {
  EXPECT_THROW(load_text_file("/nonexistent/dir/g.txt"), std::runtime_error);
}

TEST(Dot, ContainsNodesAndEdges) {
  const Dag d = test::chain({{"nw", 16777216}, {"cd", 250000}});
  const std::string dot = to_dot(d, "example");
  EXPECT_NE(dot.find("digraph example {"), std::string::npos);
  EXPECT_NE(dot.find("n0 [label=\"0:nw"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1;"), std::string::npos);
  EXPECT_NE(dot.find("}"), std::string::npos);
}

TEST(Dot, EdgeCountMatches) {
  const Dag d = paper_graph(DfgType::Type2, 0);
  const std::string dot = to_dot(d);
  std::size_t arrows = 0;
  for (std::size_t pos = 0; (pos = dot.find("->", pos)) != std::string::npos;
       ++pos)
    ++arrows;
  EXPECT_EQ(arrows, d.edge_count());
}

}  // namespace
}  // namespace apt::dag
