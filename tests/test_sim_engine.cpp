// Engine mechanics exercised through tiny hand-written policies, so every
// behaviour (ready propagation, queues, transfer semantics, overheads,
// stall detection) is pinned independently of the real policies.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "core/policy_factory.hpp"
#include "test_helpers.hpp"

namespace apt::sim {
namespace {

/// Assigns every ready kernel to processor 0 immediately (FIFO).
class AllToProcZero : public Policy {
 public:
  std::string name() const override { return "all-to-p0"; }
  bool is_dynamic() const override { return true; }
  void on_event(SchedulerContext& ctx) override {
    while (!ctx.ready().empty() && ctx.is_idle(0))
      ctx.assign(ctx.ready().front(), 0);
  }
};

/// Enqueues everything onto processor 0 (exercises the queue path).
class EnqueueAllToProcZero : public Policy {
 public:
  std::string name() const override { return "enqueue-to-p0"; }
  bool is_dynamic() const override { return true; }
  void on_event(SchedulerContext& ctx) override {
    const std::vector<dag::NodeId> ready = ctx.ready();
    for (dag::NodeId n : ready) ctx.enqueue(n, 0);
  }
};

/// Does nothing: must trigger the stall detector.
class DoNothing : public Policy {
 public:
  std::string name() const override { return "do-nothing"; }
  bool is_dynamic() const override { return true; }
  void on_event(SchedulerContext&) override {}
};

/// Static-semantics single-assignment policy for transfer-prefetch tests.
class PrefetchedToProc : public Policy {
 public:
  explicit PrefetchedToProc(std::vector<ProcId> placement)
      : placement_(std::move(placement)) {}
  std::string name() const override { return "prefetched"; }
  bool is_dynamic() const override { return false; }
  void on_event(SchedulerContext& ctx) override {
    const std::vector<dag::NodeId> ready = ctx.ready();
    for (dag::NodeId n : ready) {
      if (ctx.is_idle(placement_[n])) ctx.assign(n, placement_[n]);
    }
  }

 private:
  std::vector<ProcId> placement_;
};

MatrixCostModel unit_cost(std::size_t nodes, std::size_t procs, double t = 1.0) {
  return MatrixCostModel(std::vector<std::vector<TimeMs>>(
      nodes, std::vector<TimeMs>(procs, t)));
}

TEST(Engine, EmptyDagYieldsEmptyResult) {
  dag::Dag d;
  const System sys = test::generic_system(1);
  const auto cost = unit_cost(1, 1);  // unused: the DAG is empty
  AllToProcZero policy;
  Engine engine(d, sys, cost);
  const auto result = engine.run(policy);
  EXPECT_DOUBLE_EQ(result.makespan, 0.0);
  EXPECT_TRUE(result.schedule.empty());
}

TEST(Engine, EmptyDagStillRunsPolicyPrepare) {
  // Regression: run() used to return before prepare() on an empty DAG, so
  // static policies saw an inconsistent lifecycle depending on the input.
  class PrepareProbe : public Policy {
   public:
    std::string name() const override { return "prepare-probe"; }
    bool is_dynamic() const override { return false; }
    void prepare(const dag::Dag&, const System&, const CostModel&) override {
      ++prepare_calls;
    }
    void on_event(SchedulerContext&) override {}
    int prepare_calls = 0;
  };
  dag::Dag d;
  const System sys = test::generic_system(1);
  const auto cost = unit_cost(1, 1);
  PrepareProbe policy;
  Engine engine(d, sys, cost);
  const auto result = engine.run(policy);
  EXPECT_EQ(policy.prepare_calls, 1);
  EXPECT_TRUE(result.schedule.empty());
}

TEST(Engine, EmptyDagWorksForEveryFactoryPolicy) {
  // Static policies must survive prepare() on the degenerate input too.
  dag::Dag d;
  const System sys = test::paper_system();
  for (const std::string spec : {"apt:4", "met", "spn", "ss", "ag", "heft",
                                 "peft", "minmin", "sufferage", "olb"}) {
    const auto policy = core::make_policy(spec);
    const LutCostModel cost(lut::paper_lookup_table(), sys);
    Engine engine(d, sys, cost);
    const auto result = engine.run(*policy);
    EXPECT_TRUE(result.schedule.empty()) << spec;
  }
}

TEST(Engine, ReadySetSurvivesOutOfOrderAssignment) {
  // Assign ready kernels in an order that punches holes all over the
  // ready list (last, first, middle) — the FIFO view the policy sees next
  // round must be exactly the un-assigned survivors in arrival order.
  class HolePuncher : public Policy {
   public:
    std::string name() const override { return "hole-puncher"; }
    bool is_dynamic() const override { return true; }
    void on_event(SchedulerContext& ctx) override {
      if (pass_ == 0) {
        const std::vector<dag::NodeId> snapshot = ctx.ready();
        EXPECT_EQ(snapshot, (std::vector<dag::NodeId>{0, 1, 2, 3, 4, 5}));
        ctx.assign(5, 0);  // tombstone at the back
        EXPECT_EQ(ctx.ready(), (std::vector<dag::NodeId>{0, 1, 2, 3, 4}));
        ctx.assign(0, 1);  // tombstone at the front
        ctx.assign(2, 2);  // tombstone in the middle
        EXPECT_EQ(ctx.ready(), (std::vector<dag::NodeId>{1, 3, 4}));
        ++pass_;
        return;
      }
      // Later passes: drain whatever is left FIFO onto idle processors.
      while (!ctx.ready().empty() && !ctx.idle_processors().empty()) {
        const dag::NodeId n = ctx.ready().front();
        ctx.assign(n, ctx.idle_processors().front());
      }
    }
    int pass_ = 0;
  };
  dag::Dag d;
  for (int i = 0; i < 6; ++i) d.add_node("k", 1);
  const System sys = test::generic_system(3);
  const auto cost = unit_cost(6, 3, 2.0);
  HolePuncher policy;
  Engine engine(d, sys, cost);
  const auto result = engine.run(policy);
  EXPECT_DOUBLE_EQ(result.makespan, 4.0);  // 6 kernels, 3 procs, 2 ms each
}

TEST(Engine, SingleKernelRunsAtTimeZero) {
  dag::Dag d;
  d.add_node("k", 1);
  const System sys = test::generic_system(1);
  const auto cost = unit_cost(1, 1, 5.0);
  AllToProcZero policy;
  Engine engine(d, sys, cost);
  const auto result = engine.run(policy);
  EXPECT_DOUBLE_EQ(result.makespan, 5.0);
  EXPECT_DOUBLE_EQ(result.schedule[0].ready_time, 0.0);
  EXPECT_DOUBLE_EQ(result.schedule[0].exec_start, 0.0);
  EXPECT_DOUBLE_EQ(result.schedule[0].finish_time, 5.0);
}

TEST(Engine, ChainSerialisesAndPropagatesReadyTimes) {
  const dag::Dag d = test::chain({{"a", 1}, {"b", 1}, {"c", 1}});
  const System sys = test::generic_system(1);
  const auto cost = unit_cost(3, 1, 2.0);
  AllToProcZero policy;
  Engine engine(d, sys, cost);
  const auto result = engine.run(policy);
  EXPECT_DOUBLE_EQ(result.makespan, 6.0);
  EXPECT_DOUBLE_EQ(result.schedule[1].ready_time, 2.0);
  EXPECT_DOUBLE_EQ(result.schedule[2].ready_time, 4.0);
  for (const auto& k : result.schedule) EXPECT_DOUBLE_EQ(k.wait_ms(), 0.0);
}

TEST(Engine, IndependentKernelsSerialiseOnOneProcessorWithWaits) {
  dag::Dag d;
  for (int i = 0; i < 3; ++i) d.add_node("k", 1);
  const System sys = test::generic_system(1);
  const auto cost = unit_cost(3, 1, 4.0);
  AllToProcZero policy;
  Engine engine(d, sys, cost);
  const auto result = engine.run(policy);
  EXPECT_DOUBLE_EQ(result.makespan, 12.0);
  // λ waits accumulate: 0, 4, 8.
  EXPECT_DOUBLE_EQ(result.schedule[0].wait_ms(), 0.0);
  EXPECT_DOUBLE_EQ(result.schedule[1].wait_ms(), 4.0);
  EXPECT_DOUBLE_EQ(result.schedule[2].wait_ms(), 8.0);
}

TEST(Engine, QueuePathMatchesDirectAssignmentTiming) {
  dag::Dag d;
  for (int i = 0; i < 3; ++i) d.add_node("k", 1);
  const System sys = test::generic_system(1);
  const auto cost = unit_cost(3, 1, 4.0);
  EnqueueAllToProcZero policy;
  Engine engine(d, sys, cost);
  const auto result = engine.run(policy);
  EXPECT_DOUBLE_EQ(result.makespan, 12.0);
  // Enqueued kernels are committed (assigned) at time 0 but wait inside
  // the queue — λ counts that queueing delay.
  for (const auto& k : result.schedule)
    EXPECT_DOUBLE_EQ(k.assign_time, 0.0);
  EXPECT_DOUBLE_EQ(result.schedule[0].wait_ms(), 0.0);
  EXPECT_DOUBLE_EQ(result.schedule[1].wait_ms(), 4.0);
  EXPECT_DOUBLE_EQ(result.schedule[2].wait_ms(), 8.0);
}

TEST(Engine, StallThrows) {
  dag::Dag d;
  d.add_node("k", 1);
  const System sys = test::generic_system(1);
  const auto cost = unit_cost(1, 1);
  DoNothing policy;
  Engine engine(d, sys, cost);
  EXPECT_THROW(engine.run(policy), std::logic_error);
}

TEST(Engine, AssignToBusyProcessorThrows) {
  class BadPolicy : public Policy {
   public:
    std::string name() const override { return "bad"; }
    bool is_dynamic() const override { return true; }
    void on_event(SchedulerContext& ctx) override {
      const std::vector<dag::NodeId> ready = ctx.ready();
      for (dag::NodeId n : ready) ctx.assign(n, 0);  // 2nd assign: p0 busy
    }
  };
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  const System sys = test::generic_system(1);
  const auto cost = unit_cost(2, 1);
  BadPolicy policy;
  Engine engine(d, sys, cost);
  EXPECT_THROW(engine.run(policy), std::logic_error);
}

TEST(Engine, AssignUnreadyNodeThrows) {
  class EagerPolicy : public Policy {
   public:
    std::string name() const override { return "eager"; }
    bool is_dynamic() const override { return true; }
    void on_event(SchedulerContext& ctx) override {
      if (!done_) {
        done_ = true;
        ctx.assign(1, 0);  // node 1 depends on node 0: not ready at t=0
      }
    }
    bool done_ = false;
  };
  const dag::Dag d = test::chain({{"a", 1}, {"b", 1}});
  const System sys = test::generic_system(1);
  const auto cost = unit_cost(2, 1);
  EagerPolicy policy;
  Engine engine(d, sys, cost);
  EXPECT_THROW(engine.run(policy), std::logic_error);
}

TEST(Engine, AtAssignmentTransferStallsTheConsumer) {
  // a on p0, b on p1: b must stall for the edge transfer after assignment.
  const dag::Dag d = test::chain({{"a", 1}, {"b", 1}});
  const System sys = test::generic_system(2);
  MatrixCostModel cost({{1.0, 100.0}, {100.0, 1.0}});
  cost.set_comm_cost(0, 1, 3.0);

  class SplitPolicy : public Policy {
   public:
    std::string name() const override { return "split"; }
    bool is_dynamic() const override { return true; }
    void on_event(SchedulerContext& ctx) override {
      const std::vector<dag::NodeId> ready = ctx.ready();
      for (dag::NodeId n : ready) ctx.assign(n, n == 0 ? 0 : 1);
    }
  };
  SplitPolicy policy;
  Engine engine(d, sys, cost);
  const auto result = engine.run(policy);
  EXPECT_DOUBLE_EQ(result.schedule[1].assign_time, 1.0);
  EXPECT_DOUBLE_EQ(result.schedule[1].exec_start, 4.0);  // +3ms transfer
  EXPECT_DOUBLE_EQ(result.schedule[1].transfer_stall_ms(), 3.0);
  EXPECT_DOUBLE_EQ(result.makespan, 5.0);
}

TEST(Engine, PrefetchedTransferOverlapsWithBusyProcessor) {
  // p1 is kept busy by an independent kernel while a's output transfers;
  // with Prefetched semantics b starts the moment p1 frees.
  dag::Dag d;
  d.add_node("a", 1);       // 0: on p0, 1 ms
  d.add_node("busy", 1);    // 1: on p1, 5 ms
  d.add_node("b", 1);       // 2: a->b, on p1
  d.add_edge(0, 2);
  const System sys = test::generic_system(2);
  MatrixCostModel cost({{1.0, 99.0}, {99.0, 5.0}, {99.0, 1.0}});
  cost.set_comm_cost(0, 2, 3.0);  // arrives at t = 1 + 3 = 4 < 5

  PrefetchedToProc policy({0, 1, 1});
  Engine engine(d, sys, cost);
  const auto result = engine.run(policy);
  EXPECT_DOUBLE_EQ(result.schedule[2].assign_time, 5.0);
  EXPECT_DOUBLE_EQ(result.schedule[2].exec_start, 5.0);  // data pre-arrived
  EXPECT_DOUBLE_EQ(result.schedule[2].transfer_stall_ms(), 0.0);
  EXPECT_DOUBLE_EQ(result.makespan, 6.0);
}

TEST(Engine, PrefetchedTransferStillStallsWhenDataIsLate) {
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  d.add_edge(0, 1);
  const System sys = test::generic_system(2);
  MatrixCostModel cost({{1.0, 99.0}, {99.0, 1.0}});
  cost.set_comm_cost(0, 1, 3.0);
  PrefetchedToProc policy({0, 1});
  Engine engine(d, sys, cost);
  const auto result = engine.run(policy);
  // b assigned as soon as ready (t=1) but data lands at t=4.
  EXPECT_DOUBLE_EQ(result.schedule[1].assign_time, 1.0);
  EXPECT_DOUBLE_EQ(result.schedule[1].exec_start, 4.0);
  EXPECT_DOUBLE_EQ(result.schedule[1].transfer_stall_ms(), 3.0);
}

TEST(Engine, DecisionAndDispatchOverheadsDelayExecution) {
  dag::Dag d;
  d.add_node("k", 1);
  SystemConfig cfg;
  cfg.processors = {lut::ProcType::CPU};
  cfg.decision_overhead_ms = 0.5;
  cfg.dispatch_overhead_ms = 0.25;
  const System sys(cfg);
  const auto cost = unit_cost(1, 1, 2.0);
  AllToProcZero policy;
  Engine engine(d, sys, cost);
  const auto result = engine.run(policy);
  EXPECT_DOUBLE_EQ(result.schedule[0].assign_time, 0.5);
  EXPECT_DOUBLE_EQ(result.schedule[0].exec_start, 0.75);
  EXPECT_DOUBLE_EQ(result.makespan, 2.75);
}

TEST(Engine, SimultaneousCompletionsProcessInOneBatch) {
  // Two 2ms kernels on two procs feed a sink; both finish at t=2 and the
  // sink must see ready_time == 2 exactly once.
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  d.add_node("sink", 1);
  d.add_edge(0, 2);
  d.add_edge(1, 2);
  const System sys = test::generic_system(2);
  const auto cost = unit_cost(3, 2, 2.0);

  class TwoProcPolicy : public Policy {
   public:
    std::string name() const override { return "two"; }
    bool is_dynamic() const override { return true; }
    void on_event(SchedulerContext& ctx) override {
      const std::vector<dag::NodeId> ready = ctx.ready();
      for (dag::NodeId n : ready) {
        const auto idle = ctx.idle_processors();
        if (!idle.empty()) ctx.assign(n, idle.front());
      }
    }
  };
  TwoProcPolicy policy;
  Engine engine(d, sys, cost);
  const auto result = engine.run(policy);
  EXPECT_DOUBLE_EQ(result.schedule[2].ready_time, 2.0);
  EXPECT_DOUBLE_EQ(result.makespan, 4.0);
}

TEST(Engine, ContextExposesQueueStateToPolicies) {
  class Introspector : public Policy {
   public:
    std::string name() const override { return "introspect"; }
    bool is_dynamic() const override { return true; }
    void on_event(SchedulerContext& ctx) override {
      if (first_) {
        first_ = false;
        EXPECT_TRUE(ctx.is_idle(0));
        EXPECT_DOUBLE_EQ(ctx.busy_until(0), ctx.now());
        EXPECT_EQ(ctx.queue_length(0), 0u);
        EXPECT_DOUBLE_EQ(ctx.queued_work_ms(0), 0.0);
        ctx.enqueue(0, 0);
        ctx.enqueue(1, 0);
        // After enqueueing two 4ms kernels nothing has started yet:
        EXPECT_EQ(ctx.queue_length(0), 2u);
        EXPECT_DOUBLE_EQ(ctx.queued_work_ms(0), 8.0);
        EXPECT_DOUBLE_EQ(ctx.busy_until(0), 8.0);
        EXPECT_FALSE(ctx.is_idle(0));
      } else {
        // After the first completion one execution time is in the history.
        EXPECT_DOUBLE_EQ(ctx.recent_avg_exec_ms(0, 5), 4.0);
      }
    }
    bool first_ = true;
  };
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  const System sys = test::generic_system(1);
  const auto cost = unit_cost(2, 1, 4.0);
  Introspector policy;
  Engine engine(d, sys, cost);
  const auto result = engine.run(policy);
  EXPECT_DOUBLE_EQ(result.makespan, 8.0);
}

TEST(Engine, RecentAvgExecWindowsCorrectly) {
  class Probe : public Policy {
   public:
    std::string name() const override { return "probe"; }
    bool is_dynamic() const override { return true; }
    void on_event(SchedulerContext& ctx) override {
      if (ctx.ready().empty()) {
        // all four done: history = [1, 2, 3, 4] on p0
        EXPECT_DOUBLE_EQ(ctx.recent_avg_exec_ms(0, 2), 3.5);
        EXPECT_DOUBLE_EQ(ctx.recent_avg_exec_ms(0, 4), 2.5);
        EXPECT_DOUBLE_EQ(ctx.recent_avg_exec_ms(0, 99), 2.5);
        EXPECT_DOUBLE_EQ(ctx.recent_avg_exec_ms(0, 0), 0.0);
        return;
      }
      if (ctx.is_idle(0)) ctx.assign(ctx.ready().front(), 0);
    }
  };
  const dag::Dag d = test::chain({{"a", 1}, {"b", 1}, {"c", 1}, {"d", 1}});
  const System sys = test::generic_system(1);
  MatrixCostModel cost({{1.0}, {2.0}, {3.0}, {4.0}});
  Probe policy;
  Engine engine(d, sys, cost);
  engine.run(policy);
}

TEST(Engine, InputTransferUsesWorstPredecessorEdge) {
  class Check : public Policy {
   public:
    std::string name() const override { return "check"; }
    bool is_dynamic() const override { return true; }
    void on_event(SchedulerContext& ctx) override {
      const std::vector<dag::NodeId> ready = ctx.ready();
      for (dag::NodeId n : ready) {
        if (n == 2) {
          // preds on p0 and p1; transfers to p2 are 5 and 2 -> max 5.
          EXPECT_DOUBLE_EQ(ctx.input_transfer_ms(2, 2), 5.0);
          EXPECT_DOUBLE_EQ(ctx.input_transfer_ms(2, 0), 2.0);  // only 1->0
          ctx.assign(2, 2);
        } else {
          ctx.assign(n, static_cast<ProcId>(n));
        }
      }
    }
  };
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  d.add_node("c", 1);
  d.add_edge(0, 2);
  d.add_edge(1, 2);
  const System sys = test::generic_system(3);
  MatrixCostModel cost(
      {{1.0, 9.0, 9.0}, {9.0, 1.0, 9.0}, {9.0, 9.0, 1.0}});
  cost.set_comm_cost(0, 2, 5.0);
  cost.set_comm_cost(1, 2, 2.0);
  Check policy;
  Engine engine(d, sys, cost);
  engine.run(policy);
}

}  // namespace
}  // namespace apt::sim
