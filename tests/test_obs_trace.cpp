// ChromeTraceWriter: Chrome-trace/Perfetto JSON structure, the golden
// byte-for-byte artifact of a fixed-seed run, the cap/decimation knobs, and
// hedge-race span roles.
#include "obs/trace_sink.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/policy_factory.hpp"
#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "net/topology.hpp"
#include "obs/profile.hpp"
#include "sim/engine.hpp"
#include "test_helpers.hpp"

#ifndef APTSIM_GOLDEN_DIR
#define APTSIM_GOLDEN_DIR "tests/golden"
#endif

namespace apt {
namespace {

sim::System mesh_system() {
  sim::SystemConfig cfg = sim::SystemConfig::paper_default();
  cfg.topology = net::parse_topology_spec("mesh:2x2");
  return sim::System(cfg);
}

/// The fixed-seed contended run every test here traces: type1, 24 kernels,
/// seed 3, apt:4 on the paper platform over a routed 2x2 mesh.
sim::SimResult traced_run(obs::TraceSink* sink,
                          obs::ChromeTraceWriter::Options options = {}) {
  (void)options;
  const lut::LookupTable table = lut::paper_lookup_table();
  const dag::Dag dag = dag::generate(dag::DfgType::Type1, 24, 3,
                                     dag::KernelPool::from_lookup_table(table));
  const sim::System system = mesh_system();
  const sim::LutCostModel cost(table, system);
  const auto policy = core::make_policy("apt:4");
  sim::EngineOptions engine_options;
  engine_options.sink = sink;
  sim::Engine engine(dag, system, cost, engine_options);
  return engine.run(*policy);
}

std::string render(const obs::ChromeTraceWriter& writer) {
  std::ostringstream out;
  writer.write(out);
  return out.str();
}

TEST(ChromeTrace, EmitsAllThreeTrackFamilies) {
  obs::ChromeTraceWriter writer{mesh_system()};
  traced_run(&writer);
  const std::string json = render(writer);

  // Process (track-group) names.
  EXPECT_NE(json.find("\"processors\""), std::string::npos);
  EXPECT_NE(json.find("\"links\""), std::string::npos);
  EXPECT_NE(json.find("\"events\""), std::string::npos);
  // Per-processor and per-link threads.
  EXPECT_NE(json.find("\"CPU0\""), std::string::npos);
  EXPECT_NE(json.find("\"GPU0\""), std::string::npos);
  EXPECT_NE(json.find("\"FPGA0\""), std::string::npos);
  EXPECT_NE(json.find("\"M0,0>M0,1\""), std::string::npos);
  // Span args carried by the kernel/transfer events.
  EXPECT_NE(json.find("\"route\""), std::string::npos);
  EXPECT_NE(json.find("\"bottleneck\""), std::string::npos);
  EXPECT_NE(json.find("\"noise_mult\""), std::string::npos);
  // A closed run has decisions but no stream lifecycle instants.
  EXPECT_NE(json.find("\"decision\""), std::string::npos);
  EXPECT_EQ(json.find("\"arrival\""), std::string::npos);
}

TEST(ChromeTrace, DeterministicAcrossRuns) {
  obs::ChromeTraceWriter a{mesh_system()};
  obs::ChromeTraceWriter b{mesh_system()};
  traced_run(&a);
  traced_run(&b);
  EXPECT_EQ(render(a), render(b));
}

TEST(ChromeTrace, GoldenRunTraceBytes) {
  // Freezes the exact trace of the fixed-seed run. A diff here means either
  // the simulated timeline moved (the golden regression suite will say so
  // too) or the trace encoding changed — if intentional, regenerate with:
  //   build/aptsim run --policy apt:4 --type 1 --kernels 24 --seed 3 \
  //     --topology mesh:2x2 --trace-out tests/golden/run_trace.json
  obs::ChromeTraceWriter writer{mesh_system()};
  traced_run(&writer);

  const std::string path = std::string(APTSIM_GOLDEN_DIR) + "/run_trace.json";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path;
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(render(writer), golden.str());
}

TEST(ChromeTrace, EventCapDropsButKeepsMetadata) {
  obs::ChromeTraceWriter::Options options;
  options.max_events = 5;
  obs::ChromeTraceWriter writer{mesh_system(), options};
  traced_run(&writer);

  EXPECT_EQ(writer.event_count(), 5u);
  EXPECT_GT(writer.dropped(), 0u);
  const std::string json = render(writer);
  // Track names survive the cap, so the (truncated) trace still renders
  // with named rows in the viewer.
  EXPECT_NE(json.find("\"processors\""), std::string::npos);
  EXPECT_NE(json.find("\"CPU0\""), std::string::npos);
}

TEST(ChromeTrace, DecimationKeepsEveryKth) {
  obs::ChromeTraceWriter full{mesh_system()};
  obs::ChromeTraceWriter::Options options;
  options.every = 2;
  obs::ChromeTraceWriter half{mesh_system(), options};
  traced_run(&full);
  traced_run(&half);

  EXPECT_GT(half.dropped(), 0u);
  EXPECT_LT(half.event_count(), full.event_count());
  // Per-category stride: at least half of each category survives, so the
  // total can't fall below half minus the three category round-downs.
  EXPECT_GE(half.event_count(), full.event_count() / 2 - 3);
}

TEST(ChromeTrace, TraceJsonShapeIsWellFormed) {
  obs::ChromeTraceWriter writer{mesh_system()};
  traced_run(&writer);
  const std::string json = render(writer);

  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity without a parser.
  long braces = 0;
  long brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ChromeTrace, HedgeRaceEmitsLaunchAndCancelledLoserSpan) {
  // Uncontended run with aggressive noise + hedging so races actually
  // happen; the trace must carry the launch instants and flag the losing
  // attempts as cancelled.
  const lut::LookupTable table = lut::paper_lookup_table();
  const dag::Dag dag = dag::generate(dag::DfgType::Type1, 24, 5,
                                     dag::KernelPool::from_lookup_table(table));
  const sim::System system = test::paper_system();
  const sim::LutCostModel cost(table, system);
  const auto policy = core::make_policy("apt:4");

  sim::EngineOptions options;
  options.noise.sigma = 0.3;
  options.noise.heavy_tail_prob = 0.2;
  options.noise.heavy_tail_multiplier = 30.0;
  options.noise.seed = 7;
  options.hedging.enabled = true;
  options.hedging.quantile = 0.5;
  options.hedging.threshold_factor = 1.2;
  options.hedging.min_samples = 4;
  obs::ChromeTraceWriter writer{system};
  options.sink = &writer;
  sim::Engine engine(dag, system, cost, options);
  const sim::SimResult result = engine.run(*policy);
  ASSERT_FALSE(result.hedges.empty()) << "fixture no longer races";

  const std::string json = render(writer);
  EXPECT_NE(json.find("\"hedge_launch\""), std::string::npos);
  EXPECT_NE(json.find(":cancelled\""), std::string::npos);
  EXPECT_NE(json.find("\"role\":\"replica\""), std::string::npos);
}

}  // namespace
}  // namespace apt
