#include "policies/static_plan.hpp"

#include <gtest/gtest.h>

#include "policies/heft.hpp"
#include "test_helpers.hpp"

namespace apt::policies {
namespace {

using Busy = std::vector<std::pair<sim::TimeMs, sim::TimeMs>>;

TEST(InsertionSearch, EmptyScheduleStartsAtReadyTime) {
  EXPECT_DOUBLE_EQ(earliest_insertion_start({}, 3.0, 2.0), 3.0);
}

TEST(InsertionSearch, FitsInAGapBetweenTasks) {
  const Busy busy = {{0.0, 4.0}, {10.0, 12.0}};
  EXPECT_DOUBLE_EQ(earliest_insertion_start(busy, 0.0, 5.0), 4.0);
  EXPECT_DOUBLE_EQ(earliest_insertion_start(busy, 0.0, 7.0), 12.0);
}

TEST(InsertionSearch, GapBeforeTheFirstTask) {
  const Busy busy = {{5.0, 9.0}};
  EXPECT_DOUBLE_EQ(earliest_insertion_start(busy, 0.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(earliest_insertion_start(busy, 0.0, 6.0), 9.0);
}

TEST(InsertionSearch, ReadyTimeInsideAGap) {
  const Busy busy = {{0.0, 2.0}, {8.0, 10.0}};
  EXPECT_DOUBLE_EQ(earliest_insertion_start(busy, 5.0, 3.0), 5.0);
  EXPECT_DOUBLE_EQ(earliest_insertion_start(busy, 5.0, 4.0), 10.0);
}

TEST(InsertionSearch, ReadyTimeAfterEverything) {
  const Busy busy = {{0.0, 2.0}};
  EXPECT_DOUBLE_EQ(earliest_insertion_start(busy, 7.0, 1.0), 7.0);
}

TEST(InsertionSearch, ExactFitIsAccepted) {
  const Busy busy = {{0.0, 2.0}, {5.0, 6.0}};
  EXPECT_DOUBLE_EQ(earliest_insertion_start(busy, 0.0, 3.0), 2.0);
}

TEST(StaticPlan, MakespanIsLatestFinish) {
  StaticPlan plan;
  plan.tasks = {{0, 0, 0.0, 4.0}, {1, 1, 1.0, 9.0}, {2, 0, 4.0, 6.0}};
  EXPECT_DOUBLE_EQ(plan.planned_makespan(), 9.0);
}

TEST(StaticPlan, PerProcOrderSortsByStart) {
  StaticPlan plan;
  plan.tasks = {{0, 0, 5.0, 6.0}, {1, 0, 0.0, 2.0}, {2, 1, 1.0, 3.0}};
  const auto order = plan.per_proc_order(2);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], (std::vector<dag::NodeId>{1, 0}));
  EXPECT_EQ(order[1], (std::vector<dag::NodeId>{2}));
}

TEST(StaticPlan, PerProcOrderRejectsUnknownProcessor) {
  StaticPlan plan;
  plan.tasks = {{0, 5, 0.0, 1.0}};
  EXPECT_THROW(plan.per_proc_order(2), std::logic_error);
}

TEST(ListSchedule, RespectsPrecedenceWithEqualPriorities) {
  const dag::Dag d = test::chain({{"a", 1}, {"b", 1}, {"c", 1}});
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}});
  const auto plan = list_schedule(
      d, sys, cost, {0.0, 0.0, 0.0},
      [](dag::NodeId, sim::ProcId, sim::TimeMs, sim::TimeMs eft) {
        return eft;
      });
  EXPECT_LE(plan.tasks[0].finish, plan.tasks[1].start + 1e-12);
  EXPECT_LE(plan.tasks[1].finish, plan.tasks[2].start + 1e-12);
}

TEST(ListSchedule, PrioritySizeMismatchThrows) {
  const dag::Dag d = test::chain({{"a", 1}, {"b", 1}});
  const sim::System sys = test::generic_system(1);
  sim::MatrixCostModel cost({{1.0}, {1.0}});
  EXPECT_THROW(
      list_schedule(d, sys, cost, {0.0},
                    [](dag::NodeId, sim::ProcId, sim::TimeMs,
                       sim::TimeMs eft) { return eft; }),
      std::invalid_argument);
}

TEST(ListSchedule, HigherPriorityScheduledFirstAmongReady) {
  // Two independent tasks, one processor: priority decides order.
  dag::Dag d;
  d.add_node("low", 1);
  d.add_node("high", 1);
  const sim::System sys = test::generic_system(1);
  sim::MatrixCostModel cost({{2.0}, {2.0}});
  const auto plan = list_schedule(
      d, sys, cost, {1.0, 9.0},
      [](dag::NodeId, sim::ProcId, sim::TimeMs, sim::TimeMs eft) {
        return eft;
      });
  EXPECT_DOUBLE_EQ(plan.tasks[1].start, 0.0);
  EXPECT_DOUBLE_EQ(plan.tasks[0].start, 2.0);
}

TEST(StaticPolicyBase, ExposesPlanAfterPrepare) {
  const auto ex = test::topcuoglu_example();
  const sim::System sys = test::generic_system(3);
  Heft heft;
  heft.prepare(ex.dag, sys, *ex.cost);
  EXPECT_EQ(heft.plan().tasks.size(), ex.dag.node_count());
  EXPECT_NEAR(heft.plan().planned_makespan(), 80.0, 1e-9);
}

TEST(StaticPolicyBase, IsStatic) {
  Heft heft;
  EXPECT_FALSE(heft.is_dynamic());
  EXPECT_EQ(heft.transfer_semantics(), sim::TransferSemantics::Prefetched);
}

}  // namespace
}  // namespace apt::policies
