#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace apt::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(42);
  Rng b(43);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, KnownFirstValueIsStableAcrossRuns) {
  // Pin the generator's output so a refactor that silently changes the
  // algorithm (and with it every generated workload) is caught.
  Rng rng(0);
  const std::uint64_t first = rng.next();
  Rng again(0);
  EXPECT_EQ(first, again.next());
  EXPECT_NE(first, 0u);
}

TEST(Rng, UniformU64RespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_u64(17), 17u);
}

TEST(Rng, UniformU64BoundOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_u64(1), 0u);
}

TEST(Rng, UniformU64RejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_u64(0), std::invalid_argument);
}

TEST(Rng, UniformU64CoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values reachable
}

TEST(Rng, UniformIntSinglePoint) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, Uniform01InHalfOpenUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsAboutHalf) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRealRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(Rng, UniformRealRejectsEmptyInterval) {
  Rng rng(9);
  EXPECT_THROW(rng.uniform_real(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.uniform_real(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyTracksP) {
  Rng rng(13);
  int hits = 0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PickReturnsMember) {
  Rng rng(17);
  const std::vector<int> items = {10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int v = rng.pick(items);
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
}

TEST(Rng, PickEmptyThrows) {
  Rng rng(17);
  const std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleDeterministicPerSeed) {
  std::vector<int> a = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> b = a;
  Rng r1(23);
  Rng r2(23);
  r1.shuffle(a);
  r2.shuffle(b);
  EXPECT_EQ(a, b);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  // C++17 spelling of the std::uniform_random_bit_generator requirements.
  static_assert(std::is_unsigned<Rng::result_type>::value);
  static_assert(
      std::is_same<decltype(std::declval<Rng&>()()), Rng::result_type>::value);
  static_assert(std::is_same<decltype(Rng::min()), Rng::result_type>::value);
  static_assert(std::is_same<decltype(Rng::max()), Rng::result_type>::value);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_LT(Rng::min(), Rng::max());
}

}  // namespace
}  // namespace apt::util
