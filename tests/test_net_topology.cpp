// Unit tests of net::Topology: spec parsing, link tables per kind,
// locality, and the uncontended transfer estimate.
#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace apt::net {
namespace {

TEST(TopologySpec, ParseKnownKinds) {
  EXPECT_EQ(parse_topology_spec("ideal").kind, TopologyKind::Ideal);
  EXPECT_EQ(parse_topology_spec("bus").kind, TopologyKind::Bus);
  EXPECT_EQ(parse_topology_spec("crossbar").kind, TopologyKind::Crossbar);
  EXPECT_EQ(parse_topology_spec("xbar").kind, TopologyKind::Crossbar);
  EXPECT_EQ(parse_topology_spec("hier").kind, TopologyKind::Hierarchical);
  EXPECT_EQ(parse_topology_spec("socket").kind, TopologyKind::Hierarchical);
  EXPECT_EQ(parse_topology_spec("  BUS  ").kind, TopologyKind::Bus);
}

TEST(TopologySpec, ParseSocketSize) {
  const TopologySpec spec = parse_topology_spec("hier:4");
  EXPECT_EQ(spec.kind, TopologyKind::Hierarchical);
  EXPECT_EQ(spec.socket_size, 4u);
  EXPECT_EQ(parse_topology_spec("hier").socket_size, 2u);  // default
}

TEST(TopologySpec, LabelsRoundTripThroughTheParser) {
  for (const std::string name : {"ideal", "bus", "crossbar", "hier:3"}) {
    const TopologySpec spec = parse_topology_spec(name);
    const TopologySpec reparsed = parse_topology_spec(spec.label());
    EXPECT_EQ(reparsed.kind, spec.kind) << name;
    EXPECT_EQ(reparsed.socket_size, spec.socket_size) << name;
  }
}

TEST(TopologySpec, ParseRejectsUnknown) {
  EXPECT_THROW(parse_topology_spec("torus"), std::invalid_argument);
  EXPECT_THROW(parse_topology_spec("hier:0"), std::invalid_argument);
  EXPECT_THROW(parse_topology_spec("hier:x"), std::invalid_argument);
  // strtoul would wrap a negative to ULONG_MAX (one giant socket — a
  // silently free-communication machine); the parser must reject it.
  EXPECT_THROW(parse_topology_spec("hier:-1"), std::invalid_argument);
  EXPECT_THROW(parse_topology_spec("hier:2x"), std::invalid_argument);
}

TEST(TopologySpec, Labels) {
  EXPECT_EQ(parse_topology_spec("ideal").label(), "ideal");
  EXPECT_EQ(parse_topology_spec("bus").label(), "bus");
  EXPECT_EQ(parse_topology_spec("hier:3").label(), "hier3");
}

TEST(Topology, IdealHasNoLinksAndIsUncontended) {
  const Topology topo(TopologySpec{}, 3, 4.0);
  EXPECT_FALSE(topo.contended());
  EXPECT_EQ(topo.link_count(), 0u);
  for (ProcId a = 0; a < 3; ++a)
    for (ProcId b = 0; b < 3; ++b) {
      EXPECT_TRUE(topo.is_local(a, b));
      EXPECT_DOUBLE_EQ(topo.transfer_time_ms(1e6, a, b), 0.0);
    }
}

TEST(Topology, BusSharesOneLink) {
  const Topology topo(parse_topology_spec("bus"), 3, 4.0);
  EXPECT_TRUE(topo.contended());
  EXPECT_EQ(topo.link_count(), 1u);
  EXPECT_EQ(topo.link(0, 1), 0u);
  EXPECT_EQ(topo.link(2, 0), 0u);
  EXPECT_EQ(topo.link(1, 1), kNoLink);  // same processor: local
  EXPECT_EQ(topo.link_name(0), "bus");
}

TEST(Topology, CrossbarHasOneLinkPerOrderedPair) {
  const Topology topo(parse_topology_spec("crossbar"), 3, 4.0);
  EXPECT_EQ(topo.link_count(), 6u);  // 3 * 2 ordered pairs
  // Every ordered pair gets a distinct link.
  EXPECT_NE(topo.link(0, 1), topo.link(1, 0));
  EXPECT_NE(topo.link(0, 1), topo.link(0, 2));
  EXPECT_EQ(topo.link(0, 0), kNoLink);
}

TEST(Topology, HierarchicalSocketsAreLocal) {
  TopologySpec spec = parse_topology_spec("hier:2");
  const Topology topo(spec, 4, 4.0);  // sockets {0,1} and {2,3}
  EXPECT_TRUE(topo.is_local(0, 1));
  EXPECT_TRUE(topo.is_local(3, 2));
  EXPECT_FALSE(topo.is_local(1, 2));
  EXPECT_EQ(topo.link_count(), 2u);  // S0>S1 and S1>S0
  EXPECT_EQ(topo.link(0, 2), topo.link(1, 3));  // same socket pair
  EXPECT_NE(topo.link(0, 2), topo.link(2, 0));  // directions differ
  EXPECT_EQ(topo.link_name(topo.link(0, 2)), "S0>S1");
}

TEST(Topology, BandwidthDefaultTracksLinkRate) {
  TopologySpec spec = parse_topology_spec("bus");
  const Topology tracking(spec, 3, 8.0);
  EXPECT_DOUBLE_EQ(tracking.bandwidth_gbps(0), 8.0);
  spec.bandwidth_gbps = 2.0;
  const Topology fixed(spec, 3, 8.0);
  EXPECT_DOUBLE_EQ(fixed.bandwidth_gbps(0), 2.0);
}

TEST(Topology, TransferEstimateIsLatencyPlusBytesOverBandwidth) {
  TopologySpec spec = parse_topology_spec("bus");
  spec.bandwidth_gbps = 4.0;
  spec.latency_ms = 0.5;
  const Topology topo(spec, 2, 4.0);
  // 4 GB/s == 4e6 bytes/ms; 8e6 bytes -> 2 ms + 0.5 ms latency.
  EXPECT_DOUBLE_EQ(topo.transfer_time_ms(8e6, 0, 1), 2.5);
  EXPECT_DOUBLE_EQ(topo.transfer_time_ms(8e6, 1, 1), 0.0);
}

TEST(Topology, RejectsBadConfigurations) {
  EXPECT_THROW(Topology(parse_topology_spec("bus"), 0, 4.0),
               std::invalid_argument);
  EXPECT_THROW(Topology(parse_topology_spec("bus"), 2, 0.0),
               std::invalid_argument);
  TopologySpec negative;
  negative.latency_ms = -1.0;
  EXPECT_THROW(Topology(negative, 2, 4.0), std::invalid_argument);
  // A hier socket covering every processor would make all communication
  // free under a nominally contended fabric — rejected on multi-processor
  // platforms, allowed on the degenerate single-processor one.
  EXPECT_THROW(Topology(parse_topology_spec("hier:8"), 3, 4.0),
               std::invalid_argument);
  EXPECT_NO_THROW(Topology(parse_topology_spec("hier:8"), 1, 4.0));
  const Topology topo(parse_topology_spec("bus"), 2, 4.0);
  EXPECT_THROW(topo.link(2, 0), std::out_of_range);
  EXPECT_THROW(topo.bandwidth_gbps(1), std::out_of_range);
}

}  // namespace
}  // namespace apt::net
