// Unit tests of net::Topology: spec parsing, link tables per kind,
// locality, and the uncontended transfer estimate.
#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace apt::net {
namespace {

TEST(TopologySpec, ParseKnownKinds) {
  EXPECT_EQ(parse_topology_spec("ideal").kind, TopologyKind::Ideal);
  EXPECT_EQ(parse_topology_spec("bus").kind, TopologyKind::Bus);
  EXPECT_EQ(parse_topology_spec("crossbar").kind, TopologyKind::Crossbar);
  EXPECT_EQ(parse_topology_spec("xbar").kind, TopologyKind::Crossbar);
  EXPECT_EQ(parse_topology_spec("hier").kind, TopologyKind::Hierarchical);
  EXPECT_EQ(parse_topology_spec("socket").kind, TopologyKind::Hierarchical);
  EXPECT_EQ(parse_topology_spec("  BUS  ").kind, TopologyKind::Bus);
}

TEST(TopologySpec, ParseSocketSize) {
  const TopologySpec spec = parse_topology_spec("hier:4");
  EXPECT_EQ(spec.kind, TopologyKind::Hierarchical);
  EXPECT_EQ(spec.socket_size, 4u);
  EXPECT_EQ(parse_topology_spec("hier").socket_size, 2u);  // default
}

TEST(TopologySpec, LabelsRoundTripThroughTheParser) {
  for (const std::string name : {"ideal", "bus", "crossbar", "hier:3"}) {
    const TopologySpec spec = parse_topology_spec(name);
    const TopologySpec reparsed = parse_topology_spec(spec.label());
    EXPECT_EQ(reparsed.kind, spec.kind) << name;
    EXPECT_EQ(reparsed.socket_size, spec.socket_size) << name;
  }
}

TEST(TopologySpec, ParseRejectsUnknown) {
  EXPECT_THROW(parse_topology_spec("torus"), std::invalid_argument);
  EXPECT_THROW(parse_topology_spec("hier:0"), std::invalid_argument);
  EXPECT_THROW(parse_topology_spec("hier:x"), std::invalid_argument);
  // strtoul would wrap a negative to ULONG_MAX (one giant socket — a
  // silently free-communication machine); the parser must reject it.
  EXPECT_THROW(parse_topology_spec("hier:-1"), std::invalid_argument);
  EXPECT_THROW(parse_topology_spec("hier:2x"), std::invalid_argument);
}

TEST(TopologySpec, Labels) {
  EXPECT_EQ(parse_topology_spec("ideal").label(), "ideal");
  EXPECT_EQ(parse_topology_spec("bus").label(), "bus");
  EXPECT_EQ(parse_topology_spec("hier:3").label(), "hier3");
}

TEST(Topology, IdealHasNoLinksAndIsUncontended) {
  const Topology topo(TopologySpec{}, 3, 4.0);
  EXPECT_FALSE(topo.contended());
  EXPECT_EQ(topo.link_count(), 0u);
  for (ProcId a = 0; a < 3; ++a)
    for (ProcId b = 0; b < 3; ++b) {
      EXPECT_TRUE(topo.is_local(a, b));
      EXPECT_DOUBLE_EQ(topo.transfer_time_ms(1e6, a, b), 0.0);
    }
}

TEST(Topology, BusSharesOneLink) {
  const Topology topo(parse_topology_spec("bus"), 3, 4.0);
  EXPECT_TRUE(topo.contended());
  EXPECT_EQ(topo.link_count(), 1u);
  EXPECT_EQ(topo.link(0, 1), 0u);
  EXPECT_EQ(topo.link(2, 0), 0u);
  EXPECT_EQ(topo.link(1, 1), kNoLink);  // same processor: local
  EXPECT_EQ(topo.link_name(0), "bus");
}

TEST(Topology, CrossbarHasOneLinkPerOrderedPair) {
  const Topology topo(parse_topology_spec("crossbar"), 3, 4.0);
  EXPECT_EQ(topo.link_count(), 6u);  // 3 * 2 ordered pairs
  // Every ordered pair gets a distinct link.
  EXPECT_NE(topo.link(0, 1), topo.link(1, 0));
  EXPECT_NE(topo.link(0, 1), topo.link(0, 2));
  EXPECT_EQ(topo.link(0, 0), kNoLink);
}

TEST(Topology, HierarchicalSocketsAreLocal) {
  TopologySpec spec = parse_topology_spec("hier:2");
  const Topology topo(spec, 4, 4.0);  // sockets {0,1} and {2,3}
  EXPECT_TRUE(topo.is_local(0, 1));
  EXPECT_TRUE(topo.is_local(3, 2));
  EXPECT_FALSE(topo.is_local(1, 2));
  EXPECT_EQ(topo.link_count(), 2u);  // S0>S1 and S1>S0
  EXPECT_EQ(topo.link(0, 2), topo.link(1, 3));  // same socket pair
  EXPECT_NE(topo.link(0, 2), topo.link(2, 0));  // directions differ
  EXPECT_EQ(topo.link_name(topo.link(0, 2)), "S0>S1");
}

TEST(Topology, BandwidthDefaultTracksLinkRate) {
  TopologySpec spec = parse_topology_spec("bus");
  const Topology tracking(spec, 3, 8.0);
  EXPECT_DOUBLE_EQ(tracking.bandwidth_gbps(0), 8.0);
  spec.bandwidth_gbps = 2.0;
  const Topology fixed(spec, 3, 8.0);
  EXPECT_DOUBLE_EQ(fixed.bandwidth_gbps(0), 2.0);
}

TEST(Topology, TransferEstimateIsLatencyPlusBytesOverBandwidth) {
  TopologySpec spec = parse_topology_spec("bus");
  spec.bandwidth_gbps = 4.0;
  spec.latency_ms = 0.5;
  const Topology topo(spec, 2, 4.0);
  // 4 GB/s == 4e6 bytes/ms; 8e6 bytes -> 2 ms + 0.5 ms latency.
  EXPECT_DOUBLE_EQ(topo.transfer_time_ms(8e6, 0, 1), 2.5);
  EXPECT_DOUBLE_EQ(topo.transfer_time_ms(8e6, 1, 1), 0.0);
}

TEST(Topology, RejectsBadConfigurations) {
  EXPECT_THROW(Topology(parse_topology_spec("bus"), 0, 4.0),
               std::invalid_argument);
  EXPECT_THROW(Topology(parse_topology_spec("bus"), 2, 0.0),
               std::invalid_argument);
  TopologySpec negative;
  negative.latency_ms = -1.0;
  EXPECT_THROW(Topology(negative, 2, 4.0), std::invalid_argument);
  // A hier socket covering every processor would make all communication
  // free under a nominally contended fabric — rejected on multi-processor
  // platforms, allowed on the degenerate single-processor one.
  EXPECT_THROW(Topology(parse_topology_spec("hier:8"), 3, 4.0),
               std::invalid_argument);
  EXPECT_NO_THROW(Topology(parse_topology_spec("hier:8"), 1, 4.0));
  const Topology topo(parse_topology_spec("bus"), 2, 4.0);
  EXPECT_THROW(topo.link(2, 0), std::out_of_range);
  EXPECT_THROW(topo.bandwidth_gbps(1), std::out_of_range);
}

// --- routed kinds: ring / mesh / fattree -------------------------------------

TEST(TopologySpec, ParseRoutedKinds) {
  EXPECT_EQ(parse_topology_spec("ring").kind, TopologyKind::Ring);
  EXPECT_EQ(parse_topology_spec("ring").ring_size, 0u);  // tracks proc count
  EXPECT_EQ(parse_topology_spec("ring:6").ring_size, 6u);
  EXPECT_EQ(parse_topology_spec("ring6").ring_size, 6u);  // label() form
  const TopologySpec mesh = parse_topology_spec("mesh:2x3");
  EXPECT_EQ(mesh.kind, TopologyKind::Mesh);
  EXPECT_EQ(mesh.mesh_rows, 2u);
  EXPECT_EQ(mesh.mesh_cols, 3u);
  EXPECT_EQ(parse_topology_spec("mesh2x3").mesh_rows, 2u);
  EXPECT_EQ(parse_topology_spec("fattree").fattree_arity, 2u);
  EXPECT_EQ(parse_topology_spec("fattree:3").fattree_arity, 3u);
  EXPECT_EQ(parse_topology_spec("fattree2").fattree_arity, 2u);
}

TEST(TopologySpec, ParseRejectsMalformedShapes) {
  // Malformed shape arguments must throw — never fall back silently.
  EXPECT_THROW(parse_topology_spec("mesh"), std::invalid_argument);
  EXPECT_THROW(parse_topology_spec("mesh:3x"), std::invalid_argument);
  EXPECT_THROW(parse_topology_spec("mesh:x3"), std::invalid_argument);
  EXPECT_THROW(parse_topology_spec("mesh:0x2"), std::invalid_argument);
  EXPECT_THROW(parse_topology_spec("mesh:2x0"), std::invalid_argument);
  EXPECT_THROW(parse_topology_spec("mesh:2x-3"), std::invalid_argument);
  EXPECT_THROW(parse_topology_spec("mesh:2x3x4"), std::invalid_argument);
  EXPECT_THROW(parse_topology_spec("fattree:0"), std::invalid_argument);
  EXPECT_THROW(parse_topology_spec("fattree:1"), std::invalid_argument);
  EXPECT_THROW(parse_topology_spec("fattree:x"), std::invalid_argument);
  EXPECT_THROW(parse_topology_spec("ring:0"), std::invalid_argument);
  EXPECT_THROW(parse_topology_spec("ring:1"), std::invalid_argument);
  EXPECT_THROW(parse_topology_spec("ring:2x"), std::invalid_argument);
  EXPECT_THROW(parse_topology_spec("ring:-4"), std::invalid_argument);
  // Out-of-range numbers must fail here with a clear parse error, not
  // saturate through strtoul and blow up in the link-table constructor.
  EXPECT_THROW(parse_topology_spec("ring:18446744073709551615"),
               std::invalid_argument);
  EXPECT_THROW(parse_topology_spec("ring:99999999999999999999999"),
               std::invalid_argument);
  EXPECT_THROW(parse_topology_spec("mesh:2x18446744073709551615"),
               std::invalid_argument);
  EXPECT_THROW(parse_topology_spec("hier:10000001"), std::invalid_argument);
}

TEST(TopologySpec, RoutedLabelsRoundTripThroughTheParser) {
  for (const std::string name :
       {"ring", "ring:6", "mesh:2x3", "fattree:3"}) {
    const TopologySpec spec = parse_topology_spec(name);
    const TopologySpec reparsed = parse_topology_spec(spec.label());
    EXPECT_EQ(reparsed.kind, spec.kind) << name;
    EXPECT_EQ(reparsed.ring_size, spec.ring_size) << name;
    EXPECT_EQ(reparsed.mesh_rows, spec.mesh_rows) << name;
    EXPECT_EQ(reparsed.mesh_cols, spec.mesh_cols) << name;
    EXPECT_EQ(reparsed.fattree_arity, spec.fattree_arity) << name;
  }
  EXPECT_EQ(parse_topology_spec("ring:6").label(), "ring6");
  EXPECT_EQ(parse_topology_spec("mesh:2x3").label(), "mesh2x3");
  EXPECT_EQ(parse_topology_spec("fattree:3").label(), "fattree3");
}

TEST(Topology, RingRoutesTakeTheShorterArc) {
  // 4 processors on a 4-ring: clockwise links 0..3 then counter-clockwise
  // 4..7, both directions one link per adjacent pair.
  const Topology topo(parse_topology_spec("ring"), 4, 4.0);
  EXPECT_EQ(topo.link_count(), 8u);
  const Topology::Route one_hop = topo.route(0, 1);
  ASSERT_EQ(one_hop.hops, 1u);
  EXPECT_EQ(topo.link_name(one_hop[0]), "R0>R1");
  // Opposite corner: tie between the arcs resolves clockwise.
  const Topology::Route tie = topo.route(0, 2);
  ASSERT_EQ(tie.hops, 2u);
  EXPECT_EQ(topo.link_name(tie[0]), "R0>R1");
  EXPECT_EQ(topo.link_name(tie[1]), "R1>R2");
  // The short way round is counter-clockwise.
  const Topology::Route back = topo.route(0, 3);
  ASSERT_EQ(back.hops, 1u);
  EXPECT_EQ(topo.link_name(back[0]), "R0>R3");
  EXPECT_EQ(topo.diameter_hops(), 2u);
  // link() serves single-hop routes and refuses multi-hop ones.
  EXPECT_EQ(topo.link(0, 1), one_hop[0]);
  EXPECT_THROW(topo.link(0, 2), std::logic_error);
  EXPECT_FALSE(topo.is_local(0, 2));
  EXPECT_TRUE(topo.is_local(1, 1));
}

TEST(Topology, RingSparePositionsRelay) {
  // Three processors on a 6-ring: 0 -> 2 still walks clockwise over the
  // occupied arc; the spare positions 3..5 carry the long way round.
  TopologySpec spec = parse_topology_spec("ring:6");
  const Topology topo(spec, 3, 4.0);
  EXPECT_EQ(topo.link_count(), 12u);
  EXPECT_EQ(topo.route(0, 2).hops, 2u);
  EXPECT_EQ(topo.route(2, 0).hops, 2u);  // ccw beats the 4-hop cw arc
  // A ring smaller than the platform cannot seat every processor.
  EXPECT_THROW(Topology(parse_topology_spec("ring:2"), 3, 4.0),
               std::invalid_argument);
}

TEST(Topology, MeshUsesDimensionOrderRouting) {
  // 2x2 grid, processors fill row-major: P0=(0,0), P1=(0,1), P2=(1,0),
  // P3=(1,1). X (column) first, then Y.
  const Topology topo(parse_topology_spec("mesh:2x2"), 4, 4.0);
  EXPECT_EQ(topo.link_count(), 8u);
  const Topology::Route diag = topo.route(0, 3);
  ASSERT_EQ(diag.hops, 2u);
  EXPECT_EQ(topo.link_name(diag[0]), "M0,0>M0,1");
  EXPECT_EQ(topo.link_name(diag[1]), "M0,1>M1,1");
  const Topology::Route reverse = topo.route(3, 0);
  ASSERT_EQ(reverse.hops, 2u);
  EXPECT_EQ(topo.link_name(reverse[0]), "M1,1>M1,0");
  EXPECT_EQ(topo.link_name(reverse[1]), "M1,0>M0,0");
  EXPECT_EQ(topo.route(0, 1).hops, 1u);
  EXPECT_EQ(topo.diameter_hops(), 2u);
  // A 1x4 row degenerates to a line with longer routes.
  const Topology line(parse_topology_spec("mesh:1x4"), 4, 4.0);
  EXPECT_EQ(line.route(0, 3).hops, 3u);
  // Too few cells for the platform.
  EXPECT_THROW(Topology(parse_topology_spec("mesh:1x2"), 3, 4.0),
               std::invalid_argument);
}

TEST(Topology, FatTreeClimbsToTheLowestCommonAncestor) {
  // Arity-2 tree over 4 leaves: S1_0 covers {P0,P1}, S1_1 covers {P2,P3},
  // S2_0 is the root. Sibling leaves meet one level up; the far pair
  // crosses the root.
  const Topology topo(parse_topology_spec("fattree:2"), 4, 4.0);
  EXPECT_EQ(topo.link_count(), 12u);  // 4 + 2 tree edges, up + down each
  const Topology::Route sibling = topo.route(0, 1);
  ASSERT_EQ(sibling.hops, 2u);
  EXPECT_EQ(topo.link_name(sibling[0]), "P0>S1_0");
  EXPECT_EQ(topo.link_name(sibling[1]), "S1_0>P1");
  const Topology::Route cross = topo.route(0, 2);
  ASSERT_EQ(cross.hops, 4u);
  EXPECT_EQ(topo.link_name(cross[0]), "P0>S1_0");
  EXPECT_EQ(topo.link_name(cross[1]), "S1_0>S2_0");
  EXPECT_EQ(topo.link_name(cross[2]), "S2_0>S1_1");
  EXPECT_EQ(topo.link_name(cross[3]), "S1_1>P2");
  EXPECT_EQ(topo.diameter_hops(), 4u);
  // A wider arity flattens the tree: 4 leaves under one switch.
  const Topology flat(parse_topology_spec("fattree:4"), 4, 4.0);
  EXPECT_EQ(flat.route(0, 3).hops, 2u);
  EXPECT_EQ(flat.diameter_hops(), 2u);
}

TEST(Topology, BottleneckLinkFollowsTheTransferTimeConvention) {
  // Uniform bandwidths: the minimum-bandwidth hop is a tie, and the
  // convention (matching transfer_time_ms) picks the earliest hop in
  // traversal order — the first route link.
  TopologySpec spec = parse_topology_spec("ring");
  spec.bandwidth_gbps = 4.0;
  spec.latency_ms = 0.5;
  const Topology topo(spec, 6, 4.0);
  for (ProcId from = 0; from < 6; ++from) {
    for (ProcId to = 0; to < 6; ++to) {
      const LinkId b = topo.bottleneck_link(from, to);
      const Topology::Route r = topo.route(from, to);
      if (r.empty()) {
        EXPECT_EQ(b, kNoLink);
        continue;
      }
      EXPECT_EQ(b, r[0]);
      // Consistency with the pricing convention: the uncontended estimate
      // is route latency + bytes over the bottleneck link's bandwidth.
      const double bytes = 8e6;
      EXPECT_DOUBLE_EQ(topo.transfer_time_ms(bytes, from, to),
                       topo.route_latency_ms(from, to) +
                           bytes / (topo.bandwidth_gbps(b) * 1e6));
    }
  }
  // Ideal topologies have no links at all.
  const Topology ideal(TopologySpec{}, 4, 4.0);
  EXPECT_EQ(ideal.bottleneck_link(0, 1), kNoLink);
}

TEST(Topology, RoutedTransferEstimateUsesPathLatencyAndBottleneck) {
  // 2 hops on a 4-ring: head latency accrues per hop, bytes at the (here
  // uniform) bottleneck rate. 8e6 bytes at 4e6 bytes/ms + 2 x 0.5 ms.
  TopologySpec spec = parse_topology_spec("ring");
  spec.bandwidth_gbps = 4.0;
  spec.latency_ms = 0.5;
  const Topology topo(spec, 4, 4.0);
  EXPECT_DOUBLE_EQ(topo.route_latency_ms(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(topo.transfer_time_ms(8e6, 0, 2), 3.0);
  EXPECT_DOUBLE_EQ(topo.transfer_time_ms(8e6, 0, 1), 2.5);  // one hop
  EXPECT_DOUBLE_EQ(topo.transfer_time_ms(8e6, 2, 2), 0.0);  // local
}

}  // namespace
}  // namespace apt::net
