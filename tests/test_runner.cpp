#include "core/runner.hpp"

#include <gtest/gtest.h>

#include "core/apt.hpp"
#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "sim/validate.hpp"
#include "test_helpers.hpp"

namespace apt::core {
namespace {

TEST(Runner, ProducesScheduleAndMetricsTogether) {
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, 0);
  const sim::System sys = test::paper_system();
  Apt apt(4.0);
  const RunOutcome outcome =
      run_policy(apt, graph, sys, lut::paper_lookup_table());
  EXPECT_EQ(outcome.policy_name, "APT(alpha=4.00)");
  EXPECT_EQ(outcome.result.schedule.size(), graph.node_count());
  EXPECT_DOUBLE_EQ(outcome.metrics.makespan, outcome.result.makespan);
  EXPECT_EQ(outcome.metrics.kernel_count, graph.node_count());
}

TEST(Runner, ExplicitCostModelOverload) {
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, 0);
  const sim::System sys = test::paper_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
  Apt apt(4.0);
  const RunOutcome a = run_policy(apt, graph, sys, cost);
  Apt apt2(4.0);
  const RunOutcome b =
      run_policy(apt2, graph, sys, lut::paper_lookup_table());
  EXPECT_DOUBLE_EQ(a.metrics.makespan, b.metrics.makespan);
}

TEST(Runner, PaperSystemOneLiner) {
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type2, 0);
  const RunOutcome outcome = run_paper_system("met", graph);
  EXPECT_EQ(outcome.policy_name, "MET");
  EXPECT_GT(outcome.metrics.makespan, 0.0);

  // The produced schedule passes full validation.
  const sim::System sys = test::paper_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
  EXPECT_TRUE(
      sim::validate_schedule(graph, sys, cost, outcome.result).empty());
}

TEST(Runner, RateChangesTransferBoundResults) {
  // Type-2 graphs move data between kernels; a faster link helps (small
  // scheduling anomalies aside, which the 2% slack absorbs).
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type2, 0);
  const RunOutcome slow = run_paper_system("ag", graph, 4.0);
  const RunOutcome fast = run_paper_system("ag", graph, 8.0);
  EXPECT_LE(fast.metrics.makespan, slow.metrics.makespan * 1.02);
}

TEST(Runner, IsDeterministic) {
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, 3);
  const RunOutcome a = run_paper_system("apt:4", graph);
  const RunOutcome b = run_paper_system("apt:4", graph);
  EXPECT_DOUBLE_EQ(a.metrics.makespan, b.metrics.makespan);
  EXPECT_DOUBLE_EQ(a.metrics.lambda.total_ms, b.metrics.lambda.total_ms);
}

}  // namespace
}  // namespace apt::core
