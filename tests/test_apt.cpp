#include "core/apt.hpp"

#include <gtest/gtest.h>

#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "policies/met.hpp"
#include "test_helpers.hpp"

namespace apt::core {
namespace {

TEST(Apt, RejectsAlphaBelowOne) {
  EXPECT_THROW(Apt(0.99), std::invalid_argument);
  EXPECT_THROW(Apt(AptOptions{0.0, true, false}), std::invalid_argument);
  EXPECT_NO_THROW(Apt(1.0));
}

TEST(Apt, NameEncodesConfiguration) {
  EXPECT_EQ(Apt(4.0).name(), "APT(alpha=4.00)");
  EXPECT_EQ(Apt(AptOptions{2.0, false, false}).name(),
            "APT(alpha=2.00)[no-transfer]");
  EXPECT_EQ(Apt(AptOptions{2.0, true, true}).name(),
            "APT(alpha=2.00)[remaining]");
}

TEST(Apt, TakesTheOptimalProcessorWhenItIsIdle) {
  dag::Dag d;
  d.add_node("k", 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{9.0, 2.0}});
  Apt apt(16.0);
  const auto result = test::run_and_validate(apt, d, sys, cost);
  EXPECT_EQ(result.schedule[0].proc, 1u);
  EXPECT_FALSE(result.schedule[0].alternative);
}

TEST(Apt, UsesAlternativeWithinThreshold) {
  // Both kernels best on p0 (1 ms); p1 costs 3 ms. α=4 -> threshold 4:
  // the second kernel takes p1 instead of waiting.
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{1.0, 3.0}, {1.0, 3.0}});
  Apt apt(4.0);
  const auto result = test::run_and_validate(apt, d, sys, cost);
  EXPECT_EQ(result.schedule[0].proc, 0u);
  EXPECT_EQ(result.schedule[1].proc, 1u);
  EXPECT_TRUE(result.schedule[1].alternative);
  EXPECT_DOUBLE_EQ(result.makespan, 3.0);
}

TEST(Apt, WaitsWhenAlternativeExceedsThreshold) {
  // p1 costs 5 ms > threshold 4: behave exactly like MET and wait.
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{1.0, 5.0}, {1.0, 5.0}});
  Apt apt(4.0);
  const auto result = test::run_and_validate(apt, d, sys, cost);
  EXPECT_EQ(result.schedule[1].proc, 0u);
  EXPECT_DOUBLE_EQ(result.schedule[1].wait_ms(), 1.0);
  EXPECT_DOUBLE_EQ(result.makespan, 2.0);
}

TEST(Apt, ThresholdBoundaryIsInclusive) {
  // exec(p1) == α·x exactly: the alternative is taken (Eq. 8 uses <=).
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{1.0, 4.0}, {1.0, 4.0}});
  Apt apt(4.0);
  const auto result = test::run_and_validate(apt, d, sys, cost);
  EXPECT_EQ(result.schedule[1].proc, 1u);
  EXPECT_TRUE(result.schedule[1].alternative);
}

TEST(Apt, PicksTheCheapestQualifyingAlternative) {
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  const sim::System sys = test::generic_system(3);
  sim::MatrixCostModel cost({{1.0, 3.5, 2.5}, {1.0, 3.5, 2.5}});
  Apt apt(4.0);
  const auto result = test::run_and_validate(apt, d, sys, cost);
  EXPECT_EQ(result.schedule[1].proc, 2u);  // 2.5 < 3.5, both within 4
}

TEST(Apt, TransferTimeCountsAgainstTheThreshold) {
  // The alternative's exec (3) fits the threshold (4) but exec+transfer
  // (3 + 2) does not: APT must wait.
  dag::Dag d;
  d.add_node("src", 1);
  d.add_node("a", 1);
  d.add_node("b", 1);
  d.add_edge(0, 1);
  d.add_edge(0, 2);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{0.5, 9.0}, {1.0, 3.0}, {1.0, 3.0}});
  cost.set_comm_cost(0, 1, 2.0);
  cost.set_comm_cost(0, 2, 2.0);
  Apt apt(4.0);
  const auto result = test::run_and_validate(apt, d, sys, cost);
  // src on p0; a and b both ready at 0.5, both best on p0.
  EXPECT_EQ(result.schedule[1].proc, 0u);
  EXPECT_EQ(result.schedule[2].proc, 0u);  // waited: 3+2 > 4
  EXPECT_FALSE(result.schedule[2].alternative);
}

TEST(Apt, TransferUnawareVariantIgnoresTransferInTheThreshold) {
  dag::Dag d;
  d.add_node("src", 1);
  d.add_node("a", 1);
  d.add_node("b", 1);
  d.add_edge(0, 1);
  d.add_edge(0, 2);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{0.5, 9.0}, {1.0, 3.0}, {1.0, 3.0}});
  cost.set_comm_cost(0, 1, 2.0);
  cost.set_comm_cost(0, 2, 2.0);
  Apt apt(AptOptions{4.0, /*transfer_aware=*/false, false});
  const auto result = test::run_and_validate(apt, d, sys, cost);
  EXPECT_EQ(result.schedule[2].proc, 1u);  // 3 <= 4, transfer ignored
  EXPECT_TRUE(result.schedule[2].alternative);
}

TEST(Apt, AlphaOneOnlyAcceptsEquallyGoodAlternatives) {
  // α=1: an alternative qualifies only when exec+transfer <= x. With a
  // strictly slower p1 APT behaves exactly like MET.
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  const sim::System sys = test::generic_system(2);
  sim::MatrixCostModel cost({{2.0, 2.5}, {2.0, 2.5}});
  Apt apt(1.0);
  const auto result = test::run_and_validate(apt, d, sys, cost);
  EXPECT_EQ(result.schedule[1].proc, 0u);
  // ...but an exactly-equal processor is used immediately:
  sim::MatrixCostModel tie({{2.0, 2.0}, {2.0, 2.0}});
  Apt apt1(1.0);
  const auto tied = test::run_and_validate(apt1, d, sys, tie);
  EXPECT_EQ(tied.schedule[1].proc, 1u);
}

TEST(Apt, HugeAlphaNeverWaitsOnTheFigure5Workload) {
  std::vector<dag::Node> series = {
      {"nw", 16777216}, {"bfs", 2034736}, {"bfs", 2034736},
      {"bfs", 2034736}, {"cd", 250000}};
  const dag::Dag graph = dag::make_type1(series);
  const sim::System sys = test::paper_system(1e9);
  const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
  Apt apt(1e6);
  const auto result = test::run_and_validate(apt, graph, sys, cost);
  // All three processors are used at t≈0 (no level-1 kernel waits).
  std::size_t at_zero = 0;
  for (const auto& k : result.schedule) {
    if (k.exec_start < 1e-3) ++at_zero;
  }
  EXPECT_EQ(at_zero, 3u);
}

TEST(Apt, MatchesMetAtAlphaOneOnPaperWorkloads) {
  // With α=1 alternatives are (almost) never eligible given the LUT's
  // strictly-ordered execution times: APT degenerates to MET exactly.
  for (dag::DfgType type : {dag::DfgType::Type1, dag::DfgType::Type2}) {
    const dag::Dag graph = dag::paper_graph(type, 0);
    const sim::System sys = test::paper_system();
    const sim::LutCostModel cost(lut::paper_lookup_table(), sys);
    Apt apt(1.0);
    policies::Met met;
    const auto apt_result = test::run_and_validate(apt, graph, sys, cost);
    const auto met_result = test::run_and_validate(met, graph, sys, cost);
    EXPECT_DOUBLE_EQ(apt_result.makespan, met_result.makespan)
        << dag::to_string(type);
  }
}

TEST(Apt, AlternativeNeverViolatesItsOwnThreshold) {
  // Property: on real workloads every alternative assignment satisfied
  // exec + transfer <= α·x at decision time. We re-check exec <= α·x
  // post-hoc (transfer can only add, so this is a necessary condition the
  // schedule must show).
  const double alpha = 4.0;
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, 5);
  const sim::System sys = test::paper_system();
  const auto table = lut::paper_lookup_table();
  const sim::LutCostModel cost(table, sys);
  Apt apt(alpha);
  const auto result = test::run_and_validate(apt, graph, sys, cost);
  for (const auto& k : result.schedule) {
    if (!k.alternative) continue;
    const auto& node = graph.node(k.node);
    const double x =
        table.exec_time_ms(node.kernel, node.data_size,
                           table.best_processor(node.kernel, node.data_size));
    EXPECT_LE(k.exec_ms, alpha * x + 1e-9) << "node " << k.node;
    // And it genuinely is an alternative (not the optimal category).
    EXPECT_NE(sys.processor(k.proc).type,
              table.best_processor(node.kernel, node.data_size));
  }
}

}  // namespace
}  // namespace apt::core
