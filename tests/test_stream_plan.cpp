// The open-system sweep layer: plan validation, cell coordinates, shared
// row workloads, and bit-identity across worker counts.
#include <gtest/gtest.h>

#include "core/stream_plan.hpp"
#include "net/topology.hpp"

namespace apt {
namespace {

/// A small but non-trivial plan: 2 families × 2 rates × 2 policies with a
/// short admission horizon (paper kernels are hundreds of ms, so a few
/// dozen apps arrive per cell).
core::StreamPlan small_plan() {
  core::StreamPlan plan;
  plan.families = {"type1", "layered"};
  plan.rates_per_ms = {0.002, 0.01};
  plan.policy_specs = {"apt:4", "met"};
  plan.kernels = 20;
  plan.horizon_ms = 4000.0;
  plan.warmup_ms = 400.0;
  plan.base_seed = 42;
  return plan;
}

TEST(StreamPlan, ValidateRejectsBadAxes) {
  core::StreamPlan plan = small_plan();
  plan.families.clear();
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = small_plan();
  plan.rates_per_ms = {0.0};
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = small_plan();
  plan.families = {"no-such-family"};
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = small_plan();
  plan.policy_specs = {"heft"};  // static planner
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = small_plan();
  plan.max_apps = 0;
  plan.horizon_ms = 0.0;  // unbounded
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  EXPECT_EQ(small_plan().validate().size(), 2u);
}

TEST(StreamPlan, CellCoordinatesRoundTrip) {
  const core::StreamPlan plan = small_plan();
  ASSERT_EQ(plan.cell_count(), 8u);
  std::size_t flat = 0;
  for (std::size_t f = 0; f < 2; ++f) {
    for (std::size_t r = 0; r < 2; ++r) {
      for (std::size_t p = 0; p < 2; ++p, ++flat) {
        const core::StreamCellCoords c = core::stream_cell_coords(plan, flat);
        EXPECT_EQ(c.family, f);
        EXPECT_EQ(c.rate, r);
        EXPECT_EQ(c.policy, p);
        EXPECT_EQ(c.index, flat);
      }
    }
  }
  // Policy columns of one row share the workload seed; rows differ.
  const auto c0 = core::stream_cell_coords(plan, 0);
  const auto c1 = core::stream_cell_coords(plan, 1);
  const auto c2 = core::stream_cell_coords(plan, 2);
  EXPECT_EQ(c0.workload_seed, c1.workload_seed);
  EXPECT_NE(c0.workload_seed, c2.workload_seed);
  EXPECT_NE(c0.seed, c1.seed);
}

TEST(StreamPlan, PolicyColumnsFaceTheIdenticalWorkload) {
  const core::StreamPlan plan = small_plan();
  const core::BatchRunner runner(1);
  const core::StreamBatchResult result = core::run_stream_plan(plan, runner);
  for (std::size_t f = 0; f < plan.families.size(); ++f) {
    for (std::size_t r = 0; r < plan.rates_per_ms.size(); ++r) {
      const auto& apt = result.at(f, r, 0);
      const auto& met = result.at(f, r, 1);
      EXPECT_EQ(apt.metrics.apps_arrived, met.metrics.apps_arrived);
      EXPECT_EQ(apt.metrics.kernels_completed, met.metrics.kernels_completed);
    }
  }
}

TEST(StreamPlan, BitIdenticalAcrossJobCounts) {
  const core::StreamPlan plan = small_plan();
  const core::BatchRunner serial(1);
  const core::BatchRunner parallel(8);
  const core::StreamBatchResult a = core::run_stream_plan(plan, serial);
  const core::StreamBatchResult b = core::run_stream_plan(plan, parallel);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const sim::StreamMetrics& ma = a.cells[i].metrics;
    const sim::StreamMetrics& mb = b.cells[i].metrics;
    EXPECT_EQ(a.cells[i].policy_name, b.cells[i].policy_name);
    EXPECT_EQ(ma.apps_arrived, mb.apps_arrived);
    EXPECT_EQ(ma.apps_completed, mb.apps_completed);
    EXPECT_EQ(ma.apps_measured, mb.apps_measured);
    // Bitwise double equality — not NEAR: the cells must be identical.
    EXPECT_EQ(ma.end_ms, mb.end_ms) << i;
    EXPECT_EQ(ma.flow_ms.avg, mb.flow_ms.avg) << i;
    EXPECT_EQ(ma.flow_ms.p95, mb.flow_ms.p95) << i;
    EXPECT_EQ(ma.slowdown.avg, mb.slowdown.avg) << i;
    EXPECT_EQ(ma.throughput_apps_per_s, mb.throughput_apps_per_s) << i;
    EXPECT_EQ(ma.avg_utilization, mb.avg_utilization) << i;
    EXPECT_EQ(ma.queue_depth_avg, mb.queue_depth_avg) << i;
    EXPECT_EQ(ma.queue_depth_max, mb.queue_depth_max) << i;
    ASSERT_EQ(ma.per_proc.size(), mb.per_proc.size());
    for (std::size_t p = 0; p < ma.per_proc.size(); ++p) {
      EXPECT_EQ(ma.per_proc[p].compute_ms, mb.per_proc[p].compute_ms);
      EXPECT_EQ(ma.per_proc[p].kernel_count, mb.per_proc[p].kernel_count);
    }
  }
}

// The burst regime the perf work targets: 10x the densest sustained bench
// rate on a contended routed topology, so the incremental TM re-solve, the
// SoA slot slabs, and the shape pool are all live — and still bit-identical
// for any worker count.
TEST(StreamPlan, BitIdenticalAcrossJobCountsAtBurstRate) {
  core::StreamPlan plan;
  plan.families = {"type1"};
  plan.rates_per_ms = {0.005};
  plan.policy_specs = {"apt:4", "ag"};
  plan.kernels = 46;
  plan.max_apps = 25;  // burst cap bounds the run instead of a horizon
  plan.horizon_ms = 0.0;
  plan.warmup_ms = 0.0;
  plan.base_seed = 7;
  plan.base_system.topology = net::parse_topology_spec("mesh:2x2");
  plan.base_system.topology.bandwidth_gbps = 1.0;
  plan.base_system.topology.latency_ms = 0.05;

  const core::BatchRunner serial(1);
  const core::BatchRunner parallel(8);
  const core::StreamBatchResult a = core::run_stream_plan(plan, serial);
  const core::StreamBatchResult b = core::run_stream_plan(plan, parallel);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const sim::StreamMetrics& ma = a.cells[i].metrics;
    const sim::StreamMetrics& mb = b.cells[i].metrics;
    EXPECT_EQ(ma.apps_completed, mb.apps_completed);
    // Bitwise double equality — not NEAR: the cells must be identical.
    EXPECT_EQ(ma.end_ms, mb.end_ms) << i;
    EXPECT_EQ(ma.flow_ms.avg, mb.flow_ms.avg) << i;
    EXPECT_EQ(ma.flow_ms.max, mb.flow_ms.max) << i;
    EXPECT_EQ(ma.slowdown.avg, mb.slowdown.avg) << i;
    EXPECT_EQ(ma.avg_utilization, mb.avg_utilization) << i;
    ASSERT_EQ(ma.per_link.size(), mb.per_link.size());
    for (std::size_t l = 0; l < ma.per_link.size(); ++l) {
      EXPECT_EQ(ma.per_link[l].busy_ms, mb.per_link[l].busy_ms) << i;
      EXPECT_EQ(ma.per_link[l].bytes, mb.per_link[l].bytes) << i;
    }
    // Solver observability is deterministic too.
    EXPECT_EQ(ma.tm_solve_stats.full_solves,
              mb.tm_solve_stats.full_solves) << i;
    EXPECT_EQ(ma.tm_solve_stats.incremental_solves,
              mb.tm_solve_stats.incremental_solves) << i;
  }
}

// The comm-aware policy family queries the live TransferManager backlog at
// every decision — those reads must not leak any cross-cell state, so the
// grid stays bit-identical for any worker count.
TEST(StreamPlan, CommAwarePoliciesBitIdenticalAcrossJobCounts) {
  core::StreamPlan plan;
  plan.families = {"layered"};
  plan.rates_per_ms = {0.02};
  plan.policy_specs = {"ag-net", "apt-c:4", "apt-q:4"};
  plan.kernels = 24;
  plan.max_apps = 25;
  plan.horizon_ms = 0.0;
  plan.warmup_ms = 0.0;
  plan.base_seed = 7;
  plan.base_system = sim::SystemConfig::paper_default(1.0);
  plan.base_system.topology = net::parse_topology_spec("ring");
  plan.base_system.topology.latency_ms = 0.05;
  plan.noise.sigma = 0.25;  // so APT-Q's quantile path is genuinely live
  plan.noise.heavy_tail_prob = 0.05;
  plan.noise.seed = 3;

  const core::BatchRunner serial(1);
  const core::BatchRunner parallel(8);
  const core::StreamBatchResult a = core::run_stream_plan(plan, serial);
  const core::StreamBatchResult b = core::run_stream_plan(plan, parallel);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const sim::StreamMetrics& ma = a.cells[i].metrics;
    const sim::StreamMetrics& mb = b.cells[i].metrics;
    EXPECT_EQ(a.cells[i].policy_name, b.cells[i].policy_name);
    EXPECT_EQ(ma.apps_completed, mb.apps_completed);
    // Bitwise double equality — not NEAR: the cells must be identical.
    EXPECT_EQ(ma.end_ms, mb.end_ms) << i;
    EXPECT_EQ(ma.flow_ms.avg, mb.flow_ms.avg) << i;
    EXPECT_EQ(ma.flow_ms.max, mb.flow_ms.max) << i;
    EXPECT_EQ(ma.slowdown.avg, mb.slowdown.avg) << i;
    EXPECT_EQ(ma.avg_utilization, mb.avg_utilization) << i;
    ASSERT_EQ(ma.per_link.size(), mb.per_link.size());
    for (std::size_t l = 0; l < ma.per_link.size(); ++l) {
      EXPECT_EQ(ma.per_link[l].busy_ms, mb.per_link[l].busy_ms) << i;
      EXPECT_EQ(ma.per_link[l].bytes, mb.per_link[l].bytes) << i;
    }
  }
}

TEST(StreamPlan, SeededPolicySpecsResolvePerCell) {
  core::StreamPlan plan = small_plan();
  plan.policy_specs = {"random:{seed}", "met"};
  const std::vector<std::string> names = plan.validate();
  EXPECT_EQ(names[0], "Random");
  const core::BatchRunner runner(2);
  EXPECT_NO_THROW(core::run_stream_plan(plan, runner));
}

}  // namespace
}  // namespace apt
