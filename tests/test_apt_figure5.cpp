// Golden reproduction of the thesis's Figure 5 worked example (§4.1).
//
// Workload: DFG Type-1 with 5 kernels — nw, bfs, bfs, bfs, and a cd sink —
// no transfer costs considered (the example states transfers are ignored;
// we use a huge link rate so they vanish). Kernel times are Table 7:
//   nw : CPU 112, GPU 146, FPGA 397
//   bfs: CPU 332, GPU 173, FPGA 106
//   cd : CPU 1.7064, GPU 2.749, FPGA 0.093
//
// Published outcome:  MET ends at 318.093 ms;  APT(α=8) ends at 212.093 ms.
#include <gtest/gtest.h>

#include "core/apt.hpp"
#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "policies/met.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "test_helpers.hpp"

namespace apt {
namespace {

dag::Dag figure5_graph() {
  // Node ids match the thesis listing: 0-nw, 1-bfs, 2-bfs, 3-bfs, 4-cd.
  std::vector<dag::Node> series = {
      {"nw", 16777216}, {"bfs", 2034736}, {"bfs", 2034736},
      {"bfs", 2034736}, {"cd", 250000}};
  return dag::make_type1(series);
}

class Figure5 : public ::testing::Test {
 protected:
  // A petabyte-per-second link makes transfer times negligible, matching
  // "to simplify the example, we do not consider transfer times".
  Figure5() : system_(test::paper_system(/*rate_gbps=*/1e9)) {}

  sim::SimResult run(sim::Policy& policy) {
    const dag::Dag graph = figure5_graph();
    const sim::LutCostModel cost(lut::paper_lookup_table(), system_);
    return test::run_and_validate(policy, graph, system_, cost);
  }

  sim::System system_;
};

TEST_F(Figure5, MetEndsAt318_093) {
  policies::Met met;
  const auto result = run(met);
  EXPECT_NEAR(result.makespan, 318.093, 1e-6);
}

TEST_F(Figure5, MetScheduleMatchesPublishedStateLog) {
  policies::Met met;
  const auto result = run(met);
  const auto& s = result.schedule;
  // CPU runs nw from 0; FPGA runs the three bfs back to back, then cd.
  EXPECT_EQ(s[0].proc, 0u);  // nw -> CPU
  EXPECT_NEAR(s[0].exec_start, 0.0, 1e-5);
  EXPECT_EQ(s[1].proc, 2u);  // bfs -> FPGA
  EXPECT_NEAR(s[1].exec_start, 0.0, 1e-5);
  EXPECT_EQ(s[2].proc, 2u);
  EXPECT_NEAR(s[2].exec_start, 106.0, 1e-5);
  EXPECT_EQ(s[3].proc, 2u);
  EXPECT_NEAR(s[3].exec_start, 212.0, 1e-5);
  EXPECT_EQ(s[4].proc, 2u);  // cd -> FPGA
  EXPECT_NEAR(s[4].exec_start, 318.0, 1e-5);
  // GPU stays idle under MET for the whole run.
  for (const auto& k : s) EXPECT_NE(k.proc, 1u);
}

TEST_F(Figure5, AptAlpha8EndsAt212_093) {
  core::Apt apt(8.0);
  const auto result = run(apt);
  EXPECT_NEAR(result.makespan, 212.093, 1e-6);
}

TEST_F(Figure5, AptAlpha8ScheduleMatchesPublishedStateLog) {
  core::Apt apt(8.0);
  const auto result = run(apt);
  const auto& s = result.schedule;
  EXPECT_EQ(s[0].proc, 0u);  // nw -> CPU at 0
  EXPECT_EQ(s[1].proc, 2u);  // bfs #1 -> FPGA at 0
  EXPECT_NEAR(s[1].exec_start, 0.0, 1e-5);
  // bfs #2: FPGA busy; GPU passes the threshold test (173 <= 8*106).
  EXPECT_EQ(s[2].proc, 1u);
  EXPECT_NEAR(s[2].exec_start, 0.0, 1e-5);
  EXPECT_TRUE(s[2].alternative);
  // bfs #3 waits for the FPGA (CPU is busy with nw at time 0).
  EXPECT_EQ(s[3].proc, 2u);
  EXPECT_NEAR(s[3].exec_start, 106.0, 1e-5);
  EXPECT_FALSE(s[3].alternative);
  // cd runs on the FPGA once all level-1 kernels finished (212.0).
  EXPECT_EQ(s[4].proc, 2u);
  EXPECT_NEAR(s[4].exec_start, 212.0, 1e-5);
}

TEST_F(Figure5, AptImprovesOnMetByThePublishedMargin) {
  policies::Met met;
  core::Apt apt(8.0);
  const double met_end = run(met).makespan;
  const double apt_end = run(apt).makespan;
  EXPECT_NEAR(met_end - apt_end, 106.0, 1e-6);
}

TEST_F(Figure5, TraceRendersFigure5Shape) {
  policies::Met met;
  const auto result = run(met);
  const dag::Dag graph = figure5_graph();
  const sim::Trace trace = sim::build_trace(graph, system_, result);
  // Five state-change instants, exactly as the thesis prints them:
  // 0 (nw+bfs start), 106 (bfs #2 replaces #1), 112 (nw ends), 212 (bfs
  // #3 starts), 318 (cd starts).
  ASSERT_EQ(trace.rows.size(), 5u);
  EXPECT_NEAR(trace.rows[0].time, 0.0, 1e-5);
  EXPECT_NEAR(trace.rows[1].time, 106.0, 1e-5);
  EXPECT_NEAR(trace.rows[2].time, 112.0, 1e-5);
  EXPECT_NEAR(trace.rows[3].time, 212.0, 1e-5);
  EXPECT_NEAR(trace.rows[4].time, 318.0, 1e-5);
  EXPECT_EQ(trace.rows[0].proc_activity[0], "0-nw");
  EXPECT_EQ(trace.rows[0].proc_activity[1], "idle");
  EXPECT_EQ(trace.rows[0].proc_activity[2], "1-bfs");
  EXPECT_EQ(trace.rows[2].proc_activity[0], "idle");  // nw done at 112
  EXPECT_EQ(trace.rows[4].proc_activity[2], "4-cd");
  EXPECT_NEAR(trace.end_time, 318.093, 1e-6);
  const std::string text = sim::format_trace(system_, trace);
  EXPECT_NE(text.find("End time: 318.093"), std::string::npos);
}

// With a *finite* but fast link, the example still holds: the bfs inputs are
// small (2034736 elements ≈ 8.1 MB ≈ 2 ms at 4 GB/s) and Type-1 level-1
// kernels have no predecessors, so no transfers occur before the sink.
TEST_F(Figure5, HoldsAtPaperLinkRate) {
  const dag::Dag graph = figure5_graph();
  sim::System system4(sim::SystemConfig::paper_default(4.0));
  const sim::LutCostModel cost(lut::paper_lookup_table(), system4);
  core::Apt apt(8.0);
  sim::Engine engine(graph, system4, cost);
  const auto result = engine.run(apt);
  // The cd sink now pays a transfer for its inputs; everything else is equal.
  EXPECT_EQ(result.schedule[2].proc, 1u);
  EXPECT_GE(result.makespan, 212.093);
}

}  // namespace
}  // namespace apt
