#include "sim/cost_model.hpp"

#include <gtest/gtest.h>

#include "lut/paper_data.hpp"
#include "test_helpers.hpp"

namespace apt::sim {
namespace {

TEST(LutCostModel, ExecTimesComeFromTheTable) {
  const System sys = test::paper_system();
  const LutCostModel cost(lut::paper_lookup_table(), sys);
  dag::Dag d;
  d.add_node("mm", 16000000);
  EXPECT_DOUBLE_EQ(cost.exec_time_ms(d, 0, sys.processor(0)), 1967.286);
  EXPECT_DOUBLE_EQ(cost.exec_time_ms(d, 0, sys.processor(1)), 0.061);
  EXPECT_DOUBLE_EQ(cost.exec_time_ms(d, 0, sys.processor(2)), 76293.945);
}

TEST(LutCostModel, SameTypeInstancesShareTimes) {
  SystemConfig cfg;
  cfg.processors = {lut::ProcType::GPU, lut::ProcType::GPU};
  const System sys(cfg);
  const LutCostModel cost(lut::paper_lookup_table(), sys);
  dag::Dag d;
  d.add_node("srad", 134217728);
  EXPECT_DOUBLE_EQ(cost.exec_time_ms(d, 0, sys.processor(0)),
                   cost.exec_time_ms(d, 0, sys.processor(1)));
}

TEST(LutCostModel, StrictModeThrowsOnUnknownSize) {
  const System sys = test::paper_system();
  const LutCostModel cost(lut::paper_lookup_table(), sys);
  dag::Dag d;
  d.add_node("mm", 123456);  // not a measured size
  EXPECT_THROW(cost.exec_time_ms(d, 0, sys.processor(0)), std::out_of_range);
}

TEST(LutCostModel, LenientModeFallsBackToNearestSize) {
  const System sys = test::paper_system();
  const LutCostModel cost(lut::paper_lookup_table(), sys, /*strict=*/false);
  dag::Dag d;
  d.add_node("mm", 260000);  // nearest measured: 250000
  EXPECT_DOUBLE_EQ(cost.exec_time_ms(d, 0, sys.processor(0)), 29.631);
}

TEST(LutCostModel, TransferUsesProducerSizeAndLinkRate) {
  const System sys = test::paper_system(4.0);
  const LutCostModel cost(lut::paper_lookup_table(), sys);
  dag::Dag d;
  d.add_node("bfs", 2034736);
  d.add_node("cd", 250000);
  d.add_edge(0, 1);
  // 2034736 elements * 4 B = 8138944 B; at 4e6 B/ms -> 2.034736 ms.
  EXPECT_NEAR(cost.transfer_time_ms(d, 0, 1, sys.processor(2),
                                    sys.processor(0)),
              2.034736, 1e-9);
  EXPECT_DOUBLE_EQ(cost.transfer_time_ms(d, 0, 1, sys.processor(1),
                                         sys.processor(1)),
                   0.0);
}

TEST(LutCostModel, TransferScalesWithRate) {
  const System s4 = test::paper_system(4.0);
  const System s8 = test::paper_system(8.0);
  const LutCostModel c4(lut::paper_lookup_table(), s4);
  const LutCostModel c8(lut::paper_lookup_table(), s8);
  dag::Dag d;
  d.add_node("nw", 16777216);
  d.add_node("cd", 250000);
  d.add_edge(0, 1);
  const double t4 =
      c4.transfer_time_ms(d, 0, 1, s4.processor(0), s4.processor(1));
  const double t8 =
      c8.transfer_time_ms(d, 0, 1, s8.processor(0), s8.processor(1));
  EXPECT_NEAR(t4, 2.0 * t8, 1e-12);
}

TEST(LutCostModel, EmptyTableRejected) {
  const System sys = test::paper_system();
  EXPECT_THROW(LutCostModel(lut::LookupTable{}, sys), std::invalid_argument);
}

TEST(MatrixCostModel, ExecAndCommByIndex) {
  const System sys = test::generic_system(2);
  MatrixCostModel cost({{1.0, 2.0}, {3.0, 4.0}});
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  d.add_edge(0, 1);
  cost.set_comm_cost(0, 1, 7.5);
  EXPECT_DOUBLE_EQ(cost.exec_time_ms(d, 0, sys.processor(1)), 2.0);
  EXPECT_DOUBLE_EQ(cost.exec_time_ms(d, 1, sys.processor(0)), 3.0);
  EXPECT_DOUBLE_EQ(
      cost.transfer_time_ms(d, 0, 1, sys.processor(0), sys.processor(1)), 7.5);
  EXPECT_DOUBLE_EQ(
      cost.transfer_time_ms(d, 0, 1, sys.processor(1), sys.processor(1)), 0.0);
}

TEST(MatrixCostModel, UnsetEdgesAreFree) {
  const System sys = test::generic_system(2);
  MatrixCostModel cost({{1.0, 1.0}, {1.0, 1.0}});
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  d.add_edge(0, 1);
  EXPECT_DOUBLE_EQ(
      cost.transfer_time_ms(d, 0, 1, sys.processor(0), sys.processor(1)), 0.0);
}

TEST(MatrixCostModel, Validation) {
  using Matrix = std::vector<std::vector<TimeMs>>;
  EXPECT_THROW(MatrixCostModel(Matrix{}), std::invalid_argument);
  EXPECT_THROW(MatrixCostModel(Matrix{{}}), std::invalid_argument);
  EXPECT_THROW(MatrixCostModel(Matrix{{1.0}, {1.0, 2.0}}),
               std::invalid_argument);
  MatrixCostModel ok(Matrix{{1.0}});
  EXPECT_THROW(ok.set_comm_cost(0, 1, -1.0), std::invalid_argument);
}

TEST(MatrixCostModel, OutOfRangeQueriesThrow) {
  const System sys = test::generic_system(2);
  MatrixCostModel cost({{1.0, 2.0}});
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  EXPECT_THROW(cost.exec_time_ms(d, 1, sys.processor(0)), std::out_of_range);
}

TEST(CostModelAverages, MeanExecOverProcessors) {
  const System sys = test::generic_system(3);
  MatrixCostModel cost({{14.0, 16.0, 9.0}});
  dag::Dag d;
  d.add_node("t1", 1);
  EXPECT_DOUBLE_EQ(cost.average_exec_time_ms(d, 0, sys), 13.0);
}

TEST(CostModelAverages, MeanCommOverDistinctPairs) {
  const System sys = test::generic_system(3);
  MatrixCostModel cost({{1, 1, 1}, {1, 1, 1}});
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  d.add_edge(0, 1);
  cost.set_comm_cost(0, 1, 18.0);
  // All six ordered distinct pairs cost 18 -> mean 18 (same-proc excluded).
  EXPECT_DOUBLE_EQ(cost.average_transfer_time_ms(d, 0, 1, sys), 18.0);
}

TEST(CostModelAverages, SingleProcessorCommIsZero) {
  const System sys = test::generic_system(1);
  MatrixCostModel cost({{1}, {1}});
  dag::Dag d;
  d.add_node("a", 1);
  d.add_node("b", 1);
  d.add_edge(0, 1);
  cost.set_comm_cost(0, 1, 18.0);
  EXPECT_DOUBLE_EQ(cost.average_transfer_time_ms(d, 0, 1, sys), 0.0);
}

}  // namespace
}  // namespace apt::sim
