// TSan-targeted stress for util::ThreadPool: rapid submit/drain cycles,
// exceptions escaping tasks mid-batch, and teardown races (destruction
// immediately after — and interleaved with — batch completion). The
// assertions are deliberately light; the point of this suite is to put
// every ThreadPool synchronisation edge under ThreadSanitizer
// (APT_SANITIZE=thread), where a torn generation counter, a worker
// touching a dead stack Batch, or an unsynchronised first_error read
// turns into a hard CI failure.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace apt::util {
namespace {

TEST(ThreadPoolStress, RapidSubmitDrainCycles) {
  // Many tiny batches back to back: the generation handshake and the
  // busy_-count retirement path run hot with no think time between them.
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  constexpr std::size_t kRounds = 400;
  constexpr std::size_t kCount = 17;
  for (std::size_t round = 0; round < kRounds; ++round) {
    pool.for_each_index(kCount, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), kRounds * kCount);
}

TEST(ThreadPoolStress, AlternatingBatchSizes) {
  // Alternate exhausted batches (fewer indices than workers) with wide
  // ones so late-waking workers repeatedly find current_ == nullptr.
  ThreadPool pool(8);
  std::atomic<std::size_t> total{0};
  for (std::size_t round = 0; round < 200; ++round) {
    const std::size_t count = (round % 2 == 0) ? 2 : 64;
    pool.for_each_index(count, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 100u * 2 + 100u * 64);
}

TEST(ThreadPoolStress, ExceptionsThrownFromTasksEveryBatch) {
  // A failing index in every round: the error mutex and the first_error
  // slot are exercised concurrently with normal completions, and the pool
  // must stay fully usable after each rethrow.
  ThreadPool pool(4);
  std::atomic<std::size_t> completed{0};
  for (std::size_t round = 0; round < 100; ++round) {
    EXPECT_THROW(pool.for_each_index(32,
                                     [&](std::size_t i) {
                                       if (i % 8 == 3)
                                         throw std::runtime_error("boom");
                                       completed.fetch_add(
                                           1, std::memory_order_relaxed);
                                     }),
                 std::runtime_error);
  }
  EXPECT_EQ(completed.load(), 100u * (32 - 4));
}

TEST(ThreadPoolStress, DestructionImmediatelyAfterBatch) {
  // The tightest teardown window: the destructor's stop_ handshake runs
  // while workers are still retiring from the just-drained batch (between
  // --busy_ and their next wait). The stack-allocated Batch dies with the
  // pool, so any straggler touching it is a TSan use-after-free.
  for (std::size_t round = 0; round < 150; ++round) {
    std::atomic<std::size_t> hits{0};
    {
      ThreadPool pool(4);
      pool.for_each_index(8, [&](std::size_t) {
        hits.fetch_add(1, std::memory_order_relaxed);
      });
    }  // destroyed with workers possibly mid-retirement
    EXPECT_EQ(hits.load(), 8u);
  }
}

TEST(ThreadPoolStress, DestructionAfterThrowingBatch) {
  // Teardown straight after an exceptional batch: first_error was consumed
  // on the caller, workers may still hold the error mutex's cacheline.
  for (std::size_t round = 0; round < 100; ++round) {
    ThreadPool pool(3);
    EXPECT_THROW(pool.for_each_index(16,
                                     [](std::size_t i) {
                                       if (i == 5)
                                         throw std::runtime_error("late");
                                     }),
                 std::runtime_error);
  }
}

TEST(ThreadPoolStress, NestedParallelForIndex) {
  // parallel_for_index spawning pools from pooled workers: construction
  // and destruction of inner pools race against the outer batch protocol.
  std::atomic<std::size_t> total{0};
  parallel_for_index(8, 4, [&](std::size_t) {
    parallel_for_index(16, 2, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 8u * 16);
}

TEST(ThreadPoolStress, ManyShortLivedPools) {
  // Construction/destruction churn with zero or trivial work: the
  // spawn-then-stop handshake must not race the worker_loop startup.
  for (std::size_t round = 0; round < 200; ++round) {
    ThreadPool pool(2 + round % 3);
    if (round % 4 == 0) continue;  // destroy without ever submitting
    std::atomic<int> ran{0};
    pool.for_each_index(3, [&](std::size_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), 3);
  }
}

}  // namespace
}  // namespace apt::util
