// The open-system stream engine: arrival processes, multi-instance
// scheduling, retirement, open-system metrics, and the cross-instance
// validation invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "core/policy_factory.hpp"
#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"
#include "stream/stream_engine.hpp"
#include "test_helpers.hpp"

namespace apt {
namespace {

/// A source of identical single-kernel applications.
stream::DagSource single_kernel_source() {
  return [](std::size_t) {
    dag::Dag d;
    d.add_node("k", 1);
    return d;
  };
}

/// Unit-cost matrix model for `procs` processors at `t` ms per kernel.
sim::MatrixCostModel unit_cost(std::size_t procs, double t) {
  return sim::MatrixCostModel(
      {std::vector<sim::TimeMs>(procs, t)});
}

// --- Arrival processes --------------------------------------------------------

TEST(Arrivals, PoissonMatchesApplyPoissonArrivalsSeedContract) {
  // The documented contract: ArrivalProcess(poisson, rate, seed) yields the
  // exact release sequence apply_poisson_arrivals(mean = 1/rate, seed)
  // stamps onto entry kernels.
  dag::Dag d;
  for (int i = 0; i < 50; ++i) d.add_node("k", 1);
  dag::apply_poisson_arrivals(d, 100.0, 0xFEED);

  stream::ArrivalProcess process(
      stream::ArrivalSpec::poisson(1.0 / 100.0, 0xFEED));
  for (dag::NodeId n = 0; n < d.node_count(); ++n) {
    const auto t = process.next();
    ASSERT_TRUE(t.has_value());
    EXPECT_DOUBLE_EQ(*t, d.node(n).release_ms) << n;
  }
}

TEST(Arrivals, PoissonIsStrictlyIncreasing) {
  stream::ArrivalProcess process(stream::ArrivalSpec::poisson(0.5, 7));
  double prev = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const auto t = process.next();
    ASSERT_TRUE(t.has_value());
    EXPECT_GT(*t, prev);
    prev = *t;
  }
}

TEST(Arrivals, DeterministicGapsAreExact) {
  stream::ArrivalProcess process(stream::ArrivalSpec::deterministic(0.25));
  EXPECT_DOUBLE_EQ(*process.next(), 4.0);
  EXPECT_DOUBLE_EQ(*process.next(), 8.0);
  EXPECT_DOUBLE_EQ(*process.next(), 12.0);
}

TEST(Arrivals, TraceReplaysAndExhausts) {
  stream::ArrivalProcess process(
      stream::ArrivalSpec::trace({0.0, 1.5, 1.5, 9.0}));
  EXPECT_DOUBLE_EQ(*process.next(), 0.0);
  EXPECT_DOUBLE_EQ(*process.next(), 1.5);
  EXPECT_DOUBLE_EQ(*process.next(), 1.5);
  EXPECT_DOUBLE_EQ(*process.next(), 9.0);
  EXPECT_FALSE(process.next().has_value());
}

TEST(Arrivals, SpecValidation) {
  EXPECT_THROW(stream::ArrivalSpec::poisson(0.0, 1), std::invalid_argument);
  EXPECT_THROW(stream::ArrivalSpec::deterministic(-1.0),
               std::invalid_argument);
  EXPECT_THROW(stream::ArrivalSpec::trace({3.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(stream::parse_arrival_kind("fancy"), std::invalid_argument);
  EXPECT_EQ(stream::parse_arrival_kind("Poisson"),
            stream::ArrivalKind::Poisson);
  EXPECT_EQ(stream::parse_arrival_kind("deterministic"),
            stream::ArrivalKind::Deterministic);
}

TEST(Arrivals, EveryKindRoundTripsThroughItsName) {
  // parse(to_string(k)) == k — including "trace", which the parser used to
  // reject even though to_string produced it.
  for (stream::ArrivalKind kind :
       {stream::ArrivalKind::Poisson, stream::ArrivalKind::Deterministic,
        stream::ArrivalKind::Trace}) {
    EXPECT_EQ(stream::parse_arrival_kind(stream::to_string(kind)), kind)
        << stream::to_string(kind);
  }
}

TEST(Arrivals, DeterministicClockIsExactOverLongHorizons) {
  // Arrival k must be exactly k/rate: the old `clock_ += 1/rate`
  // accumulator drifted by rounding over ~10^6 arrivals, breaking
  // bit-identity between runs replaying different prefixes of the stream.
  const double rate = 0.3;  // 1/0.3 is not exactly representable
  stream::ArrivalProcess process(stream::ArrivalSpec::deterministic(rate));
  constexpr std::uint64_t kArrivals = 1000000;
  double last = 0.0;
  for (std::uint64_t k = 1; k <= kArrivals; ++k) {
    const auto t = process.next();
    ASSERT_TRUE(t.has_value());
    if (k == kArrivals || k == 1 || k == 999) last = *t;
    if (k == 1) EXPECT_EQ(*t, 1.0 / rate);
    if (k == 999) EXPECT_EQ(*t, 999.0 / rate);
  }
  EXPECT_EQ(last, static_cast<double>(kArrivals) / rate);  // bitwise
}

TEST(StreamOptions, RequiresABoundedRun) {
  stream::StreamOptions opts;  // poisson, no cap, no horizon
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.max_apps = 10;
  EXPECT_NO_THROW(opts.validate());
  opts.max_apps = 0;
  opts.horizon_ms = 100.0;
  EXPECT_NO_THROW(opts.validate());
  opts.arrivals = stream::ArrivalSpec::trace({1.0});
  opts.horizon_ms = 0.0;
  EXPECT_NO_THROW(opts.validate());  // traces are finite by construction
}

// --- Single-arrival equivalence with the closed-system engine ----------------

TEST(StreamEngine, SingleArrivalReproducesEngineExactly) {
  const sim::System system = test::paper_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), system);
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, 0);

  // AG exercises the enqueue path; APT and MET the assign path.
  for (const char* spec : {"apt:4", "met", "spn", "ag"}) {
    const auto batch_policy = core::make_policy(spec);
    sim::Engine engine(graph, system, cost);
    const sim::SimResult batch = engine.run(*batch_policy);

    stream::StreamOptions opts;
    opts.arrivals = stream::ArrivalSpec::trace({0.0});
    opts.record_schedules = true;
    stream::StreamEngine stream_engine(
        system, cost, [&](std::size_t) { return graph; }, opts);
    const auto stream_policy = core::make_policy(spec);
    const stream::StreamOutcome outcome = stream_engine.run(*stream_policy);

    ASSERT_EQ(outcome.schedules.size(), 1u) << spec;
    const sim::SimResult& streamed = outcome.schedules[0].result;
    ASSERT_EQ(streamed.schedule.size(), batch.schedule.size()) << spec;
    EXPECT_EQ(streamed.makespan, batch.makespan) << spec;  // bitwise
    for (dag::NodeId n = 0; n < graph.node_count(); ++n) {
      const sim::ScheduledKernel& a = batch.schedule[n];
      const sim::ScheduledKernel& b = streamed.schedule[n];
      EXPECT_EQ(a.proc, b.proc) << spec << " node " << n;
      EXPECT_EQ(a.exec_start, b.exec_start) << spec << " node " << n;
      EXPECT_EQ(a.finish_time, b.finish_time) << spec << " node " << n;
      EXPECT_EQ(a.transfer_ms, b.transfer_ms) << spec << " node " << n;
      EXPECT_EQ(a.alternative, b.alternative) << spec << " node " << n;
    }
    EXPECT_EQ(outcome.metrics.apps_completed, 1u);
    EXPECT_EQ(outcome.metrics.flow_ms.avg, batch.makespan) << spec;
  }
}

TEST(StreamEngine, LateSingleArrivalShiftsTheScheduleRigidly) {
  const sim::System system = test::paper_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), system);
  const dag::Dag graph = dag::paper_graph(dag::DfgType::Type2, 1);

  const auto batch_policy = core::make_policy("apt:4");
  sim::Engine engine(graph, system, cost);
  const sim::SimResult batch = engine.run(*batch_policy);

  const double t0 = 1234.5;
  stream::StreamOptions opts;
  opts.arrivals = stream::ArrivalSpec::trace({t0});
  opts.record_schedules = true;
  stream::StreamEngine stream_engine(
      system, cost, [&](std::size_t) { return graph; }, opts);
  const auto stream_policy = core::make_policy("apt:4");
  const stream::StreamOutcome outcome = stream_engine.run(*stream_policy);

  // Costs are time-invariant, so the whole schedule shifts by the arrival.
  ASSERT_EQ(outcome.schedules.size(), 1u);
  EXPECT_DOUBLE_EQ(outcome.metrics.flow_ms.avg, batch.makespan);
  for (dag::NodeId n = 0; n < graph.node_count(); ++n) {
    EXPECT_NEAR(outcome.schedules[0].result.schedule[n].exec_start,
                batch.schedule[n].exec_start + t0, 1e-6);
  }
}

// --- Multi-instance behaviour -------------------------------------------------

TEST(StreamEngine, OverlappingInstancesShareTheProcessorExclusively) {
  const sim::System system = test::generic_system(1);
  const auto cost = unit_cost(1, 2.0);
  stream::StreamOptions opts;
  opts.arrivals = stream::ArrivalSpec::trace({0.0, 1.0});
  opts.record_schedules = true;
  stream::StreamEngine engine(system, cost, single_kernel_source(), opts);
  const auto policy = core::make_policy("met");
  const stream::StreamOutcome outcome = engine.run(*policy);

  ASSERT_EQ(outcome.schedules.size(), 2u);
  std::vector<sim::StreamAppView> views;
  for (const auto& app : outcome.schedules)
    views.push_back({&app.dag, app.arrival_ms, &app.result});
  const auto violations = sim::validate_stream_schedule(system, views);
  for (const auto& v : violations) ADD_FAILURE() << v.message;

  // App 0 occupies [0, 2); app 1 (ready at 1) must wait until 2.
  EXPECT_DOUBLE_EQ(outcome.schedules[0].result.schedule[0].exec_start, 0.0);
  EXPECT_DOUBLE_EQ(outcome.schedules[0].result.schedule[0].finish_time, 2.0);
  EXPECT_DOUBLE_EQ(outcome.schedules[1].result.schedule[0].exec_start, 2.0);
  EXPECT_DOUBLE_EQ(outcome.schedules[1].result.schedule[0].finish_time, 4.0);
  EXPECT_DOUBLE_EQ(outcome.metrics.flow_ms.max, 3.0);  // app 1: 4 - 1
}

TEST(StreamEngine, ValidateStreamRejectsCrossInstanceOverlap) {
  const sim::System system = test::generic_system(1);
  // Two fake one-kernel apps occupying the same processor at once.
  dag::Dag d1, d2;
  d1.add_node("a", 1);
  d2.add_node("b", 1);
  auto mk = [](double start, double len) {
    sim::SimResult r;
    sim::ScheduledKernel k;
    k.node = 0;
    k.proc = 0;
    k.ready_time = start;
    k.assign_time = start;
    k.exec_start = start;
    k.exec_ms = len;
    k.finish_time = start + len;
    r.schedule = {k};
    r.makespan = k.finish_time;
    return r;
  };
  const sim::SimResult r1 = mk(0.0, 5.0);
  const sim::SimResult r2 = mk(3.0, 5.0);  // overlaps r1 on proc 0
  const std::vector<sim::StreamAppView> views = {{&d1, 0.0, &r1},
                                                 {&d2, 3.0, &r2}};
  const auto violations = sim::validate_stream_schedule(system, views);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].message.find("overlaps"), std::string::npos);

  // The same apps back to back are clean.
  const sim::SimResult r3 = mk(5.0, 5.0);
  const std::vector<sim::StreamAppView> ok = {{&d1, 0.0, &r1},
                                              {&d2, 3.0, &r3}};
  EXPECT_TRUE(sim::validate_stream_schedule(system, ok).empty());
}

TEST(StreamEngine, MD1SanityBoundAtLowLoad) {
  // M/D/1 with deterministic service S = 2 ms and λ = 0.0005 apps/ms:
  // ρ = λS = 0.001, so the mean queueing wait ρS / 2(1-ρ) ≈ 0.001 ms. The
  // measured mean flow must sit between S (the floor) and S plus a few
  // times the closed-form wait; utilization must track ρ.
  const sim::System system = test::generic_system(1);
  const auto cost = unit_cost(1, 2.0);
  stream::StreamOptions opts;
  opts.arrivals = stream::ArrivalSpec::poisson(0.0005, 11);
  opts.max_apps = 500;
  stream::StreamEngine engine(system, cost, single_kernel_source(), opts);
  const auto policy = core::make_policy("met");
  const stream::StreamOutcome outcome = engine.run(*policy);
  const sim::StreamMetrics& m = outcome.metrics;

  ASSERT_EQ(m.apps_completed, 500u);
  const double service = 2.0;
  const double rho = 0.0005 * service;
  const double md1_wait = rho * service / (2.0 * (1.0 - rho));
  EXPECT_GE(m.flow_ms.avg, service);
  EXPECT_LE(m.flow_ms.avg, service + 10.0 * md1_wait + 1e-9);
  EXPECT_NEAR(m.avg_utilization, rho, rho);  // within 2x
  // Throughput ≈ λ (in apps/s) when the system is stable.
  EXPECT_NEAR(m.throughput_apps_per_s, 0.0005 * 1000.0, 0.20);
  EXPECT_LE(m.queue_depth_max, 2u);
}

TEST(StreamEngine, SaturatedStreamBuildsBacklogAndSlowdown) {
  // λ = 2 apps/ms against S = 2 ms on one processor: ρ = 4, the backlog
  // must grow roughly linearly and slowdowns blow up.
  const sim::System system = test::generic_system(1);
  const auto cost = unit_cost(1, 2.0);
  stream::StreamOptions opts;
  opts.arrivals = stream::ArrivalSpec::poisson(2.0, 3);
  opts.max_apps = 200;
  stream::StreamEngine engine(system, cost, single_kernel_source(), opts);
  const auto policy = core::make_policy("met");
  const stream::StreamOutcome outcome = engine.run(*policy);
  const sim::StreamMetrics& m = outcome.metrics;

  EXPECT_EQ(m.apps_completed, 200u);
  EXPECT_GT(m.live_apps_max, 100u);
  EXPECT_GT(m.slowdown.avg, 10.0);
  // The drain is service-bound: end ≈ 200 × 2 ms.
  EXPECT_NEAR(m.end_ms, 400.0, 40.0);
}

TEST(StreamEngine, RetirementKeepsLiveSetSmallOverLongRuns) {
  // 5000 sequential apps with gaps far beyond service: at most one app is
  // ever live, demonstrating instance retirement (the run would otherwise
  // accumulate 5000 instances).
  const sim::System system = test::generic_system(1);
  const auto cost = unit_cost(1, 2.0);
  stream::StreamOptions opts;
  opts.arrivals = stream::ArrivalSpec::deterministic(0.1);  // gap 10 ms
  opts.max_apps = 5000;
  stream::StreamEngine engine(system, cost, single_kernel_source(), opts);
  const auto policy = core::make_policy("met");
  const stream::StreamOutcome outcome = engine.run(*policy);
  EXPECT_EQ(outcome.metrics.apps_completed, 5000u);
  EXPECT_EQ(outcome.metrics.live_apps_max, 1u);
  EXPECT_TRUE(outcome.schedules.empty());  // not recorded by default
}

TEST(StreamEngine, LiveAppGuardTripsUnderOverload) {
  const sim::System system = test::generic_system(1);
  const auto cost = unit_cost(1, 1000.0);
  stream::StreamOptions opts;
  opts.arrivals = stream::ArrivalSpec::deterministic(1.0);
  opts.max_apps = 100;
  opts.max_live_apps = 10;
  stream::StreamEngine engine(system, cost, single_kernel_source(), opts);
  const auto policy = core::make_policy("met");
  EXPECT_THROW(engine.run(*policy), std::runtime_error);
}

TEST(StreamEngine, RejectsStaticPolicies) {
  const sim::System system = test::paper_system();
  const sim::LutCostModel cost(lut::paper_lookup_table(), system);
  stream::StreamOptions opts;
  opts.arrivals = stream::ArrivalSpec::trace({0.0});
  stream::StreamEngine engine(
      system, cost,
      [](std::size_t) { return dag::paper_graph(dag::DfgType::Type1, 0); },
      opts);
  for (const char* spec : {"heft", "peft"}) {
    const auto policy = core::make_policy(spec);
    EXPECT_THROW(engine.run(*policy), std::invalid_argument) << spec;
  }
}

TEST(StreamEngine, ZeroKernelApplicationsRetireInstantly) {
  const sim::System system = test::generic_system(1);
  const auto cost = unit_cost(1, 2.0);
  stream::StreamOptions opts;
  opts.arrivals = stream::ArrivalSpec::trace({1.0, 2.0});
  stream::StreamEngine engine(
      system, cost, [](std::size_t) { return dag::Dag(); }, opts);
  const auto policy = core::make_policy("met");
  const stream::StreamOutcome outcome = engine.run(*policy);
  EXPECT_EQ(outcome.metrics.apps_completed, 2u);
  EXPECT_EQ(outcome.metrics.kernels_completed, 0u);
  EXPECT_DOUBLE_EQ(outcome.metrics.flow_ms.avg, 0.0);
}

TEST(StreamEngine, WarmupTruncationExcludesEarlyApps) {
  const sim::System system = test::generic_system(1);
  const auto cost = unit_cost(1, 2.0);
  stream::StreamOptions opts;
  opts.arrivals = stream::ArrivalSpec::trace({0.0, 10.0, 20.0, 30.0});
  opts.warmup_ms = 15.0;
  stream::StreamOptions no_warmup = opts;
  no_warmup.warmup_ms = 0.0;

  const auto run_with = [&](const stream::StreamOptions& o) {
    stream::StreamEngine engine(system, cost, single_kernel_source(), o);
    const auto policy = core::make_policy("met");
    return engine.run(*policy).metrics;
  };
  const sim::StreamMetrics truncated = run_with(opts);
  const sim::StreamMetrics full = run_with(no_warmup);
  EXPECT_EQ(truncated.apps_completed, 4u);
  EXPECT_EQ(truncated.apps_measured, 2u);  // arrivals at 20 and 30
  EXPECT_EQ(full.apps_measured, 4u);
}

// --- LevelTrace ---------------------------------------------------------------

TEST(LevelTrace, TimeWeightedAverageAndMax) {
  sim::LevelTrace trace;
  trace.set_window_start(0.0);
  trace.observe(0.0, 1);   // level 1 over [0, 4)
  trace.observe(4.0, 3);   // level 3 over [4, 6)
  trace.observe(6.0, 0);   // level 0 over [6, 10)
  trace.finish(10.0);
  EXPECT_DOUBLE_EQ(trace.time_weighted_avg(), (4.0 * 1 + 2.0 * 3) / 10.0);
  EXPECT_EQ(trace.max_level(), 3u);
}

TEST(LevelTrace, WindowClippingIgnoresWarmup) {
  sim::LevelTrace trace;
  trace.set_window_start(5.0);
  trace.observe(0.0, 10);  // entirely before the window start
  trace.observe(5.0, 2);   // level 2 over [5, 10)
  trace.finish(10.0);
  EXPECT_DOUBLE_EQ(trace.time_weighted_avg(), 2.0);
  EXPECT_EQ(trace.max_level(), 2u);
}

TEST(LevelTrace, ZeroDurationSpikesRegisterInMax) {
  sim::LevelTrace trace;
  trace.set_window_start(0.0);
  trace.observe(5.0, 10);  // attained and cleared at the same instant
  trace.observe(5.0, 0);
  trace.finish(10.0);
  EXPECT_EQ(trace.max_level(), 10u);
  EXPECT_DOUBLE_EQ(trace.time_weighted_avg(), 0.0);  // never persisted

  sim::LevelTrace warm;
  warm.set_window_start(6.0);
  warm.observe(5.0, 10);  // spike before the window: invisible
  warm.observe(5.0, 0);
  warm.finish(10.0);
  EXPECT_EQ(warm.max_level(), 0u);
}

TEST(LevelTrace, FinishDoesNotLeakPreWindowLevelsIntoTheWindowedMax) {
  // Regression: finish() used to stamp max_level_ unconditionally, so a
  // level last attained BEFORE the observation window opened leaked into
  // the windowed maximum whenever the trace ended at the boundary.
  sim::LevelTrace trace;
  trace.set_window_start(100.0);
  trace.observe(10.0, 7);  // entirely pre-window
  trace.finish(100.0);     // zero-length window
  EXPECT_EQ(trace.max_level(), 0u);
  EXPECT_DOUBLE_EQ(trace.time_weighted_avg(), 0.0);

  // The level genuinely persisting into the window still registers.
  sim::LevelTrace held;
  held.set_window_start(100.0);
  held.observe(10.0, 7);  // level 7 over [10, 150) — overlaps [100, 150)
  held.finish(150.0);
  EXPECT_EQ(held.max_level(), 7u);
  EXPECT_DOUBLE_EQ(held.time_weighted_avg(), 7.0);
}

TEST(LevelTrace, SampleBufferStaysBounded) {
  sim::LevelTrace trace(64);
  trace.set_window_start(0.0);
  for (int i = 0; i < 100000; ++i)
    trace.observe(static_cast<double>(i), static_cast<std::size_t>(i % 7));
  trace.finish(100000.0);
  EXPECT_LE(trace.samples().size(), 64u);
  EXPECT_GE(trace.samples().size(), 16u);
}

}  // namespace
}  // namespace apt
