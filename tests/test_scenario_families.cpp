// Structural unit tests of the scenario-generation subsystem: the family
// registry, the shape invariants of every generator, and byte-level
// determinism of the (family, kernels, seed) coordinates.
#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dag/serialize.hpp"

namespace apt {
namespace {

const dag::KernelPool& pool() {
  static const dag::KernelPool p = dag::KernelPool::paper_pool();
  return p;
}

TEST(ScenarioRegistry, ContainsTheSevenFamilies) {
  const auto names = scenario::family_names();
  ASSERT_EQ(names.size(), 7u);
  for (const char* expected : {"type1", "type2", "layered", "forkjoin",
                               "intree", "outtree", "cholesky"}) {
    EXPECT_TRUE(scenario::has_family(expected)) << expected;
  }
  EXPECT_FALSE(scenario::has_family("mystery"));
}

TEST(ScenarioRegistry, LookupIsCaseInsensitiveAndTrimmed) {
  EXPECT_STREQ(scenario::family("  ForkJoin ").name(), "forkjoin");
  EXPECT_STREQ(scenario::family("CHOLESKY").name(), "cholesky");
  EXPECT_THROW(scenario::family("nope"), std::invalid_argument);
}

TEST(ScenarioRegistry, GenerateBelowMinimumThrows) {
  for (const scenario::ScenarioFamily* family : scenario::all_families()) {
    ASSERT_GE(family->min_kernels(), 2u);
    EXPECT_THROW(family->generate(family->min_kernels() - 1, 1, pool()),
                 std::invalid_argument)
        << family->name();
    EXPECT_NO_THROW(family->generate(family->min_kernels(), 1, pool()))
        << family->name();
  }
}

TEST(ScenarioRegistry, EveryFamilyProducesTheRequestedNodeCount) {
  for (const scenario::ScenarioFamily* family : scenario::all_families()) {
    for (const std::size_t n : {16, 46, 73}) {
      const dag::Dag graph = family->generate(n, 11, pool());
      EXPECT_EQ(graph.node_count(), n) << family->name();
      EXPECT_TRUE(graph.is_weakly_connected()) << family->name() << " n=" << n;
      // Every kernel/size pair must come from the pool (i.e. be costable).
      for (dag::NodeId i = 0; i < graph.node_count(); ++i) {
        const dag::Node& node = graph.node(i);
        bool known = false;
        for (const auto& item : pool().items) {
          if (item.kernel != node.kernel) continue;
          for (const auto size : item.sizes)
            if (size == node.data_size) known = true;
        }
        EXPECT_TRUE(known) << family->name() << " node " << i;
      }
    }
  }
}

TEST(ScenarioRegistry, SameCoordinatesYieldByteIdenticalGraphs) {
  for (const scenario::ScenarioFamily* family : scenario::all_families()) {
    const dag::Dag a = family->generate(32, 5, pool());
    const dag::Dag b = family->generate(32, 5, pool());
    EXPECT_EQ(dag::to_text(a), dag::to_text(b)) << family->name();
    EXPECT_EQ(dag::structure_hash(a), dag::structure_hash(b))
        << family->name();
    // A different seed must move the structure hash (kernel labels change
    // even when the shape is fixed).
    const dag::Dag c = family->generate(32, 6, pool());
    EXPECT_NE(dag::structure_hash(a), dag::structure_hash(c))
        << family->name();
  }
}

TEST(ScenarioRegistry, PaperFamiliesMatchTheLegacyGenerators) {
  // The subsystem subsumes dag::generate: type1/type2 at the same
  // coordinates reproduce the legacy output byte for byte.
  for (const auto type : {dag::DfgType::Type1, dag::DfgType::Type2}) {
    const auto* name = type == dag::DfgType::Type1 ? "type1" : "type2";
    const dag::Dag legacy = dag::generate(type, 46, 12, pool());
    const dag::Dag scenario = scenario::generate(name, 46, 12, pool());
    EXPECT_EQ(dag::to_text(legacy), dag::to_text(scenario)) << name;
  }
}

// --- Per-family shape invariants ----------------------------------------------

TEST(ForkJoin, AlternatesForksAndJoins) {
  const dag::Dag graph = scenario::generate("forkjoin", 46, 3, pool());
  EXPECT_EQ(graph.entry_nodes(), std::vector<dag::NodeId>{0});
  EXPECT_EQ(graph.exit_nodes().size(), 1u);
  EXPECT_GE(graph.depth(), 3u);
  // Stage interior nodes have exactly one predecessor (the fork head) and
  // one successor (the join); their width is 2..8.
  for (dag::NodeId i = 0; i < graph.node_count(); ++i) {
    if (graph.in_degree(i) == 1 && graph.out_degree(i) == 1) {
      const dag::NodeId head = graph.predecessors(i)[0];
      EXPECT_LE(graph.out_degree(head), 8u);
    }
  }
}

TEST(InTree, EveryNodeButTheRootHasExactlyOneSuccessor) {
  const dag::Dag graph = scenario::generate("intree", 46, 3, pool());
  const dag::NodeId root = static_cast<dag::NodeId>(graph.node_count() - 1);
  EXPECT_EQ(graph.edge_count(), graph.node_count() - 1);  // a tree
  for (dag::NodeId i = 0; i < graph.node_count(); ++i) {
    EXPECT_LE(graph.in_degree(i), 3u) << "fan-in cap";
    if (i == root) {
      EXPECT_EQ(graph.out_degree(i), 0u);
    } else {
      ASSERT_EQ(graph.out_degree(i), 1u) << i;
      EXPECT_GT(graph.successors(i)[0], i) << "edges point toward the root";
    }
  }
}

TEST(OutTree, EveryNodeButTheRootHasExactlyOnePredecessor) {
  const dag::Dag graph = scenario::generate("outtree", 46, 3, pool());
  EXPECT_EQ(graph.edge_count(), graph.node_count() - 1);
  EXPECT_EQ(graph.entry_nodes(), std::vector<dag::NodeId>{0});
  for (dag::NodeId i = 0; i < graph.node_count(); ++i) {
    EXPECT_LE(graph.out_degree(i), 3u) << "fan-out cap";
    if (i == 0) {
      EXPECT_EQ(graph.in_degree(i), 0u);
    } else {
      ASSERT_EQ(graph.in_degree(i), 1u) << i;
      EXPECT_LT(graph.predecessors(i)[0], i);
    }
  }
}

TEST(Cholesky, TaskCountsFollowTheTetrahedralNumbers) {
  EXPECT_EQ(dag::cholesky_task_count(2), 4u);
  EXPECT_EQ(dag::cholesky_task_count(3), 10u);
  EXPECT_EQ(dag::cholesky_task_count(4), 20u);
  EXPECT_EQ(dag::cholesky_task_count(5), 35u);
  EXPECT_EQ(dag::cholesky_tiles_for(4), 2u);
  EXPECT_EQ(dag::cholesky_tiles_for(19), 3u);
  EXPECT_EQ(dag::cholesky_tiles_for(20), 4u);
  EXPECT_EQ(dag::cholesky_tiles_for(46), 5u);
  EXPECT_THROW(dag::cholesky_tiles_for(3), std::invalid_argument);
}

TEST(Cholesky, ExactTileGridHasTheFactorisationShape) {
  // n = 20 is exactly the 4-tile factorisation: single entry (the first
  // POTRF), single exit (the last POTRF), depth 3(T-1)+1 = 10 along the
  // critical path POTRF->TRSM->GEMM chain.
  const dag::Dag graph = scenario::generate("cholesky", 20, 9, pool());
  EXPECT_EQ(graph.entry_nodes(), std::vector<dag::NodeId>{0});
  EXPECT_EQ(graph.exit_nodes().size(), 1u);
  EXPECT_EQ(graph.depth(), 10u);
}

TEST(Cholesky, LeftoverKernelsHangOffTheFinalFactorisation) {
  const dag::Dag graph = scenario::generate("cholesky", 26, 9, pool());
  // Tiles = 4 (20 tasks); the 6 leftovers are post-factorisation tasks that
  // all depend on the final POTRF (node 19) and nothing else.
  for (dag::NodeId i = 20; i < 26; ++i) {
    ASSERT_EQ(graph.in_degree(i), 1u);
    EXPECT_EQ(graph.predecessors(i)[0], 19u);
    EXPECT_EQ(graph.out_degree(i), 0u);
  }
}

TEST(Layered, RespectsTheLayerStructure) {
  const dag::Dag graph = scenario::generate("layered", 46, 3, pool());
  const auto layers = static_cast<std::size_t>(std::lround(std::sqrt(46.0)));
  EXPECT_GE(graph.depth(), 2u);
  EXPECT_LE(graph.depth(), layers);
}

// --- structure_hash -----------------------------------------------------------

TEST(StructureHash, DistinguishesLabelsEdgesAndReleases) {
  dag::Dag a;
  a.add_node("mm", 4);
  a.add_node("mi", 8);
  a.add_edge(0, 1);
  dag::Dag same;
  same.add_node("mm", 4);
  same.add_node("mi", 8);
  same.add_edge(0, 1);
  EXPECT_EQ(dag::structure_hash(a), dag::structure_hash(same));

  dag::Dag no_edge;
  no_edge.add_node("mm", 4);
  no_edge.add_node("mi", 8);
  EXPECT_NE(dag::structure_hash(a), dag::structure_hash(no_edge));

  dag::Dag other_size;
  other_size.add_node("mm", 5);
  other_size.add_node("mi", 8);
  other_size.add_edge(0, 1);
  EXPECT_NE(dag::structure_hash(a), dag::structure_hash(other_size));

  dag::Dag released = same;
  released.set_release_ms(0, 1.5);
  EXPECT_NE(dag::structure_hash(a), dag::structure_hash(released));
}

}  // namespace
}  // namespace apt
