// Reproduces Table 13: percentage improvement of APT over the second-best
// dynamic policy (Eq. 13 for execution time, Eq. 14 for λ delay), for
// α ∈ {1.5, 2, 4, 8, 16} on both DFG types at 4 GB/s.
#include "bench_common.hpp"

int main() {
  using namespace apt;

  bench::heading("Table 13 — Improvement metrics for APT (percent)");
  util::TablePrinter t({"alpha", "T1 exec %", "T1 lambda %", "T2 exec %",
                        "T2 lambda %"});
  double t1_at_4 = 0.0;
  double t2_at_4 = 0.0;
  for (double alpha : core::paper_alphas()) {
    const core::Grid t1 = core::run_paper_grid(
        dag::DfgType::Type1, core::paper_policy_specs(alpha), 4.0);
    const core::Grid t2 = core::run_paper_grid(
        dag::DfgType::Type2, core::paper_policy_specs(alpha), 4.0);
    const double t1e = core::improvement_exec_pct(t1, 0);
    const double t1l = core::improvement_lambda_pct(t1, 0);
    const double t2e = core::improvement_exec_pct(t2, 0);
    const double t2l = core::improvement_lambda_pct(t2, 0);
    if (alpha == 4.0) {
      t1_at_4 = t1e;
      t2_at_4 = t2e;
    }
    t.add_row({util::format_double(alpha, 1), util::format_double(t1e, 3),
               util::format_double(t1l, 3), util::format_double(t2e, 3),
               util::format_double(t2l, 3)});
  }
  std::cout << t.to_string();
  bench::note(
      "Paper reference (Table 13): alpha=1.5/2 hover at ~0 (slightly "
      "negative); alpha=4 peaks at 18.223/20.455 (Type-1) and "
      "15.771/20.778 (Type-2); alpha=8/16 fall back (negative on Type-2).");
  bench::note("Measured peak at alpha=4: Type-1 " +
              util::format_double(t1_at_4, 2) + "%, Type-2 " +
              util::format_double(t2_at_4, 2) + "%.");
  bench::note(
      "Headline claim check — 'reduces execution time by 16% and 18% vs "
      "the second-best policy': " +
      std::string((t1_at_4 > 10.0 && t2_at_4 > 10.0) ? "REPRODUCED (within "
                                                       "workload noise)."
                                                     : "NOT reproduced."));
  return (t1_at_4 > 10.0 && t2_at_4 > 10.0) ? 0 : 1;
}
