// Contention-path benchmark: wall-clock of the engines with the src/net
// comm phase engaged, across the topology zoo — the CI trajectory and
// perf-regression gate for the interconnect subsystem.
//
// Two workloads per topology:
//   * a closed-system scenario sweep (layered + type2 graphs, APT/AG/HEFT
//     columns) through core::BatchRunner — the list-scheduler + engine
//     comm hot path;
//   * an open-system stream slice (Poisson arrivals, APT/AG) through
//     core::run_stream_plan — the slot-engine comm hot path.
// The ideal rows benchmark the zero-cost fast path, so a regression that
// slows the legacy engines (not just the new comm phase) is caught too.
//
//   bench_net_contention [--jobs N] [--json FILE]
//
// --json writes google-benchmark-shaped rows (bench::TrajectoryJson) diffed
// by scripts/bench_gate.py against bench/baselines/BENCH_net_contention.json
// (>25% median regression fails CI).
#include "bench_common.hpp"

#include "core/batch.hpp"
#include "core/stream_plan.hpp"
#include "net/topology.hpp"

using namespace apt;

int main(int argc, char** argv) {
  const std::size_t jobs = bench::jobs_from_args(argc, argv);
  const std::string json_path = bench::json_path_from_args(argc, argv);

  bench::heading(
      "Interconnect contention — engine wall-clock across the topology "
      "zoo");
  bench::note(
      "Closed: 12 layered+type2 graphs x {apt:4, ag, heft} on a synthetic\n"
      "platform (ccr 1, hetero 4). Open: Poisson stream, 60 s horizon,\n"
      "{apt:4, ag}. Bandwidth 1 GB/s, latency 0.05 ms on contended kinds.");

  const std::vector<std::string> topologies = {"ideal", "bus", "crossbar",
                                               "hier:2"};
  const core::BatchRunner runner(jobs);
  bench::TrajectoryJson trajectory("bench_net_contention", jobs);
  util::TablePrinter table(
      {"topology", "sweep wall ms", "avg makespan ms", "stream wall ms",
       "stream flow avg ms"});

  const bench::Stopwatch total;
  for (const std::string& name : topologies) {
    net::TopologySpec topology = net::parse_topology_spec(name);
    if (topology.kind != net::TopologyKind::Ideal) {
      topology.bandwidth_gbps = 1.0;
      topology.latency_ms = 0.05;
    }

    // Closed-system sweep.
    core::ScenarioSweepSpec spec;
    spec.families = {"layered", "type2"};
    spec.graphs_per_family = 6;
    spec.kernel_counts = {24, 46};
    spec.graph_seed = 11;
    lut::SyntheticLutSpec platform;
    platform.ccr = 1.0;
    platform.heterogeneity = 4.0;
    platform.seed = 11;
    spec.synthetic = platform;
    spec.topology = topology;
    const core::ExperimentPlan plan =
        core::make_scenario_plan(spec, {"apt:4", "ag", "heft"}, {4.0});
    const bench::Stopwatch sweep_clock;
    const core::BatchResult result = runner.run(plan);
    const double sweep_ms = sweep_clock.elapsed_ms();
    double makespan_sum = 0.0;
    for (const core::Cell& cell : result.cells)
      makespan_sum += cell.makespan_ms;
    const double avg_makespan =
        makespan_sum / static_cast<double>(result.cells.size());

    // Open-system stream slice.
    core::StreamPlan stream_plan;
    stream_plan.families = {"layered"};
    stream_plan.rates_per_ms = {0.0001};
    stream_plan.policy_specs = {"apt:4", "ag"};
    stream_plan.kernels = 46;
    stream_plan.horizon_ms = 60000.0;
    stream_plan.warmup_ms = 6000.0;
    stream_plan.base_seed = 11;
    stream_plan.table = lut::synthetic_lookup_table(platform);
    stream_plan.base_system.topology = topology;
    const bench::Stopwatch stream_clock;
    const core::StreamBatchResult stream_result =
        core::run_stream_plan(stream_plan, runner);
    const double stream_ms = stream_clock.elapsed_ms();
    double flow_sum = 0.0;
    for (const core::StreamCellResult& cell : stream_result.cells)
      flow_sum += cell.metrics.flow_ms.avg;
    const double avg_flow =
        flow_sum / static_cast<double>(stream_result.cells.size());

    const std::string label = topology.label();
    table.add_row({label, util::format_double(sweep_ms, 2),
                   util::format_double(avg_makespan, 1),
                   util::format_double(stream_ms, 2),
                   util::format_double(avg_flow, 1)});
    trajectory.add("net/sweep/" + label, sweep_ms,
                   {{"avg_makespan_ms", avg_makespan}});
    trajectory.add("net/stream/" + label, stream_ms,
                   {{"flow_avg_ms", avg_flow}});
  }
  const double total_ms = total.elapsed_ms();
  std::cout << table.to_string();
  bench::report_wall_clock(total_ms, jobs);
  bench::note(
      "Reading: the ideal rows are the legacy zero-cost fast path; the\n"
      "contended rows add the transfer-manager comm phase. Makespans and\n"
      "flows grow from ideal -> crossbar -> hier -> bus as the fabric\n"
      "serialises more of the edge traffic.");

  if (!json_path.empty()) {
    trajectory.add("net/total", total_ms);
    if (!trajectory.write(json_path)) return 1;
  }
  return 0;
}
