// Contention-path benchmark: wall-clock of the engines with the src/net
// comm phase engaged, across the topology zoo — the CI trajectory and
// perf-regression gate for the interconnect subsystem.
//
// Two workloads per topology:
//   * a closed-system scenario sweep (layered + type2 graphs, APT/AG/HEFT
//     columns) through core::BatchRunner — the list-scheduler + engine
//     comm hot path;
//   * an open-system stream slice (Poisson arrivals, APT/AG) through
//     core::run_stream_plan — the slot-engine comm hot path.
// The ideal rows benchmark the zero-cost fast path, so a regression that
// slows the legacy engines (not just the new comm phase) is caught too.
//
//   bench_net_contention [--jobs N] [--json FILE]
//
// --json writes google-benchmark-shaped rows (bench::TrajectoryJson) diffed
// by scripts/bench_gate.py against bench/baselines/BENCH_net_contention.json
// (>25% median regression fails CI).
#include "bench_common.hpp"

#include "core/batch.hpp"
#include "core/stream_plan.hpp"
#include "net/topology.hpp"
#include "net/transfer_manager.hpp"

using namespace apt;

namespace {

/// Event-lookup microbenchmark: `flights` concurrent bus messages, then
/// `polls` next_event_ms() calls — the pattern a saturated stream engine
/// produces (every kernel completion and arrival asks the fabric for its
/// next event without the fabric itself moving). The heap-backed lookup
/// answers each poll in O(1); the old implementation re-scanned every
/// active message per poll, so this row grew linearly with the in-flight
/// count and now must not.
double tm_saturation_ms(std::size_t flights, std::size_t polls) {
  net::TopologySpec spec = net::parse_topology_spec("bus");
  spec.bandwidth_gbps = 4.0;
  const net::Topology topo(spec, 3, 4.0);
  net::TransferManager tm(topo);
  for (std::size_t i = 0; i < flights; ++i)
    tm.start(i, 1e4 * static_cast<double>(i + 1), 0, 1, 0.0);
  tm.advance_to(0.0);  // activate the fleet and solve the shared rates
  volatile double sink = 0.0;  // keep the polls observable
  const bench::Stopwatch clock;
  for (std::size_t p = 0; p < polls; ++p) sink = sink + tm.next_event_ms();
  const double elapsed = clock.elapsed_ms();
  while (tm.busy()) tm.advance_to(tm.next_event_ms());  // drain cleanly
  return elapsed;
}

/// Membership-churn microbenchmark: `flows` long-lived messages spread over
/// 112 pairwise link-disjoint eastbound 2-hop routes of a 16x16 mesh, then
/// a churn loop that starts one short message per step and advances across
/// its activation and delivery. Each membership event dirties exactly one
/// 2-hop component of the 960-link fabric, so the incremental max-min
/// re-solver re-fills only that component: per-event work scales with the
/// flows *sharing the dirtied route* (~flows/112), not with the total
/// in-flight count — the old full re-solve re-ran progressive filling over
/// all 960 links and every active flow on every event.
double tm_resolve_ms(std::size_t flows, std::size_t churns) {
  net::TopologySpec spec = net::parse_topology_spec("mesh:16x16");
  spec.bandwidth_gbps = 1.0;
  const net::Topology topo(spec, 256, 1.0);
  net::TransferManager tm(topo);
  // Row r, even column c -> c+2: routes (r,c)->(r,c+1)->(r,c+2) share no
  // link with any other pair, so every route is its own component.
  std::vector<std::pair<net::ProcId, net::ProcId>> routes;
  for (net::ProcId r = 0; r < 16; ++r)
    for (net::ProcId c = 0; c + 2 < 16; c += 2)
      routes.emplace_back(r * 16 + c, r * 16 + c + 2);
  std::uint64_t tag = 0;
  for (std::size_t i = 0; i < flows; ++i) {
    const auto& [from, to] = routes[i % routes.size()];
    tm.start(tag++, 1e12, from, to, 0.0);  // outlives the whole churn
  }
  tm.advance_to(0.0);  // activate the background fleet, solve once
  net::TimeMs now = 0.0;
  const bench::Stopwatch clock;
  for (std::size_t k = 0; k < churns; ++k) {
    const auto& [from, to] = routes[k % routes.size()];
    tm.start(tag++, 1e3, from, to, now);  // drains well before the next step
    now += 1.0;
    tm.advance_to(now);  // activation re-solve + delivery re-solve
  }
  const double elapsed = clock.elapsed_ms();
  while (tm.busy()) tm.advance_to(tm.next_event_ms());  // drain cleanly
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t jobs = bench::jobs_from_args(argc, argv);
  const std::string json_path = bench::json_path_from_args(argc, argv);

  bench::heading(
      "Interconnect contention — engine wall-clock across the topology "
      "zoo");
  bench::note(
      "Closed: 12 layered+type2 graphs x {apt:4, ag, heft} on a synthetic\n"
      "platform (ccr 1, hetero 4). Open: Poisson stream, 60 s horizon,\n"
      "{apt:4, ag}. Bandwidth 1 GB/s, latency 0.05 ms on contended kinds.");

  const std::vector<std::string> topologies = {
      "ideal", "bus", "crossbar", "hier:2", "ring:5", "mesh:2x2",
      "fattree:2"};
  const core::BatchRunner runner(jobs);
  bench::TrajectoryJson trajectory("bench_net_contention", jobs);
  util::TablePrinter table(
      {"topology", "sweep wall ms", "avg makespan ms", "stream wall ms",
       "stream flow avg ms"});

  const bench::Stopwatch total;
  for (const std::string& name : topologies) {
    net::TopologySpec topology = net::parse_topology_spec(name);
    if (topology.kind != net::TopologyKind::Ideal) {
      topology.bandwidth_gbps = 1.0;
      topology.latency_ms = 0.05;
    }

    // Closed-system sweep.
    core::ScenarioSweepSpec spec;
    spec.families = {"layered", "type2"};
    spec.graphs_per_family = 6;
    spec.kernel_counts = {24, 46};
    spec.graph_seed = 11;
    lut::SyntheticLutSpec platform;
    platform.ccr = 1.0;
    platform.heterogeneity = 4.0;
    platform.seed = 11;
    spec.synthetic = platform;
    spec.topology = topology;
    const core::ExperimentPlan plan =
        core::make_scenario_plan(spec, {"apt:4", "ag", "heft"}, {4.0});
    const bench::Stopwatch sweep_clock;
    const core::BatchResult result = runner.run(plan);
    const double sweep_ms = sweep_clock.elapsed_ms();
    double makespan_sum = 0.0;
    for (const core::Cell& cell : result.cells)
      makespan_sum += cell.makespan_ms;
    const double avg_makespan =
        makespan_sum / static_cast<double>(result.cells.size());

    // Open-system stream slice.
    core::StreamPlan stream_plan;
    stream_plan.families = {"layered"};
    stream_plan.rates_per_ms = {0.0001};
    stream_plan.policy_specs = {"apt:4", "ag"};
    stream_plan.kernels = 46;
    stream_plan.horizon_ms = 60000.0;
    stream_plan.warmup_ms = 6000.0;
    stream_plan.base_seed = 11;
    stream_plan.table = lut::synthetic_lookup_table(platform);
    stream_plan.base_system.topology = topology;
    const bench::Stopwatch stream_clock;
    const core::StreamBatchResult stream_result =
        core::run_stream_plan(stream_plan, runner);
    const double stream_ms = stream_clock.elapsed_ms();
    double flow_sum = 0.0;
    for (const core::StreamCellResult& cell : stream_result.cells)
      flow_sum += cell.metrics.flow_ms.avg;
    const double avg_flow =
        flow_sum / static_cast<double>(stream_result.cells.size());

    const std::string label = topology.label();
    table.add_row({label, util::format_double(sweep_ms, 2),
                   util::format_double(avg_makespan, 1),
                   util::format_double(stream_ms, 2),
                   util::format_double(avg_flow, 1)});
    trajectory.add("net/sweep/" + label, sweep_ms,
                   {{"avg_makespan_ms", avg_makespan}});
    trajectory.add("net/stream/" + label, stream_ms,
                   {{"flow_avg_ms", avg_flow}});
  }
  // Saturated-fabric event lookup: thousands of in-flight messages, heavy
  // polling — locks in the heap-backed next_event_ms (the old linear scan
  // made the large row ~100x the small one instead of ~linear).
  util::TablePrinter saturation({"in-flight", "poll wall ms"});
  for (const std::size_t flights : {std::size_t{64}, std::size_t{2048}}) {
    const double ms = tm_saturation_ms(flights, 200000);
    saturation.add_row({std::to_string(flights),
                        util::format_double(ms, 3)});
    trajectory.add("net/tm_saturation/" + std::to_string(flights), ms);
  }
  // Membership churn under load: locks in the incremental max-min re-solve
  // (dirty-component restricted filling). Row cost follows the dirtied
  // component (~flows/112 sharers), not the total in-flight count — the
  // full re-solve walked all 960 links and every flow per event.
  util::TablePrinter resolve({"in-flight", "churn wall ms"});
  for (const std::size_t flows :
       {std::size_t{64}, std::size_t{512}, std::size_t{4096}}) {
    const double ms = tm_resolve_ms(flows, 2000);
    resolve.add_row({std::to_string(flows), util::format_double(ms, 3)});
    trajectory.add("net/tm_resolve/" + std::to_string(flows), ms);
  }

  const double total_ms = total.elapsed_ms();
  std::cout << table.to_string();
  std::cout << saturation.to_string();
  std::cout << resolve.to_string();
  bench::report_wall_clock(total_ms, jobs);
  bench::note(
      "Reading: the ideal rows are the legacy zero-cost fast path; the\n"
      "contended rows add the transfer-manager comm phase. Makespans and\n"
      "flows grow from ideal -> crossbar -> hier -> bus as the fabric\n"
      "serialises more of the edge traffic; the routed kinds (ring, mesh,\n"
      "fattree) additionally relay multi-hop paths under max-min sharing.\n"
      "tm_saturation rows time 200k next_event_ms polls — the heap keeps\n"
      "them flat in the in-flight count (the old scan grew linearly).\n"
      "tm_resolve rows time 2k membership churns on a 16x16 mesh — the\n"
      "incremental re-solver re-fills only the dirtied component, so the\n"
      "rows track the flows sharing one route (~flows/112) instead of the\n"
      "full-solve cost of every link and flow per event.");

  if (!json_path.empty()) {
    trajectory.add("net/total", total_ms);
    if (!trajectory.write(json_path)) return 1;
  }
  return 0;
}
