// Beyond-the-paper energy study: the thesis motivates heterogeneous
// systems with "high performance and power efficiency" but only evaluates
// time. With the board-power model (CPU 95/15 W, GPU 225/25 W, FPGA
// 25/2 W active/idle) this bench reports the energy each policy spends on
// the paper workloads and the energy-delay trade-off APT's α controls.
#include "bench_common.hpp"

#include "core/runner.hpp"
#include "dag/generator.hpp"

namespace {

struct EnergyRow {
  double avg_makespan_ms = 0.0;
  double avg_energy_j = 0.0;
};

EnergyRow measure(const std::string& spec, apt::dag::DfgType type) {
  using namespace apt;
  EnergyRow row;
  const auto graphs = dag::paper_workload(type);
  for (const auto& graph : graphs) {
    const core::RunOutcome outcome = core::run_paper_system(spec, graph, 4.0);
    row.avg_makespan_ms += outcome.metrics.makespan;
    row.avg_energy_j += outcome.metrics.total_energy_j;
  }
  row.avg_makespan_ms /= static_cast<double>(graphs.size());
  row.avg_energy_j /= static_cast<double>(graphs.size());
  return row;
}

}  // namespace

int main() {
  using namespace apt;

  for (const dag::DfgType type : {dag::DfgType::Type1, dag::DfgType::Type2}) {
    bench::heading(std::string("Energy per policy — ") + dag::to_string(type));
    util::TablePrinter t({"Policy", "Avg makespan (s)", "Avg energy (kJ)",
                          "Energy-delay (kJ*s)"});
    for (const char* spec : {"apt:1.5", "apt:4", "apt:16", "met", "spn",
                             "heft", "peft"}) {
      const EnergyRow row = measure(spec, type);
      t.add_row({spec,
                 util::format_double(row.avg_makespan_ms / 1000.0, 2),
                 util::format_double(row.avg_energy_j / 1000.0, 2),
                 util::format_double(row.avg_energy_j / 1000.0 *
                                         row.avg_makespan_ms / 1000.0,
                                     1)});
    }
    std::cout << t.to_string();
  }
  bench::note(
      "Reading: APT's alternative assignments trade idle-power waiting for "
      "active-power computing on a worse processor. On this power model the "
      "makespan reduction dominates (idle boards still burn watts), so "
      "APT(4) improves energy alongside time; large alpha erodes both.");
  return 0;
}
