// Reproduces the per-experiment MET-vs-APT(α=4) comparison for DFG Type-1
// (the thesis's second "Figure 8", printed after Figure 7) — the chart
// behind the headline 16-18% claim.
#include "bench_common.hpp"

int main() {
  using namespace apt;

  const core::Grid grid = core::run_paper_grid(
      dag::DfgType::Type1, {"apt:4", "met"}, 4.0);

  bench::heading(
      "Figure 8 — Execution time per experiment, DFG Type-1, MET vs APT(4)");
  util::TablePrinter t({"Experiment", "APT(4) (s)", "MET (s)", "APT/MET"});
  std::size_t apt_wins = 0;
  for (std::size_t g = 0; g < grid.experiment_count(); ++g) {
    const double apt = grid.cells[g][0].makespan_ms;
    const double met = grid.cells[g][1].makespan_ms;
    if (apt < met) ++apt_wins;
    t.add_row({std::to_string(g + 1),
               util::format_double(apt / 1000.0, 2),
               util::format_double(met / 1000.0, 2),
               util::format_double(apt / met, 3)});
  }
  std::cout << t.to_string();

  const double improvement = core::improvement_exec_pct(grid, 0);
  bench::note("Paper reference: APT(4) beats MET on 9/10 experiments; the "
              "average falls 16% (DFG Type-1, 18.223% in Table 13).");
  bench::note("Measured: APT(4) wins " + std::to_string(apt_wins) +
              "/10 experiments; average improvement " +
              util::format_double(improvement, 2) + "%.");
  return (apt_wins >= 8 && improvement > 10.0) ? 0 : 1;
}
