// Reproduces Table 12 (total λ delay for DFG Type-2 by all policies,
// APT at α = 4) and Figure 12 (avg λ vs α and transfer rate, Type-2).
#include "bench_common.hpp"

int main() {
  using namespace apt;

  const core::Grid grid = core::run_paper_grid(
      dag::DfgType::Type2, core::paper_policy_specs(4.0), 4.0);

  bench::heading("Table 12 — Total lambda delay (ms), DFG Type-2, alpha=4");
  bench::print_grid(grid, &core::Cell::lambda_total_ms, "milliseconds");
  bench::note(
      "Paper reference (shape): APT(4)'s lambda is below every other "
      "policy's on all 10 graphs. Deviation: the thesis also reports huge "
      "lambda for SPN; under our ready-queue-wait definition SPN's lambda "
      "is small because SPN never leaves a kernel unassigned — its damage "
      "appears as makespan instead (see EXPERIMENTS.md).");
  std::size_t apt_below_met = 0;
  for (std::size_t g = 0; g < grid.experiment_count(); ++g) {
    if (grid.cells[g][0].lambda_total_ms < grid.cells[g][1].lambda_total_ms)
      ++apt_below_met;
  }
  bench::note("Measured: APT(4) lambda below MET's on " +
              std::to_string(apt_below_met) + "/10 graphs.");

  bench::heading("Figure 12 — Avg. APT lambda vs alpha, DFG Type-2");
  const auto points = core::apt_alpha_sweep(
      dag::DfgType::Type2, core::paper_alphas(), {4.0, 8.0});
  util::TablePrinter t({"alpha", "4 GB/s (s)", "8 GB/s (s)"});
  for (std::size_t i = 0; i < points.size(); i += 2) {
    t.add_row({util::format_double(points[i].alpha, 1),
               util::format_double(points[i].avg_lambda_ms / 1000.0, 1),
               util::format_double(points[i + 1].avg_lambda_ms / 1000.0, 1)});
  }
  std::cout << t.to_string();
  bench::note("Paper reference: threshold_brk for both transfer rates sits "
              "at alpha = 4.");
  return apt_below_met >= 8 ? 0 : 1;
}
