// Scenario-family sweep bench: schedules every registered workload family on
// a synthetic platform (CCR 0.5, heterogeneity 4) with a representative
// policy set, reporting per-family average makespans and wall-clock — the
// CI trajectory artifact for the scenario-generation subsystem.
//
//   bench_scenario_families [--jobs N] [--json FILE]
//
// --json writes the rows in google-benchmark shape (bench::TrajectoryJson,
// one row per family with avg-makespan ride-alongs), the same parser
// surface as bench_streaming and bench_net_contention.
#include "bench_common.hpp"
#include "core/batch.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace apt;

struct FamilyRow {
  std::string family;
  double wall_ms = 0.0;
  std::vector<double> avg_makespan_ms;  // one per policy column
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t jobs = bench::jobs_from_args(argc, argv);
  const std::string json_path = bench::json_path_from_args(argc, argv);
  const std::vector<std::string> policies = {"apt:4", "met", "heft", "peft"};

  bench::heading(
      "Scenario families x {APT(4), MET, HEFT, PEFT}, synthetic platform "
      "(ccr 0.5, hetero 4)");
  bench::note(
      "6 seeded graphs per family (24/46/73 kernels), rates 4 GB/s; the\n"
      "per-family wall-clock tracks generator + scheduling throughput.");

  const core::BatchRunner runner(jobs);
  std::vector<FamilyRow> rows;
  bench::Stopwatch total;
  for (const std::string& name : scenario::family_names()) {
    core::ScenarioSweepSpec spec;
    spec.families = {name};
    spec.graphs_per_family = 6;
    spec.kernel_counts = {24, 46, 73};
    spec.graph_seed = 7;
    lut::SyntheticLutSpec platform;
    platform.ccr = 0.5;
    platform.heterogeneity = 4.0;
    platform.seed = 7;
    spec.synthetic = platform;

    const core::ExperimentPlan plan =
        core::make_scenario_plan(spec, policies, {4.0});
    bench::Stopwatch watch;
    const core::BatchResult result = runner.run(plan);
    FamilyRow row;
    row.family = name;
    row.wall_ms = watch.elapsed_ms();
    const core::Grid grid = result.grid(dag::DfgType::Type1);
    for (std::size_t p = 0; p < grid.policy_count(); ++p)
      row.avg_makespan_ms.push_back(grid.avg_makespan_ms(p));
    rows.push_back(std::move(row));
  }
  const double total_ms = total.elapsed_ms();

  std::vector<std::string> header = {"family"};
  for (const auto& p : policies) header.push_back("avg " + p + " ms");
  header.push_back("wall ms");
  util::TablePrinter table(header);
  for (const FamilyRow& row : rows) {
    std::vector<std::string> cells = {row.family};
    for (double ms : row.avg_makespan_ms)
      cells.push_back(util::format_double(ms, 1));
    cells.push_back(util::format_double(row.wall_ms, 2));
    table.add_row(std::move(cells));
  }
  std::cout << table.to_string();
  bench::report_wall_clock(total_ms, jobs);

  if (!json_path.empty()) {
    bench::TrajectoryJson trajectory("bench_scenario_families", jobs);
    for (const FamilyRow& row : rows) {
      std::vector<std::pair<std::string, double>> extras;
      for (std::size_t p = 0; p < policies.size(); ++p)
        extras.emplace_back("avg_makespan_ms/" + policies[p],
                            row.avg_makespan_ms[p]);
      trajectory.add("scenario/" + row.family, row.wall_ms, extras);
    }
    trajectory.add("scenario/total", total_ms);
    if (!trajectory.write(json_path)) return 1;
  }
  return 0;
}
