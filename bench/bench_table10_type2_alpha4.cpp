// Reproduces Table 10 (total computation time for DFG Type-2, APT at α = 4)
// and Figure 10 (per-experiment MET vs APT(4) on Type-2).
#include "bench_common.hpp"

int main() {
  using namespace apt;

  const core::Grid grid = core::run_paper_grid(
      dag::DfgType::Type2, core::paper_policy_specs(4.0), 4.0);

  bench::heading(
      "Table 10 — Total computation time (ms), DFG Type-2, alpha=4, 4 GB/s");
  bench::print_grid(grid, &core::Cell::makespan_ms, "milliseconds");
  bench::note(
      "Paper reference (shape): with alpha raised to 4, APT pulls ahead of "
      "MET on 9/10 graphs (e.g. graph 10: 137491 vs 172185).");

  bench::heading(
      "Figure 10 — Execution time per experiment, MET vs APT(4), Type-2");
  util::TablePrinter t({"Experiment", "APT(4) (s)", "MET (s)"});
  std::size_t apt_wins = 0;
  for (std::size_t g = 0; g < grid.experiment_count(); ++g) {
    const double apt = grid.cells[g][0].makespan_ms;
    const double met = grid.cells[g][1].makespan_ms;
    if (apt < met) ++apt_wins;
    t.add_row({std::to_string(g + 1), util::format_double(apt / 1000.0, 2),
               util::format_double(met / 1000.0, 2)});
  }
  std::cout << t.to_string();
  bench::note("Paper reference: APT(4) wins 9/10 Type-2 experiments.");
  bench::note("Measured: APT(4) wins " + std::to_string(apt_wins) + "/10.");
  return apt_wins >= 8 ? 0 : 1;
}
