// Reproduces Table 8 (total computation time for DFG Type-1 by all seven
// policies, α = 1.5, 4 GB/s) and Figure 6 (average execution time of the
// top-4 policies).
#include "bench_common.hpp"

int main() {
  using namespace apt;

  const core::Grid grid = core::run_paper_grid(
      dag::DfgType::Type1, core::paper_policy_specs(1.5), 4.0);

  bench::heading(
      "Table 8 — Total computation time (ms), DFG Type-1, alpha=1.5, 4 GB/s");
  bench::print_grid(grid, &core::Cell::makespan_ms, "milliseconds");
  bench::note(
      "Paper reference (shape): APT == MET on 9/10 graphs (alpha too small "
      "to act); SPN/SS/AG blow up by 2-20x on several graphs; HEFT and PEFT "
      "land a few percent behind APT/MET.");

  bench::heading("Figure 6 — Avg. execution time, top 4 policies (seconds)");
  {
    util::TablePrinter t({"Policy", "Avg exec (s)"});
    for (std::size_t p : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                          std::size_t{6}}) {
      t.add_row({grid.policy_names[p],
                 util::format_double(grid.avg_makespan_ms(p) / 1000.0, 3)});
    }
    std::cout << t.to_string();
  }
  bench::note(
      "Paper reference: APT 71.078, MET 71.049, HEFT 73.142, PEFT 71.794 "
      "(seconds) — near-parity of APT and MET at alpha=1.5, statics close "
      "behind.");
  bench::note("Measured APT-vs-MET gap: " +
              util::format_double(
                  (grid.avg_makespan_ms(0) - grid.avg_makespan_ms(1)) /
                      grid.avg_makespan_ms(1) * 100.0,
                  3) +
              "% (paper: +0.04%).");
  return 0;
}
