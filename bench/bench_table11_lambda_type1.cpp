// Reproduces Table 11 (total λ delay for DFG Type-1 by all policies,
// APT at α = 4) and Figure 11 (avg λ vs α and transfer rate).
//
// Scale note (see EXPERIMENTS.md): our λ is the per-kernel ready-queue wait
// excluding data movement; the thesis's λ has the same drivers but an
// unspecified normalisation, so shapes (who waits less, the α-valley) are
// the comparison targets, not absolute milliseconds.
#include "bench_common.hpp"

int main() {
  using namespace apt;

  const core::Grid grid = core::run_paper_grid(
      dag::DfgType::Type1, core::paper_policy_specs(4.0), 4.0);

  bench::heading("Table 11 — Total lambda delay (ms), DFG Type-1, alpha=4");
  bench::print_grid(grid, &core::Cell::lambda_total_ms, "milliseconds");
  bench::note(
      "Paper reference (shape): APT(4) shows less lambda than MET on 8/10 "
      "graphs; static HEFT/PEFT sit near MET.");
  std::size_t apt_less = 0;
  for (std::size_t g = 0; g < grid.experiment_count(); ++g) {
    if (grid.cells[g][0].lambda_total_ms < grid.cells[g][1].lambda_total_ms)
      ++apt_less;
  }
  bench::note("Measured: APT(4) below MET on " + std::to_string(apt_less) +
              "/10 graphs.");

  bench::heading("Figure 11 — Avg. APT lambda vs alpha, DFG Type-1");
  const auto points = core::apt_alpha_sweep(
      dag::DfgType::Type1, core::paper_alphas(), {4.0, 8.0});
  util::TablePrinter t({"alpha", "4 GB/s (s)", "8 GB/s (s)"});
  for (std::size_t i = 0; i < points.size(); i += 2) {
    t.add_row({util::format_double(points[i].alpha, 1),
               util::format_double(points[i].avg_lambda_ms / 1000.0, 1),
               util::format_double(points[i + 1].avg_lambda_ms / 1000.0, 1)});
  }
  std::cout << t.to_string();
  bench::note("Paper reference: the lambda curve shows the same valley as "
              "the execution-time curve.");
  return apt_less >= 8 ? 0 : 1;
}
