// Reproduces Table 9 (total computation time for DFG Type-2 by all seven
// policies, α = 1.5, 4 GB/s) and the accompanying top-4 averages figure.
#include "bench_common.hpp"

int main() {
  using namespace apt;

  const core::Grid grid = core::run_paper_grid(
      dag::DfgType::Type2, core::paper_policy_specs(1.5), 4.0);

  bench::heading(
      "Table 9 — Total computation time (ms), DFG Type-2, alpha=1.5, 4 GB/s");
  bench::print_grid(grid, &core::Cell::makespan_ms, "milliseconds");
  bench::note(
      "Paper reference (shape): APT == MET on every graph at alpha=1.5; "
      "SPN/SS/AG suffer order-of-magnitude blow-ups on dependency-rich "
      "graphs; HEFT/PEFT stay within a few percent of MET.");

  bench::heading("Avg. execution time, top 4 policies (seconds)");
  util::TablePrinter t({"Policy", "Avg exec (s)"});
  for (std::size_t p : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                        std::size_t{6}}) {
    t.add_row({grid.policy_names[p],
               util::format_double(grid.avg_makespan_ms(p) / 1000.0, 3)});
  }
  std::cout << t.to_string();
  bench::note(
      "Paper reference: APT 73.945, MET 73.945, HEFT 75.593, PEFT 74.532 "
      "(seconds) — exact APT/MET parity at alpha=1.5.");
  const double gap = std::abs(grid.avg_makespan_ms(0) -
                              grid.avg_makespan_ms(1)) /
                     grid.avg_makespan_ms(1) * 100.0;
  bench::note("Measured APT-vs-MET gap: " + util::format_double(gap, 3) +
              "%.");
  return gap < 2.0 ? 0 : 1;
}
