// Micro-benchmarks (google-benchmark): the wall-clock cost of running each
// scheduling policy end-to-end over the paper workloads — the practical
// side of the thesis's "dynamic policies avoid the intensive
// pre-computation phase of HEFT/PEFT" argument (§1.2), plus the cost of
// the static ranking phases in isolation.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "core/policy_factory.hpp"
#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "net/transfer_manager.hpp"
#include "policies/heft.hpp"
#include "policies/peft.hpp"
#include "sim/engine.hpp"

namespace {

using namespace apt;

const dag::Dag& big_graph(dag::DfgType type) {
  static const dag::Dag t1 = dag::paper_graph(dag::DfgType::Type1, 9);
  static const dag::Dag t2 = dag::paper_graph(dag::DfgType::Type2, 9);
  return type == dag::DfgType::Type1 ? t1 : t2;
}

const sim::System& paper_system() {
  static const sim::System system(sim::SystemConfig::paper_default(4.0));
  return system;
}

const sim::LutCostModel& paper_cost() {
  static const sim::LutCostModel cost(lut::paper_lookup_table(),
                                      paper_system());
  return cost;
}

void run_policy_benchmark(benchmark::State& state, const std::string& spec,
                          dag::DfgType type) {
  const dag::Dag& graph = big_graph(type);
  for (auto _ : state) {
    const auto policy = core::make_policy(spec);
    sim::Engine engine(graph, paper_system(), paper_cost());
    benchmark::DoNotOptimize(engine.run(*policy).makespan);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(graph.node_count()));
}

#define APT_POLICY_BENCH(name, spec)                                   \
  void BM_##name##_Type1(benchmark::State& state) {                   \
    run_policy_benchmark(state, spec, dag::DfgType::Type1);            \
  }                                                                    \
  BENCHMARK(BM_##name##_Type1);                                        \
  void BM_##name##_Type2(benchmark::State& state) {                   \
    run_policy_benchmark(state, spec, dag::DfgType::Type2);            \
  }                                                                    \
  BENCHMARK(BM_##name##_Type2)

APT_POLICY_BENCH(APT4, "apt:4");
APT_POLICY_BENCH(MET, "met");
APT_POLICY_BENCH(SPN, "spn");
APT_POLICY_BENCH(SS, "ss");
APT_POLICY_BENCH(AG, "ag");
APT_POLICY_BENCH(HEFT, "heft");
APT_POLICY_BENCH(PEFT, "peft");

// Comm-aware variants end to end (ideal fabric: measures the overhead the
// estimator adds even when its backlog branch short-circuits).
APT_POLICY_BENCH(APTC4, "apt-c:4");
APT_POLICY_BENCH(AGNET, "ag-net");

// The isolated comm-aware estimator: the TransferEstimate backlog scan —
// max link_drain_ms over each candidate route — priced per on_event at a
// fixed fabric occupancy. One "on_event" here evaluates every ordered
// processor pair of a 16-way mesh (240 routes), the worst case a policy
// pass can issue.
void run_estimator_benchmark(benchmark::State& state, std::size_t in_flight) {
  net::TopologySpec spec = net::parse_topology_spec("mesh:4x4");
  spec.bandwidth_gbps = 4.0;
  const net::Topology topo(spec, 16, 4.0);
  net::TransferManager tm(topo);
  for (std::size_t i = 0; i < in_flight; ++i) {
    const auto from = static_cast<net::ProcId>(i % 16);
    auto to = static_cast<net::ProcId>((i * 7 + 5) % 16);
    if (to == from) to = static_cast<net::ProcId>((to + 1) % 16);
    // Big enough that nothing drains away mid-benchmark (time is never
    // advanced inside the loop, so the fabric state stays frozen).
    tm.start(i, 1e9, from, to, 0.0);
  }
  tm.advance_to(0.0);  // activate every message
  for (auto _ : state) {
    double acc = 0.0;
    for (net::ProcId from = 0; from < 16; ++from) {
      for (net::ProcId to = 0; to < 16; ++to) {
        double worst = 0.0;
        for (const net::LinkId l : topo.route(from, to))
          worst = std::max(worst, tm.link_drain_ms(l));
        acc += worst;
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 240);
}

void BM_CommEstimator_64InFlight(benchmark::State& state) {
  run_estimator_benchmark(state, 64);
}
BENCHMARK(BM_CommEstimator_64InFlight);

void BM_CommEstimator_512InFlight(benchmark::State& state) {
  run_estimator_benchmark(state, 512);
}
BENCHMARK(BM_CommEstimator_512InFlight);

// Static pre-computation phases in isolation (the thesis's argument for
// dynamic policies is precisely the cost of this step).
void BM_HeftRanking(benchmark::State& state) {
  const dag::Dag& graph = big_graph(dag::DfgType::Type2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        policies::heft_upward_ranks(graph, paper_system(), paper_cost()));
  }
}
BENCHMARK(BM_HeftRanking);

void BM_PeftOctTable(benchmark::State& state) {
  const dag::Dag& graph = big_graph(dag::DfgType::Type2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        policies::peft_oct(graph, paper_system(), paper_cost()));
  }
}
BENCHMARK(BM_PeftOctTable);

// Workload generation (deterministic, but worth tracking).
void BM_GenerateType2(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dag::generate(dag::DfgType::Type2, 157, 42,
                      dag::KernelPool::paper_pool()));
  }
}
BENCHMARK(BM_GenerateType2);

}  // namespace
