// Shared formatting helpers for the table/figure reproduction binaries.
//
// Every bench prints (a) the regenerated table/figure rows in the thesis's
// layout and (b) the paper's qualitative expectation, so a reader can judge
// the reproduction without opening EXPERIMENTS.md.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/experiments.hpp"
#include "util/string_utils.hpp"
#include "util/table_printer.hpp"

namespace apt::bench {

inline void heading(const std::string& title) {
  std::cout << "\n==================================================\n"
            << title << "\n"
            << "==================================================\n";
}

inline void note(const std::string& text) { std::cout << text << "\n"; }

/// Parses `--jobs N` from a bench's argv (default 1: the serial baseline;
/// 0 means one job per hardware thread). Exits with a message on a
/// malformed value instead of std::terminate-ing the bench.
inline std::size_t jobs_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") != 0) continue;
    if (i + 1 >= argc) {
      std::cerr << argv[0] << ": error: --jobs needs a value\n";
      std::exit(2);
    }
    try {
      return static_cast<std::size_t>(util::parse_uint(argv[i + 1]));
    } catch (const std::exception& e) {
      std::cerr << argv[0] << ": error: --jobs: " << e.what() << "\n";
      std::exit(2);
    }
  }
  return 1;
}

/// Parses `--json FILE` from a bench's argv; "" when absent. Exits with a
/// usage message when the value is missing instead of silently dropping
/// the export (CI would otherwise fail later on the absent file).
inline std::string json_path_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") != 0) continue;
    if (i + 1 >= argc) {
      std::cerr << argv[0] << ": error: --json needs a value\n";
      std::exit(2);
    }
    return argv[i + 1];
  }
  return "";
}

/// Google-benchmark-shaped JSON trajectory: a "benchmarks" array whose rows
/// carry name/run_type/real_time/cpu_time/time_unit plus free-form numeric
/// ride-along fields — the one shape scripts/bench_gate.py parses, shared
/// by bench_streaming, bench_scenario_families, and bench_net_contention
/// (formerly copy-pasted emitters).
class TrajectoryJson {
 public:
  TrajectoryJson(std::string executable, std::size_t jobs)
      : executable_(std::move(executable)), jobs_(jobs) {}

  /// Adds one benchmark row; `extras` ride along for trajectory tracking
  /// (the gate ignores them).
  void add(const std::string& name, double wall_ms,
           const std::vector<std::pair<std::string, double>>& extras = {}) {
    std::string row = "    {\"name\": \"" + util::json_escape(name) +
                      "\", \"run_type\": \"iteration\", \"real_time\": " +
                      util::format_double(wall_ms, 3) +
                      ", \"cpu_time\": " + util::format_double(wall_ms, 3) +
                      ", \"time_unit\": \"ms\"";
    for (const auto& [key, value] : extras)
      row += ", \"" + util::json_escape(key) +
             "\": " + util::format_double(value, 6);
    row += "}";
    rows_.push_back(std::move(row));
  }

  /// Writes the document; prints a message and returns false on failure so
  /// callers can exit non-zero (CI would otherwise fail later on the
  /// missing artifact).
  bool write(const std::string& path) const {
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::cerr << "error: cannot open '" << path << "'\n";
      return false;
    }
    out << "{\n  \"context\": {\"executable\": \""
        << util::json_escape(executable_) << "\", \"jobs\": " << jobs_
        << "},\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i)
      out << rows_[i] << (i + 1 < rows_.size() ? ",\n" : "\n");
    out << "  ]\n}\n";
    std::cout << "benchmarks written to " << path << "\n";
    return true;
  }

 private:
  std::string executable_;
  std::size_t jobs_;
  std::vector<std::string> rows_;
};

/// Wall-clock timer for the before/after speedup numbers the benches print.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void report_wall_clock(double elapsed_ms, std::size_t jobs) {
  std::cout << "wall-clock: " << util::format_double(elapsed_ms, 1)
            << " ms (--jobs " << jobs << ")\n";
}

/// Prints a grid as the thesis prints Tables 8-12: one row per experiment,
/// one column per policy, a separator, then the per-column average. The
/// value accessor selects makespan or λ.
inline void print_grid(const core::Grid& grid,
                       double core::Cell::*value,
                       const std::string& unit) {
  std::vector<std::string> header = {"Graph"};
  for (const auto& name : grid.policy_names) header.push_back(name);
  util::TablePrinter table(header);
  for (std::size_t g = 0; g < grid.experiment_count(); ++g) {
    std::vector<std::string> row = {std::to_string(g + 1)};
    for (std::size_t p = 0; p < grid.policy_count(); ++p)
      row.push_back(util::format_double(grid.cells[g][p].*value, 0));
    table.add_row(std::move(row));
  }
  table.add_separator();
  std::vector<std::string> avg = {"avg"};
  for (std::size_t p = 0; p < grid.policy_count(); ++p) {
    double sum = 0.0;
    for (std::size_t g = 0; g < grid.experiment_count(); ++g)
      sum += grid.cells[g][p].*value;
    avg.push_back(util::format_double(
        sum / static_cast<double>(grid.experiment_count()), 0));
  }
  table.add_row(std::move(avg));
  std::cout << table.to_string();
  std::cout << "(all values in " << unit << ")\n";
}

}  // namespace apt::bench
