// Beyond-the-paper baseline sweep: the thesis compares APT against six
// policies; this bench widens the field with the remaining Braun et al.
// batch-mode heuristics (Min-Min, Max-Min, Sufferage) and the OLB floor,
// answering "would APT still have won against the classics the thesis
// skipped?".
#include "bench_common.hpp"

int main() {
  using namespace apt;

  const std::vector<std::string> specs = {"apt:4",  "met",    "minmin",
                                          "maxmin", "sufferage", "olb"};
  for (const dag::DfgType type : {dag::DfgType::Type1, dag::DfgType::Type2}) {
    const core::Grid grid = core::run_paper_grid(type, specs, 4.0);
    bench::heading(std::string("Extended baselines — ") +
                   dag::to_string(type) + " (ms, 4 GB/s)");
    bench::print_grid(grid, &core::Cell::makespan_ms, "milliseconds");
    std::cout << "APT(4) improvement over the best extended dynamic "
                 "competitor: "
              << util::format_double(core::improvement_exec_pct(grid, 0), 2)
              << "%\n";
  }
  bench::note(
      "Expectation: the batch heuristics use execution-time information "
      "(unlike OLB) and transfer costs, so they beat SPN/SS/AG — but they "
      "never wait for a better processor, so APT's threshold still wins on "
      "the highly heterogeneous lookup table.");
  return 0;
}
