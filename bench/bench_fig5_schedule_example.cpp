// Reproduces Figure 5: the worked MET-vs-APT(α=8) schedule example of §4.1
// (5-kernel DFG Type-1: nw, 3×bfs, cd; transfers ignored).
//
// Published golden outcome: MET ends at 318.093 ms, APT ends at 212.093 ms.
#include "bench_common.hpp"

#include "core/apt.hpp"
#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "policies/met.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

int main() {
  using namespace apt;

  std::vector<dag::Node> series = {
      {"nw", 16777216}, {"bfs", 2034736}, {"bfs", 2034736},
      {"bfs", 2034736}, {"cd", 250000}};
  const dag::Dag graph = dag::make_type1(series);
  // A near-infinite link rate removes transfer effects, as in the thesis.
  const sim::System system(sim::SystemConfig::paper_default(1e9));
  const sim::LutCostModel cost(lut::paper_lookup_table(), system);

  bench::heading("Figure 5 — MET schedule");
  policies::Met met;
  sim::Engine met_engine(graph, system, cost);
  const auto met_result = met_engine.run(met);
  std::cout << sim::format_trace(system,
                                 sim::build_trace(graph, system, met_result));

  bench::heading("Figure 5 — APT (alpha = 8) schedule");
  core::Apt apt(8.0);
  sim::Engine apt_engine(graph, system, cost);
  const auto apt_result = apt_engine.run(apt);
  std::cout << sim::format_trace(system,
                                 sim::build_trace(graph, system, apt_result));

  bench::note("Paper reference: MET end time 318.093, APT end time 212.093.");
  bench::note("Measured:        MET end time " +
              util::format_double(met_result.makespan, 3) +
              ", APT end time " +
              util::format_double(apt_result.makespan, 3) + ".");
  const bool exact = std::abs(met_result.makespan - 318.093) < 1e-6 &&
                     std::abs(apt_result.makespan - 212.093) < 1e-6;
  bench::note(exact ? "EXACT MATCH with the published example."
                    : "MISMATCH with the published example!");
  return exact ? 0 : 1;
}
