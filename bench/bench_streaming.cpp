// Open-system streaming study on the real stream engine.
//
// The thesis frames workloads as "an incoming stream of applications" but
// submits each DAG at time zero; the old version of this bench faked
// arrivals by offsetting release times inside a single graph (and rebuilt
// the cost model and policy per graph inside the timing loop, charging
// setup to the measurement). It now drives stream::StreamEngine through
// core::run_stream_plan: Poisson arrivals of whole DAG instances contending
// for one platform, shared cost tables built once, one policy instance per
// cell, swept over a (family × λ × policy) grid with --jobs workers.
//
// --json FILE writes the rows in google-benchmark's output shape (a
// "benchmarks" array with name/real_time/time_unit) so the CI perf gate
// (scripts/bench_gate.py) can diff this file and BENCH_policy_overhead.json
// with the same parser. Row wall-clock times are the gated signal; the
// simulated open-system metrics ride along as extra fields for trajectory
// tracking.
#include "bench_common.hpp"

#include "core/stream_plan.hpp"
#include "obs/trace_sink.hpp"

using namespace apt;

int main(int argc, char** argv) {
  const std::size_t jobs = bench::jobs_from_args(argc, argv);
  const std::string json_path = bench::json_path_from_args(argc, argv);

  bench::heading(
      "Open-system streaming — Poisson DAG arrivals on the shared paper "
      "platform");

  // Mean inter-arrival gaps of 50 s down to 2 s against applications whose
  // isolated makespans are tens of seconds: the grid walks the system from
  // a nearly-idle open system into deep saturation.
  const std::vector<double> rates_per_ms = {0.00002, 0.0001, 0.0005};
  const std::vector<std::string> families = {"type1", "layered"};
  const std::vector<std::string> policies = {"apt:4", "met", "spn", "ag"};

  const core::BatchRunner runner(jobs);
  util::TablePrinter table({"family", "gap ms", "policy", "apps", "thrpt/s",
                            "flow avg s", "slowdown", "util %"});
  struct Row {
    std::string name;
    double wall_ms;
    std::vector<core::StreamCellResult> cells;
  };
  std::vector<Row> rows;

  const bench::Stopwatch total;
  for (const std::string& family : families) {
    for (double rate : rates_per_ms) {
      core::StreamPlan plan;
      plan.families = {family};
      plan.rates_per_ms = {rate};
      plan.policy_specs = policies;
      plan.kernels = 46;
      plan.horizon_ms = 200000.0;  // 200 s of admissions
      plan.warmup_ms = 20000.0;
      plan.base_seed = 2024;

      const bench::Stopwatch row_clock;
      const core::StreamBatchResult result =
          core::run_stream_plan(plan, runner);
      const double wall = row_clock.elapsed_ms();

      for (const core::StreamCellResult& cell : result.cells) {
        const sim::StreamMetrics& m = cell.metrics;
        table.add_row({family, util::format_double(1.0 / rate, 0),
                       cell.policy_name, std::to_string(m.apps_measured),
                       util::format_double(m.throughput_apps_per_s, 3),
                       util::format_double(m.flow_ms.avg / 1000.0, 2),
                       util::format_double(m.slowdown.avg, 2),
                       util::format_double(m.avg_utilization * 100.0, 1)});
      }
      rows.push_back(Row{"stream/" + family + "/rate=" +
                             util::format_double(rate, 5),
                         wall, result.cells});
    }
  }
  // Burst tiers: 10× and 100× the densest sustained rate. A fixed-size
  // burst (admission cap, no horizon/warmup) keeps the row bounded — at
  // these rates a 200 s horizon would admit thousands of applications —
  // while still pushing the hot path deep into saturation: the incremental
  // max-min re-solve, the SoA slot slabs, and the shape pool are what keep
  // these rows tractable.
  const std::vector<double> burst_rates_per_ms = {0.005, 0.05};
  for (const std::string& family : families) {
    for (double rate : burst_rates_per_ms) {
      core::StreamPlan plan;
      plan.families = {family};
      plan.rates_per_ms = {rate};
      plan.policy_specs = policies;
      plan.kernels = 46;
      plan.max_apps = 120;  // burst size bounds the run, not a horizon
      plan.horizon_ms = 0.0;
      plan.warmup_ms = 0.0;
      plan.base_seed = 2024;

      const bench::Stopwatch row_clock;
      const core::StreamBatchResult result =
          core::run_stream_plan(plan, runner);
      const double wall = row_clock.elapsed_ms();

      for (const core::StreamCellResult& cell : result.cells) {
        const sim::StreamMetrics& m = cell.metrics;
        table.add_row({family, util::format_double(1.0 / rate, 0),
                       cell.policy_name, std::to_string(m.apps_measured),
                       util::format_double(m.throughput_apps_per_s, 3),
                       util::format_double(m.flow_ms.avg / 1000.0, 2),
                       util::format_double(m.slowdown.avg, 2),
                       util::format_double(m.avg_utilization * 100.0, 1)});
      }
      rows.push_back(Row{"stream/" + family + "/rate=" +
                             util::format_double(rate, 5),
                         wall, result.cells});
    }
  }
  // Noisy tier: the same 10× burst under heavy-tailed service-time noise
  // (sigma 0.25 lognormal + 5% of kernels inflated 20×), hedging off vs
  // on. This prices the noise layer itself (per-kernel multiplier draws)
  // and the hedging machinery (rolling-quantile window, hedge-check
  // events, replica races) on the hot path, and tracks the p99 flow the
  // hedge exists to cut.
  for (const std::string& family : families) {
    for (const bool hedging : {false, true}) {
      core::StreamPlan plan;
      plan.families = {family};
      plan.rates_per_ms = {0.005};
      plan.policy_specs = policies;
      plan.kernels = 46;
      plan.max_apps = 120;
      plan.horizon_ms = 0.0;
      plan.warmup_ms = 0.0;
      plan.base_seed = 2024;
      plan.noise.sigma = 0.25;
      plan.noise.heavy_tail_prob = 0.05;
      plan.noise.heavy_tail_multiplier = 20.0;
      plan.hedging.enabled = hedging;

      const bench::Stopwatch row_clock;
      const core::StreamBatchResult result =
          core::run_stream_plan(plan, runner);
      const double wall = row_clock.elapsed_ms();

      for (const core::StreamCellResult& cell : result.cells) {
        const sim::StreamMetrics& m = cell.metrics;
        table.add_row({family + (hedging ? " noisy+hedge" : " noisy"),
                       util::format_double(1.0 / 0.005, 0),
                       cell.policy_name, std::to_string(m.apps_measured),
                       util::format_double(m.throughput_apps_per_s, 3),
                       util::format_double(m.flow_ms.avg / 1000.0, 2),
                       util::format_double(m.slowdown.avg, 2),
                       util::format_double(m.avg_utilization * 100.0, 1)});
      }
      rows.push_back(Row{std::string("stream/noisy/") + family +
                             "/hedging=" + (hedging ? "on" : "off"),
                         wall, result.cells});
    }
  }
  // Traced tier: the 10× type1 burst again with the Chrome-trace sink and
  // the profiling registry attached. Prices the observability layer's
  // enabled path (span rendering at emission, counter/timer bumps); the
  // gated rows above all run with sink/profile null, so any cost leaking
  // into the disabled path shows up there instead.
  {
    core::StreamPlan plan;
    plan.families = {"type1"};
    plan.rates_per_ms = {0.005};
    plan.policy_specs = policies;
    plan.kernels = 46;
    plan.max_apps = 120;
    plan.horizon_ms = 0.0;
    plan.warmup_ms = 0.0;
    plan.base_seed = 2024;
    plan.profile = true;
    obs::ChromeTraceWriter writer{sim::System(plan.base_system)};
    plan.trace_sink = &writer;

    const bench::Stopwatch row_clock;
    const core::StreamBatchResult result = core::run_stream_plan(plan, runner);
    const double wall = row_clock.elapsed_ms();

    for (const core::StreamCellResult& cell : result.cells) {
      const sim::StreamMetrics& m = cell.metrics;
      table.add_row({"type1 traced", util::format_double(1.0 / 0.005, 0),
                     cell.policy_name, std::to_string(m.apps_measured),
                     util::format_double(m.throughput_apps_per_s, 3),
                     util::format_double(m.flow_ms.avg / 1000.0, 2),
                     util::format_double(m.slowdown.avg, 2),
                     util::format_double(m.avg_utilization * 100.0, 1)});
    }
    rows.push_back(Row{"stream/traced/type1/rate=0.00500", wall,
                       result.cells});
  }
  const double total_ms = total.elapsed_ms();
  std::cout << table.to_string();
  bench::report_wall_clock(total_ms, jobs);
  bench::note(
      "Reading: at 50 s gaps the open system is lightly loaded — flow "
      "approaches the isolated makespan and slowdown (flow over the "
      "critical-path/area lower bound) sits near its floor. As gaps shrink "
      "toward the apps' service times, backlog builds and the policies "
      "separate: APT keeps kernels off the pathologically slow processor "
      "choices, so its flow/slowdown degrade latest. Static planners are "
      "absent by construction — an open system never shows them the whole "
      "DAG.");

  if (!json_path.empty()) {
    bench::TrajectoryJson trajectory("bench_streaming", jobs);
    for (const Row& row : rows) {
      std::vector<std::pair<std::string, double>> extras;
      for (const core::StreamCellResult& cell : row.cells) {
        extras.emplace_back("flow_avg_ms/" + cell.policy_name,
                            cell.metrics.flow_ms.avg);
        extras.emplace_back("slowdown_avg/" + cell.policy_name,
                            cell.metrics.slowdown.avg);
        if (cell.metrics.hedges_launched > 0 ||
            row.name.find("/noisy/") != std::string::npos) {
          extras.emplace_back("flow_p99_ms/" + cell.policy_name,
                              cell.metrics.flow_ms.p99);
          extras.emplace_back(
              "hedges_launched/" + cell.policy_name,
              static_cast<double>(cell.metrics.hedges_launched));
          extras.emplace_back(
              "hedge_wasted_ms/" + cell.policy_name,
              cell.metrics.hedge_wasted_ms);
        }
      }
      trajectory.add(row.name, row.wall_ms, extras);
    }
    // One whole-grid entry so the gate sees an aggregate even if the grid
    // changes shape.
    trajectory.add("stream/total", total_ms);
    if (!trajectory.write(json_path)) return 1;
  }
  return 0;
}
