// Beyond-the-paper streaming study: the thesis frames workloads as "an
// incoming stream of applications" but submits everything at time zero.
// This bench drives the same ten Type-1 graphs through Poisson arrivals at
// several intensities and reports how each policy degrades as the stream
// thins out (arrival gaps approach kernel durations).
#include "bench_common.hpp"

#include "core/policy_factory.hpp"
#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"

namespace {

double avg_makespan(const std::string& spec, double mean_gap_ms) {
  using namespace apt;
  const sim::System system(sim::SystemConfig::paper_default(4.0));
  const sim::LutCostModel cost(lut::paper_lookup_table(), system);
  double sum = 0.0;
  for (std::size_t i = 0; i < 10; ++i) {
    dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, i);
    if (mean_gap_ms > 0.0)
      dag::apply_poisson_arrivals(graph, mean_gap_ms, 0xFEED + i);
    const auto policy = core::make_policy(spec);
    sim::Engine engine(graph, system, cost);
    sum += engine.run(*policy).makespan;
  }
  return sum / 10.0;
}

}  // namespace

int main() {
  using namespace apt;

  bench::heading(
      "Streaming arrivals — avg makespan (s) vs mean inter-arrival gap, "
      "DFG Type-1");
  const std::vector<double> gaps = {0.0, 10.0, 100.0, 500.0, 2000.0};
  util::TablePrinter t({"Policy", "batch (0)", "10 ms", "100 ms", "500 ms",
                        "2000 ms"});
  for (const char* spec : {"apt:4", "met", "spn", "ag", "heft"}) {
    std::vector<std::string> row = {spec};
    for (double gap : gaps)
      row.push_back(util::format_double(avg_makespan(spec, gap) / 1000.0, 2));
    t.add_row(std::move(row));
  }
  std::cout << t.to_string();
  bench::note(
      "Reading: with dense arrivals the stream behaves like the batch "
      "experiments (APT's advantage persists); as gaps grow the makespan "
      "becomes arrival-dominated and the policies converge — contention, "
      "not policy choice, is what APT exploits. Static HEFT plans with "
      "full knowledge of the DAG but not of arrival times, so its relative "
      "standing degrades under sparse streams.");
  return 0;
}
