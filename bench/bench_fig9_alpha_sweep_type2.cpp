// Reproduces Figure 9: average APT performance for DFG Type-2 vs
// α ∈ {1.5, 2, 4, 8, 16} at 4 and 8 GB/s. The thesis highlights both the
// valley (threshold_brk at α = 4) and the small effect of doubling the
// transfer rate.
//
// The alpha × rate × graph cube runs through the batch runner; pass
// `--jobs N` to fan the 100 simulations over N worker threads (results are
// bit-identical for any job count).
#include "bench_common.hpp"

#include <cmath>

int main(int argc, char** argv) {
  using namespace apt;

  const std::size_t jobs = bench::jobs_from_args(argc, argv);
  const bench::Stopwatch clock;
  const auto points = core::apt_alpha_sweep(
      dag::DfgType::Type2, core::paper_alphas(), {4.0, 8.0}, jobs);
  const double elapsed_ms = clock.elapsed_ms();

  bench::heading("Figure 9 — Avg. APT execution time vs alpha, DFG Type-2");
  util::TablePrinter t({"alpha", "4 GB/s (s)", "8 GB/s (s)"});
  for (std::size_t i = 0; i < points.size(); i += 2) {
    t.add_row({util::format_double(points[i].alpha, 1),
               util::format_double(points[i].avg_makespan_ms / 1000.0, 2),
               util::format_double(points[i + 1].avg_makespan_ms / 1000.0, 2)});
  }
  std::cout << t.to_string();

  double best_alpha = 0.0;
  double best = 1e300;
  double rate_effect_max = 0.0;
  for (std::size_t i = 0; i < points.size(); i += 2) {
    if (points[i].avg_makespan_ms < best) {
      best = points[i].avg_makespan_ms;
      best_alpha = points[i].alpha;
    }
    rate_effect_max = std::max(
        rate_effect_max,
        std::abs(points[i].avg_makespan_ms - points[i + 1].avg_makespan_ms) /
            points[i].avg_makespan_ms * 100.0);
  }
  bench::note("Paper reference: valley bottom (threshold_brk) at alpha = 4 "
              "for both rates; 'a little difference' between 4 and 8 GB/s.");
  bench::note("Measured: valley bottom at alpha = " +
              util::format_double(best_alpha, 1) +
              "; max rate effect " +
              util::format_double(rate_effect_max, 2) + "%.");
  bench::report_wall_clock(elapsed_ms, jobs);
  return (best_alpha == 4.0 && rate_effect_max < 5.0) ? 0 : 1;
}
