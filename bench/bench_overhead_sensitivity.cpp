// λ-model sensitivity (ours): the thesis names two λ components the
// defaults zero out so its Figure 5 example stays exact — the scheduler's
// per-decision think time and the scheduler→processor dispatch delay
// (§2.5.1). This bench turns them back on and shows how much real overhead
// each policy family tolerates before the ranking changes — the practical
// counterpart to "dynamic policies avoid the intensive pre-computation
// phase".
#include "bench_common.hpp"

#include "core/policy_factory.hpp"
#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "sim/engine.hpp"

namespace {

double avg_makespan(const std::string& spec, double decision_ms,
                    double dispatch_ms) {
  using namespace apt;
  sim::SystemConfig cfg = sim::SystemConfig::paper_default(4.0);
  cfg.decision_overhead_ms = decision_ms;
  cfg.dispatch_overhead_ms = dispatch_ms;
  const sim::System system(cfg);
  const sim::LutCostModel cost(lut::paper_lookup_table(), system);
  double sum = 0.0;
  for (std::size_t i = 0; i < 10; ++i) {
    const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, i);
    const auto policy = core::make_policy(spec);
    sim::Engine engine(graph, system, cost);
    sum += engine.run(*policy).makespan;
  }
  return sum / 10.0;
}

}  // namespace

int main() {
  using namespace apt;

  bench::heading(
      "Scheduling-overhead sensitivity — avg makespan (s), DFG Type-1");
  const std::vector<std::pair<double, double>> overheads = {
      {0.0, 0.0}, {0.1, 0.1}, {1.0, 1.0}, {10.0, 10.0}};
  util::TablePrinter t({"Policy", "0 ms", "0.1 ms", "1 ms", "10 ms"});
  for (const char* spec : {"apt:4", "met", "ag", "heft", "peft"}) {
    std::vector<std::string> row = {spec};
    for (const auto& [decision, dispatch] : overheads)
      row.push_back(
          util::format_double(avg_makespan(spec, decision, dispatch) / 1000.0,
                              2));
    t.add_row(std::move(row));
  }
  std::cout << t.to_string();
  bench::note(
      "Reading: per-kernel overheads add roughly (decision + dispatch) x "
      "kernels-on-critical-resource to every policy; with ~46-157 kernels "
      "even 10 ms per decision shifts makespans by only a few seconds, so "
      "the APT-vs-MET ordering is robust to realistic scheduler costs.");
  return 0;
}
