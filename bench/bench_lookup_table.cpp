// Reproduces Table 7 (kernel execution-time spotlight) and Table 14 (the
// complete lookup table, Appendix A) along with the per-row heterogeneity
// ratio and best processor that drive the whole study.
#include "bench_common.hpp"

#include "lut/paper_data.hpp"

int main() {
  using namespace apt;

  const lut::LookupTable table = lut::paper_lookup_table();

  bench::heading("Table 7 — Execution time of the Figure-5 kernels");
  {
    util::TablePrinter t({"Kernel", "CPU (ms)", "GPU (ms)", "FPGA (ms)"});
    for (const char* kernel : {"nw", "bfs", "cd"}) {
      const std::uint64_t size =
          std::string(kernel) == "cd" ? 250000 : lut::paper_dwarf_size(kernel);
      const auto& e = table.at(kernel, size);
      t.add_row({kernel, util::format_double(e.time(lut::ProcType::CPU), 4),
                 util::format_double(e.time(lut::ProcType::GPU), 4),
                 util::format_double(e.time(lut::ProcType::FPGA), 4)});
    }
    std::cout << t.to_string();
  }

  bench::heading("Table 14 — Complete lookup table (Appendix A)");
  {
    util::TablePrinter t({"Kernel", "Data Size", "CPU (ms)", "GPU (ms)",
                          "FPGA (ms)", "Best", "Heterogeneity"});
    for (const auto& e : table.entries()) {
      t.add_row({e.kernel, std::to_string(e.data_size),
                 util::format_double(e.time(lut::ProcType::CPU), 3),
                 util::format_double(e.time(lut::ProcType::GPU), 3),
                 util::format_double(e.time(lut::ProcType::FPGA), 3),
                 lut::to_string(table.best_processor(e.kernel, e.data_size)),
                 util::format_double(table.heterogeneity(e.kernel, e.data_size),
                                     1)});
    }
    std::cout << t.to_string();
  }
  bench::note(
      "Paper reference: values are the thesis's own measurements "
      "(Skalicky et al. / Krommydas et al.) and must match digit for digit "
      "— they are embedded as lut::paper_lookup_table().");
  return 0;
}
