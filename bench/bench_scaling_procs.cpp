// Beyond-the-paper platform-scaling study: the thesis fixes one CPU + one
// GPU + one FPGA. This bench grows the GPU count (the processor the
// lookup table favours most) and watches when APT's flexibility stops
// mattering — with enough best-processors to go around, MET never waits
// and the threshold never fires.
#include "bench_common.hpp"

#include "core/policy_factory.hpp"
#include "dag/generator.hpp"
#include "lut/paper_data.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"

namespace {

struct Point {
  double makespan_ms = 0.0;
  std::size_t alternatives = 0;
};

Point avg_over_workload(const std::string& spec, std::size_t gpus) {
  using namespace apt;
  sim::SystemConfig cfg = sim::SystemConfig::paper_default(4.0);
  cfg.processors = {lut::ProcType::CPU};
  for (std::size_t i = 0; i < gpus; ++i)
    cfg.processors.push_back(lut::ProcType::GPU);
  cfg.processors.push_back(lut::ProcType::FPGA);
  const sim::System system(cfg);
  const sim::LutCostModel cost(lut::paper_lookup_table(), system);

  Point point;
  for (std::size_t i = 0; i < 10; ++i) {
    const dag::Dag graph = dag::paper_graph(dag::DfgType::Type1, i);
    const auto policy = core::make_policy(spec);
    sim::Engine engine(graph, system, cost);
    const auto result = engine.run(*policy);
    point.makespan_ms += result.makespan;
    const auto metrics = sim::compute_metrics(graph, system, result);
    point.alternatives += metrics.alternative_count;
  }
  point.makespan_ms /= 10.0;
  return point;
}

}  // namespace

int main() {
  using namespace apt;

  bench::heading(
      "Processor scaling — avg makespan (s) vs GPU count, DFG Type-1");
  util::TablePrinter t({"GPUs", "APT(4) (s)", "MET (s)", "APT gain %",
                        "APT alternatives"});
  for (std::size_t gpus : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                           std::size_t{4}}) {
    const Point apt = avg_over_workload("apt:4", gpus);
    const Point met = avg_over_workload("met", gpus);
    t.add_row({std::to_string(gpus),
               util::format_double(apt.makespan_ms / 1000.0, 2),
               util::format_double(met.makespan_ms / 1000.0, 2),
               util::format_double(
                   (met.makespan_ms - apt.makespan_ms) / met.makespan_ms *
                       100.0,
                   1),
               std::to_string(apt.alternatives)});
  }
  std::cout << t.to_string();
  bench::note(
      "Reading: duplicating the dominant processor shrinks both the "
      "APT-vs-MET gap and the number of threshold-triggered alternative "
      "assignments — flexibility pays exactly when best processors are "
      "scarce, the thesis's 'degree of heterogeneity' argument from the "
      "capacity side.");
  return 0;
}
