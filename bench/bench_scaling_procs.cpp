// Beyond-the-paper platform-scaling study: the thesis fixes one CPU + one
// GPU + one FPGA. This bench grows the GPU count (the processor the
// lookup table favours most) and watches when APT's flexibility stops
// mattering — with enough best-processors to go around, MET never waits
// and the threshold never fires.
//
// Each platform size is one ExperimentPlan (APT and MET columns over the
// ten Type-1 graphs) executed by the batch runner; pass `--jobs N` to fan
// the simulations over N worker threads.
#include "bench_common.hpp"

#include "core/batch.hpp"
#include "dag/generator.hpp"
#include "lut/proc_type.hpp"

namespace {

struct Point {
  double makespan_ms = 0.0;
  std::size_t alternatives = 0;
};

Point column_average(const apt::core::BatchResult& result,
                     std::size_t policy) {
  Point point;
  for (std::size_t g = 0; g < result.graph_count; ++g) {
    const apt::core::Cell& cell = result.at(0, 0, g, policy);
    point.makespan_ms += cell.makespan_ms;
    point.alternatives += cell.alternative_count;
  }
  point.makespan_ms /= static_cast<double>(result.graph_count);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace apt;

  const std::size_t jobs = bench::jobs_from_args(argc, argv);
  const core::BatchRunner runner(jobs);
  const bench::Stopwatch clock;

  bench::heading(
      "Processor scaling — avg makespan (s) vs GPU count, DFG Type-1");
  util::TablePrinter t({"GPUs", "APT(4) (s)", "MET (s)", "APT gain %",
                        "APT alternatives"});
  for (std::size_t gpus : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                           std::size_t{4}}) {
    core::ExperimentPlan plan =
        core::ExperimentPlan::paper(dag::DfgType::Type1, {"apt:4", "met"});
    plan.base_system.processors = {lut::ProcType::CPU};
    for (std::size_t i = 0; i < gpus; ++i)
      plan.base_system.processors.push_back(lut::ProcType::GPU);
    plan.base_system.processors.push_back(lut::ProcType::FPGA);

    const core::BatchResult result = runner.run(plan);
    const Point apt = column_average(result, 0);
    const Point met = column_average(result, 1);
    t.add_row({std::to_string(gpus),
               util::format_double(apt.makespan_ms / 1000.0, 2),
               util::format_double(met.makespan_ms / 1000.0, 2),
               util::format_double(
                   (met.makespan_ms - apt.makespan_ms) / met.makespan_ms *
                       100.0,
                   1),
               std::to_string(apt.alternatives)});
  }
  const double elapsed_ms = clock.elapsed_ms();
  std::cout << t.to_string();
  bench::note(
      "Reading: duplicating the dominant processor shrinks both the "
      "APT-vs-MET gap and the number of threshold-triggered alternative "
      "assignments — flexibility pays exactly when best processors are "
      "scarce, the thesis's 'degree of heterogeneity' argument from the "
      "capacity side.");
  bench::report_wall_clock(elapsed_ms, jobs);
  return 0;
}
