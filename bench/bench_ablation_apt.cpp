// Ablation bench (ours, not in the thesis): isolates the design choices
// DESIGN.md calls out.
//
//  1. transfer-aware threshold  — APT's Eq. 8 comparison includes the input
//     transfer time; the ablation drops it.
//  2. remaining-time refinement — the thesis's future-work extension
//     (APT-R) versus plain APT.
//  3. queue-based AG estimators — sum-of-queued (deterministic) versus the
//     Eq.-2 recent-average.
//  4. alpha sensitivity of the extra baselines (OLB/Random floor).
#include "bench_common.hpp"

#include "core/apt.hpp"
#include "core/runner.hpp"
#include "dag/generator.hpp"
#include "lut/paper_data.hpp"

namespace {

double avg_makespan(const std::string& spec, apt::dag::DfgType type,
                    double rate = 4.0) {
  const auto cells = apt::core::run_policy_over(
      spec, apt::dag::paper_workload(type), rate);
  double sum = 0.0;
  for (const auto& c : cells) sum += c.makespan_ms;
  return sum / static_cast<double>(cells.size());
}

double avg_makespan_custom(apt::sim::Policy& policy, apt::dag::DfgType type) {
  const apt::sim::System system(apt::sim::SystemConfig::paper_default(4.0));
  const auto table = apt::lut::paper_lookup_table();
  double sum = 0.0;
  const auto graphs = apt::dag::paper_workload(type);
  for (const auto& graph : graphs)
    sum += apt::core::run_policy(policy, graph, system, table)
               .metrics.makespan;
  return sum / static_cast<double>(graphs.size());
}

}  // namespace

int main() {
  using namespace apt;

  bench::heading("Ablation 1 — transfer-aware threshold (alpha = 4)");
  {
    util::TablePrinter t({"Variant", "Type-1 avg (ms)", "Type-2 avg (ms)"});
    core::Apt aware(core::AptOptions{4.0, true, false});
    core::Apt blind(core::AptOptions{4.0, false, false});
    t.add_row({"APT transfer-aware (paper)",
               util::format_double(avg_makespan_custom(aware,
                                                       dag::DfgType::Type1), 0),
               util::format_double(avg_makespan_custom(aware,
                                                       dag::DfgType::Type2), 0)});
    t.add_row({"APT transfer-blind",
               util::format_double(avg_makespan_custom(blind,
                                                       dag::DfgType::Type1), 0),
               util::format_double(avg_makespan_custom(blind,
                                                       dag::DfgType::Type2), 0)});
    std::cout << t.to_string();
    bench::note("Expectation: near-identical on Type-1 (no transfers before "
                "the sink) and a visible effect on Type-2.");
  }

  bench::heading("Ablation 2 — remaining-time refinement (APT-R vs APT)");
  {
    util::TablePrinter t({"alpha", "APT T1 (ms)", "APT-R T1 (ms)",
                          "APT T2 (ms)", "APT-R T2 (ms)"});
    for (double alpha : {2.0, 4.0, 8.0}) {
      const std::string a = util::format_double(alpha, 1);
      t.add_row({a,
                 util::format_double(
                     avg_makespan("apt:" + a, dag::DfgType::Type1), 0),
                 util::format_double(
                     avg_makespan("apt-r:" + a, dag::DfgType::Type1), 0),
                 util::format_double(
                     avg_makespan("apt:" + a, dag::DfgType::Type2), 0),
                 util::format_double(
                     avg_makespan("apt-r:" + a, dag::DfgType::Type2), 0)});
    }
    std::cout << t.to_string();
    bench::note("Finding: the future-work refinement is NOT a free win — "
                "its wait estimate ignores contention from other kernels "
                "waiting on the same p_min (see EXPERIMENTS.md).");
  }

  bench::heading(
      "Ablation 2b — rank-ordered ready set (APT-Ranked, our extension)");
  {
    util::TablePrinter t({"Variant", "Type-1 avg (ms)", "Type-2 avg (ms)"});
    for (const char* spec : {"apt:4", "apt-ranked:4", "heft"}) {
      t.add_row({spec,
                 util::format_double(avg_makespan(spec, dag::DfgType::Type1), 0),
                 util::format_double(avg_makespan(spec, dag::DfgType::Type2), 0)});
    }
    std::cout << t.to_string();
    bench::note("Finding: serving contested processors to the highest "
                "HEFT-rank ready kernel (instead of FIFO) gives a small but "
                "consistent improvement (~1-2% on average, much larger on "
                "individual dependency-rich graphs) — critical chains stop "
                "queueing behind bulk work, at the price of needing the "
                "whole DAG for the rank pre-pass.");
  }

  bench::heading("Ablation 3 — AG queue-delay estimators");
  {
    util::TablePrinter t({"Estimator", "Type-1 avg (ms)", "Type-2 avg (ms)"});
    t.add_row({"sum-of-queued (deterministic)",
               util::format_double(avg_makespan("ag", dag::DfgType::Type1), 0),
               util::format_double(avg_makespan("ag", dag::DfgType::Type2), 0)});
    t.add_row({"recent-average (Eq. 2)",
               util::format_double(
                   avg_makespan("ag:recent", dag::DfgType::Type1), 0),
               util::format_double(
                   avg_makespan("ag:recent", dag::DfgType::Type2), 0)});
    std::cout << t.to_string();
  }

  bench::heading("Ablation 4 — sanity floor (OLB / Random)");
  {
    util::TablePrinter t({"Policy", "Type-1 avg (ms)", "Type-2 avg (ms)"});
    for (const char* spec : {"apt:4", "met", "olb", "random"}) {
      t.add_row({spec,
                 util::format_double(avg_makespan(spec, dag::DfgType::Type1), 0),
                 util::format_double(avg_makespan(spec, dag::DfgType::Type2), 0)});
    }
    std::cout << t.to_string();
    bench::note("Expectation: APT well below the exec-time-blind floor.");
  }
  return 0;
}
