// Reproduces Figure 7: average APT performance for DFG Type-1 while varying
// α ∈ {1.5, 2, 4, 8, 16} and the PCIe rate ∈ {4, 8} GB/s — the "valley"
// whose bottom the thesis names threshold_brk.
//
// The alpha × rate × graph cube runs through the batch runner; pass
// `--jobs N` to fan the 100 simulations over N worker threads (results are
// bit-identical for any job count).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace apt;

  const std::size_t jobs = bench::jobs_from_args(argc, argv);
  const bench::Stopwatch clock;
  const auto points = core::apt_alpha_sweep(
      dag::DfgType::Type1, core::paper_alphas(), {4.0, 8.0}, jobs);
  const double elapsed_ms = clock.elapsed_ms();

  bench::heading("Figure 7 — Avg. APT execution time vs alpha, DFG Type-1");
  util::TablePrinter t({"alpha", "4 GB/s (ms)", "8 GB/s (ms)"});
  for (std::size_t i = 0; i < points.size(); i += 2) {
    t.add_row({util::format_double(points[i].alpha, 1),
               util::format_double(points[i].avg_makespan_ms, 0),
               util::format_double(points[i + 1].avg_makespan_ms, 0)});
  }
  std::cout << t.to_string();

  // Locate the measured valley bottom at 4 GB/s.
  double best_alpha = 0.0;
  double best = 1e300;
  for (const auto& p : points) {
    if (p.rate_gbps == 4.0 && p.avg_makespan_ms < best) {
      best = p.avg_makespan_ms;
      best_alpha = p.alpha;
    }
  }
  bench::note("Paper reference: execution time falls until alpha = 4 "
              "(threshold_brk), then rises — a valley with its bottom at 4.");
  bench::note("Measured valley bottom: alpha = " +
              util::format_double(best_alpha, 1) + ".");
  bench::report_wall_clock(elapsed_ms, jobs);
  return best_alpha == 4.0 ? 0 : 1;
}
