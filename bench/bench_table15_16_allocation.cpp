// Reproduces Tables 15/16 (Appendix B): APT's alternative-processor
// allocation analysis — per experiment, how many kernels were routed to a
// second-best processor and which kernels they were, for every α.
#include "bench_common.hpp"

#include <map>

int main() {
  using namespace apt;

  for (const dag::DfgType type : {dag::DfgType::Type1, dag::DfgType::Type2}) {
    bench::heading(std::string("Table ") +
                   (type == dag::DfgType::Type1 ? "15" : "16") +
                   " — APT kernel allocation analyses, " +
                   dag::to_string(type));
    for (double alpha : core::paper_alphas()) {
      const core::Grid grid = core::run_paper_grid(
          type, {"apt:" + util::format_double(alpha, 3)}, 4.0);
      std::cout << "\nalpha = " << util::format_double(alpha, 1) << "\n";
      util::TablePrinter t({"Experiment", "Total kernels",
                            "Different assignments", "Kernel breakdown"});
      for (std::size_t g = 0; g < grid.experiment_count(); ++g) {
        const core::Cell& cell = grid.cells[g][0];
        std::vector<std::string> parts;
        for (const auto& [kernel, count] : cell.alternative_by_kernel)
          parts.push_back(std::to_string(count) + "-" + kernel);
        t.add_row({std::to_string(g + 1),
                   std::to_string(dag::paper_experiment_sizes()[g]),
                   std::to_string(cell.alternative_count),
                   util::join(parts, " ")});
      }
      std::cout << t.to_string();
    }
  }
  bench::note(
      "Paper reference (shape): at alpha=1.5/2 only a handful of "
      "alternative assignments appear (nw/bfs, whose second-best processor "
      "is within 2x); at alpha=4 srad and mi join (ratios ~3.2 and ~2.5); "
      "gem only qualifies from alpha=8 (ratio 5.4); mm never does (GPU "
      "dominance is 3-6 orders of magnitude). cd appears only at alpha=16.");
  return 0;
}
