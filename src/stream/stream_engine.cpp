#include "stream/stream_engine.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <stdexcept>
#include <unordered_map>

#include "net/transfer_manager.hpp"
#include "obs/profile.hpp"
#include "obs/trace_sink.hpp"
#include "sim/precomputed_cost_model.hpp"
#include "sim/validate.hpp"
#include "util/contracts.hpp"
#include "util/rolling_quantile.hpp"

namespace apt::stream {

void StreamOptions::validate() const {
  arrivals.validate();
  if (arrivals.kind != ArrivalKind::Trace && max_apps == 0 &&
      !(horizon_ms > 0.0))
    throw std::invalid_argument(
        "StreamOptions: an endless arrival process needs max_apps or "
        "horizon_ms to bound the run");
  if (warmup_ms < 0.0 || horizon_ms < 0.0)
    throw std::invalid_argument(
        "StreamOptions: warmup/horizon must be >= 0");
  if (max_live_apps == 0)
    throw std::invalid_argument("StreamOptions: max_live_apps must be >= 1");
  noise.validate();
  hedging.validate();
}

namespace {

/// What a popped event means. The numeric order is the processing order at
/// equal timestamps: primary completions resolve races before replica
/// completions (a tie goes to the primary), and hedge checks only fire
/// after every completion at that instant has retired its kernel (a kernel
/// finishing exactly at its threshold is never hedged).
enum class EventKind : std::uint8_t {
  kCompletion = 0,
  kReplica = 1,
  kHedgeCheck = 2,
};

/// Timestamped event keyed by global slot id; min-heap order (earliest
/// first, ties by kind then ascending slot).
///
/// `epoch` snapshots the slot's reuse generation at push time. Hedging
/// leaves dead events in the heap (the cancelled loser's completion, hedge
/// checks for already-finished kernels) that can outlive their instance;
/// once the slot is recycled to a new application such an event must not
/// touch the new tenant, so the pop loop discards any event whose epoch
/// no longer matches the slot's.
struct Event {
  sim::TimeMs time;
  dag::NodeId slot;
  EventKind kind = EventKind::kCompletion;
  std::uint32_t epoch = 0;

  bool operator>(const Event& other) const noexcept {
    if (time != other.time) return time > other.time;
    if (kind != other.kind) return kind > other.kind;
    return slot > other.slot;
  }
};

using EventQueue =
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>;

}  // namespace

/// All mutable state of one stream run; implements the SchedulerContext the
/// policy schedules against. Per-node arrays are indexed by global slot id;
/// a retired instance's slot range returns to the free-range allocator.
class StreamEngine::Context final : public sim::SchedulerContext {
 public:
  Context(const sim::System& system, const sim::CostModel& base_cost,
          const DagSource& source, const StreamOptions& options,
          sim::Policy& policy)
      : system_(system),
        base_cost_(base_cost),
        source_(source),
        options_(options),
        policy_(policy),
        topology_(system.topology()),
        contended_(topology_.contended()),
        proc_count_(system.proc_count()),
        hedge_window_(options.hedging.window),
        sink_(options.sink),
        profile_(options.profile),
        proc_state_(system.proc_count()) {
    if (contended_) {
      tm_.emplace(topology_);
      // Per-link busy/bytes clip to the observation window exactly like
      // processor busy time, so steady-state link utilization is unbiased
      // by warmup traffic.
      tm_->set_window_start(options.warmup_ms);
      tm_->set_profile(profile_);
      topo_cost_.emplace(base_cost_, system_);
    }
    observation_.warmup_ms = options.warmup_ms;
    observation_.busy_in_window_ms.assign(system.proc_count(), 0.0);
    observation_.kernels_in_window.assign(system.proc_count(), 0);
    observation_.queue_depth.set_window_start(options.warmup_ms);
    observation_.live_apps.set_window_start(options.warmup_ms);
    idle_cache_.reserve(system.proc_count());
  }

  StreamOutcome simulate() {
    ArrivalProcess arrivals(options_.arrivals);
    pull_next_arrival(arrivals);
    process_arrivals(arrivals);  // a trace may start at t = 0
    for (;;) {
      {
        obs::ScopedTimer timer(profile_, obs::Timer::kPolicyPass);
        policy_.on_event(*this);
      }
      if (profile_) profile_->add(obs::Counter::kPolicyPasses);
      drain_queues();
      const bool quiescent = events_.empty() && releases_.empty() &&
                             !next_arrival_ && !(tm_ && tm_->busy());
      if (live_count_ == 0 && quiescent) break;
      if (quiescent) {
        throw std::logic_error("StreamEngine: policy '" + policy_.name() +
                               "' stalled: work remains but nothing is "
                               "executing and no arrival is pending");
      }
      advance_to_next_event(arrivals);
    }
    observation_.end_ms = std::max(now_, options_.warmup_ms);
    observation_.queue_depth.finish(observation_.end_ms);
    observation_.live_apps.finish(observation_.end_ms);
    if (tm_) {
      observation_.link_busy_in_window_ms = tm_->link_busy_in_window_ms();
      observation_.link_bytes_in_window = tm_->link_bytes_in_window();
      observation_.link_transfers_in_window = tm_->link_counts_in_window();
      observation_.link_hops_in_window = tm_->link_hops_in_window();
      observation_.link_names.reserve(topology_.link_count());
      for (net::LinkId l = 0; l < topology_.link_count(); ++l)
        observation_.link_names.push_back(topology_.link_name(l));
      observation_.tm_solve_stats = tm_->solve_stats();
    }
    if (profile_) observation_.profile = profile_->snapshot();
    StreamOutcome outcome;
    outcome.metrics = sim::compute_stream_metrics(system_, observation_);
    outcome.schedules = std::move(schedules_);
    return outcome;
  }

  // --- SchedulerContext -----------------------------------------------------

  sim::TimeMs now() const override { return now_; }

  const dag::Dag& dag() const override {
    throw std::logic_error(
        "StreamEngine: SchedulerContext::dag() is unavailable in stream "
        "contexts (the ready set spans many DAG instances)");
  }

  const sim::System& system() const override { return system_; }
  const sim::CostModel& cost_model() const override {
    // Contended runs price transfers against the fabric, not the base
    // model's uncontended point-to-point links.
    return contended_ ? static_cast<const sim::CostModel&>(*topo_cost_)
                      : base_cost_;
  }

  const std::vector<dag::NodeId>& ready() const override {
    if (ready_tombstones_ > 0) compact_ready();
    return ready_;
  }

  bool is_idle(sim::ProcId proc) const override {
    const ProcState& ps = proc_state_.at(proc);
    return !ps.running.has_value() && ps.queue.empty();
  }

  const std::vector<sim::ProcId>& idle_processors() const override {
    if (idle_dirty_) {
      idle_cache_.clear();
      for (sim::ProcId p = 0; p < proc_state_.size(); ++p) {
        if (is_idle(p)) idle_cache_.push_back(p);
      }
      idle_dirty_ = false;
    }
    return idle_cache_;
  }

  sim::TimeMs busy_until(sim::ProcId proc) const override {
    const ProcState& ps = proc_state_.at(proc);
    if (!ps.running.has_value() && ps.queue.empty()) return now_;
    // A running kernel still stalled on contended input data has no finish
    // time yet; estimate with its (known) execution time from now.
    sim::TimeMs t = now_;
    if (ps.running) {
      const NodeState& rs = node_state_[*ps.running];
      t = rs.exec_started ? rs.record.finish_time : now_ + rs.record.exec_ms;
    }
    for (const QueuedKernel& q : ps.queue) t += q.exec_ms;
    return t;
  }

  std::size_t queue_length(sim::ProcId proc) const override {
    return proc_state_.at(proc).queue.size();
  }

  sim::TimeMs queued_work_ms(sim::ProcId proc) const override {
    const ProcState& ps = proc_state_.at(proc);
    sim::TimeMs work = 0.0;
    if (ps.running) {
      const NodeState& rs = node_state_[*ps.running];
      work += rs.exec_started ? std::max(0.0, rs.record.finish_time - now_)
                              : rs.record.exec_ms;
    }
    for (const QueuedKernel& q : ps.queue) work += q.exec_ms;
    return work;
  }

  sim::TimeMs recent_avg_exec_ms(sim::ProcId proc,
                                 std::size_t k) const override {
    const ProcState& ps = proc_state_.at(proc);
    if (ps.exec_history.empty() || k == 0) return 0.0;
    const std::size_t take = std::min(k, ps.exec_history.size());
    double sum = 0.0;
    for (std::size_t i = ps.exec_history.size() - take;
         i < ps.exec_history.size(); ++i)
      sum += ps.exec_history[i];
    return sum / static_cast<double>(take);
  }

  // The hottest queries of the whole engine: every MET-family policy pass
  // asks these for every ready kernel. They read the per-slot SoA slabs
  // admit() baked from the instance's shared ShapeEntry — one load instead
  // of the slot -> app -> cost-model -> dag-check virtual chain.
  sim::TimeMs exec_time_ms(dag::NodeId slot,
                           sim::ProcId proc) const override {
    return exec_row_[slot][proc];
  }

  sim::TimeMs min_exec_time_ms(dag::NodeId slot) const override {
    return min_exec_slab_[slot];
  }

  sim::ProcId min_exec_proc(dag::NodeId slot) const override {
    return min_proc_slab_[slot];
  }

  sim::TimeMs input_transfer_ms(dag::NodeId slot,
                                sim::ProcId proc) const override {
    const App& app = app_of(slot);
    const ShapeEntry& shape = *app.shape;
    const dag::NodeId local = slot - app.base;
    sim::TimeMs worst = 0.0;
    if (contended_) {
      for (const dag::NodeId pred : shape.dag.predecessors(local)) {
        const sim::ScheduledKernel& rec = node_state_[app.base + pred].record;
        // Internal invariant (not policy-misuse validation): ready slots
        // only surface once every predecessor was scheduled.
        APT_ASSERT(rec.proc != sim::kInvalidProc,
                   "predecessor %u of slot %u not yet scheduled", pred, slot);
        // Comm-adjusted estimate from the topology (uncontended share).
        worst = std::max(worst, topology_.transfer_time_ms(
                                    edge_bytes(app, pred), rec.proc, proc));
      }
      return worst;
    }
    // Ideal topology: the shape's predecessor CSR points straight at the
    // cost model's transfer rows (same doubles, no successor scan).
    for (std::size_t i = shape.pred_offset[local];
         i < shape.pred_offset[local + 1]; ++i) {
      const ShapeEntry::PredEdge& e = shape.pred_edges[i];
      const sim::ScheduledKernel& rec = node_state_[app.base + e.pred].record;
      APT_ASSERT(rec.proc != sim::kInvalidProc,
                 "predecessor %u of slot %u not yet scheduled", e.pred, slot);
      worst = std::max(worst, e.row[rec.proc * proc_count_ + proc]);
    }
    return worst;
  }

  sim::TransferEstimate transfer_estimate(dag::NodeId slot,
                                          sim::ProcId proc) const override {
    sim::TransferEstimate est;
    est.noise = options_.noise;
    if (!contended_) {
      // Ideal topology: only the unloaded stall is non-trivial, and the
      // ideal fast path above is the bit-identical source for it.
      est.stall_ms = input_transfer_ms(slot, proc);
      return est;
    }
    const App& app = app_of(slot);
    const ShapeEntry& shape = *app.shape;
    const dag::NodeId local = slot - app.base;
    sim::ProcId worst_from = proc;  // local: contributes no link
    for (const dag::NodeId pred : shape.dag.predecessors(local)) {
      const sim::ScheduledKernel& rec = node_state_[app.base + pred].record;
      APT_ASSERT(rec.proc != sim::kInvalidProc,
                 "predecessor %u of slot %u not yet scheduled", pred, slot);
      // Same call, same order, same std::max as input_transfer_ms above —
      // stall_ms stays bit-identical to the legacy scalar.
      const sim::TimeMs edge =
          topology_.transfer_time_ms(edge_bytes(app, pred), rec.proc, proc);
      if (edge > est.stall_ms) {
        est.stall_ms = edge;
        worst_from = rec.proc;
      }
      if (!tm_) continue;
      // Backlog scan: predicted drain of each route link's in-flight
      // traffic at the current max-min rates (tm_ is advanced to now_
      // before every policy pass). The most backlogged link across the
      // predecessor routes pins the estimate.
      for (const net::LinkId l : topology_.route(rec.proc, proc)) {
        const sim::TimeMs drain = tm_->link_drain_ms(l);
        if (drain > est.link_queueing_ms) {
          est.link_queueing_ms = drain;
          est.bottleneck_link = l;
        }
      }
    }
    // Idle fabric: pin the estimate to the unloaded bottleneck of the
    // worst predecessor's route, kNoLink when every input is local.
    if (est.bottleneck_link == net::kNoLink && worst_from != proc)
      est.bottleneck_link = topology_.bottleneck_link(worst_from, proc);
    return est;
  }

  const sim::NoiseSpec& noise() const override { return options_.noise; }

  void assign(dag::NodeId slot, sim::ProcId proc, bool alternative) override {
    if (!is_idle(proc))
      throw std::logic_error("StreamEngine::assign: processor " +
                             system_.processor(proc).name + " is not idle");
    take_from_ready(slot);
    note_decision(slot, proc, "assign");
    start_kernel(slot, proc, alternative);
  }

  void enqueue(dag::NodeId slot, sim::ProcId proc, bool alternative) override {
    take_from_ready(slot);
    note_decision(slot, proc, "enqueue");
    NodeState& ns = node_state_[slot];
    ns.record.assign_time = now_ + system_.config().decision_overhead_ms;
    ns.record.alternative = alternative;
    ns.enqueued_at = now_;
    proc_state_.at(proc).queue.push_back({slot, exec_time_ms(slot, proc)});
    idle_dirty_ = true;
    // The destination is fixed, so contended input data starts moving now
    // and may prefetch while the kernel waits in the queue.
    if (contended_)
      begin_comm(slot, proc,
                 now_ + system_.config().decision_overhead_ms +
                     system_.config().dispatch_overhead_ms);
  }

 private:
  static constexpr std::size_t kNoPos = static_cast<std::size_t>(-1);
  static constexpr std::uint32_t kNoApp = static_cast<std::uint32_t>(-1);
  /// Bounded per-processor execution history (memory over long runs).
  static constexpr std::size_t kHistoryCap = 1024;

  struct NodeState {
    sim::ScheduledKernel record;  ///< record.node holds the LOCAL node id
    bool ready = false;
    bool assigned = false;
    bool done = false;
    std::uint32_t app = kNoApp;  ///< owning slot in apps_
    std::uint32_t epoch = 0;     ///< slot reuse generation (see Event)
    std::size_t remaining_preds = 0;
    sim::TimeMs enqueued_at = std::numeric_limits<sim::TimeMs>::quiet_NaN();

    // --- straggler hedging (unused when hedging is disabled) ---
    sim::TimeMs nominal_exec_ms = 0.0;  ///< pre-noise exec on record.proc
    bool hedged = false;           ///< a hedge decision was made (at most 1)
    bool replica_outstanding = false;  ///< replica launched, race unresolved
    std::size_t hedge_idx = kNoPos;    ///< index into the app's hedge log
    sim::ProcId replica_proc = sim::kInvalidProc;
    sim::TimeMs replica_exec_start = 0.0;
    sim::TimeMs replica_exec_ms = 0.0;
    sim::TimeMs replica_transfer_ms = 0.0;
    sim::TimeMs replica_finish = 0.0;
    double replica_mult = 1.0;

    // --- contended-topology comm phase (unused under ideal) ---
    bool exec_started = false;     ///< computation has begun
    bool holds_proc = false;       ///< occupies its processor, maybe stalled
    std::size_t pending_msgs = 0;  ///< input messages still in flight
    sim::TimeMs occupied_at = 0.0;
    sim::TimeMs data_ready_at = 0.0;
  };

  struct QueuedKernel {
    dag::NodeId slot;
    sim::TimeMs exec_ms;
  };

  struct ProcState {
    std::optional<dag::NodeId> running;
    std::deque<QueuedKernel> queue;
    std::deque<sim::TimeMs> exec_history;  ///< newest at the back, capped
  };

  /// Immutable per-shape data shared by every live instance whose DAG is
  /// structurally identical: the canonical graph, its densified cost
  /// tables, the makespan lower bound, per-node minimum-execution tables,
  /// and a predecessor CSR whose entries point straight at the cost
  /// model's transfer rows. Heap-pinned behind a shared_ptr — the cost
  /// model holds a pointer to `dag`, so entries never move; they die when
  /// the last referencing instance retires and the pool has let go.
  struct ShapeEntry {
    dag::Dag dag;
    sim::PrecomputedCostModel cost;  ///< references `dag` above
    sim::TimeMs lower_bound_ms = 0.0;
    std::vector<sim::TimeMs> min_exec;  ///< [local] min over processors
    std::vector<sim::ProcId> min_proc;  ///< [local] lowest argmin
    struct PredEdge {
      dag::NodeId pred;        ///< local predecessor id
      const sim::TimeMs* row;  ///< that edge's P×P transfer table
    };
    std::vector<std::size_t> pred_offset;  ///< [local + 1], CSR bounds
    std::vector<PredEdge> pred_edges;      ///< in predecessors() order

    ShapeEntry(dag::Dag d, const sim::System& system,
               const sim::CostModel& base)
        : dag(std::move(d)), cost(dag, system, base) {}
  };

  /// Returns the pooled entry for this exact graph, building (and pooling)
  /// it on first sight. The structure hash is the lookup key; an exact
  /// dag::identical() check confirms every hit, so a collision costs a
  /// rebuild, never a wrong table. The pool is bounded: at the cap it is
  /// generationally cleared — live instances keep their entries alive
  /// through their own shared_ptrs, the pool merely stops deduplicating
  /// shapes it has already seen.
  std::shared_ptr<const ShapeEntry> acquire_shape(dag::Dag&& dag) {
    const std::uint64_t hash = dag::structure_hash(dag);
    if (auto it = shape_pool_.find(hash); it != shape_pool_.end()) {
      for (const auto& entry : it->second) {
        if (dag::identical(entry->dag, dag)) return entry;
      }
    }
    if (shape_pool_size_ >= kShapePoolCap) {
      shape_pool_.clear();
      shape_pool_size_ = 0;
    }
    auto entry =
        std::make_shared<ShapeEntry>(std::move(dag), system_, base_cost_);
    entry->lower_bound_ms =
        sim::makespan_lower_bound_ms(entry->dag, system_, entry->cost);
    const std::size_t n = entry->dag.node_count();
    entry->min_exec.resize(n);
    entry->min_proc.resize(n);
    for (dag::NodeId local = 0; local < n; ++local) {
      const sim::TimeMs* row = entry->cost.exec_row(local);
      sim::TimeMs best = row[0];
      sim::ProcId best_proc = 0;
      for (sim::ProcId p = 1; p < proc_count_; ++p) {
        if (row[p] < best) {
          best = row[p];
          best_proc = p;
        }
      }
      entry->min_exec[local] = best;
      entry->min_proc[local] = best_proc;
    }
    entry->pred_offset.assign(n + 1, 0);
    entry->pred_edges.reserve(entry->dag.edge_count());
    for (dag::NodeId local = 0; local < n; ++local) {
      for (const dag::NodeId pred : entry->dag.predecessors(local)) {
        const auto& succs = entry->dag.successors(pred);
        std::size_t k = 0;
        while (succs[k] != local) ++k;
        entry->pred_edges.push_back(
            ShapeEntry::PredEdge{pred, entry->cost.transfer_row(pred, k)});
      }
      entry->pred_offset[local + 1] = entry->pred_edges.size();
    }
    shape_pool_[hash].push_back(entry);
    ++shape_pool_size_;
    return entry;
  }

  /// One live application instance — a plain value in the reusable app
  /// table; everything shape-dependent lives behind `shape`.
  struct App {
    std::size_t index = 0;  ///< global arrival index
    sim::TimeMs arrival_ms = 0.0;
    std::shared_ptr<const ShapeEntry> shape;
    dag::NodeId base = dag::kInvalidNode;  ///< first global slot
    std::size_t remaining = 0;             ///< kernels not yet completed
    std::size_t remaining_total = 0;       ///< kernel count
    /// Completed/in-flight link messages, local node ids, absolute times.
    /// Only populated when StreamOptions::record_schedules (memory stays
    /// bounded by the live backlog otherwise).
    std::vector<sim::TransferRecord> transfers;
    /// Hedging episodes of this instance (local node ids), launch order.
    /// Always populated while live — the aggregate counters fold out of
    /// it — but only retained into the outcome under record_schedules.
    std::vector<sim::HedgeRecord> hedges;
  };

  const App& app_of(dag::NodeId slot) const {
    const std::uint32_t a = node_state_.at(slot).app;
    if (a == kNoApp)
      throw std::logic_error("StreamEngine: slot has no live application");
    return apps_[a];
  }

  // --- slot-range allocator -------------------------------------------------

  /// First-fit over the retired ranges (lowest base wins — deterministic),
  /// growing the arrays when nothing fits. Ranges merge on release, so a
  /// steady-state stream of same-sized instances recycles one range
  /// forever and memory stays proportional to the live backlog.
  dag::NodeId allocate_slots(std::size_t n) {
    for (auto it = free_ranges_.begin(); it != free_ranges_.end(); ++it) {
      if (it->second < n) continue;
      const dag::NodeId base = it->first;
      const std::size_t len = it->second;
      free_ranges_.erase(it);
      if (len > n)
        free_ranges_.emplace(base + static_cast<dag::NodeId>(n), len - n);
      return base;
    }
    const dag::NodeId base = static_cast<dag::NodeId>(node_state_.size());
    node_state_.resize(node_state_.size() + n);
    ready_pos_.resize(node_state_.size(), kNoPos);
    exec_row_.resize(node_state_.size(), nullptr);
    min_exec_slab_.resize(node_state_.size(), 0.0);
    min_proc_slab_.resize(node_state_.size(), 0);
    return base;
  }

  void release_slots(dag::NodeId base, std::size_t n) {
    auto [it, inserted] = free_ranges_.emplace(base, n);
    (void)inserted;
    // Merge with the successor range, then with the predecessor.
    auto next = std::next(it);
    if (next != free_ranges_.end() &&
        it->first + static_cast<dag::NodeId>(it->second) == next->first) {
      it->second += next->second;
      free_ranges_.erase(next);
    }
    if (it != free_ranges_.begin()) {
      auto prev = std::prev(it);
      if (prev->first + static_cast<dag::NodeId>(prev->second) == it->first) {
        prev->second += it->second;
        free_ranges_.erase(it);
      }
    }
  }

  // --- ready-set bookkeeping (sim::Engine's tombstone scheme) ---------------

  void mark_ready(dag::NodeId slot) {
    if (profile_) profile_->add(obs::Counter::kReadyMarked);
    NodeState& ns = node_state_[slot];
    ns.ready = true;
    ns.record.ready_time = now_;
    ready_pos_[slot] = ready_.size();
    ready_.push_back(slot);
    ++ready_count_;
    observation_.queue_depth.observe(now_, ready_count_);
  }

  void take_from_ready(dag::NodeId slot) {
    NodeState& ns = node_state_.at(slot);
    if (!ns.ready || ns.assigned)
      throw std::logic_error("StreamEngine: slot " + std::to_string(slot) +
                             " is not in the ready set");
    ns.assigned = true;
    ready_[ready_pos_[slot]] = dag::kInvalidNode;
    ready_pos_[slot] = kNoPos;
    ++ready_tombstones_;
    --ready_count_;
    observation_.queue_depth.observe(now_, ready_count_);
  }

  void compact_ready() const {
    if (profile_) profile_->add(obs::Counter::kReadyCompactions);
    std::size_t out = 0;
    for (std::size_t i = 0; i < ready_.size(); ++i) {
      const dag::NodeId slot = ready_[i];
      if (slot == dag::kInvalidNode) continue;
      ready_pos_[slot] = out;
      ready_[out++] = slot;
    }
    ready_.resize(out);
    ready_tombstones_ = 0;
  }

  // --- observability (src/obs) ----------------------------------------------
  // Every site is a null-guarded read of already-committed facts; with no
  // sink/profile attached each collapses to one branch.

  void note_decision(dag::NodeId slot, sim::ProcId proc, const char* detail) {
    if (profile_) profile_->add(obs::Counter::kPolicyDecisions);
    if (!sink_) return;
    const App& app = app_of(slot);
    obs::InstantEvent ev;
    ev.kind = obs::InstantKind::kDecision;
    ev.instance = app.index;
    ev.node = slot - app.base;
    ev.proc = proc;
    ev.time = now_;
    ev.detail = detail;
    sink_->instant(ev);
  }

  /// App-level lifecycle marker (sink_ checked by the caller).
  void emit_lifecycle(obs::InstantKind kind, std::uint64_t instance,
                      sim::TimeMs time) {
    obs::InstantEvent ev;
    ev.kind = kind;
    ev.instance = instance;
    ev.time = time;
    sink_->instant(ev);
  }

  /// Winner span of a retiring kernel (sink_ checked by the caller).
  void emit_kernel_span(const NodeState& ns, dag::NodeId slot) {
    const App& app = apps_[ns.app];
    const dag::NodeId local = slot - app.base;
    obs::KernelSpan span;
    span.instance = app.index;
    span.node = local;
    span.kernel = app.shape->dag.node(local).kernel.c_str();
    span.proc = ns.record.proc;
    span.occupied_from = ns.record.occupied_from();
    span.exec_start = ns.record.exec_start;
    span.finish = ns.record.finish_time;
    span.noise_mult = ns.record.noise_mult;
    span.alternative = ns.record.alternative;
    if (ns.hedge_idx != kNoPos)
      span.role = app.hedges[ns.hedge_idx].replica_won
                      ? obs::SpanRole::kHedgeReplica
                      : obs::SpanRole::kHedgePrimary;
    sink_->kernel_span(span);
  }

  /// Cancelled losing attempt of a hedge race (sink_ checked by caller).
  void emit_loser_span(dag::NodeId slot, sim::ProcId proc,
                       sim::TimeMs occupied_from, sim::TimeMs exec_start,
                       sim::TimeMs cancelled, double mult,
                       obs::SpanRole role) {
    const App& app = apps_[node_state_[slot].app];
    const dag::NodeId local = slot - app.base;
    obs::KernelSpan span;
    span.instance = app.index;
    span.node = local;
    span.kernel = app.shape->dag.node(local).kernel.c_str();
    span.proc = proc;
    span.occupied_from = occupied_from;
    span.exec_start = exec_start;
    span.finish = cancelled;
    span.noise_mult = mult;
    span.role = role;
    span.cancelled = true;
    sink_->kernel_span(span);
  }

  /// Completed fabric message (sink_ checked by the caller).
  void emit_transfer_span(const sim::TransferRecord& record,
                          std::uint64_t instance) {
    obs::TransferSpan span;
    span.instance = instance;
    span.src = record.src;
    span.dst = record.dst;
    span.from = record.from;
    span.to = record.to;
    span.path = record.path.data();
    span.hops = record.path.size();
    span.bytes = record.bytes;
    span.start = record.start;
    span.drain_start = record.drain_start;
    span.finish = record.finish;
    sink_->transfer_span(span);
  }

  // --- kernel lifecycle (mirrors sim::Engine) -------------------------------

  /// Payload of the edge out of `pred` (a local node id) in `app`.
  double edge_bytes(const App& app, dag::NodeId pred) const {
    return sim::edge_payload_bytes(app.shape->dag, pred,
                                   system_.config().bytes_per_element);
  }

  /// Contended mode: creates one link message per non-local input edge of
  /// `slot`, entering the fabric at the dispatch instant. Called exactly
  /// once per kernel, when the policy commits it.
  void begin_comm(dag::NodeId slot, sim::ProcId proc,
                  sim::TimeMs dispatched) {
    NodeState& ns = node_state_[slot];
    if (ns.app == kNoApp)
      throw std::logic_error("StreamEngine: slot has no live application");
    App& app = apps_[ns.app];
    const dag::NodeId local = slot - app.base;
    ns.data_ready_at = dispatched;
    for (const dag::NodeId pred : app.shape->dag.predecessors(local)) {
      const sim::ScheduledKernel& rec = node_state_[app.base + pred].record;
      const net::Topology::Route route = topology_.route(rec.proc, proc);
      if (route.empty()) continue;  // same processor, socket, or cell
      const double bytes = edge_bytes(app, pred);
      const std::uint64_t tag = next_transfer_tag_++;
      // A trace sink needs the full message record at delivery time, so
      // tracing also populates the app's transfer log; retire() still
      // clears it when schedules are not recorded, keeping memory bounded
      // by the live backlog.
      if (options_.record_schedules || sink_) {
        sim::TransferRecord record;
        record.src = pred;
        record.dst = local;
        record.from = rec.proc;
        record.to = proc;
        record.path.assign(route.begin(), route.end());
        record.bytes = bytes;
        record.start = dispatched;
        record.drain_start =
            dispatched + topology_.route_latency_ms(rec.proc, proc);
        inflight_[tag] = InFlight{slot, app.transfers.size()};
        app.transfers.push_back(std::move(record));
      } else {
        inflight_[tag] = InFlight{slot, kNoRecord};
      }
      tm_->start(tag, bytes, rec.proc, proc, dispatched);
      ++ns.pending_msgs;
      if (profile_) profile_->add(obs::Counter::kTransfersStarted);
    }
  }

  /// Contended mode: all inputs are in — computation begins at `at`.
  void begin_exec(dag::NodeId slot, sim::TimeMs at) {
    NodeState& ns = node_state_[slot];
    ns.exec_started = true;
    ns.record.exec_start = at;
    ns.record.transfer_ms = at - ns.occupied_at;
    ns.record.finish_time = at + ns.record.exec_ms;
    events_.push(
        Event{ns.record.finish_time, slot, EventKind::kCompletion, ns.epoch});
  }

  void on_delivery(const net::Delivery& delivery) {
    const auto it = inflight_.find(delivery.tag);
    if (it == inflight_.end())
      throw std::logic_error("StreamEngine: delivery for unknown transfer");
    const InFlight flight = it->second;
    inflight_.erase(it);
    NodeState& ns = node_state_[flight.slot];
    if (flight.record != kNoRecord) {
      sim::TransferRecord& record = apps_[ns.app].transfers[flight.record];
      record.finish = now_;
      if (sink_) emit_transfer_span(record, apps_[ns.app].index);
    }
    --ns.pending_msgs;
    ns.data_ready_at = std::max(ns.data_ready_at, now_);
    if (ns.pending_msgs == 0 && ns.holds_proc)
      begin_exec(flight.slot, std::max(ns.occupied_at, ns.data_ready_at));
  }

  /// Stamps the realized execution time of `slot` on its processor: the
  /// nominal (SoA-baked) duration times the per-kernel noise multiplier.
  /// The noise instance is the app's global arrival index and the node id
  /// is local, so the draw matches sim::Engine's for the same DAG and is
  /// independent of slot placement, scheduling order, and --jobs.
  void stamp_exec_time(NodeState& ns, dag::NodeId slot, sim::TimeMs nominal) {
    ns.nominal_exec_ms = nominal;
    if (options_.noise.enabled()) {
      const App& app = app_of(slot);
      ns.record.noise_mult =
          sim::noise_multiplier(options_.noise, app.index, slot - app.base, 0);
    } else {
      ns.record.noise_mult = 1.0;
    }
    ns.record.exec_ms = nominal * ns.record.noise_mult;
  }

  void start_kernel(dag::NodeId slot, sim::ProcId proc, bool alternative) {
    NodeState& ns = node_state_[slot];
    const sim::SystemConfig& cfg = system_.config();
    ns.record.proc = proc;
    ns.record.alternative = alternative;
    ns.record.assign_time = now_ + cfg.decision_overhead_ms;
    const sim::TimeMs dispatched =
        ns.record.assign_time + cfg.dispatch_overhead_ms;
    if (contended_) {
      stamp_exec_time(ns, slot, exec_time_ms(slot, proc));
      ns.occupied_at = dispatched;
      ns.holds_proc = true;
      proc_state_[proc].running = slot;
      idle_dirty_ = true;
      begin_comm(slot, proc, dispatched);
      if (ns.pending_msgs == 0) begin_exec(slot, ns.data_ready_at);
      return;
    }
    ns.record.transfer_ms = transfer_delay(slot, proc, dispatched);
    ns.record.exec_start = dispatched + ns.record.transfer_ms;
    stamp_exec_time(ns, slot, exec_time_ms(slot, proc));
    ns.record.finish_time = ns.record.exec_start + ns.record.exec_ms;
    ns.exec_started = true;
    proc_state_[proc].running = slot;
    idle_dirty_ = true;
    events_.push(
        Event{ns.record.finish_time, slot, EventKind::kCompletion, ns.epoch});
    if (options_.hedging.enabled) schedule_hedge_check(slot);
  }

  /// Pops queue heads onto idle processors. (Profiled as its own phase;
  /// the calls from advance_to_next_event nest inside that timer.)
  void drain_queues() {
    obs::ScopedTimer timer(profile_, obs::Timer::kDrainQueues);
    for (sim::ProcId p = 0; p < proc_state_.size(); ++p) {
      ProcState& ps = proc_state_[p];
      if (ps.running.has_value() || ps.queue.empty()) continue;
      const QueuedKernel next = ps.queue.front();
      ps.queue.pop_front();
      start_queued_kernel(next, p);
    }
  }

  void start_queued_kernel(const QueuedKernel& queued, sim::ProcId proc) {
    NodeState& ns = node_state_[queued.slot];
    const sim::SystemConfig& cfg = system_.config();
    if (contended_) {
      // Messages have been in flight since the enqueue; the processor
      // picks the kernel up now and stalls until the last one lands.
      ns.record.proc = proc;
      stamp_exec_time(ns, queued.slot, queued.exec_ms);
      ns.occupied_at = now_;
      ns.holds_proc = true;
      proc_state_[proc].running = queued.slot;
      idle_dirty_ = true;
      if (ns.pending_msgs == 0)
        begin_exec(queued.slot, std::max(now_, ns.data_ready_at));
      return;
    }
    const sim::TimeMs transfer = input_transfer_ms(queued.slot, proc);
    const sim::TimeMs data_ready = ns.enqueued_at + cfg.decision_overhead_ms +
                                   cfg.dispatch_overhead_ms + transfer;
    // queued.exec_ms stayed nominal for the queue-estimate queries; the
    // noise draw lands only now, on the realized duration.
    ns.record.proc = proc;
    ns.record.exec_start = std::max(now_, data_ready);
    ns.record.transfer_ms = std::max(0.0, data_ready - now_);
    stamp_exec_time(ns, queued.slot, queued.exec_ms);
    ns.record.finish_time = ns.record.exec_start + ns.record.exec_ms;
    ns.exec_started = true;
    proc_state_[proc].running = queued.slot;
    idle_dirty_ = true;
    events_.push(Event{ns.record.finish_time, queued.slot,
                       EventKind::kCompletion, ns.epoch});
    if (options_.hedging.enabled) schedule_hedge_check(queued.slot);
  }

  sim::TimeMs transfer_delay(dag::NodeId slot, sim::ProcId proc,
                             sim::TimeMs from_time) {
    if (policy_.transfer_semantics() == sim::TransferSemantics::AtAssignment)
      return input_transfer_ms(slot, proc);
    const App& app = app_of(slot);
    const dag::Dag& dag = app.shape->dag;
    const dag::NodeId local = slot - app.base;
    sim::TimeMs data_ready = from_time;
    const sim::Processor& to = system_.processor(proc);
    for (const dag::NodeId pred : dag.predecessors(local)) {
      const sim::ScheduledKernel& rec = node_state_[app.base + pred].record;
      const sim::TimeMs arrival =
          rec.finish_time +
          app.shape->cost.transfer_time_ms(dag, pred, local,
                                           system_.processor(rec.proc), to);
      data_ready = std::max(data_ready, arrival);
    }
    return data_ready - from_time;
  }

  // --- straggler hedging ----------------------------------------------------

  /// Elapsed primary runtime that triggers a hedge for a kernel with the
  /// given nominal duration: nominal × (rolling tail inflation, once the
  /// window is trustworthy) × the safety factor. Never below nominal ×
  /// factor, so hedging only ever fires on kernels already running late.
  sim::TimeMs hedge_threshold_ms(sim::TimeMs nominal) const {
    double inflation = 1.0;
    if (hedge_window_.count() >= options_.hedging.min_samples)
      inflation =
          std::max(1.0, hedge_window_.quantile(options_.hedging.quantile));
    return nominal * inflation * options_.hedging.threshold_factor;
  }

  void schedule_hedge_check(dag::NodeId slot) {
    const NodeState& ns = node_state_[slot];
    events_.push(
        Event{ns.record.exec_start + hedge_threshold_ms(ns.nominal_exec_ms),
              slot, EventKind::kHedgeCheck, ns.epoch});
  }

  /// A hedge check came due at `t`. The threshold is re-derived from the
  /// CURRENT rolling window (it may have grown since the check was armed);
  /// if the kernel is not yet overdue under the fresh threshold the check
  /// re-arms at the new instant, otherwise a replica launches — once per
  /// kernel, and only if some processor is idle right now (hedging never
  /// preempts or queues; a saturated platform has no spare capacity worth
  /// burning on duplicates).
  void process_hedge_check(dag::NodeId slot, sim::TimeMs t) {
    NodeState& ns = node_state_[slot];
    if (ns.done || ns.hedged || !ns.exec_started) return;
    const sim::TimeMs due =
        ns.record.exec_start + hedge_threshold_ms(ns.nominal_exec_ms);
    if (due > t) {
      events_.push(Event{due, slot, EventKind::kHedgeCheck, ns.epoch});
      return;
    }
    ns.hedged = true;  // one decision per kernel, launched or dropped
    const std::vector<sim::ProcId>& idle = idle_processors();
    if (idle.empty()) return;
    // Fastest idle destination by NOMINAL time; idle list ascends, so ties
    // break to the lowest processor id.
    sim::ProcId best = idle.front();
    sim::TimeMs best_ms = exec_time_ms(slot, best);
    for (std::size_t i = 1; i < idle.size(); ++i) {
      const sim::TimeMs ms = exec_time_ms(slot, idle[i]);
      if (ms < best_ms) {
        best = idle[i];
        best_ms = ms;
      }
    }
    launch_replica(slot, best, best_ms, t);
  }

  /// Launches the hedged replica of `slot` on idle `proc` at time `t`. The
  /// replica pays the full reactive path — decision + dispatch overheads
  /// and its input transfers from scratch — and draws its own noise
  /// substream (replica id 1).
  void launch_replica(dag::NodeId slot, sim::ProcId proc, sim::TimeMs nominal,
                      sim::TimeMs t) {
    NodeState& ns = node_state_[slot];
    App& app = apps_[ns.app];
    const sim::SystemConfig& cfg = system_.config();
    const sim::TimeMs dispatched =
        t + cfg.decision_overhead_ms + cfg.dispatch_overhead_ms;
    ns.replica_proc = proc;
    ns.replica_transfer_ms = input_transfer_ms(slot, proc);
    ns.replica_exec_start = dispatched + ns.replica_transfer_ms;
    ns.replica_mult = options_.noise.enabled()
                          ? sim::noise_multiplier(options_.noise, app.index,
                                                  slot - app.base, 1)
                          : 1.0;
    ns.replica_exec_ms = nominal * ns.replica_mult;
    ns.replica_finish = ns.replica_exec_start + ns.replica_exec_ms;
    ns.replica_outstanding = true;
    ns.hedge_idx = app.hedges.size();
    sim::HedgeRecord record;
    record.node = slot - app.base;
    record.primary_proc = ns.record.proc;
    record.replica_proc = proc;
    record.launched_ms = t;
    app.hedges.push_back(record);
    ++observation_.hedges_launched;
    proc_state_[proc].running = slot;
    idle_dirty_ = true;
    events_.push(
        Event{ns.replica_finish, slot, EventKind::kReplica, ns.epoch});
    if (sink_) {
      obs::InstantEvent ev;
      ev.kind = obs::InstantKind::kHedgeLaunch;
      ev.instance = app.index;
      ev.node = slot - app.base;
      ev.proc = proc;
      ev.time = t;
      sink_->instant(ev);
    }
  }

  /// Folds a resolved race's losing attempt into the window-clipped
  /// aggregates: its compute span counts as processor busy time (the
  /// processor really was occupied) and its whole occupied span as hedge
  /// waste.
  void account_loser(sim::ProcId proc, sim::TimeMs occupied_from,
                     sim::TimeMs compute_from, sim::TimeMs cancelled) {
    const sim::TimeMs busy_from =
        std::max(compute_from, options_.warmup_ms);
    if (cancelled > busy_from)
      observation_.busy_in_window_ms[proc] += cancelled - busy_from;
    const sim::TimeMs waste_from =
        std::max(occupied_from, options_.warmup_ms);
    if (cancelled > waste_from)
      observation_.hedge_wasted_in_window_ms += cancelled - waste_from;
  }

  /// Primary completion event. Skipped when stale (the replica already won
  /// and retired the kernel); otherwise the primary wins any outstanding
  /// race — the replica is cancelled at this instant and its processor
  /// freed.
  void complete_primary(dag::NodeId slot) {
    NodeState& ns = node_state_[slot];
    if (ns.done) return;
    if (ns.replica_outstanding) {
      ns.replica_outstanding = false;
      proc_state_[ns.replica_proc].running.reset();
      idle_dirty_ = true;
      sim::HedgeRecord& h = apps_[ns.app].hedges[ns.hedge_idx];
      h.replica_won = false;
      h.winner_finish_ms = ns.record.finish_time;
      h.cancelled_ms = ns.record.finish_time;
      h.loser_start_ms = ns.replica_exec_start - ns.replica_transfer_ms;
      account_loser(ns.replica_proc, h.loser_start_ms, ns.replica_exec_start,
                    h.cancelled_ms);
      if (sink_)
        emit_loser_span(slot, ns.replica_proc, h.loser_start_ms,
                        ns.replica_exec_start, h.cancelled_ms,
                        ns.replica_mult, obs::SpanRole::kHedgeReplica);
    }
    complete_kernel(slot);
  }

  /// Replica completion event. Skipped when stale (the primary won first);
  /// otherwise the replica wins: the straggling primary is cancelled now,
  /// its processor freed, and the schedule record rewritten to describe
  /// the winning attempt (the loser survives in the HedgeRecord).
  void complete_replica(dag::NodeId slot) {
    NodeState& ns = node_state_[slot];
    if (ns.done || !ns.replica_outstanding) return;
    ns.replica_outstanding = false;
    proc_state_[ns.record.proc].running.reset();
    idle_dirty_ = true;
    sim::HedgeRecord& h = apps_[ns.app].hedges[ns.hedge_idx];
    h.replica_won = true;
    h.winner_finish_ms = ns.replica_finish;
    h.cancelled_ms = ns.replica_finish;
    h.loser_start_ms = ns.record.occupied_from();
    ++observation_.hedges_replica_won;
    account_loser(ns.record.proc, h.loser_start_ms, ns.record.exec_start,
                  h.cancelled_ms);
    // The record is about to be rewritten to the winning replica; the
    // losing primary's facts only exist here.
    if (sink_)
      emit_loser_span(slot, ns.record.proc, h.loser_start_ms,
                      ns.record.exec_start, h.cancelled_ms,
                      ns.record.noise_mult, obs::SpanRole::kHedgePrimary);
    ns.record.proc = ns.replica_proc;
    ns.record.assign_time =
        h.launched_ms + system_.config().decision_overhead_ms;
    ns.record.exec_start = ns.replica_exec_start;
    ns.record.exec_ms = ns.replica_exec_ms;
    ns.record.transfer_ms = ns.replica_transfer_ms;
    ns.record.finish_time = ns.replica_finish;
    ns.record.noise_mult = ns.replica_mult;
    complete_kernel(slot);
  }

  // --- event loop -----------------------------------------------------------

  void advance_to_next_event(ArrivalProcess& arrivals) {
    obs::ScopedTimer timer(profile_, obs::Timer::kEventLoopAdvance);
    sim::TimeMs t = std::numeric_limits<sim::TimeMs>::infinity();
    if (!events_.empty()) t = std::min(t, events_.top().time);
    if (!releases_.empty()) t = std::min(t, releases_.top().time);
    if (next_arrival_) t = std::min(t, *next_arrival_);
    if (tm_) t = std::min(t, tm_->next_event_ms());
    now_ = t;
    while (!events_.empty() && events_.top().time == t) {
      const Event ev = events_.top();
      events_.pop();
      if (profile_) {
        profile_->add(obs::Counter::kEventsProcessed);
        if (ev.kind == EventKind::kHedgeCheck)
          profile_->add(obs::Counter::kHedgeChecks);
      }
      // A dead event whose slot was recycled must not touch the new tenant.
      if (node_state_[ev.slot].epoch != ev.epoch) continue;
      switch (ev.kind) {
        case EventKind::kCompletion:
          complete_primary(ev.slot);
          break;
        case EventKind::kReplica:
          complete_replica(ev.slot);
          break;
        case EventKind::kHedgeCheck:
          process_hedge_check(ev.slot, t);
          break;
      }
    }
    if (tm_) {
      tm_->advance_to(t, deliveries_);  // reused buffer, no per-event alloc
      for (const net::Delivery& delivery : deliveries_) on_delivery(delivery);
    }
    while (!releases_.empty() && releases_.top().time <= t) {
      const dag::NodeId slot = releases_.top().slot;
      releases_.pop();
      if (node_state_[slot].remaining_preds == 0) mark_ready(slot);
    }
    process_arrivals(arrivals);
    drain_queues();
  }

  void complete_kernel(dag::NodeId slot) {
    NodeState& ns = node_state_[slot];
    ns.done = true;
    if (sink_) emit_kernel_span(ns, slot);
    const std::uint32_t app_slot = ns.app;
    App& app = apps_[app_slot];
    --app.remaining;

    ProcState& ps = proc_state_[ns.record.proc];
    ps.running.reset();
    idle_dirty_ = true;
    ps.exec_history.push_back(ns.record.exec_ms);
    if (ps.exec_history.size() > kHistoryCap) ps.exec_history.pop_front();
    // Feed the hedging threshold: the winner's noise multiplier IS the
    // realized/nominal inflation ratio of this completion.
    if (options_.hedging.enabled) hedge_window_.add(ns.record.noise_mult);

    // Window-clipped utilization accounting, folded in as kernels finish so
    // nothing per-kernel must be retained.
    const sim::TimeMs busy_from =
        std::max(ns.record.exec_start, options_.warmup_ms);
    if (ns.record.finish_time > busy_from) {
      observation_.busy_in_window_ms[ns.record.proc] +=
          ns.record.finish_time - busy_from;
    }
    if (ns.record.finish_time >= options_.warmup_ms)
      ++observation_.kernels_in_window[ns.record.proc];

    for (const dag::NodeId succ : app.shape->dag.successors(slot - app.base)) {
      const dag::NodeId succ_slot = app.base + succ;
      NodeState& ss = node_state_[succ_slot];
      if (--ss.remaining_preds == 0) {
        const sim::TimeMs release =
            app.arrival_ms + app.shape->dag.node(succ).release_ms;
        if (release <= now_) {
          mark_ready(succ_slot);
        } else {
          releases_.push(Event{release, succ_slot});
        }
      }
    }
    if (app.remaining == 0) retire(app_slot);
  }

  void retire(std::uint32_t app_slot) {
    App& app = apps_[app_slot];
    if (profile_) profile_->add(obs::Counter::kRetirements);
    if (sink_) emit_lifecycle(obs::InstantKind::kRetirement, app.index, now_);
    observation_.completed.push_back(sim::StreamAppStats{
        app.index, app.arrival_ms, now_, app.shape->lower_bound_ms,
        app.shape->dag.node_count()});
    if (options_.record_schedules) {
      StreamAppSchedule schedule;
      schedule.index = app.index;
      schedule.arrival_ms = app.arrival_ms;
      schedule.result.schedule.resize(app.shape->dag.node_count());
      sim::TimeMs last = 0.0;
      for (dag::NodeId local = 0; local < app.shape->dag.node_count();
           ++local) {
        schedule.result.schedule[local] = node_state_[app.base + local].record;
        last = std::max(last, schedule.result.schedule[local].finish_time);
      }
      schedule.result.makespan = last;
      schedule.result.transfers = std::move(app.transfers);
      schedule.result.hedges = std::move(app.hedges);
      schedule.dag = app.shape->dag;  // the shape's canonical copy is shared
      schedules_.push_back(std::move(schedule));
    }
    // Clear ownership (and the baked cost rows) before releasing so stale
    // queries fault loudly instead of reading a retired instance's tables.
    for (dag::NodeId local = 0; local < app.remaining_total; ++local) {
      node_state_[app.base + local].app = kNoApp;
      exec_row_[app.base + local] = nullptr;
    }
    release_slots(app.base, app.remaining_total);
    app.shape.reset();  // may free the ShapeEntry if the pool let go
    app.transfers.clear();
    app.hedges.clear();
    free_app_slots_.push_back(app_slot);
    --live_count_;
    observation_.live_apps.observe(now_, live_count_);
  }

  // --- admission ------------------------------------------------------------

  void pull_next_arrival(ArrivalProcess& arrivals) {
    if (options_.max_apps != 0 &&
        observation_.apps_arrived >= options_.max_apps) {
      next_arrival_ = std::nullopt;
      return;
    }
    next_arrival_ = arrivals.next();
    if (next_arrival_ && options_.horizon_ms > 0.0 &&
        *next_arrival_ > options_.horizon_ms)
      next_arrival_ = std::nullopt;
  }

  void process_arrivals(ArrivalProcess& arrivals) {
    while (next_arrival_ && *next_arrival_ <= now_) {
      admit(*next_arrival_);
      pull_next_arrival(arrivals);
    }
  }

  void admit(sim::TimeMs arrival_ms) {
    const std::size_t index = observation_.apps_arrived++;
    if (profile_) profile_->add(obs::Counter::kArrivals);
    if (sink_) emit_lifecycle(obs::InstantKind::kArrival, index, arrival_ms);
    dag::Dag dag = source_(index);

    if (dag.empty()) {
      // A zero-kernel application completes the instant it arrives.
      if (profile_) profile_->add(obs::Counter::kRetirements);
      if (sink_)
        emit_lifecycle(obs::InstantKind::kRetirement, index, arrival_ms);
      observation_.completed.push_back(
          sim::StreamAppStats{index, arrival_ms, arrival_ms, 0.0, 0});
      if (options_.record_schedules) {
        StreamAppSchedule schedule;
        schedule.index = index;
        schedule.arrival_ms = arrival_ms;
        schedules_.push_back(std::move(schedule));
      }
      return;
    }
    if (live_count_ + 1 > options_.max_live_apps)
      throw std::runtime_error(
          "StreamEngine: live-application guard tripped (" +
          std::to_string(options_.max_live_apps) +
          " concurrent apps) — the arrival rate exceeds the platform's "
          "capacity");

    std::uint32_t app_slot;
    if (!free_app_slots_.empty()) {
      app_slot = free_app_slots_.back();
      free_app_slots_.pop_back();
    } else {
      app_slot = static_cast<std::uint32_t>(apps_.size());
      apps_.emplace_back();
    }
    App& app = apps_[app_slot];
    app.index = index;
    app.arrival_ms = arrival_ms;
    app.shape = acquire_shape(std::move(dag));
    const ShapeEntry& shape = *app.shape;
    const std::size_t n = shape.dag.node_count();
    app.remaining = n;
    app.remaining_total = n;
    app.base = allocate_slots(n);
    app.transfers.clear();
    app.hedges.clear();

    for (dag::NodeId local = 0; local < n; ++local) {
      const dag::NodeId slot = app.base + local;
      NodeState& ns = node_state_[slot];
      const std::uint32_t epoch = ns.epoch + 1;  // retire any dead events
      ns = NodeState{};
      ns.epoch = epoch;
      ns.record.node = local;
      ns.app = app_slot;
      ns.remaining_preds = shape.dag.in_degree(local);
      // Bake the shape's cost rows into the per-slot SoA slabs the
      // scheduler queries hit.
      exec_row_[slot] = shape.cost.exec_row(local);
      min_exec_slab_[slot] = shape.min_exec[local];
      min_proc_slab_[slot] = shape.min_proc[local];
      if (ns.remaining_preds == 0) {
        const sim::TimeMs release =
            arrival_ms + shape.dag.node(local).release_ms;
        if (release <= now_) {
          mark_ready(slot);
        } else {
          releases_.push(Event{release, slot});
        }
      }
    }
    ++live_count_;
    observation_.live_apps.observe(now_, live_count_);
  }

  const sim::System& system_;
  const sim::CostModel& base_cost_;
  const DagSource& source_;
  const StreamOptions& options_;
  sim::Policy& policy_;

  /// Contended-topology comm phase (tm_ engaged only when contended_).
  const net::Topology& topology_;
  const bool contended_;
  const std::size_t proc_count_;
  /// Rolling realized/nominal inflation ratios of completed kernels — the
  /// bounded-memory sample the hedging threshold quantile is drawn from
  /// (platform-wide, across application instances).
  util::RollingQuantile hedge_window_;
  /// Observability taps (null = disabled; every use is null-guarded).
  obs::TraceSink* const sink_;
  obs::Profile* const profile_;
  std::optional<net::TransferManager> tm_;
  std::optional<sim::TopologyCostModel> topo_cost_;
  static constexpr std::size_t kNoRecord = static_cast<std::size_t>(-1);
  /// One in-flight message: the waiting kernel's slot and (when schedules
  /// are recorded) the index into its app's transfer log.
  struct InFlight {
    dag::NodeId slot = dag::kInvalidNode;
    std::size_t record = kNoRecord;
  };
  // lint:unordered-ok(keyed lookup only — found/inserted/erased by transfer
  // tag, never iterated, so hash order cannot reach event or output order)
  std::unordered_map<std::uint64_t, InFlight> inflight_;
  std::uint64_t next_transfer_tag_ = 0;
  std::vector<net::Delivery> deliveries_;  ///< advance_to out-buffer, reused

  sim::TimeMs now_ = 0.0;
  std::vector<NodeState> node_state_;  ///< global slot arrays
  std::vector<ProcState> proc_state_;

  // Per-slot SoA cost slabs (grown with node_state_, rebaked per admit):
  // the policy-facing queries read these instead of chasing app pointers.
  std::vector<const sim::TimeMs*> exec_row_;  ///< [slot] -> P exec times
  std::vector<sim::TimeMs> min_exec_slab_;    ///< [slot] min exec time
  std::vector<sim::ProcId> min_proc_slab_;    ///< [slot] lowest argmin

  /// Retired slot ranges, base -> length, adjacent ranges merged.
  std::map<dag::NodeId, std::size_t> free_ranges_;

  std::vector<App> apps_;  ///< reusable instance table (value slots)
  std::vector<std::uint32_t> free_app_slots_;
  std::size_t live_count_ = 0;

  /// Shape pool: structure hash -> confirmed-identical entries.
  static constexpr std::size_t kShapePoolCap = 128;
  // lint:unordered-ok(keyed lookup only — probed/inserted by structure hash
  // and wholesale clear()ed at the cap; the map itself is never iterated,
  // and the per-hash bucket vector scans in deterministic insertion order)
  std::unordered_map<std::uint64_t, std::vector<std::shared_ptr<ShapeEntry>>>
      shape_pool_;
  std::size_t shape_pool_size_ = 0;

  mutable std::vector<dag::NodeId> ready_;
  mutable std::vector<std::size_t> ready_pos_;
  mutable std::size_t ready_tombstones_ = 0;
  std::size_t ready_count_ = 0;

  mutable std::vector<sim::ProcId> idle_cache_;
  mutable bool idle_dirty_ = true;

  EventQueue events_;    ///< kernel completions
  EventQueue releases_;  ///< future release instants (arrival + offset)
  std::optional<sim::TimeMs> next_arrival_;

  sim::StreamObservation observation_;
  std::vector<StreamAppSchedule> schedules_;
};

StreamEngine::StreamEngine(const sim::System& system,
                           const sim::CostModel& base_cost, DagSource source,
                           StreamOptions options)
    : system_(system),
      base_cost_(base_cost),
      source_(std::move(source)),
      options_(std::move(options)) {
  options_.validate();
  if (!source_)
    throw std::invalid_argument("StreamEngine: DagSource must be callable");
}

StreamOutcome StreamEngine::run(sim::Policy& policy) {
  if (!policy.is_dynamic())
    throw std::invalid_argument(
        "StreamEngine: policy '" + policy.name() +
        "' plans statically from the whole DAG, which does not exist in an "
        "open system — use a dynamic policy");
  if (options_.hedging.enabled && system_.topology().contended())
    throw std::invalid_argument(
        "StreamEngine: straggler hedging requires an uncontended topology "
        "(a replica's input transfers are not modelled as fabric messages)");
  // The same lifecycle every policy sees in the closed-system engine; the
  // DAG is empty because instances only materialize as they arrive.
  // prepare() receives the context's own cost model (topology-priced
  // under a contended fabric), so a policy that caches the reference sees
  // the same object SchedulerContext::cost_model() later returns.
  const dag::Dag no_dag;
  Context ctx(system_, base_cost_, source_, options_, policy);
  policy.prepare(no_dag, system_, ctx.cost_model());
  return ctx.simulate();
}

}  // namespace apt::stream
