#include "stream/arrival.hpp"

#include <stdexcept>

#include "util/string_utils.hpp"

namespace apt::stream {

const char* to_string(ArrivalKind kind) noexcept {
  switch (kind) {
    case ArrivalKind::Poisson:
      return "poisson";
    case ArrivalKind::Deterministic:
      return "deterministic";
    case ArrivalKind::Trace:
      return "trace";
  }
  return "?";
}

ArrivalKind parse_arrival_kind(const std::string& name) {
  const std::string s = util::to_lower(util::trim(name));
  if (s == "poisson") return ArrivalKind::Poisson;
  if (s == "deterministic" || s == "uniform")
    return ArrivalKind::Deterministic;
  if (s == "trace") return ArrivalKind::Trace;
  throw std::invalid_argument("unknown arrival process '" + name +
                              "' (known: poisson, deterministic, trace)");
}

ArrivalSpec ArrivalSpec::poisson(double rate_per_ms, std::uint64_t seed) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::Poisson;
  spec.rate_per_ms = rate_per_ms;
  spec.seed = seed;
  spec.validate();
  return spec;
}

ArrivalSpec ArrivalSpec::deterministic(double rate_per_ms) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::Deterministic;
  spec.rate_per_ms = rate_per_ms;
  spec.validate();
  return spec;
}

ArrivalSpec ArrivalSpec::trace(std::vector<sim::TimeMs> arrival_times_ms) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::Trace;
  spec.arrival_times_ms = std::move(arrival_times_ms);
  spec.validate();
  return spec;
}

void ArrivalSpec::validate() const {
  if (kind == ArrivalKind::Trace) {
    sim::TimeMs prev = 0.0;
    for (const sim::TimeMs t : arrival_times_ms) {
      if (t < prev)
        throw std::invalid_argument(
            "ArrivalSpec: trace times must be non-decreasing and >= 0");
      prev = t;
    }
    return;
  }
  if (!(rate_per_ms > 0.0))
    throw std::invalid_argument(
        "ArrivalSpec: arrival rate must be > 0 applications/ms");
}

ArrivalProcess::ArrivalProcess(ArrivalSpec spec)
    : spec_(std::move(spec)), rng_(spec_.seed) {
  spec_.validate();
}

std::optional<sim::TimeMs> ArrivalProcess::next() {
  switch (spec_.kind) {
    case ArrivalKind::Poisson:
      // The shared seed contract: gap k is draw k of Rng(seed) through
      // exponential_interval_ms — see dag::apply_poisson_arrivals.
      clock_ += util::exponential_interval_ms(rng_, 1.0 / spec_.rate_per_ms);
      return clock_;
    case ArrivalKind::Deterministic:
      // Derived from the arrival counter, not accumulated: k/rate is exact
      // for every k, whereas += 1/rate compounds rounding error over long
      // horizons.
      ++count_;
      return static_cast<double>(count_) / spec_.rate_per_ms;
    case ArrivalKind::Trace:
      if (trace_pos_ >= spec_.arrival_times_ms.size()) return std::nullopt;
      return spec_.arrival_times_ms[trace_pos_++];
  }
  return std::nullopt;
}

}  // namespace apt::stream
