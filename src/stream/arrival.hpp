// Application-arrival processes for the open-system stream engine.
//
// A closed-system experiment (sim::Engine) submits one DAG at time zero; an
// open system receives an unbounded stream of applications. ArrivalSpec
// names the three processes the streaming literature distinguishes:
//
//   Poisson        exponentially distributed inter-arrival gaps — the
//                  memoryless M/·/· arrival model. Seed contract shared
//                  with dag::apply_poisson_arrivals: the k-th gap is the
//                  k-th util::exponential_interval_ms draw of
//                  util::Rng(seed), so one seed names one arrival sequence
//                  across the whole project.
//   Deterministic  a fixed gap of 1/rate — the D/·/· model, useful for
//                  isolating queueing noise from arrival noise.
//   Trace          replay of explicit arrival instants (e.g. recorded from
//                  a production system).
//
// ArrivalProcess iterates a spec into absolute arrival times, strictly
// increasing for the synthetic kinds and non-decreasing for traces.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/system.hpp"
#include "util/rng.hpp"

namespace apt::stream {

enum class ArrivalKind { Poisson, Deterministic, Trace };

const char* to_string(ArrivalKind kind) noexcept;

/// Parses "poisson" / "deterministic" / "trace" (case-insensitive,
/// trimmed); throws std::invalid_argument otherwise. Total round trip with
/// to_string: parse_arrival_kind(to_string(k)) == k for every kind. A
/// parsed Trace kind still needs its instants supplied (e.g. the stream
/// CLI's --trace-file) before the spec validates.
ArrivalKind parse_arrival_kind(const std::string& name);

/// Declarative description of one arrival process.
struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::Poisson;

  /// Mean arrival intensity λ in applications per millisecond (mean gap =
  /// 1/λ). Ignored by traces.
  double rate_per_ms = 0.01;

  /// Poisson only; deterministic and trace processes draw nothing.
  std::uint64_t seed = 1;

  /// Trace only: absolute arrival instants, non-decreasing, >= 0.
  std::vector<sim::TimeMs> arrival_times_ms;

  static ArrivalSpec poisson(double rate_per_ms, std::uint64_t seed);
  static ArrivalSpec deterministic(double rate_per_ms);
  static ArrivalSpec trace(std::vector<sim::TimeMs> arrival_times_ms);

  /// Throws std::invalid_argument on a non-positive rate or an unsorted /
  /// negative trace.
  void validate() const;
};

/// Iterates an ArrivalSpec into absolute arrival times. The first arrival
/// of the synthetic kinds already lies one gap after time zero (matching
/// dag::apply_poisson_arrivals, whose first entry release is the first
/// sampled gap, not zero).
class ArrivalProcess {
 public:
  explicit ArrivalProcess(ArrivalSpec spec);

  /// The next arrival instant; std::nullopt once a trace is exhausted
  /// (synthetic processes never end — the engine's admission horizon or
  /// application cap bounds them).
  std::optional<sim::TimeMs> next();

 private:
  ArrivalSpec spec_;
  util::Rng rng_;
  sim::TimeMs clock_ = 0.0;  ///< Poisson: running sum of random gaps
  /// Deterministic arrivals completed so far. Arrival k is computed as
  /// k/rate rather than by accumulating += 1/rate, whose rounding error
  /// compounds over long horizons (arrival 10⁶ drifted ~1e-8 ms and, worse,
  /// drifted DIFFERENTLY than a re-derived clock — breaking long-horizon
  /// bit-identity between runs that replay different prefixes).
  std::uint64_t count_ = 0;
  std::size_t trace_pos_ = 0;
};

}  // namespace apt::stream
