// The open-system stream engine: many concurrently-arriving DAG instances
// multiplexed onto one shared platform.
//
// sim::Engine answers the thesis's closed-system question — one DAG,
// everything submitted at time zero, report the makespan. StreamEngine
// answers the open-system question the paper's "incoming stream of
// applications" framing implies: applications drawn from a DagSource
// arrive by an ArrivalProcess, contend for the same processors, and are
// judged by flow time, slowdown, throughput, utilization, and backlog
// (sim::StreamMetrics).
//
// Mechanics: the engine reuses sim::Engine's hot-path design — O(1)
// tombstoned ready-set bookkeeping, a cached idle-processor list, queued
// kernels carrying their execution time — but generalizes every per-node
// array to global *slots* spanning the live instances, laid out as
// structure-of-arrays slabs (exec-time rows, min-exec tables) the
// scheduler queries read directly. Cost tables are pooled by DAG shape:
// structurally identical instances (the common case — generators emit a
// fixed family) share one PrecomputedCostModel, lower bound, and
// predecessor CSR instead of rebuilding them per arrival; the pool is
// keyed by dag::structure_hash, every hit confirmed by dag::identical.
// A retired instance (all kernels done) releases its slot range back to a
// free-range allocator and its per-app statistics are folded into bounded
// aggregates, so memory is bounded by the peak number of concurrently-live
// instances (plus the bounded shape pool), not by the length of the run.
//
// Policies: any *dynamic* sim::Policy runs unmodified — the scheduler
// context exposes ready kernels (as global ids), idle processors, and cost
// queries exactly as the closed-system engine does, and no dynamic policy
// inspects the DAG object itself. Static policies (HEFT, PEFT, ranked APT)
// plan from the whole DAG up front, which does not exist in an open
// system; run() rejects them. SchedulerContext::dag() therefore throws
// std::logic_error in stream contexts. Two further deliberate deviations
// from sim::Engine, both documented here because they bound memory:
// per-processor execution history (recent_avg_exec_ms) is capped at the
// most recent 1024 completions, and per-kernel schedules are only retained
// when StreamOptions::record_schedules is set.
//
// Determinism: identical inputs give identical results. Events sharing a
// timestamp are processed completions-first (ascending slot id), then
// transfer deliveries, then releases, then admissions — single-arrival
// streams therefore reproduce sim::Engine's schedule exactly.
//
// Communication: exactly sim::Engine's model — ideal topologies keep the
// analytic uncontended transfer stalls, contended ones (see net/) simulate
// per-edge messages with fair bandwidth sharing, with the links shared
// ACROSS application instances just like the processors. Per-app transfer
// logs are retained only under record_schedules; per-link busy/byte totals
// always land in the metrics.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dag/graph.hpp"
#include "sim/cost_model.hpp"
#include "sim/metrics.hpp"
#include "sim/noise.hpp"
#include "sim/policy.hpp"
#include "sim/schedule.hpp"
#include "sim/system.hpp"
#include "stream/arrival.hpp"

namespace apt::obs {
class Profile;
class TraceSink;
}  // namespace apt::obs

namespace apt::stream {

/// Produces the i-th application instance of the stream (deterministic in
/// i: the engine calls it exactly once per admission, in arrival order).
using DagSource = std::function<dag::Dag(std::size_t index)>;

struct StreamOptions {
  ArrivalSpec arrivals;

  /// Admission cap: stop admitting after this many applications (0 = no
  /// cap). Work already admitted always runs to completion.
  std::size_t max_apps = 0;

  /// Admission horizon: arrivals strictly after this instant are rejected
  /// (0 = no horizon). At least one of max_apps / horizon_ms must bound a
  /// non-trace stream.
  sim::TimeMs horizon_ms = 0.0;

  /// Metrics warmup truncation (see sim::compute_stream_metrics).
  sim::TimeMs warmup_ms = 0.0;

  /// Retain every application's full schedule in the outcome (memory grows
  /// with the run — meant for tests, validation, and short CLI runs).
  bool record_schedules = false;

  /// Instability guard: the run aborts (std::runtime_error) when this many
  /// applications are live at once — an arrival rate beyond the platform's
  /// capacity would otherwise grow the backlog without bound.
  std::size_t max_live_apps = 100000;

  /// Service-time noise on realized execution times (policies keep seeing
  /// nominal costs). Instance i of the stream draws noise instance
  /// `arrival index i`, so the draws are a pure function of the spec and
  /// the arrival order — bit-identical across --jobs and engines. Disabled
  /// by default, which reproduces noise-free timelines bit-for-bit.
  sim::NoiseSpec noise;

  /// Straggler hedging (replica races on idle processors). Requires an
  /// uncontended topology — run() rejects the combination.
  sim::HedgeSpec hedging;

  /// Observability (src/obs), both null by default and provably inert:
  /// every emission site is a null-guarded read of already-committed
  /// simulation facts, so attaching either cannot change a simulated bit
  /// or consume an RNG draw. The pointees must outlive run(). The
  /// profile's post-run snapshot lands in StreamMetrics::profile.
  obs::TraceSink* sink = nullptr;
  obs::Profile* profile = nullptr;

  /// Throws std::invalid_argument when the spec is unbounded or malformed.
  void validate() const;
};

/// One retired application's full schedule (absolute simulation times,
/// nodes indexed locally as in the instance's own DAG).
struct StreamAppSchedule {
  std::size_t index = 0;
  sim::TimeMs arrival_ms = 0.0;
  dag::Dag dag;
  sim::SimResult result;
};

struct StreamOutcome {
  sim::StreamMetrics metrics;
  /// Retirement order; empty unless StreamOptions::record_schedules.
  std::vector<StreamAppSchedule> schedules;
};

class StreamEngine {
 public:
  /// The system and base cost model must outlive the engine. Admitted
  /// instances densify `base_cost` into PrecomputedCostModels shared
  /// across structurally identical DAGs (the shape pool).
  StreamEngine(const sim::System& system, const sim::CostModel& base_cost,
               DagSource source, StreamOptions options);

  /// Simulates the stream to completion. One-shot per call (the engine
  /// holds no mutable state between runs). Throws std::invalid_argument
  /// for non-dynamic policies, std::logic_error when the policy stalls,
  /// and std::runtime_error when the live-app guard trips.
  StreamOutcome run(sim::Policy& policy);

 private:
  class Context;

  const sim::System& system_;
  const sim::CostModel& base_cost_;
  DagSource source_;
  StreamOptions options_;
};

}  // namespace apt::stream
