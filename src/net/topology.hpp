// Interconnect topologies: which links a processor-pair transfer occupies,
// and how fast they are.
//
// The paper's cost model prices every transfer against an uncontended
// point-to-point PCIe rate, so schedules implicitly assume an infinitely
// parallel fabric. This module makes the fabric a first-class, *contended*
// resource: a Topology maps each ordered processor pair to a *route* — a
// sequence of shared links with a bandwidth and latency (or declares the
// pair local, i.e. free) — and net::TransferManager simulates the messages
// that flow over those links with max-min fair bandwidth sharing.
//
// Seven topology kinds:
//   ideal     no links at all — transfers are whatever the cost model says,
//             uncontended (the pre-net engine behaviour, bit for bit)
//   bus       one link shared by every inter-processor transfer
//   crossbar  one private link per ordered processor pair (full bisection;
//             contention only between transfers of the same pair)
//   hier      two-level socket model: processors are grouped into sockets
//             of `socket_size`; intra-socket transfers are local (free),
//             inter-socket transfers share one link per ordered socket pair
//   ring      N positions on a cycle (default: one per processor), one
//             directed link per adjacent pair in each direction; routes
//             take the shorter arc (ties clockwise), so transfers occupy
//             up to N/2 links at once
//   mesh      R x C grid with 4-neighbour directed links; processors fill
//             cells row-major and routes use dimension-order (X then Y)
//             routing
//   fattree   K-ary tree with processors at the leaves and switches above;
//             each tree edge is an up + a down link, routes climb to the
//             lowest common ancestor and descend — the root is the
//             bisection bottleneck
//
// The first four kinds are single-hop (every route has at most one link);
// ring/mesh/fattree are routed kinds whose shortest-path routes are
// precomputed per ordered processor pair at construction.
//
// This header sits below sim/ in the layer stack (sim/system.hpp embeds a
// Topology), so it deliberately redefines the two primitive aliases instead
// of including sim headers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace apt::net {

using ProcId = std::uint32_t;   ///< == sim::ProcId
using TimeMs = double;          ///< == sim::TimeMs
using LinkId = std::uint32_t;
inline constexpr LinkId kNoLink = static_cast<LinkId>(-1);

enum class TopologyKind { Ideal, Bus, Crossbar, Hierarchical, Ring, Mesh,
                          FatTree };

const char* to_string(TopologyKind kind) noexcept;

/// Everything needed to instantiate a Topology for any processor count.
struct TopologySpec {
  TopologyKind kind = TopologyKind::Ideal;

  /// Per-link bandwidth; 0 (the default) tracks the owning system's
  /// link_rate_gbps, so a sweep's rate axis doubles as a bandwidth axis.
  /// (Per-link heterogeneous bandwidths are a ROADMAP follow-on — today
  /// every link of a fabric shares one rate.)
  double bandwidth_gbps = 0.0;

  /// Fixed per-link head latency; a route's head latency is the sum over
  /// its hops, after which bytes flow end to end.
  TimeMs latency_ms = 0.0;

  /// Hierarchical only: processors per socket (>= 1).
  std::size_t socket_size = 2;

  /// Ring only: positions on the cycle; 0 (default) means one per
  /// processor. May exceed the processor count (spare positions relay).
  std::size_t ring_size = 0;

  /// Mesh only: grid shape (both >= 1, rows x cols >= processor count).
  std::size_t mesh_rows = 0;
  std::size_t mesh_cols = 0;

  /// FatTree only: tree arity (>= 2).
  std::size_t fattree_arity = 2;

  /// Display label, e.g. "ideal", "bus", "hier2", "ring6", "mesh2x3",
  /// "fattree2". Round-trips through parse_topology_spec().
  std::string label() const;

  /// Throws std::invalid_argument on negative knobs or malformed shape
  /// parameters (zero socket/ring size, zero mesh dimension, arity < 2).
  void validate() const;
};

/// Parses a topology name: "ideal", "bus", "crossbar", "hier[:S]" /
/// "socket[:S]" (S = socket size), "ring[:N]" (N = ring positions),
/// "mesh:RxC", or "fattree[:K]" (K = arity). The label() forms ("hier2",
/// "ring6", "mesh2x3", "fattree2") parse too, so exported topology columns
/// round-trip back through --topology. Case-insensitive, trimmed. Throws
/// std::invalid_argument naming the known kinds on an unknown kind and a
/// clear message on malformed shape arguments ("mesh:3x", "fattree:0") —
/// never a silent fallback. Bandwidth and latency stay at their defaults —
/// callers set them from their own flags.
TopologySpec parse_topology_spec(const std::string& name);

/// A spec instantiated for a concrete processor count: the link and route
/// tables the engines and the transfer manager index.
class Topology {
 public:
  /// Lightweight view of one route's links in traversal order (valid while
  /// the Topology lives). Empty == the pair is local.
  struct Route {
    const LinkId* links = nullptr;
    std::size_t hops = 0;

    const LinkId* begin() const noexcept { return links; }
    const LinkId* end() const noexcept { return links + hops; }
    bool empty() const noexcept { return hops == 0; }
    LinkId operator[](std::size_t i) const noexcept { return links[i]; }
  };

  /// `default_bandwidth_gbps` substitutes a spec bandwidth of 0 (the
  /// "track the system link rate" convention). Throws std::invalid_argument
  /// on an invalid spec, zero processors, a non-positive resolved bandwidth
  /// for a contended kind, or a shape too small for the processor count.
  Topology(const TopologySpec& spec, std::size_t proc_count,
           double default_bandwidth_gbps);

  const TopologySpec& spec() const noexcept { return spec_; }
  std::size_t proc_count() const noexcept { return proc_count_; }
  std::size_t link_count() const noexcept { return link_count_; }

  /// True for every kind but Ideal: transfers occupy shared links and the
  /// engines must run their contention-aware comm phase.
  bool contended() const noexcept {
    return spec_.kind != TopologyKind::Ideal;
  }

  /// The links a from -> to transfer traverses, in order; empty when the
  /// pair is local (same processor, same socket, or an ideal topology).
  Route route(ProcId from, ProcId to) const;

  /// Single-hop convenience: the one link of a from -> to route, kNoLink
  /// when local. Throws std::logic_error on a multi-hop route (routed
  /// kinds) — those callers must use route().
  LinkId link(ProcId from, ProcId to) const;

  bool is_local(ProcId from, ProcId to) const {
    return route(from, to).empty();
  }

  /// Longest route (in hops) over all processor pairs; 0 under ideal.
  std::size_t diameter_hops() const noexcept { return diameter_hops_; }

  double bandwidth_gbps(LinkId link) const;
  TimeMs latency_ms(LinkId link) const;
  std::string link_name(LinkId link) const;

  /// Head latency of the from -> to route: the sum over its hops (0 when
  /// local).
  TimeMs route_latency_ms(ProcId from, ProcId to) const;

  /// The from -> to route's bottleneck link: the minimum-bandwidth hop,
  /// earliest in traversal order on ties — the link transfer_time_ms
  /// prices the payload against. kNoLink when the pair is local.
  LinkId bottleneck_link(ProcId from, ProcId to) const;

  /// Uncontended transfer estimate: route head latency + bytes over the
  /// route's bottleneck bandwidth, 0 when the pair is local. The figure
  /// policies plan with; actual transfers can only be slower (max-min fair
  /// sharing under contention).
  TimeMs transfer_time_ms(double bytes, ProcId from, ProcId to) const;

 private:
  void build_single_hop_routes(const std::vector<LinkId>& link_of);
  void build_ring();
  void build_mesh();
  void build_fattree();
  void flatten_routes(std::vector<std::vector<LinkId>> routes);

  TopologySpec spec_;
  std::size_t proc_count_ = 0;
  std::size_t link_count_ = 0;
  double bandwidth_gbps_ = 0.0;
  std::size_t diameter_hops_ = 0;
  std::vector<std::string> link_names_;     ///< [link]
  std::vector<std::uint32_t> route_begin_;  ///< [from * P + to] into data
  std::vector<std::uint32_t> route_hops_;   ///< [from * P + to]
  std::vector<LinkId> route_data_;          ///< flattened route links
};

}  // namespace apt::net
