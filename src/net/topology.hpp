// Interconnect topologies: which link (if any) a processor-pair transfer
// occupies, and how fast that link is.
//
// The paper's cost model prices every transfer against an uncontended
// point-to-point PCIe rate, so schedules implicitly assume an infinitely
// parallel fabric. This module makes the fabric a first-class, *contended*
// resource: a Topology maps each ordered processor pair to a shared link
// with a bandwidth and latency (or declares the pair local, i.e. free), and
// net::TransferManager simulates the messages that flow over those links
// with fair bandwidth sharing.
//
// Four topology kinds:
//   ideal     no links at all — transfers are whatever the cost model says,
//             uncontended (the pre-net engine behaviour, bit for bit)
//   bus       one link shared by every inter-processor transfer
//   crossbar  one private link per ordered processor pair (full bisection;
//             contention only between transfers of the same pair)
//   hier      two-level socket model: processors are grouped into sockets
//             of `socket_size`; intra-socket transfers are local (free),
//             inter-socket transfers share one link per ordered socket pair
//
// This header sits below sim/ in the layer stack (sim/system.hpp embeds a
// Topology), so it deliberately redefines the two primitive aliases instead
// of including sim headers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace apt::net {

using ProcId = std::uint32_t;   ///< == sim::ProcId
using TimeMs = double;          ///< == sim::TimeMs
using LinkId = std::uint32_t;
inline constexpr LinkId kNoLink = static_cast<LinkId>(-1);

enum class TopologyKind { Ideal, Bus, Crossbar, Hierarchical };

const char* to_string(TopologyKind kind) noexcept;

/// Everything needed to instantiate a Topology for any processor count.
struct TopologySpec {
  TopologyKind kind = TopologyKind::Ideal;

  /// Per-link bandwidth; 0 (the default) tracks the owning system's
  /// link_rate_gbps, so a sweep's rate axis doubles as a bandwidth axis.
  double bandwidth_gbps = 0.0;

  /// Fixed per-message head latency before bytes start flowing.
  TimeMs latency_ms = 0.0;

  /// Hierarchical only: processors per socket (>= 1).
  std::size_t socket_size = 2;

  /// Display label, e.g. "ideal", "bus", "hier2".
  std::string label() const;

  /// Throws std::invalid_argument on negative knobs or a zero socket size.
  void validate() const;
};

/// Parses a topology name: "ideal", "bus", "crossbar", or "hier[:S]" /
/// "socket[:S]" with S = socket size. Case-insensitive, trimmed. Throws
/// std::invalid_argument naming the known kinds on a miss. Bandwidth and
/// latency stay at their defaults — callers set them from their own flags.
TopologySpec parse_topology_spec(const std::string& name);

/// A spec instantiated for a concrete processor count: the link table the
/// engines and the transfer manager index.
class Topology {
 public:
  /// `default_bandwidth_gbps` substitutes a spec bandwidth of 0 (the
  /// "track the system link rate" convention). Throws std::invalid_argument
  /// on an invalid spec, zero processors, or a non-positive resolved
  /// bandwidth for a contended kind.
  Topology(const TopologySpec& spec, std::size_t proc_count,
           double default_bandwidth_gbps);

  const TopologySpec& spec() const noexcept { return spec_; }
  std::size_t proc_count() const noexcept { return proc_count_; }
  std::size_t link_count() const noexcept { return link_count_; }

  /// True for every kind but Ideal: transfers occupy shared links and the
  /// engines must run their contention-aware comm phase.
  bool contended() const noexcept {
    return spec_.kind != TopologyKind::Ideal;
  }

  /// The link a from -> to transfer occupies; kNoLink when the pair is
  /// local (same processor, same socket, or an ideal topology).
  LinkId link(ProcId from, ProcId to) const;

  bool is_local(ProcId from, ProcId to) const {
    return link(from, to) == kNoLink;
  }

  double bandwidth_gbps(LinkId link) const;
  TimeMs latency_ms(LinkId link) const;
  std::string link_name(LinkId link) const;

  /// Uncontended transfer estimate: latency + bytes / bandwidth, 0 when the
  /// pair is local. The figure policies plan with; actual transfers can
  /// only be slower (fair sharing under contention).
  TimeMs transfer_time_ms(double bytes, ProcId from, ProcId to) const;

 private:
  TopologySpec spec_;
  std::size_t proc_count_ = 0;
  std::size_t link_count_ = 0;
  double bandwidth_gbps_ = 0.0;
  std::vector<LinkId> link_of_;          ///< [from * P + to]
  std::vector<std::string> link_names_;  ///< [link]
};

}  // namespace apt::net
