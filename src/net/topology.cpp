#include "net/topology.hpp"

#include <cstdlib>
#include <stdexcept>

#include "util/string_utils.hpp"

namespace apt::net {

const char* to_string(TopologyKind kind) noexcept {
  switch (kind) {
    case TopologyKind::Ideal:
      return "ideal";
    case TopologyKind::Bus:
      return "bus";
    case TopologyKind::Crossbar:
      return "crossbar";
    case TopologyKind::Hierarchical:
      return "hier";
  }
  return "?";
}

std::string TopologySpec::label() const {
  std::string out = to_string(kind);
  if (kind == TopologyKind::Hierarchical)
    out += std::to_string(socket_size);
  return out;
}

void TopologySpec::validate() const {
  if (bandwidth_gbps < 0.0)
    throw std::invalid_argument("TopologySpec: bandwidth must be >= 0");
  if (latency_ms < 0.0)
    throw std::invalid_argument("TopologySpec: latency must be >= 0");
  if (kind == TopologyKind::Hierarchical && socket_size == 0)
    throw std::invalid_argument("TopologySpec: socket size must be >= 1");
}

TopologySpec parse_topology_spec(const std::string& name) {
  const std::string token = util::to_lower(util::trim(name));
  TopologySpec spec;
  if (token == "ideal" || token.empty()) {
    spec.kind = TopologyKind::Ideal;
    return spec;
  }
  if (token == "bus") {
    spec.kind = TopologyKind::Bus;
    return spec;
  }
  if (token == "crossbar" || token == "xbar") {
    spec.kind = TopologyKind::Crossbar;
    return spec;
  }
  // "hier" / "hier:S" / "hierS" (the label() form, so exported topology
  // columns round-trip back through --topology) — likewise for "socket".
  const auto parse_hier = [&spec, &token](const std::string& prefix) {
    if (token.compare(0, prefix.size(), prefix) != 0) return false;
    std::string arg = token.substr(prefix.size());
    if (!arg.empty() && arg.front() == ':') arg.erase(0, 1);
    spec.kind = TopologyKind::Hierarchical;
    if (!arg.empty()) {
      // Digits only: strtoul would silently wrap "-1" to ULONG_MAX, which
      // collapses every processor into one socket (a free-comm machine).
      char* end = nullptr;
      const unsigned long v =
          arg.find_first_not_of("0123456789") == std::string::npos
              ? std::strtoul(arg.c_str(), &end, 10)
              : 0;
      if (end == nullptr || *end != '\0' || v == 0)
        throw std::invalid_argument(
            "parse_topology_spec: bad socket size in '" + token + "'");
      spec.socket_size = static_cast<std::size_t>(v);
    }
    return true;
  };
  if (parse_hier("hier") || parse_hier("socket")) return spec;
  throw std::invalid_argument(
      "parse_topology_spec: unknown topology '" + name +
      "' (known: ideal, bus, crossbar, hier[:S])");
}

Topology::Topology(const TopologySpec& spec, std::size_t proc_count,
                   double default_bandwidth_gbps)
    : spec_(spec), proc_count_(proc_count) {
  spec_.validate();
  if (proc_count_ == 0)
    throw std::invalid_argument("Topology: need at least one processor");
  bandwidth_gbps_ = spec_.bandwidth_gbps > 0.0 ? spec_.bandwidth_gbps
                                               : default_bandwidth_gbps;
  if (contended() && !(bandwidth_gbps_ > 0.0))
    throw std::invalid_argument(
        "Topology: contended kinds need a positive bandwidth");

  const std::size_t p = proc_count_;
  link_of_.assign(p * p, kNoLink);
  if (spec_.kind == TopologyKind::Bus) {
    for (std::size_t from = 0; from < p; ++from)
      for (std::size_t to = 0; to < p; ++to)
        if (from != to) link_of_[from * p + to] = 0;
    link_count_ = p > 1 ? 1 : 0;
    if (link_count_ > 0) link_names_.push_back("bus");
  } else if (spec_.kind == TopologyKind::Crossbar) {
    LinkId next = 0;
    for (std::size_t from = 0; from < p; ++from) {
      for (std::size_t to = 0; to < p; ++to) {
        if (from == to) continue;
        link_of_[from * p + to] = next;
        link_names_.push_back("P" + std::to_string(from) + ">P" +
                              std::to_string(to));
        ++next;
      }
    }
    link_count_ = next;
  } else if (spec_.kind == TopologyKind::Hierarchical) {
    const std::size_t sockets =
        (p + spec_.socket_size - 1) / spec_.socket_size;
    // One link per ordered socket pair, allocated in (from, to) order so
    // link ids are deterministic.
    std::vector<LinkId> socket_link(sockets * sockets, kNoLink);
    LinkId next = 0;
    for (std::size_t sf = 0; sf < sockets; ++sf) {
      for (std::size_t st = 0; st < sockets; ++st) {
        if (sf == st) continue;
        socket_link[sf * sockets + st] = next;
        link_names_.push_back("S" + std::to_string(sf) + ">S" +
                              std::to_string(st));
        ++next;
      }
    }
    for (std::size_t from = 0; from < p; ++from) {
      for (std::size_t to = 0; to < p; ++to) {
        if (from == to) continue;
        const std::size_t sf = from / spec_.socket_size;
        const std::size_t st = to / spec_.socket_size;
        if (sf == st) continue;  // same socket: local
        link_of_[from * p + to] = socket_link[sf * sockets + st];
      }
    }
    link_count_ = next;
  }
  // A "contended" fabric with no links on a multi-processor platform is a
  // silent free-communication machine (every pair local) — certainly not
  // what a user asking for a hierarchy meant. Single-processor platforms
  // are exempt: they have no pairs to connect under any kind.
  if (contended() && link_count_ == 0 && proc_count_ > 1)
    throw std::invalid_argument(
        "Topology: hier socket size " + std::to_string(spec_.socket_size) +
        " covers all " + std::to_string(proc_count_) +
        " processors — every transfer would be free; use 'ideal' or a "
        "smaller socket");
}

LinkId Topology::link(ProcId from, ProcId to) const {
  if (from >= proc_count_ || to >= proc_count_)
    throw std::out_of_range("Topology: processor id out of range");
  return link_of_[static_cast<std::size_t>(from) * proc_count_ + to];
}

double Topology::bandwidth_gbps(LinkId link) const {
  if (link >= link_count_)
    throw std::out_of_range("Topology: link id out of range");
  return bandwidth_gbps_;
}

TimeMs Topology::latency_ms(LinkId link) const {
  if (link >= link_count_)
    throw std::out_of_range("Topology: link id out of range");
  return spec_.latency_ms;
}

std::string Topology::link_name(LinkId link) const {
  if (link >= link_count_)
    throw std::out_of_range("Topology: link id out of range");
  return link_names_[link];
}

TimeMs Topology::transfer_time_ms(double bytes, ProcId from, ProcId to) const {
  if (bytes < 0.0)
    throw std::invalid_argument("Topology: negative byte count");
  const LinkId l = link(from, to);
  if (l == kNoLink) return 0.0;
  // GB/s == bytes/ns; ms = bytes / (rate_GBps * 1e6).
  return spec_.latency_ms + bytes / (bandwidth_gbps(l) * 1e6);
}

}  // namespace apt::net
