#include "net/topology.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>

#include "util/string_utils.hpp"

namespace apt::net {

const char* to_string(TopologyKind kind) noexcept {
  switch (kind) {
    case TopologyKind::Ideal:
      return "ideal";
    case TopologyKind::Bus:
      return "bus";
    case TopologyKind::Crossbar:
      return "crossbar";
    case TopologyKind::Hierarchical:
      return "hier";
    case TopologyKind::Ring:
      return "ring";
    case TopologyKind::Mesh:
      return "mesh";
    case TopologyKind::FatTree:
      return "fattree";
  }
  return "?";
}

std::string TopologySpec::label() const {
  std::string out = to_string(kind);
  if (kind == TopologyKind::Hierarchical)
    out += std::to_string(socket_size);
  else if (kind == TopologyKind::Ring && ring_size > 0)
    out += std::to_string(ring_size);
  else if (kind == TopologyKind::Mesh)
    out += std::to_string(mesh_rows) + "x" + std::to_string(mesh_cols);
  else if (kind == TopologyKind::FatTree)
    out += std::to_string(fattree_arity);
  return out;
}

void TopologySpec::validate() const {
  if (bandwidth_gbps < 0.0)
    throw std::invalid_argument("TopologySpec: bandwidth must be >= 0");
  if (latency_ms < 0.0)
    throw std::invalid_argument("TopologySpec: latency must be >= 0");
  if (kind == TopologyKind::Hierarchical && socket_size == 0)
    throw std::invalid_argument("TopologySpec: socket size must be >= 1");
  if (kind == TopologyKind::Mesh && (mesh_rows == 0 || mesh_cols == 0))
    throw std::invalid_argument(
        "TopologySpec: mesh needs rows >= 1 and cols >= 1");
  if (kind == TopologyKind::FatTree && fattree_arity < 2)
    throw std::invalid_argument("TopologySpec: fattree arity must be >= 2");
}

namespace {

/// Largest accepted shape number (ring positions, mesh rows/cols, fattree
/// arity). Far beyond any simulable platform; mainly a guard so absurd
/// inputs fail here with a clear message instead of exhausting memory in
/// the link-table constructor.
constexpr unsigned long kMaxShapeNumber = 1000000;

/// Digits-only size parse: strtoul would silently wrap "-1" to ULONG_MAX
/// (which for hier collapses every processor into one socket — a free-comm
/// machine), so anything but [0-9]+ is rejected outright, as are
/// out-of-range values (strtoul saturates those to ULONG_MAX and sets
/// ERANGE).
std::size_t parse_shape_number(const std::string& arg, const std::string& token,
                               const char* what, std::size_t minimum) {
  char* end = nullptr;
  unsigned long v = 0;
  if (!arg.empty() &&
      arg.find_first_not_of("0123456789") == std::string::npos) {
    errno = 0;
    v = std::strtoul(arg.c_str(), &end, 10);
    if (errno == ERANGE) end = nullptr;
  }
  if (end == nullptr || *end != '\0' || v < minimum || v > kMaxShapeNumber)
    throw std::invalid_argument("parse_topology_spec: bad " +
                                std::string(what) + " in '" + token + "'");
  return static_cast<std::size_t>(v);
}

/// Strips `prefix` (and an optional ':' after it) from `token`; returns
/// false when the token does not start with the prefix. The remainder is
/// the shape argument ("" when absent), so both the flag form ("hier:4")
/// and the label() form ("hier4") parse.
bool split_shape(const std::string& token, const std::string& prefix,
                 std::string& arg) {
  if (token.compare(0, prefix.size(), prefix) != 0) return false;
  arg = token.substr(prefix.size());
  if (!arg.empty() && arg.front() == ':') arg.erase(0, 1);
  return true;
}

}  // namespace

TopologySpec parse_topology_spec(const std::string& name) {
  const std::string token = util::to_lower(util::trim(name));
  TopologySpec spec;
  if (token == "ideal" || token.empty()) {
    spec.kind = TopologyKind::Ideal;
    return spec;
  }
  if (token == "bus") {
    spec.kind = TopologyKind::Bus;
    return spec;
  }
  if (token == "crossbar" || token == "xbar") {
    spec.kind = TopologyKind::Crossbar;
    return spec;
  }
  std::string arg;
  if (split_shape(token, "hier", arg) || split_shape(token, "socket", arg)) {
    spec.kind = TopologyKind::Hierarchical;
    if (!arg.empty())
      spec.socket_size = parse_shape_number(arg, token, "socket size", 1);
    return spec;
  }
  // "fattree" before "ring"/"mesh" is irrelevant (no shared prefixes), but
  // each shape argument is validated here so a malformed spec surfaces as
  // a clear CLI error instead of a silent fallback.
  if (split_shape(token, "fattree", arg)) {
    spec.kind = TopologyKind::FatTree;
    if (!arg.empty())
      spec.fattree_arity =
          parse_shape_number(arg, token, "fattree arity (need >= 2)", 2);
    return spec;
  }
  if (split_shape(token, "ring", arg)) {
    spec.kind = TopologyKind::Ring;
    if (!arg.empty())
      spec.ring_size =
          parse_shape_number(arg, token, "ring size (need >= 2)", 2);
    return spec;
  }
  if (split_shape(token, "mesh", arg)) {
    spec.kind = TopologyKind::Mesh;
    const std::size_t x = arg.find('x');
    if (arg.empty() || x == std::string::npos)
      throw std::invalid_argument(
          "parse_topology_spec: mesh needs a RxC shape, e.g. 'mesh:2x3' "
          "(got '" + token + "')");
    spec.mesh_rows =
        parse_shape_number(arg.substr(0, x), token, "mesh rows", 1);
    spec.mesh_cols =
        parse_shape_number(arg.substr(x + 1), token, "mesh cols", 1);
    return spec;
  }
  throw std::invalid_argument(
      "parse_topology_spec: unknown topology '" + name +
      "' (known: ideal, bus, crossbar, hier[:S], ring[:N], mesh:RxC, "
      "fattree[:K])");
}

Topology::Topology(const TopologySpec& spec, std::size_t proc_count,
                   double default_bandwidth_gbps)
    : spec_(spec), proc_count_(proc_count) {
  spec_.validate();
  if (proc_count_ == 0)
    throw std::invalid_argument("Topology: need at least one processor");
  bandwidth_gbps_ = spec_.bandwidth_gbps > 0.0 ? spec_.bandwidth_gbps
                                               : default_bandwidth_gbps;
  if (contended() && !(bandwidth_gbps_ > 0.0))
    throw std::invalid_argument(
        "Topology: contended kinds need a positive bandwidth");

  const std::size_t p = proc_count_;
  route_begin_.assign(p * p, 0);
  route_hops_.assign(p * p, 0);

  if (spec_.kind == TopologyKind::Bus) {
    std::vector<LinkId> link_of(p * p, kNoLink);
    for (std::size_t from = 0; from < p; ++from)
      for (std::size_t to = 0; to < p; ++to)
        if (from != to) link_of[from * p + to] = 0;
    link_count_ = p > 1 ? 1 : 0;
    if (link_count_ > 0) link_names_.push_back("bus");
    build_single_hop_routes(link_of);
  } else if (spec_.kind == TopologyKind::Crossbar) {
    std::vector<LinkId> link_of(p * p, kNoLink);
    LinkId next = 0;
    for (std::size_t from = 0; from < p; ++from) {
      for (std::size_t to = 0; to < p; ++to) {
        if (from == to) continue;
        link_of[from * p + to] = next;
        link_names_.push_back("P" + std::to_string(from) + ">P" +
                              std::to_string(to));
        ++next;
      }
    }
    link_count_ = next;
    build_single_hop_routes(link_of);
  } else if (spec_.kind == TopologyKind::Hierarchical) {
    const std::size_t sockets =
        (p + spec_.socket_size - 1) / spec_.socket_size;
    // One link per ordered socket pair, allocated in (from, to) order so
    // link ids are deterministic.
    std::vector<LinkId> socket_link(sockets * sockets, kNoLink);
    LinkId next = 0;
    for (std::size_t sf = 0; sf < sockets; ++sf) {
      for (std::size_t st = 0; st < sockets; ++st) {
        if (sf == st) continue;
        socket_link[sf * sockets + st] = next;
        link_names_.push_back("S" + std::to_string(sf) + ">S" +
                              std::to_string(st));
        ++next;
      }
    }
    std::vector<LinkId> link_of(p * p, kNoLink);
    for (std::size_t from = 0; from < p; ++from) {
      for (std::size_t to = 0; to < p; ++to) {
        if (from == to) continue;
        const std::size_t sf = from / spec_.socket_size;
        const std::size_t st = to / spec_.socket_size;
        if (sf == st) continue;  // same socket: local
        link_of[from * p + to] = socket_link[sf * sockets + st];
      }
    }
    link_count_ = next;
    build_single_hop_routes(link_of);
  } else if (spec_.kind == TopologyKind::Ring) {
    build_ring();
  } else if (spec_.kind == TopologyKind::Mesh) {
    build_mesh();
  } else if (spec_.kind == TopologyKind::FatTree) {
    build_fattree();
  }
  // A "contended" fabric with no links on a multi-processor platform is a
  // silent free-communication machine (every pair local) — certainly not
  // what a user asking for one meant. Single-processor platforms are
  // exempt: they have no pairs to connect under any kind.
  if (contended() && link_count_ == 0 && proc_count_ > 1)
    throw std::invalid_argument(
        "Topology: '" + spec_.label() + "' puts all " + std::to_string(p) +
        " processors in one local group — every transfer would be free; "
        "use 'ideal' or a finer shape");
}

/// Routes of a single-hop kind: each non-local pair traverses exactly its
/// one link.
void Topology::build_single_hop_routes(const std::vector<LinkId>& link_of) {
  std::vector<std::vector<LinkId>> routes(proc_count_ * proc_count_);
  for (std::size_t pair = 0; pair < link_of.size(); ++pair)
    if (link_of[pair] != kNoLink) routes[pair] = {link_of[pair]};
  flatten_routes(std::move(routes));
}

void Topology::build_ring() {
  const std::size_t p = proc_count_;
  const std::size_t n = spec_.ring_size > 0 ? spec_.ring_size : p;
  if (n < p)
    throw std::invalid_argument(
        "Topology: ring size " + std::to_string(n) + " is smaller than the " +
        std::to_string(p) + "-processor platform");
  if (p == 1) return;  // no pairs, no links
  // Clockwise links first (i -> i+1 mod n, ascending i), then the
  // counter-clockwise direction — except n == 2, where both directions
  // collapse onto the same adjacent pair and one directed link each way
  // suffices.
  std::vector<LinkId> cw(n, kNoLink);
  std::vector<LinkId> ccw(n, kNoLink);
  LinkId next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = (i + 1) % n;
    cw[i] = next++;
    link_names_.push_back("R" + std::to_string(i) + ">R" + std::to_string(j));
  }
  if (n > 2) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = (i + n - 1) % n;
      ccw[i] = next++;
      link_names_.push_back("R" + std::to_string(i) + ">R" +
                            std::to_string(j));
    }
  } else {
    // Two positions: either direction from i reaches the same neighbour
    // over the same directed link.
    ccw[0] = cw[0];
    ccw[1] = cw[1];
  }
  link_count_ = next;

  // Processor i sits at ring position i; spare positions (p <= pos < n)
  // only relay. Shortest arc wins, ties clockwise.
  std::vector<std::vector<LinkId>> routes(p * p);
  for (std::size_t from = 0; from < p; ++from) {
    for (std::size_t to = 0; to < p; ++to) {
      if (from == to) continue;
      const std::size_t d_cw = (to + n - from) % n;
      const std::size_t d_ccw = n - d_cw;
      std::vector<LinkId>& path = routes[from * p + to];
      std::size_t at = from;
      if (d_cw <= d_ccw) {
        for (std::size_t h = 0; h < d_cw; ++h) {
          path.push_back(cw[at]);
          at = (at + 1) % n;
        }
      } else {
        for (std::size_t h = 0; h < d_ccw; ++h) {
          path.push_back(ccw[at]);
          at = (at + n - 1) % n;
        }
      }
    }
  }
  flatten_routes(std::move(routes));
}

void Topology::build_mesh() {
  const std::size_t p = proc_count_;
  const std::size_t rows = spec_.mesh_rows;
  const std::size_t cols = spec_.mesh_cols;
  if (rows * cols < p)
    throw std::invalid_argument(
        "Topology: mesh " + std::to_string(rows) + "x" + std::to_string(cols) +
        " has fewer cells than the " + std::to_string(p) +
        "-processor platform");
  if (p == 1) return;
  // Directed links between 4-neighbours, allocated row-major per cell
  // (east, west from the east cell, south, north from the south cell are
  // covered by emitting both directions at each boundary).
  const auto cell = [cols](std::size_t r, std::size_t c) {
    return r * cols + c;
  };
  const auto name = [](std::size_t r, std::size_t c) {
    return "M" + std::to_string(r) + "," + std::to_string(c);
  };
  // east[cell] = link to (r, c+1); west/south/north likewise.
  const std::size_t cells = rows * cols;
  std::vector<LinkId> east(cells, kNoLink), west(cells, kNoLink),
      south(cells, kNoLink), north(cells, kNoLink);
  LinkId next = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        east[cell(r, c)] = next++;
        link_names_.push_back(name(r, c) + ">" + name(r, c + 1));
        west[cell(r, c + 1)] = next++;
        link_names_.push_back(name(r, c + 1) + ">" + name(r, c));
      }
      if (r + 1 < rows) {
        south[cell(r, c)] = next++;
        link_names_.push_back(name(r, c) + ">" + name(r + 1, c));
        north[cell(r + 1, c)] = next++;
        link_names_.push_back(name(r + 1, c) + ">" + name(r, c));
      }
    }
  }
  link_count_ = next;

  // Processor i fills cell (i / cols, i % cols); spare cells only relay.
  // Dimension-order (X then Y) routing: walk the row to the target column,
  // then the column to the target row — deterministic and shortest.
  std::vector<std::vector<LinkId>> routes(p * p);
  for (std::size_t from = 0; from < p; ++from) {
    for (std::size_t to = 0; to < p; ++to) {
      if (from == to) continue;
      std::size_t r = from / cols, c = from % cols;
      const std::size_t tr = to / cols, tc = to % cols;
      std::vector<LinkId>& path = routes[from * p + to];
      while (c < tc) path.push_back(east[cell(r, c)]), ++c;
      while (c > tc) path.push_back(west[cell(r, c)]), --c;
      while (r < tr) path.push_back(south[cell(r, c)]), ++r;
      while (r > tr) path.push_back(north[cell(r, c)]), --r;
    }
  }
  flatten_routes(std::move(routes));
}

void Topology::build_fattree() {
  const std::size_t p = proc_count_;
  const std::size_t k = spec_.fattree_arity;
  if (p == 1) return;
  // Levels of the tree, leaves (== processors) at level 0; consecutive
  // groups of k nodes share a parent until one root remains. Each tree
  // edge contributes an up link (child -> parent) and a down link, both
  // allocated in level order then child order — deterministic ids.
  struct TreeNode {
    std::size_t parent = 0;
    LinkId up = kNoLink;    ///< this -> parent
    LinkId down = kNoLink;  ///< parent -> this
  };
  std::vector<std::vector<TreeNode>> levels;
  levels.emplace_back(p);
  LinkId next = 0;
  const auto node_name = [](std::size_t level, std::size_t idx) {
    return level == 0 ? "P" + std::to_string(idx)
                      : "S" + std::to_string(level) + "_" + std::to_string(idx);
  };
  while (levels.back().size() > 1) {
    const std::size_t level = levels.size() - 1;
    std::vector<TreeNode>& children = levels.back();
    const std::size_t parents = (children.size() + k - 1) / k;
    for (std::size_t i = 0; i < children.size(); ++i) {
      children[i].parent = i / k;
      children[i].up = next++;
      link_names_.push_back(node_name(level, i) + ">" +
                            node_name(level + 1, i / k));
      children[i].down = next++;
      link_names_.push_back(node_name(level + 1, i / k) + ">" +
                            node_name(level, i));
    }
    levels.emplace_back(parents);
  }
  link_count_ = next;

  // Route: climb from the source leaf and the destination leaf level by
  // level until the chains meet (lowest common ancestor), emitting the
  // source's up links forward and the destination's down links in reverse.
  std::vector<std::vector<LinkId>> routes(p * p);
  for (std::size_t from = 0; from < p; ++from) {
    for (std::size_t to = 0; to < p; ++to) {
      if (from == to) continue;
      std::vector<LinkId>& path = routes[from * p + to];
      std::vector<LinkId> down_part;
      std::size_t a = from, b = to, level = 0;
      while (a != b) {
        path.push_back(levels[level][a].up);
        down_part.push_back(levels[level][b].down);
        a = levels[level][a].parent;
        b = levels[level][b].parent;
        ++level;
      }
      path.insert(path.end(), down_part.rbegin(), down_part.rend());
    }
  }
  flatten_routes(std::move(routes));
}

void Topology::flatten_routes(std::vector<std::vector<LinkId>> routes) {
  std::size_t total = 0;
  for (const auto& r : routes) total += r.size();
  route_data_.reserve(total);
  for (std::size_t pair = 0; pair < routes.size(); ++pair) {
    route_begin_[pair] = static_cast<std::uint32_t>(route_data_.size());
    route_hops_[pair] = static_cast<std::uint32_t>(routes[pair].size());
    diameter_hops_ = std::max<std::size_t>(diameter_hops_, routes[pair].size());
    route_data_.insert(route_data_.end(), routes[pair].begin(),
                       routes[pair].end());
  }
}

Topology::Route Topology::route(ProcId from, ProcId to) const {
  if (from >= proc_count_ || to >= proc_count_)
    throw std::out_of_range("Topology: processor id out of range");
  const std::size_t pair = static_cast<std::size_t>(from) * proc_count_ + to;
  if (route_hops_.empty()) return Route{};  // ideal: no tables at all
  return Route{route_data_.data() + route_begin_[pair], route_hops_[pair]};
}

LinkId Topology::link(ProcId from, ProcId to) const {
  const Route r = route(from, to);
  if (r.empty()) return kNoLink;
  if (r.hops > 1)
    throw std::logic_error(
        "Topology::link: the " + std::to_string(r.hops) +
        "-hop route needs route() — link() serves single-hop kinds only");
  return r[0];
}

double Topology::bandwidth_gbps(LinkId link) const {
  if (link >= link_count_)
    throw std::out_of_range("Topology: link id out of range");
  return bandwidth_gbps_;
}

TimeMs Topology::latency_ms(LinkId link) const {
  if (link >= link_count_)
    throw std::out_of_range("Topology: link id out of range");
  return spec_.latency_ms;
}

std::string Topology::link_name(LinkId link) const {
  if (link >= link_count_)
    throw std::out_of_range("Topology: link id out of range");
  return link_names_[link];
}

TimeMs Topology::route_latency_ms(ProcId from, ProcId to) const {
  const Route r = route(from, to);
  if (r.empty()) return 0.0;
  // Uniform per-link latency today; summed per hop so per-link values can
  // become heterogeneous without touching callers.
  TimeMs latency = 0.0;
  for (const LinkId l : r) latency += latency_ms(l);
  return latency;
}

LinkId Topology::bottleneck_link(ProcId from, ProcId to) const {
  const Route r = route(from, to);
  if (r.empty()) return kNoLink;
  // Same convention as transfer_time_ms: minimum-bandwidth hop, earliest
  // in traversal order on ties.
  LinkId best = r[0];
  for (const LinkId l : r)
    if (bandwidth_gbps(l) < bandwidth_gbps(best)) best = l;
  return best;
}

TimeMs Topology::transfer_time_ms(double bytes, ProcId from, ProcId to) const {
  if (bytes < 0.0)
    throw std::invalid_argument("Topology: negative byte count");
  const Route r = route(from, to);
  if (r.empty()) return 0.0;
  TimeMs latency = 0.0;
  double bottleneck = bandwidth_gbps(r[0]);
  for (const LinkId l : r) {
    latency += latency_ms(l);
    bottleneck = std::min(bottleneck, bandwidth_gbps(l));
  }
  // GB/s == bytes/ns; ms = bytes / (rate_GBps * 1e6).
  return latency + bytes / (bottleneck * 1e6);
}

}  // namespace apt::net
