// Contended message simulation over a Topology.
//
// A TransferManager owns the in-flight messages of one simulation run. Each
// message occupies exactly one link (the Topology's from -> to link) and,
// after a fixed per-link head latency, drains its bytes at the link's fair
// share: a link with n draining messages gives each bandwidth / n — equal
// (max-min) sharing, recomputed whenever a message joins or leaves the
// link. Progress therefore only changes at discrete instants, so the
// engines fold next_event_ms() into their event loops and the whole
// simulation stays discrete.
//
// Determinism: message ids/tags are caller-supplied and deliveries at one
// instant are reported in ascending tag order; all arithmetic is plain
// double math with no iteration-order dependence.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"

namespace apt::net {

/// One completed message, reported by advance_to().
struct Delivery {
  std::uint64_t tag = 0;  ///< caller's handle from start()
  LinkId link = kNoLink;
  double bytes = 0.0;
  TimeMs delivered_ms = 0.0;
};

class TransferManager {
 public:
  /// The topology must outlive the manager and be contended() — an ideal
  /// topology has no links to simulate (std::invalid_argument).
  explicit TransferManager(const Topology& topology);

  const Topology& topology() const noexcept { return topology_; }

  /// Schedules a message of `bytes` from -> to, entering its link at
  /// `at_time` (+ the link latency before bytes flow). `at_time` may lie in
  /// the future — the activation is itself a progress event. The pair must
  /// not be local (std::invalid_argument) and `at_time` must not precede
  /// the last advance_to() instant. `tag` is returned verbatim with the
  /// delivery; callers use it to find the waiting kernel.
  void start(std::uint64_t tag, double bytes, ProcId from, ProcId to,
             TimeMs at_time);

  /// True while any message is pending activation or draining.
  bool busy() const noexcept { return live_count_ > 0; }

  /// Earliest instant at which link rates change or a message delivers
  /// (+infinity when idle). The engines merge this into their event clocks.
  TimeMs next_event_ms() const;

  /// Advances the shared-progress simulation to `t` (>= the previous call),
  /// returning every message delivered at or before `t`, ascending by tag.
  std::vector<Delivery> advance_to(TimeMs t);

  // --- per-link accounting (for metrics) -------------------------------------

  /// Time each link spent with at least one draining message.
  const std::vector<TimeMs>& link_busy_ms() const noexcept {
    return link_busy_ms_;
  }
  /// Bytes delivered over each link.
  const std::vector<double>& link_delivered_bytes() const noexcept {
    return link_delivered_bytes_;
  }
  /// Messages delivered over each link.
  const std::vector<std::size_t>& link_delivered_counts() const noexcept {
    return link_delivered_counts_;
  }
  std::size_t started_count() const noexcept { return started_count_; }
  std::size_t delivered_count() const noexcept { return delivered_count_; }

 private:
  struct Message {
    std::uint64_t tag = 0;
    LinkId link = kNoLink;
    double bytes = 0.0;
    double remaining = 0.0;
    TimeMs activates_ms = 0.0;  ///< joins the link here (start + latency)
  };

  TimeMs next_internal_event() const;
  void drain_links_to(TimeMs t);
  void complete_ripe(TimeMs t, std::vector<Delivery>& out);
  void activate_due(TimeMs t);

  const Topology& topology_;
  std::vector<Message> messages_;     ///< slot arena, slots reused
  std::vector<std::size_t> free_slots_;
  std::vector<std::vector<std::size_t>> link_active_;  ///< [link] -> slots
  std::vector<std::size_t> pending_;  ///< inactive slots awaiting activation
  std::vector<TimeMs> link_updated_ms_;
  std::vector<TimeMs> link_busy_ms_;
  std::vector<double> link_delivered_bytes_;
  std::vector<std::size_t> link_delivered_counts_;
  TimeMs now_ = 0.0;
  std::size_t live_count_ = 0;
  std::size_t started_count_ = 0;
  std::size_t delivered_count_ = 0;
};

}  // namespace apt::net
