// Contended message simulation over a Topology.
//
// A TransferManager owns the in-flight messages of one simulation run. Each
// message occupies the *route* of its processor pair (one link for the
// single-hop kinds, a multi-link path for ring/mesh/fattree) and, after the
// route's head latency, drains its bytes at its max-min fair rate:
// progressive filling assigns every message the largest rate such that no
// link exceeds its bandwidth and no message could go faster without
// starving a slower one — on a single link this degenerates to the equal
// split bandwidth / n. Rates only change when a message joins or leaves the
// fabric, so progress is piecewise linear, the next delivery is a pure
// projection, and the engines fold next_event_ms() into their event loops
// while the whole simulation stays discrete.
//
// Event lookup is heap-backed: pending activations sit in one min-heap and
// projected completions in another (stale projections are invalidated by a
// per-message stamp and discarded lazily), so next_event_ms() costs
// amortized O(log n) instead of scanning every active message, and time
// only advances message state at membership events — an engine event that
// fires between two transfer events no longer touches the fabric at all.
//
// The rate solver is *incremental*: a membership event (a message joining
// or leaving the fabric) can only move the saturation level of links
// reachable from the changed message's route through shared flows. The
// solver marks those links dirty, closes the link<->flow component around
// them, and re-runs progressive filling over that component alone — every
// flow outside it keeps its frozen rate, anchor, and projection. Because
// max-min components are independent (no flow spans two components) and
// the filling loop visits links in ascending id and flows in per-link list
// order either way, the incremental rates are bit-identical to a full
// re-solve — debug builds assert this after every incremental solve. When
// the component closure swallows most of the active flows the solver falls
// back to the plain full solve (same arithmetic, no closure overhead), and
// SolveStats counts both paths for observability.
//
// Determinism: message ids/tags are caller-supplied and deliveries at one
// instant are reported in ascending tag order; the rate solver iterates
// links and messages in fixed index order with no iteration-order-dependent
// arithmetic.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "net/topology.hpp"

namespace apt::obs {
class Profile;
}  // namespace apt::obs

namespace apt::net {

/// Completion tolerance of the drain loop: a message is deliverable once
/// its remainder is within this of zero — an absolute floor plus a
/// relative term so multi-GB messages survive the float drift of many
/// rate-change re-anchors, while zero-byte (latency-only) messages deliver
/// exactly at activation. Exposed so tests can pin the contract.
inline double done_eps(double bytes) {
  return bytes * 1e-12 > 1e-6 ? bytes * 1e-12 : 1e-6;
}

/// One completed message, reported by advance_to().
struct Delivery {
  std::uint64_t tag = 0;  ///< caller's handle from start()
  double bytes = 0.0;
  std::size_t hops = 0;  ///< links the route traversed
  TimeMs delivered_ms = 0.0;
};

/// Rate-solver observability counters: how membership events were actually
/// re-solved. `full_solves` counts runs of progressive filling over every
/// active flow (first solves, FullAlways mode, and threshold fallbacks —
/// the latter also counted in `fallback_solves`); `incremental_solves`
/// counts component-restricted re-solves; `flows_resolved` sums the flows
/// re-leveled across all solves and `flows_active` the flows that were live
/// at those instants, so resolved/active is the touched fraction.
struct SolveStats {
  std::uint64_t full_solves = 0;
  std::uint64_t incremental_solves = 0;
  std::uint64_t fallback_solves = 0;
  std::uint64_t flows_resolved = 0;
  std::uint64_t flows_active = 0;
};

class TransferManager {
 public:
  /// Auto runs the incremental component re-solve with a full-solve
  /// fallback; FullAlways forces the full solve at every membership event.
  /// Both produce bit-identical rates — FullAlways exists so equivalence
  /// tests (and suspicious users) can diff the two paths end to end.
  enum class SolveMode { Auto, FullAlways };

  /// Process-wide default mode picked up by every subsequently constructed
  /// manager — the hook tests use to force FullAlways inside engines that
  /// construct their TransferManager internally. Not synchronized with
  /// running managers; set it before the runs under test.
  static void set_default_solve_mode(SolveMode mode) noexcept;
  static SolveMode default_solve_mode() noexcept;
  /// The topology must outlive the manager and be contended() — an ideal
  /// topology has no links to simulate (std::invalid_argument).
  explicit TransferManager(const Topology& topology);

  const Topology& topology() const noexcept { return topology_; }

  /// Start of the observation window for the *_in_window accounting
  /// (steady-state metrics exclude warmup). Defaults to 0 (everything
  /// observed); must be set before the first message starts.
  void set_window_start(TimeMs start);

  /// Schedules a message of `bytes` from -> to, entering its route at
  /// `at_time` + the route's head latency. `at_time` may lie in the future
  /// — the activation is itself a progress event. The pair must not be
  /// local (std::invalid_argument) and `at_time` must not precede the last
  /// advance_to() instant. `tag` is returned verbatim with the delivery;
  /// callers use it to find the waiting kernel.
  void start(std::uint64_t tag, double bytes, ProcId from, ProcId to,
             TimeMs at_time);

  /// True while any message is pending activation or draining.
  bool busy() const noexcept { return live_count_ > 0; }

  /// Earliest instant at which a message activates or delivers (+infinity
  /// when idle). The engines merge this into their event clocks.
  TimeMs next_event_ms() const;

  /// Advances the shared-progress simulation to `t` (>= the previous call),
  /// returning every message delivered at or before `t`, ascending by tag.
  std::vector<Delivery> advance_to(TimeMs t);

  /// Allocation-free variant for the engine hot loops: clears `out` and
  /// fills it with the same deliveries advance_to(t) would return. The
  /// caller owns the buffer and reuses it across events, so the per-event
  /// vector churn disappears; capacity is only ever grown.
  void advance_to(TimeMs t, std::vector<Delivery>& out);

  /// Cumulative rate-solver counters for this manager (never reset).
  const SolveStats& solve_stats() const noexcept { return solve_stats_; }

  /// Attaches a hot-path profile (src/obs) that the rate solver stamps
  /// with its full/incremental wall-clock split. Null (the default)
  /// disables the clock reads entirely; simulation results are unaffected
  /// either way. The profile must outlive the manager.
  void set_profile(obs::Profile* profile) noexcept { profile_ = profile; }

  // --- backlog prediction (the policy-facing estimation surface) -------------
  //
  // These queries feed sim::TransferEstimate: the schedulers ask "if I sent
  // one more message over this route now, how long until the traffic already
  // occupying it gets out of the way?" under the CURRENT max-min allocation.

  /// Predicted time (ms from the last advance_to instant) until every
  /// message currently draining over `link` finishes, at today's rates: the
  /// max over the link's active flows of their projected remaining time
  /// (anchor + remaining/rate − now, the exact projection the delivery heap
  /// holds). 0 for an idle link. Messages still inside their route head
  /// latency (scheduled but not yet activated) are not counted — they exist
  /// only within that latency window and hold no link share yet.
  TimeMs link_drain_ms(LinkId link) const;

  /// Active (draining) messages currently occupying `link`.
  std::size_t link_flow_count(LinkId link) const {
    return link_flows_.at(link).size();
  }

  /// Messages pending activation or draining anywhere in the fabric.
  std::size_t live_count() const noexcept { return live_count_; }

  // --- per-link accounting (for metrics) -------------------------------------
  //
  // A multi-hop message counts fully against every link of its route (it
  // occupies them all while draining). The plain accessors cover the whole
  // run; the *_in_window variants clip busy time to [window_start, ...) and
  // count only messages delivered at or after the window start — the
  // warmup-free numbers steady-state link utilization must be computed
  // from. Only meaningful once the fabric is idle (!busy()).

  /// Time each link spent with at least one draining message.
  const std::vector<TimeMs>& link_busy_ms() const noexcept {
    return link_busy_ms_;
  }
  const std::vector<TimeMs>& link_busy_in_window_ms() const noexcept {
    return link_busy_in_window_ms_;
  }
  /// Bytes delivered over each link.
  const std::vector<double>& link_delivered_bytes() const noexcept {
    return link_delivered_bytes_;
  }
  const std::vector<double>& link_bytes_in_window() const noexcept {
    return link_bytes_in_window_;
  }
  /// Messages delivered over each link.
  const std::vector<std::size_t>& link_delivered_counts() const noexcept {
    return link_delivered_counts_;
  }
  const std::vector<std::size_t>& link_counts_in_window() const noexcept {
    return link_counts_in_window_;
  }
  /// Sum of route hop counts of the messages delivered over each link
  /// (divide by the count for the mean — 1 on single-hop kinds).
  const std::vector<std::size_t>& link_hops_in_window() const noexcept {
    return link_hops_in_window_;
  }
  std::size_t started_count() const noexcept { return started_count_; }
  std::size_t delivered_count() const noexcept { return delivered_count_; }

 private:
  struct Message {
    std::uint64_t tag = 0;
    double bytes = 0.0;
    double remaining = 0.0;
    double rate_ms = 0.0;   ///< bytes per ms under the current allocation
    TimeMs anchor_ms = 0.0;  ///< instant `remaining` refers to
    TimeMs activates_ms = 0.0;  ///< joins the route here (start + latency)
    std::uint64_t stamp = 0;    ///< invalidates superseded heap projections
    std::uint64_t solve_round = 0;  ///< frozen marker of the rate solver
    bool active = false;
    std::vector<LinkId> path;         ///< route links (reused with the slot)
    std::vector<std::size_t> link_pos;  ///< position in link_flows_[path[i]]
  };

  /// Min-heap entry; `stamp` must match the slot's message for the entry
  /// to still be meaningful (projections are superseded, never erased).
  struct HeapEntry {
    TimeMs time;
    std::size_t slot;
    std::uint64_t stamp;

    bool operator>(const HeapEntry& other) const noexcept {
      return time > other.time;
    }
  };
  using EventHeap =
      std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                          std::greater<HeapEntry>>;

  void prune_stale_projections() const;
  void activate(std::size_t slot, TimeMs at);
  void deliver(std::size_t slot, TimeMs at, std::vector<Delivery>& out);
  void mark_dirty(const std::vector<LinkId>& path);
  void resolve_rates(TimeMs at);
  void resolve_rates_full(TimeMs at);
  void resolve_rates_incremental(TimeMs at);
  void freeze_flow(std::size_t slot, double rate, TimeMs at);
#ifndef NDEBUG
  void verify_incremental_solve(TimeMs at);
#endif

  const Topology& topology_;
  std::vector<Message> messages_;  ///< slot arena, slots reused
  std::vector<std::size_t> free_slots_;
  std::vector<std::vector<std::size_t>> link_flows_;  ///< [link] -> slots

  EventHeap activations_;           ///< pending messages by activation time
  mutable EventHeap projections_;   ///< active messages by projected finish
                                    ///< (mutable: lazy pruning from const
                                    ///< next_event_ms)

  // Rate-solver scratch, sized once ([link]).
  std::vector<double> solve_cap_;
  std::vector<std::size_t> solve_unfrozen_;
  std::uint64_t solve_round_ = 0;

  // Incremental-solver state. dirty_links_ collects the links whose
  // membership changed since the last solve; the mark arrays (stamped by
  // mark_round_ so they never need clearing) track which links/flows the
  // component closure has absorbed; solve_links_ is the sorted dirty
  // component the restricted filling runs over.
  SolveMode solve_mode_;
  std::vector<LinkId> dirty_links_;
  std::vector<std::uint64_t> link_mark_;   ///< [link] closure stamp
  std::vector<std::uint64_t> flow_mark_;   ///< [slot] closure stamp
  std::uint64_t mark_round_ = 0;
  std::vector<LinkId> solve_links_;        ///< dirty component, ascending
  std::vector<LinkId> closure_stack_;
  SolveStats solve_stats_;
  obs::Profile* profile_ = nullptr;  ///< optional solver wall-clock timing

  // Busy intervals fold as link occupancy transitions 0 <-> >0.
  std::vector<std::size_t> link_active_count_;
  std::vector<TimeMs> link_busy_since_;
  std::vector<TimeMs> link_busy_ms_;
  std::vector<TimeMs> link_busy_in_window_ms_;
  std::vector<double> link_delivered_bytes_;
  std::vector<double> link_bytes_in_window_;
  std::vector<std::size_t> link_delivered_counts_;
  std::vector<std::size_t> link_counts_in_window_;
  std::vector<std::size_t> link_hops_in_window_;

  TimeMs window_start_ = 0.0;
  TimeMs now_ = 0.0;
  std::size_t active_flow_count_ = 0;  ///< activated and not yet delivered
  std::size_t live_count_ = 0;
  std::size_t started_count_ = 0;
  std::size_t delivered_count_ = 0;
};

}  // namespace apt::net
