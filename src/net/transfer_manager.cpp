#include "net/transfer_manager.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <stdexcept>

#include "obs/profile.hpp"
#include "util/contracts.hpp"

namespace apt::net {

namespace {
constexpr TimeMs kInf = std::numeric_limits<TimeMs>::infinity();

/// Wall-clock milliseconds since `start` (profiling only).
double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::atomic<TransferManager::SolveMode> g_default_solve_mode{
    TransferManager::SolveMode::Auto};

/// Below this many active flows the closure bookkeeping costs more than the
/// full solve it would avoid.
constexpr std::size_t kSmallSolve = 16;
}  // namespace

void TransferManager::set_default_solve_mode(SolveMode mode) noexcept {
  g_default_solve_mode.store(mode, std::memory_order_relaxed);
}

TransferManager::SolveMode TransferManager::default_solve_mode() noexcept {
  return g_default_solve_mode.load(std::memory_order_relaxed);
}

TransferManager::TransferManager(const Topology& topology)
    : topology_(topology), solve_mode_(default_solve_mode()) {
  if (!topology_.contended())
    throw std::invalid_argument(
        "TransferManager: an ideal topology has no links to simulate");
  const std::size_t links = topology_.link_count();
  link_flows_.resize(links);
  solve_cap_.assign(links, 0.0);
  solve_unfrozen_.assign(links, 0);
  link_mark_.assign(links, 0);
  dirty_links_.reserve(16);
  solve_links_.reserve(16);
  closure_stack_.reserve(16);
  link_active_count_.assign(links, 0);
  link_busy_since_.assign(links, 0.0);
  link_busy_ms_.assign(links, 0.0);
  link_busy_in_window_ms_.assign(links, 0.0);
  link_delivered_bytes_.assign(links, 0.0);
  link_bytes_in_window_.assign(links, 0.0);
  link_delivered_counts_.assign(links, 0);
  link_counts_in_window_.assign(links, 0);
  link_hops_in_window_.assign(links, 0);
}

void TransferManager::set_window_start(TimeMs start) {
  if (start < 0.0)
    throw std::invalid_argument(
        "TransferManager: window start must be >= 0");
  if (started_count_ > 0)
    throw std::logic_error(
        "TransferManager: the observation window must be set before the "
        "first message starts");
  window_start_ = start;
}

void TransferManager::start(std::uint64_t tag, double bytes, ProcId from,
                            ProcId to, TimeMs at_time) {
  if (bytes < 0.0)
    throw std::invalid_argument("TransferManager: negative byte count");
  if (at_time < now_)
    throw std::invalid_argument(
        "TransferManager: messages cannot start in the past");
  const Topology::Route route = topology_.route(from, to);
  if (route.empty())
    throw std::invalid_argument(
        "TransferManager: the processor pair is local — no message needed");

  std::size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = messages_.size();
    messages_.emplace_back();
  }
  // Slots are reused: every field is reassigned except `stamp`, which must
  // keep growing so heap projections of the previous occupant stay stale.
  Message& m = messages_[slot];
  m.tag = tag;
  m.bytes = bytes;
  m.remaining = bytes;
  m.rate_ms = 0.0;
  m.anchor_ms = at_time;
  m.activates_ms = at_time + topology_.route_latency_ms(from, to);
  m.solve_round = 0;
  m.active = false;
  m.path.assign(route.begin(), route.end());
  m.link_pos.assign(m.path.size(), 0);
  activations_.push(HeapEntry{m.activates_ms, slot, m.stamp});
  ++live_count_;
  ++started_count_;
}

void TransferManager::prune_stale_projections() const {
  while (!projections_.empty()) {
    const HeapEntry& top = projections_.top();
    if (messages_[top.slot].stamp == top.stamp) return;
    projections_.pop();
  }
}

TimeMs TransferManager::next_event_ms() const {
  prune_stale_projections();
  TimeMs t = kInf;
  if (!activations_.empty()) t = activations_.top().time;
  if (!projections_.empty()) t = std::min(t, projections_.top().time);
  return t;
}

void TransferManager::activate(std::size_t slot, TimeMs at) {
  Message& m = messages_[slot];
  m.active = true;
  m.anchor_ms = at;
  for (std::size_t hop = 0; hop < m.path.size(); ++hop) {
    const LinkId l = m.path[hop];
    m.link_pos[hop] = link_flows_[l].size();
    link_flows_[l].push_back(slot);
    if (link_active_count_[l]++ == 0) link_busy_since_[l] = at;
  }
  mark_dirty(m.path);
  ++active_flow_count_;
}

void TransferManager::deliver(std::size_t slot, TimeMs at,
                              std::vector<Delivery>& out) {
  Message& m = messages_[slot];
  const bool in_window = at >= window_start_;
  for (std::size_t hop = 0; hop < m.path.size(); ++hop) {
    const LinkId l = m.path[hop];
    // Swap-remove from the link's flow list; the displaced flow learns its
    // new position (routes are simple paths, so it holds `l` exactly once).
    std::vector<std::size_t>& flows = link_flows_[l];
    const std::size_t pos = m.link_pos[hop];
    const std::size_t moved = flows.back();
    flows[pos] = moved;
    flows.pop_back();
    if (pos < flows.size()) {
      Message& other = messages_[moved];
      for (std::size_t j = 0; j < other.path.size(); ++j) {
        if (other.path[j] == l) {
          other.link_pos[j] = pos;
          break;
        }
      }
    }
    if (--link_active_count_[l] == 0) {
      link_busy_ms_[l] += at - link_busy_since_[l];
      const TimeMs from = std::max(link_busy_since_[l], window_start_);
      if (at > from) link_busy_in_window_ms_[l] += at - from;
    }
    link_delivered_bytes_[l] += m.bytes;
    ++link_delivered_counts_[l];
    if (in_window) {
      link_bytes_in_window_[l] += m.bytes;
      ++link_counts_in_window_[l];
      link_hops_in_window_[l] += m.path.size();
    }
  }
  mark_dirty(m.path);
  out.push_back(Delivery{m.tag, m.bytes, m.path.size(), at});
  ++m.stamp;  // any leftover projection of this slot is now stale
  m.active = false;
  free_slots_.push_back(slot);
  --active_flow_count_;
  --live_count_;
  ++delivered_count_;
}

/// Applies one solved rate: re-anchors the remainder at `at` under the old
/// rate, then projects the finish under the new one. A flow whose rate did
/// not change keeps its anchor and its existing (still exact) projection.
void TransferManager::freeze_flow(std::size_t slot, double rate, TimeMs at) {
  Message& m = messages_[slot];
  m.solve_round = solve_round_;
  if (m.rate_ms == rate) return;
  if (m.rate_ms > 0.0 && at > m.anchor_ms) {
    m.remaining -= m.rate_ms * (at - m.anchor_ms);
    if (m.remaining < 0.0) m.remaining = 0.0;
  }
  m.anchor_ms = at;
  m.rate_ms = rate;
  // Ripe within tolerance — or so close that the projection cannot even
  // advance the double-precision clock — delivers at this very instant;
  // the event loop picks the projection up before time moves again.
  TimeMs finish = at;
  if (m.remaining > done_eps(m.bytes)) {
    finish = at + m.remaining / rate;
    if (!(finish > at)) finish = at;
  }
  projections_.push(HeapEntry{finish, slot, ++m.stamp});
}

void TransferManager::mark_dirty(const std::vector<LinkId>& path) {
  dirty_links_.insert(dirty_links_.end(), path.begin(), path.end());
}

/// Max-min fair allocation by progressive filling: raise every flow's rate
/// together until a link saturates, freeze that link's flows at the
/// saturation level, remove their share, repeat. A flow's rate is the
/// level of its bottleneck link; on a single link this is exactly the
/// equal split bandwidth / n. Runs at every membership event. This is the
/// dispatcher: small fabrics and FullAlways mode run the full solve;
/// otherwise the link<->flow component around the dirty links is closed
/// and, unless it swallowed most of the active flows (fallback), the
/// filling is restricted to that component. Iteration order is fixed
/// either way (ascending link id, then the link's flow list), so the
/// arithmetic is deterministic — and, per the header's component-
/// independence argument, bit-identical between the two paths.
void TransferManager::resolve_rates(TimeMs at) {
  ++solve_round_;
  if (active_flow_count_ == 0) {
    dirty_links_.clear();
    return;
  }
  solve_stats_.flows_active += active_flow_count_;
  // Timed by hand rather than with ScopedTimer: which bucket a solve
  // lands in (full vs incremental) is only known at the exit taken, and
  // the fallback's closure work belongs to the full-solve bucket it pays
  // for. No clock read when no profile is attached.
  const auto solve_start = profile_
                               ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{};
  if (solve_mode_ == SolveMode::FullAlways ||
      active_flow_count_ < kSmallSolve) {
    dirty_links_.clear();
    resolve_rates_full(at);
    ++solve_stats_.full_solves;
    solve_stats_.flows_resolved += active_flow_count_;
    if (profile_)
      profile_->record(obs::Timer::kTmSolveFull, ms_since(solve_start));
    return;
  }

  // Close the component: every link reachable from a dirty link through
  // shared flows, and every flow on those links. Marks are stamped with
  // mark_round_ so the arrays never need clearing.
  ++mark_round_;
  if (flow_mark_.size() < messages_.size())
    flow_mark_.resize(messages_.size(), 0);
  closure_stack_.clear();
  solve_links_.clear();
  auto push_link = [this](LinkId l) {
    if (link_mark_[l] == mark_round_) return;
    link_mark_[l] = mark_round_;
    if (!link_flows_[l].empty()) {
      closure_stack_.push_back(l);
      solve_links_.push_back(l);
    }
  };
  for (const LinkId l : dirty_links_) push_link(l);
  dirty_links_.clear();
  std::size_t component_flows = 0;
  bool fallback = false;
  for (std::size_t i = 0; i < closure_stack_.size() && !fallback; ++i) {
    for (const std::size_t slot : link_flows_[closure_stack_[i]]) {
      if (flow_mark_[slot] == mark_round_) continue;
      flow_mark_[slot] = mark_round_;
      ++component_flows;
      for (const LinkId hop : messages_[slot].path) push_link(hop);
    }
    // Once the component holds most of the flows the restricted fill
    // costs as much as the full one — stop closing and fall back.
    if (component_flows * 2 > active_flow_count_) fallback = true;
  }
  if (fallback) {
    resolve_rates_full(at);
    ++solve_stats_.full_solves;
    ++solve_stats_.fallback_solves;
    solve_stats_.flows_resolved += active_flow_count_;
    if (profile_)
      profile_->record(obs::Timer::kTmSolveFull, ms_since(solve_start));
    return;
  }

  std::sort(solve_links_.begin(), solve_links_.end());
  std::size_t unfrozen_total = component_flows;
  for (const LinkId l : solve_links_) {
    solve_cap_[l] = topology_.bandwidth_gbps(l) * 1e6;
    solve_unfrozen_[l] = link_flows_[l].size();
  }
  while (unfrozen_total > 0) {
    double level = kInf;
    for (const LinkId l : solve_links_) {
      if (solve_unfrozen_[l] == 0) continue;
      level = std::min(
          level, solve_cap_[l] / static_cast<double>(solve_unfrozen_[l]));
    }
    if (!(level > 0.0)) level = 1e-6;
    for (const LinkId l : solve_links_) {
      if (solve_unfrozen_[l] == 0) continue;
      if (solve_cap_[l] / static_cast<double>(solve_unfrozen_[l]) > level)
        continue;
      for (const std::size_t slot : link_flows_[l]) {
        Message& m = messages_[slot];
        if (m.solve_round == solve_round_) continue;  // frozen already
        for (const LinkId hop : m.path) {
          solve_cap_[hop] -= level;
          if (solve_cap_[hop] < 0.0) solve_cap_[hop] = 0.0;
          --solve_unfrozen_[hop];
        }
        freeze_flow(slot, level, at);
        --unfrozen_total;
      }
    }
  }
  ++solve_stats_.incremental_solves;
  solve_stats_.flows_resolved += component_flows;
  // Recorded before the debug cross-check: the verify pass is a test
  // artifact, not solver cost.
  if (profile_)
    profile_->record(obs::Timer::kTmSolveIncremental, ms_since(solve_start));
#ifndef NDEBUG
  verify_incremental_solve(at);
#endif
}

/// The legacy whole-fabric solve. Untouched arithmetic: every golden value
/// in the test suite was produced by exactly this loop.
void TransferManager::resolve_rates_full(TimeMs at) {
  std::size_t unfrozen_total = active_flow_count_;
  const std::size_t links = link_flows_.size();
  for (std::size_t l = 0; l < links; ++l) {
    if (link_flows_[l].empty()) continue;
    solve_cap_[l] = topology_.bandwidth_gbps(static_cast<LinkId>(l)) * 1e6;
    solve_unfrozen_[l] = link_flows_[l].size();
  }
  while (unfrozen_total > 0) {
    double level = kInf;
    for (std::size_t l = 0; l < links; ++l) {
      if (link_flows_[l].empty() || solve_unfrozen_[l] == 0) continue;
      level = std::min(
          level, solve_cap_[l] / static_cast<double>(solve_unfrozen_[l]));
    }
    // Exact arithmetic keeps every unfrozen link's level positive; only
    // float drift of the cascading subtractions could break that, and a
    // zero rate would stall the event loop — floor it instead. The freeze
    // pass below matches with <=, so a drift-flattened link (ratio 0 <
    // floored level) still freezes and the loop always terminates.
    if (!(level > 0.0)) level = 1e-6;
    for (std::size_t l = 0; l < links; ++l) {
      if (link_flows_[l].empty() || solve_unfrozen_[l] == 0) continue;
      // The argmin links compare exactly equal; drifted-below ones (see
      // the floor above, or caps nudged by an earlier freeze this round)
      // must freeze too or the round could freeze nothing.
      if (solve_cap_[l] / static_cast<double>(solve_unfrozen_[l]) > level)
        continue;
      for (const std::size_t slot : link_flows_[l]) {
        Message& m = messages_[slot];
        if (m.solve_round == solve_round_) continue;  // frozen already
        for (const LinkId hop : m.path) {
          solve_cap_[hop] -= level;
          if (solve_cap_[hop] < 0.0) solve_cap_[hop] = 0.0;
          --solve_unfrozen_[hop];
        }
        freeze_flow(slot, level, at);
        --unfrozen_total;
      }
    }
  }
}

#ifndef NDEBUG
/// Debug-build cross-check: after an incremental solve, a full re-solve at
/// the same instant must leave every rate untouched (freeze_flow with an
/// equal rate is a no-op, so a passing check perturbs nothing observable).
void TransferManager::verify_incremental_solve(TimeMs at) {
  std::vector<std::pair<std::size_t, double>> before;
  before.reserve(active_flow_count_);
  for (std::size_t slot = 0; slot < messages_.size(); ++slot) {
    if (messages_[slot].active)
      before.emplace_back(slot, messages_[slot].rate_ms);
  }
  ++solve_round_;
  resolve_rates_full(at);
  for (const auto& [slot, rate] : before) {
    APT_ASSERT(messages_[slot].rate_ms == rate,
               "incremental max-min solve diverged from the full solve: "
               "flow slot %zu re-solved to %.17g MB/ms at t=%.17g, "
               "incremental had %.17g",
               slot, messages_[slot].rate_ms, at, rate);
  }
}
#endif

TimeMs TransferManager::link_drain_ms(LinkId link) const {
  TimeMs drain = 0.0;
  for (const std::size_t slot : link_flows_.at(link)) {
    const Message& m = messages_[slot];
    if (!(m.rate_ms > 0.0)) continue;
    // The same piecewise-linear projection freeze_flow pushed on the heap;
    // clamped because a ripe-within-tolerance flow can project at now_.
    const TimeMs remaining_ms = m.anchor_ms + m.remaining / m.rate_ms - now_;
    if (remaining_ms > drain) drain = remaining_ms;
  }
  return drain;
}

std::vector<Delivery> TransferManager::advance_to(TimeMs t) {
  std::vector<Delivery> out;
  advance_to(t, out);
  return out;
}

void TransferManager::advance_to(TimeMs t, std::vector<Delivery>& out) {
  if (t < now_)
    throw std::invalid_argument("TransferManager: time must not go backwards");
  out.clear();
  for (;;) {
    const TimeMs e = next_event_ms();
    if (!(e <= t)) break;
    bool membership_changed = false;
    prune_stale_projections();
    while (!projections_.empty() && projections_.top().time <= e) {
      const HeapEntry entry = projections_.top();
      projections_.pop();
      deliver(entry.slot, e, out);
      membership_changed = true;
      prune_stale_projections();
    }
    while (!activations_.empty() && activations_.top().time <= e) {
      const HeapEntry entry = activations_.top();
      activations_.pop();
      activate(entry.slot, e);
      membership_changed = true;
    }
    if (membership_changed) resolve_rates(e);
    now_ = e;
  }
  if (t > now_) now_ = t;
  std::sort(out.begin(), out.end(),
            [](const Delivery& a, const Delivery& b) { return a.tag < b.tag; });
}

}  // namespace apt::net
