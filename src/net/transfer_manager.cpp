#include "net/transfer_manager.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace apt::net {

namespace {
constexpr TimeMs kInf = std::numeric_limits<TimeMs>::infinity();

/// Completion tolerance: absolute floor plus a relative term so multi-GB
/// messages survive the float drift of many rate-change drains.
double done_eps(double bytes) { return std::max(1e-6, 1e-12 * bytes); }
}  // namespace

TransferManager::TransferManager(const Topology& topology)
    : topology_(topology) {
  if (!topology_.contended())
    throw std::invalid_argument(
        "TransferManager: an ideal topology has no links to simulate");
  link_active_.resize(topology_.link_count());
  link_updated_ms_.assign(topology_.link_count(), 0.0);
  link_busy_ms_.assign(topology_.link_count(), 0.0);
  link_delivered_bytes_.assign(topology_.link_count(), 0.0);
  link_delivered_counts_.assign(topology_.link_count(), 0);
}

void TransferManager::start(std::uint64_t tag, double bytes, ProcId from,
                            ProcId to, TimeMs at_time) {
  if (bytes < 0.0)
    throw std::invalid_argument("TransferManager: negative byte count");
  if (at_time < now_)
    throw std::invalid_argument(
        "TransferManager: messages cannot start in the past");
  const LinkId link = topology_.link(from, to);
  if (link == kNoLink)
    throw std::invalid_argument(
        "TransferManager: the processor pair is local — no message needed");

  std::size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = messages_.size();
    messages_.emplace_back();
  }
  Message& m = messages_[slot];
  m.tag = tag;
  m.link = link;
  m.bytes = bytes;
  m.remaining = bytes;
  m.activates_ms = at_time + topology_.latency_ms(link);
  pending_.push_back(slot);
  ++live_count_;
  ++started_count_;
}

TimeMs TransferManager::next_internal_event() const {
  TimeMs t = kInf;
  for (const std::size_t slot : pending_)
    t = std::min(t, messages_[slot].activates_ms);
  for (LinkId l = 0; l < link_active_.size(); ++l) {
    const std::vector<std::size_t>& active = link_active_[l];
    if (active.empty()) continue;
    double min_remaining = kInf;
    for (const std::size_t slot : active)
      min_remaining = std::min(min_remaining, messages_[slot].remaining);
    // Equal sharing: every message drains at bandwidth / n, so the next
    // delivery on the link is the smallest remainder at that rate.
    const double rate_ms =
        topology_.bandwidth_gbps(l) * 1e6 / static_cast<double>(active.size());
    t = std::min(t, link_updated_ms_[l] + min_remaining / rate_ms);
  }
  return t;
}

TimeMs TransferManager::next_event_ms() const { return next_internal_event(); }

void TransferManager::drain_links_to(TimeMs t) {
  for (LinkId l = 0; l < link_active_.size(); ++l) {
    std::vector<std::size_t>& active = link_active_[l];
    const TimeMs dt = t - link_updated_ms_[l];
    link_updated_ms_[l] = t;
    if (active.empty() || dt <= 0.0) continue;
    const double rate_ms =
        topology_.bandwidth_gbps(l) * 1e6 / static_cast<double>(active.size());
    for (const std::size_t slot : active)
      messages_[slot].remaining -= rate_ms * dt;
    link_busy_ms_[l] += dt;
  }
}

void TransferManager::complete_ripe(TimeMs t, std::vector<Delivery>& out) {
  for (LinkId l = 0; l < link_active_.size(); ++l) {
    std::vector<std::size_t>& active = link_active_[l];
    if (active.empty()) continue;
    const double rate_ms =
        topology_.bandwidth_gbps(l) * 1e6 / static_cast<double>(active.size());
    std::size_t keep = 0;
    for (std::size_t i = 0; i < active.size(); ++i) {
      const std::size_t slot = active[i];
      Message& m = messages_[slot];
      // Ripe when within tolerance of empty — or when the remainder is so
      // small that draining it would not even advance the double-precision
      // clock (guards against an event loop that cannot make progress).
      const bool ripe =
          m.remaining <= done_eps(m.bytes) ||
          link_updated_ms_[l] + m.remaining / rate_ms <= link_updated_ms_[l];
      if (!ripe) {
        active[keep++] = slot;
        continue;
      }
      out.push_back(Delivery{m.tag, m.link, m.bytes, t});
      link_delivered_bytes_[l] += m.bytes;
      ++link_delivered_counts_[l];
      free_slots_.push_back(slot);
      --live_count_;
      ++delivered_count_;
    }
    active.resize(keep);
  }
}

void TransferManager::activate_due(TimeMs t) {
  std::size_t keep = 0;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const std::size_t slot = pending_[i];
    Message& m = messages_[slot];
    if (m.activates_ms > t) {
      pending_[keep++] = slot;
      continue;
    }
    link_active_[m.link].push_back(slot);
  }
  pending_.resize(keep);
}

std::vector<Delivery> TransferManager::advance_to(TimeMs t) {
  if (t < now_)
    throw std::invalid_argument("TransferManager: time must not go backwards");
  std::vector<Delivery> out;
  for (;;) {
    const TimeMs e = next_internal_event();
    if (!(e <= t)) break;
    drain_links_to(e);
    complete_ripe(e, out);
    activate_due(e);
  }
  drain_links_to(t);
  now_ = t;
  std::sort(out.begin(), out.end(),
            [](const Delivery& a, const Delivery& b) { return a.tag < b.tag; });
  return out;
}

}  // namespace apt::net
