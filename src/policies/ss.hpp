// Serial Scheduling (Liu & Yang [17]; thesis §2.5.3).
//
// A priority-rule policy: among the ready kernels, schedule first the one
// whose execution times across the *available* processors have the largest
// standard deviation (the kernel with most to lose from a bad placement),
// assigning it to the available processor with the smallest execution time.
// Repeats while kernels and processors remain — SS never waits.
#pragma once

#include "sim/policy.hpp"

namespace apt::policies {

class SerialScheduling final : public sim::Policy {
 public:
  std::string name() const override { return "SS"; }
  bool is_dynamic() const override { return true; }
  void on_event(sim::SchedulerContext& ctx) override;
};

}  // namespace apt::policies
