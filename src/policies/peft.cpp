#include "policies/peft.hpp"

#include <algorithm>
#include <limits>

namespace apt::policies {

std::vector<std::vector<double>> peft_oct(const dag::Dag& dag,
                                          const sim::System& system,
                                          const sim::CostModel& cost) {
  const std::size_t procs = system.proc_count();
  std::vector<std::vector<double>> oct(dag.node_count(),
                                       std::vector<double>(procs, 0.0));
  const auto topo = dag.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const dag::NodeId t = *it;
    for (sim::ProcId pk = 0; pk < procs; ++pk) {
      double worst_child = 0.0;
      for (const dag::NodeId tj : dag.successors(t)) {
        double best_pw = std::numeric_limits<double>::infinity();
        const double avg_comm =
            cost.average_transfer_time_ms(dag, t, tj, system);
        for (sim::ProcId pw = 0; pw < procs; ++pw) {
          const double w =
              cost.exec_time_ms(dag, tj, system.processor(pw));
          const double comm = (pw == pk) ? 0.0 : avg_comm;
          best_pw = std::min(best_pw, oct[tj][pw] + w + comm);
        }
        worst_child = std::max(worst_child, best_pw);
      }
      oct[t][pk] = worst_child;  // exit tasks keep 0
    }
  }
  return oct;
}

std::vector<double> peft_rank_oct(
    const std::vector<std::vector<double>>& oct) {
  std::vector<double> rank(oct.size(), 0.0);
  for (std::size_t i = 0; i < oct.size(); ++i) {
    double sum = 0.0;
    for (const double v : oct[i]) sum += v;
    rank[i] = oct[i].empty() ? 0.0 : sum / static_cast<double>(oct[i].size());
  }
  return rank;
}

StaticPlan Peft::compute_plan(const dag::Dag& dag, const sim::System& system,
                              const sim::CostModel& cost) {
  const auto oct = peft_oct(dag, system, cost);
  const std::vector<double> rank = peft_rank_oct(oct);
  // Processor selection: minimise O_EFT = EFT + OCT(t, p).
  return list_schedule(dag, system, cost, rank,
                       [&oct](dag::NodeId node, sim::ProcId proc, sim::TimeMs,
                              sim::TimeMs eft) { return eft + oct[node][proc]; });
}

}  // namespace apt::policies
