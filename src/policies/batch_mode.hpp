// Batch-mode mapping heuristics from Braun et al. [19] (the study the
// thesis takes MET and OLB from): Min-Min, Max-Min and Sufferage. They are
// natural extra baselines for the APT comparison — all three *do* use the
// execution-time information SPN ignores, yet none has APT's
// wait-for-the-best option.
//
// All three work on the current ready set I and available processors A:
// for every ready kernel compute its best completion time over A
// (execution plus input-transfer), then pick which kernel to place first:
//   * Min-Min:    the kernel with the SMALLEST best completion time
//                 (finish the easy work, keep queues short);
//   * Max-Min:    the kernel with the LARGEST best completion time
//                 (start the heavy work early);
//   * Sufferage:  the kernel that would "suffer" most if denied its best
//                 processor — the largest gap between its second-best and
//                 best completion times.
// The chosen kernel goes to its best available processor; repeat until
// kernels or processors run out.
#pragma once

#include "sim/policy.hpp"

namespace apt::policies {

enum class BatchRule { MinMin, MaxMin, Sufferage };

const char* to_string(BatchRule rule) noexcept;

class BatchMode final : public sim::Policy {
 public:
  explicit BatchMode(BatchRule rule) : rule_(rule) {}

  std::string name() const override { return to_string(rule_); }
  bool is_dynamic() const override { return true; }
  void on_event(sim::SchedulerContext& ctx) override;

  BatchRule rule() const noexcept { return rule_; }

 private:
  BatchRule rule_;
};

}  // namespace apt::policies
