// Adaptive Greedy (Wu, Shi & Hong [18]; thesis §2.5.3, Eq. 1–2).
//
// AG maintains a FIFO queue per processor and greedily enqueues each
// arriving kernel where its estimated total waiting time
//     τ_g = τ_g^q (queueing delay) + τ_g^d (input-data transfer delay)
// is smallest. Two queueing-delay estimators are provided:
//  * SumOfQueued (default): remaining time of the running kernel plus the
//    lookup-table times of everything already queued — the deterministic
//    reading of "the sum of the compute times for all kernels already in
//    the queue".
//  * RecentAverage: N_g · τ_g^k, the paper's Eq. (2) with τ_g^k the mean
//    execution time of the last k completions on that processor.
//
// The comm_aware variant ("AG-net") extends τ_g^d from the unloaded route
// estimate to TransferEstimate::total_ms(): the processor backlog PLUS the
// predicted drain of the route links' in-flight traffic at current max-min
// rates — AG's queue-length idea applied to the fabric as well as the
// processors. On an ideal topology the queueing term is always 0, so
// AG-net degenerates to AG bit-for-bit.
#pragma once

#include <cstddef>

#include "sim/policy.hpp"

namespace apt::policies {

enum class AgQueueEstimate { SumOfQueued, RecentAverage };

struct AgOptions {
  AgQueueEstimate estimate = AgQueueEstimate::SumOfQueued;
  std::size_t history_window = 5;  ///< the k of Eq. (2)

  /// Rank with the backlog-aware transfer reading (total_ms()) instead of
  /// the unloaded stall. Names the policy "AG-net".
  bool comm_aware = false;
};

class AdaptiveGreedy final : public sim::Policy {
 public:
  AdaptiveGreedy() = default;
  explicit AdaptiveGreedy(AgOptions options);

  std::string name() const override {
    return options_.comm_aware ? "AG-net" : "AG";
  }
  bool is_dynamic() const override { return true; }
  void on_event(sim::SchedulerContext& ctx) override;

  const AgOptions& options() const noexcept { return options_; }

 private:
  sim::TimeMs queue_delay_ms(const sim::SchedulerContext& ctx,
                             sim::ProcId proc) const;

  AgOptions options_;
};

}  // namespace apt::policies
