// Adaptive Greedy (Wu, Shi & Hong [18]; thesis §2.5.3, Eq. 1–2).
//
// AG maintains a FIFO queue per processor and greedily enqueues each
// arriving kernel where its estimated total waiting time
//     τ_g = τ_g^q (queueing delay) + τ_g^d (input-data transfer delay)
// is smallest. Two queueing-delay estimators are provided:
//  * SumOfQueued (default): remaining time of the running kernel plus the
//    lookup-table times of everything already queued — the deterministic
//    reading of "the sum of the compute times for all kernels already in
//    the queue".
//  * RecentAverage: N_g · τ_g^k, the paper's Eq. (2) with τ_g^k the mean
//    execution time of the last k completions on that processor.
#pragma once

#include <cstddef>

#include "sim/policy.hpp"

namespace apt::policies {

enum class AgQueueEstimate { SumOfQueued, RecentAverage };

struct AgOptions {
  AgQueueEstimate estimate = AgQueueEstimate::SumOfQueued;
  std::size_t history_window = 5;  ///< the k of Eq. (2)
};

class AdaptiveGreedy final : public sim::Policy {
 public:
  AdaptiveGreedy() = default;
  explicit AdaptiveGreedy(AgOptions options);

  std::string name() const override { return "AG"; }
  bool is_dynamic() const override { return true; }
  void on_event(sim::SchedulerContext& ctx) override;

  const AgOptions& options() const noexcept { return options_; }

 private:
  sim::TimeMs queue_delay_ms(const sim::SchedulerContext& ctx,
                             sim::ProcId proc) const;

  AgOptions options_;
};

}  // namespace apt::policies
