#include "policies/selection.hpp"

#include <limits>

namespace apt::policies {

sim::TimeMs min_exec_time_ms(const sim::SchedulerContext& ctx,
                             dag::NodeId node) {
  sim::TimeMs best = std::numeric_limits<sim::TimeMs>::infinity();
  for (sim::ProcId p = 0; p < ctx.system().proc_count(); ++p)
    best = std::min(best, ctx.exec_time_ms(node, p));
  return best;
}

sim::ProcId min_exec_proc(const sim::SchedulerContext& ctx, dag::NodeId node) {
  sim::ProcId best = 0;
  for (sim::ProcId p = 1; p < ctx.system().proc_count(); ++p) {
    if (ctx.exec_time_ms(node, p) < ctx.exec_time_ms(node, best)) best = p;
  }
  return best;
}

std::optional<sim::ProcId> idle_optimal_proc(const sim::SchedulerContext& ctx,
                                             dag::NodeId node) {
  const sim::TimeMs best = min_exec_time_ms(ctx, node);
  for (sim::ProcId p = 0; p < ctx.system().proc_count(); ++p) {
    if (ctx.is_idle(p) && ctx.exec_time_ms(node, p) == best) return p;
  }
  return std::nullopt;
}

std::optional<sim::ProcId> idle_min_exec_proc(const sim::SchedulerContext& ctx,
                                              dag::NodeId node) {
  std::optional<sim::ProcId> best;
  for (sim::ProcId p = 0; p < ctx.system().proc_count(); ++p) {
    if (!ctx.is_idle(p)) continue;
    if (!best || ctx.exec_time_ms(node, p) < ctx.exec_time_ms(node, *best))
      best = p;
  }
  return best;
}

}  // namespace apt::policies
