#include "policies/selection.hpp"

namespace apt::policies {

sim::TimeMs min_exec_time_ms(const sim::SchedulerContext& ctx,
                             dag::NodeId node) {
  return ctx.min_exec_time_ms(node);
}

sim::ProcId min_exec_proc(const sim::SchedulerContext& ctx, dag::NodeId node) {
  return ctx.min_exec_proc(node);
}

std::optional<sim::ProcId> idle_optimal_proc(const sim::SchedulerContext& ctx,
                                             dag::NodeId node) {
  // idle_processors() is the idle subset ascending by id, so scanning it is
  // equivalent to the historical all-processors scan filtered by is_idle —
  // same winner, without touching the busy majority.
  const sim::TimeMs best = ctx.min_exec_time_ms(node);
  for (const sim::ProcId p : ctx.idle_processors()) {
    if (ctx.exec_time_ms(node, p) == best) return p;
  }
  return std::nullopt;
}

std::optional<sim::ProcId> idle_min_exec_proc(const sim::SchedulerContext& ctx,
                                              dag::NodeId node) {
  std::optional<sim::ProcId> best;
  for (const sim::ProcId p : ctx.idle_processors()) {
    if (!best || ctx.exec_time_ms(node, p) < ctx.exec_time_ms(node, *best))
      best = p;
  }
  return best;
}

}  // namespace apt::policies
