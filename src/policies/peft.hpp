// Predict Earliest Finish Time (Arabnejad & Barbosa [15]).
//
// Static list scheduler built on an Optimistic Cost Table:
//
//   OCT(t_i, p_k) = max_{t_j ∈ succ(t_i)} min_{p_w} [ OCT(t_j, p_w)
//                     + w(t_j, p_w) + (p_w == p_k ? 0 : c̄_ij) ]      (Eq. 6)
//
// with zero rows for exit tasks. Task priority is rank_oct (the row mean,
// Eq. 7); processor selection minimises the Optimistic EFT
// O_EFT(t_i, p_k) = EFT(t_i, p_k) + OCT(t_i, p_k).
#pragma once

#include <vector>

#include "policies/static_plan.hpp"

namespace apt::policies {

class Peft final : public StaticPolicyBase {
 public:
  std::string name() const override { return "PEFT"; }

 protected:
  StaticPlan compute_plan(const dag::Dag& dag, const sim::System& system,
                          const sim::CostModel& cost) override;
};

/// The OCT matrix, row per task, column per processor (Eq. 6).
std::vector<std::vector<double>> peft_oct(const dag::Dag& dag,
                                          const sim::System& system,
                                          const sim::CostModel& cost);

/// rank_oct (Eq. 7): mean of each OCT row.
std::vector<double> peft_rank_oct(const std::vector<std::vector<double>>& oct);

}  // namespace apt::policies
