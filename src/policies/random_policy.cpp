#include "policies/random_policy.hpp"

namespace apt::policies {

void RandomPolicy::on_event(sim::SchedulerContext& ctx) {
  for (;;) {
    const auto& ready = ctx.ready();
    const auto& idle = ctx.idle_processors();
    if (ready.empty() || idle.empty()) return;
    const sim::ProcId proc =
        idle[static_cast<std::size_t>(rng_.uniform_u64(idle.size()))];
    ctx.assign(ready.front(), proc);
  }
}

}  // namespace apt::policies
