#include "policies/static_plan.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace apt::policies {

sim::TimeMs StaticPlan::planned_makespan() const {
  sim::TimeMs m = 0.0;
  for (const PlannedTask& t : tasks) m = std::max(m, t.finish);
  return m;
}

std::vector<std::vector<dag::NodeId>> StaticPlan::per_proc_order(
    std::size_t proc_count) const {
  std::vector<std::vector<dag::NodeId>> order(proc_count);
  std::vector<dag::NodeId> by_start(tasks.size());
  for (dag::NodeId n = 0; n < tasks.size(); ++n) by_start[n] = n;
  std::sort(by_start.begin(), by_start.end(),
            [&](dag::NodeId a, dag::NodeId b) {
              if (tasks[a].start != tasks[b].start)
                return tasks[a].start < tasks[b].start;
              return a < b;
            });
  for (const dag::NodeId n : by_start) {
    const PlannedTask& t = tasks[n];
    if (t.proc >= proc_count)
      throw std::logic_error("StaticPlan: task assigned to unknown processor");
    order[t.proc].push_back(t.node);
  }
  return order;
}

void StaticPolicyBase::prepare(const dag::Dag& dag, const sim::System& system,
                               const sim::CostModel& cost) {
  plan_ = compute_plan(dag, system, cost);
  if (plan_.tasks.size() != dag.node_count())
    throw std::logic_error(name() + ": plan does not cover every kernel");
  order_ = plan_.per_proc_order(system.proc_count());
  next_.assign(system.proc_count(), 0);
}

void StaticPolicyBase::on_event(sim::SchedulerContext& ctx) {
  // Release each processor's next planned kernel once the processor is idle
  // and the kernel's dependencies are satisfied.
  for (sim::ProcId p = 0; p < ctx.system().proc_count(); ++p) {
    if (!ctx.is_idle(p) || next_[p] >= order_[p].size()) continue;
    const dag::NodeId node = order_[p][next_[p]];
    const auto& ready = ctx.ready();
    if (std::find(ready.begin(), ready.end(), node) == ready.end()) continue;
    ctx.assign(node, p);
    ++next_[p];
  }
}

sim::TimeMs earliest_insertion_start(
    const std::vector<std::pair<sim::TimeMs, sim::TimeMs>>& busy,
    sim::TimeMs ready_time, sim::TimeMs duration) {
  sim::TimeMs candidate = ready_time;
  for (const auto& [start, finish] : busy) {
    if (candidate + duration <= start) return candidate;  // fits in this gap
    candidate = std::max(candidate, finish);
  }
  return candidate;  // after the last occupied interval
}

StaticPlan list_schedule(const dag::Dag& dag, const sim::System& system,
                         const sim::CostModel& cost,
                         const std::vector<double>& priority,
                         const ProcScore& score) {
  if (priority.size() != dag.node_count())
    throw std::invalid_argument("list_schedule: priority size mismatch");

  const std::size_t n = dag.node_count();
  StaticPlan plan;
  plan.tasks.resize(n);
  for (dag::NodeId i = 0; i < n; ++i) plan.tasks[i].node = i;

  std::vector<std::vector<std::pair<sim::TimeMs, sim::TimeMs>>> busy(
      system.proc_count());
  std::vector<std::size_t> unscheduled_preds(n);
  std::vector<bool> scheduled(n, false);
  std::vector<dag::NodeId> candidates;
  for (dag::NodeId i = 0; i < n; ++i) {
    unscheduled_preds[i] = dag.in_degree(i);
    if (unscheduled_preds[i] == 0) candidates.push_back(i);
  }

  for (std::size_t placed = 0; placed < n; ++placed) {
    if (candidates.empty())
      throw std::logic_error("list_schedule: no schedulable task (cycle?)");
    // Highest priority among precedence-free tasks; ties -> lower id.
    std::size_t pick = 0;
    for (std::size_t i = 1; i < candidates.size(); ++i) {
      if (priority[candidates[i]] > priority[candidates[pick]]) pick = i;
    }
    const dag::NodeId node = candidates[pick];
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));

    sim::ProcId best_proc = sim::kInvalidProc;
    double best_score = std::numeric_limits<double>::infinity();
    sim::TimeMs best_est = 0.0;
    sim::TimeMs best_eft = 0.0;
    for (const sim::Processor& proc : system.processors()) {
      // Data-ready time with prefetched transfers (classic HEFT semantics).
      sim::TimeMs drt = 0.0;
      for (const dag::NodeId pred : dag.predecessors(node)) {
        const PlannedTask& pt = plan.tasks[pred];
        drt = std::max(drt, pt.finish + cost.transfer_time_ms(
                                            dag, pred, node,
                                            system.processor(pt.proc), proc));
      }
      const sim::TimeMs w = cost.exec_time_ms(dag, node, proc);
      const sim::TimeMs est = earliest_insertion_start(busy[proc.id], drt, w);
      const sim::TimeMs eft = est + w;
      const double s = score(node, proc.id, est, eft);
      if (s < best_score) {
        best_score = s;
        best_proc = proc.id;
        best_est = est;
        best_eft = eft;
      }
    }

    PlannedTask& task = plan.tasks[node];
    task.proc = best_proc;
    task.start = best_est;
    task.finish = best_eft;
    scheduled[node] = true;

    auto& intervals = busy[best_proc];
    intervals.insert(
        std::upper_bound(intervals.begin(), intervals.end(),
                         std::pair<sim::TimeMs, sim::TimeMs>(best_est, best_eft)),
        {best_est, best_eft});

    for (const dag::NodeId succ : dag.successors(node)) {
      if (--unscheduled_preds[succ] == 0) candidates.push_back(succ);
    }
  }
  return plan;
}

}  // namespace apt::policies
