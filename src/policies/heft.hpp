// Heterogeneous Earliest Finish Time (Topcuoglu, Hariri & Wu [16]).
//
// Static list scheduler: tasks are prioritised by *upward rank*
//
//   rank_u(n_i) = w̄_i + max_{n_j ∈ succ(n_i)} ( c̄_ij + rank_u(n_j) )     (Eq. 3)
//
// (w̄ = mean execution time over processors, c̄ = mean communication cost
// over distinct processor pairs), then each task is placed on the processor
// minimising its earliest finish time using insertion-based slot search.
#pragma once

#include <vector>

#include "policies/static_plan.hpp"

namespace apt::policies {

class Heft final : public StaticPolicyBase {
 public:
  std::string name() const override { return "HEFT"; }

 protected:
  StaticPlan compute_plan(const dag::Dag& dag, const sim::System& system,
                          const sim::CostModel& cost) override;
};

/// Upward ranks (Eq. 3/4), exposed for tests against the literature example.
std::vector<double> heft_upward_ranks(const dag::Dag& dag,
                                      const sim::System& system,
                                      const sim::CostModel& cost);

/// Downward ranks (Eq. 5): longest distance from an entry task to n_i,
/// excluding n_i's own cost.
std::vector<double> heft_downward_ranks(const dag::Dag& dag,
                                        const sim::System& system,
                                        const sim::CostModel& cost);

}  // namespace apt::policies
