// Shared processor-selection helpers for the dynamic policies.
#pragma once

#include <optional>

#include "sim/policy.hpp"

namespace apt::policies {

/// Minimum execution time of `node` over *all* processors in the system
/// (busy or not) — the x of the APT threshold and MET's target.
sim::TimeMs min_exec_time_ms(const sim::SchedulerContext& ctx,
                             dag::NodeId node);

/// The processor achieving min_exec_time_ms (ties -> lowest id).
sim::ProcId min_exec_proc(const sim::SchedulerContext& ctx, dag::NodeId node);

/// An *idle* processor whose execution time for `node` equals the global
/// minimum (covers systems with several instances of the best category);
/// nullopt when every optimal processor is busy.
std::optional<sim::ProcId> idle_optimal_proc(const sim::SchedulerContext& ctx,
                                             dag::NodeId node);

/// The idle processor with the smallest execution time for `node`
/// (ties -> lowest id); nullopt when nothing is idle.
std::optional<sim::ProcId> idle_min_exec_proc(const sim::SchedulerContext& ctx,
                                              dag::NodeId node);

}  // namespace apt::policies
