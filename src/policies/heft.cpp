#include "policies/heft.hpp"

#include <algorithm>

namespace apt::policies {

std::vector<double> heft_upward_ranks(const dag::Dag& dag,
                                      const sim::System& system,
                                      const sim::CostModel& cost) {
  const auto topo = dag.topological_order();
  std::vector<double> rank(dag.node_count(), 0.0);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const dag::NodeId n = *it;
    double tail = 0.0;
    for (const dag::NodeId s : dag.successors(n)) {
      tail = std::max(tail,
                      cost.average_transfer_time_ms(dag, n, s, system) + rank[s]);
    }
    rank[n] = cost.average_exec_time_ms(dag, n, system) + tail;
  }
  return rank;
}

std::vector<double> heft_downward_ranks(const dag::Dag& dag,
                                        const sim::System& system,
                                        const sim::CostModel& cost) {
  std::vector<double> rank(dag.node_count(), 0.0);
  for (const dag::NodeId n : dag.topological_order()) {
    for (const dag::NodeId p : dag.predecessors(n)) {
      rank[n] = std::max(
          rank[n], rank[p] + cost.average_exec_time_ms(dag, p, system) +
                       cost.average_transfer_time_ms(dag, p, n, system));
    }
  }
  return rank;
}

StaticPlan Heft::compute_plan(const dag::Dag& dag, const sim::System& system,
                              const sim::CostModel& cost) {
  const std::vector<double> rank = heft_upward_ranks(dag, system, cost);
  // Processor selection: minimise the earliest finish time.
  return list_schedule(dag, system, cost, rank,
                       [](dag::NodeId, sim::ProcId, sim::TimeMs,
                          sim::TimeMs eft) { return eft; });
}

}  // namespace apt::policies
