#include "policies/spn.hpp"

namespace apt::policies {

void Spn::on_event(sim::SchedulerContext& ctx) {
  for (;;) {
    const auto& ready = ctx.ready();
    const auto& idle = ctx.idle_processors();
    if (ready.empty() || idle.empty()) return;

    dag::NodeId best_node = dag::kInvalidNode;
    sim::ProcId best_proc = sim::kInvalidProc;
    sim::TimeMs best_time = 0.0;
    // Ties resolve to the earliest-arrived kernel and lowest processor id.
    for (const dag::NodeId node : ready) {
      for (const sim::ProcId proc : idle) {
        const sim::TimeMs t = ctx.exec_time_ms(node, proc);
        if (best_node == dag::kInvalidNode || t < best_time) {
          best_node = node;
          best_proc = proc;
          best_time = t;
        }
      }
    }
    ctx.assign(best_node, best_proc);
  }
}

}  // namespace apt::policies
