// Opportunistic Load Balancing (Braun et al. [19]).
//
// The simplest baseline the thesis mentions: assign each ready kernel, in
// arrival order, to the next available processor without looking at
// execution times at all. Included as a sanity floor for the benches.
#pragma once

#include "sim/policy.hpp"

namespace apt::policies {

class Olb final : public sim::Policy {
 public:
  std::string name() const override { return "OLB"; }
  bool is_dynamic() const override { return true; }
  void on_event(sim::SchedulerContext& ctx) override;
};

}  // namespace apt::policies
