#include "policies/olb.hpp"

namespace apt::policies {

void Olb::on_event(sim::SchedulerContext& ctx) {
  for (;;) {
    const auto& ready = ctx.ready();
    const auto& idle = ctx.idle_processors();
    if (ready.empty() || idle.empty()) return;
    ctx.assign(ready.front(), idle.front());
  }
}

}  // namespace apt::policies
