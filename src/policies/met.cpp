#include "policies/met.hpp"

#include "policies/selection.hpp"

namespace apt::policies {

void Met::on_event(sim::SchedulerContext& ctx) {
  // Saturation fast path: idle_optimal_proc can only answer from the idle
  // set, and assignments only consume idle processors — an empty idle set
  // makes the rest of the pass a provable no-op, so skip it.
  if (ctx.idle_processors().empty()) return;
  // Snapshot: assign() mutates the ready list. A single pass suffices —
  // assignments only consume idle processors, never create them.
  const std::vector<dag::NodeId> ready = ctx.ready();
  for (const dag::NodeId node : ready) {
    if (ctx.idle_processors().empty()) break;
    if (const auto proc = idle_optimal_proc(ctx, node)) {
      ctx.assign(node, *proc);
    }
    // Otherwise: wait for the optimal processor to free up.
  }
}

}  // namespace apt::policies
