// Minimum Execution Time / "best only" (Braun et al. [19]; thesis §2.5.3).
//
// Each ready kernel is bound to the processor with the smallest execution
// time for it. If every such processor is busy, the kernel *waits* — MET
// never settles for second best, maximising per-kernel affinity at the cost
// of idle alternative processors. The thesis uses deterministic FIFO
// (arrival) order instead of Braun's random order; APT uses the same order,
// which makes the APT-vs-MET comparison exact.
#pragma once

#include "sim/policy.hpp"

namespace apt::policies {

class Met final : public sim::Policy {
 public:
  std::string name() const override { return "MET"; }
  bool is_dynamic() const override { return true; }
  void on_event(sim::SchedulerContext& ctx) override;
};

}  // namespace apt::policies
