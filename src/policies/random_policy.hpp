// Random assignment baseline: each ready kernel goes to a uniformly random
// idle processor. Deterministic per seed. Useful as a statistical floor in
// ablations and as a stress generator in property tests.
#pragma once

#include <cstdint>

#include "sim/policy.hpp"
#include "util/rng.hpp"

namespace apt::policies {

class RandomPolicy final : public sim::Policy {
 public:
  explicit RandomPolicy(std::uint64_t seed = 42) : seed_(seed), rng_(seed) {}

  std::string name() const override { return "Random"; }
  bool is_dynamic() const override { return true; }

  void prepare(const dag::Dag&, const sim::System&,
               const sim::CostModel&) override {
    rng_ = util::Rng(seed_);  // same seed -> same schedule every run
  }

  void on_event(sim::SchedulerContext& ctx) override;

 private:
  std::uint64_t seed_;
  util::Rng rng_;
};

}  // namespace apt::policies
