// Shortest Process Next (Khokhar et al. [6]; thesis §2.5.3).
//
// While there are ready kernels and available processors, pick the
// (kernel, idle processor) pair with the globally smallest execution time
// and assign it. Keeps the system maximally busy but ignores how much worse
// the chosen processor is than the kernel's best one.
#pragma once

#include "sim/policy.hpp"

namespace apt::policies {

class Spn final : public sim::Policy {
 public:
  std::string name() const override { return "SPN"; }
  bool is_dynamic() const override { return true; }
  void on_event(sim::SchedulerContext& ctx) override;
};

}  // namespace apt::policies
