#include "policies/batch_mode.hpp"

#include <cmath>
#include <limits>

namespace apt::policies {

const char* to_string(BatchRule rule) noexcept {
  switch (rule) {
    case BatchRule::MinMin: return "Min-Min";
    case BatchRule::MaxMin: return "Max-Min";
    case BatchRule::Sufferage: return "Sufferage";
  }
  return "?";
}

namespace {

struct Candidate {
  sim::ProcId best_proc = sim::kInvalidProc;
  sim::TimeMs best_cost = std::numeric_limits<sim::TimeMs>::infinity();
  sim::TimeMs second_cost = std::numeric_limits<sim::TimeMs>::infinity();

  sim::TimeMs sufferage() const noexcept {
    // With a single available processor there is no second option and the
    // kernel cannot "suffer" — 0 makes every kernel tie (FIFO wins).
    return std::isinf(second_cost) ? 0.0 : second_cost - best_cost;
  }
};

Candidate evaluate(const sim::SchedulerContext& ctx, dag::NodeId node,
                   const std::vector<sim::ProcId>& idle) {
  Candidate c;
  for (const sim::ProcId proc : idle) {
    const sim::TimeMs cost = ctx.exec_time_ms(node, proc) +
                             ctx.transfer_estimate(node, proc).stall_ms;
    if (cost < c.best_cost) {
      c.second_cost = c.best_cost;
      c.best_cost = cost;
      c.best_proc = proc;
    } else if (cost < c.second_cost) {
      c.second_cost = cost;
    }
  }
  return c;
}

}  // namespace

void BatchMode::on_event(sim::SchedulerContext& ctx) {
  for (;;) {
    const auto& ready = ctx.ready();
    const auto& idle = ctx.idle_processors();
    if (ready.empty() || idle.empty()) return;

    dag::NodeId chosen = dag::kInvalidNode;
    Candidate chosen_cand;
    double chosen_key = 0.0;
    bool first = true;
    for (const dag::NodeId node : ready) {
      const Candidate cand = evaluate(ctx, node, idle);
      double key = 0.0;
      bool better = false;
      switch (rule_) {
        case BatchRule::MinMin:
          key = cand.best_cost;
          better = first || key < chosen_key;
          break;
        case BatchRule::MaxMin:
          key = cand.best_cost;
          better = first || key > chosen_key;
          break;
        case BatchRule::Sufferage:
          key = cand.sufferage();
          better = first || key > chosen_key;
          break;
      }
      if (better) {
        chosen = node;
        chosen_cand = cand;
        chosen_key = key;
        first = false;
      }
    }
    ctx.assign(chosen, chosen_cand.best_proc);
  }
}

}  // namespace apt::policies
