// Static (plan-ahead) scheduling infrastructure shared by HEFT and PEFT.
//
// A static policy sees the whole DAG up front (thesis §2.5.2), computes a
// complete kernel→processor plan with predicted start/finish times, and the
// engine then *executes* that plan: each processor runs its planned kernels
// in planned-start order, starting each as soon as the processor is free and
// the kernel's dependencies (plus prefetched transfers) allow. Because the
// planner and the engine share the cost model and transfer semantics, the
// simulated schedule reproduces the planned one exactly — an invariant the
// test suite checks.
#pragma once

#include <functional>
#include <vector>

#include "sim/policy.hpp"

namespace apt::policies {

/// One planned task placement.
struct PlannedTask {
  dag::NodeId node = dag::kInvalidNode;
  sim::ProcId proc = sim::kInvalidProc;
  sim::TimeMs start = 0.0;   ///< predicted execution start (EST)
  sim::TimeMs finish = 0.0;  ///< predicted finish (EFT)
};

/// A full static schedule.
struct StaticPlan {
  std::vector<PlannedTask> tasks;  ///< indexed by node id

  sim::TimeMs planned_makespan() const;

  /// Per-processor node sequences sorted by planned start — the execution
  /// order the engine-side executor follows.
  std::vector<std::vector<dag::NodeId>> per_proc_order(
      std::size_t proc_count) const;
};

/// Base class: subclasses implement compute_plan(); execution is shared.
class StaticPolicyBase : public sim::Policy {
 public:
  bool is_dynamic() const final { return false; }

  void prepare(const dag::Dag& dag, const sim::System& system,
               const sim::CostModel& cost) final;

  void on_event(sim::SchedulerContext& ctx) final;

  /// The plan computed by the last prepare() (empty before any run).
  const StaticPlan& plan() const noexcept { return plan_; }

 protected:
  virtual StaticPlan compute_plan(const dag::Dag& dag,
                                  const sim::System& system,
                                  const sim::CostModel& cost) = 0;

 private:
  StaticPlan plan_;
  std::vector<std::vector<dag::NodeId>> order_;  // per proc, planned order
  std::vector<std::size_t> next_;                // cursor per proc
};

// --- List-scheduling machinery ------------------------------------------------

/// Insertion-based earliest-start search: the earliest t >= ready_time at
/// which a task of length `duration` fits on a processor whose occupied
/// intervals are `busy` (sorted by start, non-overlapping) — HEFT's
/// insertion policy.
sim::TimeMs earliest_insertion_start(
    const std::vector<std::pair<sim::TimeMs, sim::TimeMs>>& busy,
    sim::TimeMs ready_time, sim::TimeMs duration);

/// Scoring hook for processor selection: given the candidate processor and
/// its insertion-based EST/EFT for the task, return the value to minimise
/// (HEFT: EFT itself; PEFT: EFT + OCT). Ties resolve to the lower proc id.
using ProcScore = std::function<double(dag::NodeId node, sim::ProcId proc,
                                       sim::TimeMs est, sim::TimeMs eft)>;

/// Generic priority-list scheduler: repeatedly takes the unscheduled task
/// with the highest priority among those whose predecessors are all
/// scheduled (ties -> lower node id), and places it on the processor
/// minimising `score` using insertion-based ESTs with prefetched transfers.
StaticPlan list_schedule(const dag::Dag& dag, const sim::System& system,
                         const sim::CostModel& cost,
                         const std::vector<double>& priority,
                         const ProcScore& score);

}  // namespace apt::policies
