#include "policies/ss.hpp"

#include "util/stats.hpp"

namespace apt::policies {

void SerialScheduling::on_event(sim::SchedulerContext& ctx) {
  for (;;) {
    const auto& ready = ctx.ready();
    const auto& idle = ctx.idle_processors();
    if (ready.empty() || idle.empty()) return;

    // Highest stddev of execution time across the currently idle
    // processors wins; FIFO order breaks ties.
    dag::NodeId best_node = dag::kInvalidNode;
    double best_stddev = -1.0;
    for (const dag::NodeId node : ready) {
      util::RunningStats stats;
      for (const sim::ProcId proc : idle) stats.add(ctx.exec_time_ms(node, proc));
      if (stats.stddev() > best_stddev) {
        best_stddev = stats.stddev();
        best_node = node;
      }
    }

    sim::ProcId best_proc = idle.front();
    for (const sim::ProcId proc : idle) {
      if (ctx.exec_time_ms(best_node, proc) <
          ctx.exec_time_ms(best_node, best_proc))
        best_proc = proc;
    }
    ctx.assign(best_node, best_proc);
  }
}

}  // namespace apt::policies
