#include "policies/ag.hpp"

#include <stdexcept>

namespace apt::policies {

AdaptiveGreedy::AdaptiveGreedy(AgOptions options) : options_(options) {
  if (options_.history_window == 0)
    throw std::invalid_argument("AdaptiveGreedy: history_window must be >= 1");
}

sim::TimeMs AdaptiveGreedy::queue_delay_ms(const sim::SchedulerContext& ctx,
                                           sim::ProcId proc) const {
  switch (options_.estimate) {
    case AgQueueEstimate::SumOfQueued:
      return ctx.queued_work_ms(proc);
    case AgQueueEstimate::RecentAverage: {
      const std::size_t in_flight =
          ctx.queue_length(proc) + (ctx.is_idle(proc) ? 0 : 1);
      return static_cast<double>(in_flight) *
             ctx.recent_avg_exec_ms(proc, options_.history_window);
    }
  }
  return 0.0;
}

void AdaptiveGreedy::on_event(sim::SchedulerContext& ctx) {
  // AG commits every ready kernel to some processor queue immediately —
  // it never leaves work unqueued (thesis Table 2: "never waits" = No, but
  // the *scheduler* always acts; waiting happens inside the queues).
  const std::vector<dag::NodeId> ready = ctx.ready();
  for (const dag::NodeId node : ready) {
    sim::ProcId best = 0;
    sim::TimeMs best_tau = 0.0;
    for (sim::ProcId proc = 0; proc < ctx.system().proc_count(); ++proc) {
      // τ_g^d: comm-blind AG plans against the unloaded route (stall_ms,
      // the legacy scalar); AG-net adds the predicted link backlog — the
      // fabric analogue of τ_g^q.
      const sim::TransferEstimate est = ctx.transfer_estimate(node, proc);
      const sim::TimeMs tau =
          queue_delay_ms(ctx, proc) +
          (options_.comm_aware ? est.total_ms() : est.stall_ms);
      if (proc == 0 || tau < best_tau) {
        best = proc;
        best_tau = tau;
      }
    }
    ctx.enqueue(node, best);
  }
}

}  // namespace apt::policies
