// The thesis's measured execution-time data (Appendix A, Table 14), i.e. the
// "complete lookup table" the simulator and every policy consume. Times are
// milliseconds on the platform categories of Table 6 (Intel i7-2600 CPU,
// Nvidia Tesla K20 GPU, Xilinx Virtex-7 FPGA for the linear-algebra kernels;
// AMD Opteron / Radeon HD 6550D / Virtex-6 for the OpenCL dwarf kernels).
#pragma once

#include <cstdint>
#include <vector>

#include "lut/lookup_table.hpp"

namespace apt::lut {

/// Returns the full Table 14 lookup table: 21 linear-algebra rows
/// (mm / mi / cd at 7 data sizes) plus nw, bfs, srad, gem at their single
/// measured sizes — 25 rows total.
LookupTable paper_lookup_table();

/// Data sizes (element counts) at which mm / mi / cd were measured.
const std::vector<std::uint64_t>& paper_linear_algebra_sizes();

/// The single measured data size of each dwarf kernel:
/// nw=16777216, bfs=2034736, srad=134217728, gem=2070376.
std::uint64_t paper_dwarf_size(const std::string& kernel);

}  // namespace apt::lut
