// The kernel-cost lookup table (thesis §3.1, Table 3 / Table 14).
//
// Every scheduling policy in the paper consults a table of measured kernel
// execution times, keyed by (kernel name, data size) and giving one time per
// processor category. This module provides that table as a first-class value
// type with CSV round-tripping and the queries the policies need
// (best processor, sorted alternatives, execution time).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "lut/proc_type.hpp"

namespace apt::lut {

/// Execution times (milliseconds) of one kernel at one data size on each
/// processor category.
struct Entry {
  std::string kernel;      ///< canonical lower-case kernel name, e.g. "mm"
  std::uint64_t data_size; ///< problem size in elements (as in Table 14)
  std::array<double, kNumProcTypes> time_ms{};  ///< indexed by ProcType

  double time(ProcType type) const noexcept { return time_ms[index_of(type)]; }
};

/// Immutable-after-build table of Entry rows with exact and nearest-size
/// queries. Kernel names are canonicalised to lower case.
class LookupTable {
 public:
  LookupTable() = default;

  /// Adds a row; throws std::invalid_argument on duplicate (kernel,size)
  /// or non-positive times.
  void add(Entry entry);

  std::size_t size() const noexcept { return ordered_.size(); }
  bool empty() const noexcept { return ordered_.empty(); }

  bool contains(const std::string& kernel, std::uint64_t data_size) const;

  /// Exact lookup; throws std::out_of_range if the row is absent.
  const Entry& at(const std::string& kernel, std::uint64_t data_size) const;

  /// Exact execution time; throws std::out_of_range if absent.
  double exec_time_ms(const std::string& kernel, std::uint64_t data_size,
                      ProcType type) const;

  /// Entry for the kernel whose data size is nearest (in log-space when both
  /// sizes are positive) to `data_size`. Throws std::out_of_range when the
  /// kernel has no rows at all.
  const Entry& nearest(const std::string& kernel, std::uint64_t data_size) const;

  /// Processor category with minimal execution time for the row
  /// (ties broken toward the lower ProcType index, i.e. CPU < GPU < FPGA).
  ProcType best_processor(const std::string& kernel,
                          std::uint64_t data_size) const;

  /// All processor categories sorted by ascending execution time for the row
  /// (stable tie-break on ProcType index).
  std::vector<ProcType> processors_by_time(const std::string& kernel,
                                           std::uint64_t data_size) const;

  /// Ratio of worst to best time for the row: a per-kernel measure of the
  /// system's degree of heterogeneity (≥ 1).
  double heterogeneity(const std::string& kernel,
                       std::uint64_t data_size) const;

  /// Distinct kernel names, sorted.
  std::vector<std::string> kernels() const;

  /// Data sizes available for a kernel, ascending; empty if unknown kernel.
  std::vector<std::uint64_t> sizes_for(const std::string& kernel) const;

  /// All rows in (kernel, size) order.
  const std::vector<Entry>& entries() const noexcept { return ordered_; }

  /// CSV round-trip. Columns: kernel,data_size,cpu_ms,gpu_ms,fpga_ms.
  std::string to_csv() const;
  static LookupTable from_csv(const std::string& text);
  static LookupTable from_csv_file(const std::string& path);
  void save_csv_file(const std::string& path) const;

 private:
  using Key = std::pair<std::string, std::uint64_t>;
  std::map<Key, std::size_t> index_;  // -> position in ordered_
  std::vector<Entry> ordered_;
};

/// Canonical kernel short names used throughout the project
/// (Table 5 / Appendix key of the thesis).
namespace kernels {
inline constexpr const char* kMatMul = "mm";    ///< Matrix-matrix multiplication
inline constexpr const char* kMatInv = "mi";    ///< Matrix inverse
inline constexpr const char* kCholesky = "cd";  ///< Cholesky decomposition
inline constexpr const char* kNeedlemanWunsch = "nw";
inline constexpr const char* kBfs = "bfs";
inline constexpr const char* kSrad = "srad";
inline constexpr const char* kGem = "gem";
}  // namespace kernels

/// Summary of a table's degree of heterogeneity (the quantity the thesis
/// argues α must be tuned to): geometric mean over all rows of the
/// worst/best execution-time ratio. 1 = homogeneous; the paper table is
/// extremely heterogeneous (dominated by mm's 10^6 GPU advantage).
double geometric_mean_heterogeneity(const LookupTable& table);

/// Median per-row heterogeneity ratio — robust to mm's extreme rows.
double median_heterogeneity(const LookupTable& table);

/// Canonicalises a kernel name: trims, lower-cases, and maps the long names
/// used in the thesis tables ("Matrix Multiplication", "Cholesky
/// Decomposition", ...) onto the short names above. Unknown names pass
/// through lower-cased.
std::string canonical_kernel_name(const std::string& name);

}  // namespace apt::lut
