// Synthetic lookup tables: samplable platforms.
//
// The paper evaluates everything on one measured table (Table 14), so its
// conclusions are tied to that platform's particular heterogeneity and
// communication profile. This module makes the *platform* a seeded sample,
// like the workload: a generator parameterised by the two knobs the
// scheduling literature sweeps — processor heterogeneity (worst/best
// execution-time ratio per row) and the communication-to-computation ratio
// (CCR) — so scenario sweeps can cover the platform cube too.
#pragma once

#include <cstdint>

#include "lut/lookup_table.hpp"

namespace apt::lut {

/// Parameters of a synthetic platform table. Generation is fully
/// deterministic per spec (same spec, byte-identical table).
struct SyntheticLutSpec {
  std::size_t kernel_count = 7;      ///< kernels "syn0".."syn<k-1>"
  std::size_t sizes_per_kernel = 3;  ///< rows per kernel

  /// Target worst/best execution-time ratio of every row (>= 1). Each row
  /// hits this ratio exactly: the fastest category gets the base time, the
  /// slowest base*heterogeneity, the middle a log-uniform draw between, and
  /// the category order is shuffled per row. 1 = homogeneous platform.
  double heterogeneity = 4.0;

  /// Target mean ratio of output-transfer time (at `link_rate_gbps`) to the
  /// row's mean execution time (>= 0). Data sizes are calibrated per row:
  /// size = ccr * mean_exec * rate / bytes_per_element. 0 = free
  /// communication, >> 1 = transfer-dominated.
  double ccr = 0.5;

  double mean_exec_ms = 100.0;  ///< geometric centre of the row base times
  double spread = 8.0;          ///< max/min ratio of base times (>= 1)
  double link_rate_gbps = 4.0;  ///< link rate the CCR is calibrated against
  double bytes_per_element = 4.0;
  std::uint64_t seed = 1;
};

/// Builds the table described by `spec`; throws std::invalid_argument on
/// out-of-range parameters.
LookupTable synthetic_lookup_table(const SyntheticLutSpec& spec);

/// Measured CCR of a table: mean over rows of (output transfer time at
/// `link_rate_gbps`) / (mean execution time across categories). The inverse
/// check of SyntheticLutSpec::ccr, also useful for characterising measured
/// tables like the paper's.
double mean_ccr(const LookupTable& table, double link_rate_gbps,
                double bytes_per_element = 4.0);

}  // namespace apt::lut
