#include "lut/paper_data.hpp"

#include <stdexcept>

namespace apt::lut {

namespace {

constexpr std::size_t C = index_of(ProcType::CPU);
constexpr std::size_t G = index_of(ProcType::GPU);
constexpr std::size_t F = index_of(ProcType::FPGA);

Entry row(const char* kernel, std::uint64_t size, double cpu, double gpu,
          double fpga) {
  Entry e;
  e.kernel = kernel;
  e.data_size = size;
  e.time_ms[C] = cpu;
  e.time_ms[G] = gpu;
  e.time_ms[F] = fpga;
  return e;
}

}  // namespace

LookupTable paper_lookup_table() {
  LookupTable lut;
  // --- Matrix-matrix multiplication (Skalicky et al.) -----------------------
  lut.add(row(kernels::kMatMul, 250000, 29.631, 0.062, 149.011));
  lut.add(row(kernels::kMatMul, 698896, 131.183, 0.061, 696.512));
  lut.add(row(kernels::kMatMul, 1000000, 220.806, 0.061, 1192.092));
  lut.add(row(kernels::kMatMul, 4000000, 259.291, 0.062, 9536.743));
  lut.add(row(kernels::kMatMul, 16000000, 1967.286, 0.061, 76293.945));
  lut.add(row(kernels::kMatMul, 36000000, 6676.706, 0.106, 257492.065));
  lut.add(row(kernels::kMatMul, 64000000, 15487.652, 0.147, 610351.562));
  // --- Matrix inverse --------------------------------------------------------
  lut.add(row(kernels::kMatInv, 250000, 42.952, 9.652, 24.247));
  lut.add(row(kernels::kMatInv, 698896, 148.387, 22.352, 110.597));
  lut.add(row(kernels::kMatInv, 1000000, 235.810, 29.078, 188.188));
  lut.add(row(kernels::kMatInv, 4000000, 432.330, 129.156, 1482.717));
  lut.add(row(kernels::kMatInv, 16000000, 40636.878, 596.582, 11770.520));
  lut.add(row(kernels::kMatInv, 36000000, 133917.655, 1702.537, 39623.932));
  lut.add(row(kernels::kMatInv, 64000000, 312902.299, 3600.423, 93802.080));
  // --- Cholesky decomposition ------------------------------------------------
  lut.add(row(kernels::kCholesky, 250000, 17.064, 2.749, 0.093));
  lut.add(row(kernels::kCholesky, 698896, 86.585, 4.940, 0.258));
  lut.add(row(kernels::kCholesky, 1000000, 6.284, 6.453, 0.361));
  lut.add(row(kernels::kCholesky, 4000000, 86.585, 21.219, 1.382));
  lut.add(row(kernels::kCholesky, 16000000, 60.806, 90.581, 5.407));
  lut.add(row(kernels::kCholesky, 36000000, 132.677, 220.819, 12.194));
  lut.add(row(kernels::kCholesky, 64000000, 307.539, 458.603, 21.543));
  // --- OpenCL dwarf kernels (Krommydas et al.), one size each ----------------
  lut.add(row(kernels::kNeedlemanWunsch, 16777216, 112.0, 146.0, 397.0));
  lut.add(row(kernels::kBfs, 2034736, 332.0, 173.0, 106.0));
  lut.add(row(kernels::kSrad, 134217728, 5092.0, 1600.0, 92287.0));
  lut.add(row(kernels::kGem, 2070376, 21592.0, 4001.0, 585760.0));
  return lut;
}

const std::vector<std::uint64_t>& paper_linear_algebra_sizes() {
  static const std::vector<std::uint64_t> sizes = {
      250000, 698896, 1000000, 4000000, 16000000, 36000000, 64000000};
  return sizes;
}

std::uint64_t paper_dwarf_size(const std::string& kernel) {
  const std::string name = canonical_kernel_name(kernel);
  if (name == kernels::kNeedlemanWunsch) return 16777216;
  if (name == kernels::kBfs) return 2034736;
  if (name == kernels::kSrad) return 134217728;
  if (name == kernels::kGem) return 2070376;
  throw std::invalid_argument("paper_dwarf_size: '" + kernel +
                              "' is not a single-size dwarf kernel");
}

}  // namespace apt::lut
