// Processor categories of the heterogeneous system under study.
//
// The thesis generalises measured execution times to the *category* of the
// platform (CPU / GPU / FPGA), not a specific part number (§3.2): "we will
// assume that this is the execution time for the category CPU, irrespective
// of the exact CPU configuration". The lookup table is therefore keyed by
// ProcType, while the simulator may instantiate any number of processors of
// each type.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace apt::lut {

enum class ProcType : std::uint8_t { CPU = 0, GPU = 1, FPGA = 2 };

inline constexpr std::size_t kNumProcTypes = 3;

inline constexpr std::array<ProcType, kNumProcTypes> kAllProcTypes = {
    ProcType::CPU, ProcType::GPU, ProcType::FPGA};

constexpr const char* to_string(ProcType type) noexcept {
  switch (type) {
    case ProcType::CPU: return "CPU";
    case ProcType::GPU: return "GPU";
    case ProcType::FPGA: return "FPGA";
  }
  return "?";
}

/// Parses "CPU"/"GPU"/"FPGA" (case-insensitive); throws on anything else.
ProcType proc_type_from_string(const std::string& name);

constexpr std::size_t index_of(ProcType type) noexcept {
  return static_cast<std::size_t>(type);
}

}  // namespace apt::lut
