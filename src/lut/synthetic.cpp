#include "lut/synthetic.hpp"

#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace apt::lut {

namespace {

void check_spec(const SyntheticLutSpec& spec) {
  if (spec.kernel_count == 0)
    throw std::invalid_argument("synthetic_lookup_table: kernel_count >= 1");
  if (spec.sizes_per_kernel == 0)
    throw std::invalid_argument(
        "synthetic_lookup_table: sizes_per_kernel >= 1");
  if (!(spec.heterogeneity >= 1.0))
    throw std::invalid_argument(
        "synthetic_lookup_table: heterogeneity must be >= 1");
  if (!(spec.ccr >= 0.0))
    throw std::invalid_argument("synthetic_lookup_table: ccr must be >= 0");
  if (!(spec.mean_exec_ms > 0.0))
    throw std::invalid_argument(
        "synthetic_lookup_table: mean_exec_ms must be > 0");
  if (!(spec.spread >= 1.0))
    throw std::invalid_argument("synthetic_lookup_table: spread must be >= 1");
  if (!(spec.link_rate_gbps > 0.0))
    throw std::invalid_argument(
        "synthetic_lookup_table: link_rate_gbps must be > 0");
  if (!(spec.bytes_per_element > 0.0))
    throw std::invalid_argument(
        "synthetic_lookup_table: bytes_per_element must be > 0");
}

// The fastest/middle/slowest row construction below assumes the three
// processor categories of the thesis.
static_assert(kNumProcTypes == 3);

}  // namespace

LookupTable synthetic_lookup_table(const SyntheticLutSpec& spec) {
  check_spec(spec);
  util::Rng rng(spec.seed ^ 0x5E1FC7AB91E50D37ULL);
  LookupTable table;
  const double half_log_spread = 0.5 * std::log(spec.spread);
  for (std::size_t k = 0; k < spec.kernel_count; ++k) {
    const std::string kernel = "syn" + std::to_string(k);
    std::set<std::uint64_t> used_sizes;
    for (std::size_t s = 0; s < spec.sizes_per_kernel; ++s) {
      const double base =
          spec.spread > 1.0
              ? spec.mean_exec_ms *
                    std::exp(rng.uniform_real(-half_log_spread,
                                              half_log_spread))
              : spec.mean_exec_ms;
      // Fastest category runs at `base`, slowest at base*heterogeneity, the
      // middle one log-uniform in between; which category is which is a
      // fresh shuffle per row.
      std::vector<std::size_t> order = {0, 1, 2};
      rng.shuffle(order);
      Entry entry;
      entry.kernel = kernel;
      entry.time_ms[order[0]] = base;
      entry.time_ms[order[1]] =
          spec.heterogeneity > 1.0
              ? base * std::exp(std::log(spec.heterogeneity) * rng.uniform01())
              : base;
      entry.time_ms[order[2]] = base * spec.heterogeneity;
      // Calibrate the row's output size so that moving it over the link
      // costs ccr × the row's mean execution time (transfer_ms =
      // bytes / (rate_GBps * 1e6) — see Interconnect::transfer_time_ms).
      const double mean_time =
          (entry.time_ms[0] + entry.time_ms[1] + entry.time_ms[2]) / 3.0;
      std::uint64_t size = static_cast<std::uint64_t>(std::llround(
          spec.ccr * mean_time * spec.link_rate_gbps * 1e6 /
          spec.bytes_per_element));
      while (used_sizes.count(size) != 0) ++size;  // keys must be unique
      used_sizes.insert(size);
      entry.data_size = size;
      table.add(std::move(entry));
    }
  }
  return table;
}

double mean_ccr(const LookupTable& table, double link_rate_gbps,
                double bytes_per_element) {
  if (!(link_rate_gbps > 0.0) || !(bytes_per_element > 0.0))
    throw std::invalid_argument("mean_ccr: rate and element size must be > 0");
  if (table.empty()) return 0.0;
  double sum = 0.0;
  for (const Entry& e : table.entries()) {
    const double transfer_ms = static_cast<double>(e.data_size) *
                               bytes_per_element / (link_rate_gbps * 1e6);
    const double mean_time =
        (e.time_ms[0] + e.time_ms[1] + e.time_ms[2]) / 3.0;
    sum += transfer_ms / mean_time;
  }
  return sum / static_cast<double>(table.size());
}

}  // namespace apt::lut
