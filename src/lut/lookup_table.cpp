#include "lut/lookup_table.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/string_utils.hpp"

namespace apt::lut {

ProcType proc_type_from_string(const std::string& name) {
  const std::string n = util::to_lower(util::trim(name));
  if (n == "cpu") return ProcType::CPU;
  if (n == "gpu") return ProcType::GPU;
  if (n == "fpga") return ProcType::FPGA;
  throw std::invalid_argument("proc_type_from_string: unknown type '" + name + "'");
}

std::string canonical_kernel_name(const std::string& name) {
  std::string n = util::to_lower(util::trim(name));
  // Collapse spaces/hyphens so "Matrix - Matrix Multiplication" variants match.
  std::string squeezed;
  for (char c : n) {
    if (c == ' ' || c == '-' || c == '_') continue;
    squeezed.push_back(c);
  }
  if (squeezed == "matrixmultiplication" || squeezed == "matrixmatrixmultiplication" ||
      squeezed == "matmul" || squeezed == "mat.mat.multi." || squeezed == "mm")
    return kernels::kMatMul;
  if (squeezed == "matrixinverse" || squeezed == "matrixinversion" || squeezed == "mi")
    return kernels::kMatInv;
  if (squeezed == "choleskydecomposition" || squeezed == "choleskydeco." ||
      squeezed == "choleskydecomp." || squeezed == "cholesky" || squeezed == "cd")
    return kernels::kCholesky;
  if (squeezed == "needlemanwunsch" || squeezed == "nw") return kernels::kNeedlemanWunsch;
  if (squeezed == "breadthfirstsearch" || squeezed == "bfs") return kernels::kBfs;
  if (squeezed == "specklereducinganisotropicdiffusion" || squeezed == "srad")
    return kernels::kSrad;
  if (squeezed == "gaussianelectrostaticmodel" || squeezed == "gem")
    return kernels::kGem;
  return n;
}

void LookupTable::add(Entry entry) {
  entry.kernel = canonical_kernel_name(entry.kernel);
  if (entry.kernel.empty())
    throw std::invalid_argument("LookupTable::add: empty kernel name");
  for (const double t : entry.time_ms) {
    if (!(t > 0.0) || !std::isfinite(t))
      throw std::invalid_argument(
          "LookupTable::add: times must be positive and finite (kernel '" +
          entry.kernel + "')");
  }
  const Key key{entry.kernel, entry.data_size};
  if (index_.count(key) != 0)
    throw std::invalid_argument("LookupTable::add: duplicate row for kernel '" +
                                entry.kernel + "' size " +
                                std::to_string(entry.data_size));
  index_.emplace(key, ordered_.size());
  ordered_.push_back(std::move(entry));
}

bool LookupTable::contains(const std::string& kernel,
                           std::uint64_t data_size) const {
  return index_.count({canonical_kernel_name(kernel), data_size}) != 0;
}

const Entry& LookupTable::at(const std::string& kernel,
                             std::uint64_t data_size) const {
  const auto it = index_.find({canonical_kernel_name(kernel), data_size});
  if (it == index_.end())
    throw std::out_of_range("LookupTable: no row for kernel '" + kernel +
                            "' size " + std::to_string(data_size));
  return ordered_[it->second];
}

double LookupTable::exec_time_ms(const std::string& kernel,
                                 std::uint64_t data_size, ProcType type) const {
  return at(kernel, data_size).time(type);
}

const Entry& LookupTable::nearest(const std::string& kernel,
                                  std::uint64_t data_size) const {
  const std::string name = canonical_kernel_name(kernel);
  const Entry* best = nullptr;
  double best_dist = 0.0;
  for (const Entry& e : ordered_) {
    if (e.kernel != name) continue;
    // log-space distance keeps "nearest" scale-aware across decades of sizes.
    const double a = std::log(static_cast<double>(std::max<std::uint64_t>(e.data_size, 1)));
    const double b = std::log(static_cast<double>(std::max<std::uint64_t>(data_size, 1)));
    const double dist = std::abs(a - b);
    if (best == nullptr || dist < best_dist) {
      best = &e;
      best_dist = dist;
    }
  }
  if (best == nullptr)
    throw std::out_of_range("LookupTable::nearest: unknown kernel '" + kernel + "'");
  return *best;
}

ProcType LookupTable::best_processor(const std::string& kernel,
                                     std::uint64_t data_size) const {
  const Entry& e = at(kernel, data_size);
  ProcType best = ProcType::CPU;
  for (ProcType p : kAllProcTypes) {
    if (e.time(p) < e.time(best)) best = p;
  }
  return best;
}

std::vector<ProcType> LookupTable::processors_by_time(
    const std::string& kernel, std::uint64_t data_size) const {
  const Entry& e = at(kernel, data_size);
  std::vector<ProcType> order(kAllProcTypes.begin(), kAllProcTypes.end());
  std::stable_sort(order.begin(), order.end(), [&](ProcType a, ProcType b) {
    return e.time(a) < e.time(b);
  });
  return order;
}

double LookupTable::heterogeneity(const std::string& kernel,
                                  std::uint64_t data_size) const {
  const Entry& e = at(kernel, data_size);
  const auto [mn, mx] =
      std::minmax_element(e.time_ms.begin(), e.time_ms.end());
  return *mx / *mn;
}

std::vector<std::string> LookupTable::kernels() const {
  std::vector<std::string> out;
  for (const Entry& e : ordered_) {
    if (std::find(out.begin(), out.end(), e.kernel) == out.end())
      out.push_back(e.kernel);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint64_t> LookupTable::sizes_for(
    const std::string& kernel) const {
  const std::string name = canonical_kernel_name(kernel);
  std::vector<std::uint64_t> out;
  for (const Entry& e : ordered_) {
    if (e.kernel == name) out.push_back(e.data_size);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string LookupTable::to_csv() const {
  util::CsvTable table({"kernel", "data_size", "cpu_ms", "gpu_ms", "fpga_ms"});
  for (const Entry& e : ordered_) {
    table.add_row({e.kernel, std::to_string(e.data_size),
                   util::format_double(e.time(ProcType::CPU), 6),
                   util::format_double(e.time(ProcType::GPU), 6),
                   util::format_double(e.time(ProcType::FPGA), 6)});
  }
  return util::to_csv_string(table);
}

LookupTable LookupTable::from_csv(const std::string& text) {
  const util::CsvTable table = util::parse_csv(text, /*has_header=*/true);
  LookupTable lut;
  const std::size_t k = table.column_index("kernel");
  const std::size_t d = table.column_index("data_size");
  const std::size_t c = table.column_index("cpu_ms");
  const std::size_t g = table.column_index("gpu_ms");
  const std::size_t f = table.column_index("fpga_ms");
  for (const auto& row : table.rows()) {
    Entry e;
    e.kernel = row.at(k);
    e.data_size = util::parse_uint(row.at(d));
    e.time_ms[index_of(ProcType::CPU)] = util::parse_double(row.at(c));
    e.time_ms[index_of(ProcType::GPU)] = util::parse_double(row.at(g));
    e.time_ms[index_of(ProcType::FPGA)] = util::parse_double(row.at(f));
    lut.add(std::move(e));
  }
  return lut;
}

LookupTable LookupTable::from_csv_file(const std::string& path) {
  const util::CsvTable table = util::read_csv_file(path, /*has_header=*/true);
  return from_csv(util::to_csv_string(table));
}

void LookupTable::save_csv_file(const std::string& path) const {
  util::CsvTable table = util::parse_csv(to_csv(), /*has_header=*/true);
  util::write_csv_file(table, path);
}

double geometric_mean_heterogeneity(const LookupTable& table) {
  if (table.empty())
    throw std::invalid_argument("geometric_mean_heterogeneity: empty table");
  double log_sum = 0.0;
  for (const Entry& e : table.entries())
    log_sum += std::log(table.heterogeneity(e.kernel, e.data_size));
  return std::exp(log_sum / static_cast<double>(table.size()));
}

double median_heterogeneity(const LookupTable& table) {
  if (table.empty())
    throw std::invalid_argument("median_heterogeneity: empty table");
  std::vector<double> ratios;
  ratios.reserve(table.size());
  for (const Entry& e : table.entries())
    ratios.push_back(table.heterogeneity(e.kernel, e.data_size));
  std::sort(ratios.begin(), ratios.end());
  const std::size_t n = ratios.size();
  return n % 2 == 1 ? ratios[n / 2]
                    : (ratios[n / 2 - 1] + ratios[n / 2]) / 2.0;
}

}  // namespace apt::lut
