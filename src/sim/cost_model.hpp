// Cost models: how long a kernel takes on a processor and how long data
// takes to move between processors.
//
// Two implementations:
//  * LutCostModel    — the paper's model: execution times from the lookup
//    table keyed by processor *category*, transfers = elements × bytes/elem
//    over the PCIe interconnect.
//  * MatrixCostModel — explicit per-node/per-processor computation matrix and
//    per-edge communication costs, as used in the HEFT/PEFT literature
//    examples (enables golden tests against published schedules).
#pragma once

#include <map>
#include <vector>

#include "dag/graph.hpp"
#include "lut/lookup_table.hpp"
#include "sim/system.hpp"

namespace apt::sim {

/// Payload of the edge out of `src`: the producer's output, data_size
/// elements at `bytes_per_element` bytes each. The one formula the cost
/// models, both engines, and the validator's capacity math must share —
/// message sizes and transfer estimates would silently desynchronize if
/// any of them computed it differently.
inline double edge_payload_bytes(const dag::Dag& dag, dag::NodeId src,
                                 double bytes_per_element) {
  return static_cast<double>(dag.node(src).data_size) * bytes_per_element;
}

/// Abstract interface consumed by every policy and by the engine.
class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Execution time of `node` on processor instance `proc`.
  virtual TimeMs exec_time_ms(const dag::Dag& dag, dag::NodeId node,
                              const Processor& proc) const = 0;

  /// Time to move the data of edge src -> dst when src ran on `from` and
  /// dst runs on `to`. Must be 0 when from.id == to.id.
  virtual TimeMs transfer_time_ms(const dag::Dag& dag, dag::NodeId src,
                                  dag::NodeId dst, const Processor& from,
                                  const Processor& to) const = 0;

  /// Mean of transfer_time_ms over all ordered pairs of *distinct*
  /// processors — the average communication cost c̄(i,j) used by the HEFT
  /// and PEFT rank computations. Returns 0 on single-processor systems.
  TimeMs average_transfer_time_ms(const dag::Dag& dag, dag::NodeId src,
                                  dag::NodeId dst, const System& system) const;

  /// Mean of exec_time_ms over all processors — w̄(i) in HEFT's rank_u.
  TimeMs average_exec_time_ms(const dag::Dag& dag, dag::NodeId node,
                              const System& system) const;
};

/// The paper's cost model (lookup table + PCIe links).
///
/// Holds copies of the (small) lookup table and interconnect so its lifetime
/// is independent of the objects it was built from.
class LutCostModel final : public CostModel {
 public:
  /// `strict` controls behaviour for (kernel, size) pairs missing from the
  /// table: throw (true, default) or fall back to the nearest measured size
  /// (false) — useful when replaying traces with odd sizes.
  LutCostModel(lut::LookupTable table, const System& system,
               bool strict = true);

  TimeMs exec_time_ms(const dag::Dag& dag, dag::NodeId node,
                      const Processor& proc) const override;
  TimeMs transfer_time_ms(const dag::Dag& dag, dag::NodeId src,
                          dag::NodeId dst, const Processor& from,
                          const Processor& to) const override;

  const lut::LookupTable& table() const noexcept { return table_; }

 private:
  const lut::Entry& entry_for(const dag::Dag& dag, dag::NodeId node) const;

  lut::LookupTable table_;
  Interconnect interconnect_;
  double bytes_per_element_;
  bool strict_;
};

/// Topology-aware adapter: execution times from a base model, transfer
/// times from the system's net::Topology (uncontended estimate: latency +
/// bytes / link bandwidth, 0 for local pairs). Under a contended topology
/// the engines hand this to the policies, so static planners (HEFT/PEFT)
/// price edges against the actual fabric and dynamic policies' transfer
/// queries reflect it too. The base model, system, and their referents
/// must outlive the adapter.
class TopologyCostModel final : public CostModel {
 public:
  TopologyCostModel(const CostModel& base, const System& system);

  TimeMs exec_time_ms(const dag::Dag& dag, dag::NodeId node,
                      const Processor& proc) const override;
  TimeMs transfer_time_ms(const dag::Dag& dag, dag::NodeId src,
                          dag::NodeId dst, const Processor& from,
                          const Processor& to) const override;

  const CostModel& base() const noexcept { return base_; }

 private:
  const CostModel& base_;
  const System& system_;
};

/// Literature-style cost matrices for controlled tests.
class MatrixCostModel final : public CostModel {
 public:
  /// `exec[node][proc]` — execution times; rows must match the DAG's node
  /// count at query time, columns the system's processor count.
  explicit MatrixCostModel(std::vector<std::vector<TimeMs>> exec);

  /// Sets the single inter-processor communication cost of edge src -> dst
  /// (applied whenever from != to; 0 otherwise) — the model of the HEFT
  /// paper's Figure 2 example.
  void set_comm_cost(dag::NodeId src, dag::NodeId dst, TimeMs cost);

  TimeMs exec_time_ms(const dag::Dag& dag, dag::NodeId node,
                      const Processor& proc) const override;
  TimeMs transfer_time_ms(const dag::Dag& dag, dag::NodeId src,
                          dag::NodeId dst, const Processor& from,
                          const Processor& to) const override;

 private:
  std::vector<std::vector<TimeMs>> exec_;
  std::map<std::pair<dag::NodeId, dag::NodeId>, TimeMs> comm_;
};

}  // namespace apt::sim
