// Aggregate statistics over one simulated schedule — the metrics the thesis
// reports (§3.2 list items 1–8): makespan, per-processor compute/transfer/
// idle time, λ delay totals (Eq. 11–12), and APT's alternative-assignment
// accounting (Appendix B).
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "dag/graph.hpp"
#include "net/transfer_manager.hpp"
#include "obs/profile.hpp"
#include "sim/schedule.hpp"
#include "sim/system.hpp"

namespace apt::sim {

/// Per-link interconnect breakdown (contended topologies only; the per-run
/// vectors are empty under the ideal topology, which simulates no links).
/// A multi-hop transfer counts fully against every link of its route.
struct LinkBreakdown {
  std::string name;          ///< Topology::link_name
  TimeMs busy_ms = 0.0;      ///< time with >= 1 draining message
  double bytes = 0.0;        ///< payload delivered over the link
  double utilization = 0.0;  ///< busy_ms over the observation span
  std::size_t transfer_count = 0;
  /// Mean route length (in links) of the transfers that traversed this
  /// link — 1 on single-hop kinds, > 1 where routed traffic relays.
  double avg_hops = 0.0;
};

/// Per-processor time breakdown; busy + transfer + idle == makespan.
struct ProcBreakdown {
  std::string name;
  TimeMs compute_ms = 0.0;   ///< executing kernels
  TimeMs transfer_ms = 0.0;  ///< stalled on input data
  TimeMs idle_ms = 0.0;      ///< neither
  std::size_t kernel_count = 0;
  double energy_j = 0.0;  ///< active power × compute + idle power × rest
};

/// λ-delay statistics (thesis Eq. 11 and Eq. 12).
struct LambdaStats {
  TimeMs total_ms = 0.0;
  TimeMs avg_ms = 0.0;     ///< total / occurrences
  TimeMs stddev_ms = 0.0;  ///< population σ over the occurrences
  std::size_t occurrences = 0;
};

struct SimMetrics {
  TimeMs makespan = 0.0;
  std::vector<ProcBreakdown> per_proc;
  LambdaStats lambda;
  std::size_t kernel_count = 0;
  std::size_t alternative_count = 0;  ///< APT second-best assignments
  std::map<std::string, std::size_t> alternative_by_kernel;
  double total_energy_j = 0.0;  ///< sum of per-processor energies

  // --- interconnect (contended topologies; empty/zero under ideal) ---
  std::vector<LinkBreakdown> per_link;
  TimeMs comm_busy_ms = 0.0;  ///< time >= 1 message was draining (any link)
  /// Time at least one message was draining while at least one kernel was
  /// executing — the comm/compute overlap a good schedule maximises.
  TimeMs comm_compute_overlap_ms = 0.0;
};

/// Computes all aggregates from a finished run. The λ delay of a kernel is
/// everything between becoming ready and starting execution that is not
/// data movement (queueing, waiting for a processor, decision/dispatch
/// overheads); a kernel contributes an "occurrence" when its λ is strictly
/// positive (the N of Eq. 11).
SimMetrics compute_metrics(const dag::Dag& dag, const System& system,
                           const SimResult& result);

// --- Open-system (streaming) metrics -----------------------------------------
//
// A closed-system run reports a makespan; an open system — many DAG
// instances arriving over time and contending for one platform — is judged
// by per-application flow time (finish - arrival), slowdown (flow divided
// by the app's isolated critical-path lower bound), sustained throughput,
// processor utilization, and backlog (queue depth) over time. All
// aggregates honour a warmup truncation: applications arriving before
// `warmup_ms` and processor time before it are excluded, so transient
// ramp-up does not bias steady-state estimates.

/// Time-weighted trace of an integer level (ready-kernel count, live-app
/// count) over simulated time, clipped to an observation window. Keeps O(1)
/// aggregates plus a bounded, stride-decimated sample series: when the
/// sample buffer would exceed its cap, every other sample is dropped and
/// the sampling stride doubles, so long runs stay bounded while short runs
/// keep full resolution.
class LevelTrace {
 public:
  explicit LevelTrace(std::size_t max_samples = 512);

  /// Start of the observation window (the warmup boundary). Must be called
  /// before the first observe().
  void set_window_start(TimeMs start);

  /// The level changed to `level` at time `now` (non-decreasing calls).
  void observe(TimeMs now, std::size_t level);

  /// Closes the integral at `end` (the last segment extends to it).
  void finish(TimeMs end);

  /// Integral of the level over the window divided by the window length;
  /// 0 for an empty window.
  double time_weighted_avg() const;

  /// Maximum level attained within the window, including zero-duration
  /// instants (a spike observed and cleared at the same timestamp counts).
  std::size_t max_level() const noexcept { return max_level_; }

  /// Decimated (time, level) samples, chronological.
  const std::vector<std::pair<TimeMs, std::size_t>>& samples() const noexcept {
    return samples_;
  }

 private:
  void account_segment(TimeMs upto);
  void push_sample(TimeMs now, std::size_t level);

  std::size_t max_samples_;
  TimeMs window_start_ = 0.0;
  TimeMs last_time_ = 0.0;
  std::size_t last_level_ = 0;
  TimeMs end_ = 0.0;
  double integral_ = 0.0;  ///< level × ms, window-clipped
  std::size_t max_level_ = 0;
  std::size_t observe_count_ = 0;
  std::size_t sample_stride_ = 1;
  std::vector<std::pair<TimeMs, std::size_t>> samples_;
};

/// One retired application of a stream run.
struct StreamAppStats {
  std::size_t index = 0;        ///< arrival order, 0-based
  TimeMs arrival_ms = 0.0;      ///< admission instant
  TimeMs finish_ms = 0.0;       ///< last kernel completion
  TimeMs lower_bound_ms = 0.0;  ///< isolated makespan_lower_bound_ms
  std::size_t kernels = 0;

  TimeMs flow_ms() const noexcept { return finish_ms - arrival_ms; }

  /// Flow time relative to the app's best possible isolated makespan
  /// (>= 1 up to scheduling overheads); 1 when the bound is degenerate.
  double slowdown() const noexcept {
    return lower_bound_ms > 0.0 ? flow_ms() / lower_bound_ms : 1.0;
  }
};

/// Everything the stream engine records for the aggregator: per-app
/// outcomes, per-processor busy time clipped to the observation window, and
/// the backlog traces.
struct StreamObservation {
  std::vector<StreamAppStats> completed;  ///< retirement order
  std::size_t apps_arrived = 0;           ///< admitted (completed or not)
  std::vector<TimeMs> busy_in_window_ms;  ///< per proc, exec time ∩ window
  std::vector<std::size_t> kernels_in_window;  ///< per proc, finishes ∩ window
  TimeMs warmup_ms = 0.0;
  TimeMs end_ms = 0.0;  ///< last completion (the warmup boundary when
                        ///< nothing ran after it)
  LevelTrace queue_depth;  ///< ready-but-unassigned kernels over time
  LevelTrace live_apps;    ///< admitted-but-unfinished apps over time

  /// Per-link accounting clipped to the observation window, exactly like
  /// busy_in_window_ms: busy time ∩ [warmup, end], bytes/counts/hop sums
  /// of messages delivered at or after the warmup boundary. Empty under
  /// the ideal topology.
  std::vector<TimeMs> link_busy_in_window_ms;
  std::vector<double> link_bytes_in_window;
  std::vector<std::size_t> link_transfers_in_window;
  std::vector<std::size_t> link_hops_in_window;
  std::vector<std::string> link_names;

  /// Rate-solver counters of the run's TransferManager (all zero under the
  /// ideal topology, which simulates no fabric).
  net::SolveStats tm_solve_stats;

  // --- straggler hedging (all zero when hedging is disabled) ---
  std::size_t hedges_launched = 0;     ///< replicas launched, whole run
  std::size_t hedges_replica_won = 0;  ///< races the replica won
  /// Processor-time burned by losing attempts, clipped to the observation
  /// window like busy_in_window_ms (wasted span ∩ [warmup, end]).
  TimeMs hedge_wasted_in_window_ms = 0.0;

  /// Hot-path profiling snapshot (src/obs); empty unless a Profile was
  /// attached via StreamOptions::profile.
  obs::ProfileSnapshot profile;
};

/// Average / median / tail summary of a per-app distribution. All
/// percentiles use the project-wide definition (util::percentile_sorted,
/// linear interpolation between order statistics) — the same numbers
/// util::percentile_of reports over the same data.
struct DistSummary {
  double avg = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;

  /// Summary of `values` (need not be sorted); all-zero when empty.
  static DistSummary summarize(std::vector<double> values);
};

/// Aggregate open-system metrics of one stream run.
struct StreamMetrics {
  std::size_t apps_arrived = 0;
  std::size_t apps_completed = 0;
  std::size_t apps_measured = 0;  ///< completed AND arrived after warmup
  std::size_t kernels_completed = 0;
  TimeMs warmup_ms = 0.0;
  TimeMs end_ms = 0.0;
  TimeMs observed_ms = 0.0;  ///< max(end - warmup, 0)

  double throughput_apps_per_s = 0.0;  ///< measured apps / observed span

  DistSummary flow_ms;   ///< over measured apps
  DistSummary slowdown;  ///< over measured apps

  std::vector<ProcBreakdown> per_proc;  ///< compute/idle within the window
  double avg_utilization = 0.0;         ///< mean busy fraction across procs

  double queue_depth_avg = 0.0;
  std::size_t queue_depth_max = 0;
  double live_apps_avg = 0.0;
  std::size_t live_apps_max = 0;
  std::vector<std::pair<TimeMs, std::size_t>> queue_depth_samples;

  /// Interconnect links within the observation window (utilization over
  /// observed_ms, like processor utilization — warmup traffic does not
  /// bias it); empty under the ideal topology.
  std::vector<LinkBreakdown> per_link;

  /// How the fabric's max-min rates were re-solved (observability for the
  /// incremental solver; all zero under the ideal topology).
  net::SolveStats tm_solve_stats;

  // --- straggler hedging (all zero when hedging is disabled) ---
  std::size_t hedges_launched = 0;
  std::size_t hedges_replica_won = 0;
  TimeMs hedge_wasted_ms = 0.0;  ///< losing-attempt time ∩ the window

  /// Hot-path profiling snapshot (src/obs); empty unless profiling was
  /// enabled for the run.
  obs::ProfileSnapshot profile;
};

/// Aggregates a finished stream observation. Measured apps are those
/// arriving at or after the warmup boundary; utilization is busy time
/// within [warmup, end] over that span.
StreamMetrics compute_stream_metrics(const System& system,
                                     const StreamObservation& observation);

}  // namespace apt::sim
