// Aggregate statistics over one simulated schedule — the metrics the thesis
// reports (§3.2 list items 1–8): makespan, per-processor compute/transfer/
// idle time, λ delay totals (Eq. 11–12), and APT's alternative-assignment
// accounting (Appendix B).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dag/graph.hpp"
#include "sim/schedule.hpp"
#include "sim/system.hpp"

namespace apt::sim {

/// Per-processor time breakdown; busy + transfer + idle == makespan.
struct ProcBreakdown {
  std::string name;
  TimeMs compute_ms = 0.0;   ///< executing kernels
  TimeMs transfer_ms = 0.0;  ///< stalled on input data
  TimeMs idle_ms = 0.0;      ///< neither
  std::size_t kernel_count = 0;
  double energy_j = 0.0;  ///< active power × compute + idle power × rest
};

/// λ-delay statistics (thesis Eq. 11 and Eq. 12).
struct LambdaStats {
  TimeMs total_ms = 0.0;
  TimeMs avg_ms = 0.0;     ///< total / occurrences
  TimeMs stddev_ms = 0.0;  ///< population σ over the occurrences
  std::size_t occurrences = 0;
};

struct SimMetrics {
  TimeMs makespan = 0.0;
  std::vector<ProcBreakdown> per_proc;
  LambdaStats lambda;
  std::size_t kernel_count = 0;
  std::size_t alternative_count = 0;  ///< APT second-best assignments
  std::map<std::string, std::size_t> alternative_by_kernel;
  double total_energy_j = 0.0;  ///< sum of per-processor energies
};

/// Computes all aggregates from a finished run. The λ delay of a kernel is
/// everything between becoming ready and starting execution that is not
/// data movement (queueing, waiting for a processor, decision/dispatch
/// overheads); a kernel contributes an "occurrence" when its λ is strictly
/// positive (the N of Eq. 11).
SimMetrics compute_metrics(const dag::Dag& dag, const System& system,
                           const SimResult& result);

}  // namespace apt::sim
