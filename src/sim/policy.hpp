// The scheduling-policy interface and the system view policies schedule
// against.
//
// The engine is event driven: whenever the system state changes (start of
// simulation, a kernel completes), it calls Policy::on_event with a
// SchedulerContext. Dynamic policies inspect the ready set I and the
// available processors A (thesis §2.5.3) and commit assignments; static
// policies precompute a plan in prepare() and release it step by step.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "dag/graph.hpp"
#include "sim/cost_model.hpp"
#include "sim/noise.hpp"
#include "sim/system.hpp"
#include "sim/transfer_estimate.hpp"

namespace apt::sim {

/// When input data starts moving toward the chosen processor.
enum class TransferSemantics {
  /// Data moves only after the assignment decision (dynamic policies: the
  /// destination is unknown earlier, so the kernel stalls for the transfer).
  AtAssignment,
  /// Data was already in flight since each predecessor finished (static
  /// policies: destinations are known up front — classic HEFT semantics).
  Prefetched,
};

/// View of the running simulation offered to a policy, plus the two actions
/// a policy can take (assign to an idle processor / enqueue behind a busy
/// one). Implemented by the engine.
class SchedulerContext {
 public:
  virtual ~SchedulerContext() = default;

  virtual TimeMs now() const = 0;
  virtual const dag::Dag& dag() const = 0;
  virtual const System& system() const = 0;
  virtual const CostModel& cost_model() const = 0;

  /// Ready, not-yet-assigned kernels in arrival (FIFO) order: the set I.
  virtual const std::vector<dag::NodeId>& ready() const = 0;

  /// True when the processor is neither executing nor holding queued work:
  /// membership in the available set A.
  virtual bool is_idle(ProcId proc) const = 0;

  /// The available set A, ascending by processor id. The reference stays
  /// valid until the next assign()/enqueue() or the next call to
  /// idle_processors(), whichever comes first — snapshot (copy) it if you
  /// need it across an assignment.
  virtual const std::vector<ProcId>& idle_processors() const = 0;

  /// Time at which the processor finishes everything currently committed to
  /// it (== now() when idle).
  virtual TimeMs busy_until(ProcId proc) const = 0;

  /// Kernels waiting in the processor's FIFO queue (excludes the running one).
  virtual std::size_t queue_length(ProcId proc) const = 0;

  /// Remaining work committed to the processor: remaining time of the
  /// running kernel plus execution times of everything queued — AG's
  /// queueing-delay estimate.
  virtual TimeMs queued_work_ms(ProcId proc) const = 0;

  /// Mean execution time of the most recent `k` kernels completed on the
  /// processor (Eq. 2's τ_g^k); 0 when the processor has no history.
  virtual TimeMs recent_avg_exec_ms(ProcId proc, std::size_t k) const = 0;

  /// Execution time of a ready kernel on a processor (lookup-table query).
  /// Always the NOMINAL cost-model time: under service-time noise
  /// (sim::NoiseSpec) the realized duration may deviate, but policies plan
  /// against the estimate — exactly the information asymmetry a production
  /// scheduler faces, and what straggler hedging compensates for.
  virtual TimeMs exec_time_ms(dag::NodeId node, ProcId proc) const = 0;

  /// Minimum execution time of `node` over every processor, and the lowest
  /// processor id attaining it. The default implementations scan
  /// exec_time_ms over all processors; engines override them with O(1)
  /// precomputed lookups — the scan is the hottest loop of the MET-family
  /// policies, which call these for every ready kernel at every event.
  virtual TimeMs min_exec_time_ms(dag::NodeId node) const {
    TimeMs best = std::numeric_limits<TimeMs>::infinity();
    for (ProcId p = 0; p < system().proc_count(); ++p)
      best = std::min(best, exec_time_ms(node, p));
    return best;
  }
  virtual ProcId min_exec_proc(dag::NodeId node) const {
    ProcId best = 0;
    for (ProcId p = 1; p < system().proc_count(); ++p) {
      if (exec_time_ms(node, p) < exec_time_ms(node, best)) best = p;
    }
    return best;
  }

  /// Structured input-transfer estimate if `node` were assigned to `proc`
  /// now (see sim/transfer_estimate.hpp). stall_ms is the worst-case
  /// unloaded stall — max over predecessors of the edge transfer time from
  /// the predecessor's actual processor, exactly the value the legacy
  /// scalar contract returned. Under a contended topology the engines
  /// additionally fill link_queueing_ms / bottleneck_link from the live
  /// TransferManager backlog (predicted drain of each route link's
  /// in-flight bytes at current max-min rates), and the run's NoiseSpec
  /// feeds quantile_ms. On an ideal topology only stall_ms is non-trivial.
  virtual TransferEstimate transfer_estimate(dag::NodeId node,
                                             ProcId proc) const = 0;

  /// DEPRECATED scalar form of the estimation contract, kept as a thin
  /// wrapper for source compatibility: exactly
  /// transfer_estimate(node, proc).stall_ms. New code (and all in-tree
  /// policies) should call transfer_estimate() and pick the reading it
  /// wants — stall_ms (comm-blind), total_ms() (backlog-aware), or
  /// quantile_ms(q) (tail-aware).
  virtual TimeMs input_transfer_ms(dag::NodeId node, ProcId proc) const {
    return transfer_estimate(node, proc).stall_ms;
  }

  /// The run's service-time noise spec (a disabled spec when the run is
  /// noise-free). Quantile-planning policies combine it with
  /// noise_quantile_multiplier to price tail risk; it is the same spec
  /// transfer_estimate() embeds.
  virtual const NoiseSpec& noise() const {
    static const NoiseSpec kDisabled;
    return kDisabled;
  }

  /// Commits `node` to the *idle* processor `proc`, starting immediately.
  /// Throws std::logic_error if the processor is not idle or the node is
  /// not ready. `alternative` tags APT's second-best choices for Tables
  /// 15/16 style accounting.
  virtual void assign(dag::NodeId node, ProcId proc,
                      bool alternative = false) = 0;

  /// Appends `node` to the processor's FIFO queue (AG-style); it starts as
  /// soon as the processor drains earlier work. May also target an idle
  /// processor, which is equivalent to assign() with prefetched transfer.
  virtual void enqueue(dag::NodeId node, ProcId proc,
                       bool alternative = false) = 0;
};

/// A scheduling policy.
class Policy {
 public:
  virtual ~Policy() = default;

  virtual std::string name() const = 0;

  /// Dynamic policies see only the ready set; static policies precompute a
  /// full schedule from the whole DAG in prepare().
  virtual bool is_dynamic() const = 0;

  virtual TransferSemantics transfer_semantics() const {
    return is_dynamic() ? TransferSemantics::AtAssignment
                        : TransferSemantics::Prefetched;
  }

  /// Called once before the run with the full problem instance. Static
  /// policies build their plan here; dynamic policies typically reset state.
  virtual void prepare(const dag::Dag& dag, const System& system,
                       const CostModel& cost_model) {
    (void)dag;
    (void)system;
    (void)cost_model;
  }

  /// Called at time 0 and after every completion; make assignments here.
  virtual void on_event(SchedulerContext& ctx) = 0;
};

}  // namespace apt::sim
