// The structured policy↔fabric estimation contract.
//
// SchedulerContext::input_transfer_ms answered one question with one
// number: the unloaded stall if a kernel were assigned somewhere now. That
// hides everything the fabric actually knows — which link the estimate is
// pinned to, how much traffic is already queued on it, and how wide the
// service-time distribution around the point estimate is. TransferEstimate
// is the replacement contract: the engines fill it from live
// net::TransferManager state (predicted drain of each route link's
// in-flight bytes at the CURRENT max-min rates — not the unloaded
// bottleneck-bandwidth figure), and policies choose which reading to act
// on:
//
//   stall_ms          the classic unloaded estimate, bit-identical to what
//                     input_transfer_ms returned — comm-blind policies and
//                     noise-off goldens see no change
//   total_ms()        stall + predicted link queueing: the backlog-aware
//                     reading AG-net and APT-C rank with
//   quantile_ms(q)    tail-aware reading: the queueing prediction scaled
//                     by the q-quantile of the run's NoiseSpec multiplier
//                     mixture (the deterministic unloaded stall does not
//                     widen) — what APT-Q ranks by at q = 0.95
#pragma once

#include "net/topology.hpp"
#include "sim/noise.hpp"
#include "sim/system.hpp"

namespace apt::sim {

/// What assigning a ready kernel to a processor now would cost in input
/// movement, decomposed. Returned by SchedulerContext::transfer_estimate;
/// the worst (max) predecessor edge determines every field, matching the
/// worst-case semantics of the legacy scalar.
struct TransferEstimate {
  /// Unloaded route estimate: max over predecessors of route head latency
  /// plus bytes over the route's bottleneck bandwidth — exactly the old
  /// input_transfer_ms value (0 when every input is local or the topology
  /// is ideal).
  TimeMs stall_ms = 0.0;

  /// Predicted extra wait from traffic already in flight: max over
  /// predecessor routes of the longest per-link drain time (each link's
  /// slowest in-flight message at current max-min rates). Always 0 on
  /// ideal topologies and on an idle fabric.
  TimeMs link_queueing_ms = 0.0;

  /// The link the queueing prediction is pinned to: the most-backlogged
  /// link across the predecessor routes, or — on an idle fabric — the
  /// bottleneck (minimum-bandwidth, earliest-hop on ties) link of the
  /// worst predecessor's route. net::kNoLink when every input is local or
  /// the topology is ideal.
  net::LinkId bottleneck_link = net::kNoLink;

  /// The run's service-time noise spec (disabled on noise-off runs), the
  /// distribution quantile_ms prices tails against.
  NoiseSpec noise;

  /// Backlog-aware point estimate: unloaded stall plus predicted queueing.
  TimeMs total_ms() const noexcept { return stall_ms + link_queueing_ms; }

  /// Tail-aware estimate. The unloaded stall is deterministic; the
  /// queueing prediction is not — the backlog drain assumes today's rates
  /// hold, while the traffic ahead is driven by kernels whose realized
  /// times follow the noise distribution. As a planning heuristic the
  /// uncertain component is therefore widened by the q-quantile of the
  /// run's noise multiplier and the deterministic one is left fixed.
  /// Equal to total_ms() when noise is disabled.
  TimeMs quantile_ms(double q) const {
    return stall_ms + link_queueing_ms * noise_quantile_multiplier(noise, q);
  }
};

}  // namespace apt::sim
