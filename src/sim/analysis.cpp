#include "sim/analysis.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/string_utils.hpp"

namespace apt::sim {

ScheduleAnalysis analyze_schedule(const dag::Dag& dag, const System& system,
                                  const CostModel& cost,
                                  const SimResult& result) {
  if (result.schedule.size() != dag.node_count())
    throw std::invalid_argument("analyze_schedule: schedule/DAG mismatch");
  ScheduleAnalysis a;
  a.makespan = result.makespan;
  if (dag.empty() || result.makespan <= 0.0) return a;

  double total_exec = 0.0;
  double total_transfer = 0.0;
  std::vector<double> per_proc_exec(system.proc_count(), 0.0);
  for (const ScheduledKernel& k : result.schedule) {
    total_exec += k.exec_ms;
    total_transfer += k.transfer_ms;
    per_proc_exec.at(k.proc) += k.exec_ms;
  }
  a.parallelism = total_exec / a.makespan;
  a.avg_utilization =
      a.parallelism / static_cast<double>(system.proc_count());
  a.transfer_fraction = total_transfer / a.makespan;

  const double mean_exec =
      total_exec / static_cast<double>(system.proc_count());
  if (mean_exec > 0.0) {
    a.load_imbalance =
        *std::max_element(per_proc_exec.begin(), per_proc_exec.end()) /
        mean_exec;
  }

  // Serial baselines.
  double best_serial = 0.0;
  std::vector<double> fixed(system.proc_count(), 0.0);
  for (dag::NodeId n = 0; n < dag.node_count(); ++n) {
    double best = std::numeric_limits<double>::infinity();
    for (const Processor& p : system.processors()) {
      const double t = cost.exec_time_ms(dag, n, p);
      best = std::min(best, t);
      fixed[p.id] += t;
    }
    best_serial += best;
  }
  a.speedup_vs_best_serial = best_serial / a.makespan;
  a.speedup_vs_best_fixed_processor =
      *std::min_element(fixed.begin(), fixed.end()) / a.makespan;

  // Realised critical path: longest dependency chain of actual intervals.
  std::vector<TimeMs> chain(dag.node_count(), 0.0);
  for (const dag::NodeId n : dag.topological_order()) {
    chain[n] += result.schedule[n].finish_time - result.schedule[n].exec_start;
    a.realised_critical_path_ms =
        std::max(a.realised_critical_path_ms, chain[n]);
    for (const dag::NodeId s : dag.successors(n))
      chain[s] = std::max(chain[s], chain[n]);
  }
  return a;
}

std::string format_analysis(const ScheduleAnalysis& a) {
  std::string out;
  out += "makespan:                    " + util::format_double(a.makespan, 3) +
         " ms\n";
  out += "parallelism (busy procs):    " +
         util::format_double(a.parallelism, 3) + "\n";
  out += "average utilisation:         " +
         util::format_double(a.avg_utilization * 100.0, 1) + " %\n";
  out += "load imbalance (max/mean):   " +
         util::format_double(a.load_imbalance, 3) + "\n";
  out += "speed-up vs best-serial:     " +
         util::format_double(a.speedup_vs_best_serial, 3) + "x\n";
  out += "speed-up vs best fixed proc: " +
         util::format_double(a.speedup_vs_best_fixed_processor, 3) + "x\n";
  out += "transfer fraction:           " +
         util::format_double(a.transfer_fraction * 100.0, 1) + " %\n";
  out += "realised critical path:      " +
         util::format_double(a.realised_critical_path_ms, 3) + " ms\n";
  return out;
}

}  // namespace apt::sim
