// Post-run schedule analysis: the quality indicators a practitioner reads
// before trusting a policy — utilisation, load balance, speed-up against
// the serial baselines, and how much of the makespan data movement ate.
#pragma once

#include "dag/graph.hpp"
#include "sim/cost_model.hpp"
#include "sim/schedule.hpp"
#include "sim/system.hpp"

namespace apt::sim {

struct ScheduleAnalysis {
  TimeMs makespan = 0.0;

  /// Σ exec_ms / makespan — average number of busy processors.
  double parallelism = 0.0;

  /// parallelism / processor count, in [0, 1].
  double avg_utilization = 0.0;

  /// max per-proc compute / mean per-proc compute (1 = perfectly even);
  /// 0 when nothing ran.
  double load_imbalance = 0.0;

  /// Serial time on the single best processor choice per kernel
  /// (Σ min_p exec) divided by the makespan.
  double speedup_vs_best_serial = 0.0;

  /// Serial time if every kernel ran on the single *fixed* processor that
  /// minimises the total (the best homogeneous machine), over makespan.
  double speedup_vs_best_fixed_processor = 0.0;

  /// Σ transfer stalls / makespan (can exceed 1 with many processors).
  double transfer_fraction = 0.0;

  /// Longest chain of (exec_start, finish) interval dependencies actually
  /// realised — the schedule's critical-path length in ms.
  TimeMs realised_critical_path_ms = 0.0;
};

/// Computes every indicator; throws std::invalid_argument on a schedule
/// that does not cover the DAG.
ScheduleAnalysis analyze_schedule(const dag::Dag& dag, const System& system,
                                  const CostModel& cost,
                                  const SimResult& result);

/// Renders the analysis as a small human-readable block.
std::string format_analysis(const ScheduleAnalysis& analysis);

}  // namespace apt::sim
