// Schedule records: the per-kernel outcome of one simulated run.
#pragma once

#include <vector>

#include "dag/graph.hpp"
#include "sim/system.hpp"

namespace apt::sim {

/// Everything the simulator records about one executed kernel.
///
/// Timeline per kernel:
///
///   ready_time  <= assign_time <= exec_start <= finish_time
///        │              │             │             │
///        preds done     policy        data in       exec done
///                       decided       place
///
/// The processor is occupied during [assign_time, finish_time) — the span
/// [assign_time, exec_start) is the transfer stall (zero when the input
/// data was prefetched or local).
struct ScheduledKernel {
  dag::NodeId node = dag::kInvalidNode;
  ProcId proc = kInvalidProc;
  TimeMs ready_time = 0.0;   ///< all predecessors complete
  TimeMs assign_time = 0.0;  ///< policy committed node -> proc
  TimeMs exec_start = 0.0;   ///< input data available, computation begins
  TimeMs exec_ms = 0.0;      ///< pure computation duration
  TimeMs finish_time = 0.0;  ///< exec_start + exec_ms
  TimeMs transfer_ms = 0.0;  ///< stall attributable to input-data movement
  bool alternative = false;  ///< APT: ran on a non-optimal processor
  /// Realized/nominal execution-time ratio under service-time noise
  /// (sim::NoiseSpec): exec_ms == nominal_exec_ms × noise_mult. Exactly
  /// 1.0 when noise is disabled, so noise-free validation is unchanged.
  double noise_mult = 1.0;

  TimeMs transfer_stall_ms() const noexcept { return transfer_ms; }

  /// The kernel's λ delay (thesis §2.5.1): everything between becoming
  /// ready and starting to execute that is *not* data movement — queueing
  /// behind other kernels, waiting for the chosen processor, and any
  /// decision/dispatch overheads folded into exec_start.
  TimeMs wait_ms() const noexcept {
    return exec_start - ready_time - transfer_ms;
  }

  /// When the processor became occupied with this kernel (it may hold the
  /// processor through the transfer stall before computing). For queued
  /// kernels this is the queue pick-up time, which can be much later than
  /// assign_time.
  TimeMs occupied_from() const noexcept { return exec_start - transfer_ms; }
};

/// One simulated data transfer over a contended interconnect route (only
/// recorded when the system's topology is non-ideal; local edges move no
/// message). Times are absolute simulation instants:
///
///   start        the message was created (the consumer's dispatch instant)
///   drain_start  start + the route's head latency (sum over hops) — bytes
///                begin flowing, the message occupies every route link
///                from here until finish
///   finish       last byte delivered; the consumer may begin executing
struct TransferRecord {
  dag::NodeId src = dag::kInvalidNode;  ///< producer kernel
  dag::NodeId dst = dag::kInvalidNode;  ///< consumer kernel
  ProcId from = kInvalidProc;
  ProcId to = kInvalidProc;
  /// Route links in traversal order (single-hop kinds record one link).
  std::vector<net::LinkId> path;
  double bytes = 0.0;
  TimeMs start = 0.0;
  TimeMs drain_start = 0.0;
  TimeMs finish = 0.0;

  std::size_t hops() const noexcept { return path.size(); }
};

/// One straggler-hedging episode: a kernel whose primary attempt ran past
/// the hedging threshold, so a replica was launched on an idle processor.
/// Exactly one attempt wins (first to complete); the loser is cancelled at
/// the winner's finish instant and releases its processor immediately.
/// The kernel's ScheduledKernel entry describes the WINNING attempt; this
/// record preserves the losing side for validation and wasted-work
/// accounting. Times are absolute simulation instants.
struct HedgeRecord {
  dag::NodeId node = dag::kInvalidNode;
  ProcId primary_proc = kInvalidProc;  ///< where the original attempt ran
  ProcId replica_proc = kInvalidProc;  ///< idle proc the replica went to
  TimeMs launched_ms = 0.0;            ///< replica launch decision instant
  TimeMs loser_start_ms = 0.0;   ///< losing attempt's occupied-from instant
  TimeMs winner_finish_ms = 0.0; ///< == schedule[node].finish_time
  TimeMs cancelled_ms = 0.0;     ///< loser cancelled (== winner_finish_ms)
  bool replica_won = false;      ///< replica beat the straggling primary

  /// Processor-time burned by the losing attempt before cancellation.
  TimeMs wasted_ms() const noexcept { return cancelled_ms - loser_start_ms; }
};

/// Full result of one run, indexed by node id.
struct SimResult {
  TimeMs makespan = 0.0;
  std::vector<ScheduledKernel> schedule;  ///< size == dag.node_count()
  /// Simulated link messages in creation order; empty under an ideal
  /// topology (no contention phase ran).
  std::vector<TransferRecord> transfers;
  /// Hedging episodes in launch order; empty when hedging is disabled.
  std::vector<HedgeRecord> hedges;
};

}  // namespace apt::sim
