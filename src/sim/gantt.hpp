// Gantt-chart rendering of a simulated schedule: an ASCII view for the
// terminal and a CSV export for external plotting.
//
//   CPU0  |aaaa....bb----cc|
//   GPU0  |ddddddddd.......|
//
// Each kernel gets a letter (cycling a-z); '.' is idle, '-' is a transfer
// stall. One character covers makespan/width milliseconds.
#pragma once

#include <string>

#include "dag/graph.hpp"
#include "sim/schedule.hpp"
#include "sim/system.hpp"

namespace apt::sim {

/// ASCII Gantt chart, `width` characters wide (>= 10). A legend mapping
/// letters to "node:kernel" follows the chart.
std::string ascii_gantt(const dag::Dag& dag, const System& system,
                        const SimResult& result, std::size_t width = 80);

/// CSV rows: node,kernel,data_size,proc,occupied_from_ms,exec_start_ms,
/// finish_ms,alternative — one line per kernel, sorted by start time.
std::string gantt_csv(const dag::Dag& dag, const System& system,
                      const SimResult& result);

}  // namespace apt::sim
