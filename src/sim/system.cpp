#include "sim/system.hpp"

#include <stdexcept>

namespace apt::sim {

Interconnect::Interconnect(std::size_t proc_count, double uniform_gbps)
    : proc_count_(proc_count) {
  if (proc_count_ == 0)
    throw std::invalid_argument("Interconnect: need at least one processor");
  if (!(uniform_gbps > 0.0))
    throw std::invalid_argument("Interconnect: rate must be positive");
  rate_.assign(proc_count_ * proc_count_, uniform_gbps);
}

std::size_t Interconnect::index(ProcId from, ProcId to) const {
  if (from >= proc_count_ || to >= proc_count_)
    throw std::out_of_range("Interconnect: processor id out of range");
  return static_cast<std::size_t>(from) * proc_count_ + to;
}

void Interconnect::set_rate_gbps(ProcId from, ProcId to, double gbps) {
  if (!(gbps > 0.0))
    throw std::invalid_argument("Interconnect: rate must be positive");
  rate_[index(from, to)] = gbps;
}

double Interconnect::rate_gbps(ProcId from, ProcId to) const {
  return rate_[index(from, to)];
}

TimeMs Interconnect::transfer_time_ms(double bytes, ProcId from,
                                      ProcId to) const {
  if (bytes < 0.0)
    throw std::invalid_argument("Interconnect: negative byte count");
  if (from == to) {
    index(from, to);  // still validate ids
    return 0.0;
  }
  // GB/s == bytes/ns; ms = bytes / (rate_GBps * 1e6).
  return bytes / (rate_gbps(from, to) * 1e6);
}

SystemConfig SystemConfig::paper_default(double rate_gbps) {
  SystemConfig cfg;
  cfg.processors = {lut::ProcType::CPU, lut::ProcType::GPU, lut::ProcType::FPGA};
  cfg.link_rate_gbps = rate_gbps;
  return cfg;
}

System::System(SystemConfig config)
    : config_(std::move(config)),
      interconnect_(config_.processors.empty() ? 1 : config_.processors.size(),
                    config_.link_rate_gbps),
      topology_(config_.topology,
                config_.processors.empty() ? 1 : config_.processors.size(),
                config_.link_rate_gbps) {
  if (config_.processors.empty())
    throw std::invalid_argument("System: need at least one processor");
  if (!(config_.bytes_per_element > 0.0))
    throw std::invalid_argument("System: bytes_per_element must be positive");
  if (config_.decision_overhead_ms < 0.0 || config_.dispatch_overhead_ms < 0.0)
    throw std::invalid_argument("System: overheads must be non-negative");
  for (std::size_t i = 0; i < lut::kNumProcTypes; ++i) {
    if (config_.active_power_w[i] < 0.0 || config_.idle_power_w[i] < 0.0)
      throw std::invalid_argument("System: powers must be non-negative");
  }
  std::array<int, lut::kNumProcTypes> type_counter{};
  procs_.reserve(config_.processors.size());
  for (std::size_t i = 0; i < config_.processors.size(); ++i) {
    const lut::ProcType type = config_.processors[i];
    const int nth = type_counter[lut::index_of(type)]++;
    procs_.push_back(Processor{static_cast<ProcId>(i), type,
                               std::string(lut::to_string(type)) +
                                   std::to_string(nth)});
  }
}

std::size_t System::count_of(lut::ProcType type) const noexcept {
  std::size_t n = 0;
  for (const Processor& p : procs_) {
    if (p.type == type) ++n;
  }
  return n;
}

std::vector<ProcId> System::instances_of(lut::ProcType type) const {
  std::vector<ProcId> out;
  for (const Processor& p : procs_) {
    if (p.type == type) out.push_back(p.id);
  }
  return out;
}

}  // namespace apt::sim
