// Densified cost model: flattens a base CostModel's node×processor execution
// times and edge×processor-pair transfer times into contiguous arrays, built
// once per (dag, system) pair.
//
// The paper's LutCostModel resolves every exec_time_ms through a
// map<(kernel, size)> keyed by strings; the engine and the policies query it
// thousands of times per run with the same arguments. This adapter pays the
// map cost exactly once per (node, proc) / (edge, from, to) combination and
// serves every later query from a flat vector. Values are the base model's
// own doubles, so results are bit-identical to querying the base directly.
//
// Queries about a *different* dag (or out-of-range processors) fall back to
// the base model, so the adapter can be handed to code that mixes graphs.
#pragma once

#include <vector>

#include "dag/graph.hpp"
#include "sim/cost_model.hpp"
#include "sim/system.hpp"

namespace apt::sim {

class PrecomputedCostModel final : public CostModel {
 public:
  /// Builds the dense tables by querying `base` for every node on every
  /// processor and every edge over every ordered processor pair. The dag,
  /// system, and base model must outlive this object.
  PrecomputedCostModel(const dag::Dag& dag, const System& system,
                       const CostModel& base);

  TimeMs exec_time_ms(const dag::Dag& dag, dag::NodeId node,
                      const Processor& proc) const override;
  TimeMs transfer_time_ms(const dag::Dag& dag, dag::NodeId src,
                          dag::NodeId dst, const Processor& from,
                          const Processor& to) const override;

  const CostModel& base() const noexcept { return base_; }

  // --- raw-table access for engine hot paths ---------------------------------
  //
  // The virtual queries above re-check the dag pointer and processor range
  // on every call; the engines query millions of times with arguments known
  // valid by construction, so they bake these row pointers into their slot
  // arrays once per instance instead.

  std::size_t table_proc_count() const noexcept { return proc_count_; }

  /// Execution times of `node` on every processor: `row[proc]`.
  const TimeMs* exec_row(dag::NodeId node) const {
    return exec_.data() + static_cast<std::size_t>(node) * proc_count_;
  }

  /// Transfer times of the edge src -> successors(src)[succ_index] over
  /// every ordered processor pair: `row[from * table_proc_count() + to]` —
  /// the same doubles transfer_time_ms serves after its successor scan.
  const TimeMs* transfer_row(dag::NodeId src, std::size_t succ_index) const {
    return transfer_.data() +
           (edge_offset_[src] + succ_index) * proc_count_ * proc_count_;
  }

 private:
  const dag::Dag* dag_;
  const CostModel& base_;
  std::size_t proc_count_;
  std::vector<TimeMs> exec_;           ///< [node * P + proc]
  std::vector<std::size_t> edge_offset_;  ///< node -> first slot of its out-edges
  std::vector<TimeMs> transfer_;       ///< [edge_slot * P * P + from * P + to]
};

}  // namespace apt::sim
