// Human-readable schedule traces in the style of the thesis's Figure 5:
// one row per system-state change listing what each processor is doing.
//
//   CPU:0-nw   GPU:idle   FPGA:1-bfs      0.0
//   CPU:0-nw   GPU:idle   FPGA:2-bfs      106.0
//   ...
//   End time: 318.093
#pragma once

#include <string>
#include <vector>

#include "dag/graph.hpp"
#include "sim/schedule.hpp"
#include "sim/system.hpp"

namespace apt::sim {

/// One snapshot of all processors at an event time.
struct TraceRow {
  TimeMs time = 0.0;
  /// Per processor: "<node-id>-<kernel>" while executing, with two
  /// annotated states — "<node-id>-<kernel>:comm" while the processor is
  /// held stalled on the kernel's input transfers (occupied but not yet
  /// computing), and "<node-id>-<kernel>:x" while it runs the eventually-
  /// cancelled losing attempt of a hedge race — or "idle".
  std::vector<std::string> proc_activity;
};

struct Trace {
  std::vector<TraceRow> rows;
  TimeMs end_time = 0.0;
};

/// Builds the state log from a finished schedule. Event times are all
/// distinct exec_start values (state-change instants); the terminal
/// "everything finished" state is summarised by end_time.
Trace build_trace(const dag::Dag& dag, const System& system,
                  const SimResult& result);

/// Renders rows in the Figure 5 textual layout.
std::string format_trace(const System& system, const Trace& trace,
                         int precision = 1);

}  // namespace apt::sim
