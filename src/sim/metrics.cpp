#include "sim/metrics.hpp"

#include <stdexcept>

#include "util/stats.hpp"

namespace apt::sim {

SimMetrics compute_metrics(const dag::Dag& dag, const System& system,
                           const SimResult& result) {
  if (result.schedule.size() != dag.node_count())
    throw std::invalid_argument("compute_metrics: schedule/DAG size mismatch");

  SimMetrics m;
  m.makespan = result.makespan;
  m.kernel_count = result.schedule.size();
  m.per_proc.resize(system.proc_count());
  for (ProcId p = 0; p < system.proc_count(); ++p)
    m.per_proc[p].name = system.processor(p).name;

  std::vector<double> lambdas;
  lambdas.reserve(result.schedule.size());

  for (const ScheduledKernel& k : result.schedule) {
    if (k.proc == kInvalidProc)
      throw std::invalid_argument("compute_metrics: unscheduled kernel");
    ProcBreakdown& pb = m.per_proc.at(k.proc);
    pb.compute_ms += k.exec_ms;
    pb.transfer_ms += k.transfer_stall_ms();
    ++pb.kernel_count;

    // λ per kernel = (exec_start − ready) minus the data-movement part.
    // Decision/dispatch overheads already delay exec_start, so they are
    // contained in this value.
    const TimeMs lambda = k.wait_ms();
    m.lambda.total_ms += lambda;
    if (lambda > 0.0) lambdas.push_back(lambda);

    if (k.alternative) {
      ++m.alternative_count;
      ++m.alternative_by_kernel[dag.node(k.node).kernel];
    }
  }

  const SystemConfig& cfg = system.config();
  for (ProcId p = 0; p < system.proc_count(); ++p) {
    ProcBreakdown& pb = m.per_proc[p];
    pb.idle_ms = m.makespan - pb.compute_ms - pb.transfer_ms;
    const std::size_t type = lut::index_of(system.processor(p).type);
    pb.energy_j = cfg.active_power_w[type] * pb.compute_ms / 1000.0 +
                  cfg.idle_power_w[type] *
                      (pb.transfer_ms + pb.idle_ms) / 1000.0;
    m.total_energy_j += pb.energy_j;
  }

  m.lambda.occurrences = lambdas.size();
  if (!lambdas.empty()) {
    m.lambda.avg_ms =
        m.lambda.total_ms / static_cast<double>(lambdas.size());
    m.lambda.stddev_ms = util::stddev_about(lambdas, m.lambda.avg_ms);
  }
  return m;
}

}  // namespace apt::sim
