#include "sim/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/intervals.hpp"
#include "util/stats.hpp"

namespace apt::sim {

SimMetrics compute_metrics(const dag::Dag& dag, const System& system,
                           const SimResult& result) {
  if (result.schedule.size() != dag.node_count())
    throw std::invalid_argument("compute_metrics: schedule/DAG size mismatch");

  SimMetrics m;
  m.makespan = result.makespan;
  m.kernel_count = result.schedule.size();
  m.per_proc.resize(system.proc_count());
  for (ProcId p = 0; p < system.proc_count(); ++p)
    m.per_proc[p].name = system.processor(p).name;

  std::vector<double> lambdas;
  lambdas.reserve(result.schedule.size());

  for (const ScheduledKernel& k : result.schedule) {
    if (k.proc == kInvalidProc)
      throw std::invalid_argument("compute_metrics: unscheduled kernel");
    ProcBreakdown& pb = m.per_proc.at(k.proc);
    pb.compute_ms += k.exec_ms;
    pb.transfer_ms += k.transfer_stall_ms();
    ++pb.kernel_count;

    // λ per kernel = (exec_start − ready) minus the data-movement part.
    // Decision/dispatch overheads already delay exec_start, so they are
    // contained in this value.
    const TimeMs lambda = k.wait_ms();
    m.lambda.total_ms += lambda;
    if (lambda > 0.0) lambdas.push_back(lambda);

    if (k.alternative) {
      ++m.alternative_count;
      ++m.alternative_by_kernel[dag.node(k.node).kernel];
    }
  }

  const SystemConfig& cfg = system.config();
  for (ProcId p = 0; p < system.proc_count(); ++p) {
    ProcBreakdown& pb = m.per_proc[p];
    pb.idle_ms = m.makespan - pb.compute_ms - pb.transfer_ms;
    const std::size_t type = lut::index_of(system.processor(p).type);
    pb.energy_j = cfg.active_power_w[type] * pb.compute_ms / 1000.0 +
                  cfg.idle_power_w[type] *
                      (pb.transfer_ms + pb.idle_ms) / 1000.0;
    m.total_energy_j += pb.energy_j;
  }

  m.lambda.occurrences = lambdas.size();
  if (!lambdas.empty()) {
    m.lambda.avg_ms =
        m.lambda.total_ms / static_cast<double>(lambdas.size());
    m.lambda.stddev_ms = util::stddev_about(lambdas, m.lambda.avg_ms);
  }

  // Interconnect breakdown from the simulated link messages (contended
  // topologies only — result.transfers is empty under ideal).
  const net::Topology& topology = system.topology();
  if (!result.transfers.empty()) {
    m.per_link.resize(topology.link_count());
    for (net::LinkId l = 0; l < topology.link_count(); ++l)
      m.per_link[l].name = topology.link_name(l);
    std::vector<std::vector<Interval>> drain_by_link(topology.link_count());
    std::vector<std::size_t> hops_by_link(topology.link_count(), 0);
    std::vector<Interval> comm;
    comm.reserve(result.transfers.size());
    for (const TransferRecord& t : result.transfers) {
      // A message occupies every link of its route for its whole drain.
      for (const net::LinkId link : t.path) {
        if (link >= topology.link_count())
          throw std::invalid_argument("compute_metrics: bad link id");
        LinkBreakdown& lb = m.per_link[link];
        lb.bytes += t.bytes;
        ++lb.transfer_count;
        hops_by_link[link] += t.hops();
        drain_by_link[link].emplace_back(t.drain_start, t.finish);
      }
      comm.emplace_back(t.drain_start, t.finish);
    }
    for (net::LinkId l = 0; l < topology.link_count(); ++l) {
      m.per_link[l].busy_ms = merge_union(drain_by_link[l]);
      if (m.makespan > 0.0)
        m.per_link[l].utilization = m.per_link[l].busy_ms / m.makespan;
      if (m.per_link[l].transfer_count > 0)
        m.per_link[l].avg_hops =
            static_cast<double>(hops_by_link[l]) /
            static_cast<double>(m.per_link[l].transfer_count);
    }
    std::vector<Interval> compute;
    compute.reserve(result.schedule.size());
    for (const ScheduledKernel& k : result.schedule)
      compute.emplace_back(k.exec_start, k.finish_time);
    m.comm_busy_ms = merge_union(comm);
    merge_union(compute);
    m.comm_compute_overlap_ms = union_overlap(comm, compute);
  }
  return m;
}

// --- Open-system (streaming) metrics -----------------------------------------

LevelTrace::LevelTrace(std::size_t max_samples)
    : max_samples_(std::max<std::size_t>(max_samples, 2)) {}

void LevelTrace::set_window_start(TimeMs start) { window_start_ = start; }

void LevelTrace::account_segment(TimeMs upto) {
  // Integrate last_level_ over [last_time_, upto] ∩ [window_start_, ∞).
  const TimeMs from = std::max(last_time_, window_start_);
  if (upto > from) {
    integral_ += static_cast<double>(last_level_) * (upto - from);
    max_level_ = std::max(max_level_, last_level_);
  }
}

void LevelTrace::push_sample(TimeMs now, std::size_t level) {
  if (observe_count_++ % sample_stride_ != 0) return;
  samples_.emplace_back(now, level);
  if (samples_.size() < max_samples_) return;
  // Halve resolution: keep every other sample, double the stride.
  std::size_t out = 0;
  for (std::size_t i = 0; i < samples_.size(); i += 2)
    samples_[out++] = samples_[i];
  samples_.resize(out);
  sample_stride_ *= 2;
}

void LevelTrace::observe(TimeMs now, std::size_t level) {
  account_segment(now);
  // Peaks count the moment they are attained — even levels that vanish
  // within the same event instant (ready kernels assigned immediately)
  // register in max_level(), though only persisted levels carry weight in
  // the integral.
  if (now >= window_start_) max_level_ = std::max(max_level_, level);
  last_time_ = now;
  last_level_ = level;
  end_ = std::max(end_, now);
  push_sample(now, level);
}

void LevelTrace::finish(TimeMs end) {
  // account_segment already registers last_level_ in max_level_ whenever
  // the closing segment overlaps the window; a level last reached before
  // the window opened must NOT leak into the windowed maximum just because
  // the trace ends at the boundary.
  account_segment(end);
  last_time_ = std::max(last_time_, end);
  end_ = std::max(end_, last_time_);
}

double LevelTrace::time_weighted_avg() const {
  const TimeMs span = end_ - window_start_;
  return span > 0.0 ? integral_ / span : 0.0;
}

DistSummary DistSummary::summarize(std::vector<double> values) {
  DistSummary s;
  if (values.empty()) return s;
  double sum = 0.0;
  for (const double v : values) sum += v;
  s.avg = sum / static_cast<double>(values.size());
  std::sort(values.begin(), values.end());
  s.p50 = util::percentile_sorted(values, 50.0);
  s.p95 = util::percentile_sorted(values, 95.0);
  s.p99 = util::percentile_sorted(values, 99.0);
  s.max = values.back();
  return s;
}

StreamMetrics compute_stream_metrics(const System& system,
                                     const StreamObservation& observation) {
  if (observation.busy_in_window_ms.size() != system.proc_count() ||
      observation.kernels_in_window.size() != system.proc_count())
    throw std::invalid_argument(
        "compute_stream_metrics: per-processor arrays do not match the "
        "system");

  StreamMetrics m;
  m.apps_arrived = observation.apps_arrived;
  m.apps_completed = observation.completed.size();
  m.warmup_ms = observation.warmup_ms;
  m.end_ms = observation.end_ms;
  m.observed_ms = std::max(0.0, observation.end_ms - observation.warmup_ms);

  std::vector<double> flows;
  std::vector<double> slowdowns;
  for (const StreamAppStats& app : observation.completed) {
    m.kernels_completed += app.kernels;
    if (app.arrival_ms < observation.warmup_ms) continue;  // warmup truncation
    ++m.apps_measured;
    flows.push_back(app.flow_ms());
    slowdowns.push_back(app.slowdown());
  }
  m.flow_ms = DistSummary::summarize(std::move(flows));
  m.slowdown = DistSummary::summarize(std::move(slowdowns));
  if (m.observed_ms > 0.0)
    m.throughput_apps_per_s =
        static_cast<double>(m.apps_measured) / m.observed_ms * 1000.0;

  m.per_proc.resize(system.proc_count());
  double util_sum = 0.0;
  for (ProcId p = 0; p < system.proc_count(); ++p) {
    ProcBreakdown& pb = m.per_proc[p];
    pb.name = system.processor(p).name;
    pb.compute_ms = observation.busy_in_window_ms[p];
    pb.kernel_count = observation.kernels_in_window[p];
    pb.idle_ms = std::max(0.0, m.observed_ms - pb.compute_ms);
    if (m.observed_ms > 0.0) util_sum += pb.compute_ms / m.observed_ms;
  }
  if (system.proc_count() > 0)
    m.avg_utilization = util_sum / static_cast<double>(system.proc_count());

  m.queue_depth_avg = observation.queue_depth.time_weighted_avg();
  m.queue_depth_max = observation.queue_depth.max_level();
  m.live_apps_avg = observation.live_apps.time_weighted_avg();
  m.live_apps_max = observation.live_apps.max_level();
  m.queue_depth_samples = observation.queue_depth.samples();

  const std::size_t links = observation.link_busy_in_window_ms.size();
  if (links != observation.link_bytes_in_window.size() ||
      links != observation.link_transfers_in_window.size() ||
      links != observation.link_hops_in_window.size() ||
      links != observation.link_names.size())
    throw std::invalid_argument(
        "compute_stream_metrics: per-link arrays disagree");
  m.per_link.resize(links);
  for (std::size_t l = 0; l < links; ++l) {
    LinkBreakdown& lb = m.per_link[l];
    lb.name = observation.link_names[l];
    lb.busy_ms = observation.link_busy_in_window_ms[l];
    lb.bytes = observation.link_bytes_in_window[l];
    lb.transfer_count = observation.link_transfers_in_window[l];
    // Utilization over the observation window — whole-run division would
    // let warmup traffic bias the steady-state estimate.
    if (m.observed_ms > 0.0) lb.utilization = lb.busy_ms / m.observed_ms;
    if (lb.transfer_count > 0)
      lb.avg_hops = static_cast<double>(observation.link_hops_in_window[l]) /
                    static_cast<double>(lb.transfer_count);
  }
  m.tm_solve_stats = observation.tm_solve_stats;

  m.hedges_launched = observation.hedges_launched;
  m.hedges_replica_won = observation.hedges_replica_won;
  m.hedge_wasted_ms = observation.hedge_wasted_in_window_ms;
  m.profile = observation.profile;
  return m;
}

}  // namespace apt::sim
