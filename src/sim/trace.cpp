#include "sim/trace.hpp"

#include <algorithm>
#include <set>

#include "util/string_utils.hpp"

namespace apt::sim {

Trace build_trace(const dag::Dag& dag, const System& system,
                  const SimResult& result) {
  Trace trace;
  trace.end_time = result.makespan;

  // The thesis's Figure 5 logs one row per state change: whenever a kernel
  // starts or finishes (the final all-idle instant is summarised by the
  // "End time" line instead of a row).
  std::set<TimeMs> raw;
  for (const ScheduledKernel& k : result.schedule) {
    raw.insert(k.exec_start);
    if (k.finish_time < result.makespan) raw.insert(k.finish_time);
    // A comm-stall window starts where the processor becomes occupied but
    // is still waiting on input transfers; its end (exec_start) is already
    // an instant. No-op on uncontended/prefetched runs (transfer_ms == 0).
    if (k.transfer_stall_ms() > 0.0) raw.insert(k.occupied_from());
  }
  // Hedge races: the losing attempt occupies its processor from its own
  // start until the winner's finish — both are state changes on that
  // processor even though the schedule row only describes the winner.
  for (const HedgeRecord& h : result.hedges) {
    raw.insert(h.loser_start_ms);
    if (h.cancelled_ms < result.makespan) raw.insert(h.cancelled_ms);
  }
  // Coalesce instants separated by less than a microsecond (numerical dust
  // from transfer times), keeping the later one so a start immediately
  // following a finish shows the newly started kernel.
  std::vector<TimeMs> instants;
  constexpr TimeMs kCoalesce = 1e-6;
  for (const TimeMs t : raw) {
    if (!instants.empty() && t - instants.back() < kCoalesce)
      instants.back() = t;
    else
      instants.push_back(t);
  }

  for (const TimeMs t : instants) {
    TraceRow row;
    row.time = t;
    row.proc_activity.assign(system.proc_count(), "idle");
    for (const ScheduledKernel& k : result.schedule) {
      if (k.exec_start <= t && t < k.finish_time) {
        row.proc_activity.at(k.proc) =
            std::to_string(k.node) + "-" + dag.node(k.node).kernel;
      } else if (k.transfer_stall_ms() > 0.0 && k.occupied_from() <= t &&
                 t < k.exec_start) {
        // Occupied but stalled on input data — the ":comm" window.
        row.proc_activity.at(k.proc) =
            std::to_string(k.node) + "-" + dag.node(k.node).kernel + ":comm";
      }
    }
    // Losing hedge attempts run on a different processor than the winner's
    // schedule row, so they can only fill cells the loop above left idle.
    for (const HedgeRecord& h : result.hedges) {
      const ProcId loser = h.replica_won ? h.primary_proc : h.replica_proc;
      if (h.loser_start_ms <= t && t < h.cancelled_ms) {
        row.proc_activity.at(loser) =
            std::to_string(h.node) + "-" + dag.node(h.node).kernel + ":x";
      }
    }
    trace.rows.push_back(std::move(row));
  }
  return trace;
}

std::string format_trace(const System& system, const Trace& trace,
                         int precision) {
  // Fixed-width cells: "NAME:activity" padded to the widest activity seen
  // in that column, plus a separating gap.
  std::vector<std::size_t> widths(system.proc_count(), 4);  // "idle"
  for (const TraceRow& row : trace.rows) {
    for (std::size_t p = 0; p < row.proc_activity.size(); ++p)
      widths[p] = std::max(widths[p], row.proc_activity[p].size());
  }
  std::string out;
  for (const TraceRow& row : trace.rows) {
    std::string line;
    for (std::size_t p = 0; p < row.proc_activity.size(); ++p) {
      std::string cell = system.processor(static_cast<ProcId>(p)).name + ":" +
                         row.proc_activity[p];
      cell += std::string(widths[p] - row.proc_activity[p].size() + 3, ' ');
      line += cell;
    }
    line += util::format_double(row.time, precision);
    out += line + "\n";
  }
  out += "End time: " + util::format_double(trace.end_time, 3) + "\n";
  return out;
}

}  // namespace apt::sim
