#include "sim/gantt.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/csv.hpp"
#include "util/string_utils.hpp"

namespace apt::sim {

std::string ascii_gantt(const dag::Dag& dag, const System& system,
                        const SimResult& result, std::size_t width) {
  if (width < 10) throw std::invalid_argument("ascii_gantt: width too small");
  if (result.schedule.empty()) return "(empty schedule)\n";

  const double scale = result.makespan / static_cast<double>(width);
  std::vector<std::string> rows(system.proc_count(),
                                std::string(width, '.'));

  auto col = [&](TimeMs t) {
    const auto c = static_cast<std::size_t>(t / scale);
    return std::min(c, width - 1);
  };
  auto letter = [](dag::NodeId n) {
    return static_cast<char>('a' + (n % 26));
  };

  for (const ScheduledKernel& k : result.schedule) {
    std::string& row = rows.at(k.proc);
    // transfer stall first, then execution; execution wins contested cells.
    for (std::size_t c = col(k.occupied_from()); c <= col(k.finish_time) &&
                                                 k.transfer_ms > 0.0;
         ++c) {
      if (c < col(k.exec_start)) row[c] = '-';
    }
    for (std::size_t c = col(k.exec_start); c <= col(k.finish_time); ++c) {
      // Zero-width kernels still get one cell so they stay visible.
      row[c] = letter(k.node);
      if (c == col(k.finish_time)) break;
    }
  }

  std::size_t name_width = 0;
  for (const Processor& p : system.processors())
    name_width = std::max(name_width, p.name.size());

  std::string out;
  for (ProcId p = 0; p < system.proc_count(); ++p) {
    const std::string& name = system.processor(p).name;
    out += name + std::string(name_width - name.size(), ' ') + " |" +
           rows[p] + "|\n";
  }
  out += "0 ms" + std::string(width > 14 ? width - 10 : 1, ' ') +
         util::format_double(result.makespan, 1) + " ms\n";
  out += "legend:";
  for (const ScheduledKernel& k : result.schedule) {
    out += " ";
    out += letter(k.node);
    out += "=" + std::to_string(k.node) + ":" + dag.node(k.node).kernel;
  }
  out += "\n";
  return out;
}

std::string gantt_csv(const dag::Dag& dag, const System& system,
                      const SimResult& result) {
  util::CsvTable table({"node", "kernel", "data_size", "proc",
                        "occupied_from_ms", "exec_start_ms", "finish_ms",
                        "alternative"});
  std::vector<const ScheduledKernel*> ordered;
  ordered.reserve(result.schedule.size());
  for (const ScheduledKernel& k : result.schedule) ordered.push_back(&k);
  std::sort(ordered.begin(), ordered.end(),
            [](const ScheduledKernel* a, const ScheduledKernel* b) {
              if (a->exec_start != b->exec_start)
                return a->exec_start < b->exec_start;
              return a->node < b->node;
            });
  for (const ScheduledKernel* k : ordered) {
    table.add_row({std::to_string(k->node), dag.node(k->node).kernel,
                   std::to_string(dag.node(k->node).data_size),
                   system.processor(k->proc).name,
                   util::format_double(k->occupied_from(), 6),
                   util::format_double(k->exec_start, 6),
                   util::format_double(k->finish_time, 6),
                   k->alternative ? "1" : "0"});
  }
  return util::to_csv_string(table);
}

}  // namespace apt::sim
