#include "sim/validate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/intervals.hpp"

namespace apt::sim {

namespace {
constexpr double kTol = 1e-9;

bool close(double a, double b) { return std::abs(a - b) <= kTol * std::max({1.0, std::abs(a), std::abs(b)}); }

/// Per-link transfer aggregation for the capacity check: under fair
/// sharing a link is work-conserving, so the bytes it delivers can never
/// exceed bandwidth × (time it spent with >= 1 draining message). The
/// check pools every transfer's drain interval [drain_start, finish],
/// merges the union, and compares total bytes against capacity over it —
/// an invariant that holds for any schedule the transfer manager can
/// produce and fails for any over-capacity one.
struct LinkLoad {
  double bytes = 0.0;
  std::vector<Interval> drains;
};

/// Checks one run's transfer records (times already absolute). `tag`
/// prefixes messages; `exec_start_of(dst)` resolves the consumer's start.
template <typename ExecStartFn>
void check_transfers(const std::vector<TransferRecord>& transfers,
                     const System& system, const std::string& tag,
                     const ExecStartFn& exec_start_of,
                     std::vector<LinkLoad>& loads,
                     std::vector<Violation>& out) {
  const net::Topology& topology = system.topology();
  auto fail = [&](std::string msg) {
    out.push_back(Violation{std::move(msg)});
  };
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    const TransferRecord& t = transfers[i];
    const std::string ttag = tag + " transfer " + std::to_string(i);
    if (t.path.empty()) {
      fail(ttag + ": empty route (local pairs move no message)");
      continue;
    }
    bool links_ok = true;
    TimeMs route_latency = 0.0;
    double bottleneck_gbps = std::numeric_limits<double>::infinity();
    for (const net::LinkId link : t.path) {
      if (link == net::kNoLink || link >= topology.link_count()) {
        fail(ttag + ": invalid link id");
        links_ok = false;
        break;
      }
      route_latency += topology.latency_ms(link);
      bottleneck_gbps = std::min(bottleneck_gbps,
                                 topology.bandwidth_gbps(link));
    }
    if (!links_ok) continue;
    if (t.bytes < 0.0) fail(ttag + ": negative byte count");
    if (t.drain_start + kTol < t.start || t.finish + kTol < t.drain_start)
      fail(ttag + ": start/drain/finish out of order");
    if (!close(t.drain_start, t.start + route_latency))
      fail(ttag + ": drain_start != start + route head latency");
    // No transfer can beat its whole uncontended route to itself: head
    // latency summed over the hops, bytes at the bottleneck link's rate.
    const TimeMs min_duration =
        route_latency + t.bytes / (bottleneck_gbps * 1e6);
    if (t.finish - t.start + kTol * std::max(1.0, min_duration) <
        min_duration)
      fail(ttag + ": faster than the uncontended route");
    const TimeMs consumer_start = exec_start_of(t.dst);
    if (consumer_start + kTol < t.finish)
      fail(ttag + ": consumer kernel " + std::to_string(t.dst) +
           " starts before the message is delivered");
    // The message occupies every link of its route for its whole drain, so
    // its bytes and busy interval count against each hop's capacity.
    for (const net::LinkId link : t.path) {
      LinkLoad& load = loads[link];
      load.bytes += t.bytes;
      load.drains.emplace_back(t.drain_start, t.finish);
    }
  }
}

/// Resolves a transfer's consumer kernel to its exec_start (lowest() for an
/// out-of-range id, which check_transfers then reports) — the one rule both
/// the closed- and open-system validators share.
auto exec_start_resolver(const SimResult& result) {
  return [&result](dag::NodeId dst) {
    return dst < result.schedule.size()
               ? result.schedule[dst].exec_start
               : std::numeric_limits<TimeMs>::lowest();
  };
}

/// Checks one run's hedge records against its schedule: at most one
/// episode per kernel, valid distinct processors, the schedule entry is
/// the winning attempt, and the losing attempt was cancelled exactly at
/// the winner's finish. The loser's occupation span is handed to
/// `add_loser_span(proc, from, to, node)` so the caller can pool it into
/// its processor-exclusivity check — a cancelled attempt occupied real
/// processor time and must not overlap anything else.
template <typename AddLoserSpan>
void check_hedges(const std::vector<HedgeRecord>& hedges,
                  const SimResult& result, const System& system,
                  const std::string& tag, const AddLoserSpan& add_loser_span,
                  std::vector<Violation>& out) {
  auto fail = [&](std::string msg) {
    out.push_back(Violation{std::move(msg)});
  };
  std::vector<bool> hedged(result.schedule.size(), false);
  for (std::size_t i = 0; i < hedges.size(); ++i) {
    const HedgeRecord& h = hedges[i];
    const std::string htag = tag + "hedge " + std::to_string(i);
    if (h.node >= result.schedule.size()) {
      fail(htag + ": invalid kernel id");
      continue;
    }
    if (hedged[h.node])
      fail(htag + ": kernel " + std::to_string(h.node) +
           " hedged more than once");
    hedged[h.node] = true;
    if (h.primary_proc == kInvalidProc ||
        h.primary_proc >= system.proc_count() ||
        h.replica_proc == kInvalidProc ||
        h.replica_proc >= system.proc_count()) {
      fail(htag + ": invalid processor");
      continue;
    }
    if (h.primary_proc == h.replica_proc)
      fail(htag + ": replica raced on the primary's own processor");
    const ScheduledKernel& k = result.schedule[h.node];
    const ProcId winner_proc = h.replica_won ? h.replica_proc
                                             : h.primary_proc;
    if (k.proc != winner_proc)
      fail(htag + ": schedule entry does not describe the winning attempt");
    if (!close(h.winner_finish_ms, k.finish_time))
      fail(htag + ": winner finish != the kernel's scheduled finish");
    if (!close(h.cancelled_ms, h.winner_finish_ms))
      fail(htag + ": loser not cancelled at the winner's finish (exactly "
                  "one attempt may win)");
    if (h.cancelled_ms + kTol < h.loser_start_ms)
      fail(htag + ": negative wasted time (cancelled before the loser "
                  "started)");
    if (h.winner_finish_ms + kTol < h.launched_ms)
      fail(htag + ": replica launched after the race resolved");
    add_loser_span(h.replica_won ? h.primary_proc : h.replica_proc,
                   h.loser_start_ms, h.cancelled_ms, h.node);
  }
}

void check_link_capacity(const System& system, std::vector<LinkLoad>& loads,
                         std::vector<Violation>& out) {
  const net::Topology& topology = system.topology();
  for (net::LinkId l = 0; l < loads.size(); ++l) {
    LinkLoad& load = loads[l];
    if (load.drains.empty()) continue;
    const TimeMs busy = merge_union(load.drains);
    const double capacity = topology.bandwidth_gbps(l) * 1e6 * busy;
    if (load.bytes > capacity + kTol * std::max(1.0, capacity))
      out.push_back(Violation{
          "link " + topology.link_name(l) + ": delivered " +
          std::to_string(load.bytes) + " bytes in " + std::to_string(busy) +
          " busy ms — exceeds capacity " + std::to_string(capacity)});
  }
}
}  // namespace

std::vector<Violation> validate_schedule(const dag::Dag& dag,
                                         const System& system,
                                         const CostModel& cost,
                                         const SimResult& result) {
  std::vector<Violation> out;
  auto fail = [&](std::string msg) { out.push_back(Violation{std::move(msg)}); };

  if (result.schedule.size() != dag.node_count()) {
    fail("schedule size " + std::to_string(result.schedule.size()) +
         " != node count " + std::to_string(dag.node_count()));
    return out;
  }

  TimeMs latest = 0.0;
  for (dag::NodeId n = 0; n < dag.node_count(); ++n) {
    const ScheduledKernel& k = result.schedule[n];
    const std::string tag = "node " + std::to_string(n);
    if (k.node != n) fail(tag + ": record/node index mismatch");
    if (k.proc == kInvalidProc || k.proc >= system.proc_count()) {
      fail(tag + ": invalid processor");
      continue;
    }
    if (k.ready_time < 0.0 || k.assign_time + kTol < k.ready_time)
      fail(tag + ": assigned before ready");
    if (k.ready_time + kTol < dag.node(n).release_ms)
      fail(tag + ": ready before its release time");
    if (k.exec_start + kTol < k.assign_time)
      fail(tag + ": execution before assignment");
    if (!close(k.finish_time, k.exec_start + k.exec_ms))
      fail(tag + ": finish != exec_start + exec_ms");
    if (!(k.noise_mult > 0.0))
      fail(tag + ": non-positive noise multiplier");
    // Under service-time noise the realized duration is the cost model's
    // nominal time scaled by the recorded multiplier; with noise off the
    // multiplier is exactly 1.0 and this is the plain cost-model check.
    const TimeMs expected_exec =
        cost.exec_time_ms(dag, n, system.processor(k.proc)) * k.noise_mult;
    if (!close(k.exec_ms, expected_exec))
      fail(tag + ": exec_ms " + std::to_string(k.exec_ms) +
           " != cost model × noise_mult " + std::to_string(expected_exec));
    for (const dag::NodeId pred : dag.predecessors(n)) {
      const ScheduledKernel& pk = result.schedule[pred];
      if (k.exec_start + kTol < pk.finish_time)
        fail(tag + ": starts before predecessor " + std::to_string(pred) +
             " finishes");
      if (k.ready_time + kTol < pk.finish_time)
        fail(tag + ": marked ready before predecessor " +
             std::to_string(pred) + " finished");
    }
    latest = std::max(latest, k.finish_time);
  }

  // Processor exclusivity: the occupation intervals
  // [occupied_from, finish) of kernels sharing a processor never overlap —
  // with the cancelled losing attempts of hedged kernels pooled in (they
  // held their processor until the cancellation instant).
  struct ProcSpan {
    dag::NodeId node;
    TimeMs from;
    TimeMs to;
  };
  std::vector<std::vector<ProcSpan>> by_proc(system.proc_count());
  for (const ScheduledKernel& k : result.schedule) {
    if (k.proc != kInvalidProc && k.proc < system.proc_count())
      by_proc[k.proc].push_back(ProcSpan{k.node, k.occupied_from(),
                                         k.finish_time});
  }
  check_hedges(result.hedges, result, system, "",
               [&](ProcId proc, TimeMs from, TimeMs to, dag::NodeId node) {
                 by_proc[proc].push_back(ProcSpan{node, from, to});
               },
               out);
  for (ProcId p = 0; p < system.proc_count(); ++p) {
    std::vector<ProcSpan>& spans = by_proc[p];
    std::sort(spans.begin(), spans.end(),
              [](const ProcSpan& a, const ProcSpan& b) {
                if (a.from != b.from) return a.from < b.from;
                return a.node < b.node;
              });
    for (std::size_t i = 1; i < spans.size(); ++i) {
      if (spans[i].from + kTol < spans[i - 1].to)
        fail("processor " + system.processor(p).name + ": kernels " +
             std::to_string(spans[i - 1].node) + " and " +
             std::to_string(spans[i].node) + " overlap");
    }
  }

  if (!dag.empty() && !close(result.makespan, latest))
    fail("makespan " + std::to_string(result.makespan) +
         " != latest finish " + std::to_string(latest));

  // Interconnect invariants (contended topologies record link messages).
  if (!result.transfers.empty()) {
    std::vector<LinkLoad> loads(system.topology().link_count());
    check_transfers(result.transfers, system, "",
                    exec_start_resolver(result), loads, out);
    check_link_capacity(system, loads, out);
  }
  return out;
}

std::vector<Violation> validate_stream_schedule(
    const System& system, const std::vector<StreamAppView>& apps) {
  std::vector<Violation> out;
  auto fail = [&](std::string msg) { out.push_back(Violation{std::move(msg)}); };

  /// Occupation interval of one kernel, remembered across applications.
  struct Span {
    std::size_t app;
    dag::NodeId node;
    TimeMs from;
    TimeMs to;
  };
  std::vector<std::vector<Span>> by_proc(system.proc_count());
  std::vector<LinkLoad> link_loads(system.topology().link_count());

  for (std::size_t a = 0; a < apps.size(); ++a) {
    const StreamAppView& view = apps[a];
    const std::string app_tag = "app " + std::to_string(a);
    if (view.dag == nullptr || view.result == nullptr) {
      fail(app_tag + ": null dag/result");
      continue;
    }
    const dag::Dag& dag = *view.dag;
    const SimResult& result = *view.result;
    if (result.schedule.size() != dag.node_count()) {
      fail(app_tag + ": schedule size " +
           std::to_string(result.schedule.size()) + " != node count " +
           std::to_string(dag.node_count()));
      continue;
    }
    for (dag::NodeId n = 0; n < dag.node_count(); ++n) {
      const ScheduledKernel& k = result.schedule[n];
      const std::string tag = app_tag + " node " + std::to_string(n);
      if (k.node != n) fail(tag + ": record/node index mismatch");
      if (k.proc == kInvalidProc || k.proc >= system.proc_count()) {
        fail(tag + ": invalid processor");
        continue;
      }
      const TimeMs release = view.arrival_ms + dag.node(n).release_ms;
      if (k.ready_time + kTol < release)
        fail(tag + ": ready before its arrival/release instant");
      if (k.assign_time + kTol < k.ready_time)
        fail(tag + ": assigned before ready");
      if (k.exec_start + kTol < k.assign_time)
        fail(tag + ": execution before assignment");
      if (!close(k.finish_time, k.exec_start + k.exec_ms))
        fail(tag + ": finish != exec_start + exec_ms");
      for (const dag::NodeId pred : dag.predecessors(n)) {
        const ScheduledKernel& pk = result.schedule[pred];
        if (k.exec_start + kTol < pk.finish_time)
          fail(tag + ": starts before predecessor " + std::to_string(pred) +
               " finishes");
        if (k.ready_time + kTol < pk.finish_time)
          fail(tag + ": marked ready before predecessor " +
               std::to_string(pred) + " finished");
      }
      by_proc[k.proc].push_back(Span{a, n, k.occupied_from(), k.finish_time});
    }
    // Per-app transfer sanity; loads pool ACROSS apps (the links are as
    // shared as the processors).
    check_transfers(result.transfers, system, app_tag,
                    exec_start_resolver(result), link_loads, out);
    // Per-app hedge-record coherence; the losing attempts' occupation
    // spans join the cross-instance exclusivity pool below.
    check_hedges(result.hedges, result, system, app_tag + " ",
                 [&](ProcId proc, TimeMs from, TimeMs to, dag::NodeId node) {
                   by_proc[proc].push_back(Span{a, node, from, to});
                 },
                 out);
  }
  check_link_capacity(system, link_loads, out);

  // Cross-instance exclusivity: kernels of *different* applications share
  // the processors, so the overlap check must pool every span.
  for (ProcId p = 0; p < system.proc_count(); ++p) {
    std::vector<Span>& spans = by_proc[p];
    std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
      if (a.from != b.from) return a.from < b.from;
      if (a.app != b.app) return a.app < b.app;
      return a.node < b.node;
    });
    for (std::size_t i = 1; i < spans.size(); ++i) {
      if (spans[i].from + kTol < spans[i - 1].to)
        fail("processor " + system.processor(p).name + ": app " +
             std::to_string(spans[i - 1].app) + " kernel " +
             std::to_string(spans[i - 1].node) + " overlaps app " +
             std::to_string(spans[i].app) + " kernel " +
             std::to_string(spans[i].node));
    }
  }
  return out;
}

TimeMs critical_path_lower_bound_ms(const dag::Dag& dag, const System& system,
                                    const CostModel& cost) {
  if (dag.empty()) return 0.0;
  std::vector<TimeMs> best(dag.node_count(), 0.0);
  for (dag::NodeId n = 0; n < dag.node_count(); ++n) {
    TimeMs b = std::numeric_limits<TimeMs>::infinity();
    for (const Processor& p : system.processors())
      b = std::min(b, cost.exec_time_ms(dag, n, p));
    best[n] = b;
  }
  std::vector<TimeMs> longest(dag.node_count(), 0.0);
  TimeMs bound = 0.0;
  for (const dag::NodeId n : dag.topological_order()) {
    longest[n] += best[n];
    bound = std::max(bound, longest[n]);
    for (const dag::NodeId s : dag.successors(n))
      longest[s] = std::max(longest[s], longest[n]);
  }
  return bound;
}

TimeMs makespan_lower_bound_ms(const dag::Dag& dag, const System& system,
                               const CostModel& cost) {
  if (dag.empty() || system.proc_count() == 0) return 0.0;
  TimeMs total_best = 0.0;
  for (dag::NodeId n = 0; n < dag.node_count(); ++n) {
    TimeMs b = std::numeric_limits<TimeMs>::infinity();
    for (const Processor& p : system.processors())
      b = std::min(b, cost.exec_time_ms(dag, n, p));
    total_best += b;
  }
  const TimeMs area = total_best / static_cast<double>(system.proc_count());
  return std::max(area, critical_path_lower_bound_ms(dag, system, cost));
}

}  // namespace apt::sim
