#include "sim/validate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace apt::sim {

namespace {
constexpr double kTol = 1e-9;

bool close(double a, double b) { return std::abs(a - b) <= kTol * std::max({1.0, std::abs(a), std::abs(b)}); }
}  // namespace

std::vector<Violation> validate_schedule(const dag::Dag& dag,
                                         const System& system,
                                         const CostModel& cost,
                                         const SimResult& result) {
  std::vector<Violation> out;
  auto fail = [&](std::string msg) { out.push_back(Violation{std::move(msg)}); };

  if (result.schedule.size() != dag.node_count()) {
    fail("schedule size " + std::to_string(result.schedule.size()) +
         " != node count " + std::to_string(dag.node_count()));
    return out;
  }

  TimeMs latest = 0.0;
  for (dag::NodeId n = 0; n < dag.node_count(); ++n) {
    const ScheduledKernel& k = result.schedule[n];
    const std::string tag = "node " + std::to_string(n);
    if (k.node != n) fail(tag + ": record/node index mismatch");
    if (k.proc == kInvalidProc || k.proc >= system.proc_count()) {
      fail(tag + ": invalid processor");
      continue;
    }
    if (k.ready_time < 0.0 || k.assign_time + kTol < k.ready_time)
      fail(tag + ": assigned before ready");
    if (k.ready_time + kTol < dag.node(n).release_ms)
      fail(tag + ": ready before its release time");
    if (k.exec_start + kTol < k.assign_time)
      fail(tag + ": execution before assignment");
    if (!close(k.finish_time, k.exec_start + k.exec_ms))
      fail(tag + ": finish != exec_start + exec_ms");
    const TimeMs expected_exec =
        cost.exec_time_ms(dag, n, system.processor(k.proc));
    if (!close(k.exec_ms, expected_exec))
      fail(tag + ": exec_ms " + std::to_string(k.exec_ms) +
           " != cost model " + std::to_string(expected_exec));
    for (dag::NodeId pred : dag.predecessors(n)) {
      const ScheduledKernel& pk = result.schedule[pred];
      if (k.exec_start + kTol < pk.finish_time)
        fail(tag + ": starts before predecessor " + std::to_string(pred) +
             " finishes");
      if (k.ready_time + kTol < pk.finish_time)
        fail(tag + ": marked ready before predecessor " +
             std::to_string(pred) + " finished");
    }
    latest = std::max(latest, k.finish_time);
  }

  // Processor exclusivity: the occupation intervals
  // [occupied_from, finish) of kernels sharing a processor never overlap.
  for (ProcId p = 0; p < system.proc_count(); ++p) {
    std::vector<const ScheduledKernel*> on_proc;
    for (const ScheduledKernel& k : result.schedule) {
      if (k.proc == p) on_proc.push_back(&k);
    }
    std::sort(on_proc.begin(), on_proc.end(),
              [](const ScheduledKernel* a, const ScheduledKernel* b) {
                return a->occupied_from() < b->occupied_from();
              });
    for (std::size_t i = 1; i < on_proc.size(); ++i) {
      if (on_proc[i]->occupied_from() + kTol < on_proc[i - 1]->finish_time)
        fail("processor " + system.processor(p).name + ": kernels " +
             std::to_string(on_proc[i - 1]->node) + " and " +
             std::to_string(on_proc[i]->node) + " overlap");
    }
  }

  if (!dag.empty() && !close(result.makespan, latest))
    fail("makespan " + std::to_string(result.makespan) +
         " != latest finish " + std::to_string(latest));
  return out;
}

std::vector<Violation> validate_stream_schedule(
    const System& system, const std::vector<StreamAppView>& apps) {
  std::vector<Violation> out;
  auto fail = [&](std::string msg) { out.push_back(Violation{std::move(msg)}); };

  /// Occupation interval of one kernel, remembered across applications.
  struct Span {
    std::size_t app;
    dag::NodeId node;
    TimeMs from;
    TimeMs to;
  };
  std::vector<std::vector<Span>> by_proc(system.proc_count());

  for (std::size_t a = 0; a < apps.size(); ++a) {
    const StreamAppView& view = apps[a];
    const std::string app_tag = "app " + std::to_string(a);
    if (view.dag == nullptr || view.result == nullptr) {
      fail(app_tag + ": null dag/result");
      continue;
    }
    const dag::Dag& dag = *view.dag;
    const SimResult& result = *view.result;
    if (result.schedule.size() != dag.node_count()) {
      fail(app_tag + ": schedule size " +
           std::to_string(result.schedule.size()) + " != node count " +
           std::to_string(dag.node_count()));
      continue;
    }
    for (dag::NodeId n = 0; n < dag.node_count(); ++n) {
      const ScheduledKernel& k = result.schedule[n];
      const std::string tag = app_tag + " node " + std::to_string(n);
      if (k.node != n) fail(tag + ": record/node index mismatch");
      if (k.proc == kInvalidProc || k.proc >= system.proc_count()) {
        fail(tag + ": invalid processor");
        continue;
      }
      const TimeMs release = view.arrival_ms + dag.node(n).release_ms;
      if (k.ready_time + kTol < release)
        fail(tag + ": ready before its arrival/release instant");
      if (k.assign_time + kTol < k.ready_time)
        fail(tag + ": assigned before ready");
      if (k.exec_start + kTol < k.assign_time)
        fail(tag + ": execution before assignment");
      if (!close(k.finish_time, k.exec_start + k.exec_ms))
        fail(tag + ": finish != exec_start + exec_ms");
      for (dag::NodeId pred : dag.predecessors(n)) {
        const ScheduledKernel& pk = result.schedule[pred];
        if (k.exec_start + kTol < pk.finish_time)
          fail(tag + ": starts before predecessor " + std::to_string(pred) +
               " finishes");
        if (k.ready_time + kTol < pk.finish_time)
          fail(tag + ": marked ready before predecessor " +
               std::to_string(pred) + " finished");
      }
      by_proc[k.proc].push_back(Span{a, n, k.occupied_from(), k.finish_time});
    }
  }

  // Cross-instance exclusivity: kernels of *different* applications share
  // the processors, so the overlap check must pool every span.
  for (ProcId p = 0; p < system.proc_count(); ++p) {
    std::vector<Span>& spans = by_proc[p];
    std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
      if (a.from != b.from) return a.from < b.from;
      if (a.app != b.app) return a.app < b.app;
      return a.node < b.node;
    });
    for (std::size_t i = 1; i < spans.size(); ++i) {
      if (spans[i].from + kTol < spans[i - 1].to)
        fail("processor " + system.processor(p).name + ": app " +
             std::to_string(spans[i - 1].app) + " kernel " +
             std::to_string(spans[i - 1].node) + " overlaps app " +
             std::to_string(spans[i].app) + " kernel " +
             std::to_string(spans[i].node));
    }
  }
  return out;
}

TimeMs critical_path_lower_bound_ms(const dag::Dag& dag, const System& system,
                                    const CostModel& cost) {
  if (dag.empty()) return 0.0;
  std::vector<TimeMs> best(dag.node_count(), 0.0);
  for (dag::NodeId n = 0; n < dag.node_count(); ++n) {
    TimeMs b = std::numeric_limits<TimeMs>::infinity();
    for (const Processor& p : system.processors())
      b = std::min(b, cost.exec_time_ms(dag, n, p));
    best[n] = b;
  }
  std::vector<TimeMs> longest(dag.node_count(), 0.0);
  TimeMs bound = 0.0;
  for (dag::NodeId n : dag.topological_order()) {
    longest[n] += best[n];
    bound = std::max(bound, longest[n]);
    for (dag::NodeId s : dag.successors(n))
      longest[s] = std::max(longest[s], longest[n]);
  }
  return bound;
}

TimeMs makespan_lower_bound_ms(const dag::Dag& dag, const System& system,
                               const CostModel& cost) {
  if (dag.empty() || system.proc_count() == 0) return 0.0;
  TimeMs total_best = 0.0;
  for (dag::NodeId n = 0; n < dag.node_count(); ++n) {
    TimeMs b = std::numeric_limits<TimeMs>::infinity();
    for (const Processor& p : system.processors())
      b = std::min(b, cost.exec_time_ms(dag, n, p));
    total_best += b;
  }
  const TimeMs area = total_best / static_cast<double>(system.proc_count());
  return std::max(area, critical_path_lower_bound_ms(dag, system, cost));
}

}  // namespace apt::sim
