#include "sim/noise.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace apt::sim {

namespace {

/// Salt decorrelating the noise seed family from every other stream_seed
/// family derived from the same base seed (arrivals, instances, policies).
constexpr std::uint64_t kNoiseSeedSalt = 0x5707CA571CA11D1EULL;

}  // namespace

void NoiseSpec::validate() const {
  if (sigma < 0.0)
    throw std::invalid_argument("NoiseSpec: sigma must be >= 0");
  if (heavy_tail_prob < 0.0 || heavy_tail_prob > 1.0)
    throw std::invalid_argument(
        "NoiseSpec: heavy_tail_prob must be in [0,1]");
  if (heavy_tail_multiplier < 1.0)
    throw std::invalid_argument(
        "NoiseSpec: heavy_tail_multiplier must be >= 1");
}

void HedgeSpec::validate() const {
  if (quantile < 0.0 || quantile > 1.0)
    throw std::invalid_argument("HedgeSpec: quantile must be in [0,1]");
  if (threshold_factor < 1.0)
    throw std::invalid_argument("HedgeSpec: threshold_factor must be >= 1");
  if (window == 0)
    throw std::invalid_argument("HedgeSpec: window must be >= 1");
}

double noise_multiplier(const NoiseSpec& spec, std::uint64_t instance,
                        std::uint64_t node, std::uint64_t replica) {
  if (!spec.enabled()) return 1.0;
  // One substream per (instance, node, replica): nested stream_seed hops
  // are each O(1), and the resulting draw is independent of the order in
  // which the engine happens to start kernels.
  util::Rng rng(util::stream_seed(
      util::stream_seed(util::stream_seed(spec.seed ^ kNoiseSeedSalt,
                                          instance),
                        node),
      replica));
  double mult = 1.0;
  if (spec.sigma > 0.0) {
    // Box–Muller from two pinned uniform01 draws; the 1-u guards keep the
    // log argument in (0,1]. Mean-preserving: E[exp(sigma z - sigma²/2)]=1.
    const double u1 = 1.0 - rng.uniform01();
    const double u2 = rng.uniform01();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    mult = std::exp(spec.sigma * z - 0.5 * spec.sigma * spec.sigma);
  }
  if (spec.heavy_tail_prob > 0.0 && rng.bernoulli(spec.heavy_tail_prob))
    mult *= spec.heavy_tail_multiplier;
  return mult;
}

namespace {

/// Standard normal CDF via erfc (numerically stable in both tails).
double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / 1.4142135623730951);
}

/// CDF of the multiplier mixture: with probability 1−p a mean-preserving
/// lognormal L = exp(sigma·z − sigma²/2); with probability p the same L
/// times the heavy-tail factor M.
double mixture_cdf(const NoiseSpec& spec, double x) {
  if (!(x > 0.0)) return 0.0;
  const double s = spec.sigma;
  const double p =
      spec.heavy_tail_multiplier != 1.0 ? spec.heavy_tail_prob : 0.0;
  const double mu = -0.5 * s * s;
  const double base = normal_cdf((std::log(x) - mu) / s);
  if (p <= 0.0) return base;
  const double tail =
      normal_cdf((std::log(x / spec.heavy_tail_multiplier) - mu) / s);
  return (1.0 - p) * base + p * tail;
}

}  // namespace

double noise_quantile_multiplier(const NoiseSpec& spec, double q) {
  if (!(q > 0.0) || !(q < 1.0))
    throw std::invalid_argument(
        "noise_quantile_multiplier: q must be in (0, 1)");
  if (!spec.enabled()) return 1.0;
  const double p =
      spec.heavy_tail_multiplier != 1.0 ? spec.heavy_tail_prob : 0.0;
  if (spec.sigma == 0.0) {
    // Two-point distribution {1 w.p. 1−p, M w.p. p}: the quantile steps at
    // 1−p. P(X <= 1) = 1−p, so q <= 1−p maps to the unit mass.
    return q <= 1.0 - p ? 1.0 : spec.heavy_tail_multiplier;
  }
  // Bisection on ln x. The mixture CDF is strictly increasing for
  // sigma > 0, so the bracket below (10 sigma beyond each component's
  // median, on both sides) always contains the root.
  const double s = spec.sigma;
  double lo = -0.5 * s * s - 10.0 * s;
  double hi = -0.5 * s * s + 10.0 * s +
              (p > 0.0 ? std::log(spec.heavy_tail_multiplier) : 0.0);
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (mixture_cdf(spec, std::exp(mid)) < q) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::exp(0.5 * (lo + hi));
}

}  // namespace apt::sim
