#include "sim/noise.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace apt::sim {

namespace {

/// Salt decorrelating the noise seed family from every other stream_seed
/// family derived from the same base seed (arrivals, instances, policies).
constexpr std::uint64_t kNoiseSeedSalt = 0x5707CA571CA11D1EULL;

}  // namespace

void NoiseSpec::validate() const {
  if (sigma < 0.0)
    throw std::invalid_argument("NoiseSpec: sigma must be >= 0");
  if (heavy_tail_prob < 0.0 || heavy_tail_prob > 1.0)
    throw std::invalid_argument(
        "NoiseSpec: heavy_tail_prob must be in [0,1]");
  if (heavy_tail_multiplier < 1.0)
    throw std::invalid_argument(
        "NoiseSpec: heavy_tail_multiplier must be >= 1");
}

void HedgeSpec::validate() const {
  if (quantile < 0.0 || quantile > 1.0)
    throw std::invalid_argument("HedgeSpec: quantile must be in [0,1]");
  if (threshold_factor < 1.0)
    throw std::invalid_argument("HedgeSpec: threshold_factor must be >= 1");
  if (window == 0)
    throw std::invalid_argument("HedgeSpec: window must be >= 1");
}

double noise_multiplier(const NoiseSpec& spec, std::uint64_t instance,
                        std::uint64_t node, std::uint64_t replica) {
  if (!spec.enabled()) return 1.0;
  // One substream per (instance, node, replica): nested stream_seed hops
  // are each O(1), and the resulting draw is independent of the order in
  // which the engine happens to start kernels.
  util::Rng rng(util::stream_seed(
      util::stream_seed(util::stream_seed(spec.seed ^ kNoiseSeedSalt,
                                          instance),
                        node),
      replica));
  double mult = 1.0;
  if (spec.sigma > 0.0) {
    // Box–Muller from two pinned uniform01 draws; the 1-u guards keep the
    // log argument in (0,1]. Mean-preserving: E[exp(sigma z - sigma²/2)]=1.
    const double u1 = 1.0 - rng.uniform01();
    const double u2 = rng.uniform01();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    mult = std::exp(spec.sigma * z - 0.5 * spec.sigma * spec.sigma);
  }
  if (spec.heavy_tail_prob > 0.0 && rng.bernoulli(spec.heavy_tail_prob))
    mult *= spec.heavy_tail_multiplier;
  return mult;
}

}  // namespace apt::sim
