// Interval-union arithmetic shared by the metrics aggregator and the
// schedule validator (per-link busy time, comm/compute overlap). One
// implementation so the two layers can never disagree about merge
// semantics (touching endpoints coalesce).
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/system.hpp"

namespace apt::sim {

using Interval = std::pair<TimeMs, TimeMs>;

/// Sorts and merges `intervals` in place into disjoint ascending order
/// (empty/negative spans dropped, touching endpoints coalesced); returns
/// the union's total length.
inline TimeMs merge_union(std::vector<Interval>& intervals) {
  std::sort(intervals.begin(), intervals.end());
  TimeMs total = 0.0;
  std::size_t out = 0;
  for (const Interval& iv : intervals) {
    if (iv.second <= iv.first) continue;
    if (out > 0 && iv.first <= intervals[out - 1].second) {
      intervals[out - 1].second =
          std::max(intervals[out - 1].second, iv.second);
    } else {
      intervals[out++] = iv;
    }
  }
  intervals.resize(out);
  for (const Interval& iv : intervals) total += iv.second - iv.first;
  return total;
}

/// Length of the intersection of two merged (disjoint, sorted) unions.
inline TimeMs union_overlap(const std::vector<Interval>& a,
                            const std::vector<Interval>& b) {
  TimeMs total = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const TimeMs lo = std::max(a[i].first, b[j].first);
    const TimeMs hi = std::min(a[i].second, b[j].second);
    if (hi > lo) total += hi - lo;
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

}  // namespace apt::sim
