// Schedule validation: the correctness invariants every policy must satisfy.
// Used heavily by the test suite's property checks and available to library
// users for auditing custom policies.
#pragma once

#include <string>
#include <vector>

#include "dag/graph.hpp"
#include "sim/cost_model.hpp"
#include "sim/schedule.hpp"
#include "sim/system.hpp"

namespace apt::sim {

/// One violated invariant.
struct Violation {
  std::string message;
};

/// Checks a finished schedule:
///  * every kernel assigned exactly once to a valid processor;
///  * per-kernel timeline sane (ready <= assign <= exec_start <= finish,
///    finish == exec_start + exec_ms);
///  * precedence: a kernel never starts executing before all predecessors
///    finished;
///  * exclusivity: occupation intervals [assign, finish) of kernels sharing
///    a processor never overlap — including the cancelled losing attempts
///    of hedged kernels, whose processors are only free again after the
///    cancellation instant;
///  * exec_ms matches the cost model × the kernel's recorded noise
///    multiplier (exactly the cost model when noise is off);
///  * hedge records are coherent: at most one episode per kernel, valid
///    distinct processors, the schedule entry describes the winning
///    attempt, exactly one attempt wins (the loser is cancelled at the
///    winner's finish — never after, so wasted time is non-negative and
///    bounded);
///  * makespan equals the latest finish time.
std::vector<Violation> validate_schedule(const dag::Dag& dag,
                                         const System& system,
                                         const CostModel& cost,
                                         const SimResult& result);

/// Lower bound on any schedule's makespan: length of the DAG's critical
/// path using each kernel's *best-case* execution time and zero transfer.
TimeMs critical_path_lower_bound_ms(const dag::Dag& dag, const System& system,
                                    const CostModel& cost);

/// Tighter makespan lower bound: the larger of the critical-path bound and
/// the area bound (total best-case work divided by the processor count — P
/// processors cannot retire work faster than P-way parallelism). The
/// denominator of the stream engine's per-application slowdown metric.
TimeMs makespan_lower_bound_ms(const dag::Dag& dag, const System& system,
                               const CostModel& cost);

/// One application of a stream run, as the stream engine records it with
/// StreamOptions::record_schedules: times absolute, nodes indexed locally
/// in `dag`. The referenced objects must outlive the validation call.
struct StreamAppView {
  const dag::Dag* dag = nullptr;
  TimeMs arrival_ms = 0.0;
  const SimResult* result = nullptr;
};

/// Checks a finished multi-instance (open-system) schedule:
///  * per application, the same per-kernel timeline and precedence
///    invariants validate_schedule enforces, with readiness additionally
///    gated on the application's arrival instant (ready >= arrival +
///    release offset);
///  * exclusivity ACROSS instances: the occupation intervals of kernels
///    sharing a processor never overlap, regardless of which application
///    they belong to — the invariant a single-DAG validation cannot see.
std::vector<Violation> validate_stream_schedule(
    const System& system, const std::vector<StreamAppView>& apps);

}  // namespace apt::sim
