// Schedule validation: the correctness invariants every policy must satisfy.
// Used heavily by the test suite's property checks and available to library
// users for auditing custom policies.
#pragma once

#include <string>
#include <vector>

#include "dag/graph.hpp"
#include "sim/cost_model.hpp"
#include "sim/schedule.hpp"
#include "sim/system.hpp"

namespace apt::sim {

/// One violated invariant.
struct Violation {
  std::string message;
};

/// Checks a finished schedule:
///  * every kernel assigned exactly once to a valid processor;
///  * per-kernel timeline sane (ready <= assign <= exec_start <= finish,
///    finish == exec_start + exec_ms);
///  * precedence: a kernel never starts executing before all predecessors
///    finished;
///  * exclusivity: occupation intervals [assign, finish) of kernels sharing
///    a processor never overlap;
///  * exec_ms matches the cost model;
///  * makespan equals the latest finish time.
std::vector<Violation> validate_schedule(const dag::Dag& dag,
                                         const System& system,
                                         const CostModel& cost,
                                         const SimResult& result);

/// Lower bound on any schedule's makespan: length of the DAG's critical
/// path using each kernel's *best-case* execution time and zero transfer.
TimeMs critical_path_lower_bound_ms(const dag::Dag& dag, const System& system,
                                    const CostModel& cost);

}  // namespace apt::sim
