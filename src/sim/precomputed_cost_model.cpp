#include "sim/precomputed_cost_model.hpp"

namespace apt::sim {

PrecomputedCostModel::PrecomputedCostModel(const dag::Dag& dag,
                                           const System& system,
                                           const CostModel& base)
    : dag_(&dag), base_(base), proc_count_(system.proc_count()) {
  const std::size_t n = dag.node_count();
  const std::size_t p = proc_count_;
  const auto& procs = system.processors();

  exec_.resize(n * p);
  for (dag::NodeId node = 0; node < n; ++node) {
    for (std::size_t proc = 0; proc < p; ++proc)
      exec_[node * p + proc] = base.exec_time_ms(dag, node, procs[proc]);
  }

  edge_offset_.resize(n + 1, 0);
  for (dag::NodeId node = 0; node < n; ++node)
    edge_offset_[node + 1] = edge_offset_[node] + dag.out_degree(node);

  transfer_.resize(edge_offset_[n] * p * p);
  for (dag::NodeId src = 0; src < n; ++src) {
    const auto& succs = dag.successors(src);
    for (std::size_t k = 0; k < succs.size(); ++k) {
      TimeMs* slot = transfer_.data() + (edge_offset_[src] + k) * p * p;
      for (std::size_t from = 0; from < p; ++from) {
        for (std::size_t to = 0; to < p; ++to)
          slot[from * p + to] = base.transfer_time_ms(dag, src, succs[k],
                                                      procs[from], procs[to]);
      }
    }
  }
}

TimeMs PrecomputedCostModel::exec_time_ms(const dag::Dag& dag,
                                          dag::NodeId node,
                                          const Processor& proc) const {
  if (&dag != dag_ || node >= dag_->node_count() || proc.id >= proc_count_)
    return base_.exec_time_ms(dag, node, proc);
  return exec_[node * proc_count_ + proc.id];
}

TimeMs PrecomputedCostModel::transfer_time_ms(const dag::Dag& dag,
                                              dag::NodeId src, dag::NodeId dst,
                                              const Processor& from,
                                              const Processor& to) const {
  if (&dag != dag_ || src >= dag_->node_count() || from.id >= proc_count_ ||
      to.id >= proc_count_)
    return base_.transfer_time_ms(dag, src, dst, from, to);
  const auto& succs = dag_->successors(src);
  for (std::size_t k = 0; k < succs.size(); ++k) {
    if (succs[k] == dst) {
      return transfer_[(edge_offset_[src] + k) * proc_count_ * proc_count_ +
                       from.id * proc_count_ + to.id];
    }
  }
  // Not an edge of the precomputed dag (e.g. a hypothetical pair a policy
  // probes): answer from the base model.
  return base_.transfer_time_ms(dag, src, dst, from, to);
}

}  // namespace apt::sim
