// The simulated heterogeneous hardware platform (thesis Figure 1 / §3.2):
// a set of processor instances (any mix of CPU / GPU / FPGA categories)
// joined by PCIe-like point-to-point links with configurable throughput.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lut/proc_type.hpp"
#include "net/topology.hpp"

namespace apt::sim {

/// Simulation time in milliseconds (the unit of the lookup table).
using TimeMs = double;

/// Dense processor-instance index within a System.
using ProcId = std::uint32_t;
inline constexpr ProcId kInvalidProc = static_cast<ProcId>(-1);

/// One processor instance.
struct Processor {
  ProcId id;
  lut::ProcType type;
  std::string name;  ///< e.g. "CPU0", "GPU0", "FPGA1"
};

/// Point-to-point link throughput between processor instances.
///
/// The thesis uses a uniform PCIe rate between all processors (4 GB/s for
/// x8, 8 GB/s for x16); per-pair overrides allow modelling asymmetric
/// fabrics. Same-processor transfers are free.
class Interconnect {
 public:
  /// Uniform fabric at `uniform_gbps` gigabytes per second (> 0).
  Interconnect(std::size_t proc_count, double uniform_gbps);

  std::size_t proc_count() const noexcept { return proc_count_; }

  /// Overrides the rate of the directed link from -> to.
  void set_rate_gbps(ProcId from, ProcId to, double gbps);

  double rate_gbps(ProcId from, ProcId to) const;

  /// Milliseconds to move `bytes` from one processor to another; 0 when
  /// from == to.
  TimeMs transfer_time_ms(double bytes, ProcId from, ProcId to) const;

 private:
  std::size_t index(ProcId from, ProcId to) const;

  std::size_t proc_count_;
  std::vector<double> rate_;  // row-major [from][to], GB/s
};

/// Everything needed to instantiate a System.
struct SystemConfig {
  std::vector<lut::ProcType> processors;  ///< one entry per instance
  double link_rate_gbps = 4.0;            ///< uniform PCIe rate (x8 default)
  double bytes_per_element = 4.0;         ///< LUT data sizes are elements

  /// λ-model overheads (thesis §2.5.1). Both default to zero so that the
  /// worked example of Figure 5 reproduces exactly.
  TimeMs decision_overhead_ms = 0.0;  ///< scheduler think-time per assignment
  TimeMs dispatch_overhead_ms = 0.0;  ///< scheduler→processor hand-off

  /// Power model per processor *category* (watts), used for the energy
  /// metrics the thesis's motivation appeals to ("high performance and
  /// power efficiency"). Defaults are typical board powers of the thesis's
  /// platforms (i7-2600 class CPU, Tesla K20 class GPU, Virtex-7 class
  /// FPGA): active while computing, idle otherwise (transfers counted at
  /// idle power — DMA engines, not the compute fabric, move the data).
  std::array<double, lut::kNumProcTypes> active_power_w = {95.0, 225.0, 25.0};
  std::array<double, lut::kNumProcTypes> idle_power_w = {15.0, 25.0, 2.0};

  /// Interconnect topology (src/net). The default (ideal) keeps the
  /// pre-net behaviour bit for bit: transfers cost what the cost model
  /// says and never contend. Any other kind switches the engines to the
  /// contention-aware comm phase over the topology's shared links. A spec
  /// bandwidth of 0 tracks `link_rate_gbps`, so sweeping the rate axis
  /// sweeps the fabric too.
  net::TopologySpec topology;

  /// The paper's platform: one CPU + one GPU + one FPGA at `rate_gbps`.
  static SystemConfig paper_default(double rate_gbps = 4.0);
};

/// An immutable processor-set + interconnect.
class System {
 public:
  explicit System(SystemConfig config);

  const SystemConfig& config() const noexcept { return config_; }
  const std::vector<Processor>& processors() const noexcept { return procs_; }
  std::size_t proc_count() const noexcept { return procs_.size(); }
  const Processor& processor(ProcId id) const { return procs_.at(id); }

  Interconnect& interconnect() noexcept { return interconnect_; }
  const Interconnect& interconnect() const noexcept { return interconnect_; }

  /// The instantiated interconnect topology (config().topology resolved
  /// for this processor count and link rate).
  const net::Topology& topology() const noexcept { return topology_; }

  /// Number of instances of a category.
  std::size_t count_of(lut::ProcType type) const noexcept;

  /// Instance ids of a category, ascending.
  std::vector<ProcId> instances_of(lut::ProcType type) const;

 private:
  SystemConfig config_;
  std::vector<Processor> procs_;
  Interconnect interconnect_;
  net::Topology topology_;
};

}  // namespace apt::sim
