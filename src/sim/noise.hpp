// Seeded service-time noise: stochastic perturbation of the cost model's
// execution times.
//
// Everything the simulator costs is deterministic given the LUT — no
// stragglers, no heavy tails, none of what production schedulers actually
// fight. NoiseSpec adds a multiplicative noise layer on *realized*
// execution times: the duration a kernel actually runs is
//
//   exec_ms = nominal_exec_ms × noise_multiplier(spec, instance, node, rep)
//
// where the multiplier combines a mean-preserving lognormal factor
// (exp(sigma·z − sigma²/2), so E[factor] = 1 and expected throughput is
// unchanged) with a Bernoulli heavy-tail event (probability
// heavy_tail_prob, factor heavy_tail_multiplier — the "one request in
// fifty takes 20× longer" regime tail-tolerant schedulers are built for).
//
// Scheduler-visible estimates (SchedulerContext::exec_time_ms and friends)
// keep returning the NOMINAL times: policies plan against the cost model
// exactly as before, and only the simulated outcome deviates — which is
// precisely the straggler problem. The realized multiplier is recorded in
// ScheduledKernel::noise_mult so validators can audit
// exec_ms == nominal × noise_mult without re-deriving the draw.
//
// Determinism: the multiplier is a pure function of
// (spec.seed, instance, node, replica) via nested util::stream_seed
// substreams — independent of scheduling order, event interleaving, and
// worker count. The same seed therefore produces identical draws in
// sim::Engine (instance 0) and stream::StreamEngine (instance = the app's
// arrival index), and batch sweeps stay bit-identical for any --jobs.
// With the spec disabled (all defaults) no RNG is touched and every
// multiplier is exactly 1.0, reproducing noise-free timelines bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>

namespace apt::sim {

struct NoiseSpec {
  /// Lognormal scale: realized = nominal × exp(sigma·z − sigma²/2),
  /// z ~ N(0,1). 0 disables the lognormal factor.
  double sigma = 0.0;

  /// Probability a kernel execution is a heavy-tail event (straggler).
  double heavy_tail_prob = 0.0;

  /// Multiplier applied on a heavy-tail event (>= 1).
  double heavy_tail_multiplier = 20.0;

  /// Base seed of the per-kernel noise substreams.
  std::uint64_t seed = 0;

  /// True when any perturbation is configured; false reproduces the
  /// noise-free timelines bit-for-bit (no RNG is consulted).
  bool enabled() const noexcept {
    return sigma > 0.0 ||
           (heavy_tail_prob > 0.0 && heavy_tail_multiplier != 1.0);
  }

  /// Throws std::invalid_argument on a negative sigma, a probability
  /// outside [0,1], or a multiplier < 1.
  void validate() const;
};

/// Straggler hedging: when a running kernel's elapsed time exceeds a
/// rolling-quantile threshold of what its nominal cost predicted, launch a
/// duplicate ("replica") of it on an idle processor and let the two race.
/// First completion wins; the loser is cancelled at that instant and its
/// processor freed. This is the classic tail-tolerance tradeoff — spend
/// (bounded) duplicate work to cut p99 latency under heavy-tailed service
/// times.
///
/// The threshold for a kernel with nominal duration `nom` on its primary
/// processor is
///
///   hedge_after = nom × max(1, Q_quantile(inflation window)) × factor
///
/// where the inflation window is a util::RollingQuantile over the
/// realized/nominal ratios of recently completed kernels (bounded memory;
/// no full-sample retention). Until `min_samples` completions have been
/// observed the quantile is untrusted and `hedge_after = nom × factor`.
/// Each kernel is hedged at most once, and only when an idle processor
/// exists at the moment the threshold trips.
struct HedgeSpec {
  bool enabled = false;

  /// Quantile of the rolling inflation-ratio window that anchors the
  /// threshold (in [0,1]).
  double quantile = 0.95;

  /// Safety factor on top of the quantile — hedge only when the kernel has
  /// run `factor` times longer than the tail-adjusted expectation.
  double threshold_factor = 1.5;

  /// Completions observed before the rolling quantile is trusted.
  std::size_t min_samples = 16;

  /// RollingQuantile window capacity (bounds hedging memory).
  std::size_t window = 256;

  /// Throws std::invalid_argument on quantile outside [0,1],
  /// threshold_factor < 1, or a zero window.
  void validate() const;
};

/// The realized-over-nominal execution-time multiplier of one kernel run:
/// `instance` identifies the application (0 in the closed-system engine,
/// the arrival index in the stream engine), `node` the kernel within it,
/// and `replica` the attempt (0 = primary, 1 = hedged replica). Pure and
/// deterministic in its arguments; returns exactly 1.0 when the spec is
/// disabled. Always > 0.
double noise_multiplier(const NoiseSpec& spec, std::uint64_t instance,
                        std::uint64_t node, std::uint64_t replica = 0);

/// The q-quantile of the noise-multiplier distribution itself (the mixture
/// a single noise_multiplier draw follows): lognormal(−sigma²/2, sigma)
/// times an independent {1, heavy_tail_multiplier} Bernoulli factor. This
/// is the planning-side dual of noise_multiplier — quantile-ranking
/// policies (APT-Q) scale nominal estimates by it to price tail risk
/// without peeking at any realized draw. Deterministic and
/// seed-independent; returns exactly 1.0 when the spec is disabled, so
/// quantile-planning policies degenerate to their mean counterparts
/// bit-for-bit on noise-off runs. Closed form when sigma == 0 (a two-point
/// distribution); otherwise the mixture CDF is inverted by bisection to
/// ~1e-12 relative precision. Throws std::invalid_argument when q is
/// outside (0, 1).
double noise_quantile_multiplier(const NoiseSpec& spec, double q);

}  // namespace apt::sim
