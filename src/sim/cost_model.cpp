#include "sim/cost_model.hpp"

#include <stdexcept>

namespace apt::sim {

TimeMs CostModel::average_transfer_time_ms(const dag::Dag& dag,
                                           dag::NodeId src, dag::NodeId dst,
                                           const System& system) const {
  const auto& procs = system.processors();
  if (procs.size() < 2) return 0.0;
  double sum = 0.0;
  std::size_t pairs = 0;
  for (const Processor& from : procs) {
    for (const Processor& to : procs) {
      if (from.id == to.id) continue;
      sum += transfer_time_ms(dag, src, dst, from, to);
      ++pairs;
    }
  }
  return sum / static_cast<double>(pairs);
}

TimeMs CostModel::average_exec_time_ms(const dag::Dag& dag, dag::NodeId node,
                                       const System& system) const {
  const auto& procs = system.processors();
  double sum = 0.0;
  for (const Processor& p : procs) sum += exec_time_ms(dag, node, p);
  return sum / static_cast<double>(procs.size());
}

LutCostModel::LutCostModel(lut::LookupTable table, const System& system,
                           bool strict)
    : table_(std::move(table)),
      interconnect_(system.interconnect()),
      bytes_per_element_(system.config().bytes_per_element),
      strict_(strict) {
  if (table_.empty())
    throw std::invalid_argument("LutCostModel: empty lookup table");
}

const lut::Entry& LutCostModel::entry_for(const dag::Dag& dag,
                                          dag::NodeId node) const {
  const dag::Node& n = dag.node(node);
  if (strict_ || table_.contains(n.kernel, n.data_size))
    return table_.at(n.kernel, n.data_size);
  return table_.nearest(n.kernel, n.data_size);
}

TimeMs LutCostModel::exec_time_ms(const dag::Dag& dag, dag::NodeId node,
                                  const Processor& proc) const {
  return entry_for(dag, node).time(proc.type);
}

TimeMs LutCostModel::transfer_time_ms(const dag::Dag& dag, dag::NodeId src,
                                      dag::NodeId dst, const Processor& from,
                                      const Processor& to) const {
  (void)dst;  // the producing node's output size determines the payload
  if (from.id == to.id) return 0.0;
  return interconnect_.transfer_time_ms(
      edge_payload_bytes(dag, src, bytes_per_element_), from.id, to.id);
}

TopologyCostModel::TopologyCostModel(const CostModel& base,
                                     const System& system)
    : base_(base), system_(system) {}

TimeMs TopologyCostModel::exec_time_ms(const dag::Dag& dag, dag::NodeId node,
                                       const Processor& proc) const {
  return base_.exec_time_ms(dag, node, proc);
}

TimeMs TopologyCostModel::transfer_time_ms(const dag::Dag& dag,
                                           dag::NodeId src, dag::NodeId dst,
                                           const Processor& from,
                                           const Processor& to) const {
  (void)dst;  // the producing node's output size determines the payload
  if (from.id == to.id) return 0.0;
  return system_.topology().transfer_time_ms(
      edge_payload_bytes(dag, src, system_.config().bytes_per_element),
      from.id, to.id);
}

MatrixCostModel::MatrixCostModel(std::vector<std::vector<TimeMs>> exec)
    : exec_(std::move(exec)) {
  if (exec_.empty())
    throw std::invalid_argument("MatrixCostModel: empty execution matrix");
  const std::size_t cols = exec_.front().size();
  if (cols == 0)
    throw std::invalid_argument("MatrixCostModel: zero processors");
  for (const auto& row : exec_) {
    if (row.size() != cols)
      throw std::invalid_argument("MatrixCostModel: ragged execution matrix");
  }
}

void MatrixCostModel::set_comm_cost(dag::NodeId src, dag::NodeId dst,
                                    TimeMs cost) {
  if (cost < 0.0)
    throw std::invalid_argument("MatrixCostModel: negative communication cost");
  comm_[{src, dst}] = cost;
}

TimeMs MatrixCostModel::exec_time_ms(const dag::Dag& dag, dag::NodeId node,
                                     const Processor& proc) const {
  (void)dag;
  if (node >= exec_.size())
    throw std::out_of_range("MatrixCostModel: node beyond matrix rows");
  const auto& row = exec_[node];
  if (proc.id >= row.size())
    throw std::out_of_range("MatrixCostModel: processor beyond matrix columns");
  return row[proc.id];
}

TimeMs MatrixCostModel::transfer_time_ms(const dag::Dag& dag, dag::NodeId src,
                                         dag::NodeId dst,
                                         const Processor& from,
                                         const Processor& to) const {
  (void)dag;
  if (from.id == to.id) return 0.0;
  const auto it = comm_.find({src, dst});
  return it == comm_.end() ? 0.0 : it->second;
}

}  // namespace apt::sim
