// The discrete-event simulation engine.
//
// Drives a Policy over a DAG on a System with a CostModel and produces the
// per-kernel schedule. Deterministic: identical inputs give identical
// results (events at equal timestamps are processed in ascending node id).
//
// Communication: under the default ideal topology, transfer stalls are the
// cost model's analytic point-to-point times (uncontended — the paper's
// model). When the system carries a contended net::Topology, the engine
// instead simulates each non-local input edge as a sized message through a
// net::TransferManager (fair bandwidth sharing on shared links): the
// policy's commitment fixes the destination and starts the messages at the
// kernel's dispatch instant, the processor is held through the stall, and
// execution begins when the last message lands. Every message is recorded
// in SimResult::transfers for validation and link metrics. Static policies'
// prefetch assumption cannot hold on a contended fabric (data cannot move
// retroactively), so their plans become estimates — which is the point.
#pragma once

#include <deque>
#include <optional>
#include <queue>
#include <vector>

#include "dag/graph.hpp"
#include "sim/cost_model.hpp"
#include "sim/noise.hpp"
#include "sim/policy.hpp"
#include "sim/schedule.hpp"
#include "sim/system.hpp"

namespace apt::obs {
class Profile;
class TraceSink;
}  // namespace apt::obs

namespace apt::sim {

/// Optional stochastic extensions of one run. Defaults are all-off, which
/// reproduces the deterministic timelines bit-for-bit.
struct EngineOptions {
  /// Service-time noise on realized execution times (policies keep seeing
  /// nominal costs). The closed engine draws noise instance 0, so a
  /// single-instance stream run sees the same multipliers.
  NoiseSpec noise;
  /// Straggler hedging (replica races). Requires an uncontended topology:
  /// a replica's input transfers would need their own fabric messages,
  /// which the comm phase does not model.
  HedgeSpec hedging;

  /// Observability (src/obs), both null by default and provably inert:
  /// every emission site is a null-guarded read of already-committed
  /// simulation facts, so attaching either cannot change a simulated bit
  /// or consume an RNG draw. The pointees must outlive run().
  obs::TraceSink* sink = nullptr;
  obs::Profile* profile = nullptr;
};

/// Runs one simulation. The referenced dag/system/cost model must outlive
/// the call to run().
class Engine {
 public:
  Engine(const dag::Dag& dag, const System& system, const CostModel& cost);
  Engine(const dag::Dag& dag, const System& system, const CostModel& cost,
         EngineOptions options);

  /// Simulates the policy to completion and returns the schedule.
  /// Throws std::logic_error if the policy stalls (makes no assignment
  /// while work remains and all processors are idle), and
  /// std::invalid_argument on a bad options spec or on hedging over a
  /// contended topology.
  SimResult run(Policy& policy);

 private:
  class Context;

  const dag::Dag& dag_;
  const System& system_;
  const CostModel& cost_;
  EngineOptions options_;
};

}  // namespace apt::sim
