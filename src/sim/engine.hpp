// The discrete-event simulation engine.
//
// Drives a Policy over a DAG on a System with a CostModel and produces the
// per-kernel schedule. Deterministic: identical inputs give identical
// results (events at equal timestamps are processed in ascending node id).
#pragma once

#include <deque>
#include <optional>
#include <queue>
#include <vector>

#include "dag/graph.hpp"
#include "sim/cost_model.hpp"
#include "sim/policy.hpp"
#include "sim/schedule.hpp"
#include "sim/system.hpp"

namespace apt::sim {

/// Runs one simulation. The referenced dag/system/cost model must outlive
/// the call to run().
class Engine {
 public:
  Engine(const dag::Dag& dag, const System& system, const CostModel& cost);

  /// Simulates the policy to completion and returns the schedule.
  /// Throws std::logic_error if the policy stalls (makes no assignment
  /// while work remains and all processors are idle).
  SimResult run(Policy& policy);

 private:
  class Context;

  const dag::Dag& dag_;
  const System& system_;
  const CostModel& cost_;
};

}  // namespace apt::sim
