#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

#include "net/transfer_manager.hpp"
#include "obs/profile.hpp"
#include "obs/trace_sink.hpp"
#include "sim/precomputed_cost_model.hpp"
#include "util/contracts.hpp"
#include "util/rolling_quantile.hpp"

namespace apt::sim {

namespace {

/// What a popped event means. The numeric order is the processing order at
/// equal timestamps: primary completions resolve races before replica
/// completions (a tie goes to the primary), and hedge checks only fire
/// after every completion at that instant has retired its kernel (a kernel
/// finishing exactly at its threshold is never hedged).
enum class EventKind : std::uint8_t {
  kCompletion = 0,
  kReplica = 1,
  kHedgeCheck = 2,
};

/// Timed event in the event queue.
struct Completion {
  TimeMs time;
  dag::NodeId node;
  EventKind kind = EventKind::kCompletion;

  /// Min-heap ordering: earliest time first, ties by kind then ascending
  /// node id.
  bool operator>(const Completion& other) const noexcept {
    if (time != other.time) return time > other.time;
    if (kind != other.kind) return kind > other.kind;
    return node > other.node;
  }
};

}  // namespace

/// Engine internals: owns all mutable per-run state and implements the
/// SchedulerContext interface shown to the policy.
///
/// Hot-path bookkeeping is index based: the ready set keeps a per-node
/// position so removal is O(1) (tombstone now, compact lazily on the next
/// read), the idle-processor list is cached and rebuilt only after the
/// processor states actually changed, and queued kernels carry their
/// execution time so busy_until()/queued_work_ms() never re-query the cost
/// model.
class Engine::Context final : public SchedulerContext {
 public:
  Context(const dag::Dag& dag, const System& system, const CostModel& cost,
          Policy& policy, const EngineOptions& options)
      : dag_(dag),
        system_(system),
        cost_(cost),
        policy_(policy),
        noise_(options.noise),
        hedging_(options.hedging),
        hedge_window_(options.hedging.window),
        topology_(system.topology()),
        contended_(topology_.contended()),
        sink_(options.sink),
        profile_(options.profile),
        node_state_(dag.node_count()),
        proc_state_(system.proc_count()),
        ready_pos_(dag.node_count(), kNoPos) {
    idle_cache_.reserve(system.proc_count());
    if (contended_) {
      tm_.emplace(topology_);
      tm_->set_profile(profile_);
    }
  }

  SimResult simulate() {
    seed_ready_set();
    for (;;) {
      {
        obs::ScopedTimer timer(profile_, obs::Timer::kPolicyPass);
        policy_.on_event(*this);
      }
      if (profile_) profile_->add(obs::Counter::kPolicyPasses);
      drain_queues();
      if (done_count_ == dag_.node_count()) break;
      if (events_.empty() && releases_.empty() && !(tm_ && tm_->busy())) {
        throw std::logic_error(
            "Engine: policy '" + policy_.name() +
            "' stalled: work remains but nothing is executing");
      }
      advance_to_next_event();
    }
    SimResult result;
    result.schedule.resize(dag_.node_count());
    TimeMs makespan = 0.0;
    for (dag::NodeId n = 0; n < dag_.node_count(); ++n) {
      result.schedule[n] = node_state_[n].record;
      makespan = std::max(makespan, node_state_[n].record.finish_time);
    }
    result.makespan = makespan;
    result.transfers = std::move(transfer_records_);
    result.hedges = std::move(hedges_);
    return result;
  }

  // --- SchedulerContext -----------------------------------------------------

  TimeMs now() const override { return now_; }
  const dag::Dag& dag() const override { return dag_; }
  const System& system() const override { return system_; }
  const CostModel& cost_model() const override { return cost_; }

  const std::vector<dag::NodeId>& ready() const override {
    if (ready_tombstones_ > 0) compact_ready();
    return ready_;
  }

  bool is_idle(ProcId proc) const override {
    const ProcState& ps = proc_state_.at(proc);
    return !ps.running.has_value() && ps.queue.empty();
  }

  const std::vector<ProcId>& idle_processors() const override {
    if (idle_dirty_) {
      idle_cache_.clear();
      for (ProcId p = 0; p < proc_state_.size(); ++p) {
        if (is_idle(p)) idle_cache_.push_back(p);
      }
      idle_dirty_ = false;
    }
    return idle_cache_;
  }

  TimeMs busy_until(ProcId proc) const override {
    const ProcState& ps = proc_state_.at(proc);
    if (!ps.running.has_value() && ps.queue.empty()) return now_;
    // A running kernel still stalled on contended input data has no finish
    // time yet; estimate with its (known) execution time from now.
    TimeMs t = now_;
    if (ps.running) {
      const NodeState& rs = node_state_[*ps.running];
      t = rs.exec_started ? rs.record.finish_time : now_ + rs.record.exec_ms;
    }
    for (const QueuedKernel& q : ps.queue) t += q.exec_ms;
    return t;
  }

  std::size_t queue_length(ProcId proc) const override {
    return proc_state_.at(proc).queue.size();
  }

  TimeMs queued_work_ms(ProcId proc) const override {
    const ProcState& ps = proc_state_.at(proc);
    TimeMs work = 0.0;
    if (ps.running) {
      const NodeState& rs = node_state_[*ps.running];
      work += rs.exec_started
                  ? std::max(0.0, rs.record.finish_time - now_)
                  : rs.record.exec_ms;
    }
    for (const QueuedKernel& q : ps.queue) work += q.exec_ms;
    return work;
  }

  TimeMs recent_avg_exec_ms(ProcId proc, std::size_t k) const override {
    const ProcState& ps = proc_state_.at(proc);
    if (ps.exec_history.empty() || k == 0) return 0.0;
    const std::size_t take = std::min(k, ps.exec_history.size());
    double sum = 0.0;
    for (std::size_t i = ps.exec_history.size() - take;
         i < ps.exec_history.size(); ++i)
      sum += ps.exec_history[i];
    return sum / static_cast<double>(take);
  }

  TimeMs exec_time_ms(dag::NodeId node, ProcId proc) const override {
    return cost_.exec_time_ms(dag_, node, system_.processor(proc));
  }

  // Execution times are fixed for the whole run, so the min/argmin scans
  // the MET-family policies repeat for every ready node at every event are
  // computed once per node and served from a cache thereafter. The fill
  // loop is the base-class scan verbatim — same doubles, same tie-break.
  TimeMs min_exec_time_ms(dag::NodeId node) const override {
    fill_min_exec(node);
    return min_exec_cache_[node];
  }

  ProcId min_exec_proc(dag::NodeId node) const override {
    fill_min_exec(node);
    return min_proc_cache_[node];
  }

  TimeMs input_transfer_ms(dag::NodeId node, ProcId proc) const override {
    // Comm-adjusted automatically under a contended topology: run()
    // installs a TopologyCostModel as cost_, so this prices edges against
    // the fabric (the uncontended share — the simulated transfer can only
    // be slower under contention).
    TimeMs worst = 0.0;
    const Processor& to = system_.processor(proc);
    for (const dag::NodeId pred : dag_.predecessors(node)) {
      const ScheduledKernel& rec = node_state_[pred].record;
      // Internal invariant (not policy-misuse validation): the engine only
      // offers nodes whose predecessors were all scheduled.
      APT_ASSERT(rec.proc != kInvalidProc,
                 "predecessor %u of node %u not yet scheduled", pred, node);
      worst = std::max(worst, cost_.transfer_time_ms(
                                  dag_, pred, node, system_.processor(rec.proc),
                                  to));
    }
    return worst;
  }

  TransferEstimate transfer_estimate(dag::NodeId node,
                                     ProcId proc) const override {
    TransferEstimate est;
    est.noise = noise_;
    const Processor& to = system_.processor(proc);
    ProcId worst_from = proc;  // local: contributes no link
    for (const dag::NodeId pred : dag_.predecessors(node)) {
      const ScheduledKernel& rec = node_state_[pred].record;
      APT_ASSERT(rec.proc != kInvalidProc,
                 "predecessor %u of node %u not yet scheduled", pred, node);
      // Same call, same order, same std::max as input_transfer_ms above —
      // stall_ms is bit-identical to the legacy scalar.
      const TimeMs edge = cost_.transfer_time_ms(
          dag_, pred, node, system_.processor(rec.proc), to);
      if (edge > est.stall_ms) {
        est.stall_ms = edge;
        worst_from = rec.proc;
      }
      if (!tm_) continue;
      // Backlog scan: predicted drain of each route link's in-flight
      // traffic at the current max-min rates (tm_ is advanced to now_
      // before every policy pass). The most backlogged link across the
      // predecessor routes pins the estimate.
      for (const net::LinkId l : topology_.route(rec.proc, proc)) {
        const TimeMs drain = tm_->link_drain_ms(l);
        if (drain > est.link_queueing_ms) {
          est.link_queueing_ms = drain;
          est.bottleneck_link = l;
        }
      }
    }
    // Idle fabric (or ideal topology): pin the estimate to the unloaded
    // bottleneck of the worst predecessor's route, kNoLink when local.
    if (est.bottleneck_link == net::kNoLink && contended_ &&
        worst_from != proc)
      est.bottleneck_link = topology_.bottleneck_link(worst_from, proc);
    return est;
  }

  const NoiseSpec& noise() const override { return noise_; }

  void assign(dag::NodeId node, ProcId proc, bool alternative) override {
    if (!is_idle(proc))
      throw std::logic_error("Engine::assign: processor " +
                             system_.processor(proc).name + " is not idle");
    take_from_ready(node);
    note_decision(node, proc, "assign");
    start_kernel(node, proc, alternative);
  }

  void enqueue(dag::NodeId node, ProcId proc, bool alternative) override {
    take_from_ready(node);
    note_decision(node, proc, "enqueue");
    NodeState& ns = node_state_[node];
    ns.record.assign_time = now_ + system_.config().decision_overhead_ms;
    ns.record.alternative = alternative;
    ns.enqueued_at = now_;
    // The destination is fixed now, so the execution time can be cached for
    // every later busy_until()/queued_work_ms() query.
    proc_state_.at(proc).queue.push_back(
        {node, cost_.exec_time_ms(dag_, node, system_.processor(proc))});
    idle_dirty_ = true;
    // The enqueue fixed the destination, so under a contended topology the
    // input data starts moving now — it may arrive while the kernel is
    // still waiting in the queue (the prefetch the legacy path models
    // analytically).
    if (contended_)
      begin_comm(node, proc,
                 now_ + system_.config().decision_overhead_ms +
                     system_.config().dispatch_overhead_ms);
    // drain_queues() (called right after the policy pass) starts it if the
    // processor is actually free.
  }

 private:
  static constexpr std::size_t kNoPos = static_cast<std::size_t>(-1);

  void fill_min_exec(dag::NodeId node) const {
    if (min_exec_cache_.empty()) {
      min_exec_cache_.assign(dag_.node_count(),
                             std::numeric_limits<TimeMs>::quiet_NaN());
      min_proc_cache_.assign(dag_.node_count(), 0);
    }
    if (!std::isnan(min_exec_cache_[node])) return;
    TimeMs best = std::numeric_limits<TimeMs>::infinity();
    ProcId best_proc = 0;
    for (ProcId p = 0; p < system_.proc_count(); ++p) {
      const TimeMs t = exec_time_ms(node, p);
      if (t < best) {
        best = t;
        best_proc = p;
      }
    }
    min_exec_cache_[node] = best;
    min_proc_cache_[node] = best_proc;
  }

  struct NodeState {
    ScheduledKernel record;
    bool ready = false;
    bool assigned = false;
    bool done = false;
    std::size_t remaining_preds = 0;
    TimeMs enqueued_at = std::numeric_limits<TimeMs>::quiet_NaN();

    // --- straggler hedging (unused when hedging is disabled) ---
    TimeMs nominal_exec_ms = 0.0;  ///< pre-noise exec time on record.proc
    bool hedged = false;           ///< a hedge decision was made (at most 1)
    bool replica_outstanding = false;  ///< replica launched, race unresolved
    std::size_t hedge_idx = kNoPos;    ///< index into hedges_
    ProcId replica_proc = kInvalidProc;
    TimeMs replica_exec_start = 0.0;
    TimeMs replica_exec_ms = 0.0;
    TimeMs replica_transfer_ms = 0.0;
    TimeMs replica_finish = 0.0;
    double replica_mult = 1.0;

    // --- contended-topology comm phase (unused under ideal) ---
    bool exec_started = false;   ///< computation has begun (finish_time set)
    bool holds_proc = false;     ///< occupies its processor, maybe stalled
    std::size_t pending_msgs = 0;  ///< input messages still in flight
    TimeMs occupied_at = 0.0;    ///< when the processor was dedicated
    TimeMs data_ready_at = 0.0;  ///< latest input delivery (or dispatch)
  };

  /// A kernel waiting in a processor's FIFO queue with its (destination
  /// fixed, hence known) execution time.
  struct QueuedKernel {
    dag::NodeId node;
    TimeMs exec_ms;
  };

  struct ProcState {
    std::optional<dag::NodeId> running;
    std::deque<QueuedKernel> queue;
    std::vector<TimeMs> exec_history;  ///< completed exec times, oldest first
  };

  void seed_ready_set() {
    for (dag::NodeId n = 0; n < dag_.node_count(); ++n) {
      NodeState& ns = node_state_[n];
      ns.record.node = n;
      ns.remaining_preds = dag_.in_degree(n);
      if (ns.remaining_preds == 0) {
        if (dag_.node(n).release_ms <= now_) {
          mark_ready(n);
        } else {
          releases_.push(Completion{dag_.node(n).release_ms, n});
        }
      }
    }
  }

  void mark_ready(dag::NodeId node) {
    if (profile_) profile_->add(obs::Counter::kReadyMarked);
    NodeState& ns = node_state_[node];
    ns.ready = true;
    ns.record.ready_time = now_;
    ready_pos_[node] = ready_.size();
    ready_.push_back(node);
  }

  void take_from_ready(dag::NodeId node) {
    NodeState& ns = node_state_.at(node);
    if (!ns.ready || ns.assigned)
      throw std::logic_error("Engine: node " + std::to_string(node) +
                             " is not in the ready set");
    ns.assigned = true;
    // O(1): tombstone the slot; ready() compacts before the next read, so
    // FIFO order of the survivors is preserved.
    ready_[ready_pos_[node]] = dag::kInvalidNode;
    ready_pos_[node] = kNoPos;
    ++ready_tombstones_;
  }

  /// Removes tombstones in one pass, keeping arrival order.
  void compact_ready() const {
    if (profile_) profile_->add(obs::Counter::kReadyCompactions);
    std::size_t out = 0;
    for (std::size_t i = 0; i < ready_.size(); ++i) {
      const dag::NodeId node = ready_[i];
      if (node == dag::kInvalidNode) continue;
      ready_pos_[node] = out;
      ready_[out++] = node;
    }
    ready_.resize(out);
    ready_tombstones_ = 0;
  }

  // --- observability (src/obs) ---------------------------------------------
  // Every site is a null-guarded read of already-committed facts; with no
  // sink/profile attached each collapses to one branch.

  void note_decision(dag::NodeId node, ProcId proc, const char* detail) {
    if (profile_) profile_->add(obs::Counter::kPolicyDecisions);
    if (!sink_) return;
    obs::InstantEvent ev;
    ev.kind = obs::InstantKind::kDecision;
    ev.node = node;
    ev.proc = proc;
    ev.time = now_;
    ev.detail = detail;
    sink_->instant(ev);
  }

  /// Winner span of a retiring kernel (sink_ checked by the caller).
  void emit_kernel_span(const NodeState& ns, dag::NodeId node) {
    obs::KernelSpan span;
    span.node = node;
    span.kernel = dag_.node(node).kernel.c_str();
    span.proc = ns.record.proc;
    span.occupied_from = ns.record.occupied_from();
    span.exec_start = ns.record.exec_start;
    span.finish = ns.record.finish_time;
    span.noise_mult = ns.record.noise_mult;
    span.alternative = ns.record.alternative;
    if (ns.hedge_idx != kNoPos)
      span.role = hedges_[ns.hedge_idx].replica_won
                      ? obs::SpanRole::kHedgeReplica
                      : obs::SpanRole::kHedgePrimary;
    sink_->kernel_span(span);
  }

  /// Cancelled losing attempt of a hedge race (sink_ checked by caller).
  void emit_loser_span(dag::NodeId node, ProcId proc, TimeMs occupied_from,
                       TimeMs exec_start, TimeMs cancelled, double mult,
                       obs::SpanRole role) {
    obs::KernelSpan span;
    span.node = node;
    span.kernel = dag_.node(node).kernel.c_str();
    span.proc = proc;
    span.occupied_from = occupied_from;
    span.exec_start = exec_start;
    span.finish = cancelled;
    span.noise_mult = mult;
    span.role = role;
    span.cancelled = true;
    sink_->kernel_span(span);
  }

  /// Completed fabric message (sink_ checked by the caller).
  void emit_transfer_span(const TransferRecord& record) {
    obs::TransferSpan span;
    span.src = record.src;
    span.dst = record.dst;
    span.from = record.from;
    span.to = record.to;
    span.path = record.path.data();
    span.hops = record.path.size();
    span.bytes = record.bytes;
    span.start = record.start;
    span.drain_start = record.drain_start;
    span.finish = record.finish;
    sink_->transfer_span(span);
  }

  /// Payload of the edge out of `pred`: its output in bytes.
  double edge_bytes(dag::NodeId pred) const {
    return edge_payload_bytes(dag_, pred,
                              system_.config().bytes_per_element);
  }

  /// Contended mode: creates one fabric message per non-local input edge,
  /// entering its route at the node's dispatch instant. Called exactly
  /// once per node, when the policy commits it (assign or enqueue fixes
  /// the destination).
  void begin_comm(dag::NodeId node, ProcId proc, TimeMs dispatched) {
    NodeState& ns = node_state_[node];
    ns.data_ready_at = dispatched;
    for (const dag::NodeId pred : dag_.predecessors(node)) {
      const ScheduledKernel& rec = node_state_[pred].record;
      const net::Topology::Route route = topology_.route(rec.proc, proc);
      if (route.empty()) continue;  // same processor, socket, or cell
      const double bytes = edge_bytes(pred);
      const std::uint64_t tag = transfer_records_.size();
      TransferRecord record;
      record.src = pred;
      record.dst = node;
      record.from = rec.proc;
      record.to = proc;
      record.path.assign(route.begin(), route.end());
      record.bytes = bytes;
      record.start = dispatched;
      record.drain_start =
          dispatched + topology_.route_latency_ms(rec.proc, proc);
      transfer_records_.push_back(std::move(record));
      tm_->start(tag, bytes, rec.proc, proc, dispatched);
      ++ns.pending_msgs;
      if (profile_) profile_->add(obs::Counter::kTransfersStarted);
    }
  }

  /// Contended mode: all inputs are in — computation begins at `at`.
  void begin_exec(dag::NodeId node, TimeMs at) {
    NodeState& ns = node_state_[node];
    ns.exec_started = true;
    ns.record.exec_start = at;
    ns.record.transfer_ms = at - ns.occupied_at;
    ns.record.finish_time = at + ns.record.exec_ms;
    events_.push(Completion{ns.record.finish_time, node});
  }

  /// One input message delivered; start the kernel when it was the last
  /// and the kernel already holds its processor.
  void on_delivery(const net::Delivery& delivery) {
    TransferRecord& record = transfer_records_[delivery.tag];
    record.finish = now_;
    if (sink_) emit_transfer_span(record);
    NodeState& ns = node_state_[record.dst];
    --ns.pending_msgs;
    ns.data_ready_at = std::max(ns.data_ready_at, now_);
    if (ns.pending_msgs == 0 && ns.holds_proc)
      begin_exec(record.dst, std::max(ns.occupied_at, ns.data_ready_at));
  }

  /// Stamps the realized execution time of `node` on `proc`: the cost
  /// model's nominal duration times the per-kernel noise multiplier
  /// (exactly 1.0 — and no RNG consulted — when noise is disabled).
  void stamp_exec_time(NodeState& ns, dag::NodeId node, TimeMs nominal) {
    ns.nominal_exec_ms = nominal;
    ns.record.noise_mult =
        noise_.enabled() ? noise_multiplier(noise_, kNoiseInstance, node, 0)
                         : 1.0;
    ns.record.exec_ms = nominal * ns.record.noise_mult;
  }

  /// Starts `node` on the idle processor `proc` at the current time.
  void start_kernel(dag::NodeId node, ProcId proc, bool alternative) {
    NodeState& ns = node_state_[node];
    const SystemConfig& cfg = system_.config();
    ns.record.proc = proc;
    ns.record.alternative = alternative;
    ns.record.assign_time = now_ + cfg.decision_overhead_ms;
    const TimeMs dispatched = ns.record.assign_time + cfg.dispatch_overhead_ms;
    if (contended_) {
      // The processor is dedicated from dispatch; computation begins when
      // the simulated input messages are all delivered.
      stamp_exec_time(ns, node,
                      cost_.exec_time_ms(dag_, node, system_.processor(proc)));
      ns.occupied_at = dispatched;
      ns.holds_proc = true;
      proc_state_[proc].running = node;
      idle_dirty_ = true;
      begin_comm(node, proc, dispatched);
      if (ns.pending_msgs == 0) begin_exec(node, ns.data_ready_at);
      return;
    }
    ns.record.transfer_ms = transfer_delay(node, proc, dispatched);
    ns.record.exec_start = dispatched + ns.record.transfer_ms;
    stamp_exec_time(ns, node,
                    cost_.exec_time_ms(dag_, node, system_.processor(proc)));
    ns.record.finish_time = ns.record.exec_start + ns.record.exec_ms;
    ns.exec_started = true;
    proc_state_[proc].running = node;
    idle_dirty_ = true;
    events_.push(Completion{ns.record.finish_time, node});
    if (hedging_.enabled) schedule_hedge_check(node);
  }

  /// Pops queue heads onto idle processors. (Profiled as its own phase;
  /// the calls from advance_to_next_event nest inside that timer.)
  void drain_queues() {
    obs::ScopedTimer timer(profile_, obs::Timer::kDrainQueues);
    for (ProcId p = 0; p < proc_state_.size(); ++p) {
      ProcState& ps = proc_state_[p];
      if (ps.running.has_value() || ps.queue.empty()) continue;
      const QueuedKernel next = ps.queue.front();
      ps.queue.pop_front();
      start_queued_kernel(next, p);
    }
  }

  /// Starts a previously enqueued kernel whose transfer began at enqueue
  /// time (the destination was fixed then, so the data could prefetch).
  void start_queued_kernel(const QueuedKernel& queued, ProcId proc) {
    NodeState& ns = node_state_[queued.node];
    const SystemConfig& cfg = system_.config();
    if (contended_) {
      // Messages have been in flight since the enqueue; the processor
      // picks the kernel up now and stalls until the last one lands.
      ns.record.proc = proc;
      stamp_exec_time(ns, queued.node, queued.exec_ms);
      ns.occupied_at = now_;
      ns.holds_proc = true;
      proc_state_[proc].running = queued.node;
      idle_dirty_ = true;
      if (ns.pending_msgs == 0)
        begin_exec(queued.node, std::max(now_, ns.data_ready_at));
      return;
    }
    const TimeMs transfer = input_transfer_ms(queued.node, proc);
    const TimeMs data_ready =
        ns.enqueued_at + cfg.decision_overhead_ms + cfg.dispatch_overhead_ms +
        transfer;
    // assign_time was stamped at enqueue; the processor picks the kernel up
    // now, and computation starts once the (possibly prefetched) data is in.
    // queued.exec_ms stayed nominal for the queue-estimate queries; the
    // noise draw lands only now, on the realized duration.
    ns.record.proc = proc;
    ns.record.exec_start = std::max(now_, data_ready);
    ns.record.transfer_ms = std::max(0.0, data_ready - now_);
    stamp_exec_time(ns, queued.node, queued.exec_ms);
    ns.record.finish_time = ns.record.exec_start + ns.record.exec_ms;
    ns.exec_started = true;
    proc_state_[proc].running = queued.node;
    idle_dirty_ = true;
    events_.push(Completion{ns.record.finish_time, queued.node});
    if (hedging_.enabled) schedule_hedge_check(queued.node);
  }

  /// Transfer stall for a direct assignment, honouring the policy's
  /// transfer semantics.
  TimeMs transfer_delay(dag::NodeId node, ProcId proc, TimeMs from_time) {
    if (policy_.transfer_semantics() == TransferSemantics::AtAssignment)
      return input_transfer_ms(node, proc);
    // Prefetched: each edge's data has been moving since the predecessor
    // finished; the kernel only stalls for whatever is still in flight.
    TimeMs data_ready = from_time;
    const Processor& to = system_.processor(proc);
    for (const dag::NodeId pred : dag_.predecessors(node)) {
      const ScheduledKernel& rec = node_state_[pred].record;
      const TimeMs arrival =
          rec.finish_time + cost_.transfer_time_ms(
                                dag_, pred, node, system_.processor(rec.proc), to);
      data_ready = std::max(data_ready, arrival);
    }
    return data_ready - from_time;
  }

  // --- straggler hedging --------------------------------------------------

  /// Elapsed primary runtime that triggers a hedge for a kernel with the
  /// given nominal duration: nominal × (rolling tail inflation, once the
  /// window is trustworthy) × the safety factor. Never below nominal ×
  /// factor, so hedging only ever fires on kernels already running late.
  TimeMs hedge_threshold_ms(TimeMs nominal) const {
    double inflation = 1.0;
    if (hedge_window_.count() >= hedging_.min_samples)
      inflation = std::max(1.0, hedge_window_.quantile(hedging_.quantile));
    return nominal * inflation * hedging_.threshold_factor;
  }

  void schedule_hedge_check(dag::NodeId node) {
    const NodeState& ns = node_state_[node];
    events_.push(Completion{
        ns.record.exec_start + hedge_threshold_ms(ns.nominal_exec_ms), node,
        EventKind::kHedgeCheck});
  }

  /// A hedge check came due at `t`. The threshold is re-derived from the
  /// CURRENT rolling window (it may have grown since the check was armed);
  /// if the kernel is not yet overdue under the fresh threshold the check
  /// re-arms at the new instant, otherwise a replica launches — once per
  /// kernel, and only if some processor is idle right now (hedging never
  /// preempts or queues; a saturated platform has no spare capacity worth
  /// burning on duplicates).
  void process_hedge_check(dag::NodeId node, TimeMs t) {
    NodeState& ns = node_state_[node];
    if (ns.done || ns.hedged || !ns.exec_started) return;
    const TimeMs due =
        ns.record.exec_start + hedge_threshold_ms(ns.nominal_exec_ms);
    if (due > t) {
      events_.push(Completion{due, node, EventKind::kHedgeCheck});
      return;
    }
    ns.hedged = true;  // one decision per kernel, launched or dropped
    const std::vector<ProcId>& idle = idle_processors();
    if (idle.empty()) return;
    // Fastest idle destination by NOMINAL time (the realized duration is
    // unknowable before it happens); idle list ascends, so ties break to
    // the lowest processor id.
    ProcId best = idle.front();
    TimeMs best_ms = cost_.exec_time_ms(dag_, node, system_.processor(best));
    for (std::size_t i = 1; i < idle.size(); ++i) {
      const TimeMs ms =
          cost_.exec_time_ms(dag_, node, system_.processor(idle[i]));
      if (ms < best_ms) {
        best = idle[i];
        best_ms = ms;
      }
    }
    launch_replica(node, best, best_ms, t);
  }

  /// Launches the hedged replica of `node` on idle `proc` at time `t`. The
  /// replica pays the full reactive path — decision + dispatch overheads
  /// and its input transfers from scratch (nothing was prefetched for it) —
  /// and draws its own noise substream (replica id 1).
  void launch_replica(dag::NodeId node, ProcId proc, TimeMs nominal,
                      TimeMs t) {
    NodeState& ns = node_state_[node];
    const SystemConfig& cfg = system_.config();
    const TimeMs dispatched =
        t + cfg.decision_overhead_ms + cfg.dispatch_overhead_ms;
    ns.replica_proc = proc;
    ns.replica_transfer_ms = input_transfer_ms(node, proc);
    ns.replica_exec_start = dispatched + ns.replica_transfer_ms;
    ns.replica_mult =
        noise_.enabled() ? noise_multiplier(noise_, kNoiseInstance, node, 1)
                         : 1.0;
    ns.replica_exec_ms = nominal * ns.replica_mult;
    ns.replica_finish = ns.replica_exec_start + ns.replica_exec_ms;
    ns.replica_outstanding = true;
    ns.hedge_idx = hedges_.size();
    HedgeRecord record;
    record.node = node;
    record.primary_proc = ns.record.proc;
    record.replica_proc = proc;
    record.launched_ms = t;
    hedges_.push_back(record);
    proc_state_[proc].running = node;
    idle_dirty_ = true;
    events_.push(Completion{ns.replica_finish, node, EventKind::kReplica});
    if (sink_) {
      obs::InstantEvent ev;
      ev.kind = obs::InstantKind::kHedgeLaunch;
      ev.node = node;
      ev.proc = proc;
      ev.time = t;
      sink_->instant(ev);
    }
  }

  /// Primary completion event. Skipped when stale (the replica already won
  /// and retired the kernel); otherwise the primary wins any outstanding
  /// race — the replica is cancelled at this instant and its processor
  /// freed.
  void complete_primary(dag::NodeId node) {
    NodeState& ns = node_state_[node];
    if (ns.done) return;
    if (ns.replica_outstanding) {
      ns.replica_outstanding = false;
      proc_state_[ns.replica_proc].running.reset();
      idle_dirty_ = true;
      HedgeRecord& h = hedges_[ns.hedge_idx];
      h.replica_won = false;
      h.winner_finish_ms = ns.record.finish_time;
      h.cancelled_ms = ns.record.finish_time;
      h.loser_start_ms = ns.replica_exec_start - ns.replica_transfer_ms;
      if (sink_)
        emit_loser_span(node, ns.replica_proc, h.loser_start_ms,
                        ns.replica_exec_start, h.cancelled_ms,
                        ns.replica_mult, obs::SpanRole::kHedgeReplica);
    }
    complete_kernel(node);
  }

  /// Replica completion event. Skipped when stale (the primary won first);
  /// otherwise the replica wins: the straggling primary is cancelled now,
  /// its processor freed, and the schedule record rewritten to describe
  /// the winning attempt (the loser survives in the HedgeRecord).
  void complete_replica(dag::NodeId node) {
    NodeState& ns = node_state_[node];
    if (ns.done || !ns.replica_outstanding) return;
    ns.replica_outstanding = false;
    proc_state_[ns.record.proc].running.reset();
    idle_dirty_ = true;
    HedgeRecord& h = hedges_[ns.hedge_idx];
    h.replica_won = true;
    h.winner_finish_ms = ns.replica_finish;
    h.cancelled_ms = ns.replica_finish;
    h.loser_start_ms = ns.record.occupied_from();
    // The record is about to be rewritten to the winning replica; the
    // losing primary's facts only exist here.
    if (sink_)
      emit_loser_span(node, ns.record.proc, h.loser_start_ms,
                      ns.record.exec_start, h.cancelled_ms,
                      ns.record.noise_mult, obs::SpanRole::kHedgePrimary);
    ns.record.proc = ns.replica_proc;
    ns.record.assign_time =
        h.launched_ms + system_.config().decision_overhead_ms;
    ns.record.exec_start = ns.replica_exec_start;
    ns.record.exec_ms = ns.replica_exec_ms;
    ns.record.transfer_ms = ns.replica_transfer_ms;
    ns.record.finish_time = ns.replica_finish;
    ns.record.noise_mult = ns.replica_mult;
    complete_kernel(node);
  }

  /// Advances the clock to the earliest pending event (completion,
  /// replica race, hedge check, or release), processes everything sharing
  /// that timestamp, then updates queue heads.
  void advance_to_next_event() {
    obs::ScopedTimer timer(profile_, obs::Timer::kEventLoopAdvance);
    TimeMs t = std::numeric_limits<TimeMs>::infinity();
    if (!events_.empty()) t = std::min(t, events_.top().time);
    if (!releases_.empty()) t = std::min(t, releases_.top().time);
    if (tm_) t = std::min(t, tm_->next_event_ms());
    now_ = t;
    while (!events_.empty() && events_.top().time == t) {
      const Completion ev = events_.top();
      events_.pop();
      if (profile_) {
        profile_->add(obs::Counter::kEventsProcessed);
        if (ev.kind == EventKind::kHedgeCheck)
          profile_->add(obs::Counter::kHedgeChecks);
      }
      switch (ev.kind) {
        case EventKind::kCompletion:
          complete_primary(ev.node);
          break;
        case EventKind::kReplica:
          complete_replica(ev.node);
          break;
        case EventKind::kHedgeCheck:
          process_hedge_check(ev.node, t);
          break;
      }
    }
    if (tm_) {
      tm_->advance_to(t, deliveries_);  // reused buffer, no per-event alloc
      for (const net::Delivery& delivery : deliveries_) on_delivery(delivery);
    }
    while (!releases_.empty() && releases_.top().time <= t) {
      const dag::NodeId node = releases_.top().node;
      releases_.pop();
      if (node_state_[node].remaining_preds == 0) mark_ready(node);
    }
    drain_queues();
  }

  void complete_kernel(dag::NodeId node) {
    NodeState& ns = node_state_[node];
    ns.done = true;
    ++done_count_;
    if (sink_) emit_kernel_span(ns, node);
    ProcState& ps = proc_state_[ns.record.proc];
    ps.running.reset();
    idle_dirty_ = true;
    ps.exec_history.push_back(ns.record.exec_ms);
    // Feed the hedging threshold: the winner's noise multiplier IS the
    // realized/nominal inflation ratio of this completion.
    if (hedging_.enabled) hedge_window_.add(ns.record.noise_mult);
    for (const dag::NodeId succ : dag_.successors(node)) {
      NodeState& ss = node_state_[succ];
      if (--ss.remaining_preds == 0) {
        if (dag_.node(succ).release_ms <= now_) {
          mark_ready(succ);
        } else {
          releases_.push(Completion{dag_.node(succ).release_ms, succ});
        }
      }
    }
  }

  /// Noise instance of the closed engine: one DAG per run. A
  /// single-instance stream run (arrival index 0) draws the same
  /// multipliers from the same spec.
  static constexpr std::uint64_t kNoiseInstance = 0;

  const dag::Dag& dag_;
  const System& system_;
  const CostModel& cost_;
  Policy& policy_;

  /// Stochastic extensions (both disabled by default — see EngineOptions).
  const NoiseSpec noise_;
  const HedgeSpec hedging_;
  /// Rolling realized/nominal inflation ratios of completed kernels — the
  /// bounded-memory sample the hedging threshold quantile is drawn from.
  util::RollingQuantile hedge_window_;
  std::vector<HedgeRecord> hedges_;  ///< launch order

  /// Contended-topology comm phase (tm_ engaged only when contended_).
  const net::Topology& topology_;
  const bool contended_;

  /// Observability sinks (null = disabled; see EngineOptions).
  obs::TraceSink* const sink_;
  obs::Profile* const profile_;
  std::optional<net::TransferManager> tm_;
  /// Message log in creation order; index == TransferManager tag.
  std::vector<TransferRecord> transfer_records_;
  std::vector<net::Delivery> deliveries_;  ///< advance_to out-buffer, reused

  /// Lazily-filled per-node minimum-execution cache (NaN = unfilled).
  mutable std::vector<TimeMs> min_exec_cache_;
  mutable std::vector<ProcId> min_proc_cache_;

  TimeMs now_ = 0.0;
  std::size_t done_count_ = 0;
  std::vector<NodeState> node_state_;
  std::vector<ProcState> proc_state_;

  /// Ready kernels in arrival order; assigned kernels leave as tombstones
  /// (kInvalidNode) that compact_ready() removes before the next read.
  /// Mutable: compaction is deferred into the const accessor ready().
  mutable std::vector<dag::NodeId> ready_;
  mutable std::vector<std::size_t> ready_pos_;  ///< node -> slot in ready_
  mutable std::size_t ready_tombstones_ = 0;

  /// Cached available set, rebuilt on demand after processor-state changes.
  mutable std::vector<ProcId> idle_cache_;
  mutable bool idle_dirty_ = true;

  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      events_;
  /// Pending release instants of kernels whose dependencies are already
  /// satisfied but whose release time lies in the future.
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      releases_;
};

Engine::Engine(const dag::Dag& dag, const System& system,
               const CostModel& cost)
    : dag_(dag), system_(system), cost_(cost) {}

Engine::Engine(const dag::Dag& dag, const System& system,
               const CostModel& cost, EngineOptions options)
    : dag_(dag), system_(system), cost_(cost), options_(std::move(options)) {}

SimResult Engine::run(Policy& policy) {
  options_.noise.validate();
  options_.hedging.validate();
  if (options_.hedging.enabled && system_.topology().contended())
    throw std::invalid_argument(
        "Engine: straggler hedging requires an uncontended topology (a "
        "replica's input transfers are not modelled as fabric messages)");
  // Densify the cost model once per run unless the caller already did.
  const auto* pre = dynamic_cast<const PrecomputedCostModel*>(&cost_);
  std::optional<PrecomputedCostModel> local;
  if (pre == nullptr) pre = &local.emplace(dag_, system_, cost_);
  // Under a contended topology the policies must price edges against the
  // fabric, not the cost model's uncontended point-to-point links — this
  // is what makes HEFT/PEFT EFT estimates topology-aware.
  std::optional<TopologyCostModel> topo_cost;
  const CostModel* effective = pre;
  if (system_.topology().contended())
    effective = &topo_cost.emplace(*pre, system_);
  // prepare() runs even for an empty DAG so every policy sees the same
  // lifecycle regardless of input.
  policy.prepare(dag_, system_, *effective);
  if (dag_.empty()) return SimResult{};
  Context ctx(dag_, system_, *effective, policy, options_);
  return ctx.simulate();
}

}  // namespace apt::sim
