#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/string_utils.hpp"

namespace apt::scenario {

namespace {

/// Common base: the min-kernel check and series sampling every family
/// shares.
class FamilyBase : public ScenarioFamily {
 protected:
  void check(std::size_t kernels) const {
    if (kernels < min_kernels())
      throw std::invalid_argument(
          std::string("scenario family '") + name() + "': need at least " +
          std::to_string(min_kernels()) + " kernels, got " +
          std::to_string(kernels));
  }

  std::vector<dag::Node> series(std::size_t kernels, std::uint64_t seed,
                                const dag::KernelPool& pool) const {
    check(kernels);
    return dag::random_kernel_series(kernels, seed, pool);
  }
};

class Type1Family final : public FamilyBase {
 public:
  const char* name() const noexcept override { return "type1"; }
  const char* description() const noexcept override {
    return "paper DFG Type-1: n-1 independent kernels joined by a final one";
  }
  std::size_t min_kernels() const noexcept override { return 2; }
  dag::Dag generate(std::size_t kernels, std::uint64_t seed,
                    const dag::KernelPool& pool) const override {
    return dag::make_type1(series(kernels, seed, pool));
  }
};

class Type2Family final : public FamilyBase {
 public:
  const char* name() const noexcept override { return "type2"; }
  const char* description() const noexcept override {
    return "paper DFG Type-2: three diamond blocks, singletons, final join";
  }
  std::size_t min_kernels() const noexcept override { return 15; }
  dag::Dag generate(std::size_t kernels, std::uint64_t seed,
                    const dag::KernelPool& pool) const override {
    return dag::make_type2(series(kernels, seed, pool));
  }
};

class LayeredFamily final : public FamilyBase {
 public:
  const char* name() const noexcept override { return "layered"; }
  const char* description() const noexcept override {
    return "layered Erdos-Renyi: ~sqrt(n) ranks, extra edges with p=0.15";
  }
  std::size_t min_kernels() const noexcept override { return 2; }
  dag::Dag generate(std::size_t kernels, std::uint64_t seed,
                    const dag::KernelPool& pool) const override {
    check(kernels);
    const auto layers = std::max<std::size_t>(
        2, static_cast<std::size_t>(
               std::lround(std::sqrt(static_cast<double>(kernels)))));
    return dag::random_layered_dag(kernels, std::min(layers, kernels),
                                   kEdgeProb, seed, pool);
  }

 private:
  static constexpr double kEdgeProb = 0.15;
};

class ForkJoinFamily final : public FamilyBase {
 public:
  const char* name() const noexcept override { return "forkjoin"; }
  const char* description() const noexcept override {
    return "chain of fork-join stages with random widths 2..8";
  }
  std::size_t min_kernels() const noexcept override { return 4; }
  dag::Dag generate(std::size_t kernels, std::uint64_t seed,
                    const dag::KernelPool& pool) const override {
    return dag::make_fork_join(series(kernels, seed, pool), seed);
  }
};

class InTreeFamily final : public FamilyBase {
 public:
  const char* name() const noexcept override { return "intree"; }
  const char* description() const noexcept override {
    return "random reduction tree: many entries, one exit, fan-in <= 3";
  }
  std::size_t min_kernels() const noexcept override { return 2; }
  dag::Dag generate(std::size_t kernels, std::uint64_t seed,
                    const dag::KernelPool& pool) const override {
    return dag::make_in_tree(series(kernels, seed, pool), seed);
  }
};

class OutTreeFamily final : public FamilyBase {
 public:
  const char* name() const noexcept override { return "outtree"; }
  const char* description() const noexcept override {
    return "random broadcast tree: one entry, many exits, fan-out <= 3";
  }
  std::size_t min_kernels() const noexcept override { return 2; }
  dag::Dag generate(std::size_t kernels, std::uint64_t seed,
                    const dag::KernelPool& pool) const override {
    return dag::make_out_tree(series(kernels, seed, pool), seed);
  }
};

class CholeskyFamily final : public FamilyBase {
 public:
  const char* name() const noexcept override { return "cholesky"; }
  const char* description() const noexcept override {
    return "tiled Cholesky/LU task graph (POTRF/TRSM/SYRK-GEMM structure)";
  }
  std::size_t min_kernels() const noexcept override { return 4; }
  dag::Dag generate(std::size_t kernels, std::uint64_t seed,
                    const dag::KernelPool& pool) const override {
    return dag::make_cholesky(series(kernels, seed, pool));
  }
};

}  // namespace

const std::vector<const ScenarioFamily*>& all_families() {
  static const Type1Family type1;
  static const Type2Family type2;
  static const LayeredFamily layered;
  static const ForkJoinFamily forkjoin;
  static const InTreeFamily intree;
  static const OutTreeFamily outtree;
  static const CholeskyFamily cholesky;
  static const std::vector<const ScenarioFamily*> registry = {
      &type1, &type2, &layered, &forkjoin, &intree, &outtree, &cholesky};
  return registry;
}

std::vector<std::string> family_names() {
  std::vector<std::string> names;
  names.reserve(all_families().size());
  for (const ScenarioFamily* f : all_families()) names.emplace_back(f->name());
  return names;
}

bool has_family(const std::string& name) {
  const std::string key = util::to_lower(util::trim(name));
  for (const ScenarioFamily* f : all_families()) {
    if (key == f->name()) return true;
  }
  return false;
}

const ScenarioFamily& family(const std::string& name) {
  const std::string key = util::to_lower(util::trim(name));
  for (const ScenarioFamily* f : all_families()) {
    if (key == f->name()) return *f;
  }
  throw std::invalid_argument("unknown scenario family '" + name +
                              "' (known: " + util::join(family_names(), ", ") +
                              ")");
}

dag::Dag generate(const std::string& family_name, std::size_t kernels,
                  std::uint64_t seed, const dag::KernelPool& pool) {
  return family(family_name).generate(kernels, seed, pool);
}

}  // namespace apt::scenario
