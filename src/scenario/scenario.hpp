// Scenario generation: seeded workload families beyond the paper's two DFG
// shapes.
//
// The thesis evaluates its policies on exactly two graph families (Type-1
// fan-in, Type-2 diamond blocks). This subsystem generalises workload
// generation behind one interface — a ScenarioFamily maps (kernel count,
// seed, kernel pool) deterministically to a DAG — and registers seven
// families:
//
//   type1     the paper's fan-in star (n-1 independent kernels + a join)
//   type2     the paper's three diamond blocks + singletons + final join
//   layered   layered Erdős–Rényi: ~sqrt(n) ranks, random forward edges
//   forkjoin  a chain of random-width fork–join stages
//   intree    random reduction tree (many entries, one exit)
//   outtree   random broadcast tree (one entry, many exits)
//   cholesky  tiled Cholesky/LU task graph (POTRF/TRSM/SYRK-GEMM structure)
//
// Combined with the synthetic lookup tables of lut/synthetic.hpp, the
// (family × size × seed × CCR × heterogeneity) cube is the scenario space
// the batch layer sweeps; see core::make_scenario_plan.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dag/generator.hpp"
#include "dag/graph.hpp"

namespace apt::scenario {

/// One seeded workload family: a deterministic map from scenario
/// coordinates to a DAG. Implementations sample the kernel series with
/// dag::random_kernel_series and shape it with a dag/generator builder, so
/// node ids follow structural (arrival) order and the same coordinates
/// always yield a byte-identical graph.
class ScenarioFamily {
 public:
  virtual ~ScenarioFamily() = default;

  virtual const char* name() const noexcept = 0;
  virtual const char* description() const noexcept = 0;

  /// Smallest kernel count the shape supports; generate() throws
  /// std::invalid_argument below it.
  virtual std::size_t min_kernels() const noexcept = 0;

  virtual dag::Dag generate(std::size_t kernels, std::uint64_t seed,
                            const dag::KernelPool& pool) const = 0;
};

/// The registry of built-in families, in the order listed above.
const std::vector<const ScenarioFamily*>& all_families();

/// Registered family names, in registry order.
std::vector<std::string> family_names();

bool has_family(const std::string& name);

/// Lookup by name (case-insensitive, trimmed); throws std::invalid_argument
/// naming the known families on a miss.
const ScenarioFamily& family(const std::string& name);

/// Convenience: family(name).generate(kernels, seed, pool).
dag::Dag generate(const std::string& family_name, std::size_t kernels,
                  std::uint64_t seed, const dag::KernelPool& pool);

}  // namespace apt::scenario
